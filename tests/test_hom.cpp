// Tests for abstracting homomorphisms (rlv_hom): letter/word/lasso images,
// automaton images with ε-elimination (the Figure 2 → Figure 4 reduction),
// inverse images, maximal-word extension, and the simplicity decision
// procedure — including the paper's headline pair: the abstraction is
// simple on the correct server (Figure 2) and NOT simple on the buggy one
// (Figure 3).

#include <gtest/gtest.h>

#include <set>

#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/hom/homomorphism.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/hom/simplicity.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/lang/quotient.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

TEST(Homomorphism, ProjectionBasics) {
  auto sigma = Alphabet::make({"a", "b", "c"});
  const Homomorphism h = Homomorphism::projection(sigma, {"a", "c"});
  EXPECT_TRUE(h.apply(sigma->id("a")).has_value());
  EXPECT_FALSE(h.apply(sigma->id("b")).has_value());
  EXPECT_TRUE(h.hides(sigma->id("b")));

  const Word w = {sigma->id("a"), sigma->id("b"), sigma->id("c"),
                  sigma->id("b")};
  const Word img = h.apply_word(w);
  EXPECT_EQ(img.size(), 2u);
  EXPECT_EQ(h.target()->name(img[0]), "a");
  EXPECT_EQ(h.target()->name(img[1]), "c");
}

TEST(Homomorphism, LassoImageUndefinedWhenPeriodHidden) {
  auto sigma = Alphabet::make({"a", "b"});
  const Homomorphism h = Homomorphism::projection(sigma, {"a"});
  EXPECT_FALSE(h.apply_lasso({sigma->id("a")}, {sigma->id("b")}).has_value());
  const auto img = h.apply_lasso({sigma->id("b")}, {sigma->id("a"),
                                                    sigma->id("b")});
  ASSERT_TRUE(img.has_value());
  EXPECT_TRUE(img->first.empty());
  EXPECT_EQ(img->second.size(), 1u);
}

TEST(Homomorphism, RenamingMerge) {
  auto sigma = Alphabet::make({"x", "y"});
  auto target = Alphabet::make({"z"});
  Homomorphism h(sigma, target);
  h.rename("x", "z");
  h.rename("y", "z");
  EXPECT_EQ(h.preimage(target->id("z")).size(), 2u);
  EXPECT_TRUE(h.hidden_letters().empty());
}

TEST(Image, Figure2AbstractsToFigure4) {
  const Nfa fig2 = figure2_system();
  const Homomorphism h = paper_abstraction(fig2.alphabet());
  const Nfa abstract = image_nfa(fig2, h);
  const Nfa expected = figure4_expected(h.target());
  EXPECT_TRUE(nfa_equivalent(abstract, expected));
}

TEST(Image, Figure3AbstractsToFigure4Too) {
  // The paper's caution: the buggy system has the *same* abstraction.
  const Nfa fig3 = figure3_system();
  const Homomorphism h = paper_abstraction(fig3.alphabet());
  const Nfa abstract = image_nfa(fig3, h);
  const Nfa expected = figure4_expected(h.target());
  EXPECT_TRUE(nfa_equivalent(abstract, expected));
}

TEST(Image, WordLevelConsistency) {
  // Every h(w) for w ∈ L is accepted by the image automaton.
  const Nfa fig2 = figure2_system();
  const Homomorphism h = paper_abstraction(fig2.alphabet());
  const Nfa abstract = image_nfa(fig2, h);
  for (const Word& w : enumerate_words(fig2, 5)) {
    EXPECT_TRUE(abstract.accepts(h.apply_word(w)))
        << fig2.alphabet()->format(w);
  }
}

TEST(InverseImage, MembershipCharacterization) {
  // w ∈ h⁻¹(L') ⟺ h(w) ∈ L'.
  auto source = Alphabet::make({"a", "b", "t"});
  const Homomorphism h = Homomorphism::projection(source, {"a", "b"});
  // L' = words over {a,b} ending in a.
  Nfa lp(h.target());
  const State s0 = lp.add_state(false);
  const State s1 = lp.add_state(true);
  lp.add_transition(s0, h.target()->id("a"), s1);
  lp.add_transition(s0, h.target()->id("b"), s0);
  lp.add_transition(s1, h.target()->id("a"), s1);
  lp.add_transition(s1, h.target()->id("b"), s0);
  lp.set_initial(s0);

  const Nfa inv = inverse_image_nfa(lp, h);
  Nfa total(source);
  const State t = total.add_state(true);
  for (Symbol a = 0; a < source->size(); ++a) total.add_transition(t, a, t);
  total.set_initial(t);
  for (const Word& w : enumerate_words(total, 4)) {
    EXPECT_EQ(inv.accepts(w), lp.accepts(h.apply_word(w)))
        << source->format(w);
  }
}

TEST(ExtendMaximalWords, PadsDeadEnds) {
  // L = pre(a*b): maximal words are those ending in b.
  auto sigma = Alphabet::make({"a", "b"});
  Nfa nfa(sigma);
  const State s0 = nfa.add_state(true);
  const State s1 = nfa.add_state(true);
  nfa.add_transition(s0, sigma->id("a"), s0);
  nfa.add_transition(s0, sigma->id("b"), s1);
  nfa.set_initial(s0);

  const Nfa extended = extend_maximal_words(nfa);
  const Symbol pad = extended.alphabet()->id("pad");
  // b pad pad ∈ extended language; pad impossible before b.
  EXPECT_TRUE(extended.accepts({sigma->id("b"), pad, pad}));
  EXPECT_FALSE(extended.accepts({pad}));
  EXPECT_TRUE(extended.accepts({sigma->id("a"), sigma->id("b"), pad}));
}

TEST(Simplicity, PaperHeadline) {
  const Nfa fig2 = figure2_system();
  const Homomorphism h2 = paper_abstraction(fig2.alphabet());
  const SimplicityResult r2 = check_simplicity(fig2, h2);
  EXPECT_TRUE(r2.simple);

  const Nfa fig3 = figure3_system();
  const Homomorphism h3 = paper_abstraction(fig3.alphabet());
  const SimplicityResult r3 = check_simplicity(fig3, h3);
  EXPECT_FALSE(r3.simple);
  ASSERT_TRUE(r3.violating_word.has_value());
  // The violating word must be in L (prefix-closed system: every state
  // accepts).
  EXPECT_TRUE(fig3.accepts(*r3.violating_word));
}

TEST(Simplicity, IdentityIsSimple) {
  const Nfa fig2 = figure2_system();
  // Identity homomorphism: every letter maps to itself.
  std::vector<std::string> names;
  for (Symbol a = 0; a < fig2.alphabet()->size(); ++a) {
    names.push_back(fig2.alphabet()->name(a));
  }
  const Homomorphism id = Homomorphism::projection(fig2.alphabet(), names);
  EXPECT_TRUE(check_simplicity(fig2, id).simple);
}

TEST(Simplicity, HideEverythingIsSimple) {
  // h(L) = {ε}: cont sets on both sides are {ε}; trivially simple.
  const Nfa fig2 = figure2_system();
  auto target = Alphabet::make({"unused"});
  const Homomorphism h(fig2.alphabet(), target);
  EXPECT_TRUE(check_simplicity(fig2, h).simple);
}

TEST(Simplicity, ViolationDetectedOnTrapSystem) {
  // System: s0 --a--> s0, s0 --t--> s1, s1 --b--> s1 with h hiding t:
  // h(L) = pre(a* b*)… from s0 continuations map to a*b*, from s1 to b*.
  // After reading ε at abstract level we cannot tell; taking u = b isolates
  // cont equality; this h IS simple (u = b works: both sides b*).
  auto sigma = Alphabet::make({"a", "b", "t"});
  Nfa nfa(sigma);
  const State s0 = nfa.add_state(true);
  const State s1 = nfa.add_state(true);
  nfa.add_transition(s0, sigma->id("a"), s0);
  nfa.add_transition(s0, sigma->id("t"), s1);
  nfa.add_transition(s1, sigma->id("b"), s1);
  nfa.set_initial(s0);
  const Homomorphism h = Homomorphism::projection(sigma, {"a", "b"});
  EXPECT_TRUE(check_simplicity(nfa, h).simple);

  // Non-simple variant: q0 loops on both visible letters, the hidden t
  // moves into a trap where only c remains. After t, the abstract level
  // still offers (a|c)* while the concrete side only has c* — and no u
  // ever re-synchronizes, because u⁻¹((a|c)*) = (a|c)* keeps containing
  // a-words while u⁻¹(c*) never does.
  auto sigma2 = Alphabet::make({"a", "c", "t"});
  Nfa trap(sigma2);
  const State q0 = trap.add_state(true);
  const State q1 = trap.add_state(true);
  trap.add_transition(q0, sigma2->id("a"), q0);
  trap.add_transition(q0, sigma2->id("c"), q0);
  trap.add_transition(q0, sigma2->id("t"), q1);
  trap.add_transition(q1, sigma2->id("c"), q1);
  trap.set_initial(q0);
  const Homomorphism h2 = Homomorphism::projection(sigma2, {"a", "c"});
  const SimplicityResult r = check_simplicity(trap, h2);
  EXPECT_FALSE(r.simple);
}

// ---------------------------------------------------------------------------
// Property tests.

class HomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HomProperty, ImageAcceptsExactlyTheImages) {
  Rng rng(GetParam() * 31 + 5);
  auto sigma = random_alphabet(3);
  const Nfa nfa = random_nfa(rng, 2 + rng.next_below(4), sigma);
  const Homomorphism h = random_homomorphism(rng, sigma, 2, 30);
  const Nfa img = image_nfa(nfa, h);

  // Soundness: image of each accepted word is accepted.
  for (const Word& w : enumerate_words(nfa, 4)) {
    EXPECT_TRUE(img.accepts(h.apply_word(w)));
  }
  // Completeness: every short image word has a preimage in L, found via
  // the inverse-image automaton.
  Nfa total(h.target());
  if (h.target()->size() > 0) {
    const State t = total.add_state(true);
    for (Symbol a = 0; a < h.target()->size(); ++a) {
      total.add_transition(t, a, t);
    }
    total.set_initial(t);
  }
  for (const Word& u : enumerate_words(img, 3, 1u << 14)) {
    // u ∈ h(L) ⟺ h⁻¹({u}) ∩ L ≠ ∅ where h⁻¹ goes through the word DFA.
    Nfa word_aut(h.target());
    State prev = word_aut.add_state(u.empty());
    word_aut.set_initial(prev);
    for (std::size_t i = 0; i < u.size(); ++i) {
      const State next = word_aut.add_state(i + 1 == u.size());
      word_aut.add_transition(prev, u[i], next);
      prev = next;
    }
    const Nfa candidates = intersect(inverse_image_nfa(word_aut, h), nfa);
    EXPECT_FALSE(is_empty(candidates)) << h.target()->format(u);
  }
}

TEST_P(HomProperty, SimplicityAgreesOnDefinitionSample) {
  // Partial validation of the decision procedure against Definition 6.3:
  // when check_simplicity reports a violating word w, verify by bounded
  // search that no witness u (up to length 3) satisfies the residual
  // equality on words up to length 3.
  Rng rng(GetParam() * 101 + 13);
  auto sigma = random_alphabet(3);
  const Nfa raw = random_transition_system(rng, 2 + rng.next_below(4), sigma);
  if (raw.num_states() == 0) return;
  const Homomorphism h = random_homomorphism(rng, sigma, 2, 35);
  const SimplicityResult res = check_simplicity(raw, h);
  if (res.simple || !res.violating_word.has_value()) return;
  const Word& w = *res.violating_word;
  ASSERT_TRUE(raw.accepts(w));

  // Enumerate candidate witnesses u over Σ' up to length 3.
  const Nfa img = image_nfa(raw, h);
  const Nfa cont_hw = left_quotient(img, h.apply_word(w));

  // h(cont(w, L)).
  const Nfa cont_w = left_quotient(raw, w);
  const Nfa h_cont_w = image_nfa(cont_w, h);

  Nfa total(h.target());
  const State t = total.add_state(true);
  for (Symbol a = 0; a < h.target()->size(); ++a) {
    total.add_transition(t, a, t);
  }
  total.set_initial(t);
  for (const Word& u : enumerate_words(total, 3)) {
    if (!cont_hw.accepts(u)) continue;  // u must lie in cont(h(w), h(L))
    const Nfa lhs = left_quotient(cont_hw, u);
    const Nfa rhs = left_quotient(h_cont_w, u);
    EXPECT_FALSE(nfa_equivalent(lhs, rhs))
        << "witness u=" << h.target()->format(u)
        << " contradicts non-simplicity at w=" << sigma->format(w);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HomProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rlv

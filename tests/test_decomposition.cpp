// Tests for the constructive relativized Alpern–Schneider decomposition
// (core/decomposition.hpp): the safety part is a relative safety property
// of the system (checked at the level of Definition 4.2 — complementing the
// safety part with the rank construction would explode), the liveness part
// is a relative liveness property (checked with the Lemma 4.3 decider), and
// inside the system's behaviors P coincides with their intersection.

#include <gtest/gtest.h>

#include "rlv/core/decomposition.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

/// Definition 4.2 probe on a sampled behavior x = u·v^ω of the system: if
/// x ∉ S, some prefix of x must have *no* continuation inside the system
/// that stays in S. Uses that S ⊆ lim(pre(L∩P)) by construction: once a
/// prefix leaves pre(L∩S), nothing returns.
void expect_safety_violation_has_bad_prefix(const Buchi& system,
                                            const Buchi& safety_part,
                                            const Word& u, const Word& v) {
  if (!accepts_lasso(system, u, v)) return;
  if (accepts_lasso(safety_part, u, v)) return;

  // Search a prefix w of x with w ∉ pre(L ∩ S).
  const Nfa pre = prefix_nfa(intersect_buchi(system, safety_part));
  Word w = u;
  bool found = !pre.accepts(w);
  // The escape position is bounded by the period count at which the subset
  // states of `pre` along the lasso start repeating.
  for (std::size_t round = 0; round <= pre.num_states() + 1 && !found;
       ++round) {
    for (const Symbol a : v) w.push_back(a);
    found = !pre.accepts(w);
  }
  // w ∉ pre(L∩S) means no continuation z keeps wz ∈ L ∩ S — exactly the
  // Definition 4.2 witness.
  EXPECT_TRUE(found);
}

TEST(Decomposition, Figure2BoxDiamondResult) {
  const Nfa fig2 = figure2_system();
  const Buchi system = limit_of_prefix_closed(fig2);
  const Labeling lambda = Labeling::canonical(fig2.alphabet());
  const Formula f = parse_ltl("G F result");

  const RelativeDecomposition dec =
      relative_decomposition(system, f, lambda);

  EXPECT_TRUE(relative_liveness(system, dec.liveness_part).holds);

  // G F result is relative liveness of L, so pre(L∩P) = pre(L) and the
  // safety closure is all of L: every behavior is in the safety part, and
  // the membership equation L∩P = L∩S∩Li reduces P to Li on L.
  Rng rng(5);
  const Buchi property = translate_ltl(f, lambda);
  for (int i = 0; i < 30; ++i) {
    const auto [u, v] = random_lasso(rng, fig2.alphabet(), 3, 4);
    if (!accepts_lasso(system, u, v)) continue;
    EXPECT_TRUE(accepts_lasso(dec.safety_part, u, v));
    EXPECT_EQ(accepts_lasso(property, u, v),
              accepts_lasso(dec.safety_part, u, v) &&
                  accepts_lasso(dec.liveness_part, u, v));
  }
}

TEST(Decomposition, SafetyPropertyDecomposesTrivially) {
  // For P = G !yes (a relative safety property of Figure 2), the liveness
  // part must be trivial on L: every behavior is in Li, and S carries P.
  const Nfa fig2 = figure2_system();
  const Buchi system = limit_of_prefix_closed(fig2);
  const Labeling lambda = Labeling::canonical(fig2.alphabet());
  const Formula f = parse_ltl("G !yes");

  const RelativeDecomposition dec =
      relative_decomposition(system, f, lambda);
  EXPECT_TRUE(relative_liveness(system, dec.liveness_part).holds);

  Rng rng(7);
  const Buchi property = translate_ltl(f, lambda);
  for (int i = 0; i < 30; ++i) {
    const auto [u, v] = random_lasso(rng, fig2.alphabet(), 3, 4);
    if (!accepts_lasso(system, u, v)) continue;
    EXPECT_TRUE(accepts_lasso(dec.liveness_part, u, v));
    EXPECT_EQ(accepts_lasso(property, u, v),
              accepts_lasso(dec.safety_part, u, v));
    expect_safety_violation_has_bad_prefix(system, dec.safety_part, u, v);
  }
}

TEST(Decomposition, AutomatonFlavorOnTinySystem) {
  // Exercise the rank-complementation route on a 1-state system.
  const Nfa ab = section5_ab_system();
  const Buchi system = limit_of_prefix_closed(ab);
  const Labeling lambda = Labeling::canonical(ab.alphabet());
  const Buchi property = translate_ltl(parse_ltl("G F a"), lambda);

  const RelativeDecomposition dec = relative_decomposition(system, property);
  EXPECT_TRUE(relative_liveness(system, dec.liveness_part).holds);

  Rng rng(11);
  for (int i = 0; i < 25; ++i) {
    const auto [u, v] = random_lasso(rng, ab.alphabet(), 2, 3);
    EXPECT_EQ(accepts_lasso(property, u, v),
              accepts_lasso(dec.safety_part, u, v) &&
                  accepts_lasso(dec.liveness_part, u, v));
  }
}

class DecompositionProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DecompositionProperty, GuaranteesOnRandomInstances) {
  Rng rng(GetParam() * 6364136223846793005ULL + 1442695040888963407ULL);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(3), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      to_pnf(random_formula(rng, {sigma->name(0), sigma->name(1)}, 2));
  const Buchi property = translate_ltl(f, lambda);

  const RelativeDecomposition dec = relative_decomposition(system, f, lambda);

  EXPECT_TRUE(relative_liveness(system, dec.liveness_part).holds)
      << f.to_string();

  for (int i = 0; i < 20; ++i) {
    const auto [u, v] = random_lasso(rng, sigma, 3, 3);
    if (!accepts_lasso(system, u, v)) continue;
    EXPECT_EQ(accepts_lasso(property, u, v),
              accepts_lasso(dec.safety_part, u, v) &&
                  accepts_lasso(dec.liveness_part, u, v))
        << f.to_string();
    expect_safety_violation_has_bad_prefix(system, dec.safety_part, u, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompositionProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rlv

// Integration test on the dining philosophers: a deadlocking system whose
// behavior language has maximal words — exercising deadlock detection, the
// ω-semantics of lim (doomed-to-deadlock prefixes are not behavior
// prefixes), the paper's #-extension for maximal words ([20], the remark
// after Corollary 8.4), the doom monitor, and fairness checking, together
// on one realistic distributed system.

#include <gtest/gtest.h>

#include "rlv/core/monitor.hpp"
#include "rlv/core/preservation.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/patterns.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/petri/reachability.hpp"

namespace rlv {
namespace {

ReachabilityGraph philosophers(std::size_t n) {
  return build_reachability_graph(dining_philosophers_net(n));
}

TEST(Philosophers, DeadlockIsReachable) {
  for (std::size_t n = 2; n <= 4; ++n) {
    const ReachabilityGraph graph = philosophers(n);
    EXPECT_TRUE(graph.complete);
    ASSERT_FALSE(graph.deadlocks.empty()) << "n=" << n;
    // The deadlock marking: every philosopher holds the left fork.
    const Marking dead = graph.marking(graph.deadlocks.front());
    const PetriNet net = dining_philosophers_net(n);
    for (PlaceId p = 0; p < net.num_places(); ++p) {
      if (net.place_name(p).starts_with("has_left")) {
        EXPECT_EQ(dead[p], 1u) << net.place_name(p);
      }
      if (net.place_name(p).starts_with("fork")) {
        EXPECT_EQ(dead[p], 0u) << net.place_name(p);
      }
    }
  }
}

TEST(Philosophers, BehaviorLanguageHasMaximalWords) {
  const ReachabilityGraph graph = philosophers(3);
  EXPECT_TRUE(has_maximal_words(graph.system));
  const Nfa extended = extend_maximal_words(graph.system);
  EXPECT_FALSE(has_maximal_words(extended));
}

TEST(Philosophers, EveryoneEatsIsRelativeLiveness) {
  // On the ω-behaviors (deadlocked prefixes have no infinite continuation
  // and drop out of lim), every philosopher can always eventually eat
  // again: □◇eat_0 is relative liveness.
  const ReachabilityGraph graph = philosophers(3);
  const Buchi behaviors = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  EXPECT_TRUE(
      relative_liveness(behaviors, patterns::infinitely_often("eat_0"),
                        lambda)
          .holds);
  // But it is not classically satisfied (others may hog the table).
  EXPECT_FALSE(
      satisfies(behaviors, patterns::infinitely_often("eat_0"), lambda).holds);
}

TEST(Philosophers, MonitorFlagsTheDeadlockPath) {
  // Taking every left fork leaves lim(L): no infinite continuation exists.
  // The monitor reports exactly that.
  const ReachabilityGraph graph = philosophers(3);
  const Buchi behaviors = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  DoomMonitor monitor(behaviors, patterns::infinitely_often("eat_0"), lambda);

  const auto& sigma = graph.system.alphabet();
  const Word doom_path = {sigma->id("hungry_0"), sigma->id("left_0"),
                          sigma->id("hungry_1"), sigma->id("left_1"),
                          sigma->id("hungry_2")};
  EXPECT_EQ(monitor.run(doom_path), MonitorVerdict::kSatisfiable);
  // The last left fork seals the deadlock: the trace leaves the ω-behavior
  // set entirely (no infinite continuation), which the monitor
  // distinguishes from mere property-doom.
  EXPECT_EQ(monitor.step(sigma->id("left_2")), MonitorVerdict::kLeftSystem);
}

TEST(Philosophers, StrongFairnessDoesNotPreventStarvationByDesign) {
  // Even strongly fair runs can starve philosopher 0? No: strong transition
  // fairness on the reachability graph means every transition enabled
  // infinitely often fires infinitely often — including right_0 whenever
  // it keeps being enabled. Whether GF eat_0 holds under fairness is thus a
  // non-obvious model-checking question; we record the checker's verdict
  // and validate any counterexample it produces.
  const ReachabilityGraph graph = philosophers(2);
  const Buchi behaviors = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  const auto res = check_fair_satisfaction(
      behaviors, patterns::infinitely_often("eat_0"), lambda);
  if (!res.all_fair_runs_satisfy) {
    ASSERT_TRUE(res.counterexample.has_value());
    // The counterexample must be a genuine behavior avoiding eat_0 in its
    // period.
    const Symbol eat0 = graph.system.alphabet()->id("eat_0");
    for (const Symbol s : res.counterexample->period) EXPECT_NE(s, eat0);
  }
}

TEST(Philosophers, ProcessFairnessVerdictsAreValidated) {
  // Per-philosopher process fairness: a process enabled infinitely often
  // must act infinitely often — but may choose *which* of its actions, so
  // it is coarser than transition fairness. Record and validate the
  // checker's verdicts for GF eat_0 under the two notions.
  const ReachabilityGraph graph = philosophers(2);
  const Buchi behaviors = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  const Formula goal = patterns::infinitely_often("eat_0");

  const auto strong = check_fair_satisfaction(behaviors, goal, lambda);
  const auto process = check_process_fair_satisfaction(
      behaviors, goal, lambda,
      {"hungry_0", "left_0", "right_0", "eat_0", "done_0"});
  // Process fairness constrains fewer runs than per-transition fairness
  // (here the single group merges all of philosopher 0's transitions and
  // leaves philosopher 1 completely unconstrained), so satisfaction under
  // process fairness implies satisfaction under transition fairness... not
  // conversely. Check the implication and validate counterexamples.
  if (process.all_fair_runs_satisfy) {
    EXPECT_TRUE(strong.all_fair_runs_satisfy);
  }
  for (const auto* res : {&strong, &process}) {
    if (res->counterexample) {
      EXPECT_TRUE(accepts_lasso(behaviors, *res->counterexample));
      const Symbol eat0 = graph.system.alphabet()->id("eat_0");
      std::size_t count = 0;
      for (const Symbol s : res->counterexample->period) {
        count += (s == eat0) ? 1 : 0;
      }
      EXPECT_EQ(count, 0u);
    }
  }
}

TEST(Philosophers, MaximalWordsConcreteVsAbstract) {
  // The concrete behavior language has maximal words (deadlocks). Its image
  // under the philosopher-0 projection does NOT: the image of a
  // deadlock-bound word (e.g. "hungry_0") can also arise from deadlock-free
  // executions and stays extendable — maximal words in h(L) would require
  // *every* preimage to get stuck. This is exactly why the paper treats
  // maximal-word visibility separately ([20]): hiding can silently erase
  // the evidence of a deadlock, and the #-extension keeps it observable.
  const ReachabilityGraph graph = philosophers(3);
  EXPECT_TRUE(has_maximal_words(graph.system));

  const Homomorphism h = Homomorphism::projection(
      graph.system.alphabet(), {"hungry_0", "eat_0", "done_0"});
  const Nfa image = image_nfa(graph.system, h);
  EXPECT_FALSE(has_maximal_words(image));

  // With the #-extension, the deadlock stays visible at the abstract level:
  // pad is kept by the (extended) projection, and a pad-containing abstract
  // word witnesses the deadlock.
  const Nfa repaired = extend_maximal_words(graph.system, "pad");
  EXPECT_FALSE(has_maximal_words(repaired));
  std::vector<std::string> kept = {"hungry_0", "eat_0", "done_0", "pad"};
  const Homomorphism h_pad =
      Homomorphism::projection(repaired.alphabet(), kept);
  const Nfa image_pad = image_nfa(repaired, h_pad);
  // A deadlock reveals itself abstractly: some abstract word contains pad.
  bool pad_reachable = false;
  const Symbol pad = h_pad.target()->id("pad");
  for (const Word& w : enumerate_words(image_pad, 3)) {
    for (const Symbol s : w) pad_reachable = pad_reachable || s == pad;
  }
  EXPECT_TRUE(pad_reachable);
}

TEST(Philosophers, StateSpaceSizes) {
  // Documented sizes (regression guard for the family).
  EXPECT_EQ(philosophers(2).system.num_states(), 13u);
  EXPECT_EQ(philosophers(3).system.num_states(), 45u);
}

}  // namespace
}  // namespace rlv

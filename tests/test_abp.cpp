// The alternating-bit protocol — the archetypal "liveness under fairness"
// system — run through the whole library: composition, structural sanity,
// relative liveness of □◇deliver (true: the lossy channel can always stop
// losing), classical satisfaction (false: it may lose everything forever),
// fairness analysis, synthesis, abstraction onto the service interface, and
// doom monitoring.

#include <gtest/gtest.h>

#include "rlv/comp/abstraction.hpp"
#include "rlv/comp/sync.hpp"
#include "rlv/core/fair_synthesis.hpp"
#include "rlv/core/monitor.hpp"
#include "rlv/core/preservation.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/hom/simplicity.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/eval.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/patterns.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"

namespace rlv {
namespace {

Nfa abp() { return sync_product(alternating_bit_components()); }

TEST(Abp, StructuralSanity) {
  const Nfa system = abp();
  EXPECT_GT(system.num_states(), 10u);
  EXPECT_LT(system.num_states(), 300u);
  EXPECT_TRUE(is_prefix_closed(system));
  // The protocol never deadlocks: every reachable state has a successor.
  EXPECT_FALSE(has_maximal_words(system));
}

TEST(Abp, DeliverIsRelativeLivenessButNotSatisfied) {
  const Nfa system = abp();
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula goal = patterns::infinitely_often("deliver");

  EXPECT_FALSE(satisfies(behaviors, goal, lambda).holds);
  EXPECT_TRUE(relative_liveness(behaviors, goal, lambda).holds);
  EXPECT_FALSE(relative_safety(behaviors, goal, lambda).holds);

  // A canonical violating behavior: the channel loses every message.
  const auto& sigma = system.alphabet();
  EXPECT_TRUE(accepts_lasso(behaviors, {},
                            {sigma->id("send0"), sigma->id("lose_msg")}));
  EXPECT_FALSE(eval_ltl(goal, {}, {sigma->id("send0"), sigma->id("lose_msg")},
                        lambda));
}

TEST(Abp, StrongFairnessRescuesTheProtocol) {
  // Every strongly transition-fair run delivers infinitely often: losses
  // cannot win every race forever. This is the fairness hypothesis the
  // paper's relative liveness abstracts away from.
  const Nfa system = abp();
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const auto res = check_fair_satisfaction(
      behaviors, patterns::infinitely_often("deliver"), lambda);
  EXPECT_TRUE(res.all_fair_runs_satisfy);
}

TEST(Abp, OrderedDeliverySafety) {
  // Between two delivers there is always an ack. With the *weak* until
  // (no obligation that an ack eventually comes) this is enforced by the
  // receiver structure outright — a genuine safety property:
  //   G(deliver -> X((!deliver U (ack0 || ack1)) || G !deliver)).
  const Nfa system = abp();
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula weak = parse_ltl(
      "G(deliver -> X((!deliver U (ack0 || ack1)) || G !deliver))");
  EXPECT_TRUE(satisfies(behaviors, weak, lambda).holds);
  EXPECT_TRUE(relative_safety(behaviors, weak, lambda).holds);
  EXPECT_TRUE(relative_liveness(behaviors, weak, lambda).holds);

  // The *strict*-until variant additionally demands the ack eventually
  // arrives — a liveness obligation the lossy channel can defeat, so it is
  // neither satisfied nor relative safety, but it IS relative liveness.
  const Formula strict =
      parse_ltl("G(deliver -> X(!deliver U (ack0 || ack1)))");
  EXPECT_FALSE(satisfies(behaviors, strict, lambda).holds);
  EXPECT_FALSE(relative_safety(behaviors, strict, lambda).holds);
  EXPECT_TRUE(relative_liveness(behaviors, strict, lambda).holds);
}

TEST(Abp, SynthesisWorks) {
  const Nfa system = abp();
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula goal = patterns::infinitely_often("deliver");
  const FairImplementation impl =
      synthesize_fair_implementation(behaviors, goal, lambda);
  EXPECT_TRUE(same_limit_closed_language(behaviors, impl.system));
  EXPECT_TRUE(
      check_fair_satisfaction(impl.system, goal, lambda).all_fair_runs_satisfy);
}

TEST(Abp, ServiceInterfaceAbstraction) {
  // Hide the protocol internals; observe only deliver. The abstraction is
  // tiny and the pipeline transfers the relative liveness verdict when the
  // homomorphism is certified simple.
  const Nfa system = abp();
  const Homomorphism h =
      Homomorphism::projection(system.alphabet(), {"deliver"});
  const Nfa abstract = reduced_image_nfa(system, h);
  EXPECT_LE(abstract.num_states(), 2u);

  const AbstractionVerdict verdict = verify_via_abstraction(
      system, h, f_always(f_eventually(f_atom("deliver"))));
  EXPECT_TRUE(verdict.abstract_holds);
  if (verdict.concrete_holds.has_value()) {
    EXPECT_TRUE(*verdict.concrete_holds);
    EXPECT_TRUE(verdict.simplicity.simple);
  }
  // Whatever the pipeline concluded must match the direct computation.
  EXPECT_TRUE(concrete_relative_liveness(
      system, h, f_always(f_eventually(f_atom("deliver")))));
}

TEST(Abp, MonitorNeverDoomsOnProtocolRuns) {
  const Nfa system = abp();
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  DoomMonitor monitor(behaviors, patterns::infinitely_often("deliver"),
                      lambda);
  const auto& sigma = system.alphabet();
  // A realistic lossy exchange: send, lose, resend, receive, deliver, ack,
  // lose ack, resend, duplicate, re-ack, get ack.
  const Word trace = {
      sigma->id("send0"), sigma->id("lose_msg"), sigma->id("send0"),
      sigma->id("recv0"), sigma->id("deliver"),  sigma->id("ack0"),
      sigma->id("lose_ack"), sigma->id("send0"), sigma->id("recv0"),
      sigma->id("ack0"),  sigma->id("getack0"),  sigma->id("send1")};
  EXPECT_EQ(monitor.run(trace), MonitorVerdict::kSatisfiable);
}

}  // namespace
}  // namespace rlv

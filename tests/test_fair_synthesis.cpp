// Tests for fairness machinery and Theorem 5.1 (experiments E6/E9):
// strong-fairness Streett encoding, fair model checking, the Section 5
// counterexample ({a,b}^ω vs ◇(a ∧ Xa)), the synthesis construction, and
// the end-to-end property: whenever P is relative liveness of a transition
// system, the synthesized implementation has the same language and all its
// strongly fair runs satisfy P.

#include <gtest/gtest.h>

#include <algorithm>

#include "rlv/core/fair_synthesis.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/fair/fairness.hpp"
#include "rlv/fair/simulate.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/ltl/eval.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

Buchi fig2_limit() { return limit_of_prefix_closed(figure2_system()); }
Buchi fig3_limit() { return limit_of_prefix_closed(figure3_system()); }

TEST(FairCheck, Figure2FairRunsProduceResults) {
  // Under strong transition fairness the correct server always eventually
  // answers with a result — exactly what the fairness hypothesis was for.
  const Buchi system = fig2_limit();
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const auto res =
      check_fair_satisfaction(system, parse_ltl("G F result"), lambda);
  EXPECT_TRUE(res.all_fair_runs_satisfy);
}

TEST(FairCheck, Figure3HasFairViolations) {
  // No fairness notion repairs the buggy server (the paper's point about
  // Figure 3): a fair run can lock the resource forever.
  const Buchi system = fig3_limit();
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula f = parse_ltl("G F result");
  const auto res = check_fair_satisfaction(system, f, lambda);
  EXPECT_FALSE(res.all_fair_runs_satisfy);
  ASSERT_TRUE(res.counterexample.has_value());
  const Lasso& x = *res.counterexample;
  // The counterexample is a behavior of the system violating the property.
  EXPECT_TRUE(accepts_lasso(system, x));
  EXPECT_FALSE(eval_ltl(f, x.prefix, x.period, lambda));
}

TEST(FairCheck, Section5FairnessAloneIsNotEnough) {
  // {a,b}^ω on the minimal (one-state) automaton: strong fairness does NOT
  // give ◇(a ∧ Xa) — the paper's Section 5 example.
  const Buchi system = limit_of_prefix_closed(section5_ab_system());
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula f = parse_ltl("F(a && X a)");

  // It *is* a relative liveness property...
  EXPECT_TRUE(relative_liveness(system, f, lambda).holds);
  // ...but fairness on the minimal automaton does not realize it: (ab)^ω is
  // strongly fair and avoids aa forever.
  const auto res = check_fair_satisfaction(system, f, lambda);
  EXPECT_FALSE(res.all_fair_runs_satisfy);
}

TEST(Synthesis, Section5AddsStateAndWorks) {
  const Buchi system = limit_of_prefix_closed(section5_ab_system());
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula f = parse_ltl("F(a && X a)");

  const FairImplementation impl =
      synthesize_fair_implementation(system, f, lambda);
  // Same ω-language (Theorem 5.1's first guarantee)...
  EXPECT_TRUE(same_limit_closed_language(system, impl.system));
  // ...more states than the minimal automaton (the paper's observation
  // that extra state information is necessary)...
  EXPECT_GT(impl.system.num_states(), system.num_states());
  // ...and under strong fairness every run satisfies the property.
  const auto res = check_fair_satisfaction(impl.system, f, lambda);
  EXPECT_TRUE(res.all_fair_runs_satisfy);
}

TEST(Synthesis, Figure2BoxDiamondResult) {
  const Buchi system = fig2_limit();
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula f = parse_ltl("G F result");

  const FairImplementation impl =
      synthesize_fair_implementation(system, f, lambda);
  EXPECT_TRUE(same_limit_closed_language(system, impl.system));
  EXPECT_TRUE(
      check_fair_satisfaction(impl.system, f, lambda).all_fair_runs_satisfy);
}

TEST(Fairness, StreettEncodingCountsPairs) {
  const Nfa structure = section5_ab_system();
  const StreettAutomaton st = strong_fairness_streett(structure);
  EXPECT_EQ(st.pairs().size(), structure.num_transitions());
  EXPECT_EQ(st.num_edges(), structure.num_transitions());
}

TEST(Simulate, FairRunsHitAllLoops) {
  // On {a,b}^ω the fair scheduler must alternate between both self-loops.
  const Nfa structure = section5_ab_system();
  SimulationOptions options;
  options.steps = 100;
  const Word run = simulate_fair_run(structure, options);
  ASSERT_EQ(run.size(), 100u);
  const Symbol a = structure.alphabet()->id("a");
  const Symbol b = structure.alphabet()->id("b");
  EXPECT_EQ(std::count(run.begin(), run.end(), a), 50);
  EXPECT_EQ(std::count(run.begin(), run.end(), b), 50);
}

TEST(Simulate, SynthesizedServerProducesResults) {
  const Buchi system = fig2_limit();
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const FairImplementation impl =
      synthesize_fair_implementation(system, parse_ltl("G F result"), lambda);
  SimulationOptions options;
  options.steps = 400;
  options.seed = 3;
  const Word run = simulate_fair_run(impl.system.structure(), options);
  const Symbol result = system.alphabet()->id("result");
  EXPECT_GT(std::count(run.begin(), run.end(), result), 10);
}

// ---------------------------------------------------------------------------
// End-to-end Theorem 5.1 property test.

class SynthesisProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthesisProperty, Theorem51EndToEnd) {
  Rng rng(GetParam() * 2246822519u + 41);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(3), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 3);

  if (!relative_liveness(system, f, lambda).holds) return;

  const FairImplementation impl =
      synthesize_fair_implementation(system, f, lambda);
  EXPECT_TRUE(same_limit_closed_language(system, impl.system))
      << f.to_string();
  EXPECT_TRUE(
      check_fair_satisfaction(impl.system, f, lambda).all_fair_runs_satisfy)
      << f.to_string();
}

TEST_P(SynthesisProperty, NonRelativeLivenessHasFairViolationSomewhere) {
  // Sanity complement: if P is NOT relative liveness, no transition system
  // with the same language can make all fair runs satisfy it — check at
  // least that the synthesized automaton does not (its language misses the
  // doomed prefixes, so the language test must fail instead).
  Rng rng(GetParam() * 179426549 + 5);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(3), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 3);

  if (relative_liveness(system, f, lambda).holds) return;

  const FairImplementation impl =
      synthesize_fair_implementation(system, f, lambda);
  EXPECT_FALSE(same_limit_closed_language(system, impl.system))
      << f.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace rlv

// Chang–Roberts leader election on a ring, end to end: the safety half
// (only the maximum id can ever be elected) holds outright; the liveness
// half (a leader eventually emerges) is false without fairness — nobody is
// obliged to initiate or deliver — relative liveness always, and true under
// strong fairness. The third distributed case study after the
// alternating-bit protocol and Peterson.

#include <gtest/gtest.h>

#include "rlv/core/monitor.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/ctl/ctl.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"

namespace rlv {
namespace {

TEST(LeaderElection, StateSpaces) {
  for (std::size_t n = 2; n <= 4; ++n) {
    const Nfa system = leader_election_system(n);
    EXPECT_GT(system.num_states(), 4u) << n;
    EXPECT_TRUE(is_prefix_closed(system)) << n;
  }
}

TEST(LeaderElection, OnlyTheMaximumIdWins) {
  for (std::size_t n = 2; n <= 4; ++n) {
    const Nfa system = leader_election_system(n);
    const Buchi behaviors = limit_of_prefix_closed(system);
    const Labeling lambda = Labeling::canonical(system.alphabet());
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const Formula never =
          parse_ltl("G !elected_" + std::to_string(i));
      EXPECT_TRUE(satisfies(behaviors, never, lambda).holds) << "n=" << n
                                                       << " i=" << i;
    }
    // The maximum can win: elected_{n-1} is reachable.
    EXPECT_TRUE(ctl_holds(
        system, parse_ctl("EF can(elected_" + std::to_string(n - 1) + ")")));
  }
}

TEST(LeaderElection, ElectionLivenessTriple) {
  const std::size_t n = 3;
  const Nfa system = leader_election_system(n);
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula elected = parse_ltl("F elected_2");

  // Nobody has to initiate: not satisfied outright.
  EXPECT_FALSE(satisfies(behaviors, elected, lambda).holds);
  // But never doomed: relative liveness.
  EXPECT_TRUE(relative_liveness(behaviors, elected, lambda).holds);
  // And strong fairness forces the election through.
  EXPECT_TRUE(
      check_fair_satisfaction(behaviors, elected, lambda)
          .all_fair_runs_satisfy);

  // Monitoring angle: no reachable doom exists.
  DoomMonitor monitor(behaviors, elected, lambda);
  EXPECT_FALSE(monitor.shortest_doomed_prefix().has_value());
}

TEST(LeaderElection, MessageComplexityWitness) {
  // A run where only the max initiates: its id travels the full ring —
  // n forwards... n-1 forwards plus the elected step. Check the canonical
  // scenario as an explicit behavior for n = 3: init_2, forward_0,
  // forward_1, elected_2.
  const Nfa system = leader_election_system(3);
  const auto& sigma = system.alphabet();
  const Word run = {sigma->id("init_2"), sigma->id("forward_0"),
                    sigma->id("forward_1"), sigma->id("elected_2")};
  EXPECT_TRUE(system.accepts(run));
  // Discards happen when a smaller id meets a bigger process: init_0 then
  // discard at 1... wait: link 0 feeds process 1, and 0 < 1, so discard_1.
  const Word discard_run = {sigma->id("init_0"), sigma->id("discard_1")};
  EXPECT_TRUE(system.accepts(discard_run));
}

}  // namespace
}  // namespace rlv

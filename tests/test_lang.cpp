// Unit and property tests for the finite-word language layer (rlv_lang):
// NFA/DFA semantics, determinization, minimization, complement, boolean
// operations, trimming, prefix languages, inclusion (both algorithms),
// quotients, and equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rlv/lang/alphabet.hpp"
#include "rlv/lang/dfa.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/nfa.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/lang/quotient.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

AlphabetRef ab() {
  static AlphabetRef sigma = Alphabet::make({"a", "b"});
  return sigma;
}

/// NFA for (a|b)*a — words ending with 'a'.
Nfa ends_with_a() {
  Nfa nfa(ab());
  const State s0 = nfa.add_state(false);
  const State s1 = nfa.add_state(true);
  const Symbol a = ab()->id("a");
  const Symbol b = ab()->id("b");
  nfa.add_transition(s0, a, s0);
  nfa.add_transition(s0, b, s0);
  nfa.add_transition(s0, a, s1);
  nfa.set_initial(s0);
  return nfa;
}

/// NFA for words containing "ab" as a factor.
Nfa contains_ab() {
  Nfa nfa(ab());
  const State s0 = nfa.add_state(false);
  const State s1 = nfa.add_state(false);
  const State s2 = nfa.add_state(true);
  const Symbol a = ab()->id("a");
  const Symbol b = ab()->id("b");
  nfa.add_transition(s0, a, s0);
  nfa.add_transition(s0, b, s0);
  nfa.add_transition(s0, a, s1);
  nfa.add_transition(s1, b, s2);
  nfa.add_transition(s2, a, s2);
  nfa.add_transition(s2, b, s2);
  nfa.set_initial(s0);
  return nfa;
}

Word word(std::initializer_list<const char*> names) {
  Word w;
  for (const char* n : names) w.push_back(ab()->id(n));
  return w;
}

/// Random NFA over {a,b} for property tests. Density and acceptance tuned so
/// languages are usually neither empty nor total.
Nfa random_nfa(Rng& rng, std::size_t num_states) {
  Nfa nfa(ab());
  for (std::size_t i = 0; i < num_states; ++i) {
    nfa.add_state(rng.chance(1, 3));
  }
  for (State s = 0; s < num_states; ++s) {
    for (Symbol a = 0; a < 2; ++a) {
      const std::uint64_t fanout = rng.next_below(3);  // 0, 1, or 2 targets
      for (std::uint64_t k = 0; k < fanout; ++k) {
        nfa.add_transition_unique(
            s, a, static_cast<State>(rng.next_below(num_states)));
      }
    }
  }
  nfa.set_initial(static_cast<State>(rng.next_below(num_states)));
  return nfa;
}

std::set<Word> language_up_to(const Nfa& nfa, std::size_t len) {
  const auto words = enumerate_words(nfa, len);
  return {words.begin(), words.end()};
}

TEST(Alphabet, InternAndLookup) {
  auto sigma = Alphabet::make({"x", "y"});
  EXPECT_EQ(sigma->size(), 2u);
  EXPECT_EQ(sigma->name(sigma->id("x")), "x");
  EXPECT_EQ(sigma->name(sigma->id("y")), "y");
  EXPECT_TRUE(sigma->contains("x"));
  EXPECT_FALSE(sigma->contains("z"));
  const Symbol x = sigma->id("x");
  EXPECT_EQ(sigma->intern("x"), x);  // idempotent
}

TEST(Alphabet, FormatWord) {
  auto sigma = Alphabet::make({"lock", "request"});
  Word w = {sigma->id("lock"), sigma->id("request")};
  EXPECT_EQ(sigma->format(w), "lock.request");
  EXPECT_EQ(sigma->format({}), "\xce\xb5");
}

TEST(Nfa, AcceptsBasics) {
  const Nfa nfa = ends_with_a();
  EXPECT_FALSE(nfa.accepts({}));
  EXPECT_TRUE(nfa.accepts(word({"a"})));
  EXPECT_FALSE(nfa.accepts(word({"b"})));
  EXPECT_TRUE(nfa.accepts(word({"b", "b", "a"})));
  EXPECT_FALSE(nfa.accepts(word({"a", "b"})));
}

TEST(Nfa, ReachableAndProductive) {
  Nfa nfa(ab());
  const State s0 = nfa.add_state(false);
  const State s1 = nfa.add_state(true);
  const State dead = nfa.add_state(false);   // reachable, not productive
  const State orphan = nfa.add_state(true);  // productive, not reachable
  nfa.add_transition(s0, ab()->id("a"), s1);
  nfa.add_transition(s0, ab()->id("b"), dead);
  nfa.set_initial(s0);

  const DynBitset reach = nfa.reachable();
  EXPECT_TRUE(reach.test(s0));
  EXPECT_TRUE(reach.test(s1));
  EXPECT_TRUE(reach.test(dead));
  EXPECT_FALSE(reach.test(orphan));

  const DynBitset prod = nfa.productive();
  EXPECT_TRUE(prod.test(s0));
  EXPECT_TRUE(prod.test(s1));
  EXPECT_FALSE(prod.test(dead));
  EXPECT_TRUE(prod.test(orphan));
}

TEST(Determinize, PreservesLanguage) {
  const Nfa nfa = contains_ab();
  const Dfa dfa = determinize(nfa);
  for (const Word& w : enumerate_words(nfa, 6)) {
    EXPECT_TRUE(dfa.accepts(w)) << ab()->format(w);
  }
  EXPECT_EQ(language_up_to(nfa, 6), language_up_to(dfa.to_nfa(), 6));
}

TEST(Determinize, EmptyLanguage) {
  Nfa nfa(ab());
  nfa.add_state(false);
  nfa.set_initial(0);
  const Dfa dfa = determinize(nfa);
  EXPECT_FALSE(dfa.accepts({}));
  EXPECT_FALSE(dfa.accepts(word({"a"})));
}

TEST(Minimize, EndsWithAHasTwoStates) {
  const Dfa min = minimize(determinize(ends_with_a()));
  EXPECT_EQ(min.num_states(), 2u);
  EXPECT_TRUE(min.accepts(word({"b", "a"})));
  EXPECT_FALSE(min.accepts(word({"a", "b"})));
}

TEST(Minimize, ContainsAbHasThreeStates) {
  const Dfa min = minimize(determinize(contains_ab()));
  EXPECT_EQ(min.num_states(), 3u);
}

TEST(Minimize, EmptyLanguage) {
  Nfa nfa(ab());
  nfa.add_state(false);
  nfa.set_initial(0);
  const Dfa min = minimize(determinize(nfa));
  EXPECT_FALSE(min.accepts({}));
  EXPECT_LE(min.num_states(), 1u);
}

TEST(Complement, FlipsMembership) {
  const Dfa dfa = determinize(contains_ab());
  const Dfa comp = complement(dfa);
  for (const Word& w : enumerate_words(prefix_language(contains_ab()), 5)) {
    EXPECT_NE(dfa.accepts(w), comp.accepts(w));
  }
  EXPECT_TRUE(comp.accepts({}));
  EXPECT_TRUE(comp.accepts(word({"b", "a"})));
  EXPECT_FALSE(comp.accepts(word({"a", "b"})));
}

TEST(BooleanOps, IntersectUnionAgreeWithSets) {
  const Nfa x = ends_with_a();
  const Nfa y = contains_ab();
  const auto lx = language_up_to(x, 5);
  const auto ly = language_up_to(y, 5);

  const auto li = language_up_to(intersect(x, y), 5);
  const auto lu = language_up_to(union_nfa(x, y), 5);

  std::set<Word> expect_i;
  std::set_intersection(lx.begin(), lx.end(), ly.begin(), ly.end(),
                        std::inserter(expect_i, expect_i.begin()));
  std::set<Word> expect_u;
  std::set_union(lx.begin(), lx.end(), ly.begin(), ly.end(),
                 std::inserter(expect_u, expect_u.begin()));
  EXPECT_EQ(li, expect_i);
  EXPECT_EQ(lu, expect_u);
}

TEST(Trim, RemovesUselessStates) {
  Nfa nfa(ab());
  const State s0 = nfa.add_state(false);
  const State s1 = nfa.add_state(true);
  nfa.add_state(false);  // dead
  nfa.add_transition(s0, ab()->id("a"), s1);
  nfa.add_transition(s0, ab()->id("b"), 2);
  nfa.set_initial(s0);
  const Nfa trimmed = trim(nfa);
  EXPECT_EQ(trimmed.num_states(), 2u);
  EXPECT_EQ(language_up_to(nfa, 4), language_up_to(trimmed, 4));
}

TEST(PrefixLanguage, ComputesPrefixesOfAbStar) {
  // L = (ab)*; pre(L) = (ab)* + (ab)*a, characterized exactly.
  Nfa nfa(ab());
  const State s0 = nfa.add_state(true);
  const State s1 = nfa.add_state(false);
  nfa.add_transition(s0, ab()->id("a"), s1);
  nfa.add_transition(s1, ab()->id("b"), s0);
  nfa.set_initial(s0);

  const Nfa pre = prefix_language(nfa);
  std::set<Word> expected;
  for (std::size_t k = 0; k <= 2; ++k) {
    Word w;
    for (std::size_t i = 0; i < k; ++i) {
      w.push_back(ab()->id("a"));
      w.push_back(ab()->id("b"));
    }
    expected.insert(w);  // (ab)^k
    w.push_back(ab()->id("a"));
    if (w.size() <= 5) expected.insert(w);  // (ab)^k a
  }
  EXPECT_EQ(language_up_to(pre, 5), expected);
}

TEST(PrefixLanguage, FactorLanguagePrefixesAreTotal) {
  // Every word extends to one containing "ab", so pre(L) = Σ*.
  const Nfa pre = prefix_language(contains_ab());
  Nfa total(ab());
  const State s = total.add_state(true);
  total.add_transition(s, 0, s);
  total.add_transition(s, 1, s);
  total.set_initial(s);
  EXPECT_TRUE(nfa_equivalent(pre, total));
}

TEST(IsEmpty, Detects) {
  Nfa nfa(ab());
  nfa.add_state(false);
  nfa.set_initial(0);
  EXPECT_TRUE(is_empty(nfa));
  nfa.set_accepting(0, true);
  EXPECT_FALSE(is_empty(nfa));
}

TEST(IsPrefixClosed, Classifies) {
  EXPECT_FALSE(is_prefix_closed(ends_with_a()));
  EXPECT_TRUE(is_prefix_closed(prefix_language(ends_with_a())));
  EXPECT_FALSE(is_prefix_closed(contains_ab()));
}

TEST(Equivalence, MinimizationInvariant) {
  const Dfa d1 = determinize(contains_ab());
  const Dfa d2 = minimize(d1);
  EXPECT_TRUE(dfa_equivalent(d1, d2));
  EXPECT_FALSE(dfa_equivalent(d1, determinize(ends_with_a())));
}

TEST(Inclusion, BasicVerdicts) {
  const Nfa x = intersect(ends_with_a(), contains_ab());
  EXPECT_TRUE(is_included(x, ends_with_a(), InclusionAlgorithm::kSubset));
  EXPECT_TRUE(is_included(x, ends_with_a(), InclusionAlgorithm::kAntichain));
  EXPECT_FALSE(is_included(ends_with_a(), x, InclusionAlgorithm::kSubset));
  EXPECT_FALSE(is_included(ends_with_a(), x, InclusionAlgorithm::kAntichain));
}

TEST(Inclusion, CounterexampleIsValid) {
  const auto result = check_inclusion(ends_with_a(), contains_ab());
  ASSERT_FALSE(result.included);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_TRUE(ends_with_a().accepts(*result.counterexample));
  EXPECT_FALSE(contains_ab().accepts(*result.counterexample));
}

TEST(Quotient, ContOfWord) {
  // cont(ab, L) for L = "contains ab" is Σ*.
  const Nfa q = left_quotient(contains_ab(), word({"a", "b"}));
  EXPECT_TRUE(q.accepts({}));
  EXPECT_TRUE(q.accepts(word({"b", "b"})));
  // cont(b, L) is still "contains ab".
  const Nfa q2 = left_quotient(contains_ab(), word({"b"}));
  EXPECT_TRUE(nfa_equivalent(q2, contains_ab()));
}

TEST(Quotient, MyhillNerodeIndex) {
  // "ends with a" has 2 residuals; complete DFA needs no sink (total).
  EXPECT_EQ(myhill_nerode_index(determinize(ends_with_a())), 2u);
  EXPECT_EQ(myhill_nerode_index(determinize(contains_ab())), 3u);
}

TEST(CountWords, MatchesEnumeration) {
  const Nfa nfa = contains_ab();
  const auto counts = count_words(nfa, 5);
  for (std::size_t len = 0; len <= 5; ++len) {
    std::size_t expected = 0;
    for (const Word& w : enumerate_words(nfa, 5)) {
      if (w.size() == len) ++expected;
    }
    EXPECT_EQ(counts[len], expected) << "len=" << len;
  }
}

TEST(ShortestWord, FindsMinimal) {
  const auto w = shortest_word(contains_ab());
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, word({"a", "b"}));
  Nfa empty(ab());
  empty.add_state(false);
  empty.set_initial(0);
  EXPECT_FALSE(shortest_word(empty).has_value());
}

TEST(Regular, ReverseBasics) {
  // reverse(contains "ab") = contains "ba".
  const Nfa rev = reverse_nfa(contains_ab());
  EXPECT_TRUE(rev.accepts(word({"b", "a"})));
  EXPECT_TRUE(rev.accepts(word({"a", "b", "a", "b"})));  // has "ba" inside
  EXPECT_FALSE(rev.accepts(word({"a", "b"})));
  EXPECT_FALSE(rev.accepts(word({"a"})));
}

TEST(Regular, ConcatBasics) {
  // (ends with a) · (contains ab).
  const Nfa cat = concat_nfa(ends_with_a(), contains_ab());
  EXPECT_TRUE(cat.accepts(word({"a", "a", "b"})));
  EXPECT_TRUE(cat.accepts(word({"b", "a", "b", "a", "b"})));
  EXPECT_FALSE(cat.accepts(word({"a", "b"})));  // second part needs "ab"
  EXPECT_FALSE(cat.accepts(word({"a"})));
}

TEST(Regular, StarBasics) {
  // (ab)^* via star of the two-letter word automaton.
  Nfa ab_word(ab());
  const State s0 = ab_word.add_state(false);
  const State s1 = ab_word.add_state(false);
  const State s2 = ab_word.add_state(true);
  ab_word.add_transition(s0, ab()->id("a"), s1);
  ab_word.add_transition(s1, ab()->id("b"), s2);
  ab_word.set_initial(s0);

  const Nfa star = star_nfa(ab_word);
  EXPECT_TRUE(star.accepts({}));
  EXPECT_TRUE(star.accepts(word({"a", "b"})));
  EXPECT_TRUE(star.accepts(word({"a", "b", "a", "b"})));
  EXPECT_FALSE(star.accepts(word({"a"})));
  EXPECT_FALSE(star.accepts(word({"a", "b", "a"})));
  EXPECT_FALSE(star.accepts(word({"b", "a"})));
}

// ---------------------------------------------------------------------------
// Property tests on random automata.

class RandomNfaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNfaProperty, DeterminizeMinimizePreserveLanguage) {
  Rng rng(GetParam());
  const Nfa nfa = random_nfa(rng, 3 + rng.next_below(5));
  const Dfa dfa = determinize(nfa);
  const Dfa min = minimize(dfa);
  EXPECT_EQ(language_up_to(nfa, 6), language_up_to(dfa.to_nfa(), 6));
  EXPECT_EQ(language_up_to(nfa, 6), language_up_to(min.to_nfa(), 6));
  EXPECT_TRUE(dfa_equivalent(dfa, min));
}

TEST_P(RandomNfaProperty, MinimizeIsIdempotentAndMinimal) {
  Rng rng(GetParam() ^ 0xabcdef);
  const Nfa nfa = random_nfa(rng, 3 + rng.next_below(5));
  const Dfa min1 = minimize(determinize(nfa));
  const Dfa min2 = minimize(min1);
  EXPECT_EQ(min1.num_states(), min2.num_states());
  EXPECT_TRUE(dfa_equivalent(min1, min2));
}

TEST_P(RandomNfaProperty, InclusionAlgorithmsAgree) {
  Rng rng(GetParam() * 31 + 7);
  const Nfa x = random_nfa(rng, 3 + rng.next_below(4));
  const Nfa y = random_nfa(rng, 3 + rng.next_below(4));
  const bool subset = is_included(x, y, InclusionAlgorithm::kSubset);
  const bool antichain = is_included(x, y, InclusionAlgorithm::kAntichain);
  EXPECT_EQ(subset, antichain);
  // Cross-check against bounded enumeration: if included, the bounded
  // languages must nest.
  const auto lx = language_up_to(x, 5);
  const auto ly = language_up_to(y, 5);
  const bool bounded_incl =
      std::includes(ly.begin(), ly.end(), lx.begin(), lx.end());
  if (subset) {
    EXPECT_TRUE(bounded_incl);
  }
  // Counterexample, when produced, must be genuine.
  const auto res = check_inclusion(x, y);
  if (!res.included) {
    ASSERT_TRUE(res.counterexample.has_value());
    EXPECT_TRUE(x.accepts(*res.counterexample));
    EXPECT_FALSE(y.accepts(*res.counterexample));
  }
}

TEST_P(RandomNfaProperty, ComplementPartitionsSigmaStar) {
  Rng rng(GetParam() + 99);
  const Nfa nfa = random_nfa(rng, 3 + rng.next_below(4));
  const Dfa dfa = determinize(nfa);
  const Dfa comp = complement(dfa);
  // Every word up to length 5 is in exactly one of the two languages.
  Nfa total(ab());
  const State s = total.add_state(true);
  total.add_transition(s, 0, s);
  total.add_transition(s, 1, s);
  total.set_initial(s);
  for (const Word& w : enumerate_words(total, 5)) {
    EXPECT_NE(dfa.accepts(w), comp.accepts(w)) << ab()->format(w);
  }
}

TEST_P(RandomNfaProperty, RegularOperationsMatchSetSemantics) {
  Rng rng(GetParam() * 524287 + 77);
  const Nfa x = random_nfa(rng, 2 + rng.next_below(3));
  const Nfa y = random_nfa(rng, 2 + rng.next_below(3));

  const auto lx = language_up_to(x, 4);
  const auto ly = language_up_to(y, 4);

  // Reverse: membership of mirrored words.
  const Nfa rev = reverse_nfa(x);
  for (const Word& w : lx) {
    Word m(w.rbegin(), w.rend());
    EXPECT_TRUE(rev.accepts(m));
  }
  EXPECT_EQ(language_up_to(reverse_nfa(rev), 4), lx);

  // Concatenation: w ∈ L(x)·L(y) up to length 4 iff some split works.
  const Nfa cat = concat_nfa(x, y);
  Nfa total(ab());
  const State t = total.add_state(true);
  total.add_transition(t, 0, t);
  total.add_transition(t, 1, t);
  total.set_initial(t);
  for (const Word& w : enumerate_words(total, 4)) {
    bool expected = false;
    for (std::size_t k = 0; k <= w.size() && !expected; ++k) {
      const Word left(w.begin(), w.begin() + k);
      const Word right(w.begin() + k, w.end());
      expected = x.accepts(left) && y.accepts(right);
    }
    EXPECT_EQ(cat.accepts(w), expected) << ab()->format(w);
  }

  // Star: w ∈ L(x)* iff decomposable into non-empty accepted chunks.
  const Nfa star = star_nfa(x);
  for (const Word& w : enumerate_words(total, 4)) {
    // Dynamic programming over split points.
    std::vector<bool> ok(w.size() + 1, false);
    ok[0] = true;
    for (std::size_t i = 1; i <= w.size(); ++i) {
      for (std::size_t j = 0; j < i && !ok[i]; ++j) {
        if (!ok[j]) continue;
        const Word chunk(w.begin() + j, w.begin() + i);
        ok[i] = x.accepts(chunk);
      }
    }
    EXPECT_EQ(star.accepts(w), ok[w.size()]) << ab()->format(w);
  }
  (void)ly;
}

TEST_P(RandomNfaProperty, QuotientSemantics) {
  Rng rng(GetParam() + 12345);
  const Nfa nfa = random_nfa(rng, 3 + rng.next_below(4));
  // For every word w of length <=2: v ∈ cont(w,L) iff wv ∈ L (checked on all
  // v with |v| <= 3).
  Nfa total(ab());
  const State s = total.add_state(true);
  total.add_transition(s, 0, s);
  total.add_transition(s, 1, s);
  total.set_initial(s);
  for (const Word& w : enumerate_words(total, 2)) {
    const Nfa q = left_quotient(nfa, w);
    for (const Word& v : enumerate_words(total, 3)) {
      Word wv = w;
      wv.insert(wv.end(), v.begin(), v.end());
      EXPECT_EQ(q.accepts(v), nfa.accepts(wv));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNfaProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rlv

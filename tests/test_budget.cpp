// Tests for rlv::Budget resource governance: stage attribution, state caps,
// deadlines, ResourceExhausted propagation through the kernels and the
// relative liveness/safety pipeline, engine surfacing as resource_exhausted
// verdicts, and the guarantee that a generous budget never changes a
// verdict relative to unbudgeted execution.

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "rlv/core/relative.hpp"
#include "rlv/engine/engine.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/io/format.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/complement.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/util/budget.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

/// Dense nondeterministic Büchi automaton: every state initial, complete
/// transition relation onto every state, one accepting state. Rank-based
/// complementation of this shape explodes combinatorially.
Buchi dense_buchi(std::size_t num_states, AlphabetRef sigma) {
  Buchi aut(sigma);
  for (State s = 0; s < num_states; ++s) {
    aut.add_state(s == 0);
    aut.set_initial(s);
  }
  for (State s = 0; s < num_states; ++s) {
    for (Symbol a = 0; a < sigma->size(); ++a) {
      for (State t = 0; t < num_states; ++t) aut.add_transition(s, a, t);
    }
  }
  return aut;
}

// ---------------------------------------------------------------------------
// Budget primitives.

TEST(Budget, StateCapTripsWithStageAttribution) {
  Budget budget;
  budget.set_max_states(10);
  StageScope scope(&budget, Stage::kComplement);
  for (int i = 0; i < 10; ++i) budget.charge();
  try {
    budget.charge();
    FAIL() << "expected ResourceExhausted";
  } catch (const ResourceExhausted& e) {
    EXPECT_EQ(e.stage(), Stage::kComplement);
    EXPECT_EQ(e.kind(), ResourceExhausted::Kind::kStates);
  }
  EXPECT_EQ(budget.profile()[Stage::kComplement].states_built, 11u);
}

TEST(Budget, ExpiredDeadlineTripsAtNextStageBoundary) {
  Budget budget;
  budget.set_deadline_in(std::chrono::milliseconds(0));
  // The entry check of a new StageScope consults the clock directly, so an
  // already-expired budget trips even if nothing was ever charged.
  EXPECT_THROW(
      { StageScope scope(&budget, Stage::kInclusion); },
      ResourceExhausted);
}

TEST(Budget, NullBudgetHelpersAreNoOps) {
  budget_charge(nullptr, 1000);
  budget_tick(nullptr);
  budget_note_frontier(nullptr, 1000);
  StageScope scope(nullptr, Stage::kProduct);  // must not crash
}

TEST(Budget, NestedScopesRecordExclusiveTime) {
  Budget budget;
  {
    StageScope outer(&budget, Stage::kTranslate);
    { StageScope inner(&budget, Stage::kProduct); }
    budget.charge(3);
  }
  const QueryProfile& p = budget.profile();
  EXPECT_EQ(p[Stage::kTranslate].calls, 1u);
  EXPECT_EQ(p[Stage::kProduct].calls, 1u);
  EXPECT_EQ(p[Stage::kTranslate].states_built, 3u);
  // Exclusive accounting: total = sum of per-stage exclusive nanos, and the
  // outer stage's nanos exclude the inner scope's.
  EXPECT_GE(p.total_nanos(), p[Stage::kProduct].nanos);
}

// ---------------------------------------------------------------------------
// Kernel-level tripping.

TEST(Budget, ComplementStateCapRaisesInComplementStage) {
  const AlphabetRef sigma = random_alphabet(2);
  const Buchi hard = dense_buchi(6, sigma);
  Budget budget;
  budget.set_max_states(200);
  try {
    const Buchi c = complement_buchi(hard, &budget);
    FAIL() << "expected ResourceExhausted, got " << c.num_states()
           << " states";
  } catch (const ResourceExhausted& e) {
    EXPECT_EQ(e.stage(), Stage::kComplement);
    EXPECT_EQ(e.kind(), ResourceExhausted::Kind::kStates);
  }
}

TEST(Budget, ComplementDeadlineRaisesPromptly) {
  const AlphabetRef sigma = random_alphabet(2);
  const Buchi hard = dense_buchi(7, sigma);
  Budget budget;
  budget.set_deadline_in(std::chrono::milliseconds(50));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)complement_buchi(hard, &budget), ResourceExhausted);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // The tick amortization checks the clock every 64 steps; the raise must
  // come promptly, not after the (hours-long) full construction. Generous
  // margin: construction must have aborted within a second of the deadline.
  EXPECT_LT(elapsed.count(), 2000);
}

TEST(Budget, DeterminizeChargesUnderCallerStage) {
  Rng rng(7);
  const AlphabetRef sigma = random_alphabet(2);
  const Nfa nfa = random_nfa(rng, 8, sigma);
  Budget budget;
  {
    StageScope scope(&budget, Stage::kPreTrim);
    const Dfa dfa = determinize(nfa, &budget);
    EXPECT_EQ(budget.profile()[Stage::kPreTrim].states_built,
              dfa.num_states());
  }
}

TEST(Budget, InclusionRecordsFrontierPeak) {
  Rng rng(11);
  const AlphabetRef sigma = random_alphabet(2);
  const Nfa a = random_nfa(rng, 6, sigma);
  const Nfa b = random_nfa(rng, 6, sigma);
  Budget budget;
  (void)check_inclusion(a, b, InclusionAlgorithm::kAntichain, &budget);
  const StageMetrics& m = budget.profile()[Stage::kInclusion];
  EXPECT_EQ(m.calls, 1u);
  if (m.states_built > 0) {
    EXPECT_GE(m.peak_antichain, 1u);
  }
}

// ---------------------------------------------------------------------------
// relative_* surface the tripped stage instead of a wrong boolean.

TEST(Budget, RelativeSafetyAutomatonFlavorReportsExhausted) {
  Rng rng(3);
  const AlphabetRef sigma = random_alphabet(2);
  const Nfa system_nfa = random_transition_system(rng, 6, sigma);
  const Buchi system = limit_of_prefix_closed(system_nfa);
  const Buchi hard = dense_buchi(6, sigma);

  Budget budget;
  budget.set_max_states(500);
  const RelativeSafetyResult res = relative_safety(system, hard, &budget);
  ASSERT_TRUE(res.exhausted.has_value());
  EXPECT_EQ(*res.exhausted, Stage::kComplement);
  EXPECT_FALSE(res.counterexample.has_value());
}

// Regression: satisfies() used to let ResourceExhausted escape as an
// exception (unlike every relative_* entry point). It now reports the
// tripped stage through SatisfactionResult::exhausted instead.
TEST(Budget, SatisfiesReportsExhaustedInsteadOfThrowing) {
  Rng rng(5);
  const AlphabetRef sigma = random_alphabet(2);
  const Nfa system_nfa = random_transition_system(rng, 6, sigma);
  const Buchi system = limit_of_prefix_closed(system_nfa);
  const Labeling lambda = Labeling::canonical(sigma);

  // Formula flavor: a 1-state budget trips inside the LTL translation.
  Budget tiny;
  tiny.set_max_states(1);
  const SatisfactionResult formula_res =
      satisfies(system, parse_ltl("G F a0"), lambda, &tiny);
  ASSERT_TRUE(formula_res.exhausted.has_value());
  EXPECT_FALSE(formula_res.holds);

  // Automaton flavor: trips inside rank-based complementation.
  Budget tiny2;
  tiny2.set_max_states(1);
  const Buchi hard = dense_buchi(4, sigma);
  const SatisfactionResult automaton_res = satisfies(system, hard, &tiny2);
  ASSERT_TRUE(automaton_res.exhausted.has_value());
  EXPECT_FALSE(automaton_res.holds);

  // An unarmed budget must not report exhaustion.
  Budget unarmed;
  const SatisfactionResult ok = satisfies(system, parse_ltl("G F a0"), lambda,
                                          &unarmed);
  EXPECT_FALSE(ok.exhausted.has_value());
}

TEST(Budget, RelativeLivenessFormulaFlavorUnaffectedByGenerousBudget) {
  Rng rng(17);
  for (int round = 0; round < 25; ++round) {
    const AlphabetRef sigma = random_alphabet(2 + round % 2);
    const Nfa system_nfa = random_transition_system(rng, 4 + round % 4, sigma);
    const Buchi system = limit_of_prefix_closed(system_nfa);
    std::vector<std::string> atoms;
    for (Symbol a = 0; a < sigma->size(); ++a) {
      atoms.push_back(std::string(sigma->name(a)));
    }
    const Formula f = random_formula(rng, atoms, 3);
    const Labeling lambda = Labeling::canonical(sigma);

    Budget generous;
    generous.set_max_states(50'000'000);
    generous.set_deadline_in(std::chrono::minutes(10));

    const RelativeLivenessResult plain = relative_liveness(system, f, lambda);
    const RelativeLivenessResult budgeted =
        relative_liveness(system, f, lambda, InclusionAlgorithm::kAntichain,
                          &generous);
    ASSERT_FALSE(plain.exhausted.has_value());
    ASSERT_FALSE(budgeted.exhausted.has_value());
    EXPECT_EQ(plain.holds, budgeted.holds) << "round " << round;
    EXPECT_EQ(plain.violating_prefix, budgeted.violating_prefix)
        << "round " << round;
  }
}

TEST(Budget, RelativeSafetyAutomatonFlavorUnaffectedByGenerousBudget) {
  Rng rng(23);
  for (int round = 0; round < 10; ++round) {
    const AlphabetRef sigma = random_alphabet(2);
    const Nfa system_nfa = random_transition_system(rng, 4, sigma);
    const Buchi system = limit_of_prefix_closed(system_nfa);
    // Small random properties keep the unbudgeted complement tractable.
    const Buchi property = random_buchi(rng, 3, sigma);

    Budget generous;
    generous.set_max_states(50'000'000);
    generous.set_deadline_in(std::chrono::minutes(10));

    const RelativeSafetyResult plain = relative_safety(system, property);
    const RelativeSafetyResult budgeted =
        relative_safety(system, property, &generous);
    ASSERT_FALSE(plain.exhausted.has_value());
    ASSERT_FALSE(budgeted.exhausted.has_value());
    EXPECT_EQ(plain.holds, budgeted.holds) << "round " << round;
  }
}

TEST(Budget, InclusionVerdictsUnaffectedByGenerousBudget) {
  Rng rng(29);
  for (int round = 0; round < 50; ++round) {
    const AlphabetRef sigma = random_alphabet(2);
    const Nfa a = random_nfa(rng, 5, sigma);
    const Nfa b = random_nfa(rng, 5, sigma);
    Budget generous;
    generous.set_max_states(50'000'000);
    for (const auto algorithm :
         {InclusionAlgorithm::kSubset, InclusionAlgorithm::kAntichain}) {
      const InclusionResult plain = check_inclusion(a, b, algorithm);
      const InclusionResult budgeted =
          check_inclusion(a, b, algorithm, &generous);
      EXPECT_EQ(plain.included, budgeted.included) << "round " << round;
      EXPECT_EQ(plain.counterexample, budgeted.counterexample)
          << "round " << round;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine surfacing.

TEST(Budget, EngineMarksExponentialQueryExhaustedAndAnswersSiblings) {
  Rng rng(5);
  const AlphabetRef sigma = random_alphabet(2);
  const Nfa system_nfa = random_transition_system(rng, 5, sigma);
  const std::string system_text = serialize_system(system_nfa);
  const std::string hard_text = serialize_buchi(dense_buchi(6, sigma));

  Query hard;
  hard.system = system_text;
  hard.property_automaton = hard_text;
  hard.kind = CheckKind::kRelativeSafety;

  Query sibling;
  sibling.system = system_text;
  sibling.formula = "G F a0";
  sibling.kind = CheckKind::kRelativeLiveness;

  EngineOptions limited;
  limited.max_states = 2'000;
  Engine engine(limited);
  const std::vector<Verdict> verdicts = engine.run({sibling, hard, sibling});

  Engine unbudgeted{EngineOptions{}};
  const Verdict reference = unbudgeted.run_one(sibling);

  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_TRUE(verdicts[0].ok());
  EXPECT_EQ(verdicts[0].holds, reference.holds);
  EXPECT_FALSE(verdicts[1].ok());
  EXPECT_TRUE(verdicts[1].resource_exhausted);
  EXPECT_EQ(verdicts[1].exhausted_stage, "complement");
  EXPECT_TRUE(verdicts[1].error.empty());
  EXPECT_TRUE(verdicts[2].ok());
  EXPECT_EQ(verdicts[2].holds, reference.holds);
}

TEST(Budget, ExhaustedVerdictsAreNeverCached) {
  Rng rng(5);
  const AlphabetRef sigma = random_alphabet(2);
  const Nfa system_nfa = random_transition_system(rng, 5, sigma);

  Query hard;
  hard.system = serialize_system(system_nfa);
  hard.property_automaton = serialize_buchi(dense_buchi(6, sigma));
  hard.kind = CheckKind::kRelativeSafety;

  EngineOptions limited;
  limited.max_states = 2'000;
  Engine engine(limited);
  const Verdict first = engine.run_one(hard);
  const Verdict second = engine.run_one(hard);
  EXPECT_TRUE(first.resource_exhausted);
  EXPECT_TRUE(second.resource_exhausted);
  // Both executions computed (and failed) afresh: no verdict-cache hit may
  // serve an exhausted outcome.
  EXPECT_EQ(engine.stats().verdicts.hits, 0u);
  EXPECT_EQ(engine.stats().verdicts.misses, 2u);
}

TEST(Budget, EngineCollectsStageProfilesWithoutLimits) {
  Rng rng(5);
  const AlphabetRef sigma = random_alphabet(2);
  Query query;
  query.system = serialize_system(random_transition_system(rng, 5, sigma));
  query.formula = "G F a0";
  query.kind = CheckKind::kRelativeSafety;

  Engine engine{EngineOptions{}};
  const Verdict verdict = engine.run_one(query);
  ASSERT_TRUE(verdict.ok());
  EXPECT_GT(verdict.profile.total_nanos(), 0u);
  EXPECT_GT(verdict.profile[Stage::kTranslate].calls, 0u);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.stages[Stage::kTranslate].calls,
            verdict.profile[Stage::kTranslate].calls);
  // Stage wall-time sum must not exceed the query's wall time by more than
  // bookkeeping noise (exclusive accounting prevents double counting).
  EXPECT_LE(static_cast<double>(verdict.profile.total_nanos()) / 1e6,
            verdict.millis * 1.5 + 1.0);
}

TEST(Budget, GenerousEngineBudgetMatchesUnbudgetedVerdicts) {
  Rng rng(41);
  std::vector<Query> batch;
  for (int i = 0; i < 12; ++i) {
    const AlphabetRef sigma = random_alphabet(2);
    Query q;
    q.system = serialize_system(random_transition_system(rng, 4, sigma));
    q.formula = i % 2 ? "G F a0" : "G(a0 -> F a1)";
    q.kind = i % 3 == 0 ? CheckKind::kRelativeSafety
                        : CheckKind::kRelativeLiveness;
    batch.push_back(std::move(q));
  }

  Engine plain{EngineOptions{}};
  EngineOptions generous;
  generous.timeout_ms = 600'000;
  generous.max_states = 500'000'000;
  Engine budgeted(generous);

  const std::vector<Verdict> expected = plain.run(batch);
  const std::vector<Verdict> actual = budgeted.run(batch);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].ok(), actual[i].ok()) << "query " << i;
    EXPECT_EQ(expected[i].holds, actual[i].holds) << "query " << i;
    EXPECT_EQ(expected[i].violating_prefix, actual[i].violating_prefix)
        << "query " << i;
  }
}

}  // namespace
}  // namespace rlv

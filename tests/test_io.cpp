// Tests for the textual interchange format (rlv_io): parsing, error
// reporting, serialization round-trips, homomorphism files, and DOT export.

#include <gtest/gtest.h>

#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/hom/simplicity.hpp"
#include "rlv/io/format.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

constexpr const char* kSmallSystem = R"(
# a toy
alphabet: a b
states: 2
initial: 0
accepting: all
0 a 0
0 b 1
1 b 1
)";

TEST(IoParse, SmallSystem) {
  const Nfa nfa = parse_system(kSmallSystem);
  EXPECT_EQ(nfa.num_states(), 2u);
  EXPECT_EQ(nfa.num_transitions(), 3u);
  EXPECT_EQ(nfa.initial().size(), 1u);
  EXPECT_TRUE(nfa.accepts({nfa.alphabet()->id("a"), nfa.alphabet()->id("b"),
                           nfa.alphabet()->id("b")}));
  EXPECT_FALSE(nfa.accepts({nfa.alphabet()->id("b"), nfa.alphabet()->id("a")}));
}

TEST(IoParse, ExplicitAcceptingList) {
  const Nfa nfa = parse_system(R"(
alphabet: x
states: 3
initial: 0
accepting: 2
0 x 1
1 x 2
)");
  EXPECT_FALSE(nfa.accepts({}));
  EXPECT_FALSE(nfa.accepts({0}));
  EXPECT_TRUE(nfa.accepts({0, 0}));
}

TEST(IoParse, Errors) {
  EXPECT_THROW((void)parse_system("states: 1\ninitial: 0\naccepting: all\n"),
               IoError);  // missing alphabet
  EXPECT_THROW((void)parse_system("alphabet: a\ninitial: 0\naccepting: all\n"),
               IoError);  // missing states
  EXPECT_THROW((void)parse_system("alphabet: a\nstates: 1\naccepting: all\n"),
               IoError);  // missing initial
  EXPECT_THROW(
      (void)parse_system(
          "alphabet: a\nstates: 1\ninitial: 0\naccepting: all\n0 zz 0\n"),
      IoError);  // unknown action
  EXPECT_THROW(
      (void)parse_system(
          "alphabet: a\nstates: 1\ninitial: 0\naccepting: all\n0 a 7\n"),
      IoError);  // state out of range
  EXPECT_THROW(
      (void)parse_system(
          "alphabet: a\nstates: 1\ninitial: 0\naccepting: all\nbogus line x y\n"),
      IoError);
  try {
    (void)parse_system("alphabet: a\nstates: x\n");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(IoRoundTrip, PaperSystems) {
  for (const Nfa& original : {figure2_system(), figure3_system()}) {
    const Nfa reparsed = parse_system(serialize_system(original));
    const Nfa remapped = remap_alphabet(reparsed, original.alphabet());
    EXPECT_TRUE(nfa_equivalent(remapped, original));
  }
}

TEST(IoRoundTrip, RandomSystems) {
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    auto sigma = random_alphabet(2 + rng.next_below(2));
    const Nfa original = random_nfa(rng, 2 + rng.next_below(5), sigma);
    const Nfa reparsed = parse_system(serialize_system(original));
    const Nfa remapped = remap_alphabet(reparsed, original.alphabet());
    EXPECT_TRUE(nfa_equivalent(remapped, original));
  }
}

TEST(IoRoundTrip, RandomTransitionSystems) {
  // Transition systems (prefix-closed, all-accepting) round-trip both as
  // languages and structurally: a second serialization is byte-identical,
  // so parse ∘ serialize is idempotent on its own output.
  Rng rng(2026);
  for (int i = 0; i < 25; ++i) {
    auto sigma = random_alphabet(2 + rng.next_below(3));
    const Nfa original =
        random_transition_system(rng, 2 + rng.next_below(7), sigma);
    const std::string text = serialize_system(original);
    const Nfa reparsed = parse_system(text);
    EXPECT_EQ(serialize_system(reparsed), text);
    const Nfa remapped = remap_alphabet(reparsed, original.alphabet());
    EXPECT_TRUE(nfa_equivalent(remapped, original));
  }
}

TEST(IoRoundTrip, RandomBuchi) {
  Rng rng(7);
  for (int i = 0; i < 25; ++i) {
    auto sigma = random_alphabet(2 + rng.next_below(3));
    const Buchi original = random_buchi(rng, 1 + rng.next_below(6), sigma);
    const std::string text = serialize_buchi(original);
    const Buchi reparsed = parse_buchi(text);
    EXPECT_EQ(serialize_buchi(reparsed), text);
    EXPECT_EQ(reparsed.num_states(), original.num_states());
    EXPECT_EQ(reparsed.num_transitions(), original.num_transitions());
    for (State s = 0; s < original.num_states(); ++s) {
      EXPECT_EQ(reparsed.is_accepting(s), original.is_accepting(s));
    }
  }
}

TEST(IoParse, ErrorLineNumbersAreAccurate) {
  const auto line_of = [](const char* text) -> std::size_t {
    try {
      (void)parse_system(text);
    } catch (const IoError& e) {
      return e.line();
    }
    return static_cast<std::size_t>(-1);  // no error thrown
  };
  // Unknown action: reported at the transition's own line, even though the
  // check runs after the whole file is scanned.
  EXPECT_EQ(line_of("alphabet: a\nstates: 2\ninitial: 0\naccepting: all\n"
                    "0 a 1\n1 zz 0\n"),
            6u);
  // Transition target out of range, behind a comment and a blank line.
  EXPECT_EQ(line_of("alphabet: a\nstates: 2\ninitial: 0\naccepting: all\n"
                    "# comment\n\n0 a 9\n"),
            7u);
  // Unparsable state count.
  EXPECT_EQ(line_of("alphabet: a\nstates: x\n"), 2u);
  // Unrecognized line (wrong token count).
  EXPECT_EQ(line_of("alphabet: a\nstates: 2\ninitial: 0\naccepting: all\n"
                    "0 a 1 extra\n"),
            5u);
  // Duplicate alphabet.
  EXPECT_EQ(line_of("alphabet: a\nalphabet: b\n"), 2u);
  // Missing-section errors are whole-file problems: reported as line 0.
  EXPECT_EQ(line_of("alphabet: a\nstates: 1\ninitial: 0\n"), 0u);
}

TEST(IoHom, ParseAndApply) {
  const Nfa fig2 = figure2_system();
  const Homomorphism h = parse_homomorphism(R"(
target: request result reject
map: request -> request
map: result -> result
map: reject -> reject
hide: lock free yes no
)",
                                            fig2.alphabet());
  EXPECT_TRUE(h.hides(fig2.alphabet()->id("lock")));
  EXPECT_FALSE(h.hides(fig2.alphabet()->id("request")));
  // Behaves exactly like the built-in paper abstraction.
  EXPECT_TRUE(check_simplicity(fig2, h).simple);
}

TEST(IoHom, UnlistedLettersDefaultToHidden) {
  const Nfa fig2 = figure2_system();
  const Homomorphism h = parse_homomorphism(
      "target: request\nmap: request -> request\n", fig2.alphabet());
  EXPECT_TRUE(h.hides(fig2.alphabet()->id("lock")));
  EXPECT_TRUE(h.hides(fig2.alphabet()->id("result")));
}

TEST(IoHom, Errors) {
  const Nfa fig2 = figure2_system();
  EXPECT_THROW((void)parse_homomorphism("map: a -> b\n", fig2.alphabet()), IoError);
  EXPECT_THROW(
      (void)parse_homomorphism("target: x\nmap: nosuch -> x\n", fig2.alphabet()),
      IoError);
  EXPECT_THROW(
      (void)parse_homomorphism("target: x\nhide: nosuch\n", fig2.alphabet()),
      IoError);
}

TEST(IoBuchi, RoundTrip) {
  // A Büchi automaton with a non-trivial acceptance set survives the text
  // format (acceptance = the accepting: list).
  Buchi buchi(Alphabet::make({"a", "b"}));
  const State s0 = buchi.add_state(false);
  const State s1 = buchi.add_state(true);
  buchi.add_transition(s0, 0, s0);
  buchi.add_transition(s0, 0, s1);
  buchi.add_transition(s1, 1, s0);
  buchi.set_initial(s0);

  const Buchi reparsed = parse_buchi(serialize_buchi(buchi));
  EXPECT_EQ(reparsed.num_states(), 2u);
  EXPECT_FALSE(reparsed.is_accepting(0));
  EXPECT_TRUE(reparsed.is_accepting(1));
  EXPECT_EQ(reparsed.num_transitions(), 3u);
}

TEST(IoExplain, AnnotatesStates) {
  const Nfa fig2 = figure2_system();
  const auto& sigma = fig2.alphabet();
  const std::string trace = explain_word(
      fig2, {sigma->id("request"), sigma->id("yes"), sigma->id("result")});
  EXPECT_NE(trace.find("start        {0}"), std::string::npos);
  EXPECT_NE(trace.find("request"), std::string::npos);
  EXPECT_NE(trace.find("{1}"), std::string::npos);  // got_request, free

  const std::string bad =
      explain_word(fig2, {sigma->id("result")});
  EXPECT_NE(bad.find("left the system"), std::string::npos);

  const std::string lasso = explain_lasso(
      fig2, {sigma->id("lock")},
      {sigma->id("request"), sigma->id("no"), sigma->id("reject")});
  EXPECT_NE(lasso.find("period"), std::string::npos);
}

TEST(IoHoa, ExportShape) {
  Buchi buchi(Alphabet::make({"a", "b"}));
  const State s0 = buchi.add_state(false);
  const State s1 = buchi.add_state(true);
  buchi.add_transition(s0, 0, s1);
  buchi.add_transition(s1, 1, s0);
  buchi.set_initial(s0);
  const std::string hoa = to_hoa(buchi, "demo");
  EXPECT_NE(hoa.find("HOA: v1"), std::string::npos);
  EXPECT_NE(hoa.find("States: 2"), std::string::npos);
  EXPECT_NE(hoa.find("Start: 0"), std::string::npos);
  EXPECT_NE(hoa.find("AP: 2 \"a\" \"b\""), std::string::npos);
  EXPECT_NE(hoa.find("Acceptance: 1 Inf(0)"), std::string::npos);
  EXPECT_NE(hoa.find("State: 1 {0}"), std::string::npos);
  EXPECT_NE(hoa.find("[0&!1] 1"), std::string::npos);
  EXPECT_NE(hoa.find("[!0&1] 0"), std::string::npos);
  EXPECT_NE(hoa.find("--END--"), std::string::npos);
}

TEST(IoDot, ContainsStructure) {
  const std::string dot = to_dot(figure2_system(), "fig2");
  EXPECT_NE(dot.find("digraph fig2"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("label=\"request\""), std::string::npos);
  EXPECT_NE(dot.find("init -> s0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Line normalization shared by the rlvd batch reader and the wire protocol.

TEST(IoStripCr, RemovesExactlyOneTrailingCarriageReturn) {
  // Regression: a batch file (or network peer) with CRLF line endings must
  // parse identically to one with LF — the stray '\r' used to reach the
  // line parsers as part of the last token.
  EXPECT_EQ(strip_cr("fig2.rlv --ltl \"G F result\"\r"),
            "fig2.rlv --ltl \"G F result\"");
  EXPECT_EQ(strip_cr("no ending"), "no ending");
  EXPECT_EQ(strip_cr("\r"), "");
  EXPECT_EQ(strip_cr(""), "");
  EXPECT_EQ(strip_cr("a\r\r"), "a\r");     // one per line-split, not greedy
  EXPECT_EQ(strip_cr("a\rb"), "a\rb");     // interior bytes untouched
}

// ---------------------------------------------------------------------------
// JSON string escaping (used by rlvd result lines).

TEST(IoJson, PassesPlainStringsThrough) {
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("G F result"), "G F result");
  EXPECT_EQ(json_escape("fig2.rlv"), "fig2.rlv");
}

TEST(IoJson, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("C:\\tmp\\x.rlv"), "C:\\\\tmp\\\\x.rlv");
  EXPECT_EQ(json_escape("\\\""), "\\\\\\\"");
}

TEST(IoJson, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(json_escape(std::string_view("\0", 1)), "\\u0000");
}

TEST(IoJson, HostileFileNameAndFormulaStayValidJson) {
  // A batch line can reference any file name and any formula text; the
  // result line must remain one well-formed JSON object.
  const std::string name = "evil\",\"holds\":true,\"x\":\"\n.rlv";
  const std::string formula = "G \"F\"\tresult \\ U";
  const std::string escaped_name = json_escape(name);
  const std::string escaped_formula = json_escape(formula);
  for (const std::string& s : {escaped_name, escaped_formula}) {
    EXPECT_EQ(s.find('\n'), std::string::npos);
    EXPECT_EQ(s.find('\t'), std::string::npos);
    // Every '"' is preceded by an odd run of backslashes (i.e. escaped).
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '"') continue;
      std::size_t backslashes = 0;
      for (std::size_t j = i; j-- > 0 && s[j] == '\\';) ++backslashes;
      EXPECT_EQ(backslashes % 2, 1u) << s << " at " << i;
    }
  }
  EXPECT_EQ(escaped_name,
            "evil\\\",\\\"holds\\\":true,\\\"x\\\":\\\"\\n.rlv");
}

}  // namespace
}  // namespace rlv

// Tests for the core relative liveness / relative safety machinery:
// Definitions 4.1/4.2 via Lemmas 4.3/4.4, Theorem 4.7 (satisfaction =
// relative liveness ∧ relative safety), machine closure (Definition 4.6),
// and the Cantor-topology view (Lemmas 4.9/4.10, Definition 4.8).

#include <gtest/gtest.h>

#include "rlv/core/machine_closure.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/core/topology.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/lang/quotient.hpp"
#include "rlv/ltl/eval.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

/// lim of the Figure 2 system as a Büchi automaton.
Buchi fig2_limit() { return limit_of_prefix_closed(figure2_system()); }
Buchi fig3_limit() { return limit_of_prefix_closed(figure3_system()); }

TEST(RelativeLiveness, BoxDiamondResultOnFigure2) {
  const Buchi system = fig2_limit();
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula f = parse_ltl("G F result");

  // Not classically satisfied: lock (request no reject)^ω is a behavior.
  EXPECT_FALSE(satisfies(system, f, lambda).holds);
  // But it is a relative liveness property (the paper's Section 2 claim).
  EXPECT_TRUE(relative_liveness(system, f, lambda).holds);
  // And not a relative safety property (otherwise Thm 4.7 would force
  // satisfaction).
  EXPECT_FALSE(relative_safety(system, f, lambda).holds);
}

TEST(RelativeLiveness, FailsOnFigure3) {
  const Buchi system = fig3_limit();
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula f = parse_ltl("G F result");

  const auto res = relative_liveness(system, f, lambda);
  EXPECT_FALSE(res.holds);
  ASSERT_TRUE(res.violating_prefix.has_value());
  // The violating prefix is a real behavior prefix...
  EXPECT_TRUE(figure3_system().accepts(*res.violating_prefix));
  // ...from which no continuation inside the system satisfies GF result:
  // verified against the definition-level probe via the product automaton.
  const Buchi property = translate_ltl(f, lambda);
  const Buchi both = intersect_buchi(system, property);
  const Nfa advanced =
      left_quotient(prefix_nfa(both), *res.violating_prefix);
  EXPECT_TRUE(is_empty(advanced));
}

TEST(RelativeLiveness, BothAlgorithmsAgreeOnPaperExamples) {
  const Formula f = parse_ltl("G F result");
  for (const bool buggy : {false, true}) {
    const Buchi system = buggy ? fig3_limit() : fig2_limit();
    const Labeling lambda = Labeling::canonical(system.alphabet());
    const bool subset =
        relative_liveness(system, f, lambda, InclusionAlgorithm::kSubset)
            .holds;
    const bool antichain =
        relative_liveness(system, f, lambda, InclusionAlgorithm::kAntichain)
            .holds;
    EXPECT_EQ(subset, antichain);
    EXPECT_EQ(subset, !buggy);
  }
}

TEST(RelativeSafety, NeverYesIsRelativeSafetyButNotLiveness) {
  const Buchi system = fig2_limit();
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula f = parse_ltl("G !yes");

  EXPECT_TRUE(relative_safety(system, f, lambda).holds);
  EXPECT_FALSE(relative_liveness(system, f, lambda).holds);
  EXPECT_FALSE(satisfies(system, f, lambda).holds);
}

TEST(RelativeSafety, CounterexampleIsGenuine) {
  const Buchi system = fig2_limit();
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula f = parse_ltl("G F result");

  const auto res = relative_safety(system, f, lambda);
  ASSERT_FALSE(res.holds);
  ASSERT_TRUE(res.counterexample.has_value());
  const Lasso& x = *res.counterexample;
  // x ∈ L_ω and x ∉ P.
  EXPECT_TRUE(accepts_lasso(system, x));
  EXPECT_FALSE(eval_ltl(f, x.prefix, x.period, lambda));
}

TEST(Satisfaction, PositiveCase) {
  // Figure 2 always satisfies: every request is preceded by... simpler:
  // G(result -> X true) trivially, and the real check: G(yes -> F result)?
  // After yes the server is in `ok`; the only visible next server step is
  // result, but lock/free may interleave — F result still needs fairness.
  // Use a genuinely satisfied property instead: G(result -> !X result)
  // (two results never happen back-to-back: result leads to idle).
  const Buchi system = fig2_limit();
  const Labeling lambda = Labeling::canonical(system.alphabet());
  EXPECT_TRUE(satisfies(system, parse_ltl("G(result -> !(X result))"), lambda).holds);
  EXPECT_FALSE(satisfies(system, parse_ltl("G(yes -> F result)"), lambda).holds);
  EXPECT_TRUE(relative_liveness(system, parse_ltl("G(yes -> F result)"),
                                lambda)
                  .holds);
}

TEST(MachineClosure, EquivalentToRelativeLiveness) {
  // Paper remark after Thm 4.5: P is RL of L ⟺ (L, P ∩ L) machine closed.
  const Buchi system = fig2_limit();
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Buchi good = translate_ltl(parse_ltl("G F result"), lambda);
  EXPECT_TRUE(is_machine_closed(system, intersect_buchi(system, good)));

  const Buchi bad_sys = fig3_limit();
  const Labeling lambda3 = Labeling::canonical(bad_sys.alphabet());
  const Buchi good3 = translate_ltl(parse_ltl("G F result"), lambda3);
  EXPECT_FALSE(is_machine_closed(bad_sys, intersect_buchi(bad_sys, good3)));
}

TEST(Topology, CantorMetric) {
  auto sigma = Alphabet::make({"a", "b"});
  const Symbol a = sigma->id("a");
  const Symbol b = sigma->id("b");
  const Lasso x{{a}, {b}};            // a b^ω
  const Lasso y{{a, b}, {b}};         // a b^ω (same word, shifted)
  const Lasso z{{a, b, b, a}, {b}};   // a b b a b^ω
  EXPECT_EQ(cantor_distance(x, y), 0.0);
  EXPECT_EQ(common_prefix_length(x, z), 3u);
  EXPECT_DOUBLE_EQ(cantor_distance(x, z), 0.25);
  // Symmetry and identity of indiscernibles on samples.
  EXPECT_DOUBLE_EQ(cantor_distance(z, x), cantor_distance(x, z));
}

TEST(Topology, DenseAndClosedWrappers) {
  const Buchi system = fig2_limit();
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Buchi live_prop = translate_ltl(parse_ltl("G F result"), lambda);
  const Buchi safe_prop = translate_ltl(parse_ltl("G !yes"), lambda);
  EXPECT_TRUE(is_dense_in(live_prop, system));     // Lemma 4.9
  EXPECT_FALSE(is_dense_in(safe_prop, system));
  EXPECT_TRUE(is_closed_in(safe_prop, system));    // Lemma 4.10
  EXPECT_FALSE(is_closed_in(live_prop, system));
}

TEST(Topology, DefinitionLevelProbeMatchesLemma43) {
  const Buchi system = fig2_limit();
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Buchi prop = translate_ltl(parse_ltl("G F result"), lambda);
  EXPECT_TRUE(relative_liveness_by_definition(system, prop, 4));

  const Buchi bad_sys = fig3_limit();
  const Labeling lambda3 = Labeling::canonical(bad_sys.alphabet());
  const Buchi prop3 = translate_ltl(parse_ltl("G F result"), lambda3);
  EXPECT_FALSE(relative_liveness_by_definition(bad_sys, prop3, 4));
}

// ---------------------------------------------------------------------------
// Property tests: Theorem 4.7 and cross-validation of the two relative
// safety implementations.

class RelativeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelativeProperty, Theorem47Decomposition) {
  Rng rng(GetParam() * 48271 + 11);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(4), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 3);

  const bool sat = satisfies(system, f, lambda).holds;
  const bool rl = relative_liveness(system, f, lambda).holds;
  const bool rs = relative_safety(system, f, lambda).holds;
  EXPECT_EQ(sat, rl && rs) << f.to_string();
}

TEST_P(RelativeProperty, MachineClosureMatchesRelativeLiveness) {
  Rng rng(GetParam() * 16807 + 23);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(4), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 3);
  const Buchi prop = translate_ltl(f, lambda);

  EXPECT_EQ(relative_liveness(system, prop).holds,
            is_machine_closed(system, intersect_buchi(system, prop)))
      << f.to_string();
}

TEST_P(RelativeProperty, SafetyFlavorsAgree) {
  // Formula route vs automaton route (rank-based complementation).
  Rng rng(GetParam() * 69621 + 31);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(3), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  // Keep formulas tiny: the rank construction explodes quickly.
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 2);
  const Buchi prop = translate_ltl(f, lambda);
  if (prop.num_states() > 6) return;

  EXPECT_EQ(relative_safety(system, f, lambda).holds,
            relative_safety(system, prop).holds)
      << f.to_string();
}

TEST_P(RelativeProperty, LivenessFlavorsAgree) {
  Rng rng(GetParam() * 925 + 7);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(4), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 3);
  const Buchi prop = translate_ltl(f, lambda);

  EXPECT_EQ(relative_liveness(system, f, lambda).holds,
            relative_liveness(system, prop).holds)
      << f.to_string();
}

TEST_P(RelativeProperty, DefinitionProbeNeverContradictsChecker) {
  Rng rng(GetParam() * 7 + 3);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(3), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 2);
  const Buchi prop = translate_ltl(f, lambda);

  const bool checker = relative_liveness(system, prop).holds;
  const bool probe = relative_liveness_by_definition(system, prop, 4);
  // The probe only examines prefixes up to length 4, so "checker false"
  // may escape it — but "checker true" must never be refuted by the probe.
  if (checker) {
    EXPECT_TRUE(probe) << f.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelativeProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace rlv

// Tests for the CTL checker (rlv/ctl) and the bridge the paper's §9 points
// to: the ∀□∃◇ shape AG EF can(a) coincides with relative liveness of □◇⟨a⟩
// on transition systems.

#include <gtest/gtest.h>

#include "rlv/core/relative.hpp"
#include "rlv/ctl/ctl.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/ltl/ast.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

TEST(CtlParser, RoundTripShapes) {
  EXPECT_EQ(parse_ctl("AG EF can(result)"),
            c_ag(c_ef(c_can("result"))));
  EXPECT_EQ(parse_ctl("E[can(a) U deadlock]"),
            c_eu(c_can("a"), c_deadlock()));
  EXPECT_EQ(parse_ctl("A[true U can(x)]"), c_au(c_true(), c_can("x")));
  EXPECT_EQ(parse_ctl("!can(a) && (EX can(b) || deadlock)"),
            c_and(c_not(c_can("a")),
                  c_or(c_ex(c_can("b")), c_deadlock())));
  EXPECT_THROW((void)parse_ctl("EF"), std::runtime_error);
  EXPECT_THROW((void)parse_ctl("can(a"), std::runtime_error);
}

TEST(Ctl, BasicsOnFigure2) {
  const Nfa fig2 = figure2_system();
  EXPECT_TRUE(ctl_holds(fig2, parse_ctl("AG EF can(result)")));
  EXPECT_TRUE(ctl_holds(fig2, parse_ctl("AG EF can(reject)")));
  EXPECT_TRUE(ctl_holds(fig2, parse_ctl("EF can(yes)")));
  EXPECT_FALSE(ctl_holds(fig2, parse_ctl("AG can(request)")));
  EXPECT_TRUE(ctl_holds(fig2, parse_ctl("AG !deadlock")));
  // From the initial state, a yes can be reached without ever locking?
  // E[!can(free) U can(yes)]: can(free) only in locked states, so stay free
  // until yes — possible: request then yes.
  EXPECT_TRUE(ctl_holds(fig2, parse_ctl("E[!can(free) U can(yes)]")));
}

TEST(Ctl, BasicsOnFigure3) {
  const Nfa fig3 = figure3_system();
  // The buggy server: after locking, results become unreachable.
  EXPECT_FALSE(ctl_holds(fig3, parse_ctl("AG EF can(result)")));
  EXPECT_TRUE(ctl_holds(fig3, parse_ctl("EF can(result)")));
  // Locking is reachable and from there no state can do `yes`.
  EXPECT_TRUE(ctl_holds(fig3, parse_ctl("EF !EF can(yes)")));
}

TEST(Ctl, DeadlockDetection) {
  auto sigma = Alphabet::make({"a"});
  Nfa nfa(sigma);
  const State s0 = nfa.add_state(true);
  const State s1 = nfa.add_state(true);
  nfa.add_transition(s0, sigma->id("a"), s1);
  nfa.set_initial(s0);
  EXPECT_TRUE(ctl_holds(nfa, parse_ctl("EF deadlock")));
  EXPECT_TRUE(ctl_holds(nfa, parse_ctl("AF deadlock")));
  EXPECT_FALSE(ctl_holds(nfa, parse_ctl("deadlock")));
  EXPECT_TRUE(ctl_holds(nfa, parse_ctl("AX deadlock")));
  // EG can(a) fails: the path dies after one step.
  EXPECT_FALSE(ctl_holds(nfa, parse_ctl("EG can(a)")));
}

TEST(Ctl, EgOnLoop) {
  auto sigma = Alphabet::make({"a", "b"});
  Nfa nfa(sigma);
  const State s0 = nfa.add_state(true);
  const State s1 = nfa.add_state(true);
  nfa.add_transition(s0, sigma->id("a"), s0);
  nfa.add_transition(s0, sigma->id("b"), s1);
  nfa.add_transition(s1, sigma->id("b"), s1);
  nfa.set_initial(s0);
  EXPECT_TRUE(ctl_holds(nfa, parse_ctl("EG can(a)")));   // stay on the a-loop
  EXPECT_TRUE(ctl_holds(nfa, parse_ctl("EG can(b)")));
  EXPECT_FALSE(ctl_holds(nfa, parse_ctl("AG can(a)")));
}

// ---------------------------------------------------------------------------
// The §9 bridge: AG EF can(a) ⟺ □◇⟨a⟩ relative liveness.

class CtlBridgeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CtlBridgeProperty, AgEfEquivalentToRelativeLivenessOfGf) {
  // Valid for deterministic transition systems (which
  // random_transition_system produces: at most one successor per state and
  // letter): every prefix reaches a unique state, so "every prefix can be
  // extended with another a" ⟺ "every reachable state can reach an
  // a-transition". With nondeterminism the linear side only needs *some*
  // run to survive, and the equivalence breaks.
  Rng rng(GetParam() * 7432109 + 13);
  auto sigma = random_alphabet(2 + rng.next_below(2));
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(4), sigma);
  if (ts.num_states() == 0) return;
  for (State s = 0; s < ts.num_states(); ++s) {
    for (Symbol a = 0; a < sigma->size(); ++a) {
      ASSERT_LE(ts.successors(s, a).size(), 1u) << "generator regression";
    }
  }
  const Buchi behaviors = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);

  for (Symbol a = 0; a < sigma->size(); ++a) {
    const bool branching =
        ctl_holds(ts, c_ag(c_ef(c_can(sigma->name(a)))));
    const bool linear =
        relative_liveness(behaviors,
                          f_always(f_eventually(f_atom(sigma->name(a)))),
                          lambda)
            .holds;
    EXPECT_EQ(branching, linear)
        << "action " << sigma->name(a) << " on\n"
        << ts.to_string();
  }
}

TEST(CtlBridge, OneShotEventuallyIsNotAgEf) {
  // The one-shot ◇a does NOT pair with AG EF can(a): a prefix that already
  // contains an a satisfies ◇a under every extension, so states reached
  // only after an a impose no constraint. Concrete witness:
  // s0 -a-> s1, s1 -b-> s1.
  auto sigma = Alphabet::make({"a", "b"});
  Nfa ts(sigma);
  const State s0 = ts.add_state(true);
  const State s1 = ts.add_state(true);
  ts.add_transition(s0, sigma->id("a"), s1);
  ts.add_transition(s1, sigma->id("b"), s1);
  ts.set_initial(s0);

  const Buchi behaviors = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  EXPECT_TRUE(relative_liveness(behaviors, f_eventually(f_atom("a")), lambda)
                  .holds);
  EXPECT_FALSE(ctl_holds(ts, c_ag(c_ef(c_can("a")))));
  // □◇a, in contrast, pairs correctly: both sides fail.
  EXPECT_FALSE(
      relative_liveness(behaviors,
                        f_always(f_eventually(f_atom("a"))), lambda)
          .holds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtlBridgeProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace rlv

// Tests for the abstraction pipeline (Sections 6–8, experiments E3/E8):
// Theorem 8.2 (simple homomorphism ⟹ relative liveness transfers to the
// concrete system), Theorem 8.3 (the converse direction, no simplicity
// needed), Corollary 8.4, and the paper's Figure 2 / Figure 3 contrast —
// the abstract verdict is identical for both, and only simplicity tells
// the sound transfer apart from the unsound one.

#include <gtest/gtest.h>

#include "rlv/core/preservation.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/transform.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

TEST(Preservation, HomLabeling) {
  const Nfa fig2 = figure2_system();
  const Homomorphism h = paper_abstraction(fig2.alphabet());
  const Labeling lambda = hom_labeling(h);
  EXPECT_TRUE(lambda.holds(fig2.alphabet()->id("request"), "request"));
  EXPECT_TRUE(
      lambda.holds(fig2.alphabet()->id("lock"), std::string(kEpsilonAtom)));
  EXPECT_FALSE(lambda.holds(fig2.alphabet()->id("lock"), "request"));
}

TEST(Preservation, MaximalWordDetection) {
  auto sigma = Alphabet::make({"a", "b"});
  Nfa with_max(sigma);
  const State s0 = with_max.add_state(true);
  const State s1 = with_max.add_state(true);
  with_max.add_transition(s0, sigma->id("a"), s0);
  with_max.add_transition(s0, sigma->id("b"), s1);
  with_max.set_initial(s0);
  EXPECT_TRUE(has_maximal_words(with_max));
  EXPECT_FALSE(has_maximal_words(extend_maximal_words(with_max)));
  EXPECT_FALSE(has_maximal_words(figure2_system()));
}

TEST(Preservation, Figure2PipelineTransfersPositively) {
  const Nfa fig2 = figure2_system();
  const Homomorphism h = paper_abstraction(fig2.alphabet());
  const Formula eta = to_pnf(parse_ltl("G F result"));

  const AbstractionVerdict verdict = verify_via_abstraction(fig2, h, eta);
  EXPECT_TRUE(verdict.abstract_holds);
  EXPECT_TRUE(verdict.simplicity.simple);
  EXPECT_FALSE(verdict.image_has_maximal_words);
  ASSERT_TRUE(verdict.concrete_holds.has_value());
  EXPECT_TRUE(*verdict.concrete_holds);
  EXPECT_LT(verdict.abstract_states, verdict.concrete_states);

  // The transferred verdict matches the direct concrete check.
  EXPECT_TRUE(concrete_relative_liveness(fig2, h, eta));
}

TEST(Preservation, Figure3PipelineRefusesTransfer) {
  const Nfa fig3 = figure3_system();
  const Homomorphism h = paper_abstraction(fig3.alphabet());
  const Formula eta = to_pnf(parse_ltl("G F result"));

  const AbstractionVerdict verdict = verify_via_abstraction(fig3, h, eta);
  // Abstractly the property looks fine (Figure 4 satisfies it) ...
  EXPECT_TRUE(verdict.abstract_holds);
  // ... but the homomorphism is not simple, so no conclusion is drawn.
  EXPECT_FALSE(verdict.simplicity.simple);
  EXPECT_FALSE(verdict.concrete_holds.has_value());

  // And indeed the concrete property FAILS — transferring blindly would
  // have been unsound (this is exactly the paper's warning).
  EXPECT_FALSE(concrete_relative_liveness(fig3, h, eta));
}

TEST(Preservation, AbstractFailureRefutesConcretely) {
  // Theorem 8.3 contrapositive: abstract failure ⟹ concrete failure — on
  // systems that cannot diverge on hidden letters. Hide only yes/no (no
  // hidden cycle) and refute with "G reject", which fails abstractly.
  const Nfa fig2 = figure2_system();
  const Homomorphism h = Homomorphism::projection(
      fig2.alphabet(), {"lock", "free", "request", "result", "reject"});
  const Formula hard = to_pnf(parse_ltl("G reject"));
  const AbstractionVerdict verdict = verify_via_abstraction(fig2, h, hard);
  EXPECT_FALSE(verdict.abstract_holds);
  EXPECT_FALSE(verdict.hidden_divergence);
  ASSERT_TRUE(verdict.concrete_holds.has_value());
  EXPECT_FALSE(*verdict.concrete_holds);
  EXPECT_FALSE(concrete_relative_liveness(fig2, h, hard));
}

TEST(Preservation, HiddenDivergenceVoidsRefutation) {
  // The full paper abstraction hides the lock/free cycle, so Figure 2 can
  // diverge on hidden letters (… lock free lock free … maps to ε^ω). An
  // all-ε tail satisfies the weak-release clauses of R̄(η), so an abstract
  // failure no longer refutes the concrete property — the pipeline must
  // detect the divergence and draw no conclusion.
  const Nfa fig2 = figure2_system();
  const Homomorphism h = paper_abstraction(fig2.alphabet());
  const Formula hard = to_pnf(parse_ltl("G reject"));
  const AbstractionVerdict verdict = verify_via_abstraction(fig2, h, hard);
  EXPECT_FALSE(verdict.abstract_holds);
  EXPECT_TRUE(verdict.hidden_divergence);
  EXPECT_FALSE(verdict.concrete_holds.has_value());
  EXPECT_FALSE(hides_divergence(
      fig2, Homomorphism::projection(
                fig2.alphabet(),
                {"lock", "free", "request", "result", "reject"})));
}

TEST(Preservation, TransformedFormulaMentionsEpsilon) {
  const Nfa fig2 = figure2_system();
  const Homomorphism h = paper_abstraction(fig2.alphabet());
  const AbstractionVerdict verdict =
      verify_via_abstraction(fig2, h, to_pnf(parse_ltl("G F result")));
  const auto atoms = verdict.transformed.atoms();
  EXPECT_NE(std::find(atoms.begin(), atoms.end(), std::string(kEpsilonAtom)),
            atoms.end());
}

// ---------------------------------------------------------------------------
// Property tests for Theorems 8.2 / 8.3 on random systems.

class PreservationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PreservationProperty, Theorem82SimpleTransfersSoundly) {
  Rng rng(GetParam() * 40503 + 19);
  auto sigma = random_alphabet(3);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(4), sigma);
  if (ts.num_states() == 0) return;
  const Homomorphism h = random_homomorphism(rng, sigma, 2, 30);

  // Side condition of Thm 8.2: h(L) without maximal words. Our transition
  // systems have none concretely, but hiding can create them abstractly —
  // skip those samples.
  const Nfa abstract = image_nfa(ts, h);
  if (abstract.num_states() == 0 || has_maximal_words(abstract)) return;

  const Formula eta = to_pnf(
      random_formula(rng, {h.target()->name(0), h.target()->name(1)}, 2));

  if (!check_simplicity(ts, h).simple) return;
  const bool abstract_rl = abstract_relative_liveness(ts, h, eta);
  const bool concrete_rl = concrete_relative_liveness(ts, h, eta);
  // Theorem 8.2: the positive transfer is sound unconditionally.
  if (abstract_rl) {
    EXPECT_TRUE(concrete_rl) << eta.to_string();
  }
  // Corollary 8.4: with simplicity AND divergence-freedom the verdicts
  // coincide (a hidden-divergent sample can rescue R̄(η) concretely).
  if (!hides_divergence(ts, h)) {
    EXPECT_EQ(abstract_rl, concrete_rl) << eta.to_string();
  }
}

TEST_P(PreservationProperty, Theorem83ConverseNeedsNoSimplicity) {
  Rng rng(GetParam() * 69069 + 3);
  auto sigma = random_alphabet(3);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(4), sigma);
  if (ts.num_states() == 0) return;
  const Homomorphism h = random_homomorphism(rng, sigma, 2, 30);
  const Nfa abstract = image_nfa(ts, h);
  if (abstract.num_states() == 0 || has_maximal_words(abstract)) return;

  const Formula eta = to_pnf(
      random_formula(rng, {h.target()->name(0), h.target()->name(1)}, 2));

  const bool concrete_rl = concrete_relative_liveness(ts, h, eta);
  const bool abstract_rl = abstract_relative_liveness(ts, h, eta);
  // Thm 8.3: concrete R̄(η) relative liveness ⟹ abstract η relative
  // liveness (equivalently: abstract failure ⟹ concrete failure) —
  // requires divergence-freedom, no simplicity.
  if (concrete_rl && !hides_divergence(ts, h)) {
    EXPECT_TRUE(abstract_rl) << eta.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreservationProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace rlv

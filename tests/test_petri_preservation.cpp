// End-to-end preservation tests for the rlv::petri scenario frontier:
// unfold a classic 1-safe net, derive the abstraction homomorphism from
// its hide annotation, and confirm that the Sections 6–8 transfer theorems
// hold against the direct concrete checks — Theorem 8.2 (simple ⟹ the
// positive abstract verdict transfers), Theorem 8.3 (abstract failure
// refutes concretely, on divergence-free systems), Theorem 4.7 on the
// unfolded systems, plus the brute-force oracle on the small instances.

#include <gtest/gtest.h>

#include <vector>

#include "rlv/cert/oracle.hpp"
#include "rlv/core/preservation.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/transform.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/petri/format.hpp"
#include "rlv/petri/reachability.hpp"
#include "rlv/petri/scenario.hpp"

namespace rlv {
namespace {

/// Unfolds the net and #-extends deadlocked markings so h(L) can meet the
/// maximal-word-free side condition of Theorems 8.2/8.3.
Nfa unfold_extended(const petri::NetFile& file) {
  const ReachabilityGraph graph = build_reachability_graph(file.net);
  EXPECT_TRUE(graph.complete);
  return has_maximal_words(graph.system) ? extend_maximal_words(graph.system)
                                         : graph.system;
}

/// Runs the pipeline on (net, hide annotation, eta) and cross-checks every
/// conclusion against the direct concrete check — on systems small enough
/// that the direct R̄(η) model check stays cheap; above the cutoff only the
/// pipeline itself runs (its internal claims are still exercised). Returns
/// the verdict so callers can add scenario-specific expectations.
AbstractionVerdict check_round_trip(const petri::NetFile& file,
                                    const char* eta_text) {
  const Nfa system = unfold_extended(file);
  const Homomorphism h =
      petri::derive_abstraction(system.alphabet(), file.hidden);
  const Formula eta = to_pnf(parse_ltl(eta_text));
  const AbstractionVerdict verdict = verify_via_abstraction(system, h, eta);

  if (system.num_states() > 200) return verdict;
  const bool concrete = concrete_relative_liveness(system, h, eta);
  if (verdict.concrete_holds) {
    // Any conclusion the pipeline draws must match the direct check.
    EXPECT_EQ(*verdict.concrete_holds, concrete)
        << file.name << " / " << eta_text;
  }
  if (verdict.abstract_holds && verdict.simplicity.simple &&
      !verdict.image_has_maximal_words) {
    // Theorem 8.2, checked against the ground truth.
    EXPECT_TRUE(concrete) << file.name << " / " << eta_text;
  }
  if (!verdict.abstract_holds && !verdict.image_has_maximal_words &&
      !verdict.hidden_divergence) {
    // Theorem 8.3 contrapositive.
    EXPECT_FALSE(concrete) << file.name << " / " << eta_text;
  }
  return verdict;
}

TEST(PetriPreservation, PhilosophersRoundTrips) {
  for (std::size_t n = 3; n <= 5; ++n) {
    const petri::NetFile file = petri::philosophers_net(n);
    check_round_trip(file, "G F eat_0");
    check_round_trip(file, "F done_0");
    // The positive-transfer case: this formula holds abstractly, so the
    // pipeline must decide simplicity — a subset-product procedure whose
    // cost grows with the concrete system, so keep it off philosophers(5)
    // (41 s there, vs ~1.3 s at n=4).
    if (n <= 4) check_round_trip(file, "G (eat_0 -> F done_0)");
  }
}

TEST(PetriPreservation, ProducerConsumerRoundTrips) {
  const std::vector<const char*> formulas = {
      "G F consume", "G (produce -> F consume)", "F G produce"};
  for (std::size_t cap = 2; cap <= 4; ++cap) {
    const petri::NetFile file = petri::bounded_buffer_net(cap);
    for (const char* eta : formulas) check_round_trip(file, eta);
  }
}

TEST(PetriPreservation, Figure1AbstractionTransfersPositively) {
  // The paper's own scenario: hiding the resource handling and the answer
  // computation leaves a 2-state abstraction, h is simple, and "G F result"
  // holds abstractly — Theorem 8.2 transfers the verdict even though the
  // hidden lock/free cycle makes the system divergent (divergence only
  // voids the refutation direction).
  petri::NetFile file;
  file.net = figure1_net();
  file.hidden = {"lock", "free", "yes", "no"};
  const AbstractionVerdict verdict = check_round_trip(file, "G F result");
  EXPECT_TRUE(verdict.abstract_holds);
  EXPECT_TRUE(verdict.simplicity.simple);
  EXPECT_TRUE(verdict.hidden_divergence);
  ASSERT_TRUE(verdict.concrete_holds.has_value());
  EXPECT_TRUE(*verdict.concrete_holds);
  EXPECT_LT(verdict.abstract_states, verdict.concrete_states);
}

TEST(PetriPreservation, NonSimpleChoiceDrawsNoConclusion) {
  // The Figure 3 pattern as a net: an irreversible hidden mode choice with
  // persistently different visible futures. Both modes offer `step`
  // forever, but `win` exists only in the good mode — after the hidden
  // go_bad fires, every abstract residual still promises win while the
  // concrete continuations never deliver it, so no witness word u can
  // align them: h is not simple, and the pipeline must refuse to transfer
  // the (abstractly true) "G F win" — which is indeed false concretely.
  petri::NetFile file;
  file.name = "modes";
  PetriNet& net = file.net;
  const PlaceId init = net.add_place("init", 1);
  const PlaceId good = net.add_place("good", 0);
  const PlaceId bad = net.add_place("bad", 0);
  const TransId go_good = net.add_transition("go_good");
  net.add_input(go_good, init);
  net.add_output(go_good, good);
  const TransId go_bad = net.add_transition("go_bad");
  net.add_input(go_bad, init);
  net.add_output(go_bad, bad);
  const TransId step_good = net.add_transition("step");
  net.add_read(step_good, good);
  const TransId step_bad = net.add_transition("step");
  net.add_read(step_bad, bad);
  const TransId win = net.add_transition("win");
  net.add_read(win, good);
  file.hidden = {"go_good", "go_bad"};

  const Nfa system = unfold_extended(file);
  const Homomorphism h =
      petri::derive_abstraction(system.alphabet(), file.hidden);
  const Formula eta = to_pnf(parse_ltl("G F win"));
  const AbstractionVerdict verdict = verify_via_abstraction(system, h, eta);
  EXPECT_TRUE(verdict.abstract_holds);
  EXPECT_FALSE(verdict.simplicity.simple);
  EXPECT_FALSE(verdict.concrete_holds.has_value());
  // Blind transfer would have been unsound: go_bad dooms the property.
  EXPECT_FALSE(concrete_relative_liveness(system, h, eta));
}

TEST(PetriPreservation, HiddenDivergenceRegression) {
  // Regression for the soundness bug the differential fuzzer surfaced: the
  // bounded buffer's hidden `idle` self-loop diverges, an all-ε tail
  // satisfies the weak-release clauses of R̄(η), and for this η the
  // concrete check passes while the abstraction refutes — so the pipeline
  // must detect the divergence and draw no conclusion from the failure.
  const petri::NetFile file = petri::bounded_buffer_net(1);
  const Nfa system = unfold_extended(file);
  const Homomorphism h =
      petri::derive_abstraction(system.alphabet(), file.hidden);
  const Formula eta = to_pnf(parse_ltl("F (consume R produce)"));
  const AbstractionVerdict verdict = verify_via_abstraction(system, h, eta);
  EXPECT_TRUE(verdict.hidden_divergence);
  EXPECT_TRUE(hides_divergence(system, h));
  if (!verdict.abstract_holds) {
    EXPECT_FALSE(verdict.concrete_holds.has_value());
  }
  // The historical mismatch itself: abstract refutes, concrete holds.
  EXPECT_FALSE(abstract_relative_liveness(system, h, eta));
  EXPECT_TRUE(concrete_relative_liveness(system, h, eta));
}

TEST(PetriPreservation, Theorem47OnUnfoldedSystems) {
  // Theorem 4.7 on the unfolded scenario systems: P is a satisfaction
  // relation of lim(L) iff it is both a relative liveness and a relative
  // safety property — checked with the canonical labeling, no abstraction.
  const std::vector<std::pair<petri::NetFile, std::vector<const char*>>>
      cases = {
          {petri::bounded_buffer_net(2), {"G F produce", "F G consume"}},
          {petri::ring_workflow_net(3), {"G F work_0", "F pass_0"}},
          {petri::flight_workflow_net(), {"G F takeoff", "G F land"}},
      };
  for (const auto& [file, formulas] : cases) {
    const ReachabilityGraph graph = build_reachability_graph(file.net);
    const Buchi behaviors = limit_of_prefix_closed(graph.system);
    const Labeling lambda = Labeling::canonical(graph.system.alphabet());
    for (const char* text : formulas) {
      const Formula eta = to_pnf(parse_ltl(text));
      const bool sat = satisfies(behaviors, eta, lambda).holds;
      const bool rl = relative_liveness(behaviors, eta, lambda).holds;
      const bool rs = relative_safety(behaviors, eta, lambda).holds;
      EXPECT_EQ(sat, rl && rs) << file.name << " / " << text;
    }
  }
}

TEST(PetriPreservation, OracleConfirmsConcreteChecksOnSmallNets) {
  // Brute-force oracle cross-check of the kernel's concrete R̄(η) verdict
  // on instances small enough to enumerate.
  const std::vector<const char*> formulas = {
      "G F consume", "G (produce -> F consume)", "F G produce"};
  for (std::size_t cap = 1; cap <= 2; ++cap) {
    const petri::NetFile file = petri::bounded_buffer_net(cap);
    const Nfa system = unfold_extended(file);
    ASSERT_LE(system.num_states(), 24u);
    const Homomorphism h =
        petri::derive_abstraction(system.alphabet(), file.hidden);
    for (const char* text : formulas) {
      const Formula eta = to_pnf(parse_ltl(text));
      const Formula rbar = transform_rbar(eta);
      const bool kernel = concrete_relative_liveness(system, h, eta);
      const bool oracle = cert::oracle_relative_liveness(
          limit_of_prefix_closed(system), rbar, hom_labeling(h));
      EXPECT_EQ(kernel, oracle) << file.name << " / " << text;
    }
  }
}

}  // namespace
}  // namespace rlv

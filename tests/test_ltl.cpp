// Tests for the PLTL layer (rlv_ltl): parser, printer, positive normal
// form, lasso-word evaluation, GPVW translation (cross-validated against
// the evaluator on random formulas and lassos), and the Section-7 T/R̄
// transformation (Lemma 7.5, cross-validated against direct projection).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "rlv/gen/random.hpp"
#include "rlv/hom/homomorphism.hpp"
#include "rlv/ltl/ast.hpp"
#include "rlv/ltl/eval.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/transform.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/util/rng.hpp"

// hom_labeling lives in core to keep library layering acyclic.
#include "rlv/core/preservation.hpp"

namespace rlv {
namespace {

AlphabetRef ab() {
  static AlphabetRef sigma = Alphabet::make({"a", "b"});
  return sigma;
}

Labeling lab() { return Labeling::canonical(ab()); }

Word w(std::initializer_list<const char*> names) {
  Word out;
  for (const char* n : names) out.push_back(ab()->id(n));
  return out;
}

TEST(Parser, PrecedenceAndRoundTrip) {
  const Formula f = parse_ltl("G F result");
  EXPECT_EQ(f, f_always(f_eventually(f_atom("result"))));
  EXPECT_EQ(f.to_string(), "G F result");

  EXPECT_EQ(parse_ltl("a && b || c"),
            f_or(f_and(f_atom("a"), f_atom("b")), f_atom("c")));
  EXPECT_EQ(parse_ltl("a -> b -> c"),
            f_implies(f_atom("a"), f_implies(f_atom("b"), f_atom("c"))));
  EXPECT_EQ(parse_ltl("a U b U c"),
            f_until(f_atom("a"), f_until(f_atom("b"), f_atom("c"))));
  EXPECT_EQ(parse_ltl("!a"), f_not(f_atom("a")));
  EXPECT_EQ(parse_ltl("!(a U b)"), f_not(f_until(f_atom("a"), f_atom("b"))));
  EXPECT_EQ(parse_ltl("X X a"), f_next(f_next(f_atom("a"))));
  EXPECT_EQ(parse_ltl("true && false"), f_false());  // simplification
}

TEST(Parser, BeforeOperator) {
  // ξ B ζ = ¬(¬ξ U ζ) = ξ R ¬ζ.
  EXPECT_EQ(parse_ltl("a B b"), f_release(f_atom("a"), f_not(f_atom("b"))));
}

TEST(Parser, Errors) {
  EXPECT_THROW((void)parse_ltl(""), LtlParseError);
  EXPECT_THROW((void)parse_ltl("(a"), LtlParseError);
  EXPECT_THROW((void)parse_ltl("a b"), LtlParseError);
  EXPECT_THROW((void)parse_ltl("&& a"), LtlParseError);
}

TEST(Ast, HashConsingGivesPointerEquality) {
  const Formula f1 = f_and(f_atom("x"), f_next(f_atom("y")));
  const Formula f2 = f_and(f_atom("x"), f_next(f_atom("y")));
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(f1.raw(), f2.raw());
}

TEST(Ast, PureBooleanDetection) {
  EXPECT_TRUE(parse_ltl("a && !b || true").is_pure_boolean());
  EXPECT_FALSE(parse_ltl("a && X b").is_pure_boolean());
  EXPECT_FALSE(parse_ltl("F a").is_pure_boolean());
}

TEST(Pnf, PushesNegations) {
  const Formula f = to_pnf(parse_ltl("!(a U (b && X c))"));
  EXPECT_TRUE(f.is_positive_normal_form());
  EXPECT_EQ(f, f_release(f_not(f_atom("a")),
                         f_or(f_not(f_atom("b")), f_next(f_not(f_atom("c"))))));
}

TEST(Eval, Basics) {
  // (ab)^ω: G F a, G F b hold; G a fails; X b holds; a U b holds.
  const Word u;
  const Word v = w({"a", "b"});
  EXPECT_TRUE(eval_ltl(parse_ltl("G F a"), u, v, lab()));
  EXPECT_TRUE(eval_ltl(parse_ltl("G F b"), u, v, lab()));
  EXPECT_FALSE(eval_ltl(parse_ltl("G a"), u, v, lab()));
  EXPECT_TRUE(eval_ltl(parse_ltl("X b"), u, v, lab()));
  EXPECT_TRUE(eval_ltl(parse_ltl("a U b"), u, v, lab()));
  EXPECT_TRUE(eval_ltl(parse_ltl("a"), u, v, lab()));
  EXPECT_FALSE(eval_ltl(parse_ltl("b"), u, v, lab()));
}

TEST(Eval, UltimatelyPeriodic) {
  // a b^ω: F G b holds, G F a fails.
  const Word u = w({"a"});
  const Word v = w({"b"});
  EXPECT_TRUE(eval_ltl(parse_ltl("F G b"), u, v, lab()));
  EXPECT_FALSE(eval_ltl(parse_ltl("G F a"), u, v, lab()));
  EXPECT_TRUE(eval_ltl(parse_ltl("a && X G b"), u, v, lab()));
}

TEST(Eval, ReleaseSemantics) {
  // a R b on b^ω: holds (b forever). On b a^ω: holds only if a&&b at the
  // release point... b a^ω: position 0 has b, position 1 has a but not b —
  // needs a at some j with b up to and including j; position 0: b ∧ ¬a;
  // position 1: ¬b → fails unless released at 0 (a fails there). So false.
  EXPECT_TRUE(eval_ltl(parse_ltl("a R b"), {}, w({"b"}), lab()));
  EXPECT_FALSE(eval_ltl(parse_ltl("a R b"), w({"b"}), w({"a"}), lab()));
  // (a&&b) b^ω — released at position 0.
  EXPECT_TRUE(eval_ltl(parse_ltl("b R a"), w({"a"}), w({"a"}), lab()));
}

TEST(Translate, SimpleFormulas) {
  const Buchi gfa = translate_ltl(parse_ltl("G F a"), lab());
  EXPECT_TRUE(accepts_lasso(gfa, {}, w({"a", "b"})));
  EXPECT_FALSE(accepts_lasso(gfa, w({"a"}), w({"b"})));

  const Buchi xb = translate_ltl(parse_ltl("X b"), lab());
  EXPECT_TRUE(accepts_lasso(xb, w({"a", "b"}), w({"a"})));
  EXPECT_FALSE(accepts_lasso(xb, w({"a", "a"}), w({"b"})));

  const Buchi until = translate_ltl(parse_ltl("a U b"), lab());
  EXPECT_TRUE(accepts_lasso(until, w({"a", "a", "b"}), w({"a"})));
  EXPECT_FALSE(accepts_lasso(until, {}, w({"a"})));
}

TEST(Translate, NegatedIsComplementOnSamples) {
  Rng rng(7);
  const std::vector<std::string> atoms = {"a", "b"};
  for (int i = 0; i < 40; ++i) {
    const Formula f = random_formula(rng, atoms, 3);
    const Buchi pos = translate_ltl(f, lab());
    const Buchi neg = translate_ltl_negated(f, lab());
    const auto [u, v] = random_lasso(rng, ab(), 3, 3);
    EXPECT_NE(accepts_lasso(pos, u, v), accepts_lasso(neg, u, v))
        << f.to_string();
  }
}

TEST(Parser, PrintParseRoundTripOnRandomFormulas) {
  Rng rng(2718281828);
  for (int i = 0; i < 200; ++i) {
    const Formula f = random_formula(rng, {"a", "b", "req", "ack"}, 5);
    EXPECT_EQ(parse_ltl(f.to_string()), f) << f.to_string();
  }
}

TEST(Parser, GarbageThrowsCleanly) {
  Rng rng(31415926);
  const char alphabet[] = "abXFGU()!&|-> <";
  for (int i = 0; i < 300; ++i) {
    std::string junk;
    const std::size_t len = rng.next_below(24);
    for (std::size_t k = 0; k < len; ++k) {
      junk += alphabet[rng.next_below(sizeof(alphabet) - 1)];
    }
    try {
      const Formula f = parse_ltl(junk);
      // Whatever parses must at least round-trip.
      EXPECT_EQ(parse_ltl(f.to_string()), f) << junk;
    } catch (const LtlParseError&) {
      // Expected for most inputs.
    }
  }
}

// ---------------------------------------------------------------------------
// The central translation property: automaton membership == direct
// evaluation, for random formulas and random lassos.

class TranslateProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TranslateProperty, AgreesWithEvaluator) {
  Rng rng(GetParam() * 65537 + 1);
  const std::vector<std::string> atoms = {"a", "b"};
  const Formula f = random_formula(rng, atoms, 4);
  const Buchi automaton = translate_ltl(f, lab());
  for (int i = 0; i < 30; ++i) {
    const auto [u, v] = random_lasso(rng, ab(), 4, 4);
    EXPECT_EQ(accepts_lasso(automaton, u, v), eval_ltl(f, u, v, lab()))
        << f.to_string() << " on u=" << ab()->format(u)
        << " v=" << ab()->format(v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslateProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

// ---------------------------------------------------------------------------
// T / R̄ transformation (Section 7).

TEST(Transform, BoxDiamondShape) {
  // R̄(G F result) = G(eps ∨ F(¬eps ∧ (eps U (¬eps ∧ result)))) — check the
  // structural skeleton via string rendering of the real result.
  const Formula eta = to_pnf(parse_ltl("G F result"));
  const Formula rbar = transform_rbar(eta);
  EXPECT_TRUE(rbar.is_positive_normal_form());
  // The transformed formula must mention eps.
  const auto atoms = rbar.atoms();
  EXPECT_NE(std::find(atoms.begin(), atoms.end(), std::string(kEpsilonAtom)),
            atoms.end());
}

TEST(Transform, PureBooleanWrapped) {
  const Formula eta = f_atom("q");
  const Formula rbar = transform_rbar(eta);
  // eps U (!eps && q)
  EXPECT_EQ(rbar, f_until(f_atom(kEpsilonAtom),
                          f_and(f_not(f_atom(kEpsilonAtom)), f_atom("q"))));
}

/// Concrete alphabet {p, q, tau} with h hiding tau: checks Lemma 7.5 at the
/// word level: η on h(x) ⟺ R̄(η) on x.
class TransformProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransformProperty, Lemma75WordLevel) {
  Rng rng(GetParam() * 2654435761 + 17);

  // Concrete alphabet with two visible and up to two hidden letters.
  auto source = Alphabet::make({"p", "q", "tau1", "tau2"});
  auto target = Alphabet::make({"p", "q"});
  Homomorphism h(source, target);
  h.rename("p", "p");
  h.rename("q", "q");
  // tau1/tau2 stay hidden.

  const Labeling concrete_lab = hom_labeling(h);
  const Labeling abstract_lab = Labeling::canonical(target);

  const std::vector<std::string> atoms = {"p", "q"};
  const Formula eta = to_pnf(random_formula(rng, atoms, 3));
  const Formula rbar = transform_rbar(eta);

  for (int i = 0; i < 40; ++i) {
    const auto [u, v] = random_lasso(rng, source, 4, 4);
    const auto image = h.apply_lasso(u, v);
    if (!image) continue;  // h undefined on x (period fully hidden)
    const bool abstract_truth =
        eval_ltl(eta, image->first, image->second, abstract_lab);
    const bool concrete_truth = eval_ltl(rbar, u, v, concrete_lab);
    EXPECT_EQ(abstract_truth, concrete_truth)
        << "eta=" << eta.to_string() << " rbar=" << rbar.to_string()
        << " u=" << source->format(u) << " v=" << source->format(v);
  }
}

TEST_P(TransformProperty, RenamingHomomorphism) {
  // h that renames both letters to one target letter (no hiding): R̄ must
  // still agree with projection.
  Rng rng(GetParam() + 31337);
  auto source = Alphabet::make({"x", "y", "z"});
  auto target = Alphabet::make({"c", "d"});
  Homomorphism h(source, target);
  h.rename("x", "c");
  h.rename("y", "c");
  h.rename("z", "d");

  const Labeling concrete_lab = hom_labeling(h);
  const Labeling abstract_lab = Labeling::canonical(target);
  const std::vector<std::string> atoms = {"c", "d"};
  const Formula eta = to_pnf(random_formula(rng, atoms, 3));
  const Formula rbar = transform_rbar(eta);

  for (int i = 0; i < 25; ++i) {
    const auto [u, v] = random_lasso(rng, source, 3, 3);
    const auto image = h.apply_lasso(u, v);
    ASSERT_TRUE(image.has_value());  // nothing is hidden
    EXPECT_EQ(eval_ltl(eta, image->first, image->second, abstract_lab),
              eval_ltl(rbar, u, v, concrete_lab))
        << eta.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

// ---------------------------------------------------------------------------
// Σ-normal form (the remark after Definition 7.2).

TEST(SigmaNormalForm, SubstitutesAtomDisjunctions) {
  // Letters: a carries {p}, b carries {p, q}, c carries {}.
  auto sigma = Alphabet::make({"a", "b", "c"});
  const Labeling lambda(sigma, {{"p"}, {"p", "q"}, {}});
  const Formula eta = parse_ltl("G F p && F q");
  const Formula snf = to_sigma_normal_form(eta, lambda);
  // p ↦ a ∨ b, q ↦ b.
  EXPECT_EQ(snf, to_pnf(f_and(f_always(f_eventually(
                                  f_or(f_atom("a"), f_atom("b")))),
                              f_eventually(f_atom("b")))));
  EXPECT_TRUE(snf.is_positive_normal_form());
}

class SigmaNormalFormProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SigmaNormalFormProperty, EquivalentUnderCanonicalLabeling) {
  Rng rng(GetParam() * 7046029 + 77);
  auto sigma = Alphabet::make({"x", "y", "z"});
  // Random labeling over atoms {p, q}.
  std::vector<std::vector<std::string>> labels(3);
  for (auto& set : labels) {
    if (rng.chance(1, 2)) set.push_back("p");
    if (rng.chance(1, 2)) set.push_back("q");
  }
  const Labeling lambda(sigma, labels);
  const Labeling canonical = Labeling::canonical(sigma);

  const Formula eta = random_formula(rng, {"p", "q"}, 3);
  const Formula snf = to_sigma_normal_form(eta, lambda);
  for (int i = 0; i < 25; ++i) {
    const auto [u, v] = random_lasso(rng, sigma, 3, 3);
    EXPECT_EQ(eval_ltl(eta, u, v, lambda), eval_ltl(snf, u, v, canonical))
        << eta.to_string() << " vs " << snf.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SigmaNormalFormProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

// ---------------------------------------------------------------------------
// Intern-table thread safety. The hash-consing table is shared process-wide
// and must behave correctly under concurrent construction (the rlv::engine
// thread pool builds formulas from several workers). Run under TSan in CI.

TEST(LtlThreadSafety, ConcurrentInterningYieldsIdenticalNodes) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 300;
  std::vector<std::vector<const LtlNode*>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      seen[t].reserve(kRounds + 3);
      for (int i = 0; i < kRounds; ++i) {
        // A mix of fresh structure (thread-unique atoms force inserts) and
        // shared structure (identical formulas from every thread must
        // resolve to the same node).
        const Formula unique = f_until(
            f_atom("t" + std::to_string(t) + "_" + std::to_string(i)),
            f_atom("shared"));
        const Formula common =
            random_formula(rng, {"p", "q", "r"}, 1 + i % 4);
        EXPECT_TRUE(unique.valid());
        EXPECT_TRUE(common.valid());
        if (i % 100 == 0) {
          seen[t].push_back(
              f_and(f_atom("p"), f_eventually(f_atom("q"))).raw());
        }
      }
      seen[t].push_back(parse_ltl("G(p -> F q)").raw());
      seen[t].push_back(f_always(f_implies(f_atom("p"), f_eventually(
                                               f_atom("q")))).raw());
    });
  }
  for (auto& thread : threads) thread.join();
  // Pointer equality = structural equality must hold across threads.
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(seen[t].size(), seen[0].size());
    for (std::size_t i = 0; i < seen[t].size(); ++i) {
      EXPECT_EQ(seen[t][i], seen[0][i]) << "thread " << t << " slot " << i;
    }
  }
  // And the parser route agrees with the constructor route.
  EXPECT_EQ(seen[0][seen[0].size() - 2], seen[0].back());
}

}  // namespace
}  // namespace rlv

// Tests for the compositional module (rlv_comp): synchronized products and
// the on-the-fly abstraction (§9's partial state-space exploration) —
// cross-validated against the sequential pipeline (full product →
// homomorphic image → determinization → minimization).

#include <gtest/gtest.h>

#include "rlv/comp/abstraction.hpp"
#include "rlv/comp/sync.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/petri/reachability.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

TEST(SyncProduct, TwoIndependentLoops) {
  // Two components over {a, b}, each looping on its own letter and not
  // participating in the other's: the product is the full shuffle.
  auto sigma = Alphabet::make({"a", "b"});
  Component ca{Nfa(sigma), participation(sigma, {"a"})};
  const State sa = ca.automaton.add_state(true);
  ca.automaton.add_transition(sa, sigma->id("a"), sa);
  ca.automaton.set_initial(sa);
  Component cb{Nfa(sigma), participation(sigma, {"b"})};
  const State sb = cb.automaton.add_state(true);
  cb.automaton.add_transition(sb, sigma->id("b"), sb);
  cb.automaton.set_initial(sb);

  const Nfa product = sync_product({ca, cb});
  EXPECT_EQ(product.num_states(), 1u);
  EXPECT_TRUE(product.accepts({sigma->id("a"), sigma->id("b"),
                               sigma->id("a")}));
}

TEST(SyncProduct, HandshakeSynchronizes) {
  // Both components participate in "sync": it fires only when both can.
  auto sigma = Alphabet::make({"step", "sync"});
  Component c1{Nfa(sigma), participation(sigma, {"step", "sync"})};
  const State p0 = c1.automaton.add_state(true);
  const State p1 = c1.automaton.add_state(true);
  c1.automaton.add_transition(p0, sigma->id("step"), p1);
  c1.automaton.add_transition(p1, sigma->id("sync"), p0);
  c1.automaton.set_initial(p0);
  Component c2{Nfa(sigma), participation(sigma, {"sync"})};
  const State q0 = c2.automaton.add_state(true);
  const State q1 = c2.automaton.add_state(true);
  c2.automaton.add_transition(q0, sigma->id("sync"), q1);
  c2.automaton.set_initial(q0);

  const Nfa product = sync_product({c1, c2});
  // step, then sync (both move), then nothing (c2 stuck, c1 needs sync for
  // its own loop? c1 back at p0 can step again but sync is dead).
  EXPECT_TRUE(product.accepts({sigma->id("step"), sigma->id("sync")}));
  EXPECT_FALSE(product.accepts({sigma->id("sync")}));
  EXPECT_TRUE(product.accepts(
      {sigma->id("step"), sigma->id("sync"), sigma->id("step")}));
  EXPECT_FALSE(product.accepts({sigma->id("step"), sigma->id("sync"),
                                sigma->id("step"), sigma->id("sync")}));
}

TEST(SyncProduct, ResourceServerMatchesPetriNet) {
  for (std::size_t n = 1; n <= 3; ++n) {
    const Nfa product = sync_product(resource_server_components(n));
    const ReachabilityGraph graph =
        build_reachability_graph(resource_server_net(n));
    EXPECT_EQ(product.num_states(), graph.system.num_states()) << "n=" << n;
    const Nfa remapped = remap_alphabet(graph.system, product.alphabet());
    EXPECT_TRUE(nfa_equivalent(product, remapped)) << "n=" << n;
  }
}

TEST(OnTheFly, MatchesSequentialPipeline) {
  for (std::size_t n = 1; n <= 3; ++n) {
    const auto components = resource_server_components(n);
    const Homomorphism h =
        resource_server_abstraction(components.front().automaton.alphabet());

    const OnTheFlyResult otf = on_the_fly_abstraction(components, h);
    EXPECT_FALSE(otf.truncated);

    const Nfa product = sync_product(components);
    const Nfa sequential = reduced_image_nfa(product, h);
    EXPECT_TRUE(nfa_equivalent(otf.abstract.to_nfa(), sequential))
        << "n=" << n;
  }
}

TEST(OnTheFly, AbstractAutomatonIsSmall) {
  const auto components = resource_server_components(3);
  const Homomorphism h =
      resource_server_abstraction(components.front().automaton.alphabet());
  const OnTheFlyResult otf = on_the_fly_abstraction(components, h);
  // The abstract server behavior is the 2-state request/answer loop (before
  // minimization the subset construction may add a couple more).
  EXPECT_LE(otf.abstract.num_states(), 4u);
  EXPECT_GE(otf.configurations_touched, 8u);
}

TEST(OnTheFly, TruncationGuard) {
  const auto components = resource_server_components(2);
  const Homomorphism h =
      resource_server_abstraction(components.front().automaton.alphabet());
  OnTheFlyOptions options;
  options.max_abstract_states = 0;
  const OnTheFlyResult otf = on_the_fly_abstraction(components, h, options);
  EXPECT_TRUE(otf.truncated);
}

class CompProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompProperty, OnTheFlyEqualsSequentialOnRandomComponents) {
  Rng rng(GetParam() * 7129 + 71);
  auto sigma = random_alphabet(3);

  // Two or three small random components with random participation (every
  // symbol must have at least one participant to be meaningful; symbols
  // with no participant become global self-loops, which is fine too).
  const std::size_t k = 2 + rng.next_below(2);
  std::vector<Component> components;
  for (std::size_t i = 0; i < k; ++i) {
    Nfa automaton(sigma);
    const std::size_t n = 2 + rng.next_below(2);
    for (std::size_t s = 0; s < n; ++s) automaton.add_state(true);
    DynBitset parts(sigma->size());
    for (Symbol a = 0; a < sigma->size(); ++a) {
      if (!rng.chance(2, 3)) continue;
      parts.set(a);
      // One or two a-transitions from random states.
      const std::size_t edges = 1 + rng.next_below(2);
      for (std::size_t e = 0; e < edges; ++e) {
        automaton.add_transition_unique(
            static_cast<State>(rng.next_below(n)), a,
            static_cast<State>(rng.next_below(n)));
      }
    }
    automaton.set_initial(static_cast<State>(rng.next_below(n)));
    components.push_back({std::move(automaton), std::move(parts)});
  }
  const Homomorphism h = random_homomorphism(rng, sigma, 2, 30);

  const OnTheFlyResult otf = on_the_fly_abstraction(components, h);
  const Nfa product = sync_product(components);
  if (trim(product).num_states() == 0) {
    // Product language is {ε}; image is {ε} as well.
    EXPECT_LE(otf.abstract.num_states(), 1u);
    return;
  }
  const Nfa sequential = reduced_image_nfa(product, h);
  EXPECT_TRUE(nfa_equivalent(otf.abstract.to_nfa(), sequential));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace rlv

// Certificate layer tests: witness validation, the brute-force oracle vs
// the optimized kernels, parallel-witness revalidation, engine certify
// mode, and rlvd JSON record round-trips (render → re-parse → re-validate)
// with hostile alphabet symbols.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rlv/cert/certificate.hpp"
#include "rlv/cert/oracle.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/engine/engine.hpp"
#include "rlv/engine/record.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/io/format.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/eval.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/util/rng.hpp"

namespace rlv::cert {
namespace {

// ---------------------------------------------------------------------------
// Satellite regression: an empty period must throw (not assert, which
// vanishes under -DNDEBUG and silently answers finite-word membership).

TEST(LassoGuards, EmptyPeriodThrows) {
  const AlphabetRef sigma = Alphabet::make({"a"});
  Buchi a(sigma);
  const State s = a.add_state(true);
  a.set_initial(s);
  a.add_transition(s, sigma->id("a"), s);
  EXPECT_THROW((void)accepts_lasso(a, {}, {}), std::invalid_argument);
  EXPECT_THROW((void)accepts_lasso(a, {sigma->id("a")}, {}),
               std::invalid_argument);
  // The guard must not fire on valid input.
  EXPECT_TRUE(accepts_lasso(a, {}, {sigma->id("a")}));
}

TEST(LassoGuards, GeneralizedGuards) {
  const AlphabetRef sigma = Alphabet::make({"a"});
  GenBuchi g(sigma);
  const State s = g.structure.add_state(false);
  g.structure.set_initial(s);
  g.structure.add_transition(s, sigma->id("a"), s);
  EXPECT_THROW((void)accepts_lasso_gen(g, {}, {}), std::invalid_argument);
  g.sets.assign(17, DynBitset(1));
  EXPECT_THROW((void)accepts_lasso_gen(g, {}, {sigma->id("a")}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Hand-built instances exercising each certificate leg.

/// 0 --a--> 1, 0 --b--> 0, 1 --b--> 1: behaviors are b^ω and b^n a b^ω.
Nfa ab_sink_system(const AlphabetRef& sigma) {
  Nfa system(sigma);
  const State s0 = system.add_state(true);
  const State s1 = system.add_state(true);
  system.set_initial(s0);
  system.add_transition(s0, sigma->id("a"), s1);
  system.add_transition(s0, sigma->id("b"), s0);
  system.add_transition(s1, sigma->id("b"), s1);
  return system;
}

TEST(Certificate, DoomedPrefixValidatesAndTampersFail) {
  const AlphabetRef sigma = Alphabet::make({"a", "b"});
  const Nfa system = ab_sink_system(sigma);
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(sigma);
  // G F a fails on every behavior (at most one a), so every prefix is
  // doomed and relative liveness fails.
  const Formula gfa = parse_ltl("G F a");
  const auto res = relative_liveness(behaviors, gfa, lambda);
  ASSERT_FALSE(res.holds);
  ASSERT_TRUE(res.violating_prefix.has_value());
  const Validation v = validate(res, behaviors, gfa, lambda);
  EXPECT_TRUE(v.valid) << v.reason;
  EXPECT_TRUE(v.checked);

  const Buchi property = translate_ltl(gfa, lambda);
  // Tamper 1: a word outside pre(L_ω) — "a a" dies in the sink.
  const Word not_in_pre{sigma->id("a"), sigma->id("a")};
  EXPECT_FALSE(check_doomed_prefix(not_in_pre, behaviors, property).valid);
  // Tamper 2: a prefix that IS extendable — any word, against G F b.
  const Formula gfb = parse_ltl("G F b");
  const Buchi property_b = translate_ltl(gfb, lambda);
  const Word extendable{sigma->id("b")};
  const Validation tampered =
      check_doomed_prefix(extendable, behaviors, property_b);
  EXPECT_FALSE(tampered.valid);
  EXPECT_NE(tampered.reason.find("extends"), std::string::npos);
}

TEST(Certificate, SafetyLassoValidatesAndTampersFail) {
  const AlphabetRef sigma = Alphabet::make({"a", "b"});
  const Nfa system = ab_sink_system(sigma);
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(sigma);
  // F a is not a relative safety property here: b^ω violates it while all
  // its prefixes b^n extend into b^n a b^ω ∈ L_ω ∩ P.
  const Formula fa = parse_ltl("F a");
  const auto res = relative_safety(behaviors, fa, lambda);
  ASSERT_FALSE(res.holds);
  ASSERT_TRUE(res.counterexample.has_value());
  const Validation v = validate(res, behaviors, fa, lambda);
  EXPECT_TRUE(v.valid) << v.reason;
  EXPECT_TRUE(v.checked);

  const Buchi property = translate_ltl(fa, lambda);
  // Tamper 1: a lasso satisfying the property is no ¬P witness.
  const Lasso satisfying{{}, {sigma->id("a")}};
  EXPECT_FALSE(
      check_safety_lasso(satisfying, behaviors, property, fa, lambda).valid);
  // Tamper 2: the extendability leg. Against X F a, the lasso a·b^ω is a
  // genuine violation, but its prefix "a" has already left
  // pre(L_ω ∩ P) — only b^n-prefixed behaviors can still reach an "a"
  // at a position ≥ 1.
  const Formula xfa = parse_ltl("X F a");
  const Buchi property_x = translate_ltl(xfa, lambda);
  const Lasso doomed{{sigma->id("a")}, {sigma->id("b")}};
  const Validation tampered =
      check_safety_lasso(doomed, behaviors, property_x, xfa, lambda);
  EXPECT_FALSE(tampered.valid);
  EXPECT_NE(tampered.reason.find("extendable"), std::string::npos);
}

TEST(Certificate, SatisfactionCounterexampleValidates) {
  const AlphabetRef sigma = Alphabet::make({"a", "b"});
  const Nfa system = ab_sink_system(sigma);
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula gfa = parse_ltl("G F a");
  const auto res = satisfies(behaviors, gfa, lambda);
  ASSERT_FALSE(res.holds);
  ASSERT_TRUE(res.counterexample.has_value());
  EXPECT_FALSE(eval_ltl(gfa, res.counterexample->prefix,
                        res.counterexample->period, lambda));
  const Validation v = validate(res, behaviors, gfa, lambda);
  EXPECT_TRUE(v.valid) << v.reason;
  EXPECT_TRUE(v.checked);

  // Positive verdicts carry no certificate.
  const Formula fb = parse_ltl("F b");
  const auto pos = satisfies(behaviors, fb, lambda);
  ASSERT_TRUE(pos.holds);
  const Validation pv = validate(pos, behaviors, fb, lambda);
  EXPECT_TRUE(pv.valid);
  EXPECT_FALSE(pv.checked);
}

// ---------------------------------------------------------------------------
// Kernel vs oracle on random instances (a miniature of tools/rlv_fuzz).

class OracleDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleDifferential, KernelsAgreeWithOracleAndCertify) {
  Rng rng(GetParam());
  for (int round = 0; round < 12; ++round) {
    const AlphabetRef sigma = random_alphabet(2 + rng.next_below(2));
    const Nfa system =
        random_transition_system(rng, 2 + rng.next_below(4), sigma);
    std::vector<std::string> atoms;
    for (Symbol s = 0; s < sigma->size(); ++s) {
      atoms.push_back(sigma->name(s));
    }
    const Formula f = random_formula(rng, atoms, 3);
    const Labeling lambda = Labeling::canonical(sigma);
    const Buchi behaviors = limit_of_prefix_closed(system);

    const auto rl = relative_liveness(behaviors, f, lambda);
    const auto rs = relative_safety(behaviors, f, lambda);
    const auto sat = satisfies(behaviors, f, lambda);
    ASSERT_EQ(rl.holds, oracle_relative_liveness(behaviors, f, lambda))
        << f.to_string() << "\n" << serialize_system(system);
    ASSERT_EQ(rs.holds, oracle_relative_safety(behaviors, f, lambda))
        << f.to_string() << "\n" << serialize_system(system);
    ASSERT_EQ(sat.holds, oracle_satisfies(behaviors, f, lambda))
        << f.to_string() << "\n" << serialize_system(system);
    // Theorem 4.7.
    ASSERT_EQ(sat.holds, rl.holds && rs.holds) << f.to_string();

    for (const Validation& v : {validate(rl, behaviors, f, lambda),
                                validate(rs, behaviors, f, lambda),
                                validate(sat, behaviors, f, lambda)}) {
      ASSERT_TRUE(v.valid) << v.reason << "\n"
                           << f.to_string() << "\n"
                           << serialize_system(system);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleDifferential,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Satellite regression: the parallel inclusion witness must survive
// independent revalidation (the "revalidate, don't compare" contract that
// check_inclusion now implements internally).

class ParallelWitness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelWitness, MultiThreadedRlWitnessCertifies) {
  Rng rng(GetParam() * 7919 + 13);
  int negatives = 0;
  for (int round = 0; round < 16; ++round) {
    const AlphabetRef sigma = random_alphabet(2 + rng.next_below(2));
    const Nfa system =
        random_transition_system(rng, 2 + rng.next_below(5), sigma);
    std::vector<std::string> atoms;
    for (Symbol s = 0; s < sigma->size(); ++s) {
      atoms.push_back(sigma->name(s));
    }
    const Formula f = random_formula(rng, atoms, 3);
    const Labeling lambda = Labeling::canonical(sigma);
    const Buchi behaviors = limit_of_prefix_closed(system);

    const auto par =
        relative_liveness(behaviors, f, lambda, InclusionAlgorithm::kAntichain,
                          /*budget=*/nullptr, /*inclusion_threads=*/4);
    const auto seq = relative_liveness(behaviors, f, lambda);
    ASSERT_EQ(par.holds, seq.holds) << f.to_string();
    if (par.holds) continue;
    ++negatives;
    ASSERT_TRUE(par.violating_prefix.has_value());
    // The certificate checker re-establishes both Lemma 4.3 legs.
    const Validation v = validate(par, behaviors, f, lambda);
    ASSERT_TRUE(v.valid) << v.reason << "\n" << f.to_string();
    // And the raw inclusion-level contract: the prefix is a genuine member
    // of pre(L_ω) \ pre(L_ω ∩ P).
    const Buchi property = translate_ltl(f, lambda);
    const Nfa pre_sys = prefix_nfa(behaviors);
    const Nfa pre_both = prefix_nfa(intersect_buchi(behaviors, property));
    EXPECT_TRUE(pre_sys.accepts(*par.violating_prefix));
    EXPECT_FALSE(pre_both.accepts(*par.violating_prefix));
  }
  // The seeds are chosen so the suite actually exercises negative verdicts.
  EXPECT_GT(negatives, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelWitness,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------------------
// Engine certify mode.

constexpr const char* kAbSinkText =
    "alphabet: a b\n"
    "states: 2\n"
    "initial: 0\n"
    "accepting: all\n"
    "0 a 1\n"
    "0 b 0\n"
    "1 b 1\n";

TEST(EngineCertify, ValidatesNegativeVerdictsBeforeCaching) {
  EngineOptions certified;
  certified.certify_verdicts = true;
  Engine engine(certified);
  Engine plain{EngineOptions{}};

  std::vector<Query> queries;
  for (const char* formula : {"G F a", "F a", "F b", "G(a -> X b)"}) {
    for (const CheckKind kind :
         {CheckKind::kRelativeLiveness, CheckKind::kRelativeSafety,
          CheckKind::kSatisfaction}) {
      Query q;
      q.system = kAbSinkText;
      q.formula = formula;
      q.kind = kind;
      queries.push_back(q);
    }
  }
  const std::vector<Verdict> certified_verdicts = engine.run(queries);
  const std::vector<Verdict> plain_verdicts = plain.run(queries);
  ASSERT_EQ(certified_verdicts.size(), plain_verdicts.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(certified_verdicts[i].ok()) << certified_verdicts[i].error;
    EXPECT_EQ(certified_verdicts[i].holds, plain_verdicts[i].holds)
        << queries[i].formula;
  }
  const EngineStats stats = engine.stats();
  EXPECT_GT(stats.certificates_checked, 0u);
  EXPECT_EQ(stats.certificates_failed, 0u);
  // The uncertified engine never validates.
  EXPECT_EQ(plain.stats().certificates_checked, 0u);
}

// ---------------------------------------------------------------------------
// rlvd record round-trip with hostile alphabet symbols: render the record,
// re-parse the structured witness arrays, and re-validate the witness.

/// Extracts ["x","y",...] for `field` from a JSON record, undoing the
/// escaping json_escape applied (only \" and \\ occur in these tests).
std::vector<std::string> extract_array(const std::string& record,
                                       const std::string& field) {
  const std::string needle = "\"" + field + "\":[";
  const std::size_t start = record.find(needle);
  if (start == std::string::npos) return {};
  std::vector<std::string> items;
  std::size_t pos = start + needle.size();
  while (pos < record.size() && record[pos] != ']') {
    EXPECT_EQ(record[pos], '"') << record.substr(pos, 20);
    ++pos;
    std::string item;
    while (pos < record.size() && record[pos] != '"') {
      if (record[pos] == '\\' && pos + 1 < record.size()) {
        ++pos;
        item += record[pos];
      } else {
        item += record[pos];
      }
      ++pos;
    }
    ++pos;  // closing quote
    items.push_back(std::move(item));
    if (pos < record.size() && record[pos] == ',') ++pos;
  }
  return items;
}

Word to_word(const std::vector<std::string>& names, const Alphabet& sigma) {
  Word w;
  for (const std::string& name : names) w.push_back(sigma.id(name));
  return w;
}

TEST(RecordRoundTrip, HostileSymbolsSatisfactionLasso) {
  // Action names containing quotes and backslashes exercise json_escape on
  // the render side and the unescaper above on the parse side.
  const std::string sys_text =
      "alphabet: go\"quote back\\slash\n"
      "states: 2\n"
      "initial: 0\n"
      "accepting: all\n"
      "0 go\"quote 1\n"
      "1 back\\slash 1\n"
      "0 back\\slash 0\n";
  // Büchi automaton for "infinitely many go\"quote".
  const std::string prop_text =
      "alphabet: go\"quote back\\slash\n"
      "states: 2\n"
      "initial: 0\n"
      "accepting: 1\n"
      "0 back\\slash 0\n"
      "0 go\"quote 1\n"
      "1 go\"quote 1\n"
      "1 back\\slash 0\n";

  Query query;
  query.system = sys_text;
  query.property_automaton = prop_text;
  query.kind = CheckKind::kSatisfaction;

  Engine engine{EngineOptions{}};
  const Verdict verdict = engine.run_one(query);
  ASSERT_TRUE(verdict.ok()) << verdict.error;
  ASSERT_FALSE(verdict.holds);  // every behavior has finitely many go"quote
  ASSERT_TRUE(verdict.counterexample.has_value());

  const std::string record = render_query_record(
      0, query, verdict, "hostile.rlv", "prop.rlv", engine.stats().total());
  const Nfa system = parse_system(sys_text);
  const AlphabetRef sigma = system.alphabet();

  const Word prefix = to_word(extract_array(record, "witness_prefix"), *sigma);
  const std::vector<std::string> period_names =
      extract_array(record, "witness_period");
  ASSERT_FALSE(period_names.empty());
  const Word period = to_word(period_names, *sigma);
  EXPECT_EQ(prefix, verdict.counterexample->prefix);
  EXPECT_EQ(period, verdict.counterexample->period);

  // Re-validate the re-parsed witness against freshly parsed automata.
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Buchi property = Buchi::from_structure(
      remap_alphabet(parse_buchi(prop_text).structure(), sigma));
  const Validation v =
      check_violation_lasso(Lasso{prefix, period}, behaviors, property);
  EXPECT_TRUE(v.valid) << v.reason;
}

TEST(RecordRoundTrip, ViolatingPrefixArray) {
  Query query;
  query.system = kAbSinkText;
  query.formula = "G F a";
  query.kind = CheckKind::kRelativeLiveness;

  Engine engine{EngineOptions{}};
  const Verdict verdict = engine.run_one(query);
  ASSERT_TRUE(verdict.ok()) << verdict.error;
  ASSERT_FALSE(verdict.holds);
  ASSERT_TRUE(verdict.violating_prefix.has_value());

  const std::string record = render_query_record(
      3, query, verdict, "ab.rlv", "", engine.stats().total());
  EXPECT_EQ(record.find("\"witness_period\""), std::string::npos);

  const Nfa system = parse_system(query.system);
  const Word prefix =
      to_word(extract_array(record, "witness_prefix"), *system.alphabet());
  EXPECT_EQ(prefix, *verdict.violating_prefix);

  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Buchi property = translate_ltl(parse_ltl("G F a"), lambda);
  const Validation v = check_doomed_prefix(prefix, behaviors, property);
  EXPECT_TRUE(v.valid) << v.reason;
}

}  // namespace
}  // namespace rlv::cert

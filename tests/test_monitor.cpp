// Tests for the runtime doom monitor (core/monitor.hpp) and the formula
// pattern builders (ltl/patterns.hpp). The monitor's verdicts must agree
// exactly with prefix membership in pre(L_ω ∩ P) / pre(L_ω); relative
// liveness of P ⟺ no reachable trace ever dooms.

#include <gtest/gtest.h>

#include "rlv/cert/certificate.hpp"
#include "rlv/core/monitor.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/patterns.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

Word w(const AlphabetRef& sigma, std::initializer_list<const char*> names) {
  Word out;
  for (const char* n : names) out.push_back(sigma->id(n));
  return out;
}

TEST(Monitor, CorrectServerNeverDooms) {
  // G F result is relative liveness of Figure 2, so no behavior dooms.
  const Nfa fig2 = figure2_system();
  const Buchi system = limit_of_prefix_closed(fig2);
  const Labeling lambda = Labeling::canonical(fig2.alphabet());
  DoomMonitor monitor(system, parse_ltl("G F result"), lambda);

  const Word trace = w(fig2.alphabet(), {"lock", "request", "no", "reject",
                                         "free", "request", "yes", "result"});
  std::size_t first_doom = 0;
  EXPECT_EQ(monitor.run(trace, &first_doom), MonitorVerdict::kSatisfiable);
  EXPECT_EQ(first_doom, trace.size());
}

TEST(Monitor, BuggyServerDoomsAtLock) {
  const Nfa fig3 = figure3_system();
  const Buchi system = limit_of_prefix_closed(fig3);
  const Labeling lambda = Labeling::canonical(fig3.alphabet());
  DoomMonitor monitor(system, parse_ltl("G F result"), lambda);

  EXPECT_EQ(monitor.verdict(), MonitorVerdict::kSatisfiable);
  // request/yes/result keep hope alive...
  EXPECT_EQ(monitor.step(fig3.alphabet()->id("request")),
            MonitorVerdict::kSatisfiable);
  EXPECT_EQ(monitor.step(fig3.alphabet()->id("yes")),
            MonitorVerdict::kSatisfiable);
  EXPECT_EQ(monitor.step(fig3.alphabet()->id("result")),
            MonitorVerdict::kSatisfiable);
  // ...lock is the step that dooms the run: no continuation can ever
  // produce a result again.
  EXPECT_EQ(monitor.step(fig3.alphabet()->id("lock")),
            MonitorVerdict::kDoomed);
  // Doom is permanent.
  EXPECT_EQ(monitor.step(fig3.alphabet()->id("request")),
            MonitorVerdict::kDoomed);
}

TEST(Monitor, LeavingTheSystemIsDetected) {
  const Nfa fig2 = figure2_system();
  const Buchi system = limit_of_prefix_closed(fig2);
  const Labeling lambda = Labeling::canonical(fig2.alphabet());
  DoomMonitor monitor(system, parse_ltl("G F result"), lambda);

  // "result" before any request is not a behavior of the server.
  EXPECT_EQ(monitor.step(fig2.alphabet()->id("result")),
            MonitorVerdict::kLeftSystem);
  // Absorbing.
  EXPECT_EQ(monitor.step(fig2.alphabet()->id("request")),
            MonitorVerdict::kLeftSystem);
}

TEST(Monitor, ResetRestores) {
  const Nfa fig3 = figure3_system();
  const Buchi system = limit_of_prefix_closed(fig3);
  const Labeling lambda = Labeling::canonical(fig3.alphabet());
  DoomMonitor monitor(system, parse_ltl("G F result"), lambda);
  monitor.step(fig3.alphabet()->id("lock"));
  EXPECT_EQ(monitor.verdict(), MonitorVerdict::kDoomed);
  monitor.reset();
  EXPECT_EQ(monitor.verdict(), MonitorVerdict::kSatisfiable);
  EXPECT_EQ(monitor.position(), 0u);
}

class MonitorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonitorProperty, VerdictMatchesPrefixMembership) {
  Rng rng(GetParam() * 104917 + 3);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(3), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 2);
  const Buchi property = translate_ltl(f, lambda);

  const Nfa pre_sys = prefix_nfa(system);
  const Nfa pre_both = prefix_nfa(intersect_buchi(system, property));

  DoomMonitor monitor(system, property);
  Word trace;
  for (int step = 0; step < 12; ++step) {
    const MonitorVerdict verdict = monitor.verdict();
    const bool in_system = pre_sys.accepts(trace);
    const bool winnable = pre_both.accepts(trace);
    if (!in_system) {
      EXPECT_EQ(verdict, MonitorVerdict::kLeftSystem);
    } else if (!winnable) {
      EXPECT_EQ(verdict, MonitorVerdict::kDoomed) << f.to_string();
    } else {
      EXPECT_EQ(verdict, MonitorVerdict::kSatisfiable) << f.to_string();
    }
    const Symbol a = static_cast<Symbol>(rng.next_below(sigma->size()));
    trace.push_back(a);
    monitor.step(a);
  }
}

TEST_P(MonitorProperty, RelativeLivenessMeansNoDoom) {
  Rng rng(GetParam() * 15485863 + 19);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(3), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 2);

  const auto rl = relative_liveness(system, f, lambda);
  DoomMonitor monitor(system, f, lambda);
  if (rl.holds) {
    // Walk random *system* traces: none may doom.
    const Nfa pre_sys = prefix_nfa(system);
    for (int run = 0; run < 5; ++run) {
      monitor.reset();
      Word trace;
      for (int step = 0; step < 10; ++step) {
        // Extend within the system when possible.
        bool extended = false;
        for (Symbol a = 0; a < sigma->size() && !extended; ++a) {
          const Symbol pick = static_cast<Symbol>(
              (a + rng.next_below(sigma->size())) % sigma->size());
          Word candidate = trace;
          candidate.push_back(pick);
          if (pre_sys.accepts(candidate)) {
            trace = std::move(candidate);
            monitor.step(pick);
            extended = true;
          }
        }
        if (!extended) break;
        EXPECT_NE(monitor.verdict(), MonitorVerdict::kDoomed)
            << f.to_string();
      }
    }
  } else {
    // The violating prefix must doom the monitor.
    ASSERT_TRUE(rl.violating_prefix.has_value());
    std::size_t first_doom = 0;
    EXPECT_EQ(monitor.run(*rl.violating_prefix, &first_doom),
              MonitorVerdict::kDoomed)
        << f.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(Monitor, ShortestDoomedPrefixOnFigure3) {
  const Nfa fig3 = figure3_system();
  const Buchi system = limit_of_prefix_closed(fig3);
  const Labeling lambda = Labeling::canonical(fig3.alphabet());
  DoomMonitor monitor(system, parse_ltl("G F result"), lambda);
  const auto doom = monitor.shortest_doomed_prefix();
  ASSERT_TRUE(doom.has_value());
  // "lock" dooms immediately; nothing shorter can (ε is fine).
  EXPECT_EQ(doom->size(), 1u);
  EXPECT_EQ(fig3.alphabet()->name(doom->front()), "lock");
  // The returned prefix indeed dooms a fresh monitor.
  DoomMonitor fresh(system, parse_ltl("G F result"), lambda);
  EXPECT_EQ(fresh.run(*doom), MonitorVerdict::kDoomed);
}

TEST(Monitor, NoDoomedPrefixOnFigure2) {
  const Nfa fig2 = figure2_system();
  const Buchi system = limit_of_prefix_closed(fig2);
  const Labeling lambda = Labeling::canonical(fig2.alphabet());
  DoomMonitor monitor(system, parse_ltl("G F result"), lambda);
  EXPECT_FALSE(monitor.shortest_doomed_prefix().has_value());
}

class DoomSearchProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DoomSearchProperty, ExistenceMatchesRelativeLiveness) {
  // Definition 4.1 reformulated: a doomed prefix exists iff the property is
  // NOT relative liveness — two entirely different code paths must agree.
  Rng rng(GetParam() * 193877777 + 7);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(4), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 3);

  DoomMonitor monitor(system, f, lambda);
  const auto doom = monitor.shortest_doomed_prefix();
  const auto rl = relative_liveness(system, f, lambda);
  EXPECT_EQ(doom.has_value(), !rl.holds) << f.to_string();
  if (doom) {
    // Minimality: the checker's own violating prefix cannot be shorter.
    ASSERT_TRUE(rl.violating_prefix.has_value());
    EXPECT_LE(doom->size(), rl.violating_prefix->size()) << f.to_string();
    DoomMonitor fresh(system, f, lambda);
    EXPECT_EQ(fresh.run(*doom), MonitorVerdict::kDoomed) << f.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoomSearchProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(Patterns, BuildExpectedFormulas) {
  EXPECT_EQ(patterns::infinitely_often("p"), parse_ltl("G F p"));
  EXPECT_EQ(patterns::eventually_always("p"), parse_ltl("F G p"));
  EXPECT_EQ(patterns::response("p", "q"), parse_ltl("G(p -> F q)"));
  EXPECT_EQ(patterns::never("p"), parse_ltl("G !p"));
  EXPECT_EQ(patterns::precedence("p", "q"), parse_ltl("!q U p"));
  EXPECT_EQ(patterns::precedence_weak("p", "q"),
            parse_ltl("(!q U p) || G !q"));
  EXPECT_EQ(patterns::alternation("p", "q"),
            parse_ltl("G(p -> X(!p U q))"));
}

TEST(Patterns, PaperPropertiesViaPatterns) {
  const Nfa fig2 = figure2_system();
  const Buchi system = limit_of_prefix_closed(fig2);
  const Labeling lambda = Labeling::canonical(fig2.alphabet());
  EXPECT_TRUE(
      relative_liveness(system, patterns::infinitely_often("result"), lambda)
          .holds);
  EXPECT_TRUE(
      relative_liveness(system, patterns::response("request", "result"),
                        lambda)
          .holds);
  // A result can only come after a request (weak precedence) — satisfied
  // outright, not just relatively.
  EXPECT_TRUE(satisfies(system, patterns::precedence_weak("request", "result"),
                        lambda)
                  .holds);
}

// ---------------------------------------------------------------------------
// The compiled streaming kernel (rlv/monitor/automaton.hpp) — now the ONLY
// doom-judgment kernel; DoomMonitor is a wrapper over it.

TEST(MonitorAutomaton, AgreesWithIncrementalSubsetStepping) {
  // Differential test against an inline re-implementation of the
  // pre-compilation monitor: step the two trimmed prefix NFAs by subset
  // construction on the fly. The compiled table must produce identical
  // verdicts on every prefix of random traces over random systems and
  // formulas.
  Rng rng(20260808);
  const std::vector<std::string> atoms = {"a0", "a1", "a2"};
  for (int instance = 0; instance < 30; ++instance) {
    const AlphabetRef sigma = random_alphabet(3);
    const Nfa ts = random_transition_system(rng, 3 + instance % 5, sigma);
    const Buchi system = limit_of_prefix_closed(ts);
    const Labeling lambda = Labeling::canonical(sigma);
    const Formula f = random_formula(rng, atoms, 3);
    const Buchi property = translate_ltl(f, lambda);

    const monitor::MonitorAutomaton aut(system, property);
    const Nfa sys_pre = prefix_nfa(system);
    const Nfa sat_pre = prefix_nfa(intersect_buchi(system, property));

    DynBitset sys_set = sys_pre.run({});
    DynBitset sat_set = sat_pre.run({});
    std::uint32_t state = aut.initial();
    const auto subset_verdict = [&] {
      if (sys_set.none()) return monitor::Verdict::kLeftSystem;
      if (sat_set.none()) return monitor::Verdict::kDoomed;
      return monitor::Verdict::kSatisfiable;
    };
    ASSERT_EQ(aut.verdict(state), subset_verdict()) << "instance " << instance;
    for (int step = 0; step < 48; ++step) {
      const Symbol a = static_cast<Symbol>(rng.next_below(sigma->size()));
      state = aut.step(state, a);
      sys_set = sys_pre.step(sys_set, a);
      sat_set = sat_pre.step(sat_set, a);
      ASSERT_EQ(aut.verdict(state), subset_verdict())
          << "instance " << instance << " step " << step;
    }
  }
}

TEST(MonitorAutomaton, EveryDoomedWitnessDoomsAndCertifies) {
  const Nfa fig3 = figure3_system();
  const Buchi system = limit_of_prefix_closed(fig3);
  const Labeling lambda = Labeling::canonical(fig3.alphabet());
  const Formula f = parse_ltl("G F result");
  const Buchi property = translate_ltl(f, lambda);
  const monitor::MonitorAutomaton aut(system, property);

  ASSERT_GT(aut.num_doomed(), 0u);
  std::size_t doomed_seen = 0;
  for (std::uint32_t s = 0; s < aut.num_states(); ++s) {
    if (aut.verdict(s) != monitor::Verdict::kDoomed) continue;
    ++doomed_seen;
    const Word witness = aut.witness(s);
    // The canonical witness must actually doom a fresh monitor...
    DoomMonitor fresh(system, f, lambda);
    EXPECT_EQ(fresh.run(witness), MonitorVerdict::kDoomed);
    // ...and survive the independent certificate checker.
    const cert::Validation v =
        cert::check_doomed_prefix(witness, system, property);
    EXPECT_TRUE(v.valid) << v.reason;
    EXPECT_TRUE(v.checked);
  }
  EXPECT_EQ(doomed_seen, aut.num_doomed());
}

TEST(MonitorAutomaton, CertifiedCompileAndRelativeLivenessAgreement) {
  // certify=true validates every doomed witness at compile time — a buggy
  // system compiles certified (the witnesses are genuine), and a system
  // whose property IS relative liveness has no doomed state at all, in
  // agreement with the Lemma 4.3 decision procedure.
  const Nfa fig2 = figure2_system();
  const Labeling lambda2 = Labeling::canonical(fig2.alphabet());
  const Buchi sys2 = limit_of_prefix_closed(fig2);
  const monitor::MonitorAutomaton live(sys2, parse_ltl("G F result"), lambda2,
                                       /*certify=*/true);
  EXPECT_TRUE(live.certified());
  EXPECT_EQ(live.num_doomed(), 0u);
  EXPECT_FALSE(live.shortest_doomed_prefix());
  EXPECT_TRUE(relative_liveness(sys2, parse_ltl("G F result"), lambda2).holds);

  const Nfa fig3 = figure3_system();
  const Labeling lambda3 = Labeling::canonical(fig3.alphabet());
  const Buchi sys3 = limit_of_prefix_closed(fig3);
  const monitor::MonitorAutomaton doomed(sys3, parse_ltl("G F result"),
                                         lambda3, /*certify=*/true);
  EXPECT_TRUE(doomed.certified());
  EXPECT_GT(doomed.num_doomed(), 0u);
  const auto shortest = doomed.shortest_doomed_prefix();
  ASSERT_TRUE(shortest);
  // The wrapper reports the same canonical shortest doomed prefix.
  DoomMonitor wrapper(sys3, parse_ltl("G F result"), lambda3);
  EXPECT_EQ(wrapper.shortest_doomed_prefix(), shortest);
  EXPECT_FALSE(
      relative_liveness(sys3, parse_ltl("G F result"), lambda3).holds);
}

}  // namespace
}  // namespace rlv

// Tests for the optimization layers: LTL simplification (rlv/ltl/simplify)
// and simulation-based Büchi reduction (rlv/omega/reduce). Both must
// preserve semantics exactly — property-tested against the evaluator and
// lasso sampling — and never grow their input.

#include <gtest/gtest.h>

#include "rlv/gen/random.hpp"
#include "rlv/ltl/eval.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/simplify.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/complement.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/omega/reduce.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

AlphabetRef ab() {
  static AlphabetRef sigma = Alphabet::make({"a", "b"});
  return sigma;
}

TEST(Simplify, CollapsesIdempotentOperators) {
  EXPECT_EQ(simplify_ltl(parse_ltl("F F a")), simplify_ltl(parse_ltl("F a")));
  EXPECT_EQ(simplify_ltl(parse_ltl("G G a")), simplify_ltl(parse_ltl("G a")));
  EXPECT_EQ(simplify_ltl(parse_ltl("F G F a")),
            simplify_ltl(parse_ltl("G F a")));
  EXPECT_EQ(simplify_ltl(parse_ltl("G F G a")),
            simplify_ltl(parse_ltl("F G a")));
  EXPECT_EQ(simplify_ltl(parse_ltl("a U (a U b)")),
            simplify_ltl(parse_ltl("a U b")));
}

TEST(Simplify, BooleanRules) {
  EXPECT_EQ(simplify_ltl(parse_ltl("a && !a")), f_false());
  EXPECT_EQ(simplify_ltl(parse_ltl("a || !a")), f_true());
  EXPECT_EQ(simplify_ltl(parse_ltl("(F a) && !(F a)")), f_false());
  EXPECT_EQ(simplify_ltl(parse_ltl("a && (a || b)")), f_atom("a"));
  EXPECT_EQ(simplify_ltl(parse_ltl("a || (a && b)")), f_atom("a"));
}

TEST(Simplify, FactorsTemporalOperators) {
  EXPECT_EQ(simplify_ltl(parse_ltl("(X a) && (X b)")),
            f_next(f_and(f_atom("a"), f_atom("b"))));
  EXPECT_EQ(simplify_ltl(parse_ltl("(G a) && (G b)")),
            f_always(f_and(f_atom("a"), f_atom("b"))));
  EXPECT_EQ(simplify_ltl(parse_ltl("(F a) || (F b)")),
            f_eventually(f_or(f_atom("a"), f_atom("b"))));
}

TEST(Simplify, OutputIsPnf) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Formula f = random_formula(rng, {"a", "b"}, 4);
    EXPECT_TRUE(simplify_ltl(f).is_positive_normal_form()) << f.to_string();
  }
}

class SimplifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplifyProperty, PreservesSemanticsAndNeverGrows) {
  Rng rng(GetParam() * 11400714819323198485ULL + 12345);
  const Formula f = random_formula(rng, {"a", "b"}, 4);
  const Formula simplified = simplify_ltl(f);
  const Formula reference = to_pnf(f);
  EXPECT_LE(simplified.size(), reference.size()) << f.to_string();
  const Labeling lambda = Labeling::canonical(ab());
  for (int i = 0; i < 25; ++i) {
    const auto [u, v] = random_lasso(rng, ab(), 4, 4);
    EXPECT_EQ(eval_ltl(f, u, v, lambda), eval_ltl(simplified, u, v, lambda))
        << f.to_string() << " vs " << simplified.to_string();
  }
}

TEST_P(SimplifyProperty, ShrinksTranslation) {
  // Statistically the simplified formula should never yield a larger
  // automaton by much; assert the common-sense direction on each sample
  // loosely (<= with slack 1 level of degeneralization jitter).
  Rng rng(GetParam() * 2862933555777941757ULL + 31);
  const Formula f = random_formula(rng, {"a", "b"}, 3);
  const Labeling lambda = Labeling::canonical(ab());
  const Buchi before = translate_ltl(to_pnf(f), lambda);
  const Buchi after = translate_ltl(simplify_ltl(f), lambda);
  // Semantic agreement of the two automata on samples.
  for (int i = 0; i < 15; ++i) {
    const auto [u, v] = random_lasso(rng, ab(), 3, 3);
    EXPECT_EQ(accepts_lasso(before, u, v), accepts_lasso(after, u, v))
        << f.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(Reduce, CollapsesDuplicateStates) {
  // Two copies of the same accepting loop reachable from the initial state:
  // reduction must merge them.
  Buchi buchi(ab());
  const State s0 = buchi.add_state(false);
  const State l1 = buchi.add_state(true);
  const State l2 = buchi.add_state(true);
  const Symbol a = ab()->id("a");
  buchi.add_transition(s0, a, l1);
  buchi.add_transition(s0, a, l2);
  buchi.add_transition(l1, a, l1);
  buchi.add_transition(l2, a, l2);
  buchi.set_initial(s0);

  const Buchi reduced = reduce_buchi(buchi);
  EXPECT_EQ(reduced.num_states(), 2u);
  EXPECT_TRUE(accepts_lasso(reduced, {a}, {a}));
}

TEST(Reduce, PrunesLittleBrothers) {
  // s0 -a-> dead (non-accepting sink-ish) and s0 -a-> live: the dead branch
  // is simulated by the live one and should be pruned.
  Buchi buchi(ab());
  const State s0 = buchi.add_state(false);
  const State live = buchi.add_state(true);
  const State dead = buchi.add_state(false);
  const Symbol a = ab()->id("a");
  buchi.add_transition(s0, a, live);
  buchi.add_transition(s0, a, dead);
  buchi.add_transition(live, a, live);
  buchi.set_initial(s0);

  const Buchi reduced = reduce_buchi(buchi);
  EXPECT_LT(reduced.num_transitions(), buchi.num_transitions());
  EXPECT_TRUE(accepts_lasso(reduced, {}, {a}));
}

class ReduceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReduceProperty, PreservesLanguageOnRandomAutomata) {
  Rng rng(GetParam() * 6257 + 101);
  const Buchi buchi = random_buchi(rng, 3 + rng.next_below(5), ab());
  const Buchi reduced = reduce_buchi(buchi);
  EXPECT_LE(reduced.num_states(), buchi.num_states());
  for (int i = 0; i < 30; ++i) {
    const auto [u, v] = random_lasso(rng, ab(), 3, 4);
    EXPECT_EQ(accepts_lasso(buchi, u, v), accepts_lasso(reduced, u, v))
        << "u=" << ab()->format(u) << " v=" << ab()->format(v);
  }
}

TEST_P(ReduceProperty, PreservesLanguageOnTranslations) {
  Rng rng(GetParam() * 104729 + 57);
  const Formula f = random_formula(rng, {"a", "b"}, 3);
  const Labeling lambda = Labeling::canonical(ab());
  const Buchi buchi = translate_ltl(f, lambda);
  const Buchi reduced = reduce_buchi(buchi);
  EXPECT_LE(reduced.num_states(), buchi.num_states());
  for (int i = 0; i < 20; ++i) {
    const auto [u, v] = random_lasso(rng, ab(), 3, 4);
    EXPECT_EQ(accepts_lasso(buchi, u, v), accepts_lasso(reduced, u, v))
        << f.to_string();
  }
}

TEST_P(ReduceProperty, ExactEquivalenceOnTinyAutomata) {
  // Beyond lasso sampling: exact language equality via rank-based
  // complementation (both inclusion directions empty), affordable for
  // 3-state automata.
  Rng rng(GetParam() * 48619 + 3);
  const Buchi buchi = random_buchi(rng, 2 + rng.next_below(2), ab());
  const Buchi reduced = reduce_buchi(buchi);
  EXPECT_TRUE(
      omega_empty(intersect_buchi(reduced, complement_buchi(buchi))));
  EXPECT_TRUE(
      omega_empty(intersect_buchi(buchi, complement_buchi(reduced))));
}

TEST_P(ReduceProperty, Idempotent) {
  Rng rng(GetParam() * 31337 + 9);
  const Buchi buchi = random_buchi(rng, 3 + rng.next_below(4), ab());
  const Buchi once = reduce_buchi(buchi);
  const Buchi twice = reduce_buchi(once);
  EXPECT_EQ(once.num_states(), twice.num_states());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReduceProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace rlv

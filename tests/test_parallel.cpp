// Differential tests for the intra-query parallel kernels (PR: parallel
// inclusion + on-the-fly emptiness):
//
//   * sequential vs parallel check_inclusion, subset vs antichain — the
//     boolean verdict must be identical on every random instance; a
//     counterexample is validated by revalidation (membership in
//     L(a) \ L(b)), never by comparing against the sequential word, which
//     the parallel search does not promise to reproduce;
//   * materialized (intersect_buchi + buchi_empty/find_accepting_lasso) vs
//     on-the-fly (product_empty / find_accepting_lasso_product) emptiness,
//     2-ary and 3-ary;
//   * relative_liveness and the engine with intra-query threads against
//     their sequential verdicts;
//   * the witness-memory and antichain-accounting regressions (deep-chain
//     shortest counterexample, heavy-subsumption frontier counter).
//
// The randomized suites here are the cross-validation gate for the
// parallel kernels and run under TSan in CI.

#include <gtest/gtest.h>

#include <algorithm>

#include "rlv/core/relative.hpp"
#include "rlv/engine/engine.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/io/format.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/emptiness.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

constexpr std::size_t kThreads = 4;

// ---------------------------------------------------------------------------
// Inclusion: sequential vs parallel, subset vs antichain.

class InclusionDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(InclusionDifferential, ParallelVerdictMatchesSequential) {
  Rng rng(GetParam() * 2654435761 + 7);
  auto sigma = random_alphabet(2);
  const Nfa a = random_nfa(rng, 3 + rng.next_below(5), sigma);
  const Nfa b = random_nfa(rng, 3 + rng.next_below(5), sigma);

  const InclusionResult subset_seq =
      check_inclusion(a, b, InclusionAlgorithm::kSubset);
  const InclusionResult antichain_seq =
      check_inclusion(a, b, InclusionAlgorithm::kAntichain);
  // The two sequential algorithms must agree with each other.
  ASSERT_EQ(subset_seq.included, antichain_seq.included);

  for (const InclusionAlgorithm algorithm :
       {InclusionAlgorithm::kSubset, InclusionAlgorithm::kAntichain}) {
    const InclusionResult par =
        check_inclusion(a, b, algorithm, nullptr, kThreads);
    EXPECT_EQ(par.included, subset_seq.included)
        << "algorithm=" << inclusion_algorithm_name(algorithm);
    if (!par.included) {
      // Revalidate, don't byte-compare: any word of L(a) \ L(b) is correct.
      ASSERT_TRUE(par.counterexample.has_value());
      EXPECT_TRUE(a.accepts(*par.counterexample));
      EXPECT_FALSE(b.accepts(*par.counterexample));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InclusionDifferential,
                         ::testing::Range<std::uint64_t>(0, 300));

// ---------------------------------------------------------------------------
// Emptiness: materialized product vs on-the-fly product.

class EmptinessDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EmptinessDifferential, LazyProductMatchesMaterialized) {
  Rng rng(GetParam() * 1099511628211 + 13);
  auto sigma = random_alphabet(2);
  const Buchi a = random_buchi(rng, 2 + rng.next_below(4), sigma);
  const Buchi b = random_buchi(rng, 2 + rng.next_below(4), sigma);
  const Buchi c = random_buchi(rng, 2 + rng.next_below(3), sigma);

  // 2-ary.
  const bool materialized2 = buchi_empty(intersect_buchi(a, b));
  EXPECT_EQ(product_empty({&a, &b}), materialized2);
  if (const auto lasso = find_accepting_lasso_product({&a, &b})) {
    EXPECT_FALSE(materialized2);
    EXPECT_TRUE(accepts_lasso(a, *lasso));
    EXPECT_TRUE(accepts_lasso(b, *lasso));
  }

  // 3-ary: one lazy triple product vs a chain of materialized pairs.
  const bool materialized3 = buchi_empty(intersect_buchi(intersect_buchi(a, b), c));
  EXPECT_EQ(product_empty({&a, &b, &c}), materialized3);
  if (const auto lasso = find_accepting_lasso_product({&a, &b, &c})) {
    EXPECT_FALSE(materialized3);
    EXPECT_TRUE(accepts_lasso(a, *lasso));
    EXPECT_TRUE(accepts_lasso(b, *lasso));
    EXPECT_TRUE(accepts_lasso(c, *lasso));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmptinessDifferential,
                         ::testing::Range<std::uint64_t>(0, 250));

// ---------------------------------------------------------------------------
// Full checks: rl (parallel inclusion), rs/sat (lazy products) against the
// sequential/materialized decision procedures.

class CheckDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckDifferential, VerdictsAgreeAcrossExecutionModes) {
  Rng rng(GetParam() * 96557 + 29);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(4), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 2);

  // Relative liveness: sequential vs parallel inclusion, both algorithms.
  const auto rl_seq = relative_liveness(system, f, lambda);
  for (const InclusionAlgorithm algorithm :
       {InclusionAlgorithm::kSubset, InclusionAlgorithm::kAntichain}) {
    const auto rl_par =
        relative_liveness(system, f, lambda, algorithm, nullptr, kThreads);
    ASSERT_EQ(rl_par.holds, rl_seq.holds) << f.to_string();
    if (!rl_par.holds) {
      // The violating prefix must be a system prefix with no continuation
      // into L_ω ∩ P — exactly Lemma 4.3's counterexample condition.
      ASSERT_TRUE(rl_par.violating_prefix.has_value());
      const Buchi property = translate_ltl(f, lambda);
      const Nfa pre_sys = prefix_nfa(system);
      const Nfa pre_both = prefix_nfa(intersect_buchi(system, property));
      EXPECT_TRUE(pre_sys.accepts(*rl_par.violating_prefix)) << f.to_string();
      EXPECT_FALSE(pre_both.accepts(*rl_par.violating_prefix))
          << f.to_string();
    }
  }

  // Satisfaction through the lazy product vs the materialized equivalent.
  const auto sat = satisfies(system, f, lambda);
  ASSERT_FALSE(sat.exhausted.has_value());
  const Buchi negated = translate_ltl_negated(f, lambda);
  EXPECT_EQ(sat.holds, buchi_empty(intersect_buchi(system, negated)))
      << f.to_string();

  // Relative safety (lazy triple product): Theorem 4.7 cross-check —
  // satisfaction ⟺ relative liveness ∧ relative safety.
  const auto rs = relative_safety(system, f, lambda);
  ASSERT_FALSE(rs.exhausted.has_value());
  EXPECT_EQ(sat.holds, rl_seq.holds && rs.holds) << f.to_string();
  if (rs.counterexample) {
    // A genuine behavior of the system violating P.
    EXPECT_TRUE(accepts_lasso(system, *rs.counterexample)) << f.to_string();
    EXPECT_TRUE(accepts_lasso(negated, *rs.counterexample)) << f.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckDifferential,
                         ::testing::Range<std::uint64_t>(0, 150));

// ---------------------------------------------------------------------------
// Engine: intra_query_threads must not change any verdict.

TEST(ParallelEngine, IntraQueryThreadsPreserveVerdicts) {
  Rng rng(4242);
  auto sigma = random_alphabet(2);

  std::vector<Query> queries;
  for (int i = 0; i < 25; ++i) {
    const Nfa ts =
        random_transition_system(rng, 2 + rng.next_below(4), sigma);
    if (ts.num_states() == 0) continue;
    Query q;
    q.system = serialize_system(ts);
    q.formula =
        random_formula(rng, {sigma->name(0), sigma->name(1)}, 2).to_string();
    q.kind = (i % 3 == 0)   ? CheckKind::kRelativeLiveness
             : (i % 3 == 1) ? CheckKind::kRelativeSafety
                            : CheckKind::kSatisfaction;
    queries.push_back(std::move(q));
  }

  EngineOptions sequential;
  Engine seq_engine(sequential);
  EngineOptions parallel;
  parallel.intra_query_threads = kThreads;
  parallel.jobs = 2;  // inter-query and intra-query parallelism composed
  Engine par_engine(parallel);

  const auto seq = seq_engine.run(queries);
  const auto par = par_engine.run(queries);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].ok(), par[i].ok()) << i;
    EXPECT_EQ(seq[i].holds, par[i].holds) << i;
    EXPECT_EQ(seq[i].violating_prefix.has_value(),
              par[i].violating_prefix.has_value())
        << i;
  }
}

// ---------------------------------------------------------------------------
// Witness-memory regression: the deep-chain family has a unique shortest
// counterexample of length n. The BFS must still return exactly it
// (sequential shortest-path guarantee survives the parent-pointer rewrite),
// and the explored frontier must stay linear in n — the old full-Word
// representation held Θ(n²) symbols at peak on this family.

TEST(WitnessMemory, DeepChainShortestCounterexample) {
  constexpr std::size_t kDepth = 1500;
  auto sigma = random_alphabet(2);

  // a accepts exactly { 0^kDepth }; b accepts { 0^k | k < kDepth }.
  Nfa a(sigma);
  Nfa b(sigma);
  State pa = a.add_state(false);
  State pb = b.add_state(true);
  a.set_initial(pa);
  b.set_initial(pb);
  for (std::size_t i = 0; i < kDepth; ++i) {
    const State na = a.add_state(i + 1 == kDepth);
    a.add_transition(pa, 0, na);
    pa = na;
    const State nb = b.add_state(i + 1 < kDepth);
    b.add_transition(pb, 0, nb);
    pb = nb;
  }

  for (const InclusionAlgorithm algorithm :
       {InclusionAlgorithm::kSubset, InclusionAlgorithm::kAntichain}) {
    Budget budget;
    const InclusionResult res = check_inclusion(a, b, algorithm, &budget);
    EXPECT_FALSE(res.included);
    ASSERT_TRUE(res.counterexample.has_value());
    // Unique witness: exactly 0^kDepth — and the shortest by BFS order.
    EXPECT_EQ(res.counterexample->size(), kDepth);
    EXPECT_TRUE(a.accepts(*res.counterexample));
    const StageMetrics& m = budget.profile()[Stage::kInclusion];
    // Linear exploration: one configuration per chain position.
    EXPECT_LE(m.states_built, 2 * (kDepth + 1));
    EXPECT_LE(m.peak_antichain, 2 * (kDepth + 1));
  }

  // The parallel search returns *a* valid counterexample (here unique, so
  // it must be the same word).
  const InclusionResult par = check_inclusion(
      a, b, InclusionAlgorithm::kAntichain, nullptr, kThreads);
  EXPECT_FALSE(par.included);
  ASSERT_TRUE(par.counterexample.has_value());
  EXPECT_EQ(par.counterexample->size(), kDepth);
}

// ---------------------------------------------------------------------------
// Antichain-accounting regression: dense random instances cause insertions
// that subsume several stored elements at once; the frontier counter
// reported through budget_note_frontier must never drift from the true
// antichain size (the Debug build asserts exact equality after every
// insertion) and never underflow (size_t wraparound would report absurd
// peaks).

TEST(AntichainAccounting, HeavySubsumptionKeepsCounterExact) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed * 6364136223846793005ULL + 1442695040888963407ULL);
    auto sigma = random_alphabet(2);
    // Dense right-hand automata maximize distinct subset states and
    // therefore subsumption churn.
    const Nfa a = random_nfa(rng, 4 + rng.next_below(4), sigma);
    const Nfa b = random_nfa(rng, 6 + rng.next_below(5), sigma);
    Budget budget;
    const InclusionResult res =
        check_inclusion(a, b, InclusionAlgorithm::kAntichain, &budget);
    const StageMetrics& m = budget.profile()[Stage::kInclusion];
    // The peak frontier can never exceed the number of insertions, and a
    // size_t underflow would blow it past this bound by ~2^64.
    EXPECT_LE(m.peak_antichain, m.states_built) << "seed=" << seed;
    if (!res.included) {
      ASSERT_TRUE(res.counterexample.has_value());
      EXPECT_TRUE(a.accepts(*res.counterexample));
      EXPECT_FALSE(b.accepts(*res.counterexample));
    }
  }
}

// ---------------------------------------------------------------------------
// Budget behavior of the parallel kernels: a tripped budget must surface as
// ResourceExhausted from every worker interleaving — no deadlock, no crash,
// no wrong verdict.

TEST(ParallelBudget, ExhaustionPropagatesFromWorkers) {
  // (a|b)* a (a|b)^{n-1} against itself: the inclusion HOLDS, so the search
  // has no early counterexample exit and must exhaust the (exponential)
  // antichain — guaranteeing the 3-configuration cap trips in some worker.
  auto sigma = random_alphabet(2);
  auto nth_from_end = [&](std::size_t n) {
    Nfa nfa(sigma);
    const State s0 = nfa.add_state(false);
    nfa.add_transition(s0, 0, s0);
    nfa.add_transition(s0, 1, s0);
    State prev = nfa.add_state(n == 1);
    nfa.add_transition(s0, 0, prev);
    for (std::size_t i = 1; i < n; ++i) {
      const State next = nfa.add_state(i + 1 == n);
      nfa.add_transition(prev, 0, next);
      nfa.add_transition(prev, 1, next);
      prev = next;
    }
    nfa.set_initial(s0);
    return nfa;
  };
  const Nfa a = nth_from_end(10);
  const Nfa b = nth_from_end(10);
  Budget budget;
  budget.set_max_states(3);  // trips almost immediately
  EXPECT_THROW(
      {
        const auto res = check_inclusion(a, b, InclusionAlgorithm::kAntichain,
                                         &budget, kThreads);
        (void)res;
      },
      ResourceExhausted);
}

}  // namespace
}  // namespace rlv

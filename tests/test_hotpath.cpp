// Hot-path memory architecture tests: the bump arena and interning
// primitives (util/arena.hpp, util/intern.hpp), the CSR transition layout of
// Nfa, deep-witness regressions for the arena-owned path representation, a
// randomized differential suite pitting the interned kernels against a
// reference implementation using the previous memory layout (per-state
// vector-of-bitset tables, copied witness words), and the MemoCache
// hit/coalesced counter split.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rlv/engine/cache.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/nfa.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/omega/emptiness.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/util/arena.hpp"
#include "rlv/util/budget.hpp"
#include "rlv/util/intern.hpp"

namespace rlv {
namespace {

// ---------------------------------------------------------------------------
// Arena.

TEST(Arena, BumpsAlignedPointersWithinChunks) {
  Arena arena(/*first_chunk_bytes=*/128);
  auto* a = static_cast<std::uint8_t*>(arena.allocate(3, 1));
  auto* b = static_cast<std::uint64_t*>(arena.allocate(8, 8));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  *a = 7;
  *b = 0xdeadbeefULL;
  EXPECT_EQ(*a, 7);  // earlier allocation untouched by later ones
  EXPECT_GE(arena.bytes_allocated(), 11u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(Arena, PointersSurviveChunkGrowth) {
  Arena arena(/*first_chunk_bytes=*/64);
  std::vector<int*> ptrs;
  for (int i = 0; i < 1000; ++i) ptrs.push_back(arena.create<int>(i));
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(*ptrs[i], i);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(/*first_chunk_bytes=*/64);
  auto* big = static_cast<std::byte*>(arena.allocate(10000, 8));
  ASSERT_NE(big, nullptr);
  big[9999] = std::byte{1};
  EXPECT_GE(arena.bytes_reserved(), 10000u);
}

TEST(Arena, ResetReclaimsAndReuses) {
  Arena arena(/*first_chunk_bytes=*/64);
  for (std::uint64_t i = 0; i < 1000; ++i) (void)arena.create<std::uint64_t>(i);
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_LE(arena.bytes_reserved(), reserved);  // keeps only one chunk
  auto* p = arena.create<std::uint64_t>(std::uint64_t{42});
  EXPECT_EQ(*p, 42u);
}

// ---------------------------------------------------------------------------
// Interning.

TEST(BitsetInterner, DedupesAndKeepsDenseIds) {
  BitsetInterner interner(130);  // 3 words
  std::vector<std::uint64_t> w(interner.words_per(), 0);
  w[0] = 5;
  const auto [id0, fresh0] = interner.intern(w.data());
  EXPECT_TRUE(fresh0);
  EXPECT_EQ(id0, 0u);
  w[2] = 9;
  const auto [id1, fresh1] = interner.intern(w.data());
  EXPECT_TRUE(fresh1);
  EXPECT_EQ(id1, 1u);
  w[2] = 0;
  const auto [id2, fresh2] = interner.intern(w.data());
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(id2, id0);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.words(id0)[0], 5u);
  EXPECT_EQ(interner.words(id1)[2], 9u);
}

TEST(BitsetInterner, SurvivesTableGrowth) {
  // Push well past the initial 64 slots to exercise the rehash path.
  BitsetInterner interner(64);
  std::vector<std::uint32_t> ids;
  std::uint64_t w = 0;
  for (std::uint32_t i = 0; i < 500; ++i) {
    w = i * 0x9e3779b97f4a7c15ULL + 1;
    ids.push_back(interner.intern(&w).first);
  }
  EXPECT_EQ(interner.size(), 500u);
  for (std::uint32_t i = 0; i < 500; ++i) {
    w = i * 0x9e3779b97f4a7c15ULL + 1;
    EXPECT_EQ(interner.intern(&w).first, ids[i]);  // all found, none fresh
  }
  EXPECT_EQ(interner.size(), 500u);
}

TEST(BitsetInterner, SubsetTest) {
  BitsetInterner interner(8);
  std::uint64_t w = 0b0101;
  const auto a = interner.intern(&w).first;
  w = 0b0111;
  const auto b = interner.intern(&w).first;
  EXPECT_TRUE(interner.is_subset(a, b));
  EXPECT_FALSE(interner.is_subset(b, a));
  EXPECT_TRUE(interner.is_subset(a, a));
}

TEST(U64KeySet, InsertContainsGrow) {
  U64KeySet set;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(set.insert(k * 1315423911ULL));
  }
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_FALSE(set.insert(k * 1315423911ULL));
    EXPECT_TRUE(set.contains(k * 1315423911ULL));
  }
  EXPECT_FALSE(set.contains(0xabcdefULL));
  EXPECT_EQ(set.size(), 1000u);
}

// ---------------------------------------------------------------------------
// CSR transition layout.

TEST(NfaCsr, BlocksPartitionOutEdges) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    auto sigma = random_alphabet(2 + rng.next_below(3));
    const Nfa nfa = random_nfa(rng, 2 + rng.next_below(12), sigma);
    for (State s = 0; s < nfa.num_states(); ++s) {
      std::multiset<std::pair<Symbol, State>> from_out;
      for (const Transition& t : nfa.out(s)) from_out.insert({t.symbol, t.target});
      std::multiset<std::pair<Symbol, State>> from_blocks;
      std::size_t total = 0;
      for (Symbol a = 0; a < sigma->size(); ++a) {
        for (const Transition& t : nfa.block(s, a)) {
          EXPECT_EQ(t.symbol, a);
          from_blocks.insert({t.symbol, t.target});
          ++total;
        }
      }
      EXPECT_EQ(from_out, from_blocks);
      EXPECT_EQ(total, nfa.out(s).size());
    }
  }
}

TEST(NfaCsr, MutationAfterReadReopensIndex) {
  auto sigma = random_alphabet(2);
  Nfa nfa(sigma);
  const State s0 = nfa.add_state(false);
  const State s1 = nfa.add_state(true);
  nfa.set_initial(s0);
  nfa.add_transition(s0, 0, s1);
  EXPECT_EQ(nfa.out(s0).size(), 1u);  // forces the index
  nfa.add_transition(s0, 1, s0);      // reopen + append
  EXPECT_EQ(nfa.num_transitions(), 2u);
  EXPECT_EQ(nfa.out(s0).size(), 2u);
  EXPECT_EQ(nfa.block(s0, 1).size(), 1u);
  // add_transition_unique sees edges in both representations.
  nfa.add_transition_unique(s0, 0, s1);  // duplicate, unindexed path
  EXPECT_EQ(nfa.num_transitions(), 2u);
  (void)nfa.out(s0);                     // re-index
  nfa.add_transition_unique(s0, 0, s1);  // duplicate, indexed path
  EXPECT_EQ(nfa.num_transitions(), 2u);
  const State s2 = nfa.add_state(false);
  nfa.add_transition_unique(s1, 0, s2);  // genuinely new
  EXPECT_EQ(nfa.num_transitions(), 3u);
  EXPECT_TRUE(nfa.accepts({0}));
}

TEST(NfaCsr, StepAndStepWordsMatchEdgeScan) {
  Rng rng(11);
  for (int round = 0; round < 30; ++round) {
    auto sigma = random_alphabet(2 + rng.next_below(3));
    const Nfa nfa = random_nfa(rng, 2 + rng.next_below(70), sigma);
    // Random source set.
    DynBitset src(nfa.num_states());
    for (State s = 0; s < nfa.num_states(); ++s) {
      if (rng.chance(1, 3)) src.set(s);
    }
    for (Symbol a = 0; a < sigma->size(); ++a) {
      // Reference: scan every edge of every source state.
      DynBitset expected(nfa.num_states());
      src.for_each([&](std::size_t s) {
        for (const Transition& t : nfa.out(static_cast<State>(s))) {
          if (t.symbol == a) expected.set(t.target);
        }
      });
      EXPECT_EQ(nfa.step(src, a), expected);
      std::vector<std::uint64_t> dst(src.num_words(), ~0ULL);  // dirty
      nfa.step_words(src.words_data(), a, dst.data());
      EXPECT_EQ(DynBitset::from_words(nfa.num_states(), dst.data()), expected);
    }
  }
}

TEST(NfaCsr, CopyAndMovePreserveIndexedAutomaton) {
  Rng rng(13);
  auto sigma = random_alphabet(3);
  const Nfa original = random_nfa(rng, 10, sigma);
  original.finalize();
  Nfa copy = original;
  EXPECT_EQ(copy.num_transitions(), original.num_transitions());
  EXPECT_EQ(copy.to_string(), original.to_string());
  Nfa moved = std::move(copy);
  EXPECT_EQ(moved.to_string(), original.to_string());
  moved.add_transition(0, 0, 0);  // reopen on the moved-to object
  EXPECT_EQ(moved.num_transitions(), original.num_transitions() + 1);
}

// ---------------------------------------------------------------------------
// Deep witnesses: counterexamples hundreds of thousands of symbols long.
// The regression here is twofold: witness teardown must not recurse (the
// previous shared_ptr parent chain overflowed the stack on destruction),
// and the search must not copy the word into every queued configuration.

constexpr std::size_t kDeepChain = 200000;

/// L(a) = { 0^kDeepChain }, L(b) = ∅ (b: one non-accepting sink with a
/// self-loop, so right-hand sets stay one word wide).
std::pair<Nfa, Nfa> deep_chain_instance(const AlphabetRef& sigma) {
  Nfa a(sigma);
  State prev = a.add_state(false);
  a.set_initial(prev);
  for (std::size_t i = 0; i < kDeepChain; ++i) {
    const State next = a.add_state(i + 1 == kDeepChain);
    a.add_transition(prev, 0, next);
    prev = next;
  }
  Nfa b(sigma);
  const State sink = b.add_state(false);
  b.set_initial(sink);
  b.add_transition(sink, 0, sink);
  return {std::move(a), std::move(b)};
}

TEST(DeepWitness, SequentialSubsetAndAntichain) {
  auto sigma = random_alphabet(1);
  const auto [a, b] = deep_chain_instance(sigma);
  for (const auto algorithm :
       {InclusionAlgorithm::kSubset, InclusionAlgorithm::kAntichain}) {
    const InclusionResult r = check_inclusion(a, b, algorithm);
    EXPECT_FALSE(r.included);
    ASSERT_TRUE(r.counterexample.has_value());
    EXPECT_EQ(r.counterexample->size(), kDeepChain);
  }
}

TEST(DeepWitness, ParallelSearchRevalidates) {
  auto sigma = random_alphabet(1);
  const auto [a, b] = deep_chain_instance(sigma);
  const InclusionResult r = check_inclusion(
      a, b, InclusionAlgorithm::kAntichain, /*budget=*/nullptr, /*threads=*/4);
  EXPECT_FALSE(r.included);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->size(), kDeepChain);
}

// ---------------------------------------------------------------------------
// Differential suite: the interned kernels against a reference inclusion
// using the previous memory layout — per-left-state vectors of owned
// DynBitsets and witness words copied into every configuration. Boolean
// verdicts must match exactly; counterexample words are revalidated, not
// compared (parallel interleavings and CSR edge order legitimately change
// which witness is found).

InclusionResult reference_inclusion(const Nfa& a, const Nfa& b,
                                    bool use_antichain) {
  struct Cfg {
    State left;
    DynBitset right;
    Word word;
  };
  DynBitset b_init(b.num_states());
  for (const State s : b.initial()) b_init.set(s);

  std::unordered_map<State, std::vector<DynBitset>> seen;
  auto insert = [&](State left, const DynBitset& right) {
    std::vector<DynBitset>& chain = seen[left];
    if (use_antichain) {
      for (const DynBitset& e : chain) {
        if (e.is_subset_of(right)) return false;
      }
      std::erase_if(chain,
                    [&](const DynBitset& e) { return right.is_subset_of(e); });
    } else if (std::find(chain.begin(), chain.end(), right) != chain.end()) {
      return false;
    }
    chain.push_back(right);
    return true;
  };

  std::deque<Cfg> queue;
  for (const State s : a.initial()) {
    if (insert(s, b_init)) queue.push_back({s, b_init, {}});
  }
  while (!queue.empty()) {
    Cfg cfg = std::move(queue.front());
    queue.pop_front();
    const bool b_accepts = cfg.right.any_of(
        [&](std::size_t s) { return b.is_accepting(static_cast<State>(s)); });
    if (a.is_accepting(cfg.left) && !b_accepts) {
      return {false, std::move(cfg.word)};
    }
    for (const Transition& t : a.out(cfg.left)) {
      DynBitset next_right = b.step(cfg.right, t.symbol);
      if (!insert(t.target, next_right)) continue;
      Word next_word = cfg.word;
      next_word.push_back(t.symbol);
      queue.push_back({t.target, std::move(next_right), std::move(next_word)});
    }
  }
  return {true, std::nullopt};
}

TEST(Differential, InclusionKernelsMatchReferenceLayout) {
  Rng rng(20260808);
  int non_included = 0;
  for (int round = 0; round < 120; ++round) {
    auto sigma = random_alphabet(2 + rng.next_below(2));
    const Nfa a = random_nfa(rng, 2 + rng.next_below(6), sigma);
    const Nfa b = random_nfa(rng, 2 + rng.next_below(5), sigma);

    const InclusionResult expected = reference_inclusion(a, b, false);
    for (const auto algorithm :
         {InclusionAlgorithm::kSubset, InclusionAlgorithm::kAntichain}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const InclusionResult got =
            check_inclusion(a, b, algorithm, nullptr, threads);
        ASSERT_EQ(got.included, expected.included)
            << "round " << round << " algorithm "
            << (algorithm == InclusionAlgorithm::kSubset ? "subset"
                                                         : "antichain")
            << " threads " << threads;
        if (!got.included) {
          ASSERT_TRUE(got.counterexample.has_value());
          EXPECT_TRUE(a.accepts(*got.counterexample));
          EXPECT_FALSE(b.accepts(*got.counterexample));
        }
      }
    }
    // The sequential searches are BFS, so their witnesses are shortest;
    // they must match the reference's length exactly.
    if (!expected.included) {
      ++non_included;
      const InclusionResult subset = check_inclusion(a, b, InclusionAlgorithm::kSubset);
      ASSERT_TRUE(subset.counterexample.has_value());
      EXPECT_EQ(subset.counterexample->size(), expected.counterexample->size());
    }
  }
  EXPECT_GT(non_included, 10);  // the suite must exercise both verdicts
}

TEST(Differential, LazyProductMatchesMaterializedIntersection) {
  Rng rng(424242);
  int nonempty = 0;
  for (int round = 0; round < 60; ++round) {
    auto sigma = random_alphabet(2);
    const Buchi a = random_buchi(rng, 2 + rng.next_below(5), sigma);
    const Buchi b = random_buchi(rng, 2 + rng.next_below(5), sigma);
    const bool lazy = product_empty({&a, &b});
    const bool materialized = buchi_empty(intersect_buchi(a, b));
    ASSERT_EQ(lazy, materialized) << "round " << round;
    if (!lazy) {
      ++nonempty;
      const auto lasso = find_accepting_lasso_product({&a, &b});
      ASSERT_TRUE(lasso.has_value());
    }
  }
  EXPECT_GT(nonempty, 5);
}

TEST(Differential, DeterminizeMatchesNfaOnRandomWords) {
  Rng rng(777);
  for (int round = 0; round < 40; ++round) {
    auto sigma = random_alphabet(2 + rng.next_below(2));
    const Nfa nfa = random_nfa(rng, 2 + rng.next_below(7), sigma);
    const Dfa dfa = determinize(nfa);
    for (int w = 0; w < 40; ++w) {
      Word word(rng.next_below(8));
      for (Symbol& s : word) {
        s = static_cast<Symbol>(rng.next_below(sigma->size()));
      }
      EXPECT_EQ(dfa.accepts(word), nfa.accepts(word)) << "round " << round;
    }
  }
}

// ---------------------------------------------------------------------------
// Budget memory observability.

TEST(BudgetMemory, InclusionReportsKernelBytes) {
  Rng rng(5);
  auto sigma = random_alphabet(3);
  const Nfa a = random_nfa(rng, 24, sigma);
  const Nfa b = random_nfa(rng, 16, sigma);
  Budget budget;
  (void)check_inclusion(a, b, InclusionAlgorithm::kAntichain, &budget);
  const StageMetrics& m = budget.profile()[Stage::kInclusion];
  EXPECT_GT(m.peak_memory_bytes.load(), 0u);
}

// ---------------------------------------------------------------------------
// MemoCache: hit vs coalesced split.

TEST(MemoCacheCoalesced, ResidentLookupsAreHits) {
  MemoCache<int, int> cache(8);
  (void)cache.get_or_compute(1, [] { return 10; });
  (void)cache.get_or_compute(1, [] { return 10; });
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.coalesced, 0u);
}

TEST(MemoCacheCoalesced, InFlightLookupsCountSeparately) {
  MemoCache<int, int> cache(8);
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();

  std::thread winner([&] {
    (void)cache.get_or_compute(1, [&] {
      entered.set_value();
      release_future.wait();
      return 99;
    });
  });
  entered.get_future().wait();  // the computation is now in flight

  std::thread waiter([&] {
    auto value = cache.get_or_compute(1, [] { return -1; });
    EXPECT_EQ(*value, 99);
  });
  // The waiter must reach the in-flight entry before we release the winner;
  // poll the counter (it is bumped under the cache lock during lookup).
  while (cache.counters().coalesced == 0) std::this_thread::yield();
  release.set_value();
  winner.join();
  waiter.join();

  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.coalesced, 1u);
  EXPECT_EQ(c.hits, 0u);

  (void)cache.get_or_compute(1, [] { return -1; });
  EXPECT_EQ(cache.counters().hits, 1u);
}

}  // namespace
}  // namespace rlv

// Tests for rlv::net — the serving layer: the strict JSON reader, the
// request/response protocol, server-side limit clamping, and the poll-based
// Server end to end over real sockets (concurrent clients, verdict parity
// with a direct Engine, backpressure rejections, protocol-error handling,
// idle timeouts, mid-response disconnects, graceful drain). The sockets are
// loopback-only and every server runs on an ephemeral port, so the suite is
// parallel-safe.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rlv/engine/engine.hpp"
#include "rlv/engine/record.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/io/format.hpp"
#include "rlv/net/client.hpp"
#include "rlv/net/json.hpp"
#include "rlv/net/protocol.hpp"
#include "rlv/net/server.hpp"

namespace rlv {
namespace {

using net::JsonValue;
using net::parse_json;

// ---------------------------------------------------------------------------
// JSON reader.

TEST(NetJson, ParsesScalarsAndNesting) {
  const JsonValue root = parse_json(
      R"({"a":1,"b":-2.5e1,"c":"x","d":[true,false,null],"e":{"f":""}})");
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.find("a")->as_uint(), 1u);
  EXPECT_DOUBLE_EQ(root.find("b")->as_number(), -25.0);
  EXPECT_EQ(root.find("c")->as_string(), "x");
  ASSERT_EQ(root.find("d")->array.size(), 3u);
  EXPECT_TRUE(root.find("d")->array[0].as_bool());
  EXPECT_TRUE(root.find("d")->array[2].is_null());
  ASSERT_NE(root.find("e")->find("f"), nullptr);
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(NetJson, RejectsTrailingGarbageAndBareValuesAreFine) {
  EXPECT_THROW((void)parse_json("{} trailing"), net::JsonError);
  EXPECT_THROW((void)parse_json(""), net::JsonError);
  EXPECT_THROW((void)parse_json("{"), net::JsonError);
  EXPECT_THROW((void)parse_json("{\"a\":01}"), net::JsonError);
  EXPECT_THROW((void)parse_json("'single'"), net::JsonError);
  EXPECT_EQ(parse_json("  42 ").as_uint(), 42u);
}

TEST(NetJson, RejectsDuplicateKeys) {
  EXPECT_THROW((void)parse_json(R"({"id":1,"id":2})"), net::JsonError);
}

TEST(NetJson, BoundsRecursionDepth) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW((void)parse_json(deep), net::JsonError);
}

TEST(NetJson, DecodesEscapesIncludingSurrogatePairs) {
  const JsonValue root =
      parse_json(R"({"s":"a\"b\\c\nAé😀"})");
  EXPECT_EQ(root.find("s")->as_string(),
            "a\"b\\c\nA\xC3\xA9\xF0\x9F\x98\x80");
  EXPECT_THROW((void)parse_json(R"(["\ud83d"])"), net::JsonError);
}

TEST(NetJson, AsUintRejectsNegativeAndFractional) {
  EXPECT_THROW((void)parse_json("-1").as_uint(), std::runtime_error);
  EXPECT_THROW((void)parse_json("1.5").as_uint(), std::runtime_error);
  EXPECT_THROW((void)parse_json("1e300").as_uint(), std::runtime_error);
  EXPECT_EQ(parse_json("0").as_uint(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol: request parsing, clamping, and render round trips.

TEST(NetProtocol, ParsesQueryWithDefaults) {
  const net::Request req = net::parse_request(
      R"({"id":7,"system":"S","formula":"G F result","check":"rs"})");
  EXPECT_EQ(req.op, net::RequestOp::kQuery);
  EXPECT_EQ(req.id, 7u);
  EXPECT_EQ(req.query.system, "S");
  EXPECT_EQ(req.query.kind, CheckKind::kRelativeSafety);
  EXPECT_EQ(req.query.algorithm, InclusionAlgorithm::kAntichain);
  EXPECT_EQ(req.query.timeout_ms, 0u);
  EXPECT_FALSE(req.query.certify);
}

TEST(NetProtocol, RejectsUnknownFieldsAndBadShapes) {
  EXPECT_THROW((void)net::parse_request(R"({"system":"S","formual":"x"})"),
               std::runtime_error);
  EXPECT_THROW((void)net::parse_request(R"({"op":"query"})"),
               std::runtime_error);  // missing system
  EXPECT_THROW((void)net::parse_request(R"({"system":"S"})"),
               std::runtime_error);  // neither formula nor automaton
  EXPECT_THROW((void)net::parse_request(
                   R"({"system":"S","formula":"x","property_automaton":"y"})"),
               std::runtime_error);  // both
  EXPECT_THROW((void)net::parse_request(R"({"op":"eval"})"),
               std::runtime_error);  // unknown op
  EXPECT_THROW((void)net::parse_request("[1,2]"), std::runtime_error);
}

TEST(NetProtocol, RenderQueryRequestRoundTripsHostileStrings) {
  Query query;
  query.system = "states: 1\n# \"quotes\" and \\ backslash\t\x01";
  query.formula = "G(\"a\" -> F b)";
  query.kind = CheckKind::kSatisfaction;
  query.algorithm = InclusionAlgorithm::kSubset;
  query.threads = 3;
  query.timeout_ms = 1234;
  query.max_states = 99;
  query.certify = true;

  const std::string line = net::render_query_request(query, 42, "lab\"el");
  const net::Request req = net::parse_request(line);
  EXPECT_EQ(req.id, 42u);
  EXPECT_EQ(req.label, "lab\"el");
  EXPECT_EQ(req.query.system, query.system);
  EXPECT_EQ(req.query.formula, query.formula);
  EXPECT_EQ(req.query.kind, query.kind);
  EXPECT_EQ(req.query.algorithm, query.algorithm);
  EXPECT_EQ(req.query.threads, query.threads);
  EXPECT_EQ(req.query.timeout_ms, query.timeout_ms);
  EXPECT_EQ(req.query.max_states, query.max_states);
  EXPECT_EQ(req.query.certify, query.certify);
}

TEST(NetProtocol, AppliesLimitsAsCapsAndDefaults) {
  net::ServerLimits limits;
  limits.max_timeout_ms = 1000;
  limits.max_max_states = 500;
  limits.max_threads = 2;

  Query query;  // no overrides: caps become defaults
  net::apply_limits(query, limits);
  EXPECT_EQ(query.timeout_ms, 1000u);
  EXPECT_EQ(query.max_states, 500u);
  EXPECT_EQ(query.threads, 0u);

  Query greedy;
  greedy.timeout_ms = 99999;
  greedy.max_states = 99999;
  greedy.threads = 64;
  net::apply_limits(greedy, limits);
  EXPECT_EQ(greedy.timeout_ms, 1000u);
  EXPECT_EQ(greedy.max_states, 500u);
  EXPECT_EQ(greedy.threads, 2u);

  Query modest;
  modest.timeout_ms = 10;
  modest.max_states = 10;
  net::apply_limits(modest, limits);
  EXPECT_EQ(modest.timeout_ms, 10u);
  EXPECT_EQ(modest.max_states, 10u);
}

TEST(NetProtocol, ErrorAndOverloadRendersParseBack) {
  const JsonValue err = parse_json(net::render_error(7, "bad_request", "x\"y"));
  EXPECT_EQ(err.find("id")->as_uint(), 7u);
  EXPECT_FALSE(err.find("ok")->as_bool());
  EXPECT_EQ(err.find("error")->as_string(), "bad_request");
  EXPECT_EQ(err.find("detail")->as_string(), "x\"y");

  const JsonValue anon =
      parse_json(net::render_error(std::nullopt, "bad_request", ""));
  EXPECT_EQ(anon.find("id"), nullptr);

  const JsonValue over = parse_json(net::render_overloaded(3, "server"));
  EXPECT_TRUE(over.find("overloaded")->as_bool());
  EXPECT_EQ(over.find("scope")->as_string(), "server");
}

TEST(NetProtocol, StripCrNormalizesWindowsLineEndings) {
  // The shared helper both the rlvd batch reader and the wire protocol
  // run every line through before parsing.
  EXPECT_EQ(strip_cr("{\"op\":\"ping\"}\r"), "{\"op\":\"ping\"}");
  EXPECT_EQ(strip_cr("plain"), "plain");
  EXPECT_EQ(strip_cr("\r"), "");
  EXPECT_EQ(strip_cr(""), "");
  const net::Request req = net::parse_request(
      strip_cr("{\"system\":\"S\",\"formula\":\"G F a\"}\r"));
  EXPECT_EQ(req.query.system, "S");
}

// ---------------------------------------------------------------------------
// render_stats round trip.

TEST(NetProtocol, RenderStatsRoundTripsThroughJsonParser) {
  Engine engine;
  Query query{serialize_system(figure2_system()), "G F result",
              CheckKind::kRelativeLiveness};
  (void)engine.run({query, query});

  const std::string rendered = render_stats(engine.stats());
  const JsonValue root = parse_json(rendered);
  EXPECT_EQ(root.find("queries")->as_uint(), 2u);
  EXPECT_EQ(root.find("certificates_checked")->as_uint(), 0u);
  const JsonValue* caches = root.find("caches");
  ASSERT_NE(caches, nullptr);
  for (const char* name :
       {"systems", "behaviors", "prefixes", "translations", "properties",
        "verdicts", "total"}) {
    const JsonValue* cache = caches->find(name);
    ASSERT_NE(cache, nullptr) << name;
    ASSERT_NE(cache->find("hits"), nullptr) << name;
    ASSERT_NE(cache->find("coalesced"), nullptr) << name;
    ASSERT_NE(cache->find("misses"), nullptr) << name;
    ASSERT_NE(cache->find("evictions"), nullptr) << name;
  }
  // The identical second query must have hit the verdict cache.
  EXPECT_GE(caches->find("verdicts")->find("hits")->as_uint(), 1u);
  const JsonValue* stages = root.find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_NE(stages->find("parse"), nullptr);
  EXPECT_GE(stages->find("parse")->find("calls")->as_uint(), 2u);
}

// ---------------------------------------------------------------------------
// Engine::submit (the serving hook).

TEST(NetEngineSubmit, CallbacksDeliverSameVerdictsAsRun) {
  EngineOptions options;
  options.jobs = 2;
  Engine engine(options);

  std::vector<Query> queries;
  queries.push_back({serialize_system(figure2_system()), "G F result",
                     CheckKind::kRelativeLiveness});
  queries.push_back({serialize_system(figure3_system()), "G F result",
                     CheckKind::kRelativeLiveness});
  queries.push_back({serialize_system(figure2_system()), "G F result",
                     CheckKind::kSatisfaction});

  std::vector<Verdict> got(queries.size());
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < queries.size(); ++i) {
    engine.submit(queries[i], [&, i](Verdict verdict) {
      got[i] = std::move(verdict);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  while (done.load(std::memory_order_acquire) < queries.size()) {
    std::this_thread::yield();
  }

  Engine reference;
  const std::vector<Verdict> expected = reference.run(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i].holds, expected[i].holds) << "query " << i;
    EXPECT_EQ(got[i].error, expected[i].error) << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Server integration over real sockets.

/// An Engine + Server on an ephemeral loopback port with the event loop on
/// its own thread; tears down via the same graceful drain the daemon uses.
class TestServer {
 public:
  explicit TestServer(net::ServerOptions server_options = {},
                      EngineOptions engine_options = {}) {
    if (engine_options.jobs < 2) engine_options.jobs = 2;
    engine_ = std::make_unique<Engine>(engine_options);
    server_options.bind_address = "127.0.0.1";
    server_options.port = 0;
    server_ = std::make_unique<net::Server>(*engine_, server_options);
    port_ = server_->start();
    loop_ = std::thread([this] { server_->run(); });
  }

  ~TestServer() {
    server_->request_stop();
    loop_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] Engine& engine() { return *engine_; }
  [[nodiscard]] net::Server& server() { return *server_; }

  [[nodiscard]] net::Client connect_client() const {
    net::Client client;
    client.connect("127.0.0.1", port_);
    return client;
  }

 private:
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<net::Server> server_;
  std::uint16_t port_ = 0;
  std::thread loop_;
};

/// The dense all-initial property automaton of tools/samples/hard_prop.rlv,
/// generated over the Figure 2 alphabet: rank-based complementation of this
/// (any rs/sat check) reliably outlives small budgets.
std::string dense_property_text() {
  const char* letters[] = {"lock", "free",   "request", "yes",
                           "no",   "result", "reject"};
  std::string text =
      "alphabet: lock free request yes no result reject\n"
      "states: 6\ninitial: 0 1 2 3 4 5\naccepting: 0\n";
  for (int from = 0; from < 6; ++from) {
    for (const char* letter : letters) {
      for (int to = 0; to < 6; ++to) {
        text += std::to_string(from) + " " + letter + " " +
                std::to_string(to) + "\n";
      }
    }
  }
  return text;
}

TEST(NetServer, PingStatsAndCrlfLines) {
  TestServer ts;
  net::Client client = ts.connect_client();

  const JsonValue pong = parse_json(client.call(R"({"op":"ping","id":5})"));
  EXPECT_EQ(pong.find("id")->as_uint(), 5u);
  EXPECT_TRUE(pong.find("ok")->as_bool());
  EXPECT_TRUE(pong.find("pong")->as_bool());

  // A Windows client: the protocol strips the \r, same as the batch reader.
  const JsonValue pong2 =
      parse_json(client.call("{\"op\":\"ping\",\"id\":6}\r"));
  EXPECT_EQ(pong2.find("id")->as_uint(), 6u);
  EXPECT_TRUE(pong2.find("ok")->as_bool());

  const JsonValue stats = parse_json(client.call(R"({"op":"stats","id":7})"));
  EXPECT_TRUE(stats.find("ok")->as_bool());
  ASSERT_NE(stats.find("stats"), nullptr);
  EXPECT_EQ(stats.find("stats")->find("queries")->as_uint(), 0u);
  const JsonValue* server = stats.find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_GE(server->find("connections_accepted")->as_uint(), 1u);
  EXPECT_EQ(server->find("queries")->as_uint(), 0u);
  EXPECT_FALSE(server->find("draining")->as_bool());
}

TEST(NetServer, FourConcurrentClientsMatchDirectEngine) {
  TestServer ts;

  std::vector<Query> queries;
  const std::string fig2 = serialize_system(figure2_system());
  const std::string fig3 = serialize_system(figure3_system());
  for (const std::string& system : {fig2, fig3}) {
    for (const CheckKind kind :
         {CheckKind::kRelativeLiveness, CheckKind::kRelativeSafety,
          CheckKind::kSatisfaction}) {
      queries.push_back({system, "G F result", kind});
      queries.push_back({system, "G(request -> F(result || reject))", kind});
    }
  }
  Engine reference;
  const std::vector<Verdict> expected = reference.run(queries);

  constexpr std::size_t kClients = 4;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        net::Client client;
        client.connect("127.0.0.1", ts.port());
        // Walk the workload from a per-client offset so the cache sees
        // concurrent misses for *different* keys, not a lockstep scan.
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const std::size_t k = (i + c * 3) % queries.size();
          const std::uint64_t id = c * 1000 + k;
          const net::Response response = net::parse_response(
              client.call(net::render_query_request(queries[k], id)));
          if (!response.ok || !response.has_holds ||
              response.id != id ||
              response.holds != expected[k].holds) {
            failures[c] = "query " + std::to_string(k) + " diverged: " +
                          response.raw;
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  // 4 clients x 12 queries over 12 distinct verdict keys: the shared cache
  // must have absorbed the repeats.
  net::Client client = ts.connect_client();
  const JsonValue stats = parse_json(client.call(R"({"op":"stats"})"));
  const JsonValue* verdicts =
      stats.find("stats")->find("caches")->find("verdicts");
  ASSERT_NE(verdicts, nullptr);
  // Coalesced lookups joined a computation that was still in flight; they
  // are not misses (no recompute) but not resident hits either.
  EXPECT_EQ(verdicts->find("hits")->as_uint() +
                verdicts->find("coalesced")->as_uint() +
                verdicts->find("misses")->as_uint(),
            kClients * queries.size());
  EXPECT_GE(verdicts->find("hits")->as_uint() +
                verdicts->find("coalesced")->as_uint(),
            2u * queries.size());
  EXPECT_EQ(stats.find("server")->find("overload_rejects")->as_uint(), 0u);
}

TEST(NetServer, OverloadRejectsPipelinedRequestsServerScope) {
  net::ServerOptions options;
  options.max_inflight = 1;
  TestServer ts(options);
  net::Client client = ts.connect_client();

  Query query{serialize_system(figure2_system()), "G F result",
              CheckKind::kRelativeLiveness};
  // One send(2) carrying two requests: both lines are parsed in the same
  // event-loop pass, before any completion can drain, so the second always
  // sees the first in flight — deterministic overload.
  client.send_line(net::render_query_request(query, 1) + "\n" +
                   net::render_query_request(query, 2));
  const net::Response first = net::parse_response(client.read_line());
  const net::Response second = net::parse_response(client.read_line());

  EXPECT_TRUE(first.overloaded);
  EXPECT_EQ(first.id, 2u);
  EXPECT_EQ(parse_json(first.raw).find("scope")->as_string(), "server");
  EXPECT_TRUE(second.ok);
  EXPECT_EQ(second.id, 1u);
  EXPECT_TRUE(second.has_holds);
}

TEST(NetServer, OverloadRejectsPipelinedRequestsConnectionScope) {
  net::ServerOptions options;
  options.max_inflight_per_connection = 1;
  TestServer ts(options);
  net::Client client = ts.connect_client();

  Query query{serialize_system(figure2_system()), "G F result",
              CheckKind::kRelativeLiveness};
  client.send_line(net::render_query_request(query, 1) + "\n" +
                   net::render_query_request(query, 2));
  const net::Response reject = net::parse_response(client.read_line());
  EXPECT_TRUE(reject.overloaded);
  EXPECT_EQ(parse_json(reject.raw).find("scope")->as_string(), "connection");
  EXPECT_TRUE(net::parse_response(client.read_line()).ok);
}

TEST(NetServer, BadJsonGetsErrorThenClose) {
  TestServer ts;
  net::Client client = ts.connect_client();
  const net::Response response =
      net::parse_response(client.call("this is not json"));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "bad_request");
  // The stream is desynced, so the server answers once and closes.
  EXPECT_THROW((void)client.read_line(), std::runtime_error);
}

TEST(NetServer, UnknownFieldGetsBadRequest) {
  TestServer ts;
  net::Client client = ts.connect_client();
  const net::Response response = net::parse_response(
      client.call(R"({"system":"S","formual":"G F a"})"));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "bad_request");
  EXPECT_NE(parse_json(response.raw).find("detail")->as_string().find(
                "formual"),
            std::string::npos);
}

TEST(NetServer, OversizedRequestLineRejected) {
  net::ServerOptions options;
  options.max_request_bytes = 1024;
  TestServer ts(options);
  net::Client client = ts.connect_client();
  client.send_line(std::string(4096, 'a'));  // one huge unterminated-ish line
  const net::Response response = net::parse_response(client.read_line());
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "bad_request");
  EXPECT_THROW((void)client.read_line(), std::runtime_error);
}

TEST(NetServer, ServerCapsClampRequestedBudget) {
  net::ServerOptions options;
  options.limits.max_timeout_ms = 150;
  options.limits.max_max_states = 20000;
  TestServer ts(options);
  net::Client client = ts.connect_client();

  Query hard;
  hard.system = serialize_system(figure2_system());
  hard.property_automaton = dense_property_text();
  hard.kind = CheckKind::kRelativeSafety;
  hard.timeout_ms = 600000;  // the client asks for ten minutes...
  hard.max_states = 100000000;
  const net::Response response = net::parse_response(
      client.call(net::render_query_request(hard, 9, "dense")));
  // ...and the server's caps win: the rank-based complementation trips the
  // clamped budget instead of running for minutes.
  EXPECT_TRUE(response.resource_exhausted) << response.raw;
}

TEST(NetServer, SurvivesMidResponseDisconnect) {
  TestServer ts;
  Query query{serialize_system(figure2_system()), "G F result",
              CheckKind::kRelativeLiveness};
  // Fire queries and slam the connection shut before reading the response;
  // the completion arrives for a dead connection and any write hits
  // EPIPE/ECONNRESET. MSG_NOSIGNAL + SIG_IGN must keep the daemon alive.
  for (int round = 0; round < 3; ++round) {
    net::Client client = ts.connect_client();
    client.send_line(net::render_query_request(query, 1));
    // RST (not FIN) makes the pending response write fail hard.
    struct linger hard_close{1, 0};
    ::setsockopt(client.fd(), SOL_SOCKET, SO_LINGER, &hard_close,
                 sizeof hard_close);
    client.close();
  }
  net::Client probe = ts.connect_client();
  const JsonValue pong = parse_json(probe.call(R"({"op":"ping","id":1})"));
  EXPECT_TRUE(pong.find("ok")->as_bool());
}

TEST(NetServer, IdleConnectionsAreClosed) {
  net::ServerOptions options;
  options.idle_timeout_ms = 100;
  TestServer ts(options);
  net::Client client = ts.connect_client();
  // No request: the server must EOF us, not hold the socket forever.
  EXPECT_THROW((void)client.read_line(), std::runtime_error);
}

TEST(NetServer, GracefulDrainAnswersInFlightThenCloses) {
  TestServer ts;
  net::Client client = ts.connect_client();
  Query query{serialize_system(token_ring(5)), "G F pass_0",
              CheckKind::kRelativeLiveness};
  client.send_line(net::render_query_request(query, 11));
  // Wait for the submission to reach the engine, then start the drain with
  // the query genuinely in flight.
  while (ts.server().counters().queries < 1) std::this_thread::yield();
  ts.server().request_stop();
  const net::Response response = net::parse_response(client.read_line());
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.id, 11u);
  EXPECT_TRUE(response.has_holds);
  // After the drain the server closes the connection and new connects fail.
  EXPECT_THROW((void)client.read_line(), std::runtime_error);
  net::Client late;
  EXPECT_THROW(late.connect("127.0.0.1", ts.port()), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Multi-reactor serving.

TEST(NetServerMultiReactor, ReuseportReactorsServeQueries) {
  // The default multi-reactor mode: every reactor binds the same port with
  // SO_REUSEPORT and the kernel spreads connections. Placement is not
  // deterministic, so this test only checks serving correctness and the
  // aggregated counters.
  net::ServerOptions options;
  options.reactors = 2;
  TestServer ts(options);
  EXPECT_EQ(ts.server().counters().reactors, 2u);

  Query query{serialize_system(figure2_system()), "G F result",
              CheckKind::kRelativeLiveness};
  for (int c = 0; c < 4; ++c) {
    net::Client client = ts.connect_client();
    const net::Response response = net::parse_response(
        client.call(net::render_query_request(query, 100 + c)));
    EXPECT_TRUE(response.ok) << response.raw;
    EXPECT_TRUE(response.has_holds);
  }
  const net::ServerCounters counters = ts.server().counters();
  EXPECT_EQ(counters.connections_accepted, 4u);
  EXPECT_EQ(counters.queries, 4u);
  EXPECT_EQ(counters.accept_soft_errors, 0u);
}

TEST(NetServerMultiReactor, EightClientsOnFourReactorsMatchDirectEngine) {
  net::ServerOptions options;
  options.reactors = 4;
  // Deterministic placement (client k lands on reactor k mod 4) and covers
  // the fd-handoff fallback that non-reuseport platforms always take.
  options.force_acceptor_handoff = true;
  TestServer ts(options);
  EXPECT_EQ(ts.server().counters().reactors, 4u);

  std::vector<Query> queries;
  const std::string fig2 = serialize_system(figure2_system());
  const std::string fig3 = serialize_system(figure3_system());
  for (const std::string& system : {fig2, fig3}) {
    for (const CheckKind kind :
         {CheckKind::kRelativeLiveness, CheckKind::kRelativeSafety,
          CheckKind::kSatisfaction}) {
      queries.push_back({system, "G F result", kind});
      queries.push_back({system, "G(request -> F(result || reject))", kind});
    }
  }
  Engine reference;
  const std::vector<Verdict> expected = reference.run(queries);

  constexpr std::size_t kClients = 8;  // two connections per reactor
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        net::Client client;
        client.connect("127.0.0.1", ts.port());
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const std::size_t k = (i + c * 3) % queries.size();
          const std::uint64_t id = c * 1000 + k;
          const net::Response response = net::parse_response(
              client.call(net::render_query_request(queries[k], id)));
          if (!response.ok || !response.has_holds || response.id != id ||
              response.holds != expected[k].holds) {
            failures[c] = "query " + std::to_string(k) + " diverged: " +
                          response.raw;
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  // The sharded verdict cache must account for every lookup exactly once
  // even with four loops submitting concurrently: resident hit, coalesced
  // join, or miss — never a double count, never a lost one.
  net::Client client = ts.connect_client();
  const JsonValue stats = parse_json(client.call(R"({"op":"stats"})"));
  const JsonValue* verdicts =
      stats.find("stats")->find("caches")->find("verdicts");
  ASSERT_NE(verdicts, nullptr);
  EXPECT_EQ(verdicts->find("hits")->as_uint() +
                verdicts->find("coalesced")->as_uint() +
                verdicts->find("misses")->as_uint(),
            kClients * queries.size());
  EXPECT_GE(verdicts->find("hits")->as_uint() +
                verdicts->find("coalesced")->as_uint(),
            2u * queries.size());
  const JsonValue* server = stats.find("server");
  EXPECT_EQ(server->find("overload_rejects")->as_uint(), 0u);
  EXPECT_EQ(server->find("reactors")->as_uint(), 4u);
}

TEST(NetServerMultiReactor, MonitorSessionsReclaimedOnRstOnEveryReactor) {
  net::ServerOptions options;
  options.reactors = 4;
  options.force_acceptor_handoff = true;  // client k -> reactor k mod 4
  TestServer ts(options);

  MonitorSpec spec;
  spec.system = serialize_system(figure2_system());
  spec.formula = "G F result";
  constexpr std::size_t kClients = 4;  // one session per reactor
  std::vector<net::Client> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    net::Client client = ts.connect_client();
    const net::Response opened = net::parse_response(
        client.call(net::render_monitor_open_request(spec, c + 1)));
    ASSERT_TRUE(opened.ok) << opened.raw;
    ASSERT_TRUE(opened.has_session);
    clients.push_back(std::move(client));
  }
  EXPECT_EQ(ts.engine().stats().monitor.sessions_open, kClients);

  // RST (not FIN) every connection: each reactor must notice the dead
  // socket and reclaim the slab slot of the session its connection owned —
  // there is no cross-reactor cleanup to fall back on.
  for (net::Client& client : clients) {
    struct linger hard_close{1, 0};
    ::setsockopt(client.fd(), SOL_SOCKET, SO_LINGER, &hard_close,
                 sizeof hard_close);
    client.close();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ts.engine().stats().monitor.sessions_open > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ts.engine().stats().monitor.sessions_open, 0u);
  EXPECT_EQ(ts.engine().stats().monitor.sessions_opened, kClients);
}

TEST(NetServerMultiReactor, GracefulDrainReclaimsSessionsOnEveryReactor) {
  net::ServerOptions options;
  options.reactors = 2;
  options.force_acceptor_handoff = true;
  TestServer ts(options);

  MonitorSpec spec;
  spec.system = serialize_system(figure3_system());
  spec.formula = "G F result";
  std::vector<net::Client> clients;
  for (std::size_t c = 0; c < 4; ++c) {  // two sessions per reactor
    net::Client client = ts.connect_client();
    const net::Response opened = net::parse_response(
        client.call(net::render_monitor_open_request(spec, c + 1)));
    ASSERT_TRUE(opened.ok) << opened.raw;
    clients.push_back(std::move(client));
  }
  ASSERT_EQ(ts.engine().stats().monitor.sessions_open, 4u);

  ts.server().request_stop();
  // The drain closes every connection on every reactor; each close reclaims
  // the sessions that connection owned before run() returns.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ts.engine().stats().monitor.sessions_open > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ts.engine().stats().monitor.sessions_open, 0u);
  for (net::Client& client : clients) {
    EXPECT_THROW((void)client.read_line(), std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// fd exhaustion: accept(2) returning EMFILE must degrade, not crash.

/// Open fds of this process, counted via /proc/self/fd. Overcounts by at
/// most one (the directory fd itself) — harmless for sizing a headroom.
int count_open_fds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int entries = 0;
  while (::readdir(dir) != nullptr) ++entries;
  ::closedir(dir);
  return entries - 2;  // "." and ".."
}

net::Server* g_fd_test_server = nullptr;
void fd_test_sigterm(int) {
  if (g_fd_test_server != nullptr) g_fd_test_server->request_stop();
}

/// Child-process body for the fd-exhaustion test: serve on an ephemeral
/// port, then drop RLIMIT_NOFILE to current usage plus a small headroom so
/// a handful of accepted connections exhausts the process. Communicates
/// the bound port over `port_pipe_fd` and exits via _exit only (no gtest,
/// no atexit handlers in the fork child).
[[noreturn]] void run_fd_limited_server(int port_pipe_fd) {
  try {
    EngineOptions engine_options;
    engine_options.jobs = 2;
    Engine engine(engine_options);
    net::ServerOptions options;
    options.bind_address = "127.0.0.1";
    options.port = 0;
    net::Server server(engine, options);
    const std::uint16_t port = server.start();
    g_fd_test_server = &server;
    std::signal(SIGTERM, fd_test_sigterm);

    const int used = count_open_fds();
    if (used < 0) ::_exit(2);
    struct rlimit lim{};
    if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) ::_exit(3);
    struct rlimit low{static_cast<rlim_t>(used) + 6, lim.rlim_max};
    if (::setrlimit(RLIMIT_NOFILE, &low) != 0) ::_exit(4);

    if (::write(port_pipe_fd, &port, sizeof port) !=
        static_cast<ssize_t>(sizeof port)) {
      ::_exit(5);
    }
    ::close(port_pipe_fd);

    server.run();  // until SIGTERM -> request_stop -> graceful drain
    ::_exit(0);
  } catch (...) {
    ::_exit(6);
  }
}

TEST(NetServerFdExhaustion, SurvivesEmfileAndRecovers) {
  // The server runs in a fork child so lowering RLIMIT_NOFILE cannot
  // starve the test runner itself. Fork happens before the child creates
  // any engine/server threads; by this point in the suite every prior
  // test has joined its threads, so the parent is single-threaded too.
  int port_pipe[2];
  ASSERT_EQ(::pipe(port_pipe), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(port_pipe[0]);
    run_fd_limited_server(port_pipe[1]);  // never returns
  }
  ::close(port_pipe[1]);
  std::uint16_t port = 0;
  ASSERT_EQ(::read(port_pipe[0], &port, sizeof port),
            static_cast<ssize_t>(sizeof port));
  ::close(port_pipe[0]);

  // An established connection, opened while the child still had free fds.
  net::Client survivor;
  survivor.connect("127.0.0.1", port);
  EXPECT_TRUE(parse_json(survivor.call(R"({"op":"ping","id":1})"))
                  .find("ok")
                  ->as_bool());

  // Flood connects until the server reports accept soft errors. connect(2)
  // succeeds from our side even when the server cannot accept (the kernel
  // parks the connection in the listen backlog), so the counter — read
  // over the established connection — is the observable.
  std::vector<net::Client> flood;
  std::uint64_t soft_errors = 0;
  for (int i = 0; i < 64 && soft_errors == 0; ++i) {
    net::Client c;
    c.connect("127.0.0.1", port);
    flood.push_back(std::move(c));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const JsonValue stats = parse_json(survivor.call(R"({"op":"stats"})"));
    soft_errors =
        stats.find("server")->find("accept_soft_errors")->as_uint();
  }
  EXPECT_GT(soft_errors, 0u);

  // The established connection was served throughout (every stats call
  // above went over it); once more for good measure.
  EXPECT_TRUE(parse_json(survivor.call(R"({"op":"ping","id":2})"))
                  .find("ok")
                  ->as_bool());

  // Release the flood: closing the accepted connections frees fds in the
  // child, which unpauses the listener. The server must then accept and
  // serve brand-new connections — full recovery, no restart.
  flood.clear();
  net::Client fresh;
  fresh.connect("127.0.0.1", port);
  struct timeval recv_timeout{10, 0};  // fail, don't hang, if broken
  ::setsockopt(fresh.fd(), SOL_SOCKET, SO_RCVTIMEO, &recv_timeout,
               sizeof recv_timeout);
  const JsonValue pong = parse_json(fresh.call(R"({"op":"ping","id":3})"));
  EXPECT_TRUE(pong.find("ok")->as_bool());

  // Graceful shutdown still works after the episode.
  ASSERT_EQ(::kill(child, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status)) << "child terminated abnormally";
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child exit status";
}

}  // namespace
}  // namespace rlv

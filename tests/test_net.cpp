// Tests for rlv::net — the serving layer: the strict JSON reader, the
// request/response protocol, server-side limit clamping, and the poll-based
// Server end to end over real sockets (concurrent clients, verdict parity
// with a direct Engine, backpressure rejections, protocol-error handling,
// idle timeouts, mid-response disconnects, graceful drain). The sockets are
// loopback-only and every server runs on an ephemeral port, so the suite is
// parallel-safe.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rlv/engine/engine.hpp"
#include "rlv/engine/record.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/io/format.hpp"
#include "rlv/net/client.hpp"
#include "rlv/net/json.hpp"
#include "rlv/net/protocol.hpp"
#include "rlv/net/server.hpp"

namespace rlv {
namespace {

using net::JsonValue;
using net::parse_json;

// ---------------------------------------------------------------------------
// JSON reader.

TEST(NetJson, ParsesScalarsAndNesting) {
  const JsonValue root = parse_json(
      R"({"a":1,"b":-2.5e1,"c":"x","d":[true,false,null],"e":{"f":""}})");
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.find("a")->as_uint(), 1u);
  EXPECT_DOUBLE_EQ(root.find("b")->as_number(), -25.0);
  EXPECT_EQ(root.find("c")->as_string(), "x");
  ASSERT_EQ(root.find("d")->array.size(), 3u);
  EXPECT_TRUE(root.find("d")->array[0].as_bool());
  EXPECT_TRUE(root.find("d")->array[2].is_null());
  ASSERT_NE(root.find("e")->find("f"), nullptr);
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(NetJson, RejectsTrailingGarbageAndBareValuesAreFine) {
  EXPECT_THROW((void)parse_json("{} trailing"), net::JsonError);
  EXPECT_THROW((void)parse_json(""), net::JsonError);
  EXPECT_THROW((void)parse_json("{"), net::JsonError);
  EXPECT_THROW((void)parse_json("{\"a\":01}"), net::JsonError);
  EXPECT_THROW((void)parse_json("'single'"), net::JsonError);
  EXPECT_EQ(parse_json("  42 ").as_uint(), 42u);
}

TEST(NetJson, RejectsDuplicateKeys) {
  EXPECT_THROW((void)parse_json(R"({"id":1,"id":2})"), net::JsonError);
}

TEST(NetJson, BoundsRecursionDepth) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW((void)parse_json(deep), net::JsonError);
}

TEST(NetJson, DecodesEscapesIncludingSurrogatePairs) {
  const JsonValue root =
      parse_json(R"({"s":"a\"b\\c\nAé😀"})");
  EXPECT_EQ(root.find("s")->as_string(),
            "a\"b\\c\nA\xC3\xA9\xF0\x9F\x98\x80");
  EXPECT_THROW((void)parse_json(R"(["\ud83d"])"), net::JsonError);
}

TEST(NetJson, AsUintRejectsNegativeAndFractional) {
  EXPECT_THROW((void)parse_json("-1").as_uint(), std::runtime_error);
  EXPECT_THROW((void)parse_json("1.5").as_uint(), std::runtime_error);
  EXPECT_THROW((void)parse_json("1e300").as_uint(), std::runtime_error);
  EXPECT_EQ(parse_json("0").as_uint(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol: request parsing, clamping, and render round trips.

TEST(NetProtocol, ParsesQueryWithDefaults) {
  const net::Request req = net::parse_request(
      R"({"id":7,"system":"S","formula":"G F result","check":"rs"})");
  EXPECT_EQ(req.op, net::RequestOp::kQuery);
  EXPECT_EQ(req.id, 7u);
  EXPECT_EQ(req.query.system, "S");
  EXPECT_EQ(req.query.kind, CheckKind::kRelativeSafety);
  EXPECT_EQ(req.query.algorithm, InclusionAlgorithm::kAntichain);
  EXPECT_EQ(req.query.timeout_ms, 0u);
  EXPECT_FALSE(req.query.certify);
}

TEST(NetProtocol, RejectsUnknownFieldsAndBadShapes) {
  EXPECT_THROW((void)net::parse_request(R"({"system":"S","formual":"x"})"),
               std::runtime_error);
  EXPECT_THROW((void)net::parse_request(R"({"op":"query"})"),
               std::runtime_error);  // missing system
  EXPECT_THROW((void)net::parse_request(R"({"system":"S"})"),
               std::runtime_error);  // neither formula nor automaton
  EXPECT_THROW((void)net::parse_request(
                   R"({"system":"S","formula":"x","property_automaton":"y"})"),
               std::runtime_error);  // both
  EXPECT_THROW((void)net::parse_request(R"({"op":"eval"})"),
               std::runtime_error);  // unknown op
  EXPECT_THROW((void)net::parse_request("[1,2]"), std::runtime_error);
}

TEST(NetProtocol, RenderQueryRequestRoundTripsHostileStrings) {
  Query query;
  query.system = "states: 1\n# \"quotes\" and \\ backslash\t\x01";
  query.formula = "G(\"a\" -> F b)";
  query.kind = CheckKind::kSatisfaction;
  query.algorithm = InclusionAlgorithm::kSubset;
  query.threads = 3;
  query.timeout_ms = 1234;
  query.max_states = 99;
  query.certify = true;

  const std::string line = net::render_query_request(query, 42, "lab\"el");
  const net::Request req = net::parse_request(line);
  EXPECT_EQ(req.id, 42u);
  EXPECT_EQ(req.label, "lab\"el");
  EXPECT_EQ(req.query.system, query.system);
  EXPECT_EQ(req.query.formula, query.formula);
  EXPECT_EQ(req.query.kind, query.kind);
  EXPECT_EQ(req.query.algorithm, query.algorithm);
  EXPECT_EQ(req.query.threads, query.threads);
  EXPECT_EQ(req.query.timeout_ms, query.timeout_ms);
  EXPECT_EQ(req.query.max_states, query.max_states);
  EXPECT_EQ(req.query.certify, query.certify);
}

TEST(NetProtocol, AppliesLimitsAsCapsAndDefaults) {
  net::ServerLimits limits;
  limits.max_timeout_ms = 1000;
  limits.max_max_states = 500;
  limits.max_threads = 2;

  Query query;  // no overrides: caps become defaults
  net::apply_limits(query, limits);
  EXPECT_EQ(query.timeout_ms, 1000u);
  EXPECT_EQ(query.max_states, 500u);
  EXPECT_EQ(query.threads, 0u);

  Query greedy;
  greedy.timeout_ms = 99999;
  greedy.max_states = 99999;
  greedy.threads = 64;
  net::apply_limits(greedy, limits);
  EXPECT_EQ(greedy.timeout_ms, 1000u);
  EXPECT_EQ(greedy.max_states, 500u);
  EXPECT_EQ(greedy.threads, 2u);

  Query modest;
  modest.timeout_ms = 10;
  modest.max_states = 10;
  net::apply_limits(modest, limits);
  EXPECT_EQ(modest.timeout_ms, 10u);
  EXPECT_EQ(modest.max_states, 10u);
}

TEST(NetProtocol, ErrorAndOverloadRendersParseBack) {
  const JsonValue err = parse_json(net::render_error(7, "bad_request", "x\"y"));
  EXPECT_EQ(err.find("id")->as_uint(), 7u);
  EXPECT_FALSE(err.find("ok")->as_bool());
  EXPECT_EQ(err.find("error")->as_string(), "bad_request");
  EXPECT_EQ(err.find("detail")->as_string(), "x\"y");

  const JsonValue anon =
      parse_json(net::render_error(std::nullopt, "bad_request", ""));
  EXPECT_EQ(anon.find("id"), nullptr);

  const JsonValue over = parse_json(net::render_overloaded(3, "server"));
  EXPECT_TRUE(over.find("overloaded")->as_bool());
  EXPECT_EQ(over.find("scope")->as_string(), "server");
}

TEST(NetProtocol, StripCrNormalizesWindowsLineEndings) {
  // The shared helper both the rlvd batch reader and the wire protocol
  // run every line through before parsing.
  EXPECT_EQ(strip_cr("{\"op\":\"ping\"}\r"), "{\"op\":\"ping\"}");
  EXPECT_EQ(strip_cr("plain"), "plain");
  EXPECT_EQ(strip_cr("\r"), "");
  EXPECT_EQ(strip_cr(""), "");
  const net::Request req = net::parse_request(
      strip_cr("{\"system\":\"S\",\"formula\":\"G F a\"}\r"));
  EXPECT_EQ(req.query.system, "S");
}

// ---------------------------------------------------------------------------
// render_stats round trip.

TEST(NetProtocol, RenderStatsRoundTripsThroughJsonParser) {
  Engine engine;
  Query query{serialize_system(figure2_system()), "G F result",
              CheckKind::kRelativeLiveness};
  (void)engine.run({query, query});

  const std::string rendered = render_stats(engine.stats());
  const JsonValue root = parse_json(rendered);
  EXPECT_EQ(root.find("queries")->as_uint(), 2u);
  EXPECT_EQ(root.find("certificates_checked")->as_uint(), 0u);
  const JsonValue* caches = root.find("caches");
  ASSERT_NE(caches, nullptr);
  for (const char* name :
       {"systems", "behaviors", "prefixes", "translations", "properties",
        "verdicts", "total"}) {
    const JsonValue* cache = caches->find(name);
    ASSERT_NE(cache, nullptr) << name;
    ASSERT_NE(cache->find("hits"), nullptr) << name;
    ASSERT_NE(cache->find("coalesced"), nullptr) << name;
    ASSERT_NE(cache->find("misses"), nullptr) << name;
    ASSERT_NE(cache->find("evictions"), nullptr) << name;
  }
  // The identical second query must have hit the verdict cache.
  EXPECT_GE(caches->find("verdicts")->find("hits")->as_uint(), 1u);
  const JsonValue* stages = root.find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_NE(stages->find("parse"), nullptr);
  EXPECT_GE(stages->find("parse")->find("calls")->as_uint(), 2u);
}

// ---------------------------------------------------------------------------
// Engine::submit (the serving hook).

TEST(NetEngineSubmit, CallbacksDeliverSameVerdictsAsRun) {
  EngineOptions options;
  options.jobs = 2;
  Engine engine(options);

  std::vector<Query> queries;
  queries.push_back({serialize_system(figure2_system()), "G F result",
                     CheckKind::kRelativeLiveness});
  queries.push_back({serialize_system(figure3_system()), "G F result",
                     CheckKind::kRelativeLiveness});
  queries.push_back({serialize_system(figure2_system()), "G F result",
                     CheckKind::kSatisfaction});

  std::vector<Verdict> got(queries.size());
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < queries.size(); ++i) {
    engine.submit(queries[i], [&, i](Verdict verdict) {
      got[i] = std::move(verdict);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  while (done.load(std::memory_order_acquire) < queries.size()) {
    std::this_thread::yield();
  }

  Engine reference;
  const std::vector<Verdict> expected = reference.run(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i].holds, expected[i].holds) << "query " << i;
    EXPECT_EQ(got[i].error, expected[i].error) << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Server integration over real sockets.

/// An Engine + Server on an ephemeral loopback port with the event loop on
/// its own thread; tears down via the same graceful drain the daemon uses.
class TestServer {
 public:
  explicit TestServer(net::ServerOptions server_options = {},
                      EngineOptions engine_options = {}) {
    if (engine_options.jobs < 2) engine_options.jobs = 2;
    engine_ = std::make_unique<Engine>(engine_options);
    server_options.bind_address = "127.0.0.1";
    server_options.port = 0;
    server_ = std::make_unique<net::Server>(*engine_, server_options);
    port_ = server_->start();
    loop_ = std::thread([this] { server_->run(); });
  }

  ~TestServer() {
    server_->request_stop();
    loop_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] Engine& engine() { return *engine_; }
  [[nodiscard]] net::Server& server() { return *server_; }

  [[nodiscard]] net::Client connect_client() const {
    net::Client client;
    client.connect("127.0.0.1", port_);
    return client;
  }

 private:
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<net::Server> server_;
  std::uint16_t port_ = 0;
  std::thread loop_;
};

/// The dense all-initial property automaton of tools/samples/hard_prop.rlv,
/// generated over the Figure 2 alphabet: rank-based complementation of this
/// (any rs/sat check) reliably outlives small budgets.
std::string dense_property_text() {
  const char* letters[] = {"lock", "free",   "request", "yes",
                           "no",   "result", "reject"};
  std::string text =
      "alphabet: lock free request yes no result reject\n"
      "states: 6\ninitial: 0 1 2 3 4 5\naccepting: 0\n";
  for (int from = 0; from < 6; ++from) {
    for (const char* letter : letters) {
      for (int to = 0; to < 6; ++to) {
        text += std::to_string(from) + " " + letter + " " +
                std::to_string(to) + "\n";
      }
    }
  }
  return text;
}

TEST(NetServer, PingStatsAndCrlfLines) {
  TestServer ts;
  net::Client client = ts.connect_client();

  const JsonValue pong = parse_json(client.call(R"({"op":"ping","id":5})"));
  EXPECT_EQ(pong.find("id")->as_uint(), 5u);
  EXPECT_TRUE(pong.find("ok")->as_bool());
  EXPECT_TRUE(pong.find("pong")->as_bool());

  // A Windows client: the protocol strips the \r, same as the batch reader.
  const JsonValue pong2 =
      parse_json(client.call("{\"op\":\"ping\",\"id\":6}\r"));
  EXPECT_EQ(pong2.find("id")->as_uint(), 6u);
  EXPECT_TRUE(pong2.find("ok")->as_bool());

  const JsonValue stats = parse_json(client.call(R"({"op":"stats","id":7})"));
  EXPECT_TRUE(stats.find("ok")->as_bool());
  ASSERT_NE(stats.find("stats"), nullptr);
  EXPECT_EQ(stats.find("stats")->find("queries")->as_uint(), 0u);
  const JsonValue* server = stats.find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_GE(server->find("connections_accepted")->as_uint(), 1u);
  EXPECT_EQ(server->find("queries")->as_uint(), 0u);
  EXPECT_FALSE(server->find("draining")->as_bool());
}

TEST(NetServer, FourConcurrentClientsMatchDirectEngine) {
  TestServer ts;

  std::vector<Query> queries;
  const std::string fig2 = serialize_system(figure2_system());
  const std::string fig3 = serialize_system(figure3_system());
  for (const std::string& system : {fig2, fig3}) {
    for (const CheckKind kind :
         {CheckKind::kRelativeLiveness, CheckKind::kRelativeSafety,
          CheckKind::kSatisfaction}) {
      queries.push_back({system, "G F result", kind});
      queries.push_back({system, "G(request -> F(result || reject))", kind});
    }
  }
  Engine reference;
  const std::vector<Verdict> expected = reference.run(queries);

  constexpr std::size_t kClients = 4;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        net::Client client;
        client.connect("127.0.0.1", ts.port());
        // Walk the workload from a per-client offset so the cache sees
        // concurrent misses for *different* keys, not a lockstep scan.
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const std::size_t k = (i + c * 3) % queries.size();
          const std::uint64_t id = c * 1000 + k;
          const net::Response response = net::parse_response(
              client.call(net::render_query_request(queries[k], id)));
          if (!response.ok || !response.has_holds ||
              response.id != id ||
              response.holds != expected[k].holds) {
            failures[c] = "query " + std::to_string(k) + " diverged: " +
                          response.raw;
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  // 4 clients x 12 queries over 12 distinct verdict keys: the shared cache
  // must have absorbed the repeats.
  net::Client client = ts.connect_client();
  const JsonValue stats = parse_json(client.call(R"({"op":"stats"})"));
  const JsonValue* verdicts =
      stats.find("stats")->find("caches")->find("verdicts");
  ASSERT_NE(verdicts, nullptr);
  // Coalesced lookups joined a computation that was still in flight; they
  // are not misses (no recompute) but not resident hits either.
  EXPECT_EQ(verdicts->find("hits")->as_uint() +
                verdicts->find("coalesced")->as_uint() +
                verdicts->find("misses")->as_uint(),
            kClients * queries.size());
  EXPECT_GE(verdicts->find("hits")->as_uint() +
                verdicts->find("coalesced")->as_uint(),
            2u * queries.size());
  EXPECT_EQ(stats.find("server")->find("overload_rejects")->as_uint(), 0u);
}

TEST(NetServer, OverloadRejectsPipelinedRequestsServerScope) {
  net::ServerOptions options;
  options.max_inflight = 1;
  TestServer ts(options);
  net::Client client = ts.connect_client();

  Query query{serialize_system(figure2_system()), "G F result",
              CheckKind::kRelativeLiveness};
  // One send(2) carrying two requests: both lines are parsed in the same
  // event-loop pass, before any completion can drain, so the second always
  // sees the first in flight — deterministic overload.
  client.send_line(net::render_query_request(query, 1) + "\n" +
                   net::render_query_request(query, 2));
  const net::Response first = net::parse_response(client.read_line());
  const net::Response second = net::parse_response(client.read_line());

  EXPECT_TRUE(first.overloaded);
  EXPECT_EQ(first.id, 2u);
  EXPECT_EQ(parse_json(first.raw).find("scope")->as_string(), "server");
  EXPECT_TRUE(second.ok);
  EXPECT_EQ(second.id, 1u);
  EXPECT_TRUE(second.has_holds);
}

TEST(NetServer, OverloadRejectsPipelinedRequestsConnectionScope) {
  net::ServerOptions options;
  options.max_inflight_per_connection = 1;
  TestServer ts(options);
  net::Client client = ts.connect_client();

  Query query{serialize_system(figure2_system()), "G F result",
              CheckKind::kRelativeLiveness};
  client.send_line(net::render_query_request(query, 1) + "\n" +
                   net::render_query_request(query, 2));
  const net::Response reject = net::parse_response(client.read_line());
  EXPECT_TRUE(reject.overloaded);
  EXPECT_EQ(parse_json(reject.raw).find("scope")->as_string(), "connection");
  EXPECT_TRUE(net::parse_response(client.read_line()).ok);
}

TEST(NetServer, BadJsonGetsErrorThenClose) {
  TestServer ts;
  net::Client client = ts.connect_client();
  const net::Response response =
      net::parse_response(client.call("this is not json"));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "bad_request");
  // The stream is desynced, so the server answers once and closes.
  EXPECT_THROW((void)client.read_line(), std::runtime_error);
}

TEST(NetServer, UnknownFieldGetsBadRequest) {
  TestServer ts;
  net::Client client = ts.connect_client();
  const net::Response response = net::parse_response(
      client.call(R"({"system":"S","formual":"G F a"})"));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "bad_request");
  EXPECT_NE(parse_json(response.raw).find("detail")->as_string().find(
                "formual"),
            std::string::npos);
}

TEST(NetServer, OversizedRequestLineRejected) {
  net::ServerOptions options;
  options.max_request_bytes = 1024;
  TestServer ts(options);
  net::Client client = ts.connect_client();
  client.send_line(std::string(4096, 'a'));  // one huge unterminated-ish line
  const net::Response response = net::parse_response(client.read_line());
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, "bad_request");
  EXPECT_THROW((void)client.read_line(), std::runtime_error);
}

TEST(NetServer, ServerCapsClampRequestedBudget) {
  net::ServerOptions options;
  options.limits.max_timeout_ms = 150;
  options.limits.max_max_states = 20000;
  TestServer ts(options);
  net::Client client = ts.connect_client();

  Query hard;
  hard.system = serialize_system(figure2_system());
  hard.property_automaton = dense_property_text();
  hard.kind = CheckKind::kRelativeSafety;
  hard.timeout_ms = 600000;  // the client asks for ten minutes...
  hard.max_states = 100000000;
  const net::Response response = net::parse_response(
      client.call(net::render_query_request(hard, 9, "dense")));
  // ...and the server's caps win: the rank-based complementation trips the
  // clamped budget instead of running for minutes.
  EXPECT_TRUE(response.resource_exhausted) << response.raw;
}

TEST(NetServer, SurvivesMidResponseDisconnect) {
  TestServer ts;
  Query query{serialize_system(figure2_system()), "G F result",
              CheckKind::kRelativeLiveness};
  // Fire queries and slam the connection shut before reading the response;
  // the completion arrives for a dead connection and any write hits
  // EPIPE/ECONNRESET. MSG_NOSIGNAL + SIG_IGN must keep the daemon alive.
  for (int round = 0; round < 3; ++round) {
    net::Client client = ts.connect_client();
    client.send_line(net::render_query_request(query, 1));
    // RST (not FIN) makes the pending response write fail hard.
    struct linger hard_close{1, 0};
    ::setsockopt(client.fd(), SOL_SOCKET, SO_LINGER, &hard_close,
                 sizeof hard_close);
    client.close();
  }
  net::Client probe = ts.connect_client();
  const JsonValue pong = parse_json(probe.call(R"({"op":"ping","id":1})"));
  EXPECT_TRUE(pong.find("ok")->as_bool());
}

TEST(NetServer, IdleConnectionsAreClosed) {
  net::ServerOptions options;
  options.idle_timeout_ms = 100;
  TestServer ts(options);
  net::Client client = ts.connect_client();
  // No request: the server must EOF us, not hold the socket forever.
  EXPECT_THROW((void)client.read_line(), std::runtime_error);
}

TEST(NetServer, GracefulDrainAnswersInFlightThenCloses) {
  TestServer ts;
  net::Client client = ts.connect_client();
  Query query{serialize_system(token_ring(5)), "G F pass_0",
              CheckKind::kRelativeLiveness};
  client.send_line(net::render_query_request(query, 11));
  // Wait for the submission to reach the engine, then start the drain with
  // the query genuinely in flight.
  while (ts.server().counters().queries < 1) std::this_thread::yield();
  ts.server().request_stop();
  const net::Response response = net::parse_response(client.read_line());
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.id, 11u);
  EXPECT_TRUE(response.has_holds);
  // After the drain the server closes the connection and new connects fail.
  EXPECT_THROW((void)client.read_line(), std::runtime_error);
  net::Client late;
  EXPECT_THROW(late.connect("127.0.0.1", ts.port()), std::runtime_error);
}

}  // namespace
}  // namespace rlv

// Tests for the ω-automata layer (rlv_omega): degeneralization, Büchi
// products, live states / pre(L_ω), emptiness (SCC and nested DFS),
// ultimately-periodic membership, limits of prefix-closed languages,
// rank-based complementation, and Streett emptiness.

#include <gtest/gtest.h>

#include <algorithm>

#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/omega/complement.hpp"
#include "rlv/omega/emptiness.hpp"
#include "rlv/omega/expr.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/omega/streett.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

AlphabetRef ab() {
  static AlphabetRef sigma = Alphabet::make({"a", "b"});
  return sigma;
}

Symbol A() { return ab()->id("a"); }
Symbol B() { return ab()->id("b"); }

/// Büchi automaton for "infinitely many a" over {a,b}.
Buchi inf_a() {
  Buchi buchi(ab());
  const State s0 = buchi.add_state(false);
  const State s1 = buchi.add_state(true);
  buchi.add_transition(s0, B(), s0);
  buchi.add_transition(s0, A(), s1);
  buchi.add_transition(s1, A(), s1);
  buchi.add_transition(s1, B(), s0);
  buchi.set_initial(s0);
  return buchi;
}

/// Büchi automaton for "infinitely many b" over {a,b}.
Buchi inf_b() {
  Buchi buchi(ab());
  const State s0 = buchi.add_state(false);
  const State s1 = buchi.add_state(true);
  buchi.add_transition(s0, A(), s0);
  buchi.add_transition(s0, B(), s1);
  buchi.add_transition(s1, B(), s1);
  buchi.add_transition(s1, A(), s0);
  buchi.set_initial(s0);
  return buchi;
}

/// Büchi automaton for "finitely many a" (eventually only b).
Buchi fin_a() {
  Buchi buchi(ab());
  const State s0 = buchi.add_state(false);
  const State s1 = buchi.add_state(true);
  buchi.add_transition(s0, A(), s0);
  buchi.add_transition(s0, B(), s0);
  buchi.add_transition(s0, B(), s1);
  buchi.add_transition(s1, B(), s1);
  buchi.set_initial(s0);
  return buchi;
}

Buchi random_buchi(Rng& rng, std::size_t num_states) {
  Buchi buchi(ab());
  for (std::size_t i = 0; i < num_states; ++i) {
    buchi.add_state(rng.chance(1, 3));
  }
  for (State s = 0; s < num_states; ++s) {
    for (Symbol c = 0; c < 2; ++c) {
      const std::uint64_t fanout = rng.next_below(3);
      for (std::uint64_t k = 0; k < fanout; ++k) {
        buchi.structure().add_transition_unique(
            s, c, static_cast<State>(rng.next_below(num_states)));
      }
    }
  }
  buchi.set_initial(static_cast<State>(rng.next_below(num_states)));
  return buchi;
}

Word random_word(Rng& rng, std::size_t min_len, std::size_t max_len) {
  Word w;
  const std::size_t len = min_len + rng.next_below(max_len - min_len + 1);
  for (std::size_t i = 0; i < len; ++i) {
    w.push_back(static_cast<Symbol>(rng.next_below(2)));
  }
  return w;
}

TEST(Lasso, BasicMembership) {
  const Buchi a = inf_a();
  EXPECT_TRUE(accepts_lasso(a, {}, {A()}));           // a^ω
  EXPECT_TRUE(accepts_lasso(a, {B()}, {B(), A()}));   // b (ba)^ω
  EXPECT_FALSE(accepts_lasso(a, {A()}, {B()}));       // a b^ω
  EXPECT_FALSE(accepts_lasso(a, {}, {B()}));          // b^ω
}

TEST(Lasso, FinAButtonholesPeriodicity) {
  const Buchi a = fin_a();
  EXPECT_TRUE(accepts_lasso(a, {A(), A()}, {B()}));
  EXPECT_FALSE(accepts_lasso(a, {}, {B(), A()}));
  // Same ω-word written with a longer period and shifted prefix.
  EXPECT_TRUE(accepts_lasso(a, {A(), B()}, {B(), B(), B()}));
}

TEST(Degeneralize, TwoSetsIntersection) {
  // One-state GBA over {a,b} with sets {seen-a}, {seen-b} cannot be stated
  // with one state; use the 2-state skeleton tracking the last symbol.
  GenBuchi gba(ab());
  const State sa = gba.structure.add_state();
  const State sb = gba.structure.add_state();
  gba.structure.add_transition(sa, A(), sa);
  gba.structure.add_transition(sa, B(), sb);
  gba.structure.add_transition(sb, A(), sa);
  gba.structure.add_transition(sb, B(), sb);
  gba.structure.set_initial(sa);
  gba.structure.set_initial(sb);
  DynBitset f1(2);
  f1.set(sa);  // visits "just read a" infinitely often
  DynBitset f2(2);
  f2.set(sb);  // visits "just read b" infinitely often
  gba.sets.push_back(f1);
  gba.sets.push_back(f2);

  const Buchi buchi = degeneralize(gba);
  EXPECT_TRUE(accepts_lasso(buchi, {}, {A(), B()}));
  EXPECT_TRUE(accepts_lasso(buchi, {B()}, {B(), A(), A()}));
  EXPECT_FALSE(accepts_lasso(buchi, {}, {A()}));
  EXPECT_FALSE(accepts_lasso(buchi, {A()}, {B()}));
}

TEST(Degeneralize, ZeroSetsAcceptsAllRuns) {
  GenBuchi gba(ab());
  const State s = gba.structure.add_state();
  gba.structure.add_transition(s, A(), s);
  gba.structure.set_initial(s);
  const Buchi buchi = degeneralize(gba);
  EXPECT_TRUE(accepts_lasso(buchi, {}, {A()}));
  EXPECT_FALSE(accepts_lasso(buchi, {}, {B()}));  // no run at all
}

TEST(Product, InfAAndInfB) {
  const Buchi both = intersect_buchi(inf_a(), inf_b());
  EXPECT_TRUE(accepts_lasso(both, {}, {A(), B()}));
  EXPECT_FALSE(accepts_lasso(both, {}, {A()}));
  EXPECT_FALSE(accepts_lasso(both, {B()}, {B()}));
  EXPECT_FALSE(omega_empty(both));
}

TEST(Product, DisjointIsEmpty) {
  const Buchi never = intersect_buchi(inf_a(), fin_a());
  EXPECT_TRUE(omega_empty(never));
  EXPECT_TRUE(buchi_empty(never, EmptinessAlgorithm::kScc));
  EXPECT_TRUE(buchi_empty(never, EmptinessAlgorithm::kNestedDfs));
}

TEST(Union, AcceptsEither) {
  const Buchi either = union_buchi(intersect_buchi(inf_a(), fin_a()), inf_b());
  EXPECT_TRUE(accepts_lasso(either, {}, {B()}));
  EXPECT_FALSE(accepts_lasso(either, {}, {A()}));
}

TEST(Live, TrimRemovesDeadParts) {
  Buchi buchi(ab());
  const State s0 = buchi.add_state(false);
  const State s1 = buchi.add_state(true);
  const State dead = buchi.add_state(true);  // accepting but no cycle
  buchi.add_transition(s0, A(), s1);
  buchi.add_transition(s1, A(), s1);
  buchi.add_transition(s0, B(), dead);
  buchi.set_initial(s0);

  const DynBitset live = live_states(buchi);
  EXPECT_TRUE(live.test(s0));
  EXPECT_TRUE(live.test(s1));
  EXPECT_FALSE(live.test(dead));

  const Buchi trimmed = trim_omega(buchi);
  EXPECT_EQ(trimmed.num_states(), 2u);
  EXPECT_TRUE(accepts_lasso(trimmed, {}, {A()}));
}

TEST(Live, PrefixNfaIsPreOfOmegaLanguage) {
  // pre(L(inf_a)) = Σ*: every finite word extends to an accepted ω-word.
  const Nfa pre = prefix_nfa(inf_a());
  Nfa total(ab());
  const State s = total.add_state(true);
  total.add_transition(s, A(), s);
  total.add_transition(s, B(), s);
  total.set_initial(s);
  EXPECT_TRUE(nfa_equivalent(pre, total));
}

TEST(Emptiness, LassoWitnessIsAccepted) {
  const Buchi both = intersect_buchi(inf_a(), inf_b());
  const auto lasso = find_accepting_lasso(both);
  ASSERT_TRUE(lasso.has_value());
  EXPECT_FALSE(lasso->period.empty());
  EXPECT_TRUE(accepts_lasso(both, *lasso));
  // The witness must contain both letters in its period.
  EXPECT_TRUE(std::count(lasso->period.begin(), lasso->period.end(), A()) > 0);
  EXPECT_TRUE(std::count(lasso->period.begin(), lasso->period.end(), B()) > 0);
}

TEST(Limit, PrefixClosedSmallSystem) {
  // System: s0 -a-> s0, s0 -b-> s1 (s1 terminal). L = a* + a*b,
  // lim(L) = a^ω.
  Nfa nfa(ab());
  const State s0 = nfa.add_state(true);
  const State s1 = nfa.add_state(true);
  nfa.add_transition(s0, A(), s0);
  nfa.add_transition(s0, B(), s1);
  nfa.set_initial(s0);

  const Buchi lim = limit_of_prefix_closed(nfa);
  EXPECT_TRUE(accepts_lasso(lim, {}, {A()}));
  EXPECT_FALSE(accepts_lasso(lim, {A()}, {B()}));
  EXPECT_FALSE(accepts_lasso(lim, {B()}, {A()}));
}

TEST(Limit, GeneralLimitOfEndsWithA) {
  // L = (a|b)*a; lim(L) = words with infinitely many a.
  Nfa nfa(ab());
  const State s0 = nfa.add_state(false);
  const State s1 = nfa.add_state(true);
  nfa.add_transition(s0, A(), s0);
  nfa.add_transition(s0, B(), s0);
  nfa.add_transition(s0, A(), s1);
  nfa.set_initial(s0);
  const Buchi lim = limit_general(nfa);
  EXPECT_TRUE(accepts_lasso(lim, {}, {A()}));
  EXPECT_TRUE(accepts_lasso(lim, {B()}, {B(), A()}));
  EXPECT_FALSE(accepts_lasso(lim, {A()}, {B()}));
}

TEST(Streett, SinglePairRequiresGoal) {
  // Two states: s0 -a-> s0, s0 -b-> s1, s1 -b-> s1. Pair: if the a-loop is
  // taken infinitely often then the b-loop must be too — unsatisfiable
  // together (different SCC); but runs staying in s1 are fair.
  Nfa nfa(ab());
  const State s0 = nfa.add_state();
  const State s1 = nfa.add_state();
  nfa.add_transition(s0, A(), s0);  // edge 0
  nfa.add_transition(s0, B(), s1);  // edge 1
  nfa.add_transition(s1, B(), s1);  // edge 2
  nfa.set_initial(s0);

  StreettAutomaton st(nfa);
  StreettPair pair{st.edge_set(), st.edge_set()};
  pair.antecedent.set(0);
  pair.goal.set(2);
  st.add_pair(std::move(pair));

  const auto lasso = find_fair_lasso(st);
  ASSERT_TRUE(lasso.has_value());
  // The fair lasso must loop in s1 (only b's in the period).
  for (const Symbol c : lasso->period) EXPECT_EQ(c, B());
}

TEST(Streett, UnsatisfiablePairs) {
  // Single state with an a-loop; pair demands: taking the a-loop infinitely
  // often requires taking a (nonexistent) goal edge.
  Nfa nfa(ab());
  const State s0 = nfa.add_state();
  nfa.add_transition(s0, A(), s0);  // edge 0
  nfa.set_initial(s0);
  StreettAutomaton st(nfa);
  StreettPair pair{st.edge_set(), st.edge_set()};
  pair.antecedent.set(0);
  st.add_pair(std::move(pair));
  EXPECT_FALSE(streett_nonempty(st));
}

TEST(Streett, StrongFairnessPicksBothLoops) {
  // {a,b}^ω one-state system; pairs force each self-loop to recur (strong
  // transition fairness from one always-enabled state).
  Nfa nfa(ab());
  const State s0 = nfa.add_state();
  nfa.add_transition(s0, A(), s0);  // edge 0
  nfa.add_transition(s0, B(), s0);  // edge 1
  nfa.set_initial(s0);
  StreettAutomaton st(nfa);
  for (EdgeId e = 0; e < 2; ++e) {
    StreettPair pair{st.edge_set(), st.edge_set()};
    pair.antecedent.set(0);
    pair.antecedent.set(1);
    pair.goal.set(e);
    st.add_pair(std::move(pair));
  }
  const auto lasso = find_fair_lasso(st);
  ASSERT_TRUE(lasso.has_value());
  EXPECT_TRUE(std::count(lasso->period.begin(), lasso->period.end(), A()) > 0);
  EXPECT_TRUE(std::count(lasso->period.begin(), lasso->period.end(), B()) > 0);
}

TEST(OmegaExpr, PowerOfSingleWord) {
  // ({ab})^ω = (ab)^ω only.
  Nfa ab_word(ab());
  const State s0 = ab_word.add_state(false);
  const State s1 = ab_word.add_state(false);
  const State s2 = ab_word.add_state(true);
  ab_word.add_transition(s0, A(), s1);
  ab_word.add_transition(s1, B(), s2);
  ab_word.set_initial(s0);

  const Buchi power = omega_power(ab_word);
  EXPECT_TRUE(accepts_lasso(power, {}, {A(), B()}));
  EXPECT_TRUE(accepts_lasso(power, {A(), B()}, {A(), B(), A(), B()}));
  EXPECT_FALSE(accepts_lasso(power, {}, {A()}));
  EXPECT_FALSE(accepts_lasso(power, {B()}, {A(), B()}));
  EXPECT_FALSE(accepts_lasso(power, {A()}, {B(), B()}));
}

TEST(OmegaExpr, IterationMatchesGfTranslation) {
  // (Σ* a)^ω = "infinitely many a": compare against the automaton for the
  // same language built completely differently (the hand-built inf_a).
  Nfa ends_a(ab());
  const State s0 = ends_a.add_state(false);
  const State s1 = ends_a.add_state(true);
  ends_a.add_transition(s0, A(), s0);
  ends_a.add_transition(s0, B(), s0);
  ends_a.add_transition(s0, A(), s1);
  ends_a.set_initial(s0);

  Nfa epsilon(ab());
  epsilon.set_initial(epsilon.add_state(true));

  const Buchi via_expr = omega_iteration(epsilon, ends_a);
  const Buchi reference = inf_a();
  Rng rng(13);
  for (int i = 0; i < 40; ++i) {
    const Word u = random_word(rng, 0, 3);
    const Word v = random_word(rng, 1, 4);
    EXPECT_EQ(accepts_lasso(via_expr, u, v), accepts_lasso(reference, u, v))
        << "u=" << ab()->format(u) << " v=" << ab()->format(v);
  }
}

TEST(OmegaExpr, PrefixPart) {
  // b* · ({a})^ω = b^m a^ω.
  Nfa bstar(ab());
  const State s = bstar.add_state(true);
  bstar.add_transition(s, B(), s);
  bstar.set_initial(s);
  Nfa a_word(ab());
  const State a0 = a_word.add_state(false);
  const State a1 = a_word.add_state(true);
  a_word.add_transition(a0, A(), a1);
  a_word.set_initial(a0);

  const Buchi lang = omega_iteration(bstar, a_word);
  EXPECT_TRUE(accepts_lasso(lang, {}, {A()}));
  EXPECT_TRUE(accepts_lasso(lang, {B(), B()}, {A()}));
  EXPECT_FALSE(accepts_lasso(lang, {A()}, {B()}));
  EXPECT_FALSE(accepts_lasso(lang, {B()}, {A(), B()}));
}

// ---------------------------------------------------------------------------
// Property tests.

class RandomBuchiProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBuchiProperty, DegeneralizationMatchesGeneralizedMembership) {
  // Independent oracle: mask-based generalized-Büchi membership vs the
  // counter-construction degeneralization.
  Rng rng(GetParam() * 37199 + 4);
  const std::size_t n = 2 + rng.next_below(4);
  GenBuchi gba(ab());
  for (std::size_t i = 0; i < n; ++i) gba.structure.add_state();
  for (State s = 0; s < n; ++s) {
    for (Symbol c = 0; c < 2; ++c) {
      const std::uint64_t fanout = rng.next_below(3);
      for (std::uint64_t k = 0; k < fanout; ++k) {
        gba.structure.add_transition_unique(
            s, c, static_cast<State>(rng.next_below(n)));
      }
    }
  }
  gba.structure.set_initial(static_cast<State>(rng.next_below(n)));
  const std::size_t num_sets = rng.next_below(4);  // 0..3 acceptance sets
  for (std::size_t i = 0; i < num_sets; ++i) {
    DynBitset set(n);
    for (State s = 0; s < n; ++s) {
      if (rng.chance(1, 3)) set.set(s);
    }
    gba.sets.push_back(std::move(set));
  }

  const Buchi degeneralized = degeneralize(gba);
  for (int i = 0; i < 25; ++i) {
    const Word u = random_word(rng, 0, 3);
    const Word v = random_word(rng, 1, 3);
    EXPECT_EQ(accepts_lasso_gen(gba, u, v),
              accepts_lasso(degeneralized, u, v))
        << "u=" << ab()->format(u) << " v=" << ab()->format(v)
        << " sets=" << num_sets;
  }
}

TEST_P(RandomBuchiProperty, EmptinessAlgorithmsAgree) {
  Rng rng(GetParam());
  const Buchi buchi = random_buchi(rng, 3 + rng.next_below(5));
  const bool scc = buchi_empty(buchi, EmptinessAlgorithm::kScc);
  const bool ndfs = buchi_empty(buchi, EmptinessAlgorithm::kNestedDfs);
  EXPECT_EQ(scc, ndfs);
  const auto lasso = find_accepting_lasso(buchi);
  EXPECT_EQ(lasso.has_value(), !scc);
  if (lasso) {
    EXPECT_TRUE(accepts_lasso(buchi, *lasso));
  }
}

TEST_P(RandomBuchiProperty, ProductMembershipIsConjunction) {
  Rng rng(GetParam() * 7919 + 3);
  const Buchi x = random_buchi(rng, 2 + rng.next_below(3));
  const Buchi y = random_buchi(rng, 2 + rng.next_below(3));
  const Buchi both = intersect_buchi(x, y);
  for (int i = 0; i < 20; ++i) {
    const Word u = random_word(rng, 0, 3);
    const Word v = random_word(rng, 1, 3);
    EXPECT_EQ(accepts_lasso(both, u, v),
              accepts_lasso(x, u, v) && accepts_lasso(y, u, v))
        << "u=" << ab()->format(u) << " v=" << ab()->format(v);
  }
}

TEST_P(RandomBuchiProperty, UnionMembershipIsDisjunction) {
  Rng rng(GetParam() * 104729 + 11);
  const Buchi x = random_buchi(rng, 2 + rng.next_below(3));
  const Buchi y = random_buchi(rng, 2 + rng.next_below(3));
  const Buchi either = union_buchi(x, y);
  for (int i = 0; i < 20; ++i) {
    const Word u = random_word(rng, 0, 3);
    const Word v = random_word(rng, 1, 3);
    EXPECT_EQ(accepts_lasso(either, u, v),
              accepts_lasso(x, u, v) || accepts_lasso(y, u, v));
  }
}

TEST_P(RandomBuchiProperty, TrimPreservesOmegaLanguage) {
  Rng rng(GetParam() + 42);
  const Buchi buchi = random_buchi(rng, 3 + rng.next_below(4));
  const Buchi trimmed = trim_omega(buchi);
  for (int i = 0; i < 20; ++i) {
    const Word u = random_word(rng, 0, 3);
    const Word v = random_word(rng, 1, 3);
    EXPECT_EQ(accepts_lasso(buchi, u, v), accepts_lasso(trimmed, u, v));
  }
}

TEST_P(RandomBuchiProperty, ComplementFlipsMembership) {
  Rng rng(GetParam() + 777);
  const Buchi buchi = random_buchi(rng, 2 + rng.next_below(2));
  const Buchi comp = complement_buchi(buchi);
  // Complement and original must not intersect...
  EXPECT_TRUE(omega_empty(intersect_buchi(buchi, comp)));
  // ...and together they must cover every sampled lasso.
  for (int i = 0; i < 15; ++i) {
    const Word u = random_word(rng, 0, 2);
    const Word v = random_word(rng, 1, 3);
    EXPECT_NE(accepts_lasso(buchi, u, v), accepts_lasso(comp, u, v))
        << "u=" << ab()->format(u) << " v=" << ab()->format(v);
  }
}

TEST_P(RandomBuchiProperty, LimitConstructionsAgree) {
  Rng rng(GetParam() + 2024);
  // Random prefix-closed language: random NFA, take its prefix language.
  const std::size_t n = 2 + rng.next_below(4);
  Nfa nfa(ab());
  for (std::size_t i = 0; i < n; ++i) nfa.add_state(true);
  for (State s = 0; s < n; ++s) {
    for (Symbol c = 0; c < 2; ++c) {
      if (rng.chance(2, 3)) {
        nfa.add_transition(s, c, static_cast<State>(rng.next_below(n)));
      }
    }
  }
  nfa.set_initial(0);
  const Nfa pre = prefix_language(nfa);
  if (pre.num_states() == 0) return;  // empty language, nothing to compare

  const Buchi direct = limit_of_prefix_closed(pre);
  const Buchi via_det = limit_via_determinization(pre);
  for (int i = 0; i < 25; ++i) {
    const Word u = random_word(rng, 0, 3);
    const Word v = random_word(rng, 1, 3);
    EXPECT_EQ(accepts_lasso(direct, u, v), accepts_lasso(via_det, u, v))
        << "u=" << ab()->format(u) << " v=" << ab()->format(v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBuchiProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rlv

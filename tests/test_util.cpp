// Unit tests for the utility layer: dynamic bitsets, Tarjan SCC,
// deterministic RNG, and hash helpers.

#include <gtest/gtest.h>

#include <set>

#include "rlv/util/bitset.hpp"
#include "rlv/util/hash.hpp"
#include "rlv/util/rng.hpp"
#include "rlv/util/scc.hpp"

namespace rlv {
namespace {

TEST(DynBitset, SetResetTest) {
  DynBitset b(130);  // spans three words
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
  b.assign(5, true);
  EXPECT_TRUE(b.test(5));
  b.assign(5, false);
  EXPECT_FALSE(b.test(5));
  b.clear();
  EXPECT_TRUE(b.none());
}

TEST(DynBitset, BooleanOps) {
  DynBitset a(100);
  DynBitset b(100);
  a.set(3);
  a.set(70);
  b.set(70);
  b.set(99);

  DynBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);

  DynBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(70));

  DynBitset d = a;
  d -= b;
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(3));

  EXPECT_TRUE(i.is_subset_of(a));
  EXPECT_TRUE(i.is_subset_of(b));
  EXPECT_FALSE(a.is_subset_of(b));
  EXPECT_TRUE(a.intersects(b));
  DynBitset empty(100);
  EXPECT_FALSE(empty.intersects(a));
  EXPECT_TRUE(empty.is_subset_of(a));
}

TEST(DynBitset, ForEachAndFirst) {
  DynBitset b(200);
  const std::set<std::size_t> expected = {0, 63, 64, 127, 128, 199};
  for (const std::size_t i : expected) b.set(i);
  std::set<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.insert(i); });
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(b.first(), 0u);
  b.reset(0);
  EXPECT_EQ(b.first(), 63u);
  DynBitset empty(10);
  EXPECT_EQ(empty.first(), 10u);
}

TEST(DynBitset, EqualityAndHash) {
  DynBitset a(64);
  DynBitset b(64);
  EXPECT_EQ(a, b);
  a.set(13);
  EXPECT_NE(a.hash(), b.hash());  // overwhelmingly likely
  b.set(13);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  // Different sizes are never equal.
  EXPECT_FALSE(DynBitset(3) == DynBitset(4));
}

TEST(Scc, LinearChain) {
  // 0 -> 1 -> 2: three trivial components, reverse topological ids.
  const std::vector<std::vector<std::uint32_t>> g = {{1}, {2}, {}};
  const SccResult r = tarjan_scc(g);
  EXPECT_EQ(r.count, 3u);
  EXPECT_FALSE(r.nontrivial[r.component[0]]);
  // Reverse topological order: a component reaches only lower ids.
  EXPECT_GT(r.component[0], r.component[1]);
  EXPECT_GT(r.component[1], r.component[2]);
}

TEST(Scc, CycleAndSelfLoop) {
  // 0 <-> 1 form one SCC; 2 has a self-loop; 3 is trivial.
  const std::vector<std::vector<std::uint32_t>> g = {{1}, {0, 2}, {2}, {}};
  const SccResult r = tarjan_scc(g);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_NE(r.component[0], r.component[2]);
  EXPECT_TRUE(r.nontrivial[r.component[0]]);
  EXPECT_TRUE(r.nontrivial[r.component[2]]);  // self-loop counts
  EXPECT_FALSE(r.nontrivial[r.component[3]]);
}

TEST(Scc, DisconnectedAndEmpty) {
  EXPECT_EQ(tarjan_scc({}).count, 0u);
  const std::vector<std::vector<std::uint32_t>> g = {{}, {}};
  EXPECT_EQ(tarjan_scc(g).count, 2u);
}

TEST(Scc, LargeCycleIterative) {
  // Deep structure that would overflow a recursive implementation.
  const std::size_t n = 200000;
  std::vector<std::vector<std::uint32_t>> g(n);
  for (std::size_t i = 0; i < n; ++i) {
    g[i].push_back(static_cast<std::uint32_t>((i + 1) % n));
  }
  const SccResult r = tarjan_scc(g);
  EXPECT_EQ(r.count, 1u);
  EXPECT_TRUE(r.nontrivial[0]);
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  Rng c(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(c.next_below(17), 17u);
    const double d = c.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  // chance(1, 1) is always true; chance(0, n) always false.
  EXPECT_TRUE(c.chance(1, 1));
  EXPECT_FALSE(c.chance(0, 5));
}

TEST(Rng, RoughUniformity) {
  Rng rng(99);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[rng.next_below(10)];
  }
  for (const int count : buckets) {
    EXPECT_GT(count, kDraws / 10 - kDraws / 50);
    EXPECT_LT(count, kDraws / 10 + kDraws / 50);
  }
}

TEST(Hash, CombineSpreadsPairs) {
  PairHash h;
  std::set<std::size_t> values;
  for (int a = 0; a < 30; ++a) {
    for (int b = 0; b < 30; ++b) {
      values.insert(h(std::make_pair(a, b)));
    }
  }
  EXPECT_EQ(values.size(), 900u);  // no collisions on this tiny grid
}

}  // namespace
}  // namespace rlv

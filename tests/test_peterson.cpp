// Peterson's mutual exclusion through the library: the guarded-command
// substrate, action-level mutual exclusion (a genuine safety property,
// satisfied outright), and starvation freedom (a liveness property that is
// false without fairness, relative liveness always, and true under strong
// fairness — the full Section-1 story on a classical algorithm).

#include <gtest/gtest.h>

#include "rlv/core/preservation.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/ctl/ctl.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/gen/guarded.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/eval.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"

namespace rlv {
namespace {

TEST(Guarded, BuildsSmallCounter) {
  GuardedSystem gs;
  const auto x = gs.add_variable("x", 3, 0);
  gs.add_rule(
      "inc", [x](const Valuation& v) { return v[x] < 2; },
      [x](Valuation& v) { ++v[x]; });
  gs.add_rule(
      "reset", [x](const Valuation& v) { return v[x] == 2; },
      [x](Valuation& v) { v[x] = 0; });
  const auto built = gs.build();
  EXPECT_TRUE(built.complete);
  EXPECT_EQ(built.system.num_states(), 3u);
  EXPECT_EQ(built.valuations[0][x], 0);
  // inc inc reset inc is a valid behavior.
  const auto& sigma = built.system.alphabet();
  EXPECT_TRUE(built.system.accepts(
      {sigma->id("inc"), sigma->id("inc"), sigma->id("reset"),
       sigma->id("inc")}));
  EXPECT_FALSE(built.system.accepts(
      {sigma->id("inc"), sigma->id("inc"), sigma->id("inc")}));
}

TEST(Guarded, StateBudget) {
  GuardedSystem gs;
  const auto x = gs.add_variable("x", 100, 0);
  gs.add_rule(
      "inc", [x](const Valuation& v) { return v[x] < 99; },
      [x](Valuation& v) { ++v[x]; });
  const auto built = gs.build(/*max_states=*/10);
  EXPECT_FALSE(built.complete);
  EXPECT_EQ(built.system.num_states(), 10u);
}

TEST(Peterson, StateSpace) {
  const Nfa system = peterson_system();
  EXPECT_GT(system.num_states(), 10u);
  EXPECT_LT(system.num_states(), 60u);
  EXPECT_TRUE(is_prefix_closed(system));
  EXPECT_FALSE(has_maximal_words(trim(system)));
}

TEST(Peterson, MutualExclusionHoldsOutright) {
  // Action-level mutual exclusion: after enter_0, process 1 cannot enter
  // before exit_0 (weak until: no obligation that exit_0 ever happens).
  const Nfa system = peterson_system();
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula mutex0 = parse_ltl(
      "G(enter_0 -> X((!enter_1 U exit_0) || G !enter_1))");
  const Formula mutex1 = parse_ltl(
      "G(enter_1 -> X((!enter_0 U exit_1) || G !enter_0))");
  EXPECT_TRUE(satisfies(behaviors, mutex0, lambda).holds);
  EXPECT_TRUE(satisfies(behaviors, mutex1, lambda).holds);
}

TEST(Peterson, StarvationFreedomNeedsFairness) {
  const Nfa system = peterson_system();
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula starvation_free = parse_ltl("G(req_0 -> F enter_0)");

  // Without fairness the scheduler can simply never run process 0 again.
  EXPECT_FALSE(satisfies(behaviors, starvation_free, lambda).holds);
  // But no prefix is doomed: relative liveness.
  EXPECT_TRUE(relative_liveness(behaviors, starvation_free, lambda).holds);
  // And strong fairness realizes it — Peterson's guarantee.
  const auto fair = check_fair_satisfaction(behaviors, starvation_free,
                                            lambda);
  EXPECT_TRUE(fair.all_fair_runs_satisfy);
}

TEST(Peterson, EntryAlwaysReachable) {
  // Branching view: from every reachable state, each process can still
  // eventually enter (no deadlock or lockout configuration exists).
  const Nfa system = peterson_system();
  EXPECT_TRUE(ctl_holds(system, parse_ctl("AG EF can(enter_0)")));
  EXPECT_TRUE(ctl_holds(system, parse_ctl("AG EF can(enter_1)")));
  EXPECT_TRUE(ctl_holds(system, parse_ctl("AG !deadlock")));
}

TEST(Peterson, BoundedOvertakingFromTheDoorway) {
  // Peterson gives 1-bounded overtaking measured from the end of the
  // doorway (flag set, turn surrendered — the turn_0 action): process 1
  // then enters at most once before process 0 does, and process 0's entry
  // is in fact inevitable (blocked-out process 1 leaves enter_0 as the
  // only exit). Encoded with nested untils, the property holds *outright*.
  const Nfa system = peterson_system();
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula bounded = parse_ltl(
      "G(turn_0 -> ((!enter_1 && !enter_0) U (enter_0 || "
      "(enter_1 && X((!enter_1 && !enter_0) U enter_0)))))");
  EXPECT_TRUE(satisfies(behaviors, bounded, lambda).holds);

  // Anchored at req_0 instead — before the flag is raised — overtaking is
  // unbounded: process 1 can enter twice while process 0 still sits in the
  // doorway, which irrevocably violates the formula. Not even relative
  // liveness, and the checker produces the doomed prefix.
  const Formula from_req = parse_ltl(
      "G(req_0 -> ((!enter_1 && !enter_0) U (enter_0 || "
      "(enter_1 && X((!enter_1 && !enter_0) U enter_0)))))");
  const auto rl = relative_liveness(behaviors, from_req, lambda);
  EXPECT_FALSE(rl.holds);
  ASSERT_TRUE(rl.violating_prefix.has_value());
  EXPECT_TRUE(system.accepts(*rl.violating_prefix));
}

}  // namespace
}  // namespace rlv

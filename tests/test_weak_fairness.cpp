// Tests for weak (justice) vs strong transition fairness — the fairness-zoo
// distinction the paper's introduction uses to motivate relative liveness.
// The classical separating example: a transition that is enabled infinitely
// often but never *continuously* is forced by strong fairness only.

#include <gtest/gtest.h>

#include "rlv/fair/fair_check.hpp"
#include "rlv/fair/fairness.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

/// The separating system: s0 -a-> s1, s1 -b-> s0 (a ping-pong loop), and an
/// exit s0 -c-> s2, s2 -d-> s2. The exit is enabled infinitely often on the
/// ping-pong but never continuously (s1 interrupts).
Nfa ping_pong_exit() {
  auto sigma = Alphabet::make({"a", "b", "c", "d"});
  Nfa nfa(sigma);
  const State s0 = nfa.add_state(true);
  const State s1 = nfa.add_state(true);
  const State s2 = nfa.add_state(true);
  nfa.add_transition(s0, sigma->id("a"), s1);
  nfa.add_transition(s1, sigma->id("b"), s0);
  nfa.add_transition(s0, sigma->id("c"), s2);
  nfa.add_transition(s2, sigma->id("d"), s2);
  nfa.set_initial(s0);
  return nfa;
}

TEST(WeakFairness, SeparatingExample) {
  const Nfa system_graph = ping_pong_exit();
  const Buchi system = limit_of_prefix_closed(system_graph);
  const Labeling lambda = Labeling::canonical(system_graph.alphabet());
  const Formula exit_taken = parse_ltl("F c");

  // Strong fairness forces the exit: at s0 infinitely often means c is
  // enabled infinitely often.
  const auto strong = check_fair_satisfaction(
      system, exit_taken, lambda, FairnessKind::kStrongTransition);
  EXPECT_TRUE(strong.all_fair_runs_satisfy);

  // Weak fairness does not: (ab)^ω never continuously enables c.
  const auto weak = check_fair_satisfaction(system, exit_taken, lambda,
                                            FairnessKind::kWeakTransition);
  EXPECT_FALSE(weak.all_fair_runs_satisfy);
  ASSERT_TRUE(weak.counterexample.has_value());
  // The weakly fair counterexample must be the ping-pong (c never taken).
  const Symbol c = system_graph.alphabet()->id("c");
  for (const Symbol x : weak.counterexample->period) EXPECT_NE(x, c);
  EXPECT_TRUE(accepts_lasso(system, *weak.counterexample));
}

TEST(WeakFairness, ContinuouslyEnabledIsForced) {
  // One state, two self-loops: both loops are continuously enabled, so even
  // weak fairness forces both.
  const Nfa ab = section5_ab_system();
  const Buchi system = limit_of_prefix_closed(ab);
  const Labeling lambda = Labeling::canonical(ab.alphabet());
  for (const char* f : {"G F a", "G F b"}) {
    EXPECT_TRUE(check_fair_satisfaction(system, parse_ltl(f), lambda,
                                        FairnessKind::kWeakTransition)
                    .all_fair_runs_satisfy)
        << f;
  }
}

TEST(WeakFairness, StreettPairCounts) {
  const Nfa system_graph = ping_pong_exit();
  const StreettAutomaton strong = make_fairness_streett(
      system_graph, FairnessKind::kStrongTransition);
  const StreettAutomaton weak =
      make_fairness_streett(system_graph, FairnessKind::kWeakTransition);
  EXPECT_EQ(strong.pairs().size(), system_graph.num_transitions());
  EXPECT_EQ(weak.pairs().size(), system_graph.num_transitions());
  // The weak pairs have the all-edges antecedent.
  for (const StreettPair& pair : weak.pairs()) {
    EXPECT_EQ(pair.antecedent.count(), weak.num_edges());
  }
}

class WeakFairnessProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeakFairnessProperty, WeakVerdictImpliesStrongVerdict) {
  // Strongly fair runs are a subset of weakly fair runs, so "all weakly
  // fair runs satisfy f" implies "all strongly fair runs satisfy f".
  Rng rng(GetParam() * 48611 + 29);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(3), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 3);

  const bool weak = check_fair_satisfaction(system, f, lambda,
                                            FairnessKind::kWeakTransition)
                        .all_fair_runs_satisfy;
  const bool strong = check_fair_satisfaction(
                          system, f, lambda, FairnessKind::kStrongTransition)
                          .all_fair_runs_satisfy;
  if (weak) {
    EXPECT_TRUE(strong) << f.to_string();
  }
}

TEST_P(WeakFairnessProperty, CounterexamplesAreGenuineBehaviors) {
  Rng rng(GetParam() * 96293 + 83);
  auto sigma = random_alphabet(2);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(3), sigma);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f =
      random_formula(rng, {sigma->name(0), sigma->name(1)}, 3);

  for (const FairnessKind kind :
       {FairnessKind::kStrongTransition, FairnessKind::kWeakTransition}) {
    const auto res = check_fair_satisfaction(system, f, lambda, kind);
    if (res.counterexample) {
      EXPECT_TRUE(accepts_lasso(system, *res.counterexample))
          << f.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeakFairnessProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

// ---------------------------------------------------------------------------
// Process fairness (coarse groups).

TEST(ProcessFairness, PerProcessGroupsForceTheExit) {
  // Processes: P1 = {a, b} (ping-pong), P2 = {c, d} (exit). P2 is enabled
  // infinitely often on the ping-pong, so process fairness forces it to
  // act: every fair run ends in the d-loop.
  const Nfa system = ping_pong_exit();
  StreettAutomaton streett(system);
  // Build explicit groups: P1 = a ∪ b edges, P2 = c ∪ d edges.
  const auto by_letter = group_edges_by_prefix(streett, {"a", "b", "c", "d"});
  DynBitset p1 = by_letter[0];
  p1 |= by_letter[1];
  DynBitset p2 = by_letter[2];
  p2 |= by_letter[3];
  add_process_fairness_pairs(streett, {p1, p2});

  const auto lasso = find_fair_lasso(streett);
  ASSERT_TRUE(lasso.has_value());
  const Symbol d = system.alphabet()->id("d");
  for (const Symbol s : lasso->period) EXPECT_EQ(s, d);
}

TEST(ProcessFairness, OneCoarseGroupAllowsThePingPong) {
  // With every edge in a single process, the ping-pong is fair (the process
  // acts at every step): process fairness is strictly coarser than strong
  // transition fairness, which would force the exit.
  const Nfa system = ping_pong_exit();
  StreettAutomaton streett(system);
  DynBitset all = streett.edge_set();
  for (EdgeId e = 0; e < streett.num_edges(); ++e) all.set(e);
  add_process_fairness_pairs(streett, {all});

  const auto lasso = find_fair_lasso(streett);
  ASSERT_TRUE(lasso.has_value());
  // The witness search finds the first fair SCC — the ping-pong — whose
  // period avoids c entirely.
  const Symbol c = system.alphabet()->id("c");
  for (const Symbol s : lasso->period) EXPECT_NE(s, c);
}

TEST(ProcessFairness, GroupingByPrefix) {
  const Nfa system = ping_pong_exit();
  const StreettAutomaton streett(system);
  const auto groups = group_edges_by_prefix(streett, {"a", "c", "nosuch"});
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].count(), 1u);
  EXPECT_EQ(groups[1].count(), 1u);
  EXPECT_TRUE(groups[2].none());
}

}  // namespace
}  // namespace rlv

// End-to-end integration: for each workload family (Petri-net server,
// synchronized components, token ring, dining philosophers, telephone-style
// systems) run the complete verification workflow — reachability or
// composition, relative liveness/safety, Theorem 4.7 consistency, fair
// synthesis, abstraction with simplicity certification — and check that
// every independent route produces consistent answers.

#include <gtest/gtest.h>

#include "rlv/comp/abstraction.hpp"
#include "rlv/comp/sync.hpp"
#include "rlv/core/fair_synthesis.hpp"
#include "rlv/core/preservation.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/patterns.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/simplify.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/reduce.hpp"
#include "rlv/petri/reachability.hpp"

namespace rlv {
namespace {

/// The consistency bundle every (system, property) pair must satisfy.
void check_consistency(const Nfa& system_graph, Formula f) {
  const Buchi behaviors = limit_of_prefix_closed(system_graph);
  const Labeling lambda = Labeling::canonical(system_graph.alphabet());

  const bool sat = satisfies(behaviors, f, lambda).holds;
  const bool rl = relative_liveness(behaviors, f, lambda).holds;
  const bool rs = relative_safety(behaviors, f, lambda).holds;
  // Theorem 4.7.
  EXPECT_EQ(sat, rl && rs) << f.to_string();

  // Both inclusion engines agree.
  EXPECT_EQ(rl, relative_liveness(behaviors, f, lambda,
                                  InclusionAlgorithm::kSubset)
                    .holds)
      << f.to_string();

  // Simplification and reduction change nothing semantically.
  const Buchi property = reduce_buchi(translate_ltl(simplify_ltl(f), lambda));
  EXPECT_EQ(rl, relative_liveness(behaviors, property).holds)
      << f.to_string();

  // Theorem 5.1 whenever applicable.
  if (rl) {
    const FairImplementation impl =
        synthesize_fair_implementation(behaviors, f, lambda);
    EXPECT_TRUE(same_limit_closed_language(behaviors, impl.system))
        << f.to_string();
    EXPECT_TRUE(check_fair_satisfaction(impl.system, f, lambda)
                    .all_fair_runs_satisfy)
        << f.to_string();
  }
}

TEST(Integration, ResourceServerFamily) {
  for (std::size_t n = 1; n <= 2; ++n) {
    const ReachabilityGraph graph =
        build_reachability_graph(resource_server_net(n));
    check_consistency(graph.system, parse_ltl("G F result_0"));
    check_consistency(graph.system, parse_ltl("G !yes_0"));
    check_consistency(graph.system,
                      parse_ltl("G(request_0 -> F (result_0 || reject_0))"));
  }
}

TEST(Integration, TokenRing) {
  for (const std::size_t n : {3u, 6u}) {
    const Nfa ring = token_ring(n);
    check_consistency(ring, parse_ltl("G F work_0"));
    check_consistency(ring, parse_ltl("G F pass_0"));
    check_consistency(ring, parse_ltl("F G work_0"));
  }
}

TEST(Integration, PhilosophersWorkflow) {
  const ReachabilityGraph graph =
      build_reachability_graph(dining_philosophers_net(2));
  check_consistency(graph.system, patterns::infinitely_often("eat_0"));
  check_consistency(graph.system, patterns::response("hungry_0", "eat_0"));
}

TEST(Integration, ComponentsEqualPetriEverywhere) {
  // The component-based and the Petri-net-based constructions of the same
  // system agree, and so do the abstraction routes (on-the-fly vs
  // sequential vs the preservation pipeline's verdict).
  for (std::size_t n = 1; n <= 3; ++n) {
    const auto components = resource_server_components(n);
    const Nfa product = sync_product(components);
    const ReachabilityGraph graph =
        build_reachability_graph(resource_server_net(n));
    EXPECT_TRUE(nfa_equivalent(
        product, remap_alphabet(graph.system, product.alphabet())));

    const Homomorphism h =
        resource_server_abstraction(product.alphabet());
    const OnTheFlyResult otf = on_the_fly_abstraction(components, h);
    const Nfa sequential = reduced_image_nfa(product, h);
    EXPECT_TRUE(nfa_equivalent(otf.abstract.to_nfa(), sequential));

    const Formula eta = to_pnf(parse_ltl("G F result_0"));
    const AbstractionVerdict verdict =
        verify_via_abstraction(product, h, eta);
    ASSERT_TRUE(verdict.concrete_holds.has_value()) << "n=" << n;
    EXPECT_EQ(*verdict.concrete_holds,
              concrete_relative_liveness(product, h, eta))
        << "n=" << n;
  }
}

TEST(Integration, FeatureInteractionSystemsAreWellFormed) {
  // The telephone example's systems satisfy the structural assumptions the
  // pipeline needs: prefix-closed, no maximal words, simple abstraction.
  // (Mirrors examples/feature_interaction.cpp as a regression test.)
  auto sigma =
      Alphabet::make({"dial", "busy", "connect", "forward", "voicemail"});
  Nfa phone(sigma);
  const State idle = phone.add_state(true);
  const State ringing = phone.add_state(true);
  const State decision = phone.add_state(true);
  phone.add_transition(idle, sigma->id("dial"), ringing);
  phone.add_transition(ringing, sigma->id("connect"), idle);
  phone.add_transition(ringing, sigma->id("busy"), decision);
  phone.add_transition(decision, sigma->id("forward"), idle);
  phone.add_transition(decision, sigma->id("voicemail"), idle);
  phone.set_initial(idle);

  EXPECT_TRUE(is_prefix_closed(phone));
  EXPECT_FALSE(has_maximal_words(phone));
  const Homomorphism h = Homomorphism::projection(
      sigma, {"dial", "connect", "forward", "voicemail"});
  EXPECT_TRUE(check_simplicity(phone, h).simple);
  check_consistency(phone, parse_ltl("G(dial -> F(connect || forward || "
                                     "voicemail))"));
}

}  // namespace
}  // namespace rlv

// Wide randomized cross-validation on a 3-letter alphabet — larger letter
// counts exercise code paths (letter-compatibility in the tableau, subset
// constructions, homomorphism merging) that the 2-letter suites cannot.
// Every check compares two independent implementations.

#include <gtest/gtest.h>

#include "rlv/core/relative.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/eval.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/simplify.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/complement.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/omega/reduce.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

class Cross3 : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Cross3() : sigma_(random_alphabet(3)) {}

  AlphabetRef sigma_;
};

TEST_P(Cross3, TranslationAgreesWithEvaluator) {
  Rng rng(GetParam() * 40009 + 1);
  const std::vector<std::string> atoms = {sigma_->name(0), sigma_->name(1),
                                          sigma_->name(2)};
  const Formula f = random_formula(rng, atoms, 4);
  const Labeling lambda = Labeling::canonical(sigma_);
  const Buchi automaton = translate_ltl(f, lambda);
  const Buchi reduced = reduce_buchi(automaton);
  const Formula simplified = simplify_ltl(f);
  for (int i = 0; i < 20; ++i) {
    const auto [u, v] = random_lasso(rng, sigma_, 3, 4);
    const bool truth = eval_ltl(f, u, v, lambda);
    EXPECT_EQ(truth, accepts_lasso(automaton, u, v)) << f.to_string();
    EXPECT_EQ(truth, accepts_lasso(reduced, u, v)) << f.to_string();
    EXPECT_EQ(truth, eval_ltl(simplified, u, v, lambda)) << f.to_string();
  }
}

TEST_P(Cross3, ComplementationOnThreeLetters) {
  Rng rng(GetParam() * 29989 + 3);
  const Buchi buchi = random_buchi(rng, 2 + rng.next_below(2), sigma_);
  const Buchi comp = complement_buchi(buchi);
  EXPECT_TRUE(omega_empty(intersect_buchi(buchi, comp)));
  for (int i = 0; i < 10; ++i) {
    const auto [u, v] = random_lasso(rng, sigma_, 2, 3);
    EXPECT_NE(accepts_lasso(buchi, u, v), accepts_lasso(comp, u, v));
  }
}

TEST_P(Cross3, MinimizationAndInclusionOnThreeLetters) {
  Rng rng(GetParam() * 15671 + 9);
  const Nfa x = random_nfa(rng, 3 + rng.next_below(3), sigma_);
  const Nfa y = random_nfa(rng, 3 + rng.next_below(3), sigma_);
  const Dfa mx = minimize(determinize(x));
  EXPECT_TRUE(nfa_equivalent(x, mx.to_nfa()));
  EXPECT_EQ(is_included(x, y, InclusionAlgorithm::kSubset),
            is_included(x, y, InclusionAlgorithm::kAntichain));
}

TEST_P(Cross3, RelativeChecksTheoremFourSeven) {
  Rng rng(GetParam() * 104651 + 21);
  const Nfa ts = random_transition_system(rng, 2 + rng.next_below(3), sigma_);
  if (ts.num_states() == 0) return;
  const Buchi system = limit_of_prefix_closed(ts);
  const Labeling lambda = Labeling::canonical(sigma_);
  const Formula f = random_formula(
      rng, {sigma_->name(0), sigma_->name(1), sigma_->name(2)}, 2);
  EXPECT_EQ(satisfies(system, f, lambda).holds,
            relative_liveness(system, f, lambda).holds &&
                relative_safety(system, f, lambda).holds)
      << f.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Cross3,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace rlv

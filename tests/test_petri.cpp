// Tests for the Petri-net substrate (rlv_petri): firing rule, read arcs,
// reachability graphs (Figure 1 → Figure 2), deadlock detection, the
// boundedness guard, and the scalable families' state-space sizes.

#include <gtest/gtest.h>

#include "rlv/gen/families.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/petri/net.hpp"
#include "rlv/petri/reachability.hpp"

namespace rlv {
namespace {

TEST(PetriNet, FiringRule) {
  PetriNet net;
  const PlaceId p = net.add_place("p", 2);
  const PlaceId q = net.add_place("q", 0);
  const TransId t = net.add_transition("t");
  net.add_input(t, p, 2);
  net.add_output(t, q, 1);

  const Marking m0 = net.initial_marking();
  EXPECT_TRUE(net.enabled(t, m0));
  const Marking m1 = net.fire(t, m0);
  EXPECT_EQ(m1[p], 0u);
  EXPECT_EQ(m1[q], 1u);
  EXPECT_FALSE(net.enabled(t, m1));
  EXPECT_TRUE(net.is_deadlock(m1));
}

TEST(PetriNet, ReadArcDoesNotConsume) {
  PetriNet net;
  const PlaceId flag = net.add_place("flag", 1);
  const PlaceId work = net.add_place("work", 1);
  const TransId t = net.add_transition("t");
  net.add_read(t, flag);
  net.add_input(t, work);

  const Marking m1 = net.fire(t, net.initial_marking());
  EXPECT_EQ(m1[flag], 1u);
  EXPECT_EQ(m1[work], 0u);
}

TEST(Reachability, Figure1GraphMatchesFigure2) {
  const ReachabilityGraph graph = build_reachability_graph(figure1_net());
  EXPECT_TRUE(graph.complete);
  EXPECT_EQ(graph.system.num_states(), 8u);
  EXPECT_TRUE(graph.deadlocks.empty());

  const Nfa fig2 = figure2_system();
  const Nfa remapped = remap_alphabet(graph.system, fig2.alphabet());
  EXPECT_TRUE(nfa_equivalent(remapped, fig2));
}

TEST(Reachability, BoundedGuardTriggers) {
  // Unbounded net: a transition that only produces.
  PetriNet net;
  const PlaceId p = net.add_place("p", 1);
  const TransId t = net.add_transition("grow");
  net.add_read(t, p);
  net.add_output(t, p);
  ReachabilityOptions options;
  options.max_states = 16;
  const ReachabilityGraph graph = build_reachability_graph(net, options);
  EXPECT_FALSE(graph.complete);
  EXPECT_EQ(graph.system.num_states(), 16u);
}

TEST(Reachability, ProducerConsumerStateCount) {
  // Buffer occupancy 0..capacity → capacity+1 markings.
  for (std::size_t cap = 1; cap <= 5; ++cap) {
    const ReachabilityGraph graph =
        build_reachability_graph(producer_consumer_net(cap));
    EXPECT_TRUE(graph.complete);
    EXPECT_EQ(graph.system.num_states(), cap + 1);
    EXPECT_TRUE(graph.deadlocks.empty());
  }
}

TEST(Reachability, ResourceServerScaling) {
  // 2 resource states × 4 phases per client.
  for (std::size_t n = 1; n <= 3; ++n) {
    const ReachabilityGraph graph =
        build_reachability_graph(resource_server_net(n));
    EXPECT_TRUE(graph.complete);
    std::size_t expected = 2;
    for (std::size_t i = 0; i < n; ++i) expected *= 4;
    EXPECT_EQ(graph.system.num_states(), expected) << "n=" << n;
    EXPECT_TRUE(graph.deadlocks.empty());
  }
}

TEST(Reachability, GraphIsPrefixClosedTransitionSystem) {
  const ReachabilityGraph graph = build_reachability_graph(figure1_net());
  for (State s = 0; s < graph.system.num_states(); ++s) {
    EXPECT_TRUE(graph.system.is_accepting(s));
  }
  EXPECT_TRUE(is_prefix_closed(graph.system));
}

TEST(Reachability, DeadlockDetection) {
  PetriNet net;
  const PlaceId p = net.add_place("p", 1);
  const PlaceId q = net.add_place("q", 0);
  const TransId t = net.add_transition("t");
  net.add_input(t, p);
  net.add_output(t, q);
  const ReachabilityGraph graph = build_reachability_graph(net);
  EXPECT_EQ(graph.system.num_states(), 2u);
  ASSERT_EQ(graph.deadlocks.size(), 1u);
  EXPECT_EQ(graph.markings[graph.deadlocks[0]][q], 1u);
}

}  // namespace
}  // namespace rlv

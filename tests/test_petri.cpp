// Tests for the Petri-net substrate (rlv_petri): firing rule, read arcs,
// reachability graphs (Figure 1 → Figure 2), deadlock detection, the
// boundedness guard, the textual net format, the budget-governed interned
// unfolder, and the scenario families' state spaces.

#include <gtest/gtest.h>

#include "rlv/gen/families.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/petri/format.hpp"
#include "rlv/petri/net.hpp"
#include "rlv/petri/reachability.hpp"
#include "rlv/petri/scenario.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {
namespace {

TEST(PetriNet, FiringRule) {
  PetriNet net;
  const PlaceId p = net.add_place("p", 2);
  const PlaceId q = net.add_place("q", 0);
  const TransId t = net.add_transition("t");
  net.add_input(t, p, 2);
  net.add_output(t, q, 1);

  const Marking m0 = net.initial_marking();
  EXPECT_TRUE(net.enabled(t, m0));
  const Marking m1 = net.fire(t, m0);
  EXPECT_EQ(m1[p], 0u);
  EXPECT_EQ(m1[q], 1u);
  EXPECT_FALSE(net.enabled(t, m1));
  EXPECT_TRUE(net.is_deadlock(m1));
}

TEST(PetriNet, ReadArcDoesNotConsume) {
  PetriNet net;
  const PlaceId flag = net.add_place("flag", 1);
  const PlaceId work = net.add_place("work", 1);
  const TransId t = net.add_transition("t");
  net.add_read(t, flag);
  net.add_input(t, work);

  const Marking m1 = net.fire(t, net.initial_marking());
  EXPECT_EQ(m1[flag], 1u);
  EXPECT_EQ(m1[work], 0u);
}

TEST(Reachability, Figure1GraphMatchesFigure2) {
  const ReachabilityGraph graph = build_reachability_graph(figure1_net());
  EXPECT_TRUE(graph.complete);
  EXPECT_EQ(graph.system.num_states(), 8u);
  EXPECT_TRUE(graph.deadlocks.empty());

  const Nfa fig2 = figure2_system();
  const Nfa remapped = remap_alphabet(graph.system, fig2.alphabet());
  EXPECT_TRUE(nfa_equivalent(remapped, fig2));
}

TEST(Reachability, BoundedGuardTriggers) {
  // Unbounded net: a transition that only produces.
  PetriNet net;
  const PlaceId p = net.add_place("p", 1);
  const TransId t = net.add_transition("grow");
  net.add_read(t, p);
  net.add_output(t, p);
  ReachabilityOptions options;
  options.max_states = 16;
  const ReachabilityGraph graph = build_reachability_graph(net, options);
  EXPECT_FALSE(graph.complete);
  EXPECT_EQ(graph.system.num_states(), 16u);
}

TEST(Reachability, ProducerConsumerStateCount) {
  // Buffer occupancy 0..capacity → capacity+1 markings.
  for (std::size_t cap = 1; cap <= 5; ++cap) {
    const ReachabilityGraph graph =
        build_reachability_graph(producer_consumer_net(cap));
    EXPECT_TRUE(graph.complete);
    EXPECT_EQ(graph.system.num_states(), cap + 1);
    EXPECT_TRUE(graph.deadlocks.empty());
  }
}

TEST(Reachability, ResourceServerScaling) {
  // 2 resource states × 4 phases per client.
  for (std::size_t n = 1; n <= 3; ++n) {
    const ReachabilityGraph graph =
        build_reachability_graph(resource_server_net(n));
    EXPECT_TRUE(graph.complete);
    std::size_t expected = 2;
    for (std::size_t i = 0; i < n; ++i) expected *= 4;
    EXPECT_EQ(graph.system.num_states(), expected) << "n=" << n;
    EXPECT_TRUE(graph.deadlocks.empty());
  }
}

TEST(Reachability, GraphIsPrefixClosedTransitionSystem) {
  const ReachabilityGraph graph = build_reachability_graph(figure1_net());
  for (State s = 0; s < graph.system.num_states(); ++s) {
    EXPECT_TRUE(graph.system.is_accepting(s));
  }
  EXPECT_TRUE(is_prefix_closed(graph.system));
}

TEST(Reachability, DeadlockDetection) {
  PetriNet net;
  const PlaceId p = net.add_place("p", 1);
  const PlaceId q = net.add_place("q", 0);
  const TransId t = net.add_transition("t");
  net.add_input(t, p);
  net.add_output(t, q);
  const ReachabilityGraph graph = build_reachability_graph(net);
  EXPECT_EQ(graph.system.num_states(), 2u);
  ASSERT_EQ(graph.deadlocks.size(), 1u);
  EXPECT_EQ(graph.marking(graph.deadlocks[0])[q], 1u);
}

TEST(Reachability, OneSafeNetsStayInBitsetStorage) {
  const ReachabilityGraph graph = build_reachability_graph(figure1_net());
  EXPECT_TRUE(graph.one_safe);
  EXPECT_FALSE(graph.marking_bits.empty());
  EXPECT_TRUE(graph.marking_counts.empty());
  for (State s = 0; s < graph.system.num_states(); ++s) {
    const Marking m = graph.marking(s);
    for (PlaceId p = 0; p < graph.num_places; ++p) {
      EXPECT_LE(m[p], 1u);
      EXPECT_EQ(m[p], graph.tokens(s, p));
    }
  }
}

TEST(Reachability, NonSafeNetFallsBackToCountRows) {
  // producer_consumer_net(3) accumulates up to 3 tokens on the buffer
  // place: the unfolder must convert its interned store to count rows
  // mid-exploration (same dense ids, no restart) and keep going.
  const ReachabilityGraph graph =
      build_reachability_graph(producer_consumer_net(3));
  EXPECT_TRUE(graph.complete);
  EXPECT_FALSE(graph.one_safe);
  EXPECT_TRUE(graph.marking_bits.empty());
  EXPECT_FALSE(graph.marking_counts.empty());
  std::uint32_t max_tokens = 0;
  for (State s = 0; s < graph.system.num_states(); ++s) {
    for (PlaceId p = 0; p < graph.num_places; ++p) {
      max_tokens = std::max(max_tokens, graph.tokens(s, p));
    }
  }
  EXPECT_EQ(max_tokens, 3u);
}

TEST(Reachability, BudgetChargesPetriUnfoldStage) {
  Budget budget;
  const ReachabilityGraph graph =
      build_reachability_graph(figure1_net(), {}, &budget);
  EXPECT_EQ(graph.system.num_states(), 8u);
  EXPECT_EQ(budget.profile()[Stage::kPetriUnfold].states_built, 8u);
}

TEST(Reachability, BudgetExhaustionReportsPetriUnfold) {
  Budget budget;
  budget.set_max_states(4);
  try {
    (void)build_reachability_graph(figure1_net(), {}, &budget);
    FAIL() << "expected ResourceExhausted";
  } catch (const ResourceExhausted& e) {
    EXPECT_EQ(e.stage(), Stage::kPetriUnfold);
    EXPECT_EQ(e.kind(), ResourceExhausted::Kind::kStates);
  }
}

// ---------------------------------------------------------------------------
// Textual net format.

TEST(NetFormat, SerializeParseRoundTrip) {
  const petri::NetFile phil = petri::philosophers_net(3);
  const petri::NetFile reparsed =
      petri::parse_net(petri::serialize_net(phil));
  EXPECT_EQ(reparsed.name, phil.name);
  EXPECT_EQ(reparsed.hidden, phil.hidden);
  const ReachabilityGraph a = build_reachability_graph(phil.net);
  const ReachabilityGraph b = build_reachability_graph(reparsed.net);
  ASSERT_EQ(a.system.num_states(), b.system.num_states());
  EXPECT_EQ(a.deadlocks.size(), b.deadlocks.size());
  EXPECT_TRUE(nfa_equivalent(
      a.system, remap_alphabet(b.system, a.system.alphabet())));
}

TEST(NetFormat, ParsesWeightsCommentsAndDefaults) {
  const petri::NetFile file = petri::parse_net(
      "# a weighted pair\n"
      "net pair\n"
      "place p 2\n"
      "place q\n"
      "trans t  # consumes both tokens\n"
      "in p 2\n"
      "out q\n");
  EXPECT_EQ(file.name, "pair");
  EXPECT_TRUE(file.hidden.empty());
  const ReachabilityGraph graph = build_reachability_graph(file.net);
  EXPECT_EQ(graph.system.num_states(), 2u);
  EXPECT_EQ(graph.deadlocks.size(), 1u);
}

TEST(NetFormat, StrictRejectionsCarryLineNumbers) {
  const auto reject_line = [](const char* text) -> std::size_t {
    try {
      (void)petri::parse_net(text);
    } catch (const petri::NetParseError& e) {
      return e.line();
    }
    return static_cast<std::size_t>(-1);  // accepted: fail the expectation
  };
  // Arc before any transition.
  EXPECT_EQ(reject_line("place p 1\nin p\n"), 2u);
  // Duplicate place.
  EXPECT_EQ(reject_line("place p\nplace p\n"), 2u);
  // Arc to an unknown place.
  EXPECT_EQ(reject_line("place p\ntrans t\nin q\n"), 3u);
  // Duplicate arc of the same kind.
  EXPECT_EQ(reject_line("place p 1\ntrans t\nin p\nin p\n"), 4u);
  // Unknown directive.
  EXPECT_EQ(reject_line("flace p\n"), 1u);
  // Malformed token count.
  EXPECT_EQ(reject_line("place p x\n"), 1u);
  // hide of a label no transition carries (reported on the hide line).
  EXPECT_EQ(reject_line("place p 1\ntrans t\nin p\nhide u\n"), 4u);
  // Duplicate hide.
  EXPECT_EQ(reject_line("place p 1\ntrans t\nin p\nhide t t\n"), 4u);
  // Second net directive.
  EXPECT_EQ(reject_line("net a\nnet b\n"), 2u);
}

// ---------------------------------------------------------------------------
// Scenario families.

TEST(Scenario, PhilosophersDeadlockAndScale) {
  std::size_t previous = 0;
  for (std::size_t n = 2; n <= 5; ++n) {
    const petri::NetFile file = petri::philosophers_net(n);
    const ReachabilityGraph graph = build_reachability_graph(file.net);
    EXPECT_TRUE(graph.complete);
    EXPECT_TRUE(graph.one_safe);
    // Everyone grabs the left fork: the classic circular-wait deadlock.
    EXPECT_FALSE(graph.deadlocks.empty()) << "n=" << n;
    EXPECT_GT(graph.system.num_states(), previous);
    previous = graph.system.num_states();
  }
}

TEST(Scenario, RingAndFlightAreDeadlockFree) {
  for (std::size_t n = 2; n <= 4; ++n) {
    const ReachabilityGraph ring =
        build_reachability_graph(petri::ring_workflow_net(n).net);
    EXPECT_TRUE(ring.complete);
    EXPECT_TRUE(ring.deadlocks.empty()) << "ring n=" << n;
  }
  const petri::NetFile flight = petri::flight_workflow_net();
  const ReachabilityGraph graph = build_reachability_graph(flight.net);
  EXPECT_TRUE(graph.complete);
  EXPECT_TRUE(graph.deadlocks.empty());
  EXPECT_FALSE(flight.hidden.empty());
}

TEST(Scenario, DeriveAbstractionRejectsUnknownLabels) {
  const petri::NetFile file = petri::bounded_buffer_net(2);
  const ReachabilityGraph graph = build_reachability_graph(file.net);
  EXPECT_NO_THROW(
      petri::derive_abstraction(graph.system.alphabet(), file.hidden));
  EXPECT_THROW(
      petri::derive_abstraction(graph.system.alphabet(), {"no_such_label"}),
      std::invalid_argument);
}

}  // namespace
}  // namespace rlv

// Tests for rlv::engine — the concurrent verification query engine:
// determinism (parallel batches bit-identical to sequential execution),
// cache hit/miss/eviction accounting, compute-once semantics under
// contention, error folding, the thread pool, and structural fingerprints.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "rlv/core/relative.hpp"
#include "rlv/engine/cache.hpp"
#include "rlv/engine/engine.hpp"
#include "rlv/engine/fingerprint.hpp"
#include "rlv/engine/thread_pool.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/io/format.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {
namespace {

// ---------------------------------------------------------------------------
// Workload construction.

std::vector<std::string> sample_system_texts() {
  return {serialize_system(figure2_system()),
          serialize_system(figure3_system()),
          serialize_system(token_ring(4)),
          serialize_system(section5_ab_system())};
}

std::vector<std::string> sample_formulas(const Nfa& probe) {
  // Formulas over action names shared by all sample systems would be ideal;
  // unknown atoms are simply false at every letter, which is fine too.
  (void)probe;
  return {"G F result", "F result", "G(request -> F(result || reject))",
          "G F pass_0", "true U result", "G(result -> !(X result))"};
}

std::vector<Query> mixed_batch(std::size_t size) {
  const auto systems = sample_system_texts();
  const auto formulas = sample_formulas(figure2_system());
  const CheckKind kinds[] = {CheckKind::kRelativeLiveness,
                             CheckKind::kRelativeSafety,
                             CheckKind::kSatisfaction};
  std::vector<Query> batch;
  batch.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    batch.push_back(Query{systems[i % systems.size()],
                          formulas[(i / 2) % formulas.size()],
                          kinds[i % 3]});
  }
  return batch;
}

void expect_identical(const std::vector<Verdict>& a,
                      const std::vector<Verdict>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].holds, b[i].holds) << "query " << i;
    EXPECT_EQ(a[i].error, b[i].error) << "query " << i;
    EXPECT_EQ(a[i].violating_prefix, b[i].violating_prefix) << "query " << i;
    ASSERT_EQ(a[i].counterexample.has_value(), b[i].counterexample.has_value())
        << "query " << i;
    if (a[i].counterexample) {
      EXPECT_EQ(a[i].counterexample->prefix, b[i].counterexample->prefix);
      EXPECT_EQ(a[i].counterexample->period, b[i].counterexample->period);
    }
  }
}

// ---------------------------------------------------------------------------
// Engine determinism and correctness.

TEST(Engine, ParallelBatchIdenticalToSequential64) {
  const std::vector<Query> batch = mixed_batch(64);

  Engine sequential(EngineOptions{.jobs = 1});
  Engine parallel(EngineOptions{.jobs = 4});
  const auto seq = sequential.run(batch);
  const auto par = parallel.run(batch);

  expect_identical(seq, par);

  // The repeated-system workload must actually reuse cached intermediates.
  const EngineStats stats = parallel.stats();
  EXPECT_GT(stats.total().hits, 0u);
  EXPECT_GT(stats.behaviors.hits, 0u);
  EXPECT_EQ(stats.queries_run, 64u);
}

TEST(Engine, AgreesWithDirectLibraryCalls) {
  Engine engine(EngineOptions{.jobs = 2});
  for (const Nfa& system : {figure2_system(), figure3_system()}) {
    const std::string text = serialize_system(system);
    const Buchi behaviors = limit_of_prefix_closed(system);
    const Labeling lambda = Labeling::canonical(system.alphabet());
    const Formula f = parse_ltl("G F result");

    const Verdict rl =
        engine.run_one({text, "G F result", CheckKind::kRelativeLiveness});
    EXPECT_EQ(rl.holds, relative_liveness(behaviors, f, lambda).holds);

    const Verdict rs =
        engine.run_one({text, "G F result", CheckKind::kRelativeSafety});
    EXPECT_EQ(rs.holds, relative_safety(behaviors, f, lambda).holds);

    const Verdict sat =
        engine.run_one({text, "G F result", CheckKind::kSatisfaction});
    EXPECT_EQ(sat.holds, satisfies(behaviors, f, lambda).holds);
  }
}

TEST(Engine, FairChecksMatchRlvCheckSemantics) {
  // Figure 2: strongly fair runs satisfy GF result; weakly fair ones do not.
  const std::string text = serialize_system(figure2_system());
  Engine engine;
  EXPECT_TRUE(
      engine.run_one({text, "G F result", CheckKind::kFairStrong}).holds);
  const Verdict weak =
      engine.run_one({text, "G F result", CheckKind::kFairWeak});
  EXPECT_FALSE(weak.holds);
  EXPECT_TRUE(weak.counterexample.has_value());
}

TEST(Engine, RepeatedQueryHitsVerdictCache) {
  Engine engine;
  const Query q{serialize_system(figure2_system()), "G F result",
                CheckKind::kRelativeLiveness};
  const Verdict first = engine.run_one(q);
  const Verdict second = engine.run_one(q);
  EXPECT_EQ(first.holds, second.holds);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.verdicts.hits, 1u);
  EXPECT_EQ(stats.verdicts.misses, 1u);
  EXPECT_EQ(stats.systems.hits, 1u);
}

TEST(Engine, StructurallyEqualTextsShareVerdicts) {
  // Same automaton, different text (comment) — the parse cache misses but
  // the structural fingerprint matches, so the verdict cache hits.
  const std::string text = serialize_system(figure2_system());
  Engine engine;
  (void)engine.run_one({text, "G F result", CheckKind::kRelativeLiveness});
  (void)engine.run_one(
      {"# same system\n" + text, "G F result", CheckKind::kRelativeLiveness});
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.systems.misses, 2u);
  EXPECT_EQ(stats.verdicts.hits, 1u);
  // The verdict-cache hit short-circuits decide(): the behaviors automaton
  // was only ever built once, for the first query.
  EXPECT_EQ(stats.behaviors.misses, 1u);
  EXPECT_EQ(stats.behaviors.hits, 0u);
}

TEST(Engine, ErrorsAreFoldedIntoVerdicts) {
  Engine engine;
  const Verdict bad_system =
      engine.run_one({"alphabet: a\n", "G F a", CheckKind::kSatisfaction});
  EXPECT_FALSE(bad_system.ok());
  EXPECT_NE(bad_system.error.find("states"), std::string::npos);

  const Verdict bad_formula =
      engine.run_one({serialize_system(figure2_system()), "G F (",
                      CheckKind::kSatisfaction});
  EXPECT_FALSE(bad_formula.ok());

  // A failed parse must not poison the cache for a later good query.
  const Verdict retry = engine.run_one(
      {serialize_system(figure2_system()), "G F result",
       CheckKind::kRelativeLiveness});
  EXPECT_TRUE(retry.ok());
  EXPECT_TRUE(retry.holds);
}

TEST(Engine, RandomSystemsParallelMatchesSequential) {
  Rng rng(2026);
  std::vector<Query> batch;
  for (int i = 0; i < 12; ++i) {
    auto sigma = random_alphabet(3);
    const Nfa system = random_transition_system(rng, 4 + rng.next_below(4),
                                                sigma);
    const Formula f = random_formula(rng, {"a0", "a1", "a2"}, 3);
    batch.push_back(Query{serialize_system(system), f.to_string(),
                          i % 2 ? CheckKind::kRelativeLiveness
                                : CheckKind::kSatisfaction});
  }
  Engine sequential(EngineOptions{.jobs = 1});
  Engine parallel(EngineOptions{.jobs = 4});
  expect_identical(sequential.run(batch), parallel.run(batch));
}

// ---------------------------------------------------------------------------
// MemoCache semantics.

TEST(MemoCache, ComputeOnceUnderContention) {
  MemoCache<int, int> cache(64);
  std::atomic<int> computations{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        auto value = cache.get_or_compute(i % 10, [&] {
          computations.fetch_add(1);
          return i % 10;
        });
        EXPECT_EQ(*value, i % 10);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(computations.load(), 10);
  const CacheCounters counters = cache.counters();
  EXPECT_EQ(counters.misses, 10u);
  // Every non-miss lookup either hit a resident value or joined an
  // in-flight computation; only the former count as hits.
  EXPECT_EQ(counters.hits + counters.coalesced, 8u * 100u - 10u);
}

TEST(MemoCache, EvictsLeastRecentlyUsed) {
  MemoCache<int, int> cache(2);
  (void)cache.get_or_compute(1, [] { return 1; });
  (void)cache.get_or_compute(2, [] { return 2; });
  (void)cache.get_or_compute(1, [] { return 1; });  // refresh 1
  (void)cache.get_or_compute(3, [] { return 3; });  // evicts 2
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.get_or_compute(1, [] { return -1; });  // still cached
  EXPECT_EQ(cache.counters().hits, 2u);
  int recomputed = 0;
  (void)cache.get_or_compute(2, [&] {
    recomputed = 1;
    return 2;
  });
  EXPECT_EQ(recomputed, 1);  // 2 was evicted
}

TEST(MemoCache, ExceptionEvictsEntryAndPropagates) {
  MemoCache<int, int> cache(8);
  EXPECT_THROW((void)cache.get_or_compute(
                   1, []() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  auto value = cache.get_or_compute(1, [] { return 7; });
  EXPECT_EQ(*value, 7);
  EXPECT_EQ(cache.counters().misses, 2u);
}

TEST(Engine, EvictionCountersSurfaceInStats) {
  // A capacity-1 cache over four distinct systems must evict.
  Engine engine(EngineOptions{.jobs = 1, .cache_capacity = 1});
  for (const auto& text : sample_system_texts()) {
    (void)engine.run_one({text, "G F result", CheckKind::kSatisfaction});
  }
  EXPECT_GT(engine.stats().total().evictions, 0u);
}

// ---------------------------------------------------------------------------
// ThreadPool.

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
  pool.wait_idle();  // must not block with an empty queue
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) pool.submit([&] { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 64);
}

// ---------------------------------------------------------------------------
// Fingerprints.

TEST(Fingerprint, SensitiveToStructureNotText) {
  const Nfa fig2 = figure2_system();
  const Nfa fig3 = figure3_system();
  EXPECT_NE(fingerprint_nfa(fig2), fingerprint_nfa(fig3));
  // Reparse of the serialization reproduces the structural fingerprint.
  const Nfa reparsed = parse_system(serialize_system(fig2));
  EXPECT_EQ(fingerprint_nfa(fig2), fingerprint_nfa(reparsed));
  // Text fingerprints differ on any byte change.
  EXPECT_NE(fingerprint_text("a"), fingerprint_text("b"));
  EXPECT_NE(fingerprint_text(""), fingerprint_text(std::string_view("\0", 1)));
}

TEST(Fingerprint, AcceptanceChangesHash) {
  auto sigma = Alphabet::make({"a"});
  Nfa x(sigma);
  const State s = x.add_state(true);
  x.add_transition(s, 0, s);
  x.set_initial(s);
  Nfa y(sigma);
  const State t = y.add_state(false);
  y.add_transition(t, 0, t);
  y.set_initial(t);
  EXPECT_NE(fingerprint_nfa(x), fingerprint_nfa(y));
}

TEST(CheckKind, NamesRoundTrip) {
  for (const CheckKind kind :
       {CheckKind::kRelativeLiveness, CheckKind::kRelativeSafety,
        CheckKind::kSatisfaction, CheckKind::kFairStrong,
        CheckKind::kFairWeak}) {
    EXPECT_EQ(parse_check_kind(check_kind_name(kind)), kind);
  }
  EXPECT_FALSE(parse_check_kind("bogus").has_value());
}

TEST(InclusionAlgorithmNames, RoundTrip) {
  for (const InclusionAlgorithm algorithm :
       {InclusionAlgorithm::kSubset, InclusionAlgorithm::kAntichain}) {
    EXPECT_EQ(parse_inclusion_algorithm(inclusion_algorithm_name(algorithm)),
              algorithm);
  }
  EXPECT_FALSE(parse_inclusion_algorithm("bogus").has_value());
}

// ---------------------------------------------------------------------------
// Verdict cache keying.

TEST(Engine, VerdictCacheDoesNotAliasAcrossInclusionAlgorithms) {
  // Regression: two queries identical except for InclusionAlgorithm must
  // not share one cached verdict — subset and antichain may report
  // different (equally valid) counterexample words, and a key that drops
  // the algorithm would hand one algorithm's witness to the other.
  Query subset{serialize_system(figure3_system()), "G F result",
               CheckKind::kRelativeLiveness};
  subset.algorithm = InclusionAlgorithm::kSubset;
  Query antichain = subset;
  antichain.algorithm = InclusionAlgorithm::kAntichain;

  Engine engine;
  const Verdict v_subset = engine.run_one(subset);
  const Verdict v_antichain = engine.run_one(antichain);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.verdicts.misses, 2u);
  EXPECT_EQ(stats.verdicts.hits, 0u);
  // Both verdicts agree on the boolean (the algorithms are equivalent).
  EXPECT_EQ(v_subset.holds, v_antichain.holds);

  // Re-running either query now hits its own entry.
  (void)engine.run_one(subset);
  EXPECT_EQ(engine.stats().verdicts.hits, 1u);
}

TEST(Engine, VerdictCacheDoesNotAliasFormulaAndAutomatonFlavors) {
  // A formula query and an automaton-flavor query against the same system
  // key on different fields (interned formula vs property fingerprint);
  // neither may serve the other's verdict.
  const std::string system_text = serialize_system(figure2_system());
  // "infinitely many result" as an automaton over the fig2 alphabet.
  Buchi property(figure2_system().alphabet());
  const State wait = property.add_state(false);
  const State saw = property.add_state(true);
  property.set_initial(wait);
  const AlphabetRef sigma = property.alphabet();
  for (Symbol a = 0; a < sigma->size(); ++a) {
    const bool is_result = sigma->name(a) == std::string_view("result");
    property.add_transition(wait, a, is_result ? saw : wait);
    property.add_transition(saw, a, is_result ? saw : wait);
  }

  Query formula_query{system_text, "G F result",
                      CheckKind::kRelativeLiveness};
  Query automaton_query;
  automaton_query.system = system_text;
  automaton_query.kind = CheckKind::kRelativeLiveness;
  automaton_query.property_automaton = serialize_buchi(property);

  Engine engine;
  const Verdict from_formula = engine.run_one(formula_query);
  const Verdict from_automaton = engine.run_one(automaton_query);
  EXPECT_EQ(engine.stats().verdicts.misses, 2u);
  EXPECT_EQ(engine.stats().verdicts.hits, 0u);
  ASSERT_TRUE(from_formula.ok());
  ASSERT_TRUE(from_automaton.ok());
  // Both encode "G F result", so the answers agree (rl holds for fig2).
  EXPECT_TRUE(from_formula.holds);
  EXPECT_TRUE(from_automaton.holds);
}

TEST(Engine, AutomatonFlavorRemapsPropertyAlphabetByName) {
  // The property automaton is parsed against its own alphabet object; the
  // engine must remap it onto the system's alphabet before intersecting.
  const std::string system_text = serialize_system(figure2_system());
  const std::string property_text =
      "alphabet: result lock free request yes no reject\n"  // permuted order
      "states: 1\n"
      "initial: 0\n"
      "accepting: 0\n"
      "0 result 0\n"
      "0 lock 0\n"
      "0 free 0\n"
      "0 request 0\n"
      "0 yes 0\n"
      "0 no 0\n"
      "0 reject 0\n";
  Query query;
  query.system = system_text;
  query.kind = CheckKind::kSatisfaction;
  query.property_automaton = property_text;

  Engine engine;
  const Verdict verdict = engine.run_one(query);
  ASSERT_TRUE(verdict.ok()) << verdict.error;
  EXPECT_TRUE(verdict.holds);  // Σ^ω property: trivially satisfied
}

}  // namespace
}  // namespace rlv

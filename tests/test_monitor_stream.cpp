// Tests for the streaming monitor subsystem end to end: SessionTable slab
// mechanics (free-list reuse, stale generations, caps, idle GC), the engine
// open/step/close entry points, and the rlv::net wire protocol under an
// event loop over real sockets — hostile inputs, deterministic session-cap
// overloads, session reclamation on RST / idle timeout / drain, and a
// concurrent streamed-vs-one-shot verdict parity check (the TSan target).

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rlv/engine/engine.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/io/format.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/monitor/session.hpp"
#include "rlv/net/client.hpp"
#include "rlv/net/json.hpp"
#include "rlv/net/protocol.hpp"
#include "rlv/net/server.hpp"
#include "rlv/omega/limit.hpp"

namespace rlv {
namespace {

using net::JsonValue;
using net::parse_json;

std::shared_ptr<const monitor::MonitorAutomaton> fig2_automaton() {
  const Nfa fig2 = figure2_system();
  return std::make_shared<const monitor::MonitorAutomaton>(
      limit_of_prefix_closed(fig2), parse_ltl("G F result"),
      Labeling::canonical(fig2.alphabet()));
}

// ---------------------------------------------------------------------------
// SessionTable slab mechanics.

TEST(SessionTable, SlotReuseBumpsGenerationAndRejectsStaleIds) {
  monitor::SessionTable table;
  const auto automaton = fig2_automaton();

  const std::uint64_t first = table.open(automaton, 0);
  ASSERT_NE(first, 0u);
  ASSERT_NE(table.find(first, 1), nullptr);
  EXPECT_TRUE(table.close(first));
  EXPECT_EQ(table.find(first, 2), nullptr);
  EXPECT_FALSE(table.close(first));  // double close

  // The slot is reused, but under a fresh generation: the old id stays dead.
  const std::uint64_t second = table.open(automaton, 3);
  ASSERT_NE(second, 0u);
  EXPECT_NE(second, first);
  EXPECT_EQ(second & 0xffffffffu, first & 0xffffffffu);  // same slot index
  EXPECT_EQ(table.find(first, 4), nullptr);
  ASSERT_NE(table.find(second, 4), nullptr);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SessionTable, GlobalCapIsDeterministic) {
  monitor::SessionTable table(2);
  const auto automaton = fig2_automaton();
  const std::uint64_t a = table.open(automaton, 0);
  const std::uint64_t b = table.open(automaton, 0);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_EQ(table.open(automaton, 0), 0u);  // full: 0, not a throw
  EXPECT_TRUE(table.close(a));
  EXPECT_NE(table.open(automaton, 0), 0u);  // freed capacity is reusable
  EXPECT_EQ(table.counters().peak, 2u);
  EXPECT_EQ(table.counters().opened, 3u);
}

TEST(SessionTable, IdleSweepReclaimsLeastRecentFirst) {
  monitor::SessionTable table;
  const auto automaton = fig2_automaton();
  const std::uint64_t old_session = table.open(automaton, 0);
  const std::uint64_t young = table.open(automaton, 50);
  ASSERT_NE(table.find(old_session, 60), nullptr);  // touch refreshes idle
  // old_session touched at 60, young at 50: young expires first at 100
  // with a 45ms budget.
  EXPECT_EQ(table.sweep_idle(100, 45), 1u);
  EXPECT_EQ(table.find(young, 100), nullptr);
  EXPECT_NE(table.find(old_session, 100), nullptr);
  EXPECT_EQ(table.counters().idle_reclaimed, 1u);
  EXPECT_EQ(table.sweep_idle(100, 45), 0u);  // nothing else expired
}

// ---------------------------------------------------------------------------
// Engine entry points.

TEST(EngineMonitor, OpenStepCloseDetectsDoomWithWitness) {
  Engine engine;
  MonitorSpec spec;
  spec.system = serialize_system(figure3_system());
  spec.formula = "G F result";
  spec.certify = true;

  const MonitorOpenResult open = engine.open_monitor(spec);
  ASSERT_TRUE(open.ok()) << open.error;
  ASSERT_NE(open.session, 0u);
  EXPECT_EQ(open.verdict, monitor::Verdict::kSatisfiable);
  EXPECT_TRUE(open.certified);

  const MonitorStepResult doom = engine.step_monitor(
      open.session, {"request", "yes", "result", "lock"});
  ASSERT_TRUE(doom.ok()) << doom.error;
  EXPECT_EQ(doom.verdict, monitor::Verdict::kDoomed);
  ASSERT_TRUE(doom.transition_index.has_value());
  EXPECT_EQ(*doom.transition_index, 3u);
  EXPECT_TRUE(doom.transition_doomed);
  EXPECT_FALSE(doom.witness.empty());
  EXPECT_TRUE(doom.witness_certified);
  EXPECT_EQ(doom.events, 4u);

  // A rejected batch is rejected whole: the bad action in the middle must
  // not advance the stream.
  const MonitorStepResult bad =
      engine.step_monitor(open.session, {"request", "nonsense", "yes"});
  EXPECT_EQ(bad.error, "unknown_action");
  const MonitorStepResult after = engine.step_monitor(open.session, {});
  EXPECT_EQ(after.events, 4u);  // unchanged

  const MonitorCloseResult closed = engine.close_monitor(open.session);
  EXPECT_TRUE(closed.ok());
  EXPECT_EQ(closed.events, 4u);
  EXPECT_EQ(engine.close_monitor(open.session).error, "unknown_session");
  EXPECT_EQ(engine.step_monitor(open.session, {"request"}).error,
            "unknown_session");

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.monitor.sessions_open, 0u);
  EXPECT_EQ(stats.monitor.sessions_opened, 1u);
  EXPECT_EQ(stats.monitor.steps, 4u);
  EXPECT_EQ(stats.monitor.dooms, 1u);
}

TEST(EngineMonitor, EventCapRejectsBatchWhole) {
  EngineOptions options;
  options.max_session_events = 5;
  Engine engine(options);
  MonitorSpec spec;
  spec.system = serialize_system(figure2_system());
  spec.formula = "G F result";
  const MonitorOpenResult open = engine.open_monitor(spec);
  ASSERT_TRUE(open.ok()) << open.error;

  ASSERT_TRUE(
      engine.step_monitor(open.session, {"request", "yes", "result"}).ok());
  const MonitorStepResult over = engine.step_monitor(
      open.session, {"request", "yes", "result"});  // 3 + 3 > 5
  EXPECT_EQ(over.error, "event_cap");
  const MonitorStepResult fits =
      engine.step_monitor(open.session, {"request", "yes"});
  EXPECT_TRUE(fits.ok());
  EXPECT_EQ(fits.events, 5u);
}

TEST(EngineMonitor, TableFullAndCompileErrorsAreStructured) {
  EngineOptions options;
  options.max_sessions = 1;
  Engine engine(options);
  MonitorSpec spec;
  spec.system = serialize_system(figure2_system());
  spec.formula = "G F result";
  const MonitorOpenResult first = engine.open_monitor(spec);
  ASSERT_TRUE(first.ok());
  const MonitorOpenResult full = engine.open_monitor(spec);
  EXPECT_TRUE(full.table_full);
  EXPECT_EQ(full.session, 0u);

  MonitorSpec bad = spec;
  bad.formula = "G F (";
  EXPECT_FALSE(engine.open_monitor(bad).error.empty());
  MonitorSpec both = spec;
  both.property_automaton = "x";
  EXPECT_FALSE(engine.open_monitor(both).error.empty());
}

// ---------------------------------------------------------------------------
// Wire protocol under the event loop (mirrors test_net.cpp's TestServer).

class TestServer {
 public:
  explicit TestServer(net::ServerOptions server_options = {},
                      EngineOptions engine_options = {}) {
    if (engine_options.jobs < 2) engine_options.jobs = 2;
    engine_ = std::make_unique<Engine>(engine_options);
    server_options.bind_address = "127.0.0.1";
    server_options.port = 0;
    server_ = std::make_unique<net::Server>(*engine_, server_options);
    port_ = server_->start();
    loop_ = std::thread([this] { server_->run(); });
  }

  ~TestServer() {
    server_->request_stop();
    loop_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] Engine& engine() { return *engine_; }

  [[nodiscard]] net::Client connect_client() const {
    net::Client client;
    client.connect("127.0.0.1", port_);
    return client;
  }

 private:
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<net::Server> server_;
  std::uint16_t port_ = 0;
  std::thread loop_;
};

std::uint64_t open_fig3_session(net::Client& client, bool certify = false) {
  MonitorSpec spec;
  spec.system = serialize_system(figure3_system());
  spec.formula = "G F result";
  spec.certify = certify;
  const net::Response open = net::parse_response(
      client.call(net::render_monitor_open_request(spec, 1, "fig3")));
  EXPECT_TRUE(open.ok) << open.raw;
  EXPECT_TRUE(open.has_session);
  return open.session;
}

TEST(NetMonitor, StreamedDoomCarriesCertifiedWitness) {
  TestServer ts;
  net::Client client = ts.connect_client();
  const std::uint64_t session = open_fig3_session(client, /*certify=*/true);

  const net::Response doom = net::parse_response(client.call(
      net::render_monitor_step_request(
          session, {"request", "yes", "result", "lock"}, 2)));
  EXPECT_TRUE(doom.ok) << doom.raw;
  EXPECT_EQ(doom.verdict, "doomed");
  ASSERT_TRUE(doom.has_doomed_index);
  EXPECT_EQ(doom.doomed_index, 3u);
  EXPECT_TRUE(doom.witness_certified);
  const JsonValue root = parse_json(doom.raw);
  const JsonValue* witness = root.find("witness");
  ASSERT_NE(witness, nullptr);
  EXPECT_FALSE(witness->array.empty());

  const net::Response closed = net::parse_response(
      client.call(net::render_monitor_close_request(session, 3)));
  EXPECT_TRUE(closed.ok) << closed.raw;
  EXPECT_EQ(closed.events, 4u);
}

TEST(NetMonitor, HostileInputsAnswerWithoutKillingTheConnection) {
  TestServer ts;
  net::Client client = ts.connect_client();
  const std::uint64_t session = open_fig3_session(client);

  // Unknown action name: engine-level error, connection stays usable.
  const net::Response bad_action = net::parse_response(client.call(
      net::render_monitor_step_request(session, {"frobnicate"}, 2)));
  EXPECT_FALSE(bad_action.ok);
  EXPECT_EQ(bad_action.error, "unknown_action");

  // Unknown and stale session ids.
  const net::Response unknown = net::parse_response(client.call(
      net::render_monitor_step_request(0xdeadbeefull, {"request"}, 3)));
  EXPECT_EQ(unknown.error, "unknown_session");

  // Steps after doom are legal (doom is absorbing, no new transition).
  const net::Response doom = net::parse_response(client.call(
      net::render_monitor_step_request(
          session, {"request", "yes", "result", "lock"}, 4)));
  EXPECT_EQ(doom.verdict, "doomed");
  const net::Response after = net::parse_response(client.call(
      net::render_monitor_step_request(session, {"request"}, 5)));
  EXPECT_TRUE(after.ok) << after.raw;
  EXPECT_EQ(after.verdict, "doomed");
  EXPECT_FALSE(after.has_doomed_index);

  // Close, double close.
  EXPECT_TRUE(net::parse_response(client.call(
                                      net::render_monitor_close_request(
                                          session, 6)))
                  .ok);
  const net::Response again = net::parse_response(
      client.call(net::render_monitor_close_request(session, 7)));
  EXPECT_EQ(again.error, "unknown_session");

  // Malformed monitor requests are protocol errors (answer + close), the
  // same strict reader as queries: non-string action element...
  net::Client hostile = ts.connect_client();
  const net::Response non_string = net::parse_response(hostile.call(
      R"({"op":"monitor_step","id":8,"session":1,"actions":[1,2]})"));
  EXPECT_FALSE(non_string.ok);
  EXPECT_EQ(non_string.error, "bad_request");
  // ...unknown fields, CR-terminated lines, missing session.
  net::Client hostile2 = ts.connect_client();
  hostile2.send_line("{\"op\":\"monitor_open\",\"sytem\":\"x\"}\r");
  const net::Response typo = net::parse_response(hostile2.read_line());
  EXPECT_EQ(typo.error, "bad_request");
  net::Client hostile3 = ts.connect_client();
  const net::Response no_session = net::parse_response(
      hostile3.call(R"({"op":"monitor_close","id":9})"));
  EXPECT_EQ(no_session.error, "bad_request");

  // Oversized step batch: deterministic error, connection survives.
  net::ServerOptions small;
  small.limits.max_steps_per_request = 2;
  TestServer ts2(small);
  net::Client client2 = ts2.connect_client();
  const std::uint64_t session2 = open_fig3_session(client2);
  const net::Response too_many = net::parse_response(client2.call(
      net::render_monitor_step_request(session2,
                                       {"request", "yes", "result"}, 10)));
  EXPECT_EQ(too_many.error, "too_many_steps");
  const net::Response still_alive = net::parse_response(client2.call(
      net::render_monitor_step_request(session2, {"request", "yes"}, 11)));
  EXPECT_TRUE(still_alive.ok) << still_alive.raw;
}

TEST(NetMonitor, PerConnectionSessionCapOverloadsDeterministically) {
  net::ServerOptions options;
  options.limits.max_sessions_per_connection = 1;
  TestServer ts(options);
  net::Client client = ts.connect_client();

  // Pipeline two opens in one burst: the cap counts the pending open, so
  // exactly one session is granted and the other answers the structured
  // overload with scope "connection_sessions".
  MonitorSpec spec;
  spec.system = serialize_system(figure2_system());
  spec.formula = "G F result";
  client.send_line(net::render_monitor_open_request(spec, 1));
  client.send_line(net::render_monitor_open_request(spec, 2));
  bool granted = false;
  bool overloaded = false;
  for (int i = 0; i < 2; ++i) {
    const net::Response r = net::parse_response(client.read_line());
    if (r.ok && r.has_session) granted = true;
    if (r.overloaded) {
      overloaded = true;
      const JsonValue root = parse_json(r.raw);
      ASSERT_NE(root.find("scope"), nullptr);
      EXPECT_EQ(root.find("scope")->as_string(), "connection_sessions");
    }
  }
  EXPECT_TRUE(granted);
  EXPECT_TRUE(overloaded);
}

void wait_for_open_sessions(Engine& engine, std::uint64_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (engine.stats().monitor.sessions_open != want &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(engine.stats().monitor.sessions_open, want);
}

TEST(NetMonitor, SessionsReclaimedOnAbortiveDisconnect) {
  TestServer ts;
  {
    net::Client client = ts.connect_client();
    (void)open_fig3_session(client);
    wait_for_open_sessions(ts.engine(), 1);
    // RST instead of FIN: SO_LINGER with zero timeout makes close() send a
    // reset — the connection error path, not the graceful one.
    struct linger hard = {1, 0};
    ::setsockopt(client.fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
  }
  wait_for_open_sessions(ts.engine(), 0);
}

TEST(NetMonitor, SessionsReclaimedByIdleTimeout) {
  net::ServerOptions options;
  options.session_idle_timeout_ms = 50;
  TestServer ts(options);
  net::Client client = ts.connect_client();
  const std::uint64_t session = open_fig3_session(client);
  wait_for_open_sessions(ts.engine(), 1);
  wait_for_open_sessions(ts.engine(), 0);  // swept without any traffic
  EXPECT_GE(ts.engine().stats().monitor.idle_reclaimed, 1u);
  // The next touch reports unknown_session instead of stepping a zombie.
  const net::Response step = net::parse_response(client.call(
      net::render_monitor_step_request(session, {"request"}, 2)));
  EXPECT_EQ(step.error, "unknown_session");
}

TEST(NetMonitor, DrainClosesOpenSessions) {
  // Engine outlives the server here so the post-drain table is observable.
  EngineOptions engine_options;
  engine_options.jobs = 2;
  Engine engine(engine_options);
  net::ServerOptions options;
  options.bind_address = "127.0.0.1";
  options.port = 0;
  net::Server server(engine, options);
  const std::uint16_t port = server.start();
  std::thread loop([&server] { server.run(); });
  {
    net::Client client;
    client.connect("127.0.0.1", port);
    (void)open_fig3_session(client);
    wait_for_open_sessions(engine, 1);
    server.request_stop();  // graceful drain with the session still open
    loop.join();
  }
  EXPECT_EQ(engine.stats().monitor.sessions_open, 0u);
}

TEST(NetMonitor, ConcurrentStreamsAgreeWithOneShotQueries) {
  // Four clients stream the dooming (fig3) and a live (fig2) trace while
  // also issuing the corresponding one-shot rl queries on the same
  // connection — streamed verdicts and query verdicts must tell the same
  // story. This is the suite's TSan workout: workers compile automata and
  // render verdicts while the loop steps sessions.
  EngineOptions engine_options;
  engine_options.jobs = 2;
  TestServer ts({}, engine_options);
  const std::string fig2 = serialize_system(figure2_system());
  const std::string fig3 = serialize_system(figure3_system());

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(4);
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      try {
        net::Client client = ts.connect_client();
        const auto expect = [&](bool ok, const char*) {
          if (!ok) failures.fetch_add(1);
        };
        for (int round = 0; round < 8; ++round) {
          // Streamed: fig3 dooms at index 3, fig2 stays live.
          MonitorSpec doomed_spec;
          doomed_spec.system = fig3;
          doomed_spec.formula = "G F result";
          const net::Response open3 = net::parse_response(client.call(
              net::render_monitor_open_request(doomed_spec, 1)));
          expect(open3.ok && open3.has_session, "open fig3");
          const net::Response doom = net::parse_response(client.call(
              net::render_monitor_step_request(
                  open3.session, {"request", "yes", "result", "lock"}, 2)));
          expect(doom.verdict == "doomed" && doom.has_doomed_index &&
                     doom.doomed_index == 3,
                 "doom at 3");
          expect(net::parse_response(
                     client.call(net::render_monitor_close_request(
                         open3.session, 3)))
                     .ok,
                 "close fig3");

          MonitorSpec live_spec;
          live_spec.system = fig2;
          live_spec.formula = "G F result";
          const net::Response open2 = net::parse_response(client.call(
              net::render_monitor_open_request(live_spec, 4)));
          expect(open2.ok && open2.has_session, "open fig2");
          const net::Response live = net::parse_response(client.call(
              net::render_monitor_step_request(
                  open2.session,
                  {"request", "yes", "result", "lock", "free", "request"},
                  5)));
          expect(live.ok && live.verdict == "live", "fig2 stays live");
          expect(net::parse_response(
                     client.call(net::render_monitor_close_request(
                         open2.session, 6)))
                     .ok,
                 "close fig2");

          // One-shot parity on the same connection.
          Query q;
          q.system = (t + round) % 2 == 0 ? fig3 : fig2;
          q.formula = "G F result";
          const net::Response verdict = net::parse_response(
              client.call(net::render_query_request(q, 7)));
          expect(verdict.ok && verdict.has_holds, "query answers");
          expect(verdict.holds == ((t + round) % 2 != 0),
                 "rl verdict parity");
        }
      } catch (const std::exception&) {
        failures.fetch_add(100);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  wait_for_open_sessions(ts.engine(), 0);
  EXPECT_EQ(ts.engine().stats().monitor.dooms, 4u * 8u);
}

}  // namespace
}  // namespace rlv

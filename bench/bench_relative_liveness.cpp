// Experiment E4 (Theorem 4.5): cost of the relative liveness decision on
// scalable systems — the n-client resource server (states 2·4^n) and token
// rings — with the antichain vs subset-construction inclusion ablation.

#include <benchmark/benchmark.h>

#include "rlv/core/relative.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/petri/reachability.hpp"

namespace {

using namespace rlv;

void BM_RelativeLiveness_ResourceServer(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const InclusionAlgorithm algorithm = state.range(1) == 0
                                           ? InclusionAlgorithm::kAntichain
                                           : InclusionAlgorithm::kSubset;
  const ReachabilityGraph graph =
      build_reachability_graph(resource_server_net(n));
  const Buchi system = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  const Formula f = parse_ltl("G F result_0");

  bool holds = false;
  for (auto _ : state) {
    holds = relative_liveness(system, f, lambda, algorithm).holds;
    benchmark::DoNotOptimize(holds);
  }
  state.counters["states"] = static_cast<double>(graph.system.num_states());
  state.counters["holds"] = holds ? 1 : 0;
}
BENCHMARK(BM_RelativeLiveness_ResourceServer)
    ->ArgsProduct({{1, 2, 3, 4}, {0, 1}})
    ->ArgNames({"clients", "subset"})
    ->Unit(benchmark::kMillisecond);

void BM_RelativeLiveness_TokenRing(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Nfa ring = token_ring(n);
  const Buchi system = limit_of_prefix_closed(ring);
  const Labeling lambda = Labeling::canonical(ring.alphabet());
  const Formula f = parse_ltl("G F work_0");

  bool holds = false;
  for (auto _ : state) {
    holds = relative_liveness(system, f, lambda).holds;
    benchmark::DoNotOptimize(holds);
  }
  state.counters["states"] = static_cast<double>(ring.num_states());
  state.counters["holds"] = holds ? 1 : 0;
}
BENCHMARK(BM_RelativeLiveness_TokenRing)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// The buggy server (Figure 3 shape) scaled: the check must *fail* and
// produce a counterexample prefix; failing checks are often faster (early
// exit) — measured to document the asymmetry.
void BM_RelativeLiveness_BuggyServer(benchmark::State& state) {
  const Nfa fig3 = figure3_system();
  const Buchi system = limit_of_prefix_closed(fig3);
  const Labeling lambda = Labeling::canonical(fig3.alphabet());
  const Formula f = parse_ltl("G F result");
  bool holds = true;
  for (auto _ : state) {
    holds = relative_liveness(system, f, lambda).holds;
    benchmark::DoNotOptimize(holds);
  }
  state.counters["holds"] = holds ? 1 : 0;
}
BENCHMARK(BM_RelativeLiveness_BuggyServer)->Unit(benchmark::kMicrosecond);

}  // namespace

// Guarded-command case studies (experiments E17/E20): state-space
// unfolding and the full verification stack (relative liveness + fair
// model checking) on Peterson's mutual exclusion and Chang–Roberts leader
// election.

#include <benchmark/benchmark.h>

#include "rlv/core/relative.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/limit.hpp"

namespace {

using namespace rlv;

void BM_Guarded_PetersonUnfold(benchmark::State& state) {
  std::size_t states = 0;
  for (auto _ : state) {
    const Nfa system = peterson_system();
    states = system.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_Guarded_PetersonUnfold)->Unit(benchmark::kMicrosecond);

void BM_Guarded_LeaderElectionUnfold(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::size_t states = 0;
  for (auto _ : state) {
    const Nfa system = leader_election_system(n);
    states = system.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_Guarded_LeaderElectionUnfold)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond);

void BM_Guarded_PetersonStarvationFreedom(benchmark::State& state) {
  const Nfa system = peterson_system();
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula f = parse_ltl("G(req_0 -> F enter_0)");
  bool rl = false;
  bool fair = false;
  for (auto _ : state) {
    rl = relative_liveness(behaviors, f, lambda).holds;
    fair = check_fair_satisfaction(behaviors, f, lambda).all_fair_runs_satisfy;
    benchmark::DoNotOptimize(fair);
  }
  state.counters["rl"] = rl ? 1 : 0;
  state.counters["fair"] = fair ? 1 : 0;
}
BENCHMARK(BM_Guarded_PetersonStarvationFreedom)->Unit(benchmark::kMillisecond);

void BM_Guarded_LeaderElectionLiveness(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Nfa system = leader_election_system(n);
  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula f =
      parse_ltl("F elected_" + std::to_string(n - 1));
  bool rl = false;
  for (auto _ : state) {
    rl = relative_liveness(behaviors, f, lambda).holds;
    benchmark::DoNotOptimize(rl);
  }
  state.counters["states"] = static_cast<double>(system.num_states());
  state.counters["rl"] = rl ? 1 : 0;
}
BENCHMARK(BM_Guarded_LeaderElectionLiveness)
    ->DenseRange(2, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

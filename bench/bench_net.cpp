// Experiment E25 (serving overhead): the per-request cost the rlv::net
// layer adds on top of the engine itself — request parsing (strict JSON →
// Query), response parsing on the client side, and the render/parse round
// trip of a full query request. These are the only wire-protocol costs on
// the hot path: everything else (query execution) is the engine's E21.
//
//   BM_ParseRequest        — one realistic query line through parse_request
//   BM_ParseRequestLarge   — a request embedding a ~19KB system text
//   BM_RenderQueryRequest  — client-side serialization of the same query
//   BM_ParseResponse       — a verdict record line through parse_response
//   BM_RenderStats         — EngineStats → JSON (the `stats` op's body)
//
// Reported counter: requests_per_second (single-threaded). The serving
// throughput measured end to end over sockets lives in EXPERIMENTS.md E25;
// this benchmark isolates the protocol share of it.

#include <benchmark/benchmark.h>

#include <string>

#include "rlv/engine/engine.hpp"
#include "rlv/engine/record.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/io/format.hpp"
#include "rlv/net/client.hpp"
#include "rlv/net/protocol.hpp"

namespace {

using namespace rlv;

Query sample_query(std::string system_text) {
  Query query;
  query.system = std::move(system_text);
  query.formula = "G(request -> F(result || reject))";
  query.kind = CheckKind::kRelativeSafety;
  query.timeout_ms = 5000;
  return query;
}

void report_rps(benchmark::State& state) {
  state.counters["requests_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_ParseRequest(benchmark::State& state) {
  const std::string line = net::render_query_request(
      sample_query(serialize_system(figure2_system())), 42, "fig2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_request(line));
  }
  report_rps(state);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(line.size()));
}

void BM_ParseRequestLarge(benchmark::State& state) {
  const std::string line = net::render_query_request(
      sample_query(serialize_system(token_ring(40))), 42, "ring40");
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_request(line));
  }
  report_rps(state);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(line.size()));
}

void BM_RenderQueryRequest(benchmark::State& state) {
  const Query query = sample_query(serialize_system(figure2_system()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::render_query_request(query, 42, "fig2"));
  }
  report_rps(state);
}

void BM_ParseResponse(benchmark::State& state) {
  // A real verdict record, produced the same way the server renders one.
  Engine engine;
  const Query query = sample_query(serialize_system(figure2_system()));
  const Verdict verdict = engine.run_one(query);
  const std::string line = render_query_record(7, query, verdict, "fig2", "",
                                               engine.stats().total());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_response(line));
  }
  report_rps(state);
}

void BM_RenderStats(benchmark::State& state) {
  Engine engine;
  const Query query = sample_query(serialize_system(figure2_system()));
  (void)engine.run_one(query);
  const EngineStats stats = engine.stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(render_stats(stats));
  }
  report_rps(state);
}

BENCHMARK(BM_ParseRequest);
BENCHMARK(BM_ParseRequestLarge);
BENCHMARK(BM_RenderQueryRequest);
BENCHMARK(BM_ParseResponse);
BENCHMARK(BM_RenderStats);

}  // namespace

// Experiment E12 ablation: Büchi emptiness via SCC decomposition (Tarjan)
// vs nested DFS (Courcoubetis et al.) on large random automata and on the
// product automata the relative-liveness checker actually produces.

#include <benchmark/benchmark.h>

#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/emptiness.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/petri/reachability.hpp"
#include "rlv/util/rng.hpp"

namespace {

using namespace rlv;

void BM_Emptiness_RandomBuchi(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const EmptinessAlgorithm algorithm = state.range(1) == 0
                                           ? EmptinessAlgorithm::kScc
                                           : EmptinessAlgorithm::kNestedDfs;
  Rng rng(11);
  auto sigma = random_alphabet(2);
  const Buchi a = random_buchi(rng, n, sigma);
  bool empty = false;
  for (auto _ : state) {
    empty = buchi_empty(a, algorithm);
    benchmark::DoNotOptimize(empty);
  }
  state.counters["empty"] = empty ? 1 : 0;
}
BENCHMARK(BM_Emptiness_RandomBuchi)
    ->ArgsProduct({{1000, 10000, 100000}, {0, 1}})
    ->ArgNames({"states", "ndfs"})
    ->Unit(benchmark::kMillisecond);

void BM_Emptiness_ServerProduct(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const EmptinessAlgorithm algorithm = state.range(1) == 0
                                           ? EmptinessAlgorithm::kScc
                                           : EmptinessAlgorithm::kNestedDfs;
  const ReachabilityGraph graph =
      build_reachability_graph(resource_server_net(n));
  const Buchi system = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  const Buchi bad =
      intersect_buchi(system, translate_ltl_negated(
                                  parse_ltl("G F result_0"), lambda));
  bool empty = false;
  for (auto _ : state) {
    empty = buchi_empty(bad, algorithm);
    benchmark::DoNotOptimize(empty);
  }
  state.counters["product_states"] = static_cast<double>(bad.num_states());
  state.counters["empty"] = empty ? 1 : 0;
}
BENCHMARK(BM_Emptiness_ServerProduct)
    ->ArgsProduct({{2, 3, 4}, {0, 1}})
    ->ArgNames({"clients", "ndfs"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

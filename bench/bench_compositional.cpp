// Experiment E10/§9: computing the abstract behavior compositionally. The
// sequential pipeline builds the full synchronized product, then abstracts
// (image + determinize + minimize); the on-the-fly construction interleaves
// the three and never materializes the product transition relation. Also
// reports configurations touched vs product size.

#include <benchmark/benchmark.h>

#include "rlv/comp/abstraction.hpp"
#include "rlv/comp/sync.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/hom/image.hpp"

namespace {

using namespace rlv;

void BM_Compositional_Sequential(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto components = resource_server_components(n);
  const Homomorphism h =
      resource_server_abstraction(components.front().automaton.alphabet());
  std::size_t abstract_states = 0;
  std::size_t product_states = 0;
  for (auto _ : state) {
    const Nfa product = sync_product(components);
    product_states = product.num_states();
    const Nfa abstract = reduced_image_nfa(product, h);
    abstract_states = abstract.num_states();
    benchmark::DoNotOptimize(abstract_states);
  }
  state.counters["product_states"] = static_cast<double>(product_states);
  state.counters["abstract_states"] = static_cast<double>(abstract_states);
}
BENCHMARK(BM_Compositional_Sequential)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMillisecond);

void BM_Compositional_OnTheFly(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto components = resource_server_components(n);
  const Homomorphism h =
      resource_server_abstraction(components.front().automaton.alphabet());
  std::size_t abstract_states = 0;
  std::size_t touched = 0;
  for (auto _ : state) {
    const OnTheFlyResult result = on_the_fly_abstraction(components, h);
    abstract_states = result.abstract.num_states();
    touched = result.configurations_touched;
    benchmark::DoNotOptimize(abstract_states);
  }
  state.counters["configs_touched"] = static_cast<double>(touched);
  state.counters["abstract_states"] = static_cast<double>(abstract_states);
}
BENCHMARK(BM_Compositional_OnTheFly)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMillisecond);

}  // namespace

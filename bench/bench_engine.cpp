// Experiment E21 (engine scaling): throughput of the concurrent query
// engine on a batch of 64 mixed rl/rs/sat queries against few systems —
// the shape of real verification traffic (many properties, few systems,
// some properties asked repeatedly). Three execution strategies:
//
//   BM_NoReuseBaseline — a fresh engine per query: what per-query rlv_check
//                        invocations cost (no sharing of any intermediate);
//   BM_EngineSequential— one engine, jobs=1: caching only;
//   BM_EngineJobs4     — one engine, jobs=4: caching + thread pool.
//
// Reported counters: queries_per_second, and cache_hit_rate =
// hits / (hits + misses) over all five engine caches. On repeated-system
// workloads the shared behaviors / pre(L_ω) / translation / verdict caches
// alone give well over 2x against the no-reuse baseline even on one core;
// the jobs=4 configuration additionally scales with available cores (it
// degrades to sequential-equivalent wall time on a single-core host).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "rlv/engine/engine.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/io/format.hpp"

namespace {

using namespace rlv;

/// 64 queries: two nontrivial systems, per-system property variants with
/// a realistic amount of repetition (clients re-asking hot properties).
std::vector<Query> engine_batch() {
  const std::vector<std::string> systems = {
      serialize_system(token_ring(12)),
      serialize_system(leader_election_system(3)),
  };
  const CheckKind kinds[] = {CheckKind::kRelativeLiveness,
                             CheckKind::kRelativeSafety,
                             CheckKind::kSatisfaction};
  std::vector<Query> batch;
  batch.reserve(64);
  for (std::size_t i = 0; i < 64; ++i) {
    const std::size_t s = i % systems.size();
    const std::size_t v = i / 2;
    std::string formula;
    if (s == 0) {
      formula = "G(pass_" + std::to_string(v % 12) + " -> F work_" +
                std::to_string((v + 1) % 12) + ")";
    } else {
      formula = "G(init_" + std::to_string(v % 3) + " -> F elected_" +
                std::to_string(v % 3) + ")";
    }
    batch.push_back(Query{systems[s], std::move(formula), kinds[v % 3]});
  }
  return batch;
}

void report_qps(benchmark::State& state, std::size_t batch_size) {
  state.counters["queries_per_second"] = benchmark::Counter(
      static_cast<double>(batch_size) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_NoReuseBaseline(benchmark::State& state) {
  const std::vector<Query> batch = engine_batch();
  for (auto _ : state) {
    for (const Query& query : batch) {
      Engine engine(EngineOptions{.jobs = 1});
      benchmark::DoNotOptimize(engine.run_one(query));
    }
  }
  report_qps(state, batch.size());
}

void run_batch(benchmark::State& state, std::size_t jobs) {
  const std::vector<Query> batch = engine_batch();
  double hit_rate = 0.0;
  for (auto _ : state) {
    // Fresh engine per iteration: cold-cache batch execution.
    Engine engine(EngineOptions{.jobs = jobs});
    auto verdicts = engine.run(batch);
    benchmark::DoNotOptimize(verdicts);
    const CacheCounters total = engine.stats().total();
    hit_rate = static_cast<double>(total.hits) /
               static_cast<double>(total.hits + total.misses);
  }
  report_qps(state, batch.size());
  state.counters["cache_hit_rate"] = hit_rate;
}

void BM_EngineSequential(benchmark::State& state) { run_batch(state, 1); }
void BM_EngineJobs4(benchmark::State& state) { run_batch(state, 4); }

// Guard overhead (experiment E22): the same cold-cache sequential batch
// with a generous budget armed — every state construction is charged and
// the deadline is polled (amortized 1/64 ticks), but nothing ever trips.
// Compare against BM_EngineSequential: the delta is the price of resource
// governance on the happy path; the acceptance bar is < 5%.
void BM_EngineSequentialBudgeted(benchmark::State& state) {
  const std::vector<Query> batch = engine_batch();
  for (auto _ : state) {
    Engine engine(EngineOptions{
        .jobs = 1, .timeout_ms = 3'600'000, .max_states = 1'000'000'000});
    auto verdicts = engine.run(batch);
    benchmark::DoNotOptimize(verdicts);
  }
  report_qps(state, batch.size());
}

// Warm-verdict rerun: every query hits the verdict cache — the upper bound
// the result cache buys on fully repeated traffic.
void BM_EngineWarmCache(benchmark::State& state) {
  const std::vector<Query> batch = engine_batch();
  Engine engine(EngineOptions{.jobs = 4});
  (void)engine.run(batch);  // warm every cache
  for (auto _ : state) {
    auto verdicts = engine.run(batch);
    benchmark::DoNotOptimize(verdicts);
  }
  report_qps(state, batch.size());
}

// Certification overhead (experiment E24): the same cached-batch workload
// with certify_verdicts on — each negative verdict's witness is revalidated
// by the independent certificate checker once before it enters the verdict
// cache; cache hits skip revalidation. Compare BM_EngineCertified against
// BM_EngineSequential and BM_EngineWarmCacheCertified against
// BM_EngineWarmCache: the acceptance bar is < 10% on the cached batch.
void BM_EngineCertified(benchmark::State& state) {
  const std::vector<Query> batch = engine_batch();
  for (auto _ : state) {
    Engine engine(EngineOptions{.jobs = 1, .certify_verdicts = true});
    auto verdicts = engine.run(batch);
    benchmark::DoNotOptimize(verdicts);
  }
  report_qps(state, batch.size());
}

void BM_EngineWarmCacheCertified(benchmark::State& state) {
  const std::vector<Query> batch = engine_batch();
  Engine engine(EngineOptions{.jobs = 4, .certify_verdicts = true});
  (void)engine.run(batch);  // warm every cache (certifying each miss once)
  for (auto _ : state) {
    auto verdicts = engine.run(batch);
    benchmark::DoNotOptimize(verdicts);
  }
  report_qps(state, batch.size());
}

BENCHMARK(BM_NoReuseBaseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineSequential)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineSequentialBudgeted)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineJobs4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineWarmCache)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineCertified)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineWarmCacheCertified)->Unit(benchmark::kMillisecond);

}  // namespace

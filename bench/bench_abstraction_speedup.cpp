// Experiment E10 — the paper's raison d'être: verifying the relative
// liveness property on the *abstraction* instead of the concrete system.
// Three measurements per system size:
//   (a) direct concrete check of R̄(η) on lim(L),
//   (b) abstract check of η on lim(h(L)) alone (what you pay per property
//       once the homomorphism is certified simple),
//   (c) the full pipeline including the one-off simplicity certification.
// The abstract check is property-count amortizable: one certification, many
// properties.

#include <benchmark/benchmark.h>

#include "rlv/core/preservation.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/petri/reachability.hpp"

namespace {

using namespace rlv;

struct Setup {
  Nfa system;
  Homomorphism h;
  Formula eta;
};

Setup make_setup(std::size_t n) {
  ReachabilityGraph graph = build_reachability_graph(resource_server_net(n));
  Homomorphism h = resource_server_abstraction(graph.system.alphabet());
  return {std::move(graph.system), std::move(h),
          to_pnf(parse_ltl("G F result_0"))};
}

void BM_Abstraction_DirectConcrete(benchmark::State& state) {
  const Setup setup = make_setup(static_cast<std::size_t>(state.range(0)));
  bool holds = false;
  for (auto _ : state) {
    holds = concrete_relative_liveness(setup.system, setup.h, setup.eta);
    benchmark::DoNotOptimize(holds);
  }
  state.counters["states"] = static_cast<double>(setup.system.num_states());
  state.counters["holds"] = holds ? 1 : 0;
}
BENCHMARK(BM_Abstraction_DirectConcrete)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

void BM_Abstraction_AbstractOnly(benchmark::State& state) {
  const Setup setup = make_setup(static_cast<std::size_t>(state.range(0)));
  bool holds = false;
  for (auto _ : state) {
    holds = abstract_relative_liveness(setup.system, setup.h, setup.eta);
    benchmark::DoNotOptimize(holds);
  }
  state.counters["states"] = static_cast<double>(setup.system.num_states());
  state.counters["holds"] = holds ? 1 : 0;
}
BENCHMARK(BM_Abstraction_AbstractOnly)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

void BM_Abstraction_PerPropertyAmortized(benchmark::State& state) {
  // The paper's intended usage: the abstraction (and its simplicity
  // certificate) are computed once per system; each additional property is
  // then checked on the tiny abstract automaton. This measures the
  // per-property cost on the precomputed abstraction.
  const Setup setup = make_setup(static_cast<std::size_t>(state.range(0)));
  const Nfa abstract = reduced_image_nfa(setup.system, setup.h);
  const Buchi abstract_behaviors = limit_of_prefix_closed(abstract);
  const Labeling lambda = Labeling::canonical(setup.h.target());
  bool holds = false;
  for (auto _ : state) {
    holds = relative_liveness(abstract_behaviors, setup.eta, lambda).holds;
    benchmark::DoNotOptimize(holds);
  }
  state.counters["states"] = static_cast<double>(setup.system.num_states());
  state.counters["abstract_states"] =
      static_cast<double>(abstract.num_states());
  state.counters["holds"] = holds ? 1 : 0;
}
BENCHMARK(BM_Abstraction_PerPropertyAmortized)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

void BM_Abstraction_FullPipeline(benchmark::State& state) {
  const Setup setup = make_setup(static_cast<std::size_t>(state.range(0)));
  bool concluded = false;
  std::size_t abstract_states = 0;
  for (auto _ : state) {
    const AbstractionVerdict verdict =
        verify_via_abstraction(setup.system, setup.h, setup.eta);
    concluded = verdict.concrete_holds.has_value();
    abstract_states = verdict.abstract_states;
    benchmark::DoNotOptimize(concluded);
  }
  state.counters["states"] = static_cast<double>(setup.system.num_states());
  state.counters["abstract_states"] = static_cast<double>(abstract_states);
  state.counters["concluded"] = concluded ? 1 : 0;
}
BENCHMARK(BM_Abstraction_FullPipeline)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Experiment E4 ablation: the NFA-inclusion engine behind Lemma 4.3 —
// antichain (De Wulf et al.) vs full subset construction, on (i) the
// classic exponential family L_n = (a|b)*·a·(a|b)^{n-1} whose DFA needs 2^n
// states, and (ii) random NFA pairs.

#include <benchmark/benchmark.h>

#include "rlv/gen/random.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/util/budget.hpp"
#include "rlv/util/rng.hpp"

namespace {

using namespace rlv;

/// NFA for (a|b)* a (a|b)^{n-1} ("n-th letter from the end is a").
Nfa nth_from_end(std::size_t n, const AlphabetRef& sigma) {
  Nfa nfa(sigma);
  const State s0 = nfa.add_state(false);
  nfa.add_transition(s0, 0, s0);
  nfa.add_transition(s0, 1, s0);
  State prev = nfa.add_state(n == 1);
  nfa.add_transition(s0, 0, prev);  // the distinguished 'a'
  for (std::size_t i = 1; i < n; ++i) {
    const State next = nfa.add_state(i + 1 == n);
    nfa.add_transition(prev, 0, next);
    nfa.add_transition(prev, 1, next);
    prev = next;
  }
  nfa.set_initial(s0);
  return nfa;
}

void BM_Inclusion_ExponentialFamily(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const InclusionAlgorithm algorithm = state.range(1) == 0
                                           ? InclusionAlgorithm::kAntichain
                                           : InclusionAlgorithm::kSubset;
  auto sigma = random_alphabet(2);
  const Nfa a = nth_from_end(n, sigma);
  const Nfa b = nth_from_end(n, sigma);

  bool included = false;
  for (auto _ : state) {
    included = is_included(a, b, algorithm);
    benchmark::DoNotOptimize(included);
  }
  state.counters["included"] = included ? 1 : 0;
}
BENCHMARK(BM_Inclusion_ExponentialFamily)
    // The subset construction at n = 16 takes ~3 minutes (measured once;
    // see EXPERIMENTS.md); the routine run caps it at n = 12 while the
    // antichain variant comfortably goes further.
    ->ArgsProduct({{4, 8, 12, 16, 20}, {0}})
    ->ArgsProduct({{4, 8, 12}, {1}})
    ->ArgNames({"n", "subset"})
    ->Unit(benchmark::kMillisecond);

void BM_Inclusion_RandomPairs(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const InclusionAlgorithm algorithm = state.range(1) == 0
                                           ? InclusionAlgorithm::kAntichain
                                           : InclusionAlgorithm::kSubset;
  Rng rng(42);
  auto sigma = random_alphabet(2);
  std::vector<std::pair<Nfa, Nfa>> pairs;
  for (int i = 0; i < 16; ++i) {
    pairs.emplace_back(random_nfa(rng, n, sigma), random_nfa(rng, n, sigma));
  }
  std::size_t yes = 0;
  for (auto _ : state) {
    for (const auto& [a, b] : pairs) {
      yes += is_included(a, b, algorithm) ? 1 : 0;
    }
  }
  benchmark::DoNotOptimize(yes);
}
BENCHMARK(BM_Inclusion_RandomPairs)
    ->ArgsProduct({{8, 16, 32}, {0, 1}})
    ->ArgNames({"states", "subset"})
    ->Unit(benchmark::kMillisecond);

// Experiment E27: the memory-architecture workload — dense random instances
// where the frontier is multi-word bitsets with most bits set, so the
// kernel's time goes to subset stepping, interning, and dedup rather than
// graph traversal. With `fanout` successors per (state, symbol) cell the
// subset images hover near 86% occupancy (the fixed point of
// k ↦ n(1 - e^{-fanout·k/n})), and the reachable-subset orbit is
// exponential, so each iteration explores a fixed budget of configurations
// instead of running to a verdict: the measured quantity is the cost of
// building + deduplicating 50k dense frontier configs.
Nfa dense_all_accepting(Rng& rng, std::size_t n, std::size_t fanout,
                        const AlphabetRef& sigma) {
  Nfa nfa(sigma);
  for (std::size_t i = 0; i < n; ++i) nfa.add_state(true);
  for (State s = 0; s < n; ++s) {
    for (Symbol a = 0; a < sigma->size(); ++a) {
      for (std::size_t k = 0; k < fanout; ++k) {
        nfa.add_transition_unique(s, a,
                                  static_cast<State>(rng.next_below(n)));
      }
    }
  }
  nfa.set_initial(0);
  return nfa;
}

void BM_Inclusion_DenseFrontier(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const InclusionAlgorithm algorithm = state.range(1) == 0
                                           ? InclusionAlgorithm::kAntichain
                                           : InclusionAlgorithm::kSubset;
  constexpr std::uint64_t kConfigBudget = 50000;
  Rng rng(7);
  auto sigma = random_alphabet(2);
  // a = Σ* (one accepting self-loop state): the search degenerates to a
  // pure dense subset construction over b.
  Nfa a(sigma);
  const State u = a.add_state(true);
  a.add_transition(u, 0, u);
  a.add_transition(u, 1, u);
  a.set_initial(u);
  const Nfa b = dense_all_accepting(rng, n, /*fanout=*/2, sigma);

  std::uint64_t configs = 0;
  for (auto _ : state) {
    Budget budget;
    budget.set_max_states(kConfigBudget);
    try {
      benchmark::DoNotOptimize(is_included(a, b, algorithm, &budget));
    } catch (const ResourceExhausted&) {
      // Expected: the orbit outruns the config budget by design.
    }
    configs += budget.states_used();
  }
  state.counters["configs/s"] = benchmark::Counter(
      static_cast<double>(configs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Inclusion_DenseFrontier)
    ->ArgsProduct({{64, 256, 1024}, {0, 1}})
    ->ArgNames({"states", "subset"})
    ->Unit(benchmark::kMillisecond);

// Experiment E23: the sharded work-stealing parallel inclusion search on
// the exponential family — wall-clock scaling over the thread count against
// the sequential baseline (threads = 1). The verdict is identical at every
// thread count; only the wall time may change.
void BM_InclusionParallel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  auto sigma = random_alphabet(2);
  const Nfa a = nth_from_end(n, sigma);
  const Nfa b = nth_from_end(n, sigma);

  bool included = false;
  for (auto _ : state) {
    included = is_included(a, b, InclusionAlgorithm::kAntichain, nullptr,
                           threads);
    benchmark::DoNotOptimize(included);
  }
  state.counters["included"] = included ? 1 : 0;
}
BENCHMARK(BM_InclusionParallel)
    ->ArgsProduct({{18, 20}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Experiment E4 ablation: the NFA-inclusion engine behind Lemma 4.3 —
// antichain (De Wulf et al.) vs full subset construction, on (i) the
// classic exponential family L_n = (a|b)*·a·(a|b)^{n-1} whose DFA needs 2^n
// states, and (ii) random NFA pairs.

#include <benchmark/benchmark.h>

#include "rlv/gen/random.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/util/rng.hpp"

namespace {

using namespace rlv;

/// NFA for (a|b)* a (a|b)^{n-1} ("n-th letter from the end is a").
Nfa nth_from_end(std::size_t n, const AlphabetRef& sigma) {
  Nfa nfa(sigma);
  const State s0 = nfa.add_state(false);
  nfa.add_transition(s0, 0, s0);
  nfa.add_transition(s0, 1, s0);
  State prev = nfa.add_state(n == 1);
  nfa.add_transition(s0, 0, prev);  // the distinguished 'a'
  for (std::size_t i = 1; i < n; ++i) {
    const State next = nfa.add_state(i + 1 == n);
    nfa.add_transition(prev, 0, next);
    nfa.add_transition(prev, 1, next);
    prev = next;
  }
  nfa.set_initial(s0);
  return nfa;
}

void BM_Inclusion_ExponentialFamily(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const InclusionAlgorithm algorithm = state.range(1) == 0
                                           ? InclusionAlgorithm::kAntichain
                                           : InclusionAlgorithm::kSubset;
  auto sigma = random_alphabet(2);
  const Nfa a = nth_from_end(n, sigma);
  const Nfa b = nth_from_end(n, sigma);

  bool included = false;
  for (auto _ : state) {
    included = is_included(a, b, algorithm);
    benchmark::DoNotOptimize(included);
  }
  state.counters["included"] = included ? 1 : 0;
}
BENCHMARK(BM_Inclusion_ExponentialFamily)
    // The subset construction at n = 16 takes ~3 minutes (measured once;
    // see EXPERIMENTS.md); the routine run caps it at n = 12 while the
    // antichain variant comfortably goes further.
    ->ArgsProduct({{4, 8, 12, 16, 20}, {0}})
    ->ArgsProduct({{4, 8, 12}, {1}})
    ->ArgNames({"n", "subset"})
    ->Unit(benchmark::kMillisecond);

void BM_Inclusion_RandomPairs(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const InclusionAlgorithm algorithm = state.range(1) == 0
                                           ? InclusionAlgorithm::kAntichain
                                           : InclusionAlgorithm::kSubset;
  Rng rng(42);
  auto sigma = random_alphabet(2);
  std::vector<std::pair<Nfa, Nfa>> pairs;
  for (int i = 0; i < 16; ++i) {
    pairs.emplace_back(random_nfa(rng, n, sigma), random_nfa(rng, n, sigma));
  }
  std::size_t yes = 0;
  for (auto _ : state) {
    for (const auto& [a, b] : pairs) {
      yes += is_included(a, b, algorithm) ? 1 : 0;
    }
  }
  benchmark::DoNotOptimize(yes);
}
BENCHMARK(BM_Inclusion_RandomPairs)
    ->ArgsProduct({{8, 16, 32}, {0, 1}})
    ->ArgNames({"states", "subset"})
    ->Unit(benchmark::kMillisecond);

// Experiment E23: the sharded work-stealing parallel inclusion search on
// the exponential family — wall-clock scaling over the thread count against
// the sequential baseline (threads = 1). The verdict is identical at every
// thread count; only the wall time may change.
void BM_InclusionParallel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  auto sigma = random_alphabet(2);
  const Nfa a = nth_from_end(n, sigma);
  const Nfa b = nth_from_end(n, sigma);

  bool included = false;
  for (auto _ : state) {
    included = is_included(a, b, InclusionAlgorithm::kAntichain, nullptr,
                           threads);
    benchmark::DoNotOptimize(included);
  }
  state.counters["included"] = included ? 1 : 0;
}
BENCHMARK(BM_InclusionParallel)
    ->ArgsProduct({{18, 20}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Experiment E13: LTL→Büchi translation (GPVW) — time and automaton sizes
// on standard formula families: nested G F, Until chains, and Next towers.

#include <benchmark/benchmark.h>

#include <string>

#include "rlv/gen/random.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/translate.hpp"

namespace {

using namespace rlv;

Labeling two_letter_labeling() {
  static AlphabetRef sigma = Alphabet::make({"a", "b"});
  return Labeling::canonical(sigma);
}

void BM_Translate_NestedGF(benchmark::State& state) {
  // Conjunctions of distinct G F obligations (distinct subterms — repeated
  // conjuncts would be deduplicated by hash-consing).
  const int k = static_cast<int>(state.range(0));
  static const char* kConjuncts[] = {"G F a", "G F b", "G F (a && X b)",
                                     "G F (b && X a)"};
  std::string text;
  for (int i = 0; i < k; ++i) {
    if (i) text += " && ";
    text += kConjuncts[i % 4];
  }
  const Formula f = parse_ltl(text);
  const Labeling lambda = two_letter_labeling();
  std::size_t states = 0;
  for (auto _ : state) {
    const Buchi automaton = translate_ltl(f, lambda);
    states = automaton.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["aut_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Translate_NestedGF)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

void BM_Translate_UntilChain(benchmark::State& state) {
  // a U (b U (a U ...)).
  const int k = static_cast<int>(state.range(0));
  std::string text;
  for (int i = 0; i < k; ++i) {
    text += (i % 2 == 0) ? "a U (" : "b U (";
  }
  text += "a";
  text += std::string(static_cast<std::size_t>(k), ')');
  const Formula f = parse_ltl(text);
  const Labeling lambda = two_letter_labeling();
  std::size_t states = 0;
  for (auto _ : state) {
    const Buchi automaton = translate_ltl(f, lambda);
    states = automaton.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["aut_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Translate_UntilChain)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

void BM_Translate_NextTower(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::string text;
  for (int i = 0; i < k; ++i) text += "X ";
  text += "a";
  const Formula f = parse_ltl(text);
  const Labeling lambda = two_letter_labeling();
  std::size_t states = 0;
  for (auto _ : state) {
    const Buchi automaton = translate_ltl(f, lambda);
    states = automaton.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["aut_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Translate_NextTower)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_Translate_TransformedRbar(benchmark::State& state) {
  // The formulas the preservation pipeline actually translates: R̄(G F p)
  // over a concrete alphabet with hidden letters — measures the overhead the
  // ε-rewiring adds.
  auto source = Alphabet::make({"p", "q", "t1", "t2"});
  std::vector<std::vector<std::string>> labels = {
      {"p"}, {"q"}, {"eps"}, {"eps"}};
  const Labeling lambda(source, labels);
  const Formula f = parse_ltl(
      "G(eps || (true U (!eps && (eps U (!eps && p)))))");
  std::size_t states = 0;
  for (auto _ : state) {
    const Buchi automaton = translate_ltl(f, lambda);
    states = automaton.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["aut_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Translate_TransformedRbar)->Unit(benchmark::kMillisecond);

}  // namespace

// Optimization-layer benchmarks: LTL simplification (rlv/ltl/simplify) and
// simulation-based Büchi reduction (rlv/omega/reduce) — how much smaller do
// the property automata get, at what cost, and what does that buy the
// downstream relative liveness check.

#include <benchmark/benchmark.h>

#include "rlv/core/relative.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/simplify.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/reduce.hpp"
#include "rlv/util/rng.hpp"

namespace {

using namespace rlv;

void BM_Reduce_RandomTranslations(benchmark::State& state) {
  Rng rng(17);
  auto sigma = random_alphabet(2);
  const Labeling lambda = Labeling::canonical(sigma);
  std::vector<Buchi> automata;
  for (int i = 0; i < 12; ++i) {
    const Formula f =
        random_formula(rng, {sigma->name(0), sigma->name(1)}, 4);
    automata.push_back(translate_ltl(to_pnf(f), lambda));
  }
  std::size_t before = 0;
  std::size_t after = 0;
  for (auto _ : state) {
    before = after = 0;
    for (const Buchi& a : automata) {
      before += a.num_states();
      after += reduce_buchi(a).num_states();
    }
    benchmark::DoNotOptimize(after);
  }
  state.counters["states_before"] = static_cast<double>(before);
  state.counters["states_after"] = static_cast<double>(after);
}
BENCHMARK(BM_Reduce_RandomTranslations)->Unit(benchmark::kMillisecond);

void BM_Simplify_RandomFormulas(benchmark::State& state) {
  Rng rng(23);
  std::vector<Formula> formulas;
  for (int i = 0; i < 64; ++i) {
    formulas.push_back(random_formula(rng, {"a", "b"}, 5));
  }
  std::size_t before = 0;
  std::size_t after = 0;
  for (auto _ : state) {
    before = after = 0;
    for (const Formula f : formulas) {
      before += to_pnf(f).size();
      after += simplify_ltl(f).size();
    }
    benchmark::DoNotOptimize(after);
  }
  state.counters["nodes_before"] = static_cast<double>(before);
  state.counters["nodes_after"] = static_cast<double>(after);
}
BENCHMARK(BM_Simplify_RandomFormulas)->Unit(benchmark::kMillisecond);

void BM_Reduce_EffectOnRelativeLiveness(benchmark::State& state) {
  // End-to-end: relative liveness of a redundant formula on the paper's
  // server, with and without the optimization layers.
  const bool optimized = state.range(0) != 0;
  const Nfa fig2 = figure2_system();
  const Buchi system = limit_of_prefix_closed(fig2);
  const Labeling lambda = Labeling::canonical(fig2.alphabet());
  // Deliberately redundant property text.
  const Formula f =
      parse_ltl("G G F F result && (G F result || G F result)");

  bool holds = false;
  for (auto _ : state) {
    const Formula prepared = optimized ? simplify_ltl(f) : to_pnf(f);
    Buchi property = translate_ltl(prepared, lambda);
    if (optimized) property = reduce_buchi(property);
    holds = relative_liveness(system, property).holds;
    benchmark::DoNotOptimize(holds);
  }
  state.counters["holds"] = holds ? 1 : 0;
}
BENCHMARK(BM_Reduce_EffectOnRelativeLiveness)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"optimized"})
    ->Unit(benchmark::kMicrosecond);

void BM_Fairness_WeakVsStrong(benchmark::State& state) {
  // Cost of the fair-satisfaction check under the two fairness notions
  // (the weak encoding has all-edges antecedents — different Streett
  // recursion behavior).
  const bool weak = state.range(0) != 0;
  const Nfa fig2 = figure2_system();
  const Buchi system = limit_of_prefix_closed(fig2);
  const Labeling lambda = Labeling::canonical(fig2.alphabet());
  const Formula f = parse_ltl("G F result");
  bool ok = false;
  for (auto _ : state) {
    ok = check_fair_satisfaction(system, f, lambda,
                                 weak ? FairnessKind::kWeakTransition
                                      : FairnessKind::kStrongTransition)
             .all_fair_runs_satisfy;
    benchmark::DoNotOptimize(ok);
  }
  state.counters["satisfied"] = ok ? 1 : 0;
}
BENCHMARK(BM_Fairness_WeakVsStrong)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"weak"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

// Experiments E15/E29: Petri-net reachability-graph construction (the
// Figure 1 → Figure 2 step) on the scalable families — the state-space
// generation cost that the behavior-abstraction technique is designed to
// avoid paying for every property — plus the budget-governed unfolder
// (interned markings, Stage::kPetriUnfold accounting) and the textual net
// format round-trip.

#include <benchmark/benchmark.h>

#include "rlv/gen/families.hpp"
#include "rlv/petri/format.hpp"
#include "rlv/petri/reachability.hpp"
#include "rlv/petri/scenario.hpp"
#include "rlv/util/budget.hpp"

namespace {

using namespace rlv;

void BM_Petri_ResourceServer(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const PetriNet net = resource_server_net(n);
  std::size_t states = 0;
  for (auto _ : state) {
    const ReachabilityGraph graph = build_reachability_graph(net);
    states = graph.system.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["graph_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Petri_ResourceServer)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMillisecond);

void BM_Petri_ProducerConsumer(benchmark::State& state) {
  const std::size_t cap = static_cast<std::size_t>(state.range(0));
  const PetriNet net = producer_consumer_net(cap);
  std::size_t states = 0;
  for (auto _ : state) {
    const ReachabilityGraph graph = build_reachability_graph(net);
    states = graph.system.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["graph_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Petri_ProducerConsumer)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_Petri_DiningPhilosophers(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const PetriNet net = dining_philosophers_net(n);
  std::size_t states = 0;
  std::size_t deadlocks = 0;
  for (auto _ : state) {
    const ReachabilityGraph graph = build_reachability_graph(net);
    states = graph.system.num_states();
    deadlocks = graph.deadlocks.size();
    benchmark::DoNotOptimize(states);
  }
  state.counters["graph_states"] = static_cast<double>(states);
  state.counters["deadlocks"] = static_cast<double>(deadlocks);
}
BENCHMARK(BM_Petri_DiningPhilosophers)
    ->DenseRange(2, 7)
    ->Unit(benchmark::kMillisecond);

void BM_Petri_PhilosophersBudgeted(benchmark::State& state) {
  // The governed unfold path (E29): a fresh Budget per iteration, charged
  // one state per interned marking under Stage::kPetriUnfold. The cap is
  // generous enough never to trip, so the delta against the ungoverned
  // DiningPhilosophers series is the pure governance overhead.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const PetriNet net = petri::philosophers_net(n).net;
  std::uint64_t charged = 0;
  std::uint64_t peak_memory = 0;
  for (auto _ : state) {
    Budget budget;
    budget.set_max_states(200000);
    const ReachabilityGraph graph = build_reachability_graph(net, {}, &budget);
    const StageMetrics& metrics = budget.profile()[Stage::kPetriUnfold];
    charged = metrics.states_built.load(std::memory_order_relaxed);
    peak_memory = metrics.peak_memory_bytes.load(std::memory_order_relaxed);
    benchmark::DoNotOptimize(graph.system.num_states());
  }
  state.counters["charged_states"] = static_cast<double>(charged);
  state.counters["peak_memory_bytes"] = static_cast<double>(peak_memory);
}
BENCHMARK(BM_Petri_PhilosophersBudgeted)
    ->DenseRange(2, 7)
    ->Unit(benchmark::kMillisecond);

void BM_Petri_NetFormatRoundTrip(benchmark::State& state) {
  // serialize_net + strict parse_net of the philosophers family — the cost
  // of moving a scenario through the textual `.pn` interchange format.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const petri::NetFile file = petri::philosophers_net(n);
  const std::string text = petri::serialize_net(file);
  std::size_t transitions = 0;
  for (auto _ : state) {
    const petri::NetFile parsed = petri::parse_net(text);
    transitions = parsed.net.num_transitions();
    benchmark::DoNotOptimize(transitions);
  }
  state.counters["bytes"] = static_cast<double>(text.size());
  state.counters["transitions"] = static_cast<double>(transitions);
}
BENCHMARK(BM_Petri_NetFormatRoundTrip)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_Petri_Figure1(benchmark::State& state) {
  const PetriNet net = figure1_net();
  std::size_t states = 0;
  for (auto _ : state) {
    const ReachabilityGraph graph = build_reachability_graph(net);
    states = graph.system.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["graph_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Petri_Figure1)->Unit(benchmark::kMicrosecond);

}  // namespace

// Experiment E15: Petri-net reachability-graph construction (the Figure 1 →
// Figure 2 step) on the scalable families — the state-space generation cost
// that the behavior-abstraction technique is designed to avoid paying for
// every property.

#include <benchmark/benchmark.h>

#include "rlv/gen/families.hpp"
#include "rlv/petri/reachability.hpp"

namespace {

using namespace rlv;

void BM_Petri_ResourceServer(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const PetriNet net = resource_server_net(n);
  std::size_t states = 0;
  for (auto _ : state) {
    const ReachabilityGraph graph = build_reachability_graph(net);
    states = graph.system.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["graph_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Petri_ResourceServer)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMillisecond);

void BM_Petri_ProducerConsumer(benchmark::State& state) {
  const std::size_t cap = static_cast<std::size_t>(state.range(0));
  const PetriNet net = producer_consumer_net(cap);
  std::size_t states = 0;
  for (auto _ : state) {
    const ReachabilityGraph graph = build_reachability_graph(net);
    states = graph.system.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["graph_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Petri_ProducerConsumer)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_Petri_DiningPhilosophers(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const PetriNet net = dining_philosophers_net(n);
  std::size_t states = 0;
  std::size_t deadlocks = 0;
  for (auto _ : state) {
    const ReachabilityGraph graph = build_reachability_graph(net);
    states = graph.system.num_states();
    deadlocks = graph.deadlocks.size();
    benchmark::DoNotOptimize(states);
  }
  state.counters["graph_states"] = static_cast<double>(states);
  state.counters["deadlocks"] = static_cast<double>(deadlocks);
}
BENCHMARK(BM_Petri_DiningPhilosophers)
    ->DenseRange(2, 7)
    ->Unit(benchmark::kMillisecond);

void BM_Petri_Figure1(benchmark::State& state) {
  const PetriNet net = figure1_net();
  std::size_t states = 0;
  for (auto _ : state) {
    const ReachabilityGraph graph = build_reachability_graph(net);
    states = graph.system.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["graph_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Petri_Figure1)->Unit(benchmark::kMicrosecond);

}  // namespace

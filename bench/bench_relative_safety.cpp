// Experiment E4 (Theorem 4.5), safety side: cost of the relative safety
// decision (Lemma 4.4: determinize the prefix automaton of L ∩ P, intersect
// with ¬P, emptiness) on the scalable server family, for a safety-flavored
// and a liveness-flavored property.

#include <benchmark/benchmark.h>

#include "rlv/core/relative.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/petri/reachability.hpp"

namespace {

using namespace rlv;

void BM_RelativeSafety_ResourceServer(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool liveness_flavor = state.range(1) != 0;
  const ReachabilityGraph graph =
      build_reachability_graph(resource_server_net(n));
  const Buchi system = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  const Formula f = liveness_flavor ? parse_ltl("G F result_0")
                                    : parse_ltl("G !yes_0");

  bool holds = false;
  for (auto _ : state) {
    holds = relative_safety(system, f, lambda).holds;
    benchmark::DoNotOptimize(holds);
  }
  state.counters["states"] = static_cast<double>(graph.system.num_states());
  state.counters["holds"] = holds ? 1 : 0;
}
BENCHMARK(BM_RelativeSafety_ResourceServer)
    ->ArgsProduct({{1, 2, 3}, {0, 1}})
    ->ArgNames({"clients", "liveness_flavor"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Experiment E4 (Theorem 4.5), safety side: cost of the relative safety
// decision (Lemma 4.4: determinize the prefix automaton of L ∩ P, intersect
// with ¬P, emptiness) on the scalable server family, for a safety-flavored
// and a liveness-flavored property.

#include <benchmark/benchmark.h>

#include "rlv/core/relative.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/emptiness.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/petri/reachability.hpp"

namespace {

using namespace rlv;

void BM_RelativeSafety_ResourceServer(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool liveness_flavor = state.range(1) != 0;
  const ReachabilityGraph graph =
      build_reachability_graph(resource_server_net(n));
  const Buchi system = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  const Formula f = liveness_flavor ? parse_ltl("G F result_0")
                                    : parse_ltl("G !yes_0");

  bool holds = false;
  for (auto _ : state) {
    holds = relative_safety(system, f, lambda).holds;
    benchmark::DoNotOptimize(holds);
  }
  state.counters["states"] = static_cast<double>(graph.system.num_states());
  state.counters["holds"] = holds ? 1 : 0;
}
BENCHMARK(BM_RelativeSafety_ResourceServer)
    ->ArgsProduct({{1, 2, 3}, {0, 1}})
    ->ArgNames({"clients", "liveness_flavor"})
    ->Unit(benchmark::kMillisecond);

// Experiment E23: on-the-fly vs materialized emptiness for the Lemma 4.4
// check L_ω ∩ lim(pre(L_ω ∩ P)) ∩ ¬P = ∅ on the scalable server family.
// lazy = 0 materializes the triple product and runs the SCC-based lasso
// search (the pre-PR code path, reconstructed inline); lazy = 1 runs the
// nested DFS over OnTheFlyProduct, paying only for visited states.
void BM_OnTheFlySafety(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool lazy = state.range(1) != 0;
  const ReachabilityGraph graph =
      build_reachability_graph(resource_server_net(n));
  const Buchi system = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  const Formula f = parse_ltl("G F result_0");
  const Buchi property = translate_ltl(f, lambda);
  const Buchi negated = translate_ltl_negated(f, lambda);
  const Buchi closure =
      limit_of_prefix_closed(prefix_nfa(intersect_buchi(system, property)));

  bool empty = false;
  for (auto _ : state) {
    if (lazy) {
      empty = !find_accepting_lasso_product({&system, &closure, &negated})
                   .has_value();
    } else {
      const Buchi bad =
          intersect_buchi(intersect_buchi(system, closure), negated);
      empty = !find_accepting_lasso(bad).has_value();
    }
    benchmark::DoNotOptimize(empty);
  }
  state.counters["states"] = static_cast<double>(graph.system.num_states());
  state.counters["holds"] = empty ? 1 : 0;
}
BENCHMARK(BM_OnTheFlySafety)
    ->ArgsProduct({{2, 3, 4}, {0, 1}})
    ->ArgNames({"clients", "lazy"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

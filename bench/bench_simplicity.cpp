// Experiment E14: deciding simplicity of an abstracting homomorphism
// (Definition 6.3) — the certification step that makes the Theorem 8.2
// transfer sound. Measured on the paper's systems and the scalable server.

#include <benchmark/benchmark.h>

#include "rlv/gen/families.hpp"
#include "rlv/hom/simplicity.hpp"
#include "rlv/petri/reachability.hpp"

namespace {

using namespace rlv;

void BM_Simplicity_Figure2(benchmark::State& state) {
  const Nfa fig2 = figure2_system();
  const Homomorphism h = paper_abstraction(fig2.alphabet());
  bool simple = false;
  for (auto _ : state) {
    simple = check_simplicity(fig2, h).simple;
    benchmark::DoNotOptimize(simple);
  }
  state.counters["simple"] = simple ? 1 : 0;
}
BENCHMARK(BM_Simplicity_Figure2)->Unit(benchmark::kMicrosecond);

void BM_Simplicity_Figure3(benchmark::State& state) {
  const Nfa fig3 = figure3_system();
  const Homomorphism h = paper_abstraction(fig3.alphabet());
  bool simple = true;
  for (auto _ : state) {
    simple = check_simplicity(fig3, h).simple;
    benchmark::DoNotOptimize(simple);
  }
  state.counters["simple"] = simple ? 1 : 0;
}
BENCHMARK(BM_Simplicity_Figure3)->Unit(benchmark::kMicrosecond);

void BM_Simplicity_ResourceServer(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ReachabilityGraph graph =
      build_reachability_graph(resource_server_net(n));
  const Homomorphism h = resource_server_abstraction(graph.system.alphabet());
  bool simple = false;
  std::size_t pairs = 0;
  for (auto _ : state) {
    const SimplicityResult res = check_simplicity(graph.system, h);
    simple = res.simple;
    pairs = res.pairs_checked;
    benchmark::DoNotOptimize(simple);
  }
  state.counters["states"] = static_cast<double>(graph.system.num_states());
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["simple"] = simple ? 1 : 0;
}
BENCHMARK(BM_Simplicity_ResourceServer)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

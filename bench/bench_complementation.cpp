// Experiment E11: rank-based Büchi complementation (Kupferman–Vardi) — the
// substrate needed when relative safety is checked against an
// automaton-given property. Documents the (expected) exponential growth and
// contrasts it with the formula route (translate ¬η), which the library
// prefers whenever a formula is available.

#include <benchmark/benchmark.h>

#include "rlv/gen/random.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/complement.hpp"
#include "rlv/util/rng.hpp"

namespace {

using namespace rlv;

void BM_Complement_RandomBuchi(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  auto sigma = random_alphabet(2);
  std::vector<Buchi> inputs;
  for (int i = 0; i < 4; ++i) inputs.push_back(random_buchi(rng, n, sigma));

  std::size_t total_states = 0;
  for (auto _ : state) {
    total_states = 0;
    for (const Buchi& a : inputs) {
      const Buchi comp = complement_buchi(a);
      total_states += comp.num_states();
    }
    benchmark::DoNotOptimize(total_states);
  }
  state.counters["avg_comp_states"] =
      static_cast<double>(total_states) / static_cast<double>(inputs.size());
}
BENCHMARK(BM_Complement_RandomBuchi)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond);

void BM_Complement_FormulaRouteInstead(benchmark::State& state) {
  // The same complement obtained as translate(¬η) for η = G F a: orders of
  // magnitude smaller than rank-complementing translate(η).
  auto sigma = Alphabet::make({"a", "b"});
  const Labeling lambda = Labeling::canonical(sigma);
  const Formula f = parse_ltl("G F a");
  std::size_t states = 0;
  for (auto _ : state) {
    const Buchi neg = translate_ltl_negated(f, lambda);
    states = neg.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["aut_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Complement_FormulaRouteInstead)->Unit(benchmark::kMicrosecond);

void BM_Complement_RankRouteOnGFa(benchmark::State& state) {
  auto sigma = Alphabet::make({"a", "b"});
  const Labeling lambda = Labeling::canonical(sigma);
  const Buchi pos = translate_ltl(parse_ltl("G F a"), lambda);
  std::size_t states = 0;
  for (auto _ : state) {
    const Buchi comp = complement_buchi(pos);
    states = comp.num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["aut_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Complement_RankRouteOnGFa)->Unit(benchmark::kMillisecond);

}  // namespace

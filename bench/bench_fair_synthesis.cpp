// Experiment E6 (Theorem 5.1): cost of synthesizing the fair implementation
// (reduced product, acceptance dropped) and of *validating* it — language
// equality plus the Streett-based check that all strongly fair runs satisfy
// the property.

#include <benchmark/benchmark.h>

#include "rlv/core/fair_synthesis.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/petri/reachability.hpp"

namespace {

using namespace rlv;

void BM_Synthesis_Construct(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ReachabilityGraph graph =
      build_reachability_graph(resource_server_net(n));
  const Buchi system = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  const Formula f = parse_ltl("G F result_0");

  std::size_t impl_states = 0;
  for (auto _ : state) {
    const FairImplementation impl =
        synthesize_fair_implementation(system, f, lambda);
    impl_states = impl.system.num_states();
    benchmark::DoNotOptimize(impl_states);
  }
  state.counters["system_states"] =
      static_cast<double>(graph.system.num_states());
  state.counters["impl_states"] = static_cast<double>(impl_states);
}
BENCHMARK(BM_Synthesis_Construct)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

void BM_Synthesis_ValidateLanguage(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ReachabilityGraph graph =
      build_reachability_graph(resource_server_net(n));
  const Buchi system = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  const FairImplementation impl = synthesize_fair_implementation(
      system, parse_ltl("G F result_0"), lambda);
  bool equal = false;
  for (auto _ : state) {
    equal = same_limit_closed_language(system, impl.system);
    benchmark::DoNotOptimize(equal);
  }
  state.counters["equal"] = equal ? 1 : 0;
}
BENCHMARK(BM_Synthesis_ValidateLanguage)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

void BM_Synthesis_ValidateFairness(benchmark::State& state) {
  // The Streett check is the expensive part: one fairness pair per product
  // edge. Sizes kept small on purpose.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ReachabilityGraph graph =
      build_reachability_graph(resource_server_net(n));
  const Buchi system = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  const Formula f = parse_ltl("G F result_0");
  const FairImplementation impl =
      synthesize_fair_implementation(system, f, lambda);
  bool ok = false;
  for (auto _ : state) {
    ok = check_fair_satisfaction(impl.system, f, lambda).all_fair_runs_satisfy;
    benchmark::DoNotOptimize(ok);
  }
  state.counters["impl_states"] =
      static_cast<double>(impl.system.num_states());
  state.counters["ok"] = ok ? 1 : 0;
}
BENCHMARK(BM_Synthesis_ValidateFairness)
    ->DenseRange(1, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Synthesis_TokenRing(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Nfa ring = token_ring(n);
  const Buchi system = limit_of_prefix_closed(ring);
  const Labeling lambda = Labeling::canonical(ring.alphabet());
  const Formula f = parse_ltl("G F work_0");
  std::size_t impl_states = 0;
  for (auto _ : state) {
    const FairImplementation impl =
        synthesize_fair_implementation(system, f, lambda);
    impl_states = impl.system.num_states();
    benchmark::DoNotOptimize(impl_states);
  }
  state.counters["impl_states"] = static_cast<double>(impl_states);
}
BENCHMARK(BM_Synthesis_TokenRing)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Runtime doom monitoring costs: one-off construction (product + two subset
// constructions) vs per-step cost (two table lookups) — the trade the
// monitor makes to be deployable on live traces — plus the BMC-style
// shortest-doomed-prefix search.

#include <benchmark/benchmark.h>

#include "rlv/core/monitor.hpp"
#include "rlv/fair/simulate.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/petri/reachability.hpp"

namespace {

using namespace rlv;

void BM_Monitor_Construction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ReachabilityGraph graph =
      build_reachability_graph(resource_server_net(n));
  const Buchi behaviors = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  const Formula f = parse_ltl("G F result_0");
  for (auto _ : state) {
    DoomMonitor monitor(behaviors, f, lambda);
    benchmark::DoNotOptimize(monitor.verdict());
  }
  state.counters["states"] = static_cast<double>(graph.system.num_states());
}
BENCHMARK(BM_Monitor_Construction)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

void BM_Monitor_StepThroughput(benchmark::State& state) {
  const ReachabilityGraph graph =
      build_reachability_graph(resource_server_net(2));
  const Buchi behaviors = limit_of_prefix_closed(graph.system);
  const Labeling lambda = Labeling::canonical(graph.system.alphabet());
  DoomMonitor monitor(behaviors, parse_ltl("G F result_0"), lambda);

  SimulationOptions options;
  options.steps = 4096;
  const Word trace = simulate_fair_run(graph.system, options);

  for (auto _ : state) {
    monitor.reset();
    for (const Symbol a : trace) {
      benchmark::DoNotOptimize(monitor.step(a));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_Monitor_StepThroughput)->Unit(benchmark::kMicrosecond);

void BM_Monitor_ShortestDoomSearch(benchmark::State& state) {
  const Nfa fig3 = figure3_system();
  const Buchi behaviors = limit_of_prefix_closed(fig3);
  const Labeling lambda = Labeling::canonical(fig3.alphabet());
  DoomMonitor monitor(behaviors, parse_ltl("G F result"), lambda);
  for (auto _ : state) {
    const auto doom = monitor.shortest_doomed_prefix();
    benchmark::DoNotOptimize(doom);
  }
}
BENCHMARK(BM_Monitor_ShortestDoomSearch)->Unit(benchmark::kMicrosecond);

}  // namespace

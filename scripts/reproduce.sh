#!/usr/bin/env bash
# Reproduces everything: build, test suite, all benchmarks, figure
# regeneration, and the example programs. Outputs land in the repo root
# (test_output.txt, bench_output.txt, figures/) mirroring EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt | tail -3

echo "== benchmarks =="
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt | grep -c '^BM_' || true

echo "== figures =="
mkdir -p figures
build/tools/rlv_figures figures

echo "== examples =="
for e in quickstart server_petri fair_implementation feature_interaction \
         doom_monitor alternating_bit mutual_exclusion; do
  echo "--- $e"
  "build/examples/$e"
done
build/examples/abstraction_pipeline 3

echo "done."

#!/usr/bin/env bash
# End-to-end serving smoke for the streaming monitor subsystem — the gate
# CI runs in the Release and asan+ubsan jobs. Starts a resident rlvd,
# drives the one-shot query workload and the streaming monitor workload
# (whose doom-assertion leg opens a figure-3 session with certify=true,
# streams the dooming trace, and fails unless the daemon answers
# doomed_index 3 with a certified witness), then SIGTERM-drains the daemon
# WHILE monitor sessions opened by this script have existed — the daemon
# must exit 0 by itself, never by timeout.
#
# usage: scripts/monitor_smoke.sh [port] [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-7423}"
BUILD="${2:-build}"

"$BUILD"/tools/rlvd --serve "$PORT" --jobs 2 --session-idle-timeout-ms 60000 &
SERVER=$!
trap 'kill -9 "$SERVER" 2>/dev/null || true' EXIT
sleep 1

echo "== one-shot query workload =="
"$BUILD"/tools/rlv_loadgen --port "$PORT" --connections 4 --requests 64

echo "== streaming monitor workload (incl. certified doom assertions) =="
OUT="$("$BUILD"/tools/rlv_loadgen --port "$PORT" --monitor \
       --sessions 8 --events 512 --batch 32 --stats)"
echo "$OUT"
# The doom-assertion leg already exits nonzero on a wrong verdict; assert
# here that the run was clean and that the daemon counted the doom.
echo "$OUT" | grep -q '"errors":0,"overloaded":0' \
  || { echo "monitor workload reported errors" >&2; exit 1; }
echo "$OUT" | grep -q '"dooms":1' \
  || { echo "daemon stats missing the certified doom" >&2; exit 1; }

echo "== SIGTERM drain =="
kill -TERM "$SERVER"
wait "$SERVER"
trap - EXIT
echo "monitor smoke: OK"

#!/usr/bin/env bash
# Regenerates the committed serving benchmarks: BENCH_net.json (the E25
# one-shot query workload) and BENCH_monitor.json (the E26 streaming
# monitor workload). Each file holds the loadgen summary line followed by
# the daemon's stats record for the same run, so throughput numbers can be
# read next to cache hit rates and session counters. Run on an otherwise
# idle machine; numbers move with core count.
#
# usage: scripts/bench_refresh.sh [port] [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-7424}"
BUILD="${2:-build}"

cmake --build "$BUILD" --target rlvd rlv_loadgen -j

"$BUILD"/tools/rlvd --serve "$PORT" --jobs 2 &
SERVER=$!
trap 'kill -9 "$SERVER" 2>/dev/null || true' EXIT
sleep 1

"$BUILD"/tools/rlv_loadgen --port "$PORT" \
  --connections 4 --requests 256 --stats > BENCH_net.json

"$BUILD"/tools/rlv_loadgen --port "$PORT" --monitor \
  --sessions 8 --events 2000 --batch 64 --stats > BENCH_monitor.json

kill -TERM "$SERVER"
wait "$SERVER"
trap - EXIT

echo "wrote BENCH_net.json, BENCH_monitor.json:"
head -c 400 BENCH_net.json; echo
head -c 400 BENCH_monitor.json; echo

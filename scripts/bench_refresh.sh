#!/usr/bin/env bash
# Regenerates the committed benchmarks:
#   * BENCH_net.json     — the E25 one-shot query workload, followed by the
#     E28 reactor saturation sweep (reactors=1,2,4 against fresh daemons);
#   * BENCH_monitor.json — the E26 streaming monitor workload;
#   * BENCH_engine.json  — the E27 kernel medians (bench_inclusion +
#     bench_engine, --benchmark_min_time=0.2, note: NO trailing "s" — the
#     packaged google-benchmark rejects the suffixed form);
#   * BENCH_petri.json   — the E15/E29 Petri-unfold medians (bench_petri:
#     scenario families, the budget-governed unfolder, and the `.pn`
#     format round-trip), with the unfolder's per-run counters
#     (graph_states, charged_states, peak_memory_bytes) carried through.
# The serving files hold the loadgen summary line followed by the daemon's
# stats record for the same run; the engine file holds per-benchmark median
# real times and, when BASELINE_INCLUSION/BASELINE_ENGINE point at JSON
# captures of an earlier build, the speedup against that baseline. Run on
# an otherwise idle machine with a Release build dir; numbers move with
# core count and with -O level.
#
# usage: [BASELINE_INCLUSION=old.json] [BASELINE_ENGINE=old.json] \
#          [BASELINE_PETRI=old.json] scripts/bench_refresh.sh [port] [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-7424}"
BUILD="${2:-build}"

cmake --build "$BUILD" --target rlvd rlv_loadgen -j

"$BUILD"/tools/rlvd --serve "$PORT" --jobs 2 &
SERVER=$!
trap 'kill -9 "$SERVER" 2>/dev/null || true' EXIT
sleep 1

"$BUILD"/tools/rlv_loadgen --port "$PORT" \
  --connections 4 --requests 256 --stats > BENCH_net.json

"$BUILD"/tools/rlv_loadgen --port "$PORT" --monitor \
  --sessions 8 --events 2000 --batch 64 --stats > BENCH_monitor.json

kill -TERM "$SERVER"
wait "$SERVER"
trap - EXIT

# E28 reactor saturation sweep: one warm measured leg per reactor count,
# each against a fresh daemon. Reactor scaling tracks physical cores — on
# a single-core host the sweep documents per-loop overhead, not speedup —
# so the record carries the core count for the reader to judge against.
SWEEP_TMP="$(mktemp)"
for R in 1 2 4; do
  "$BUILD"/tools/rlvd --serve "$PORT" --jobs 2 --reactors "$R" &
  SERVER=$!
  trap 'kill -9 "$SERVER" 2>/dev/null || true' EXIT
  sleep 1
  # Warm-up leg pays the verdict-cache misses; the measured leg is all-hit.
  "$BUILD"/tools/rlv_loadgen --port "$PORT" \
    --connections 8 --requests 64 > /dev/null
  printf '{"reactors":%s,"leg":' "$R" >> "$SWEEP_TMP"
  "$BUILD"/tools/rlv_loadgen --port "$PORT" \
    --connections 8 --requests 256 | tr -d '\n' >> "$SWEEP_TMP"
  printf '}\n' >> "$SWEEP_TMP"
  kill -TERM "$SERVER"
  wait "$SERVER"
  trap - EXIT
done
python3 - "$SWEEP_TMP" <<'PYEOF' >> BENCH_net.json
import json, os, sys
legs = []
for line in open(sys.argv[1]):
    if not line.strip():
        continue
    row = json.loads(line)
    legs.append({"reactors": row["reactors"], **row["leg"]["loadgen"]})
doc = {"reactor_sweep": {
    "cores": os.cpu_count(),
    "note": ("throughput scales with cores; on hosts with fewer cores "
             "than reactors the extra loops only add handoff overhead"),
    "legs": legs,
}}
print(json.dumps(doc))
PYEOF
rm -f "$SWEEP_TMP"

cmake --build "$BUILD" --target bench_inclusion bench_engine -j

"$BUILD"/bench/bench_inclusion --benchmark_min_time=0.2 \
  --benchmark_format=json > /tmp/rlv_bench_inclusion.json
"$BUILD"/bench/bench_engine --benchmark_min_time=0.2 \
  --benchmark_format=json > /tmp/rlv_bench_engine.json

python3 - <<'PYEOF' > BENCH_engine.json
import json, os

def medians(path):
    out = {}
    if not path or not os.path.exists(path):
        return out
    for b in json.load(open(path))["benchmarks"]:
        # With a single run per benchmark the iteration entry is the
        # median; with --benchmark_repetitions the aggregate row wins.
        if b.get("aggregate_name") not in (None, "median"):
            continue
        out[b["name"].removesuffix("_median")] = (b["real_time"],
                                                  b["time_unit"])
    return out

doc = {"schema": "rlv-bench-engine-v1", "min_time": 0.2, "suites": {}}
for suite, fresh, base_env in (
        ("bench_inclusion", "/tmp/rlv_bench_inclusion.json",
         "BASELINE_INCLUSION"),
        ("bench_engine", "/tmp/rlv_bench_engine.json", "BASELINE_ENGINE")):
    base = medians(os.environ.get(base_env, ""))
    rows = {}
    for name, (t, unit) in medians(fresh).items():
        row = {"real_time": round(t, 4), "time_unit": unit}
        if name in base and base[name][0] > 0:
            row["baseline_real_time"] = round(base[name][0], 4)
            row["speedup"] = round(base[name][0] / t, 2) if t > 0 else None
        rows[name] = row
    doc["suites"][suite] = rows
print(json.dumps(doc, indent=1))
PYEOF

cmake --build "$BUILD" --target bench_petri -j

"$BUILD"/bench/bench_petri --benchmark_min_time=0.2 \
  --benchmark_format=json > /tmp/rlv_bench_petri.json

python3 - <<'PYEOF' > BENCH_petri.json
import json, os

doc = {"schema": "rlv-bench-petri-v1", "min_time": 0.2, "benchmarks": {}}
base_path = os.environ.get("BASELINE_PETRI", "")
base = {}
if base_path and os.path.exists(base_path):
    for b in json.load(open(base_path))["benchmarks"]:
        if b.get("aggregate_name") in (None, "median"):
            base[b["name"].removesuffix("_median")] = b["real_time"]
for b in json.load(open("/tmp/rlv_bench_petri.json"))["benchmarks"]:
    if b.get("aggregate_name") not in (None, "median"):
        continue
    name = b["name"].removesuffix("_median")
    row = {"real_time": round(b["real_time"], 4),
           "time_unit": b["time_unit"]}
    # The unfolder's observability counters (graph_states, deadlocks,
    # charged_states, peak_memory_bytes, bytes, transitions).
    for key in ("graph_states", "deadlocks", "charged_states",
                "peak_memory_bytes", "bytes", "transitions"):
        if key in b:
            row[key] = int(b[key])
    if name in base and base[name] > 0 and b["real_time"] > 0:
        row["baseline_real_time"] = round(base[name], 4)
        row["speedup"] = round(base[name] / b["real_time"], 2)
    doc["benchmarks"][name] = row
print(json.dumps(doc, indent=1))
PYEOF

echo "wrote BENCH_net.json, BENCH_monitor.json, BENCH_engine.json, BENCH_petri.json:"
head -c 400 BENCH_net.json; echo
head -c 400 BENCH_monitor.json; echo
head -c 400 BENCH_engine.json; echo
head -c 400 BENCH_petri.json; echo

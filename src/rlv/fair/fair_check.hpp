#pragma once

// Model checking under strong fairness: does *every* strongly
// transition-fair run of a system satisfy a PLTL property? Decided by
// searching for a fair run of the system that is accepted by the automaton
// of ¬f — a Streett emptiness problem (fairness pairs lifted through the
// product, plus one Streett pair encoding the Büchi acceptance of ¬f).
//
// This is the validation oracle for Theorem 5.1: the synthesized
// implementation must pass check_fair_satisfaction for the property it was
// built from.

#include <optional>

#include "rlv/fair/fairness.hpp"
#include "rlv/ltl/ast.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/omega/emptiness.hpp"

namespace rlv {

struct FairCheckResult {
  bool all_fair_runs_satisfy = false;
  /// A strongly fair run violating the property, when one exists. The word
  /// is a lasso over the system alphabet.
  std::optional<Lasso> counterexample;
};

/// Does every fair infinite run of `system` (a transition system:
/// all-accepting Büchi automaton) satisfy f under λ? Fairness defaults to
/// the strong transition notion Theorem 5.1 relies on.
[[nodiscard]] FairCheckResult check_fair_satisfaction(
    const Buchi& system, Formula f, const Labeling& lambda,
    FairnessKind kind = FairnessKind::kStrongTransition);

/// Variant with the violating behavior given as a Büchi automaton for ¬P.
[[nodiscard]] FairCheckResult check_fair_satisfaction_negated(
    const Buchi& system, const Buchi& negated_property,
    FairnessKind kind = FairnessKind::kStrongTransition);

/// Process-fairness flavor: does every strongly process-fair run satisfy f?
/// Processes are given as action-name prefixes (see group_edges_by_prefix);
/// actions matching no prefix belong to no process and are unconstrained.
[[nodiscard]] FairCheckResult check_process_fair_satisfaction(
    const Buchi& system, Formula f, const Labeling& lambda,
    const std::vector<std::string>& process_prefixes);

}  // namespace rlv

#pragma once

// Randomized strongly-fair execution of a transition system. The scheduler
// picks, at each state, the out-transition taken least often so far (ties
// broken uniformly at random); along any infinite execution this makes
// every transition that is enabled infinitely often also taken infinitely
// often from states revisited forever — a practical strongly fair driver
// for demos and statistical tests of Theorem 5.1.

#include <cstdint>

#include "rlv/lang/nfa.hpp"

namespace rlv {

struct SimulationOptions {
  std::uint64_t seed = 1;
  std::size_t steps = 1000;
};

/// Generates a finite fair run (word of length <= steps; shorter only if a
/// dead-end state is reached). The structure is followed like a transition
/// system: acceptance flags are ignored.
[[nodiscard]] Word simulate_fair_run(const Nfa& structure,
                                     const SimulationOptions& options);

}  // namespace rlv

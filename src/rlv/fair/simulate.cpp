#include "rlv/fair/simulate.hpp"

#include <vector>

#include "rlv/util/rng.hpp"

namespace rlv {

Word simulate_fair_run(const Nfa& structure, const SimulationOptions& options) {
  Rng rng(options.seed);
  Word word;
  if (structure.initial().empty()) return word;

  const State start =
      structure.initial()[rng.next_below(structure.initial().size())];

  // Taken-count per (state, out-index).
  std::vector<std::vector<std::uint64_t>> taken(structure.num_states());
  for (State s = 0; s < structure.num_states(); ++s) {
    taken[s].assign(structure.out(s).size(), 0);
  }

  State at = start;
  for (std::size_t step = 0; step < options.steps; ++step) {
    const auto& out = structure.out(at);
    if (out.empty()) break;
    // Least-taken transition; ties broken randomly via reservoir sampling.
    std::size_t best = 0;
    std::size_t num_best = 1;
    for (std::size_t i = 1; i < out.size(); ++i) {
      if (taken[at][i] < taken[at][best]) {
        best = i;
        num_best = 1;
      } else if (taken[at][i] == taken[at][best]) {
        ++num_best;
        if (rng.next_below(num_best) == 0) best = i;
      }
    }
    ++taken[at][best];
    word.push_back(out[best].symbol);
    at = out[best].target;
  }
  return word;
}

}  // namespace rlv

#include "rlv/fair/fair_check.hpp"

#include <cassert>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rlv/ltl/translate.hpp"
#include "rlv/omega/streett.hpp"
#include "rlv/util/hash.hpp"

namespace rlv {

namespace {

struct EdgeInfo {
  std::uint32_t system_edge;    // flat id of the projected system edge
  bool neg_accepting_target;    // ¬P component enters an accepting state
};

/// Product of the system structure with the ¬P automaton, remembering for
/// every product edge which system edge it projects to and whether its
/// ¬P-target is accepting. `edge_info[s][i]` describes the i-th out-edge of
/// product state s, matching StreettAutomaton's flat edge numbering.
struct FairProduct {
  Nfa structure;
  std::vector<std::uint32_t> system_state;        // per product state
  std::vector<std::vector<EdgeInfo>> edge_info;   // per product state
};

FairProduct build_product(const Buchi& system, const Buchi& negated) {
  require_same_alphabet(system.alphabet(), negated.alphabet(),
                        "fair_check product");
  FairProduct product{Nfa(system.alphabet()), {}, {}};

  // Flat ids for the system's own edges.
  std::vector<std::uint32_t> sys_edge_offset(system.num_states() + 1, 0);
  for (State s = 0; s < system.num_states(); ++s) {
    sys_edge_offset[s + 1] =
        sys_edge_offset[s] + static_cast<std::uint32_t>(system.out(s).size());
  }

  std::unordered_map<std::pair<State, State>, State, PairHash> ids;
  std::vector<std::pair<State, State>> worklist;
  auto intern = [&](State p, State q) -> State {
    auto [it, inserted] = ids.emplace(std::make_pair(p, q), kNoState);
    if (inserted) {
      it->second = product.structure.add_state(true);
      product.system_state.push_back(p);
      product.edge_info.emplace_back();
      worklist.emplace_back(p, q);
    }
    return it->second;
  };

  for (const State p : system.initial()) {
    for (const State q : negated.initial()) {
      product.structure.set_initial(intern(p, q));
    }
  }
  while (!worklist.empty()) {
    const auto [p, q] = worklist.back();
    worklist.pop_back();
    const State from = ids.at({p, q});
    for (std::uint32_t i = 0; i < system.out(p).size(); ++i) {
      const Transition& ts = system.out(p)[i];
      for (const auto& tn : negated.out(q)) {
        if (ts.symbol != tn.symbol) continue;
        const State to = intern(ts.target, tn.target);
        product.structure.add_transition(from, ts.symbol, to);
        product.edge_info[from].push_back(
            {sys_edge_offset[p] + i, negated.is_accepting(tn.target)});
      }
    }
  }
  return product;
}

}  // namespace

FairCheckResult check_fair_satisfaction_negated(const Buchi& system,
                                                const Buchi& negated,
                                                FairnessKind kind) {
  const FairProduct product = build_product(system, negated);
  StreettAutomaton streett(product.structure);

  const std::size_t num_sys_edges = [&] {
    std::size_t n = 0;
    for (State s = 0; s < system.num_states(); ++s) n += system.out(s).size();
    return n;
  }();

  // Flatten the per-state edge info in StreettAutomaton's edge order.
  std::vector<EdgeInfo> flat_info;
  flat_info.reserve(streett.num_edges());
  for (State s = 0; s < product.structure.num_states(); ++s) {
    assert(product.edge_info[s].size() == product.structure.out(s).size());
    for (const EdgeInfo& info : product.edge_info[s]) {
      flat_info.push_back(info);
    }
  }
  assert(flat_info.size() == streett.num_edges());

  // Fairness pairs, lifted through the product (see fairness.hpp for the
  // underlying encodings). For each *system* edge e with source s:
  //   strong:  E = product edges whose source projects to s,
  //            F = product edges projecting to e;
  //   weak:    E = all product edges,
  //            F = (product edges whose source projects to a state ≠ s)
  //                ∪ (product edges projecting to e).
  std::vector<DynBitset> by_source(system.num_states(), streett.edge_set());
  std::vector<DynBitset> by_edge(num_sys_edges, streett.edge_set());
  DynBitset all_edges = streett.edge_set();
  for (EdgeId pe = 0; pe < streett.num_edges(); ++pe) {
    const State src = streett.edge_source(pe);
    by_source[product.system_state[src]].set(pe);
    by_edge[flat_info[pe].system_edge].set(pe);
    all_edges.set(pe);
  }
  {
    std::size_t flat = 0;
    for (State s = 0; s < system.num_states(); ++s) {
      for (std::uint32_t i = 0; i < system.out(s).size(); ++i, ++flat) {
        switch (kind) {
          case FairnessKind::kStrongTransition:
            streett.add_pair({by_source[s], by_edge[flat]});
            break;
          case FairnessKind::kWeakTransition: {
            DynBitset goal = all_edges;
            goal -= by_source[s];
            goal |= by_edge[flat];
            streett.add_pair({all_edges, std::move(goal)});
            break;
          }
        }
      }
    }
  }

  // Büchi acceptance of ¬P as a Streett pair: every infinite run triggers
  // the antecedent (all edges), so the goal (edges entering ¬P-accepting
  // states) must recur.
  {
    DynBitset all = streett.edge_set();
    DynBitset acc = streett.edge_set();
    for (EdgeId pe = 0; pe < streett.num_edges(); ++pe) {
      all.set(pe);
      if (flat_info[pe].neg_accepting_target) acc.set(pe);
    }
    streett.add_pair({std::move(all), std::move(acc)});
  }

  FairCheckResult result;
  auto lasso = find_fair_lasso(streett);
  result.all_fair_runs_satisfy = !lasso.has_value();
  result.counterexample = std::move(lasso);
  return result;
}

FairCheckResult check_fair_satisfaction(const Buchi& system, Formula f,
                                        const Labeling& lambda,
                                        FairnessKind kind) {
  return check_fair_satisfaction_negated(
      system, translate_ltl_negated(f, lambda), kind);
}

FairCheckResult check_process_fair_satisfaction(
    const Buchi& system, Formula f, const Labeling& lambda,
    const std::vector<std::string>& process_prefixes) {
  const Buchi negated = translate_ltl_negated(f, lambda);
  const FairProduct product = build_product(system, negated);
  StreettAutomaton streett(product.structure);

  std::vector<EdgeInfo> flat_info;
  flat_info.reserve(streett.num_edges());
  for (State s = 0; s < product.structure.num_states(); ++s) {
    for (const EdgeInfo& info : product.edge_info[s]) {
      flat_info.push_back(info);
    }
  }

  // Group *system* edges by prefix, then lift:
  //   E_P = product edges leaving states whose system component can take a
  //         P-edge (the process is enabled there),
  //   F_P = product edges projecting to a P-edge.
  const std::size_t k = process_prefixes.size();
  std::vector<std::vector<bool>> sys_edge_in_group(
      k, std::vector<bool>(0));
  std::vector<std::vector<bool>> sys_state_enables(
      k, std::vector<bool>(system.num_states(), false));
  {
    std::size_t num_sys_edges = 0;
    for (State s = 0; s < system.num_states(); ++s) {
      num_sys_edges += system.out(s).size();
    }
    for (auto& v : sys_edge_in_group) v.assign(num_sys_edges, false);
    std::size_t flat = 0;
    for (State s = 0; s < system.num_states(); ++s) {
      for (const auto& t : system.out(s)) {
        const std::string& action = system.alphabet()->name(t.symbol);
        for (std::size_t g = 0; g < k; ++g) {
          if (action.starts_with(process_prefixes[g])) {
            sys_edge_in_group[g][flat] = true;
            sys_state_enables[g][s] = true;
          }
        }
        ++flat;
      }
    }
  }

  for (std::size_t g = 0; g < k; ++g) {
    StreettPair pair{streett.edge_set(), streett.edge_set()};
    bool any = false;
    for (EdgeId pe = 0; pe < streett.num_edges(); ++pe) {
      const State src = streett.edge_source(pe);
      if (sys_state_enables[g][product.system_state[src]]) {
        pair.antecedent.set(pe);
      }
      if (sys_edge_in_group[g][flat_info[pe].system_edge]) {
        pair.goal.set(pe);
        any = true;
      }
    }
    if (any) streett.add_pair(std::move(pair));
  }

  // Büchi acceptance of ¬P as a Streett pair.
  {
    DynBitset all = streett.edge_set();
    DynBitset acc = streett.edge_set();
    for (EdgeId pe = 0; pe < streett.num_edges(); ++pe) {
      all.set(pe);
      if (flat_info[pe].neg_accepting_target) acc.set(pe);
    }
    streett.add_pair({std::move(all), std::move(acc)});
  }

  FairCheckResult result;
  auto lasso = find_fair_lasso(streett);
  result.all_fair_runs_satisfy = !lasso.has_value();
  result.counterexample = std::move(lasso);
  return result;
}

}  // namespace rlv

#include "rlv/fair/fairness.hpp"

#include <string>

namespace rlv {

void add_process_fairness_pairs(StreettAutomaton& automaton,
                                const std::vector<DynBitset>& process_edges) {
  const Nfa& nfa = automaton.structure();
  for (const DynBitset& group : process_edges) {
    if (group.none()) continue;
    // States where the process has an outgoing edge.
    DynBitset active_states(nfa.num_states());
    group.for_each([&](std::size_t e) {
      active_states.set(automaton.edge_source(static_cast<EdgeId>(e)));
    });
    StreettPair pair{automaton.edge_set(), group};
    active_states.for_each([&](std::size_t s) {
      for (EdgeId e = automaton.first_edge(static_cast<State>(s));
           e < automaton.first_edge(static_cast<State>(s) + 1); ++e) {
        pair.antecedent.set(e);
      }
    });
    automaton.add_pair(std::move(pair));
  }
}

std::vector<DynBitset> group_edges_by_prefix(
    const StreettAutomaton& automaton,
    const std::vector<std::string>& prefixes) {
  const Nfa& nfa = automaton.structure();
  std::vector<DynBitset> groups(prefixes.size(), automaton.edge_set());
  for (EdgeId e = 0; e < automaton.num_edges(); ++e) {
    const std::string& action = nfa.alphabet()->name(automaton.edge(e).symbol);
    for (std::size_t k = 0; k < prefixes.size(); ++k) {
      if (action.starts_with(prefixes[k])) groups[k].set(e);
    }
  }
  return groups;
}

void add_fairness_pairs(StreettAutomaton& automaton, FairnessKind kind) {
  const Nfa& nfa = automaton.structure();

  DynBitset all_edges = automaton.edge_set();
  for (EdgeId e = 0; e < automaton.num_edges(); ++e) all_edges.set(e);

  for (State s = 0; s < nfa.num_states(); ++s) {
    const EdgeId begin = automaton.first_edge(s);
    const EdgeId end = automaton.first_edge(s + 1);
    if (begin == end) continue;

    DynBitset from_s = automaton.edge_set();
    for (EdgeId e = begin; e < end; ++e) from_s.set(e);

    for (EdgeId e = begin; e < end; ++e) {
      StreettPair pair{automaton.edge_set(), automaton.edge_set()};
      switch (kind) {
        case FairnessKind::kStrongTransition:
          pair.antecedent = from_s;
          pair.goal.set(e);
          break;
        case FairnessKind::kWeakTransition:
          pair.antecedent = all_edges;
          pair.goal = all_edges;
          pair.goal -= from_s;
          pair.goal.set(e);
          break;
      }
      automaton.add_pair(std::move(pair));
    }
  }
}

void add_strong_fairness_pairs(StreettAutomaton& automaton) {
  add_fairness_pairs(automaton, FairnessKind::kStrongTransition);
}

StreettAutomaton make_fairness_streett(const Nfa& structure,
                                       FairnessKind kind) {
  StreettAutomaton automaton(structure);
  add_fairness_pairs(automaton, kind);
  return automaton;
}

StreettAutomaton strong_fairness_streett(const Nfa& structure) {
  return make_fairness_streett(structure, FairnessKind::kStrongTransition);
}

}  // namespace rlv

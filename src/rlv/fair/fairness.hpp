#pragma once

// Transition fairness as Streett conditions. The paper's introduction
// motivates relative liveness with the delicacy of choosing a fairness
// notion ("weakly or strongly fair, transition or process fair…"); this
// module provides the two transition-level notions so that difference can
// be demonstrated and measured.
//
// STRONG transition fairness: every transition enabled infinitely often is
// taken infinitely often. A transition is enabled exactly when the run sits
// at its source state s, so for each edge e = (s, a, s'):
//
//   E_e = all edges leaving s   (s is visited infinitely often)
//   F_e = { e }                 (e is taken infinitely often)
//
// WEAK transition fairness (justice): every transition *continuously*
// enabled from some point on is taken infinitely often. "Continuously
// enabled" means the run eventually never leaves s, so the requirement for
// e = (s, a, s') is: infinitely often leave s, or take e infinitely often —
// a plain Büchi condition, encoded as the Streett pair
//
//   E_e = all edges             (always triggered on infinite runs)
//   F_e = (edges not leaving s) ∪ { e }.
//
// Strongly fair runs are weakly fair; Theorem 5.1 needs the strong notion.

#include "rlv/lang/nfa.hpp"
#include "rlv/omega/streett.hpp"

namespace rlv {

enum class FairnessKind {
  kStrongTransition,
  kWeakTransition,
};

/// Streett automaton over `structure` whose accepting runs are exactly the
/// fair runs for the chosen notion.
[[nodiscard]] StreettAutomaton make_fairness_streett(
    const Nfa& structure, FairnessKind kind = FairnessKind::kStrongTransition);

/// Back-compat name for the strong notion.
[[nodiscard]] StreettAutomaton strong_fairness_streett(const Nfa& structure);

/// Adds the fairness pairs for the automaton's own structure to an existing
/// Streett automaton.
void add_fairness_pairs(StreettAutomaton& automaton, FairnessKind kind);
void add_strong_fairness_pairs(StreettAutomaton& automaton);

/// Strong *process* fairness: edges are partitioned (or grouped) into
/// processes; a process that is enabled infinitely often — the run visits
/// states with an outgoing process edge infinitely often — must act
/// (take one of its edges) infinitely often. One Streett pair per group:
///
///   E_P = all edges leaving states where P has an edge
///   F_P = the edges of P
///
/// Coarser than strong transition fairness (which is process fairness with
/// singleton groups): a process may satisfy it while starving one of its
/// own transitions.
void add_process_fairness_pairs(StreettAutomaton& automaton,
                                const std::vector<DynBitset>& process_edges);

/// Groups the automaton's edges by action-name prefix (e.g. one process per
/// "philosopher i" when actions are suffixed "_i"): edge belongs to group k
/// iff its action name starts with prefixes[k]. Edges matching no prefix
/// form no group.
[[nodiscard]] std::vector<DynBitset> group_edges_by_prefix(
    const StreettAutomaton& automaton,
    const std::vector<std::string>& prefixes);

}  // namespace rlv

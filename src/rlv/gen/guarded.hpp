#pragma once

// Guarded-command systems: finite-domain variables plus rules
// (guard, update, action label), unfolded into a labeled transition system
// by explicit-state exploration. This is the modeling front end for
// algorithms whose enabling conditions are predicates over shared state
// (e.g. Peterson's mutual exclusion, gen/families.hpp) — the kind of
// disjunctive guard that pure synchronized components cannot express
// directly.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "rlv/lang/nfa.hpp"

namespace rlv {

/// A valuation assigns each variable a value below its domain size.
using Valuation = std::vector<std::uint8_t>;

class GuardedSystem {
 public:
  using VarId = std::size_t;

  /// Declares a variable with domain {0 .. domain_size-1}.
  VarId add_variable(std::string_view name, std::uint8_t domain_size,
                     std::uint8_t initial_value = 0);

  /// Adds a rule: when `guard` holds, action `label` may fire, applying
  /// `update` to a copy of the valuation.
  void add_rule(std::string_view label,
                std::function<bool(const Valuation&)> guard,
                std::function<void(Valuation&)> update);

  [[nodiscard]] std::size_t num_variables() const { return names_.size(); }
  [[nodiscard]] const std::string& variable_name(VarId v) const {
    return names_[v];
  }

  struct BuildResult {
    /// Prefix-closed all-accepting transition system; state 0 is initial.
    Nfa system;
    /// The valuation of each state.
    std::vector<Valuation> valuations;
    /// False when `max_states` was hit.
    bool complete = true;
  };

  /// Unfolds the reachable state space.
  [[nodiscard]] BuildResult build(std::size_t max_states = 1u << 20) const;

 private:
  struct Rule {
    std::string label;
    std::function<bool(const Valuation&)> guard;
    std::function<void(Valuation&)> update;
  };

  std::vector<std::string> names_;
  std::vector<std::uint8_t> domains_;
  Valuation initial_;
  std::vector<Rule> rules_;
};

}  // namespace rlv

#include "rlv/gen/guarded.hpp"

#include <cassert>
#include <map>
#include <queue>

namespace rlv {

GuardedSystem::VarId GuardedSystem::add_variable(std::string_view name,
                                                 std::uint8_t domain_size,
                                                 std::uint8_t initial_value) {
  assert(initial_value < domain_size);
  const VarId v = names_.size();
  names_.emplace_back(name);
  domains_.push_back(domain_size);
  initial_.push_back(initial_value);
  return v;
}

void GuardedSystem::add_rule(std::string_view label,
                             std::function<bool(const Valuation&)> guard,
                             std::function<void(Valuation&)> update) {
  rules_.push_back({std::string(label), std::move(guard), std::move(update)});
}

GuardedSystem::BuildResult GuardedSystem::build(std::size_t max_states) const {
  auto sigma = std::make_shared<Alphabet>();
  std::vector<Symbol> rule_symbol;
  rule_symbol.reserve(rules_.size());
  for (const Rule& rule : rules_) {
    rule_symbol.push_back(sigma->intern(rule.label));
  }

  BuildResult result{Nfa(sigma), {}, true};
  std::map<Valuation, State> ids;
  std::queue<Valuation> worklist;

  auto intern = [&](const Valuation& v) -> State {
    auto it = ids.find(v);
    if (it != ids.end()) return it->second;
    if (result.valuations.size() >= max_states) {
      result.complete = false;
      return kNoState;
    }
    const State s = result.system.add_state(true);
    ids.emplace(v, s);
    result.valuations.push_back(v);
    worklist.push(v);
    return s;
  };

  const State start = intern(initial_);
  if (start != kNoState) result.system.set_initial(start);

  while (!worklist.empty()) {
    const Valuation v = std::move(worklist.front());
    worklist.pop();
    const State from = ids.at(v);
    for (std::size_t r = 0; r < rules_.size(); ++r) {
      if (!rules_[r].guard(v)) continue;
      Valuation next = v;
      rules_[r].update(next);
      for (std::size_t i = 0; i < next.size(); ++i) {
        assert(next[i] < domains_[i] && "update left the variable domain");
      }
      const State to = intern(next);
      if (to == kNoState) continue;
      result.system.add_transition(from, rule_symbol[r], to);
    }
  }
  return result;
}

}  // namespace rlv

#include "rlv/gen/random.hpp"

#include <string>

#include "rlv/lang/ops.hpp"

namespace rlv {

AlphabetRef random_alphabet(std::size_t size) {
  std::vector<std::string> names;
  names.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    names.push_back("a" + std::to_string(i));
  }
  return Alphabet::make(names);
}

Nfa random_transition_system(Rng& rng, std::size_t num_states,
                             AlphabetRef sigma) {
  Nfa nfa(sigma);
  for (std::size_t i = 0; i < num_states; ++i) nfa.add_state(true);
  for (State s = 0; s < num_states; ++s) {
    std::size_t out_degree = 0;
    for (Symbol a = 0; a < sigma->size(); ++a) {
      if (rng.chance(1, 2)) {
        nfa.add_transition(s, a, static_cast<State>(rng.next_below(num_states)));
        ++out_degree;
      }
    }
    if (out_degree == 0) {
      // Guarantee an infinite continuation from every state.
      nfa.add_transition(s, static_cast<Symbol>(rng.next_below(sigma->size())),
                         static_cast<State>(rng.next_below(num_states)));
    }
  }
  nfa.set_initial(0);
  return trim(nfa);
}

Buchi random_buchi(Rng& rng, std::size_t num_states, AlphabetRef sigma) {
  Buchi buchi(sigma);
  for (std::size_t i = 0; i < num_states; ++i) {
    buchi.add_state(rng.chance(1, 3));
  }
  for (State s = 0; s < num_states; ++s) {
    for (Symbol a = 0; a < sigma->size(); ++a) {
      const std::uint64_t fanout = rng.next_below(3);
      for (std::uint64_t k = 0; k < fanout; ++k) {
        buchi.structure().add_transition_unique(
            s, a, static_cast<State>(rng.next_below(num_states)));
      }
    }
  }
  buchi.set_initial(static_cast<State>(rng.next_below(num_states)));
  return buchi;
}

Nfa random_nfa(Rng& rng, std::size_t num_states, AlphabetRef sigma) {
  Nfa nfa(sigma);
  for (std::size_t i = 0; i < num_states; ++i) {
    nfa.add_state(rng.chance(1, 3));
  }
  for (State s = 0; s < num_states; ++s) {
    for (Symbol a = 0; a < sigma->size(); ++a) {
      const std::uint64_t fanout = rng.next_below(3);
      for (std::uint64_t k = 0; k < fanout; ++k) {
        nfa.add_transition_unique(
            s, a, static_cast<State>(rng.next_below(num_states)));
      }
    }
  }
  nfa.set_initial(static_cast<State>(rng.next_below(num_states)));
  return nfa;
}

Homomorphism random_homomorphism(Rng& rng, AlphabetRef source,
                                 std::size_t target_size,
                                 std::uint64_t hide_percent) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < target_size; ++i) {
    names.push_back("b" + std::to_string(i));
  }
  auto target = Alphabet::make(names);
  Homomorphism h(source, target);
  for (Symbol a = 0; a < source->size(); ++a) {
    if (rng.chance(hide_percent, 100)) continue;  // stays hidden
    h.rename(source->name(a), names[rng.next_below(target_size)]);
  }
  return h;
}

Formula random_formula(Rng& rng, const std::vector<std::string>& atoms,
                       std::size_t max_depth) {
  if (max_depth == 0 || rng.chance(1, 5)) {
    const std::uint64_t pick = rng.next_below(atoms.size() + 2);
    if (pick == atoms.size()) return f_true();
    if (pick == atoms.size() + 1) return f_false();
    return f_atom(atoms[pick]);
  }
  switch (rng.next_below(7)) {
    case 0:
      return f_not(random_formula(rng, atoms, max_depth - 1));
    case 1:
      return f_and(random_formula(rng, atoms, max_depth - 1),
                   random_formula(rng, atoms, max_depth - 1));
    case 2:
      return f_or(random_formula(rng, atoms, max_depth - 1),
                  random_formula(rng, atoms, max_depth - 1));
    case 3:
      return f_next(random_formula(rng, atoms, max_depth - 1));
    case 4:
      return f_until(random_formula(rng, atoms, max_depth - 1),
                     random_formula(rng, atoms, max_depth - 1));
    case 5:
      return f_release(random_formula(rng, atoms, max_depth - 1),
                       random_formula(rng, atoms, max_depth - 1));
    default:
      return f_eventually(random_formula(rng, atoms, max_depth - 1));
  }
}

petri::NetFile random_safe_net(Rng& rng, std::size_t max_components,
                               std::size_t max_places_per) {
  petri::NetFile file;
  file.name = "random_safe";
  PetriNet& net = file.net;
  const std::size_t comps = 1 + rng.next_below(max_components);
  std::vector<std::vector<PlaceId>> ring(comps);
  for (std::size_t c = 0; c < comps; ++c) {
    const std::size_t len = 2 + rng.next_below(max_places_per - 1);
    for (std::size_t j = 0; j < len; ++j) {
      const std::string name =
          "p" + std::to_string(c) + "_" + std::to_string(j);
      ring[c].push_back(net.add_place(name, j == 0 ? 1 : 0));
    }
  }
  std::vector<std::string> labels;
  const auto foreign_place = [&](std::size_t c) {
    std::size_t other = rng.next_below(comps - 1);
    if (other >= c) ++other;
    return ring[other][rng.next_below(ring[other].size())];
  };
  for (std::size_t c = 0; c < comps; ++c) {
    const std::size_t len = ring[c].size();
    for (std::size_t j = 0; j < len; ++j) {
      const std::string tag = std::to_string(c) + "_" + std::to_string(j);
      const TransId step = net.add_transition("s" + tag);
      net.add_input(step, ring[c][j]);
      net.add_output(step, ring[c][(j + 1) % len]);
      labels.push_back("s" + tag);
      if (comps > 1 && rng.chance(30, 100)) {
        net.add_read(step, foreign_place(c));
      }
      // Occasional chord: jump the token somewhere else in the same ring.
      if (rng.chance(25, 100)) {
        const TransId chord = net.add_transition("c" + tag);
        net.add_input(chord, ring[c][j]);
        net.add_output(chord, ring[c][rng.next_below(len)]);
        labels.push_back("c" + tag);
        if (comps > 1 && rng.chance(30, 100)) {
          net.add_read(chord, foreign_place(c));
        }
      }
    }
  }
  for (const std::string& label : labels) {
    if (rng.chance(40, 100)) file.hidden.push_back(label);
  }
  if (file.hidden.size() == labels.size()) file.hidden.pop_back();
  return file;
}

std::pair<Word, Word> random_lasso(Rng& rng, AlphabetRef sigma,
                                   std::size_t max_prefix,
                                   std::size_t max_period) {
  Word u;
  Word v;
  const std::size_t plen = rng.next_below(max_prefix + 1);
  const std::size_t vlen = 1 + rng.next_below(max_period);
  for (std::size_t i = 0; i < plen; ++i) {
    u.push_back(static_cast<Symbol>(rng.next_below(sigma->size())));
  }
  for (std::size_t i = 0; i < vlen; ++i) {
    v.push_back(static_cast<Symbol>(rng.next_below(sigma->size())));
  }
  return {std::move(u), std::move(v)};
}

}  // namespace rlv

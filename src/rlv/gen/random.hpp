#pragma once

// Random instance generators shared by the property-test suites and the
// benchmark harness: transition systems, Büchi automata, homomorphisms,
// PLTL formulas, and lasso words — all deterministic given the Rng seed.

#include <cstddef>
#include <string>
#include <vector>

#include "rlv/hom/homomorphism.hpp"
#include "rlv/lang/nfa.hpp"
#include "rlv/ltl/ast.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/petri/format.hpp"
#include "rlv/util/rng.hpp"

namespace rlv {

/// Fresh alphabet a0..a{size-1}.
[[nodiscard]] AlphabetRef random_alphabet(std::size_t size);

/// Prefix-closed, all-accepting, trimmed transition system in which every
/// state has at least one outgoing transition (so lim(L) has no dead ends
/// and L has no maximal words).
[[nodiscard]] Nfa random_transition_system(Rng& rng, std::size_t num_states,
                                           AlphabetRef sigma);

/// Random Büchi automaton (arbitrary acceptance; may be empty).
[[nodiscard]] Buchi random_buchi(Rng& rng, std::size_t num_states,
                                 AlphabetRef sigma);

/// Random NFA over `sigma`.
[[nodiscard]] Nfa random_nfa(Rng& rng, std::size_t num_states,
                             AlphabetRef sigma);

/// Random homomorphism from `source` onto a fresh target alphabet of
/// `target_size` letters; each source letter maps to a uniform target letter
/// or (with probability `hide_percent`/100) to ε.
[[nodiscard]] Homomorphism random_homomorphism(Rng& rng, AlphabetRef source,
                                               std::size_t target_size,
                                               std::uint64_t hide_percent);

/// Random PLTL formula over the given atom names, with `max_depth` operator
/// nesting.
[[nodiscard]] Formula random_formula(Rng& rng,
                                     const std::vector<std::string>& atoms,
                                     std::size_t max_depth);

/// Random 1-safe Petri net: up to `max_components` token-ring state
/// machines (each transition consumes one place of its ring and marks one,
/// so every ring carries exactly one token forever — 1-safety is by
/// construction), cross-coupled through read arcs into foreign rings.
/// Deadlocks are possible (a read on a place whose ring never marks it) and
/// intended. The annotation hides a random ~40% of the labels, always
/// keeping at least one visible.
[[nodiscard]] petri::NetFile random_safe_net(Rng& rng,
                                             std::size_t max_components,
                                             std::size_t max_places_per);

/// Random ultimately periodic word: prefix length in [0, max_prefix],
/// period length in [1, max_period].
[[nodiscard]] std::pair<Word, Word> random_lasso(Rng& rng, AlphabetRef sigma,
                                                 std::size_t max_prefix,
                                                 std::size_t max_period);

}  // namespace rlv

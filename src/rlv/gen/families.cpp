#include "rlv/gen/families.hpp"

#include <cassert>
#include <string>

#include "rlv/gen/guarded.hpp"
#include "rlv/petri/scenario.hpp"

namespace rlv {

PetriNet figure1_net() {
  PetriNet net;
  const PlaceId free_p = net.add_place("resource_free", 1);
  const PlaceId locked_p = net.add_place("resource_locked", 0);
  const PlaceId idle_p = net.add_place("server_idle", 1);
  const PlaceId got_p = net.add_place("got_request", 0);
  const PlaceId ok_p = net.add_place("answer_ok", 0);
  const PlaceId fail_p = net.add_place("answer_fail", 0);

  const TransId lock = net.add_transition("lock");
  net.add_input(lock, free_p);
  net.add_output(lock, locked_p);

  const TransId free_t = net.add_transition("free");
  net.add_input(free_t, locked_p);
  net.add_output(free_t, free_p);

  const TransId request = net.add_transition("request");
  net.add_input(request, idle_p);
  net.add_output(request, got_p);

  const TransId yes = net.add_transition("yes");
  net.add_input(yes, got_p);
  net.add_read(yes, free_p);
  net.add_output(yes, ok_p);

  const TransId no = net.add_transition("no");
  net.add_input(no, got_p);
  net.add_read(no, locked_p);
  net.add_output(no, fail_p);

  const TransId result = net.add_transition("result");
  net.add_input(result, ok_p);
  net.add_output(result, idle_p);

  const TransId reject = net.add_transition("reject");
  net.add_input(reject, fail_p);
  net.add_output(reject, idle_p);

  return net;
}

namespace {

/// Shared state layout of the Figure 2 / Figure 3 diagrams: resource
/// r ∈ {0 = free, 1 = locked} × server s ∈ {idle, got, ok, fail}.
enum ServerPhase : State { kIdle = 0, kGot = 1, kOk = 2, kFail = 3 };

State fig_state(State resource, State phase) { return resource * 4 + phase; }

AlphabetRef figure_alphabet() {
  return Alphabet::make(
      {"lock", "free", "request", "yes", "no", "result", "reject"});
}

}  // namespace

Nfa figure2_system() {
  auto sigma = figure_alphabet();
  Nfa nfa(sigma);
  for (int i = 0; i < 8; ++i) nfa.add_state(true);
  for (State r = 0; r < 2; ++r) {
    nfa.add_transition(fig_state(r, kIdle), sigma->id("request"),
                       fig_state(r, kGot));
    nfa.add_transition(fig_state(r, kOk), sigma->id("result"),
                       fig_state(r, kIdle));
    nfa.add_transition(fig_state(r, kFail), sigma->id("reject"),
                       fig_state(r, kIdle));
  }
  for (State phase = kIdle; phase <= kFail; ++phase) {
    nfa.add_transition(fig_state(0, phase), sigma->id("lock"),
                       fig_state(1, phase));
    nfa.add_transition(fig_state(1, phase), sigma->id("free"),
                       fig_state(0, phase));
  }
  nfa.add_transition(fig_state(0, kGot), sigma->id("yes"), fig_state(0, kOk));
  nfa.add_transition(fig_state(1, kGot), sigma->id("no"), fig_state(1, kFail));
  nfa.set_initial(fig_state(0, kIdle));
  return nfa;
}

Nfa figure3_system() {
  auto sigma = figure_alphabet();
  Nfa nfa(sigma);
  for (int i = 0; i < 8; ++i) nfa.add_state(true);
  for (State r = 0; r < 2; ++r) {
    nfa.add_transition(fig_state(r, kIdle), sigma->id("request"),
                       fig_state(r, kGot));
    nfa.add_transition(fig_state(r, kOk), sigma->id("result"),
                       fig_state(r, kIdle));
    nfa.add_transition(fig_state(r, kFail), sigma->id("reject"),
                       fig_state(r, kIdle));
  }
  for (State phase = kIdle; phase <= kFail; ++phase) {
    // The error: locking is possible, freeing is not.
    nfa.add_transition(fig_state(0, phase), sigma->id("lock"),
                       fig_state(1, phase));
  }
  nfa.add_transition(fig_state(0, kGot), sigma->id("yes"), fig_state(0, kOk));
  nfa.add_transition(fig_state(1, kGot), sigma->id("no"), fig_state(1, kFail));
  // The second difference: a request can be rejected even when the resource
  // is free.
  nfa.add_transition(fig_state(0, kGot), sigma->id("no"), fig_state(0, kFail));
  nfa.set_initial(fig_state(0, kIdle));
  return nfa;
}

Homomorphism paper_abstraction(AlphabetRef source) {
  return Homomorphism::projection(std::move(source),
                                  {"request", "result", "reject"});
}

Nfa figure4_expected(AlphabetRef target) {
  Nfa nfa(target);
  const State waiting = nfa.add_state(true);
  const State answering = nfa.add_state(true);
  nfa.add_transition(waiting, target->id("request"), answering);
  nfa.add_transition(answering, target->id("result"), waiting);
  nfa.add_transition(answering, target->id("reject"), waiting);
  nfa.set_initial(waiting);
  return nfa;
}

Nfa section5_ab_system() {
  auto sigma = Alphabet::make({"a", "b"});
  Nfa nfa(sigma);
  const State s = nfa.add_state(true);
  nfa.add_transition(s, sigma->id("a"), s);
  nfa.add_transition(s, sigma->id("b"), s);
  nfa.set_initial(s);
  return nfa;
}

PetriNet resource_server_net(std::size_t num_clients) {
  PetriNet net;
  const PlaceId free_p = net.add_place("resource_free", 1);
  const PlaceId locked_p = net.add_place("resource_locked", 0);

  const TransId lock = net.add_transition("lock");
  net.add_input(lock, free_p);
  net.add_output(lock, locked_p);
  const TransId free_t = net.add_transition("free");
  net.add_input(free_t, locked_p);
  net.add_output(free_t, free_p);

  for (std::size_t i = 0; i < num_clients; ++i) {
    const std::string suffix = "_" + std::to_string(i);
    const PlaceId idle_p = net.add_place("idle" + suffix, 1);
    const PlaceId got_p = net.add_place("got" + suffix, 0);
    const PlaceId ok_p = net.add_place("ok" + suffix, 0);
    const PlaceId fail_p = net.add_place("fail" + suffix, 0);

    const TransId request = net.add_transition("request" + suffix);
    net.add_input(request, idle_p);
    net.add_output(request, got_p);

    const TransId yes = net.add_transition("yes" + suffix);
    net.add_input(yes, got_p);
    net.add_read(yes, free_p);
    net.add_output(yes, ok_p);

    const TransId no = net.add_transition("no" + suffix);
    net.add_input(no, got_p);
    net.add_read(no, locked_p);
    net.add_output(no, fail_p);

    const TransId result = net.add_transition("result" + suffix);
    net.add_input(result, ok_p);
    net.add_output(result, idle_p);

    const TransId reject = net.add_transition("reject" + suffix);
    net.add_input(reject, fail_p);
    net.add_output(reject, idle_p);
  }
  return net;
}

Homomorphism resource_server_abstraction(AlphabetRef source) {
  return Homomorphism::projection(std::move(source),
                                  {"request_0", "result_0", "reject_0"});
}

PetriNet dining_philosophers_net(std::size_t num_philosophers) {
  return petri::philosophers_net(num_philosophers).net;
}

Nfa peterson_system() {
  GuardedSystem gs;
  // Program counters: idle=0, set=1, give_turn=2, wait=3, critical=4.
  enum : std::uint8_t { kIdle = 0, kSet, kGiveTurn, kWait, kCrit };
  const auto pc0 = gs.add_variable("pc0", 5, kIdle);
  const auto pc1 = gs.add_variable("pc1", 5, kIdle);
  const auto flag0 = gs.add_variable("flag0", 2, 0);
  const auto flag1 = gs.add_variable("flag1", 2, 0);
  const auto turn = gs.add_variable("turn", 2, 0);

  struct Proc {
    GuardedSystem::VarId pc, my_flag, other_flag;
    std::uint8_t other_id;
    const char* suffix;
  };
  const Proc procs[2] = {{pc0, flag0, flag1, 1, "_0"},
                         {pc1, flag1, flag0, 0, "_1"}};

  for (const Proc& p : procs) {
    const std::string suffix = p.suffix;
    gs.add_rule(
        "req" + suffix,
        [p](const Valuation& v) { return v[p.pc] == kIdle; },
        [p](Valuation& v) { v[p.pc] = kSet; });
    gs.add_rule(
        "setflag" + suffix,
        [p](const Valuation& v) { return v[p.pc] == kSet; },
        [p](Valuation& v) {
          v[p.my_flag] = 1;
          v[p.pc] = kGiveTurn;
        });
    gs.add_rule(
        "turn" + suffix,
        [p](const Valuation& v) { return v[p.pc] == kGiveTurn; },
        [p, turn](Valuation& v) {
          v[turn] = p.other_id;
          v[p.pc] = kWait;
        });
    gs.add_rule(
        "enter" + suffix,
        [p, turn](const Valuation& v) {
          const std::uint8_t me = static_cast<std::uint8_t>(1 - p.other_id);
          return v[p.pc] == kWait &&
                 (v[p.other_flag] == 0 || v[turn] == me);
        },
        [p](Valuation& v) { v[p.pc] = kCrit; });
    gs.add_rule(
        "exit" + suffix,
        [p](const Valuation& v) { return v[p.pc] == kCrit; },
        [p](Valuation& v) {
          v[p.my_flag] = 0;
          v[p.pc] = kIdle;
        });
  }

  GuardedSystem::BuildResult built = gs.build();
  assert(built.complete);
  // Sanity: mutual exclusion at the state level — never both critical.
  for ([[maybe_unused]] const Valuation& v : built.valuations) {
    assert(!(v[pc0] == kCrit && v[pc1] == kCrit));
  }
  return std::move(built.system);
}

Nfa leader_election_system(std::size_t num_processes) {
  assert(num_processes >= 2 && num_processes <= 8);
  GuardedSystem gs;
  const std::uint8_t n = static_cast<std::uint8_t>(num_processes);

  // ch[i]: id in transit on the link i -> (i+1)%n; value n = empty.
  // st[i]: 0 = idle, 1 = participating, 2 = leader.
  std::vector<GuardedSystem::VarId> ch(n);
  std::vector<GuardedSystem::VarId> st(n);
  for (std::uint8_t i = 0; i < n; ++i) {
    ch[i] = gs.add_variable("ch_" + std::to_string(i),
                            static_cast<std::uint8_t>(n + 1), n);
    st[i] = gs.add_variable("st_" + std::to_string(i), 3, 0);
  }

  // Environment heartbeat: always enabled, changes nothing. Keeps every
  // run extendable to an infinite one (protocol steps are one-shot; without
  // the tick the system would deadlock after quiescence and lim(L) would
  // collapse to the electing runs only).
  gs.add_rule(
      "tick", [](const Valuation&) { return true; }, [](Valuation&) {});

  for (std::uint8_t i = 0; i < n; ++i) {
    const std::string suffix = "_" + std::to_string(i);
    const std::uint8_t prev = static_cast<std::uint8_t>((i + n - 1) % n);
    const auto out_link = ch[i];
    const auto in_link = ch[prev];
    const auto my_state = st[i];

    // Initiate: announce own id on the outgoing link.
    gs.add_rule(
        "init" + suffix,
        [my_state, out_link, n](const Valuation& v) {
          return v[my_state] == 0 && v[out_link] == n;
        },
        [my_state, out_link, i](Valuation& v) {
          v[my_state] = 1;
          v[out_link] = i;
        });
    // Forward a larger id.
    gs.add_rule(
        "forward" + suffix,
        [in_link, out_link, i, n](const Valuation& v) {
          return v[in_link] != n && v[in_link] > i && v[out_link] == n;
        },
        [in_link, out_link, n](Valuation& v) {
          v[out_link] = v[in_link];
          v[in_link] = n;
        });
    // Discard a smaller id.
    gs.add_rule(
        "discard" + suffix,
        [in_link, i, n](const Valuation& v) {
          return v[in_link] != n && v[in_link] < i;
        },
        [in_link, n](Valuation& v) { v[in_link] = n; });
    // Own id returned: elected.
    gs.add_rule(
        "elected" + suffix,
        [in_link, my_state, i](const Valuation& v) {
          return v[in_link] == i && v[my_state] == 1;
        },
        [in_link, my_state, n](Valuation& v) {
          v[in_link] = n;
          v[my_state] = 2;
        });
  }

  GuardedSystem::BuildResult built = gs.build();
  assert(built.complete);
  return std::move(built.system);
}

std::vector<Component> alternating_bit_components() {
  auto sigma = Alphabet::make({"send0", "send1", "recv0", "recv1", "deliver",
                               "ack0", "ack1", "getack0", "getack1",
                               "lose_msg", "lose_ack"});
  std::vector<Component> components;

  // Sender: transmit the current bit (repeatedly, on timeout) until the
  // matching ack arrives; stale acks are ignored.
  {
    Nfa sender(sigma);
    const State try0 = sender.add_state(true);   // ready/retrying bit 0
    const State wait0 = sender.add_state(true);  // bit 0 in flight
    const State try1 = sender.add_state(true);
    const State wait1 = sender.add_state(true);
    sender.add_transition(try0, sigma->id("send0"), wait0);
    sender.add_transition(wait0, sigma->id("send0"), wait0);  // retransmit
    sender.add_transition(wait0, sigma->id("getack0"), try1);
    sender.add_transition(wait0, sigma->id("getack1"), wait0);  // stale
    sender.add_transition(try1, sigma->id("send1"), wait1);
    sender.add_transition(wait1, sigma->id("send1"), wait1);
    sender.add_transition(wait1, sigma->id("getack1"), try0);
    sender.add_transition(wait1, sigma->id("getack0"), wait1);  // stale
    sender.set_initial(try0);
    components.push_back(
        {std::move(sender),
         participation(sigma, {"send0", "send1", "getack0", "getack1"})});
  }

  // Message channel, capacity 1, lossy. A retransmission into a full
  // channel overwrites (same bit, so state is unchanged).
  {
    Nfa channel(sigma);
    const State empty = channel.add_state(true);
    const State full0 = channel.add_state(true);
    const State full1 = channel.add_state(true);
    channel.add_transition(empty, sigma->id("send0"), full0);
    channel.add_transition(empty, sigma->id("send1"), full1);
    channel.add_transition(full0, sigma->id("send0"), full0);
    channel.add_transition(full1, sigma->id("send1"), full1);
    channel.add_transition(full0, sigma->id("recv0"), empty);
    channel.add_transition(full1, sigma->id("recv1"), empty);
    channel.add_transition(full0, sigma->id("lose_msg"), empty);
    channel.add_transition(full1, sigma->id("lose_msg"), empty);
    channel.set_initial(empty);
    components.push_back(
        {std::move(channel),
         participation(sigma, {"send0", "send1", "recv0", "recv1",
                               "lose_msg"})});
  }

  // Receiver: deliver fresh messages, then ack; duplicates are re-acked
  // without delivering.
  {
    Nfa receiver(sigma);
    const State expect0 = receiver.add_state(true);
    const State got0 = receiver.add_state(true);
    const State acking0 = receiver.add_state(true);
    const State expect1 = receiver.add_state(true);
    const State got1 = receiver.add_state(true);
    const State acking1 = receiver.add_state(true);
    const State dup0 = receiver.add_state(true);  // duplicate bit-0 message
    const State dup1 = receiver.add_state(true);

    receiver.add_transition(expect0, sigma->id("recv0"), got0);
    receiver.add_transition(got0, sigma->id("deliver"), acking0);
    receiver.add_transition(acking0, sigma->id("ack0"), expect1);
    receiver.add_transition(expect1, sigma->id("recv0"), dup0);
    receiver.add_transition(dup0, sigma->id("ack0"), expect1);

    receiver.add_transition(expect1, sigma->id("recv1"), got1);
    receiver.add_transition(got1, sigma->id("deliver"), acking1);
    receiver.add_transition(acking1, sigma->id("ack1"), expect0);
    receiver.add_transition(expect0, sigma->id("recv1"), dup1);
    receiver.add_transition(dup1, sigma->id("ack1"), expect0);

    receiver.set_initial(expect0);
    components.push_back(
        {std::move(receiver),
         participation(sigma, {"recv0", "recv1", "deliver", "ack0", "ack1"})});
  }

  // Ack channel, capacity 1, lossy; re-acks overwrite.
  {
    Nfa ack_channel(sigma);
    const State empty = ack_channel.add_state(true);
    const State full0 = ack_channel.add_state(true);
    const State full1 = ack_channel.add_state(true);
    ack_channel.add_transition(empty, sigma->id("ack0"), full0);
    ack_channel.add_transition(empty, sigma->id("ack1"), full1);
    ack_channel.add_transition(full0, sigma->id("ack0"), full0);
    ack_channel.add_transition(full1, sigma->id("ack1"), full1);
    ack_channel.add_transition(full0, sigma->id("getack0"), empty);
    ack_channel.add_transition(full1, sigma->id("getack1"), empty);
    ack_channel.add_transition(full0, sigma->id("lose_ack"), empty);
    ack_channel.add_transition(full1, sigma->id("lose_ack"), empty);
    ack_channel.set_initial(empty);
    components.push_back(
        {std::move(ack_channel),
         participation(sigma, {"ack0", "ack1", "getack0", "getack1",
                               "lose_ack"})});
  }

  return components;
}

std::vector<Component> resource_server_components(std::size_t num_clients) {
  std::vector<std::string> names = {"lock", "free"};
  for (std::size_t i = 0; i < num_clients; ++i) {
    const std::string suffix = "_" + std::to_string(i);
    names.push_back("request" + suffix);
    names.push_back("yes" + suffix);
    names.push_back("no" + suffix);
    names.push_back("result" + suffix);
    names.push_back("reject" + suffix);
  }
  auto sigma = Alphabet::make(names);

  std::vector<Component> components;

  // Resource process: free/locked; yes_i requires (and keeps) free, no_i
  // requires (and keeps) locked — the read arcs of the net.
  {
    Nfa resource(sigma);
    const State free_s = resource.add_state(true);
    const State locked_s = resource.add_state(true);
    resource.add_transition(free_s, sigma->id("lock"), locked_s);
    resource.add_transition(locked_s, sigma->id("free"), free_s);
    std::vector<std::string> involved = {"lock", "free"};
    for (std::size_t i = 0; i < num_clients; ++i) {
      const std::string suffix = "_" + std::to_string(i);
      resource.add_transition(free_s, sigma->id("yes" + suffix), free_s);
      resource.add_transition(locked_s, sigma->id("no" + suffix), locked_s);
      involved.push_back("yes" + suffix);
      involved.push_back("no" + suffix);
    }
    resource.set_initial(free_s);
    components.push_back({std::move(resource), participation(sigma, involved)});
  }

  for (std::size_t i = 0; i < num_clients; ++i) {
    const std::string suffix = "_" + std::to_string(i);
    Nfa client(sigma);
    const State idle = client.add_state(true);
    const State got = client.add_state(true);
    const State ok = client.add_state(true);
    const State fail = client.add_state(true);
    client.add_transition(idle, sigma->id("request" + suffix), got);
    client.add_transition(got, sigma->id("yes" + suffix), ok);
    client.add_transition(got, sigma->id("no" + suffix), fail);
    client.add_transition(ok, sigma->id("result" + suffix), idle);
    client.add_transition(fail, sigma->id("reject" + suffix), idle);
    client.set_initial(idle);
    components.push_back(
        {std::move(client),
         participation(sigma, {"request" + suffix, "yes" + suffix,
                               "no" + suffix, "result" + suffix,
                               "reject" + suffix})});
  }
  return components;
}

Nfa token_ring(std::size_t num_stations) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < num_stations; ++i) {
    names.push_back("work_" + std::to_string(i));
    names.push_back("pass_" + std::to_string(i));
  }
  auto sigma = Alphabet::make(names);
  Nfa nfa(sigma);
  for (std::size_t i = 0; i < num_stations; ++i) nfa.add_state(true);
  for (std::size_t i = 0; i < num_stations; ++i) {
    const State s = static_cast<State>(i);
    const State next = static_cast<State>((i + 1) % num_stations);
    nfa.add_transition(s, sigma->id("work_" + std::to_string(i)), s);
    nfa.add_transition(s, sigma->id("pass_" + std::to_string(i)), next);
  }
  nfa.set_initial(0);
  return nfa;
}

PetriNet producer_consumer_net(std::size_t capacity) {
  return petri::bounded_buffer_net(capacity).net;
}

}  // namespace rlv

#pragma once

// The paper's example systems (Figures 1–4, Section 5) and parametric
// scalable families used by the benchmark harness (experiments E4, E6, E10,
// E15 in DESIGN.md).

#include <cstddef>

#include "rlv/comp/sync.hpp"
#include "rlv/hom/homomorphism.hpp"
#include "rlv/lang/nfa.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/petri/net.hpp"

namespace rlv {

// ---------------------------------------------------------------------------
// Paper examples.

/// The Figure 1 Petri net: a server that, after a request, answers `result`
/// or `reject` depending on whether the managed resource is free or locked;
/// the environment may lock/free the resource at any time.
[[nodiscard]] PetriNet figure1_net();

/// The Figure 2 transition system (reachability graph of figure1_net):
/// prefix-closed, all-accepting. Alphabet: lock, free, request, yes, no,
/// result, reject.
[[nodiscard]] Nfa figure2_system();

/// The Figure 3 transition system: the erroneous server — once locked the
/// resource can never be freed, and a request may be rejected even when the
/// resource is free. Same alphabet as figure2_system (the unused `free`
/// action keeps the two systems comparable under one homomorphism).
[[nodiscard]] Nfa figure3_system();

/// The abstracting homomorphism of Section 2: keep request/result/reject,
/// hide everything else. `source` must be the alphabet of figure2_system()
/// or figure3_system().
[[nodiscard]] Homomorphism paper_abstraction(AlphabetRef source);

/// The expected Figure 4 abstract system: request then result-or-reject,
/// looping. Over the target alphabet of paper_abstraction().
[[nodiscard]] Nfa figure4_expected(AlphabetRef target);

/// The Section 5 example: the one-state system with behaviors {a,b}^ω.
[[nodiscard]] Nfa section5_ab_system();

// ---------------------------------------------------------------------------
// Scalable families.

/// n-client generalization of Figure 1: one shared resource, n clients
/// issuing request_i answered with result_i/reject_i; the environment
/// locks/frees the resource. Reachability-graph size grows as 2·4^n.
[[nodiscard]] PetriNet resource_server_net(std::size_t num_clients);

/// Abstraction for resource_server_net: keep request_i/result_i/reject_i of
/// client 0 only; hide all other actions.
[[nodiscard]] Homomorphism resource_server_abstraction(AlphabetRef source);

/// The same n-client server as synchronized components (one resource
/// process plus n client processes) for the compositional pipeline; the
/// sync_product of these components equals the reachability graph of
/// resource_server_net(n) up to alphabet identity.
[[nodiscard]] std::vector<Component> resource_server_components(
    std::size_t num_clients);

/// Token ring of n stations: station i passes the token (pass_i) or works
/// (work_i) while holding it. Prefix-closed transition system with n states
/// per token position.
[[nodiscard]] Nfa token_ring(std::size_t num_stations);

/// Bounded producer/consumer chain: produce / consume with a buffer of the
/// given capacity, plus an `idle` self-loop (Petri net).
[[nodiscard]] PetriNet producer_consumer_net(std::size_t capacity);

/// Dining philosophers (the deadlocking left-then-right protocol):
/// hungry_i, left_i, right_i, eat_i, done_i per philosopher. The all-left
/// deadlock is reachable for n >= 2, so the behavior language has maximal
/// words — the situation the paper's #-extension ([20], after Corollary
/// 8.4) exists for; see extend_maximal_words().
[[nodiscard]] PetriNet dining_philosophers_net(std::size_t num_philosophers);

/// Alternating-bit protocol over lossy capacity-1 channels, as four
/// synchronized components (sender, message channel, receiver, ack
/// channel). Actions: send0/1, recv0/1, deliver, ack0/1, getack0/1,
/// lose_msg, lose_ack. The protocol's liveness (□◇deliver) is the
/// archetypal property that is false outright (the channel may lose every
/// message) but true under fairness — i.e. a relative liveness property.
[[nodiscard]] std::vector<Component> alternating_bit_components();

/// Peterson's two-process mutual exclusion as a guarded-command system
/// (gen/guarded.hpp). Actions per process i: req_i, setflag_i, turn_i,
/// enter_i, exit_i. Mutual exclusion holds outright; starvation freedom
/// G(req_i → ◇enter_i) needs fairness and is a relative liveness property.
[[nodiscard]] Nfa peterson_system();

/// Chang–Roberts leader election on a unidirectional ring of n processes
/// with distinct ids (capacity-1 links). Actions: init_i (process i sends
/// its id), forward_i (i passes on a larger id), discard_i (i drops a
/// smaller id), elected_i (i sees its own id return). Only the maximum id
/// can ever be elected (safety, holds outright); that it eventually is
/// elected is a relative liveness property realized under fairness.
[[nodiscard]] Nfa leader_election_system(std::size_t num_processes);

}  // namespace rlv

#pragma once

// Textual interchange format for transition systems and abstracting
// homomorphisms, plus GraphViz (DOT) export for rendering the paper's
// figures. Used by the rlv_check command-line tool and by downstream users
// who want to define systems without writing C++.
//
// System format (line oriented; '#' starts a comment):
//
//   alphabet: lock free request yes no result reject
//   states: 8
//   initial: 0
//   accepting: all            # or an explicit id list, for Büchi use
//   0 request 1               # transitions: <from> <action> <to>
//   1 yes 2
//
// Homomorphism format (relative to a source alphabet provided by the
// caller):
//
//   target: request result reject
//   map: request -> request   # rename
//   hide: lock free yes no    # map to ε (unlisted letters default to ε)

#include <stdexcept>
#include <string>
#include <string_view>

#include "rlv/hom/homomorphism.hpp"
#include "rlv/lang/nfa.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/petri/net.hpp"

namespace rlv {

class IoError : public std::runtime_error {
 public:
  IoError(const std::string& message, std::size_t line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
        line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses the system format. Throws IoError on malformed input.
[[nodiscard]] Nfa parse_system(std::string_view text);

/// Serializes an automaton back into the system format (round-trips with
/// parse_system up to comments and ordering).
[[nodiscard]] std::string serialize_system(const Nfa& nfa);

/// Parses the homomorphism format against the given source alphabet.
[[nodiscard]] Homomorphism parse_homomorphism(std::string_view text,
                                              AlphabetRef source);

/// Büchi flavor of the system format: same syntax, with `accepting:`
/// interpreted as the Büchi acceptance set.
[[nodiscard]] Buchi parse_buchi(std::string_view text);
[[nodiscard]] std::string serialize_buchi(const Buchi& buchi);

/// Human-readable annotated trace: follows `word` through the automaton
/// and prints, per step, the action and the set of states the runs can be
/// in; reports where (if anywhere) the word leaves the language of
/// prefixes. For a Lasso, the period is unrolled twice and marked.
[[nodiscard]] std::string explain_word(const Nfa& system, const Word& word);
[[nodiscard]] std::string explain_lasso(const Nfa& system, const Word& prefix,
                                        const Word& period);

/// GraphViz rendering: accepting states as double circles, the initial
/// state marked with an inbound arrow — matching the paper's diagrams
/// (shaded initial state).
[[nodiscard]] std::string to_dot(const Nfa& nfa, std::string_view name = "G");
[[nodiscard]] std::string to_dot(const Buchi& buchi,
                                 std::string_view name = "G");

/// Petri-net rendering: places as circles (token count inside), transitions
/// as boxes, read arcs dashed — the Figure 1 style.
[[nodiscard]] std::string to_dot(const PetriNet& net,
                                 std::string_view name = "N");

/// Hanoi Omega-Automata (HOA v1) export of a Büchi automaton, for interop
/// with external ω-automata tools. Each alphabet letter becomes one atomic
/// proposition; a transition on letter i is labeled with the exactly-one
/// cube (i & !j & ... for all j ≠ i).
[[nodiscard]] std::string to_hoa(const Buchi& buchi,
                                 std::string_view name = "rlv");

/// Reads a whole file; throws std::runtime_error when unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

/// Drops one trailing '\r' — the normalization every line-oriented reader
/// must apply after splitting CRLF input on '\n'. Network clients and
/// Windows-edited batch files terminate lines with "\r\n"; the rlvd batch
/// reader and the rlv::net protocol both chomp through this one helper so
/// the two front ends can never diverge on line endings.
[[nodiscard]] std::string_view strip_cr(std::string_view line);

/// JSON string escaping (quotes, backslashes, and control characters per
/// RFC 8259). Every string a tool emits inside JSON — file paths, formulas,
/// witness words, error messages — must go through this: paths and error
/// texts are attacker-influenced in a service setting.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace rlv

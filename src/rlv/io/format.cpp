#include "rlv/io/format.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace rlv {

namespace {

/// Splits a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

/// Iterates lines with 1-based numbering.
template <typename Fn>
void for_each_line(std::string_view text, Fn&& fn) {
  std::size_t line_number = 1;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    fn(text.substr(start, end - start), line_number);
    ++line_number;
    start = end + 1;
  }
}

std::uint32_t parse_number(const std::string& token, std::size_t line) {
  try {
    std::size_t pos = 0;
    const unsigned long value = std::stoul(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return static_cast<std::uint32_t>(value);
  } catch (const std::exception&) {
    throw IoError("expected a number, got '" + token + "'", line);
  }
}

}  // namespace

Nfa parse_system(std::string_view text) {
  std::shared_ptr<Alphabet> sigma;
  std::size_t num_states = 0;
  bool have_states = false;
  std::vector<State> initial;
  std::vector<State> accepting;
  bool accepting_all = false;
  bool have_accepting = false;
  struct RawTransition {
    State from;
    std::string action;
    State to;
    std::size_t line;
  };
  std::vector<RawTransition> transitions;

  for_each_line(text, [&](std::string_view line, std::size_t line_number) {
    const auto tokens = tokenize(line);
    if (tokens.empty()) return;
    if (tokens[0] == "alphabet:") {
      if (sigma) throw IoError("duplicate alphabet", line_number);
      sigma = std::make_shared<Alphabet>();
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        sigma->intern(tokens[i]);
      }
      if (sigma->size() == 0) throw IoError("empty alphabet", line_number);
    } else if (tokens[0] == "states:") {
      if (tokens.size() != 2) throw IoError("states: expects a count",
                                            line_number);
      num_states = parse_number(tokens[1], line_number);
      have_states = true;
    } else if (tokens[0] == "initial:") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        initial.push_back(parse_number(tokens[i], line_number));
      }
      if (initial.empty()) throw IoError("initial: expects state ids",
                                         line_number);
    } else if (tokens[0] == "accepting:") {
      have_accepting = true;
      if (tokens.size() == 2 && tokens[1] == "all") {
        accepting_all = true;
      } else {
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          accepting.push_back(parse_number(tokens[i], line_number));
        }
      }
    } else if (tokens.size() == 3) {
      transitions.push_back({parse_number(tokens[0], line_number), tokens[1],
                             parse_number(tokens[2], line_number),
                             line_number});
    } else {
      throw IoError("unrecognized line", line_number);
    }
  });

  if (!sigma) throw IoError("missing alphabet:", 0);
  if (!have_states) throw IoError("missing states:", 0);
  if (initial.empty()) throw IoError("missing initial:", 0);
  if (!have_accepting) throw IoError("missing accepting:", 0);

  Nfa nfa(sigma);
  for (std::size_t s = 0; s < num_states; ++s) {
    nfa.add_state(accepting_all);
  }
  for (const State s : accepting) {
    if (s >= num_states) throw IoError("accepting state out of range", 0);
    nfa.set_accepting(s, true);
  }
  for (const State s : initial) {
    if (s >= num_states) throw IoError("initial state out of range", 0);
    nfa.set_initial(s);
  }
  for (const RawTransition& t : transitions) {
    if (t.from >= num_states || t.to >= num_states) {
      throw IoError("transition state out of range", t.line);
    }
    if (!sigma->contains(t.action)) {
      throw IoError("unknown action '" + t.action + "'", t.line);
    }
    nfa.add_transition(t.from, sigma->id(t.action), t.to);
  }
  return nfa;
}

std::string serialize_system(const Nfa& nfa) {
  std::ostringstream out;
  out << "alphabet:";
  for (Symbol a = 0; a < nfa.alphabet()->size(); ++a) {
    out << ' ' << nfa.alphabet()->name(a);
  }
  out << "\nstates: " << nfa.num_states() << "\ninitial:";
  for (const State s : nfa.initial()) out << ' ' << s;
  out << "\naccepting:";
  bool all = nfa.num_states() > 0;
  for (State s = 0; s < nfa.num_states(); ++s) all = all && nfa.is_accepting(s);
  if (all) {
    out << " all";
  } else {
    for (State s = 0; s < nfa.num_states(); ++s) {
      if (nfa.is_accepting(s)) out << ' ' << s;
    }
  }
  out << '\n';
  for (State s = 0; s < nfa.num_states(); ++s) {
    for (const auto& t : nfa.out(s)) {
      out << s << ' ' << nfa.alphabet()->name(t.symbol) << ' ' << t.target
          << '\n';
    }
  }
  return out.str();
}

Homomorphism parse_homomorphism(std::string_view text, AlphabetRef source) {
  std::shared_ptr<Alphabet> target;
  struct Entry {
    std::string from;
    std::string to;
  };
  std::vector<Entry> renames;
  std::vector<std::string> hides;

  for_each_line(text, [&](std::string_view line, std::size_t line_number) {
    const auto tokens = tokenize(line);
    if (tokens.empty()) return;
    if (tokens[0] == "target:") {
      if (target) throw IoError("duplicate target", line_number);
      target = std::make_shared<Alphabet>();
      for (std::size_t i = 1; i < tokens.size(); ++i) target->intern(tokens[i]);
    } else if (tokens[0] == "map:") {
      if (tokens.size() != 4 || tokens[2] != "->") {
        throw IoError("map: expects '<from> -> <to>'", line_number);
      }
      renames.push_back({tokens[1], tokens[3]});
    } else if (tokens[0] == "hide:") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        hides.push_back(tokens[i]);
      }
    } else {
      throw IoError("unrecognized line", line_number);
    }
  });
  if (!target) throw IoError("missing target:", 0);

  Homomorphism h(std::move(source), target);
  for (const Entry& e : renames) {
    if (!h.source()->contains(e.from)) {
      throw IoError("map: unknown source action '" + e.from + "'", 0);
    }
    if (!target->contains(e.to)) {
      throw IoError("map: unknown target action '" + e.to + "'", 0);
    }
    h.rename(e.from, e.to);
  }
  for (const std::string& name : hides) {
    if (!h.source()->contains(name)) {
      throw IoError("hide: unknown action '" + name + "'", 0);
    }
    h.hide(name);
  }
  return h;
}

Buchi parse_buchi(std::string_view text) {
  return Buchi::from_structure(parse_system(text));
}

std::string serialize_buchi(const Buchi& buchi) {
  return serialize_system(buchi.structure());
}

namespace {

void append_state_set(const DynBitset& states, std::string& out) {
  out += "{";
  bool first = true;
  states.for_each([&](std::size_t s) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(s);
  });
  out += "}";
}

std::string explain_impl(const Nfa& system, const Word& prefix,
                         const Word& period) {
  std::string out;
  DynBitset current(system.num_states());
  for (const State s : system.initial()) current.set(s);
  out += "start        ";
  append_state_set(current, out);
  out += "\n";

  std::size_t position = 0;
  auto feed = [&](const Word& segment, const char* tag) {
    for (const Symbol a : segment) {
      current = system.step(current, a);
      out += tag;
      out += " ";
      std::string action = system.alphabet()->name(a);
      action.resize(std::max<std::size_t>(action.size(), 12), ' ');
      out += action + " ";
      if (current.none()) {
        out += "<left the system at step " + std::to_string(position) + ">\n";
        return false;
      }
      append_state_set(current, out);
      out += "\n";
      ++position;
    }
    return true;
  };

  if (!feed(prefix, " ")) return out;
  if (!period.empty()) {
    out += "-- period (unrolled twice) --\n";
    if (feed(period, "|")) feed(period, "|");
  }
  return out;
}

}  // namespace

std::string explain_word(const Nfa& system, const Word& word) {
  return explain_impl(system, word, {});
}

std::string explain_lasso(const Nfa& system, const Word& prefix,
                          const Word& period) {
  return explain_impl(system, prefix, period);
}

namespace {

std::string dot_impl(const Nfa& nfa, std::string_view name) {
  std::ostringstream out;
  out << "digraph " << name << " {\n  rankdir=LR;\n"
      << "  node [shape=circle];\n  init [shape=point];\n";
  for (State s = 0; s < nfa.num_states(); ++s) {
    out << "  s" << s;
    out << " [label=\"" << s << '"';
    if (nfa.is_accepting(s)) out << ", shape=doublecircle";
    out << "];\n";
  }
  for (const State s : nfa.initial()) {
    out << "  init -> s" << s << ";\n";
  }
  for (State s = 0; s < nfa.num_states(); ++s) {
    for (const auto& t : nfa.out(s)) {
      out << "  s" << s << " -> s" << t.target << " [label=\""
          << nfa.alphabet()->name(t.symbol) << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace

std::string to_dot(const Nfa& nfa, std::string_view name) {
  return dot_impl(nfa, name);
}

std::string to_dot(const Buchi& buchi, std::string_view name) {
  return dot_impl(buchi.structure(), name);
}

std::string to_dot(const PetriNet& net, std::string_view name) {
  std::ostringstream out;
  out << "digraph " << name << " {\n  rankdir=LR;\n";
  for (PlaceId p = 0; p < net.num_places(); ++p) {
    out << "  p" << p << " [shape=circle, label=\"" << net.place_name(p);
    const std::uint32_t tokens = net.initial_marking()[p];
    if (tokens > 0) out << "\\n" << tokens << (tokens == 1 ? " token" : " tokens");
    out << "\"];\n";
  }
  for (TransId t = 0; t < net.num_transitions(); ++t) {
    out << "  t" << t << " [shape=box, label=\"" << net.label(t) << "\"];\n";
    for (const auto& arc : net.inputs(t)) {
      out << "  p" << arc.place << " -> t" << t;
      if (arc.weight != 1) out << " [label=\"" << arc.weight << "\"]";
      out << ";\n";
    }
    for (const auto& arc : net.outputs(t)) {
      out << "  t" << t << " -> p" << arc.place;
      if (arc.weight != 1) out << " [label=\"" << arc.weight << "\"]";
      out << ";\n";
    }
    for (const auto& arc : net.reads(t)) {
      out << "  p" << arc.place << " -> t" << t << " [style=dashed, dir=both"
          << (arc.weight != 1
                  ? ", label=\"" + std::to_string(arc.weight) + "\""
                  : std::string())
          << "];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string to_hoa(const Buchi& buchi, std::string_view name) {
  const std::size_t sigma = buchi.alphabet()->size();
  std::ostringstream out;
  out << "HOA: v1\n";
  out << "name: \"" << name << "\"\n";
  out << "States: " << buchi.num_states() << "\n";
  for (const State s : buchi.initial()) out << "Start: " << s << "\n";
  out << "AP: " << sigma;
  for (Symbol a = 0; a < sigma; ++a) {
    out << " \"" << buchi.alphabet()->name(a) << '"';
  }
  out << "\nacc-name: Buchi\n";
  out << "Acceptance: 1 Inf(0)\n";
  out << "properties: trans-labels explicit-labels state-acc\n";
  out << "--BODY--\n";
  for (State s = 0; s < buchi.num_states(); ++s) {
    out << "State: " << s;
    if (buchi.is_accepting(s)) out << " {0}";
    out << "\n";
    for (const auto& t : buchi.out(s)) {
      out << "[";
      for (Symbol a = 0; a < sigma; ++a) {
        if (a > 0) out << "&";
        if (a != t.symbol) out << "!";
        out << a;
      }
      out << "] " << t.target << "\n";
    }
  }
  out << "--END--\n";
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string_view strip_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace rlv

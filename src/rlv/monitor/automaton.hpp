#pragma once

// rlv::monitor — streaming doomed-prefix detection over a compiled DFA.
//
// Lemma 4.3 makes relative liveness a *prefix* property: P is relative
// liveness of L_ω exactly when pre(L_ω) ⊆ pre(L_ω ∩ P). A MonitorAutomaton
// compiles a (system, property) pair ONCE into a complete deterministic
// product of the two pre-language DFAs, classifies every state up front
// (live / doomed / left-the-system), and precomputes a shortest witness
// word per state. Judging a live event stream is then one table lookup per
// event — O(1), no decision kernel on the hot path — which is what lets
// one daemon carry a large number of concurrent monitored sessions, each
// interned as nothing but a state id (see session.hpp).
//
// Doomed states are computed as the set of system-alive product states
// that are NOT co-reachable to any winnable (pre(L_ω ∩ P)-alive) state —
// a backward reachability pass over the compiled table rather than a
// per-state emptiness check. With trimmed prefix DFAs "not co-reachable
// to winnable" coincides with "the satisfiable component is dead", and
// construction asserts that agreement.
//
// With `certify` set, every reachable doomed state's witness is validated
// at compile time by the independent rlv::cert checker
// (cert::check_doomed_prefix); a rejected witness throws, so a certified
// automaton never serves an unvalidated doom verdict.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "rlv/lang/alphabet.hpp"
#include "rlv/ltl/ast.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/util/budget.hpp"

namespace rlv::monitor {

/// The three verdicts of online doom monitoring. kDoomed and kLeftSystem
/// are absorbing in the order kSatisfiable -> kDoomed -> kLeftSystem
/// (a doomed stream can still leave the system; it can never recover).
enum class Verdict : std::uint8_t {
  kSatisfiable,  // some continuation satisfies P inside the system
  kDoomed,       // a system behavior with no satisfying continuation
  kLeftSystem,   // not a behavior of the system at all
};

/// Wire/presentation name: "live", "doomed", "left_system".
[[nodiscard]] std::string_view verdict_name(Verdict v);

class MonitorAutomaton {
 public:
  /// Compiles the monitor for `system` (a Büchi automaton of the
  /// behaviors, lim(L)) against the property, in automaton or formula
  /// flavor. Construction cost is one Büchi product plus two subset
  /// constructions plus the product-DFA sweep, charged to `budget`;
  /// stepping never runs any of it again.
  MonitorAutomaton(const Buchi& system, const Buchi& property,
                   bool certify = false, Budget* budget = nullptr);
  MonitorAutomaton(const Buchi& system, Formula f, const Labeling& lambda,
                   bool certify = false, Budget* budget = nullptr);

  [[nodiscard]] const AlphabetRef& alphabet() const { return sigma_; }
  [[nodiscard]] std::uint32_t initial() const { return initial_; }
  [[nodiscard]] std::size_t num_states() const { return verdicts_.size(); }
  [[nodiscard]] std::size_t num_doomed() const { return num_doomed_; }

  /// True when every reachable doomed state's witness was validated by
  /// rlv::cert at construction time.
  [[nodiscard]] bool certified() const { return certified_; }

  [[nodiscard]] Verdict verdict(std::uint32_t state) const {
    return static_cast<Verdict>(verdicts_[state]);
  }

  /// THE hot path: one dense-table lookup. The automaton is complete, so
  /// every (state, symbol) pair has a successor; `a` must be a symbol of
  /// alphabet().
  [[nodiscard]] std::uint32_t step(std::uint32_t state, Symbol a) const {
    return table_[static_cast<std::size_t>(state) * stride_ + a];
  }

  /// A shortest word from the initial state to `state` (BFS parent
  /// backtrace). For a doomed state this is a genuine doomed prefix: the
  /// residual language of a DFA state does not depend on how it was
  /// reached, so the canonical witness attests every stream that lands on
  /// the same state.
  [[nodiscard]] Word witness(std::uint32_t state) const;

  /// The shortest doomed system behavior, or nullopt exactly when the
  /// property is relative liveness of the system (Definition 4.1).
  [[nodiscard]] std::optional<Word> shortest_doomed_prefix() const;

 private:
  void build(const Buchi& system, const Buchi& property, bool certify,
             Budget* budget);

  AlphabetRef sigma_;
  std::size_t stride_ = 0;  // |Σ|, the table row width
  std::uint32_t initial_ = 0;
  std::vector<std::uint32_t> table_;    // num_states * |Σ|, complete
  std::vector<std::uint8_t> verdicts_;  // one Verdict per state
  std::vector<std::uint32_t> parent_;   // BFS tree: predecessor state
  std::vector<Symbol> via_;             // BFS tree: symbol from parent
  std::uint32_t first_doomed_ = 0;      // lowest-id (= shallowest) doomed
  std::size_t num_doomed_ = 0;
  bool certified_ = false;
};

}  // namespace rlv::monitor

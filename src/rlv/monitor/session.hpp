#pragma once

// SessionTable — live monitored streams interned as almost nothing.
//
// A session is {automaton, dfa state, event count}: the compiled
// MonitorAutomaton is shared (one per distinct (system, property) pair,
// via the engine cache), so each concurrent stream costs one slab slot.
// Allocation is O(1) slab + free-list; ids carry a generation tag so a
// stale id (closed and slot reused) is detected instead of silently
// stepping someone else's stream; an intrusive LRU list makes idle-session
// GC O(expired) per sweep instead of O(open).
//
// The table is deliberately single-threaded (no locks): the engine wraps
// it in its own mutex, and contention is negligible next to the network
// round-trip that precedes every touch. The one exception is the counter
// block: it is kept in relaxed atomics so a stats snapshot can read it
// WITHOUT the engine's session mutex — observability polling must never
// queue behind the monitor stepping hot path. All writers still hold the
// engine mutex; only the reads are unsynchronized.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "rlv/monitor/automaton.hpp"

namespace rlv::monitor {

struct Session {
  std::shared_ptr<const MonitorAutomaton> automaton;
  std::uint32_t state = 0;
  std::uint64_t events = 0;
};

/// Counter snapshot returned by SessionTable::counters(). All fields but
/// `open` are monotonic.
struct SessionCounters {
  std::uint64_t open = 0;            // currently open
  std::uint64_t peak = 0;            // high-water mark of `open`
  std::uint64_t opened = 0;          // total ever opened
  std::uint64_t idle_reclaimed = 0;  // closed by sweep_idle
};

class SessionTable {
 public:
  /// `max_sessions` is the global cap; 0 = unlimited.
  explicit SessionTable(std::size_t max_sessions = 0)
      : max_sessions_(max_sessions) {}

  /// Opens a session at the automaton's initial state. Returns the session
  /// id, or 0 when the table is at its cap — the deterministic overload
  /// signal. Valid ids are never 0.
  [[nodiscard]] std::uint64_t open(
      std::shared_ptr<const MonitorAutomaton> automaton, std::uint64_t now_ms);

  /// Looks a session up, refreshing its idle clock and LRU position.
  /// nullptr for unknown, closed, or stale (generation mismatch) ids. The
  /// pointer is valid until the next open/close/sweep call.
  [[nodiscard]] Session* find(std::uint64_t id, std::uint64_t now_ms);

  /// Closes a session; false when the id is unknown/stale/already closed.
  bool close(std::uint64_t id);

  /// Closes every session idle for at least `max_idle_ms`; returns how
  /// many were reclaimed. Walks only the expired prefix of the LRU list.
  std::size_t sweep_idle(std::uint64_t now_ms, std::uint64_t max_idle_ms);

  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(
        counters_.open.load(std::memory_order_relaxed));
  }
  /// Lock-free snapshot — safe to call concurrently with mutations (the
  /// fields are read individually, so a snapshot taken mid-open may show
  /// e.g. `open` bumped before `opened`; fine for observability).
  [[nodiscard]] SessionCounters counters() const {
    SessionCounters snap;
    snap.open = counters_.open.load(std::memory_order_relaxed);
    snap.peak = counters_.peak.load(std::memory_order_relaxed);
    snap.opened = counters_.opened.load(std::memory_order_relaxed);
    snap.idle_reclaimed =
        counters_.idle_reclaimed.load(std::memory_order_relaxed);
    return snap;
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffU;

  struct Slot {
    Session session;
    std::uint64_t last_touch_ms = 0;
    std::uint32_t generation = 1;  // bumped on close; id 0 never issued
    bool in_use = false;
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
  };

  void lru_unlink(std::uint32_t index);
  void lru_push_back(std::uint32_t index);
  [[nodiscard]] Slot* slot_of(std::uint64_t id);
  void release(std::uint32_t index);

  /// Relaxed atomics so counters() reads without the caller's lock; every
  /// mutation happens under the engine's session mutex, so writers never
  /// race each other and plain load-modify-store peak tracking is exact.
  struct AtomicCounters {
    std::atomic<std::uint64_t> open{0};
    std::atomic<std::uint64_t> peak{0};
    std::atomic<std::uint64_t> opened{0};
    std::atomic<std::uint64_t> idle_reclaimed{0};
  };

  std::size_t max_sessions_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::uint32_t lru_head_ = kNil;  // least recently touched
  std::uint32_t lru_tail_ = kNil;  // most recently touched
  AtomicCounters counters_;
};

}  // namespace rlv::monitor

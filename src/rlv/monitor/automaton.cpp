#include "rlv/monitor/automaton.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "rlv/cert/certificate.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"

namespace rlv::monitor {

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kSatisfiable:
      return "live";
    case Verdict::kDoomed:
      return "doomed";
    case Verdict::kLeftSystem:
      return "left_system";
  }
  return "?";
}

MonitorAutomaton::MonitorAutomaton(const Buchi& system, const Buchi& property,
                                   bool certify, Budget* budget)
    : sigma_((require_same_alphabet(system.alphabet(), property.alphabet(),
                                    "MonitorAutomaton"),
              system.alphabet())) {
  build(system, property, certify, budget);
}

MonitorAutomaton::MonitorAutomaton(const Buchi& system, Formula f,
                                   const Labeling& lambda, bool certify,
                                   Budget* budget)
    : MonitorAutomaton(system, translate_ltl(f, lambda, budget), certify,
                       budget) {}

void MonitorAutomaton::build(const Buchi& system, const Buchi& property,
                             bool certify, Budget* budget) {
  // The two pre-language DFAs of Lemma 4.3. prefix_nfa trims to reachable
  // live states and makes everything accepting, so after determinization a
  // word is in the language iff the (partial) DFA is still alive on it.
  const Dfa sat = determinize(
      prefix_nfa(intersect_buchi(system, property, budget)), budget);
  const Dfa sys_pre = determinize(prefix_nfa(system), budget);

  stride_ = sigma_->size();
  const std::size_t n_sys = sys_pre.num_states();
  const std::size_t n_sat = sat.num_states();
  const std::uint32_t kDeadSys = static_cast<std::uint32_t>(n_sys);
  const std::uint32_t kDeadSat = static_cast<std::uint32_t>(n_sat);

  // A component is alive only in an accepting state; a prefix DFA can only
  // have a non-accepting state when its language is empty (determinize of
  // zero states), which the guard folds into "dead" uniformly.
  const auto sys_of = [&](State s) {
    return (s == kNoState || !sys_pre.is_accepting(s))
               ? kDeadSys
               : static_cast<std::uint32_t>(s);
  };
  const auto sat_of = [&](State t) {
    return (t == kNoState || !sat.is_accepting(t))
               ? kDeadSat
               : static_cast<std::uint32_t>(t);
  };

  // Intern reachable (sys, sat) pairs by BFS; interning order is BFS order,
  // so ids are nondecreasing in depth and the parent pointers form a
  // shortest-path tree. Once the system component dies the pair collapses
  // to the single absorbing (dead, dead) left-sink.
  struct Pair {
    std::uint32_t sys;
    std::uint32_t sat;
  };
  std::vector<Pair> pairs;
  std::unordered_map<std::uint64_t, std::uint32_t> interned;
  const auto key_of = [&](Pair p) {
    return static_cast<std::uint64_t>(p.sys) * (n_sat + 1) + p.sat;
  };
  const auto intern = [&](Pair p, std::uint32_t from, Symbol a) {
    if (p.sys == kDeadSys) p.sat = kDeadSat;  // one left-sink, not many
    const auto [it, fresh] = interned.emplace(
        key_of(p), static_cast<std::uint32_t>(pairs.size()));
    if (fresh) {
      budget_charge(budget);
      pairs.push_back(p);
      parent_.push_back(from);
      via_.push_back(a);
    }
    return it->second;
  };

  initial_ = intern({sys_of(sys_pre.initial()), sat_of(sat.initial())},
                    /*from=*/0, /*a=*/0);
  parent_[initial_] = initial_;  // root marker for the witness backtrace

  for (std::uint32_t id = 0; id < pairs.size(); ++id) {
    table_.resize(table_.size() + stride_);
    const Pair p = pairs[id];  // pairs may reallocate inside intern()
    for (Symbol a = 0; a < stride_; ++a) {
      Pair next{kDeadSys, kDeadSat};
      if (p.sys != kDeadSys) {
        next.sys = sys_of(sys_pre.next(static_cast<State>(p.sys), a));
        if (next.sys != kDeadSys && p.sat != kDeadSat) {
          next.sat = sat_of(sat.next(static_cast<State>(p.sat), a));
        }
      }
      table_[static_cast<std::size_t>(id) * stride_ + a] = intern(next, id, a);
    }
  }

  const std::size_t n = pairs.size();

  // Doomed = system-alive states NOT co-reachable to a winnable state,
  // where winnable means the pre(L_ω ∩ P) component is still alive. The
  // backward pass runs over the compiled table itself, independent of how
  // the component DFAs were produced.
  std::vector<std::vector<std::uint32_t>> preds(n);
  for (std::uint32_t from = 0; from < n; ++from) {
    for (Symbol a = 0; a < stride_; ++a) {
      preds[table_[static_cast<std::size_t>(from) * stride_ + a]].push_back(
          from);
    }
  }
  std::vector<std::uint8_t> coreach(n, 0);
  std::vector<std::uint32_t> worklist;
  for (std::uint32_t id = 0; id < n; ++id) {
    if (pairs[id].sat != kDeadSat) {
      coreach[id] = 1;
      worklist.push_back(id);
    }
  }
  while (!worklist.empty()) {
    const std::uint32_t id = worklist.back();
    worklist.pop_back();
    for (const std::uint32_t pred : preds[id]) {
      if (!coreach[pred]) {
        coreach[pred] = 1;
        worklist.push_back(pred);
      }
    }
  }

  verdicts_.resize(n);
  first_doomed_ = static_cast<std::uint32_t>(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    Verdict v;
    if (pairs[id].sys == kDeadSys) {
      v = Verdict::kLeftSystem;
    } else if (!coreach[id]) {
      v = Verdict::kDoomed;
    } else {
      v = Verdict::kSatisfiable;
    }
    // With trimmed prefix DFAs every winnable state is itself sat-alive,
    // so the co-reachability doom set must coincide with "sat component
    // dead" — a construction invariant, not an input assumption.
    if (pairs[id].sys != kDeadSys &&
        (v == Verdict::kDoomed) != (pairs[id].sat == kDeadSat)) {
      throw std::logic_error(
          "MonitorAutomaton: co-reachability doom set disagrees with the "
          "pre-language classification");
    }
    verdicts_[id] = static_cast<std::uint8_t>(v);
    if (v == Verdict::kDoomed) {
      ++num_doomed_;
      if (first_doomed_ == n) first_doomed_ = id;
    }
  }

  if (certify) {
    // Validate one canonical witness per reachable doomed state with the
    // independent certificate checker before this automaton can serve a
    // single verdict. A refuted witness means a kernel bug — fail the
    // compile, never the stream.
    StageScope scope(budget, Stage::kOther);
    for (std::uint32_t id = 0; id < n; ++id) {
      if (verdict(id) != Verdict::kDoomed) continue;
      const cert::Validation validation =
          cert::check_doomed_prefix(witness(id), system, property);
      if (!validation.valid) {
        throw std::runtime_error(
            "monitor witness certification failed: " + validation.reason);
      }
    }
    certified_ = true;
  }
}

Word MonitorAutomaton::witness(std::uint32_t state) const {
  Word w;
  while (state != initial_) {
    w.push_back(via_[state]);
    state = parent_[state];
  }
  std::reverse(w.begin(), w.end());
  return w;
}

std::optional<Word> MonitorAutomaton::shortest_doomed_prefix() const {
  if (num_doomed_ == 0) return std::nullopt;
  // BFS interning order makes the lowest doomed id the shallowest doomed
  // state, and its tree path a globally shortest doomed word.
  return witness(first_doomed_);
}

}  // namespace rlv::monitor

#include "rlv/monitor/session.hpp"

namespace rlv::monitor {

namespace {

constexpr std::uint64_t encode_id(std::uint32_t index,
                                  std::uint32_t generation) {
  return (static_cast<std::uint64_t>(generation) << 32) | index;
}

}  // namespace

void SessionTable::lru_unlink(std::uint32_t index) {
  Slot& slot = slots_[index];
  if (slot.lru_prev != kNil) {
    slots_[slot.lru_prev].lru_next = slot.lru_next;
  } else {
    lru_head_ = slot.lru_next;
  }
  if (slot.lru_next != kNil) {
    slots_[slot.lru_next].lru_prev = slot.lru_prev;
  } else {
    lru_tail_ = slot.lru_prev;
  }
  slot.lru_prev = slot.lru_next = kNil;
}

void SessionTable::lru_push_back(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.lru_prev = lru_tail_;
  slot.lru_next = kNil;
  if (lru_tail_ != kNil) slots_[lru_tail_].lru_next = index;
  lru_tail_ = index;
  if (lru_head_ == kNil) lru_head_ = index;
}

std::uint64_t SessionTable::open(
    std::shared_ptr<const MonitorAutomaton> automaton, std::uint64_t now_ms) {
  if (max_sessions_ > 0 && size() >= max_sessions_) return 0;
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.session.automaton = std::move(automaton);
  slot.session.state = slot.session.automaton->initial();
  slot.session.events = 0;
  slot.last_touch_ms = now_ms;
  slot.in_use = true;
  lru_push_back(index);
  const std::uint64_t open =
      counters_.open.fetch_add(1, std::memory_order_relaxed) + 1;
  counters_.opened.fetch_add(1, std::memory_order_relaxed);
  if (open > counters_.peak.load(std::memory_order_relaxed)) {
    counters_.peak.store(open, std::memory_order_relaxed);
  }
  return encode_id(index, slot.generation);
}

SessionTable::Slot* SessionTable::slot_of(std::uint64_t id) {
  const std::uint32_t index = static_cast<std::uint32_t>(id & 0xffffffffU);
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= slots_.size()) return nullptr;
  Slot& slot = slots_[index];
  if (!slot.in_use || slot.generation != generation) return nullptr;
  return &slot;
}

Session* SessionTable::find(std::uint64_t id, std::uint64_t now_ms) {
  Slot* slot = slot_of(id);
  if (!slot) return nullptr;
  slot->last_touch_ms = now_ms;
  const auto index = static_cast<std::uint32_t>(slot - slots_.data());
  if (lru_tail_ != index) {
    lru_unlink(index);
    lru_push_back(index);
  }
  return &slot->session;
}

void SessionTable::release(std::uint32_t index) {
  Slot& slot = slots_[index];
  lru_unlink(index);
  slot.session.automaton.reset();
  slot.in_use = false;
  ++slot.generation;  // stale ids to this slot now miss; wraparound is fine
  free_.push_back(index);
  counters_.open.fetch_sub(1, std::memory_order_relaxed);
}

bool SessionTable::close(std::uint64_t id) {
  Slot* slot = slot_of(id);
  if (!slot) return false;
  release(static_cast<std::uint32_t>(slot - slots_.data()));
  return true;
}

std::size_t SessionTable::sweep_idle(std::uint64_t now_ms,
                                     std::uint64_t max_idle_ms) {
  std::size_t reclaimed = 0;
  while (lru_head_ != kNil) {
    Slot& slot = slots_[lru_head_];
    if (now_ms - slot.last_touch_ms < max_idle_ms) break;  // rest is fresher
    release(lru_head_);
    ++reclaimed;
    counters_.idle_reclaimed.fetch_add(1, std::memory_order_relaxed);
  }
  return reclaimed;
}

}  // namespace rlv::monitor

#pragma once

// Abstracting homomorphisms (Definition 6.1): total maps h : Σ → Σ' ∪ {ε}
// extended letter-wise to finite words, and to ω-words where the image is
// infinite. Hidden letters (h(a) = ε) vanish from the image; on ω-words
// whose visible part is finite, h is undefined (Definition 6.1), which
// callers handle via apply_omega's optional result.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rlv/lang/alphabet.hpp"

namespace rlv {

class Homomorphism {
 public:
  /// Identity-on-names projection: keeps the listed action names (building a
  /// fresh target alphabet from them, in the given order) and hides every
  /// other letter of `source`. This is the abstraction used in the paper's
  /// running example (keep request/result/reject, hide the rest).
  static Homomorphism projection(AlphabetRef source,
                                 std::initializer_list<std::string_view> kept);
  static Homomorphism projection(AlphabetRef source,
                                 const std::vector<std::string>& kept);

  /// Starts an explicit mapping; every source letter is hidden until mapped.
  Homomorphism(AlphabetRef source, AlphabetRef target);

  /// Maps source letter `from` to target letter `to`.
  void rename(std::string_view from, std::string_view to);
  /// Hides source letter `name` (maps it to ε).
  void hide(std::string_view name);

  [[nodiscard]] const AlphabetRef& source() const { return source_; }
  [[nodiscard]] const AlphabetRef& target() const { return target_; }

  /// Image of a single letter; nullopt encodes ε.
  [[nodiscard]] std::optional<Symbol> apply(Symbol s) const {
    return map_[s] == kHidden ? std::nullopt
                              : std::optional<Symbol>(map_[s]);
  }

  [[nodiscard]] bool hides(Symbol s) const { return map_[s] == kHidden; }

  /// Image of a finite word (hidden letters dropped).
  [[nodiscard]] Word apply_word(const Word& w) const;

  /// Image of the ultimately periodic word u·v^ω as a lasso (h(u), h(v)),
  /// or nullopt when the image is finite (h(v) = ε), i.e. h undefined.
  [[nodiscard]] std::optional<std::pair<Word, Word>> apply_lasso(
      const Word& u, const Word& v) const;

  /// Preimage letters of a target letter.
  [[nodiscard]] std::vector<Symbol> preimage(Symbol target_symbol) const;
  /// Letters mapped to ε.
  [[nodiscard]] std::vector<Symbol> hidden_letters() const;

 private:
  static constexpr Symbol kHidden = 0xffffffffU;

  AlphabetRef source_;
  AlphabetRef target_;
  std::vector<Symbol> map_;  // per source symbol; kHidden = ε
};

}  // namespace rlv

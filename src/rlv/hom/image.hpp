#pragma once

// Homomorphic images and inverse images of automata. The image construction
// is how the paper's "abstract behavior" (Definition 6.2) is computed: apply
// h to every transition label, then eliminate the resulting ε-transitions —
// exactly the reduction that turns Figure 2 (or 3) into Figure 4.

#include "rlv/hom/homomorphism.hpp"
#include "rlv/lang/nfa.hpp"

namespace rlv {

/// NFA over Σ' accepting h(L(nfa)). ε-transitions produced by hidden letters
/// are eliminated by closure; the result is trimmed.
[[nodiscard]] Nfa image_nfa(const Nfa& nfa, const Homomorphism& h);

/// The image "after reduction" (the paper's phrasing for Figure 4): the
/// minimal deterministic automaton of h(L(nfa)), returned as an NFA. For
/// prefix-closed inputs the result is again all-accepting, so it can be fed
/// straight back into limit_of_prefix_closed.
[[nodiscard]] Nfa reduced_image_nfa(const Nfa& nfa, const Homomorphism& h);

/// NFA over Σ accepting h⁻¹(L(nfa')) for an automaton over Σ': renamed
/// letters follow their image's transitions, hidden letters self-loop.
[[nodiscard]] Nfa inverse_image_nfa(const Nfa& target_nfa,
                                    const Homomorphism& h);

/// Extends every maximal word of L (words that are not proper prefixes of
/// other words in L) by `#`* as in [Nitsche–Ochsenschläger 96], keeping
/// maximal words visible in lim(L). Returns an automaton over the source
/// alphabet extended with the padding symbol `pad_name` (interned into a
/// fresh alphabet). Precondition: L prefix-closed, `nfa` all-accepting.
[[nodiscard]] Nfa extend_maximal_words(const Nfa& nfa,
                                       std::string_view pad_name = "pad");

}  // namespace rlv

#include "rlv/hom/homomorphism.hpp"

#include <cassert>

namespace rlv {

Homomorphism Homomorphism::projection(
    AlphabetRef source, std::initializer_list<std::string_view> kept) {
  std::vector<std::string> names;
  for (const auto name : kept) names.emplace_back(name);
  return projection(std::move(source), names);
}

Homomorphism Homomorphism::projection(AlphabetRef source,
                                      const std::vector<std::string>& kept) {
  auto target = Alphabet::make(kept);
  Homomorphism h(std::move(source), std::move(target));
  for (const auto& name : kept) {
    assert(h.source_->contains(name) && "projected name not in source");
    h.rename(name, name);
  }
  return h;
}

Homomorphism::Homomorphism(AlphabetRef source, AlphabetRef target)
    : source_(std::move(source)),
      target_(std::move(target)),
      map_(source_->size(), kHidden) {}

void Homomorphism::rename(std::string_view from, std::string_view to) {
  map_[source_->id(from)] = target_->id(to);
}

void Homomorphism::hide(std::string_view name) {
  map_[source_->id(name)] = kHidden;
}

Word Homomorphism::apply_word(const Word& w) const {
  Word out;
  out.reserve(w.size());
  for (const Symbol s : w) {
    if (map_[s] != kHidden) out.push_back(map_[s]);
  }
  return out;
}

std::optional<std::pair<Word, Word>> Homomorphism::apply_lasso(
    const Word& u, const Word& v) const {
  Word pv = apply_word(v);
  if (pv.empty()) return std::nullopt;  // image finite: h undefined (Def 6.1)
  return std::make_pair(apply_word(u), std::move(pv));
}

std::vector<Symbol> Homomorphism::preimage(Symbol target_symbol) const {
  std::vector<Symbol> result;
  for (Symbol s = 0; s < map_.size(); ++s) {
    if (map_[s] == target_symbol) result.push_back(s);
  }
  return result;
}

std::vector<Symbol> Homomorphism::hidden_letters() const {
  std::vector<Symbol> result;
  for (Symbol s = 0; s < map_.size(); ++s) {
    if (map_[s] == kHidden) result.push_back(s);
  }
  return result;
}

}  // namespace rlv

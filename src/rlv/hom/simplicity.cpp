#include "rlv/hom/simplicity.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "rlv/hom/image.hpp"
#include "rlv/lang/dfa.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/lang/quotient.hpp"
#include "rlv/util/hash.hpp"

namespace rlv {

namespace {

/// Searches the product of two complete DFAs (A from `a_start`, B from
/// `b_start`) for a pair of states with equal residuals, moving only along
/// words u ∈ L(A-part) — enforced by skipping the A sink (`a_dead`).
bool witness_exists(const Dfa& a, State a_start, State a_dead, const Dfa& b,
                    State b_start) {
  std::vector<std::pair<State, State>> work;
  std::map<std::pair<State, State>, bool> seen;
  work.emplace_back(a_start, b_start);
  seen[{a_start, b_start}] = true;
  while (!work.empty()) {
    const auto [pa, pb] = work.back();
    work.pop_back();
    if (residual_equivalent(a, pa, b, pb)) return true;
    for (Symbol c = 0; c < a.alphabet()->size(); ++c) {
      const State na = a.next(pa, c);
      if (na == a_dead) continue;  // u must stay inside cont(h(w), h(L))
      const State nb = b.next(pb, c);
      if (!seen.emplace(std::make_pair(na, nb), true).second) continue;
      work.emplace_back(na, nb);
    }
  }
  return false;
}

}  // namespace

SimplicityResult check_simplicity(const Nfa& nfa, const Homomorphism& h) {
  assert(nfa.alphabet() == h.source());

  // DFA for L; its states index the cont classes cont(w, L).
  const Nfa trimmed = trim(nfa);
  SimplicityResult result;
  if (trimmed.num_states() == 0) {
    result.simple = true;  // empty language: vacuously simple
    return result;
  }
  const Dfa dl = minimize(determinize(trimmed));

  // Determinized image automaton; its states index cont(h(w), h(L)).
  const Dfa dh = determinize(image_nfa(trimmed, h));
  const Dfa dh_complete = dh.complete();
  const State dh_dead =
      dh_complete.num_states() > dh.num_states()
          ? static_cast<State>(dh_complete.num_states() - 1)
          : kNoState;

  // For each L-state q: the completed DFA of h(cont(w, L)) = h(residual(q)).
  std::vector<Dfa> image_residual;
  std::vector<State> image_residual_init;
  image_residual.reserve(dl.num_states());
  for (State q = 0; q < dl.num_states(); ++q) {
    Nfa res = dl.to_nfa();
    // Residual automaton: same structure, initial state q.
    Nfa shifted(res.alphabet());
    for (State s = 0; s < res.num_states(); ++s) {
      shifted.add_state(res.is_accepting(s));
    }
    for (State s = 0; s < res.num_states(); ++s) {
      for (const auto& t : res.out(s)) {
        shifted.add_transition(s, t.symbol, t.target);
      }
    }
    shifted.set_initial(q);
    const Dfa db = determinize(image_nfa(shifted, h)).complete();
    image_residual.push_back(db);
    image_residual_init.push_back(db.initial());
  }

  // Coupled reachability over (q, S) pairs, tracking a witness word for
  // failure reporting.
  struct Item {
    State q;
    State s;
    Word word;
  };
  std::map<std::pair<State, State>, bool> seen;
  std::queue<Item> queue;
  queue.push({dl.initial(), dh.initial(), {}});
  seen[{dl.initial(), dh.initial()}] = true;

  while (!queue.empty()) {
    Item item = std::move(queue.front());
    queue.pop();
    ++result.pairs_checked;

    if (!witness_exists(dh_complete, item.s, dh_dead,
                        image_residual[item.q], image_residual_init[item.q])) {
      result.simple = false;
      result.violating_word = std::move(item.word);
      return result;
    }

    for (Symbol a = 0; a < nfa.alphabet()->size(); ++a) {
      const State nq = dl.next(item.q, a);
      if (nq == kNoState) continue;  // wa ∉ L
      State ns = item.s;
      if (const auto mapped = h.apply(a)) {
        ns = dh.next(item.s, *mapped);
        assert(ns != kNoState && "image automaton must simulate h(L)");
      }
      if (!seen.emplace(std::make_pair(nq, ns), true).second) continue;
      Word w = item.word;
      w.push_back(a);
      queue.push({nq, ns, std::move(w)});
    }
  }
  result.simple = true;
  return result;
}

}  // namespace rlv

#pragma once

// Decision procedure for *simplicity* of an abstracting homomorphism
// (Definition 6.3, after Ochsenschläger): h is simple for a prefix-closed
// regular L and w ∈ L iff some u ∈ cont(h(w), h(L)) satisfies
//
//   cont(u, cont(h(w), h(L))) = cont(u, h(cont(w, L))),
//
// i.e. after reading u, the continuations visible at the abstract level
// coincide with the abstracted continuations of w. Simplicity is exactly
// the condition under which relative liveness transfers from the abstract
// to the concrete system (Theorem 8.2).
//
// Decidability: cont(w, L) depends on w only through the state of a DFA for
// L, and cont(h(w), h(L)) only through the subset-state of the determinized
// image automaton. We explore all reachable (state, subset-state) pairs;
// for each, we search the product of the two residual DFAs for a state pair
// with equal residual languages (Hopcroft–Karp).

#include <optional>

#include "rlv/hom/homomorphism.hpp"
#include "rlv/lang/nfa.hpp"

namespace rlv {

struct SimplicityResult {
  bool simple = false;
  /// When not simple: a word w ∈ L for which no witness u exists.
  std::optional<Word> violating_word;
  /// Number of (cont-class, abstract-cont-class) pairs examined.
  std::size_t pairs_checked = 0;
};

/// Decides whether `h` is simple for L(nfa). L must be prefix-closed (use
/// prefix_language / reachability graphs); `h.source()` must be the
/// automaton's alphabet.
[[nodiscard]] SimplicityResult check_simplicity(const Nfa& nfa,
                                                const Homomorphism& h);

}  // namespace rlv

#include "rlv/hom/image.hpp"

#include <cassert>
#include <string>
#include <vector>

#include "rlv/lang/ops.hpp"

namespace rlv {

Nfa image_nfa(const Nfa& nfa, const Homomorphism& h) {
  assert(nfa.alphabet() == h.source());
  const std::size_t n = nfa.num_states();

  // ε-closure: states reachable via hidden-letter transitions.
  std::vector<DynBitset> closure(n, DynBitset(n));
  for (State s = 0; s < n; ++s) {
    // DFS from s over hidden edges.
    std::vector<State> work{s};
    closure[s].set(s);
    while (!work.empty()) {
      const State x = work.back();
      work.pop_back();
      for (const auto& t : nfa.out(x)) {
        if (h.hides(t.symbol) && !closure[s].test(t.target)) {
          closure[s].set(t.target);
          work.push_back(t.target);
        }
      }
    }
  }

  Nfa result(h.target());
  for (State s = 0; s < n; ++s) {
    const bool acc = closure[s].any_of(
        [&](std::size_t x) { return nfa.is_accepting(static_cast<State>(x)); });
    result.add_state(acc);
  }
  // Deduplicate per (symbol, target) with a stamp array rather than linear
  // scans — closure sets make out-degrees large.
  std::vector<std::uint32_t> stamp(h.target()->size() * n, 0);
  std::uint32_t generation = 0;
  for (State s = 0; s < n; ++s) {
    ++generation;
    closure[s].for_each([&](std::size_t x) {
      for (const auto& t : nfa.out(static_cast<State>(x))) {
        const auto mapped = h.apply(t.symbol);
        if (!mapped) continue;
        std::uint32_t& mark =
            stamp[static_cast<std::size_t>(*mapped) * n + t.target];
        if (mark == generation) continue;
        mark = generation;
        result.add_transition(s, *mapped, t.target);
      }
    });
  }
  for (const State s : nfa.initial()) result.set_initial(s);
  return trim(result);
}

Nfa reduced_image_nfa(const Nfa& nfa, const Homomorphism& h) {
  return trim(minimize(determinize(image_nfa(nfa, h))).to_nfa());
}

Nfa inverse_image_nfa(const Nfa& target_nfa, const Homomorphism& h) {
  assert(target_nfa.alphabet() == h.target());
  Nfa result(h.source());
  for (State s = 0; s < target_nfa.num_states(); ++s) {
    result.add_state(target_nfa.is_accepting(s));
  }
  for (State s = 0; s < target_nfa.num_states(); ++s) {
    for (Symbol a = 0; a < h.source()->size(); ++a) {
      const auto mapped = h.apply(a);
      if (!mapped) {
        result.add_transition(s, a, s);  // hidden letters stay in place
      } else {
        for (const State t : target_nfa.successors(s, *mapped)) {
          result.add_transition(s, a, t);
        }
      }
    }
  }
  for (const State s : target_nfa.initial()) result.set_initial(s);
  return result;
}

Nfa extend_maximal_words(const Nfa& nfa, std::string_view pad_name) {
  // Fresh alphabet = source names + pad symbol.
  std::vector<std::string> names;
  for (Symbol a = 0; a < nfa.alphabet()->size(); ++a) {
    names.push_back(nfa.alphabet()->name(a));
  }
  names.emplace_back(pad_name);
  auto extended = Alphabet::make(names);
  const Symbol pad = extended->id(pad_name);

  // Determinize so that "maximal word" = "state without successors" exactly.
  const Dfa dfa = determinize(trim(nfa));
  Nfa result(extended);
  for (State s = 0; s < dfa.num_states(); ++s) {
    result.add_state(true);
  }
  const std::size_t sigma = nfa.alphabet()->size();
  for (State s = 0; s < dfa.num_states(); ++s) {
    bool has_successor = false;
    for (Symbol a = 0; a < sigma; ++a) {
      const State t = dfa.next(s, a);
      if (t != kNoState) {
        result.add_transition(s, a, t);
        has_successor = true;
      }
    }
    if (!has_successor) {
      result.add_transition(s, pad, s);
    }
  }
  result.set_initial(dfa.initial());
  return result;
}

}  // namespace rlv

#include "rlv/comp/abstraction.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>
#include <vector>

#include "rlv/util/hash.hpp"

namespace rlv {

namespace {

using Config = std::vector<State>;

/// Interns product configurations to dense ids so closure sets are sets of
/// small integers.
class ConfigTable {
 public:
  std::uint32_t intern(const Config& config) {
    auto [it, inserted] =
        ids_.emplace(config, static_cast<std::uint32_t>(configs_.size()));
    if (inserted) configs_.push_back(config);
    return it->second;
  }

  const Config& get(std::uint32_t id) const { return configs_[id]; }
  std::size_t size() const { return configs_.size(); }

 private:
  std::map<Config, std::uint32_t> ids_;
  std::vector<Config> configs_;
};

/// Per-configuration successor enumeration on a single concrete symbol.
void successors_on(const std::vector<Component>& components,
                   const Config& config, Symbol a,
                   std::vector<Config>& out) {
  const std::size_t k = components.size();
  static thread_local std::vector<std::vector<State>> succs;
  succs.assign(k, {});
  for (std::size_t i = 0; i < k; ++i) {
    if (!components[i].participates.test(a)) {
      succs[i] = {config[i]};
      continue;
    }
    succs[i] = components[i].automaton.successors(config[i], a);
    if (succs[i].empty()) return;  // not enabled
  }
  std::vector<std::size_t> index(k, 0);
  while (true) {
    Config next(k);
    for (std::size_t i = 0; i < k; ++i) next[i] = succs[i][index[i]];
    out.push_back(std::move(next));
    std::size_t i = 0;
    for (; i < k; ++i) {
      if (++index[i] < succs[i].size()) break;
      index[i] = 0;
    }
    if (i == k) break;
  }
}

}  // namespace

OnTheFlyResult on_the_fly_abstraction(const std::vector<Component>& components,
                                      const Homomorphism& h,
                                      const OnTheFlyOptions& options) {
  assert(!components.empty());
  const AlphabetRef sigma = components.front().automaton.alphabet();
  assert(sigma == h.source());

  // Hidden and per-target-letter preimage symbol lists.
  std::vector<Symbol> hidden = h.hidden_letters();
  std::vector<std::vector<Symbol>> preimages(h.target()->size());
  for (Symbol a = 0; a < sigma->size(); ++a) {
    if (const auto mapped = h.apply(a)) preimages[*mapped].push_back(a);
  }

  ConfigTable table;

  // Closure of a set of configuration ids under hidden moves.
  auto close = [&](std::vector<std::uint32_t> seed) {
    std::vector<bool> in_set;
    auto mark = [&](std::uint32_t id) {
      if (id >= in_set.size()) in_set.resize(id + 1, false);
      if (in_set[id]) return false;
      in_set[id] = true;
      return true;
    };
    std::vector<std::uint32_t> result;
    std::vector<std::uint32_t> work;
    for (const std::uint32_t id : seed) {
      if (mark(id)) {
        result.push_back(id);
        work.push_back(id);
      }
    }
    std::vector<Config> next;
    while (!work.empty()) {
      const std::uint32_t id = work.back();
      work.pop_back();
      for (const Symbol a : hidden) {
        next.clear();
        successors_on(components, table.get(id), a, next);
        for (const Config& config : next) {
          const std::uint32_t nid = table.intern(config);
          if (mark(nid)) {
            result.push_back(nid);
            work.push_back(nid);
          }
        }
      }
    }
    std::sort(result.begin(), result.end());
    return result;
  };

  OnTheFlyResult out{Dfa(h.target()), 0, false};

  std::map<std::vector<std::uint32_t>, State> ids;
  std::vector<std::vector<std::uint32_t>> sets;

  Config initial(components.size());
  for (std::size_t i = 0; i < components.size(); ++i) {
    assert(components[i].automaton.initial().size() == 1);
    initial[i] = components[i].automaton.initial().front();
  }

  auto intern_set = [&](std::vector<std::uint32_t> set) -> State {
    auto [it, inserted] = ids.emplace(std::move(set), kNoState);
    if (inserted) {
      it->second = out.abstract.add_state(true);
      sets.push_back(it->first);
    }
    return it->second;
  };

  const State start = intern_set(close({table.intern(initial)}));
  out.abstract.set_initial(start);

  std::vector<Config> step;
  for (State s = 0; s < sets.size(); ++s) {
    if (out.abstract.num_states() > options.max_abstract_states) {
      out.truncated = true;
      break;
    }
    const std::vector<std::uint32_t> current = sets[s];  // copy: sets grows
    for (Symbol b = 0; b < h.target()->size(); ++b) {
      std::vector<std::uint32_t> seed;
      for (const std::uint32_t id : current) {
        for (const Symbol a : preimages[b]) {
          step.clear();
          successors_on(components, table.get(id), a, step);
          for (const Config& config : step) {
            seed.push_back(table.intern(config));
          }
        }
      }
      if (seed.empty()) continue;
      const State target = intern_set(close(std::move(seed)));
      out.abstract.set_transition(s, b, target);
    }
  }
  out.configurations_touched = table.size();
  return out;
}

}  // namespace rlv

#include "rlv/comp/sync.hpp"

#include <cassert>
#include <map>
#include <vector>

namespace rlv {

DynBitset participation(const AlphabetRef& sigma,
                        const std::vector<std::string>& actions) {
  DynBitset bits(sigma->size());
  for (const auto& action : actions) {
    bits.set(sigma->id(action));
  }
  return bits;
}

Nfa sync_product(const std::vector<Component>& components) {
  assert(!components.empty());
  const AlphabetRef sigma = components.front().automaton.alphabet();
  const std::size_t k = components.size();
  for ([[maybe_unused]] const Component& c : components) {
    assert(c.automaton.alphabet() == sigma);
    assert(c.automaton.initial().size() == 1 &&
           "sync_product expects deterministic initial configurations");
  }

  using Config = std::vector<State>;
  Nfa product(sigma);
  std::map<Config, State> ids;
  std::vector<Config> worklist;

  auto intern = [&](const Config& config) -> State {
    auto [it, inserted] = ids.emplace(config, kNoState);
    if (inserted) {
      it->second = product.add_state(true);
      worklist.push_back(config);
    }
    return it->second;
  };

  Config initial(k);
  for (std::size_t i = 0; i < k; ++i) {
    initial[i] = components[i].automaton.initial().front();
  }
  product.set_initial(intern(initial));

  // Successor exploration: for each symbol, the participating components
  // each contribute their successor sets; the non-participating stay put.
  std::vector<std::vector<State>> succs(k);
  while (!worklist.empty()) {
    const Config config = worklist.back();
    worklist.pop_back();
    const State from = ids.at(config);

    for (Symbol a = 0; a < sigma->size(); ++a) {
      bool enabled = true;
      for (std::size_t i = 0; i < k && enabled; ++i) {
        if (!components[i].participates.test(a)) {
          succs[i] = {config[i]};
          continue;
        }
        succs[i] = components[i].automaton.successors(config[i], a);
        enabled = !succs[i].empty();
      }
      if (!enabled) continue;

      // Cross product of per-component successors (odometer).
      std::vector<std::size_t> index(k, 0);
      while (true) {
        Config next(k);
        for (std::size_t i = 0; i < k; ++i) next[i] = succs[i][index[i]];
        product.add_transition(from, a, intern(next));
        std::size_t i = 0;
        for (; i < k; ++i) {
          if (++index[i] < succs[i].size()) break;
          index[i] = 0;
        }
        if (i == k) break;
      }
    }
  }
  return product;
}

}  // namespace rlv

#pragma once

// Synchronized composition of transition-system components — the setting of
// the paper's compositional-analysis remark (§9, citing Ochsenschläger's
// product-net machine [22]). Components share one alphabet; each declares
// the actions it *participates* in. An action is enabled in a configuration
// when every participating component can take it; it moves exactly those
// components.

#include <vector>

#include "rlv/lang/nfa.hpp"
#include "rlv/util/bitset.hpp"

namespace rlv {

struct Component {
  /// The component's local transition system (all states accepting).
  Nfa automaton;
  /// Per shared-alphabet symbol: does this component synchronize on it?
  /// Symbols a component does not participate in leave it in place.
  DynBitset participates;
};

/// Explicit synchronized product, reachable part only: a prefix-closed
/// all-accepting transition system over the shared alphabet. All components
/// must use the same alphabet object; each must have exactly one initial
/// state.
[[nodiscard]] Nfa sync_product(const std::vector<Component>& components);

/// Convenience: a participation bitset over `sigma` with the named actions
/// set.
[[nodiscard]] DynBitset participation(
    const AlphabetRef& sigma, const std::vector<std::string>& actions);

}  // namespace rlv

#pragma once

// On-the-fly computation of the abstract behavior of a composed system —
// the practical point of the paper's conclusion (§9): "compute the
// finite-state representation of the abstract behavior by a partial
// state-space exploration" instead of building the full reachability graph
// first and abstracting afterwards.
//
// The construction interleaves three steps that the naive pipeline performs
// sequentially (product → homomorphic image → determinization): an abstract
// state is a *closure set* of product configurations (closed under hidden
// moves), and its successor under a visible abstract letter b is the
// closure of all configurations reachable by one concrete letter in
// h⁻¹(b). The full concrete transition relation is never materialized; the
// memory high-water mark is one closure set per abstract state instead of
// the whole product graph.
//
// This realizes the spirit of Ochsenschläger's product-net machine [22]
// (documented as a substitution in DESIGN.md — the original also exploits
// partial-order arguments we do not reproduce).

#include <vector>

#include "rlv/comp/sync.hpp"
#include "rlv/hom/homomorphism.hpp"
#include "rlv/lang/dfa.hpp"

namespace rlv {

struct OnTheFlyResult {
  /// Deterministic automaton for h(L(product)) over the target alphabet
  /// (all states accepting; prefix-closed).
  Dfa abstract;
  /// Number of distinct product configurations touched — compare with the
  /// full product size to quantify the partial-exploration saving.
  std::size_t configurations_touched = 0;
  /// True when the exploration hit `max_abstract_states` and aborted.
  bool truncated = false;
};

struct OnTheFlyOptions {
  std::size_t max_abstract_states = 1u << 20;
};

/// Computes the abstraction of the synchronized product of `components`
/// under `h`, without building the product automaton.
[[nodiscard]] OnTheFlyResult on_the_fly_abstraction(
    const std::vector<Component>& components, const Homomorphism& h,
    const OnTheFlyOptions& options = {});

}  // namespace rlv

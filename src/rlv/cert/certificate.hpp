#pragma once

// Self-validating verdicts (certificate checking). Every negative verdict of
// the core checkers carries a concrete witness:
//
//   relative_liveness  — a violating prefix w: w ∈ pre(L_ω) yet no
//                        continuation of w stays inside L_ω ∩ P (Lemma 4.3
//                        phrased on words: w separates pre(L_ω) from
//                        pre(L_ω ∩ P));
//   relative_safety    — a lasso x = u·v^ω with x ∈ L_ω, x ∉ P, and every
//                        finite prefix of x extendable into L_ω ∩ P
//                        (Lemma 4.4: x ∈ L_ω ∩ lim(pre(L_ω ∩ P)) ∩ ¬P);
//   satisfies          — a lasso x ∈ L_ω with x ∉ P (Definition 3.2).
//
// The validate() family re-checks such a witness against the ORIGINAL
// automata using only simple primitives — state-set simulation
// (Nfa::run/step), exact lasso membership (accepts_lasso), LTL ground-truth
// evaluation on ultimately periodic words (eval_ltl), and a from-scratch
// explicit product + Tarjan SCC live-state computation local to this
// translation unit. It deliberately shares NO code with the optimized
// inclusion/emptiness kernels (lang/inclusion, omega/{live,limit,product,
// emptiness}) whose answers it certifies; a bug there cannot hide here. The
// formula flavors go through translate_ltl to obtain the property automaton
// — the translation itself is independently cross-checked against eval_ltl
// by the lasso-sampling suites, and the ∉P leg of each certificate is
// checked with eval_ltl directly, not through the translation.
//
// Positive verdicts carry no certificate (they assert emptiness/inclusion,
// which a per-instance witness cannot attest); validate() reports them as
// `checked = false`. Use the brute-force oracle (cert/oracle.hpp) to
// cross-check positive verdicts on small instances.

#include <string>

#include "rlv/core/relative.hpp"
#include "rlv/ltl/ast.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/omega/emptiness.hpp"
#include "rlv/util/bitset.hpp"

namespace rlv::cert {

/// Outcome of validating one result's certificate.
struct Validation {
  /// False exactly when a certificate was expected and failed (or was
  /// missing). Positive and budget-exhausted verdicts are vacuously valid.
  bool valid = true;
  /// True when an actual witness was re-checked.
  bool checked = false;
  /// Failure reason when invalid; a short note (e.g. "positive verdict
  /// carries no witness") when valid but unchecked.
  std::string reason;
};

// ---------------------------------------------------------------------------
// validate(): certificate checking for each result type, in automaton and
// formula property flavors. The system/property arguments must be the very
// automata (or formula + labeling) the check ran on.

[[nodiscard]] Validation validate(const RelativeLivenessResult& result,
                                  const Buchi& system, const Buchi& property);
[[nodiscard]] Validation validate(const RelativeLivenessResult& result,
                                  const Buchi& system, Formula f,
                                  const Labeling& lambda);

[[nodiscard]] Validation validate(const RelativeSafetyResult& result,
                                  const Buchi& system, const Buchi& property);
[[nodiscard]] Validation validate(const RelativeSafetyResult& result,
                                  const Buchi& system, Formula f,
                                  const Labeling& lambda);

[[nodiscard]] Validation validate(const SatisfactionResult& result,
                                  const Buchi& system, const Buchi& property);
[[nodiscard]] Validation validate(const SatisfactionResult& result,
                                  const Buchi& system, Formula f,
                                  const Labeling& lambda);

// ---------------------------------------------------------------------------
// Low-level witness checkers, exposed for the fuzz harness and for callers
// that hold a bare witness (e.g. one re-parsed from rlvd JSON output).

/// Checks a relative-liveness violation: w ∈ pre(L_ω(system)) and w has no
/// extension into L_ω(system) ∩ L_ω(property).
[[nodiscard]] Validation check_doomed_prefix(const Word& w, const Buchi& system,
                                             const Buchi& property);

/// Checks a relative-safety violation: u·v^ω ∈ L_ω(system), u·v^ω ∉ P, and
/// every finite prefix of u·v^ω lies in pre(L_ω(system) ∩ P). Membership in
/// ¬P is decided by exact lasso membership on `property` (automaton flavor)
/// or by eval_ltl (formula flavor).
[[nodiscard]] Validation check_safety_lasso(const Lasso& lasso,
                                            const Buchi& system,
                                            const Buchi& property);
[[nodiscard]] Validation check_safety_lasso(const Lasso& lasso,
                                            const Buchi& system,
                                            const Buchi& property, Formula f,
                                            const Labeling& lambda);

/// Checks a satisfaction counterexample: u·v^ω ∈ L_ω(system) and u·v^ω ∉ P.
[[nodiscard]] Validation check_violation_lasso(const Lasso& lasso,
                                               const Buchi& system,
                                               const Buchi& property);
[[nodiscard]] Validation check_violation_lasso(const Lasso& lasso,
                                               const Buchi& system, Formula f,
                                               const Labeling& lambda);

// ---------------------------------------------------------------------------
// Dumb shared primitives (also the substrate of the brute-force oracle).
// These are intentionally naive: materialize, decompose, mark.

/// Explicitly materialized product of Büchi automata with one generalized
/// acceptance set per operand (tuple states interned by BFS from the tuple
/// of initial states).
struct GenProduct {
  explicit GenProduct(AlphabetRef sigma) : structure(std::move(sigma)) {}

  Nfa structure;                // accepting flags unused
  std::vector<DynBitset> sets;  // one per operand, sized to num_states()
};

/// Builds the explicit product. Throws std::invalid_argument on an empty
/// operand list or mismatched alphabets, std::runtime_error when the product
/// exceeds `max_states` (a guard against misuse on large instances — this
/// layer is for small, certifiable ones).
[[nodiscard]] GenProduct explicit_product(
    const std::vector<const Buchi*>& operands,
    std::size_t max_states = 1u << 20);

/// States of `a` from which some Büchi-accepting run exists (i.e. that can
/// reach a nontrivial SCC containing an accepting state).
[[nodiscard]] DynBitset buchi_live(const Buchi& a);

/// States of the product from which some generalized-accepting run exists
/// (reach a nontrivial SCC intersecting every acceptance set).
[[nodiscard]] DynBitset gen_live(const GenProduct& p);

/// True when the product's ω-language is non-empty (some initial state is
/// live).
[[nodiscard]] bool gen_nonempty(const GenProduct& p);

}  // namespace rlv::cert

#include "rlv/cert/certificate.hpp"

#include <cstddef>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "rlv/ltl/eval.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/util/scc.hpp"

namespace rlv::cert {

namespace {

Validation ok_checked() {
  Validation v;
  v.valid = true;
  v.checked = true;
  return v;
}

Validation fail(std::string reason) {
  Validation v;
  v.valid = false;
  v.checked = true;
  v.reason = std::move(reason);
  return v;
}

Validation not_checked(std::string note) {
  Validation v;
  v.valid = true;
  v.checked = false;
  v.reason = std::move(note);
  return v;
}

/// States that can reach a node of `targets` in the graph of `structure`
/// (including the targets themselves): one reverse BFS.
DynBitset can_reach(const Nfa& structure, const DynBitset& targets) {
  const std::size_t n = structure.num_states();
  std::vector<std::vector<State>> pred(n);
  for (State s = 0; s < n; ++s) {
    for (const Transition& t : structure.out(s)) pred[t.target].push_back(s);
  }
  DynBitset reached(n);
  std::vector<State> work;
  targets.for_each([&](std::size_t s) {
    reached.set(s);
    work.push_back(static_cast<State>(s));
  });
  while (!work.empty()) {
    const State s = work.back();
    work.pop_back();
    for (const State p : pred[s]) {
      if (!reached.test(p)) {
        reached.set(p);
        work.push_back(p);
      }
    }
  }
  return reached;
}

std::vector<std::vector<std::uint32_t>> adjacency(const Nfa& structure) {
  std::vector<std::vector<std::uint32_t>> succ(structure.num_states());
  for (State s = 0; s < structure.num_states(); ++s) {
    for (const Transition& t : structure.out(s)) succ[s].push_back(t.target);
  }
  return succ;
}

/// Checks that every finite prefix of u·v^ω lies in pre(L_ω(system) ∩ P),
/// by deterministic subset simulation over the explicit product restricted
/// to its live states. The restriction is exact: a non-live product state
/// can never reach a live one (if it could, it could reach an accepting
/// SCC and would be live itself), so pruning dead states never loses a
/// future extension. The boundary subsets after each whole v block form a
/// deterministic sequence over a finite domain; once one repeats, all
/// later prefixes rewalk checked ground.
Validation check_limit_membership(const Lasso& lasso, const Buchi& system,
                                  const Buchi& property) {
  const GenProduct p = explicit_product({&system, &property});
  const DynBitset live = gen_live(p);

  DynBitset cur(p.structure.num_states());
  for (const State s : p.structure.initial()) {
    if (live.test(s)) cur.set(s);
  }
  if (cur.none()) {
    return fail("the empty prefix is not extendable into L_omega ∩ P");
  }
  const auto advance = [&](Symbol a) {
    cur = p.structure.step(cur, a);
    cur &= live;
    return cur.any();
  };
  for (std::size_t i = 0; i < lasso.prefix.size(); ++i) {
    if (!advance(lasso.prefix[i])) {
      return fail("prefix u[0.." + std::to_string(i) +
                  "] is not extendable into L_omega ∩ P");
    }
  }
  std::set<DynBitset> seen;
  constexpr std::size_t kMaxBlocks = std::size_t{1} << 16;
  while (seen.insert(cur).second) {
    if (seen.size() > kMaxBlocks) {
      return fail("limit membership did not converge within " +
                  std::to_string(kMaxBlocks) + " period blocks");
    }
    for (std::size_t i = 0; i < lasso.period.size(); ++i) {
      if (!advance(lasso.period[i])) {
        return fail("a prefix ending inside period position " +
                    std::to_string(i) +
                    " is not extendable into L_omega ∩ P");
      }
    }
  }
  return ok_checked();
}

Validation check_lasso_shape(const Lasso& lasso) {
  if (lasso.period.empty()) return fail("witness lasso has an empty period");
  return ok_checked();
}

}  // namespace

GenProduct explicit_product(const std::vector<const Buchi*>& operands,
                            std::size_t max_states) {
  if (operands.empty()) {
    throw std::invalid_argument("explicit_product: empty operand list");
  }
  const AlphabetRef& sigma = operands.front()->alphabet();
  for (const Buchi* op : operands) {
    require_same_alphabet(sigma, op->alphabet(), "explicit_product");
  }
  const std::size_t k = operands.size();

  GenProduct p(sigma);
  std::map<std::vector<State>, State> index;
  std::vector<std::vector<State>> tuples;
  std::vector<State> work;
  const auto intern = [&](const std::vector<State>& tuple) {
    auto [it, fresh] = index.try_emplace(tuple, kNoState);
    if (fresh) {
      if (tuples.size() >= max_states) {
        throw std::runtime_error("explicit_product: state cap exceeded");
      }
      it->second = p.structure.add_state(false);
      tuples.push_back(tuple);
      work.push_back(it->second);
    }
    return it->second;
  };

  // Cartesian product of per-operand choice lists, invoking `fn` per tuple.
  const auto for_each_tuple = [&](const std::vector<std::vector<State>>& lists,
                                  auto&& fn) {
    for (const std::vector<State>& l : lists) {
      if (l.empty()) return;
    }
    std::vector<std::size_t> pick(k, 0);
    std::vector<State> tuple(k);
    while (true) {
      for (std::size_t i = 0; i < k; ++i) tuple[i] = lists[i][pick[i]];
      fn(tuple);
      std::size_t i = 0;
      while (i < k && ++pick[i] == lists[i].size()) pick[i++] = 0;
      if (i == k) return;
    }
  };

  std::vector<std::vector<State>> lists(k);
  for (std::size_t i = 0; i < k; ++i) lists[i] = operands[i]->initial();
  for_each_tuple(lists, [&](const std::vector<State>& tuple) {
    p.structure.set_initial(intern(tuple));
  });

  while (!work.empty()) {
    const State s = work.back();
    work.pop_back();
    const std::vector<State> tuple = tuples[s];
    for (Symbol a = 0; a < sigma->size(); ++a) {
      for (std::size_t i = 0; i < k; ++i) {
        lists[i] = operands[i]->structure().successors(tuple[i], a);
      }
      for_each_tuple(lists, [&](const std::vector<State>& next) {
        p.structure.add_transition(s, a, intern(next));
      });
    }
  }

  p.sets.assign(k, DynBitset(p.structure.num_states()));
  for (State s = 0; s < p.structure.num_states(); ++s) {
    for (std::size_t i = 0; i < k; ++i) {
      if (operands[i]->is_accepting(tuples[s][i])) p.sets[i].set(s);
    }
  }
  return p;
}

DynBitset buchi_live(const Buchi& a) {
  const std::size_t n = a.num_states();
  const SccResult scc = tarjan_scc(adjacency(a.structure()));
  std::vector<bool> accepting_component(scc.count, false);
  for (State s = 0; s < n; ++s) {
    if (a.is_accepting(s) && scc.nontrivial[scc.component[s]]) {
      accepting_component[scc.component[s]] = true;
    }
  }
  DynBitset targets(n);
  for (State s = 0; s < n; ++s) {
    if (accepting_component[scc.component[s]]) targets.set(s);
  }
  return can_reach(a.structure(), targets);
}

DynBitset gen_live(const GenProduct& p) {
  const std::size_t n = p.structure.num_states();
  const std::size_t k = p.sets.size();
  const SccResult scc = tarjan_scc(adjacency(p.structure));
  // A component accepts when it is nontrivial and intersects every set.
  std::vector<std::vector<bool>> covers(
      k, std::vector<bool>(scc.count, false));
  for (State s = 0; s < n; ++s) {
    for (std::size_t i = 0; i < k; ++i) {
      if (p.sets[i].test(s)) covers[i][scc.component[s]] = true;
    }
  }
  DynBitset targets(n);
  for (State s = 0; s < n; ++s) {
    const std::uint32_t c = scc.component[s];
    if (!scc.nontrivial[c]) continue;
    bool all = true;
    for (std::size_t i = 0; i < k && all; ++i) all = covers[i][c];
    if (all) targets.set(s);
  }
  return can_reach(p.structure, targets);
}

bool gen_nonempty(const GenProduct& p) {
  const DynBitset live = gen_live(p);
  for (const State s : p.structure.initial()) {
    if (live.test(s)) return true;
  }
  return false;
}

Validation check_doomed_prefix(const Word& w, const Buchi& system,
                               const Buchi& property) {
  // Leg 1 (w ∈ pre(L_ω)): some run of w in the system ends in a state from
  // which an accepting run exists.
  const DynBitset after = system.structure().run(w);
  if (!after.intersects(buchi_live(system))) {
    return fail("prefix is not in pre(L_omega(system))");
  }
  // Leg 2 (no extension into L_ω ∩ P): no run of w in the explicit product
  // ends in a live product state.
  const GenProduct p = explicit_product({&system, &property});
  if (p.structure.run(w).intersects(gen_live(p))) {
    return fail("prefix extends into L_omega(system) ∩ P");
  }
  return ok_checked();
}

Validation check_safety_lasso(const Lasso& lasso, const Buchi& system,
                              const Buchi& property) {
  if (Validation v = check_lasso_shape(lasso); !v.valid) return v;
  if (!accepts_lasso(system, lasso)) {
    return fail("lasso is not in L_omega(system)");
  }
  if (accepts_lasso(property, lasso)) {
    return fail("lasso satisfies the property (not a ¬P witness)");
  }
  return check_limit_membership(lasso, system, property);
}

Validation check_safety_lasso(const Lasso& lasso, const Buchi& system,
                              const Buchi& property, Formula f,
                              const Labeling& lambda) {
  if (Validation v = check_lasso_shape(lasso); !v.valid) return v;
  if (!accepts_lasso(system, lasso)) {
    return fail("lasso is not in L_omega(system)");
  }
  // Ground-truth LTL semantics, bypassing the translation.
  if (eval_ltl(f, lasso.prefix, lasso.period, lambda)) {
    return fail("lasso satisfies the formula (not a ¬P witness)");
  }
  return check_limit_membership(lasso, system, property);
}

Validation check_violation_lasso(const Lasso& lasso, const Buchi& system,
                                 const Buchi& property) {
  if (Validation v = check_lasso_shape(lasso); !v.valid) return v;
  if (!accepts_lasso(system, lasso)) {
    return fail("lasso is not in L_omega(system)");
  }
  if (accepts_lasso(property, lasso)) {
    return fail("lasso satisfies the property (not a violation)");
  }
  return ok_checked();
}

Validation check_violation_lasso(const Lasso& lasso, const Buchi& system,
                                 Formula f, const Labeling& lambda) {
  if (Validation v = check_lasso_shape(lasso); !v.valid) return v;
  if (!accepts_lasso(system, lasso)) {
    return fail("lasso is not in L_omega(system)");
  }
  if (eval_ltl(f, lasso.prefix, lasso.period, lambda)) {
    return fail("lasso satisfies the formula (not a violation)");
  }
  return ok_checked();
}

Validation validate(const RelativeLivenessResult& result, const Buchi& system,
                    const Buchi& property) {
  if (result.exhausted) {
    return not_checked("budget exhausted; no verdict to certify");
  }
  if (result.holds) return not_checked("positive verdict carries no witness");
  if (!result.violating_prefix) {
    return fail("negative verdict without a violating prefix");
  }
  return check_doomed_prefix(*result.violating_prefix, system, property);
}

Validation validate(const RelativeLivenessResult& result, const Buchi& system,
                    Formula f, const Labeling& lambda) {
  if (result.exhausted) {
    return not_checked("budget exhausted; no verdict to certify");
  }
  if (result.holds) return not_checked("positive verdict carries no witness");
  if (!result.violating_prefix) {
    return fail("negative verdict without a violating prefix");
  }
  const Buchi property = translate_ltl(f, lambda);
  return check_doomed_prefix(*result.violating_prefix, system, property);
}

Validation validate(const RelativeSafetyResult& result, const Buchi& system,
                    const Buchi& property) {
  if (result.exhausted) {
    return not_checked("budget exhausted; no verdict to certify");
  }
  if (result.holds) return not_checked("positive verdict carries no witness");
  if (!result.counterexample) {
    return fail("negative verdict without a counterexample lasso");
  }
  return check_safety_lasso(*result.counterexample, system, property);
}

Validation validate(const RelativeSafetyResult& result, const Buchi& system,
                    Formula f, const Labeling& lambda) {
  if (result.exhausted) {
    return not_checked("budget exhausted; no verdict to certify");
  }
  if (result.holds) return not_checked("positive verdict carries no witness");
  if (!result.counterexample) {
    return fail("negative verdict without a counterexample lasso");
  }
  const Buchi property = translate_ltl(f, lambda);
  return check_safety_lasso(*result.counterexample, system, property, f,
                            lambda);
}

Validation validate(const SatisfactionResult& result, const Buchi& system,
                    const Buchi& property) {
  if (result.exhausted) {
    return not_checked("budget exhausted; no verdict to certify");
  }
  if (result.holds) return not_checked("positive verdict carries no witness");
  if (!result.counterexample) {
    return fail("negative verdict without a counterexample lasso");
  }
  return check_violation_lasso(*result.counterexample, system, property);
}

Validation validate(const SatisfactionResult& result, const Buchi& system,
                    Formula f, const Labeling& lambda) {
  if (result.exhausted) {
    return not_checked("budget exhausted; no verdict to certify");
  }
  if (result.holds) return not_checked("positive verdict carries no witness");
  if (!result.counterexample) {
    return fail("negative verdict without a counterexample lasso");
  }
  return check_violation_lasso(*result.counterexample, system, f, lambda);
}

}  // namespace rlv::cert

#pragma once

// Brute-force reference decider for relative liveness, relative safety, and
// classical satisfaction on SMALL instances. Everything here is built from
// the dumb primitives of cert/certificate.hpp — explicit product
// materialization, Tarjan SCC live-state marking, and plain subset
// construction — and shares no code with the optimized kernels
// (lang/inclusion antichains, on-the-fly products, nested-DFS emptiness,
// rank-based complementation). The differential fuzz harness
// (tools/rlv_fuzz.cpp) compares the kernels against this oracle on random
// instances; a disagreement is a bug in one of the two, and the certificate
// checker usually tells you which.
//
// Decision procedures (same characterizations, naive realizations):
//
//   satisfaction   L_ω ⊆ P       ⟺  product(system, ¬P) has no accepting
//                                    SCC reachable from an initial state;
//   rel. liveness  (Lemma 4.3)    ⟺  no word reaches a live system state
//                                    set while the (live-pruned) product
//                                    state set has died — searched over
//                                    pairs of determinized subsets;
//   rel. safety    (Lemma 4.4)    ⟺  product(system, D, ¬P) empty, where D
//                                    is the deterministic all-accepting
//                                    safety automaton for lim(pre(L_ω ∩ P))
//                                    built by subset construction over the
//                                    live states of product(system, P).
//
// The automaton flavors take ¬P as an explicit operand (complementation is
// itself an optimized kernel; the caller chooses how to obtain ¬P). The
// formula flavors derive P and ¬P via translate_ltl / translate_ltl_negated
// — translating f and ¬f independently, so a translation bug shows up as a
// kernel/oracle mismatch instead of cancelling out.
//
// All entry points throw std::runtime_error when an internal construction
// exceeds `max_states` — the oracle is exponential by design and must only
// be pointed at small instances.

#include <cstddef>

#include "rlv/cert/certificate.hpp"
#include "rlv/ltl/ast.hpp"
#include "rlv/omega/buchi.hpp"

namespace rlv::cert {

inline constexpr std::size_t kOracleDefaultMaxStates = std::size_t{1} << 18;

/// L_ω(system) ⊆ P, with ¬P given as `negated_property`.
[[nodiscard]] bool oracle_satisfies(
    const Buchi& system, const Buchi& negated_property,
    std::size_t max_states = kOracleDefaultMaxStates);
[[nodiscard]] bool oracle_satisfies(
    const Buchi& system, Formula f, const Labeling& lambda,
    std::size_t max_states = kOracleDefaultMaxStates);

/// Is L_ω(property) a relative liveness property of L_ω(system)? (Def 4.1,
/// decided per Lemma 4.3 by brute-force subset-pair search.)
[[nodiscard]] bool oracle_relative_liveness(
    const Buchi& system, const Buchi& property,
    std::size_t max_states = kOracleDefaultMaxStates);
[[nodiscard]] bool oracle_relative_liveness(
    const Buchi& system, Formula f, const Labeling& lambda,
    std::size_t max_states = kOracleDefaultMaxStates);

/// Is L_ω(property) a relative safety property of L_ω(system)? (Def 4.2,
/// decided per Lemma 4.4; ¬P given as `negated_property`.)
[[nodiscard]] bool oracle_relative_safety(
    const Buchi& system, const Buchi& property, const Buchi& negated_property,
    std::size_t max_states = kOracleDefaultMaxStates);
[[nodiscard]] bool oracle_relative_safety(
    const Buchi& system, Formula f, const Labeling& lambda,
    std::size_t max_states = kOracleDefaultMaxStates);

}  // namespace rlv::cert

#include "rlv/cert/oracle.hpp"

#include <map>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "rlv/ltl/translate.hpp"

namespace rlv::cert {

namespace {

DynBitset pruned_initial(const Nfa& structure, const DynBitset& live) {
  DynBitset init(structure.num_states());
  for (const State s : structure.initial()) {
    if (live.test(s)) init.set(s);
  }
  return init;
}

DynBitset pruned_step(const Nfa& structure, const DynBitset& cur, Symbol a,
                      const DynBitset& live) {
  DynBitset next = structure.step(cur, a);
  next &= live;
  return next;
}

}  // namespace

bool oracle_satisfies(const Buchi& system, const Buchi& negated_property,
                      std::size_t max_states) {
  return !gen_nonempty(
      explicit_product({&system, &negated_property}, max_states));
}

bool oracle_satisfies(const Buchi& system, Formula f, const Labeling& lambda,
                      std::size_t max_states) {
  const Buchi negated = translate_ltl_negated(f, lambda);
  return oracle_satisfies(system, negated, max_states);
}

bool oracle_relative_liveness(const Buchi& system, const Buchi& property,
                              std::size_t max_states) {
  require_same_alphabet(system.alphabet(), property.alphabet(),
                        "oracle_relative_liveness");
  // Lemma 4.3: pre(L_ω) ⊆ pre(L_ω ∩ P). A word w is in pre(L_ω) iff a run
  // of w ends in a live system state, and in pre(L_ω ∩ P) iff a run ends in
  // a live product state. Pruning both subset simulations to live states is
  // exact (dead states never reach live ones), so the inclusion fails iff
  // some reachable pair has a non-empty system subset and an empty product
  // subset — found by BFS over the (finite) pairs of subsets.
  const DynBitset sys_live = buchi_live(system);
  const GenProduct prod = explicit_product({&system, &property}, max_states);
  const DynBitset prod_live = gen_live(prod);

  using Pair = std::pair<DynBitset, DynBitset>;
  const Pair start{pruned_initial(system.structure(), sys_live),
                   pruned_initial(prod.structure, prod_live)};
  if (start.first.none()) return true;  // pre(L_ω) = ∅: vacuously included
  if (start.second.none()) return false;

  std::set<Pair> seen{start};
  std::vector<Pair> work{start};
  const std::size_t num_symbols = system.alphabet()->size();
  while (!work.empty()) {
    const Pair cur = std::move(work.back());
    work.pop_back();
    for (Symbol a = 0; a < num_symbols; ++a) {
      Pair next{pruned_step(system.structure(), cur.first, a, sys_live),
                pruned_step(prod.structure, cur.second, a, prod_live)};
      if (next.first.none()) continue;  // word left pre(L_ω): no constraint
      if (next.second.none()) return false;
      if (seen.insert(next).second) {
        if (seen.size() > max_states) {
          throw std::runtime_error(
              "oracle_relative_liveness: subset-pair cap exceeded");
        }
        work.push_back(std::move(next));
      }
    }
  }
  return true;
}

bool oracle_relative_liveness(const Buchi& system, Formula f,
                              const Labeling& lambda, std::size_t max_states) {
  const Buchi property = translate_ltl(f, lambda);
  return oracle_relative_liveness(system, property, max_states);
}

bool oracle_relative_safety(const Buchi& system, const Buchi& property,
                            const Buchi& negated_property,
                            std::size_t max_states) {
  require_same_alphabet(system.alphabet(), property.alphabet(),
                        "oracle_relative_safety");
  require_same_alphabet(system.alphabet(), negated_property.alphabet(),
                        "oracle_relative_safety");
  // Lemma 4.4: RS ⟺ L_ω ∩ lim(pre(L_ω ∩ P)) ∩ ¬P = ∅. lim(pre(L)) of the
  // prefix-closed pre(L_ω ∩ P) is recognized by the deterministic
  // all-accepting safety automaton D obtained by subset construction over
  // the live states of product(system, P): an ω-word is in the limit iff
  // its deterministic run never dies.
  const GenProduct prod = explicit_product({&system, &property}, max_states);
  const DynBitset live = gen_live(prod);
  const DynBitset init = pruned_initial(prod.structure, live);
  if (init.none()) return true;  // lim(pre(L_ω ∩ P)) = ∅

  Nfa det(system.alphabet());
  std::map<DynBitset, State> index;
  std::vector<DynBitset> subsets;
  std::vector<State> work;
  const auto intern = [&](const DynBitset& subset) {
    auto [it, fresh] = index.try_emplace(subset, kNoState);
    if (fresh) {
      if (subsets.size() >= max_states) {
        throw std::runtime_error("oracle_relative_safety: subset cap exceeded");
      }
      it->second = det.add_state(true);
      subsets.push_back(subset);
      work.push_back(it->second);
    }
    return it->second;
  };
  det.set_initial(intern(init));
  const std::size_t num_symbols = system.alphabet()->size();
  while (!work.empty()) {
    const State s = work.back();
    work.pop_back();
    for (Symbol a = 0; a < num_symbols; ++a) {
      const DynBitset next = pruned_step(prod.structure, subsets[s], a, live);
      if (next.none()) continue;  // run dies: word leaves the limit
      det.add_transition(s, a, intern(next));
    }
  }

  const Buchi closure = Buchi::from_structure(std::move(det));
  return !gen_nonempty(
      explicit_product({&system, &closure, &negated_property}, max_states));
}

bool oracle_relative_safety(const Buchi& system, Formula f,
                            const Labeling& lambda, std::size_t max_states) {
  const Buchi property = translate_ltl(f, lambda);
  const Buchi negated = translate_ltl_negated(f, lambda);
  return oracle_relative_safety(system, property, negated, max_states);
}

}  // namespace rlv::cert

#pragma once

// Rewriting-based LTL simplification, applied before translation to shrink
// the tableau. All rules are classical equivalences:
//
//   F F ξ = F ξ            G G ξ = G ξ           F G F ξ = G F ξ
//   G F G ξ = F G ξ        ξ U ξ = ξ             ξ R ξ = ξ
//   ξ U (ξ U ζ) = ξ U ζ    ξ R (ξ R ζ) = ξ R ζ
//   X ξ ∧ X ζ = X(ξ∧ζ)     X ξ ∨ X ζ = X(ξ∨ζ)    (Xξ) U (Xζ) = X(ξ U ζ)
//   Gξ ∧ Gζ = G(ξ∧ζ)       Fξ ∨ Fζ = F(ξ∨ζ)      (factoring direction)
//   ξ ∧ ¬ξ = false         ξ ∨ ¬ξ = true         (¬ computed in PNF)
//   ξ ∧ (ξ∨ζ) = ξ          ξ ∨ (ξ∧ζ) = ξ         (absorption)
//
// The input is brought into positive normal form first; the result is in
// positive normal form and equivalent on every ω-word (property-tested
// against the evaluator).

#include "rlv/ltl/ast.hpp"

namespace rlv {

/// Simplifies to a fixpoint of the rule set. Never returns a larger
/// formula.
[[nodiscard]] Formula simplify_ltl(Formula f);

}  // namespace rlv

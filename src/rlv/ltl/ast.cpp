#include "rlv/ltl/ast.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "rlv/util/hash.hpp"

namespace rlv {

/// Interned node. Nodes live forever in the process-wide intern table (a
/// deliberate arena: verification runs build bounded formula sets, and
/// immortality is what makes pointer equality sound).
class LtlNode {
 public:
  LtlOp op;
  std::string atom;          // kAtom only
  const LtlNode* left = nullptr;
  const LtlNode* right = nullptr;
};

namespace {

struct NodeKey {
  LtlOp op;
  std::string atom;
  const LtlNode* left;
  const LtlNode* right;

  friend bool operator==(const NodeKey&, const NodeKey&) = default;
};

struct NodeKeyHash {
  std::size_t operator()(const NodeKey& k) const {
    std::size_t h = static_cast<std::size_t>(k.op);
    h = hash_combine(h, std::hash<std::string>{}(k.atom));
    h = hash_combine(h, std::hash<const LtlNode*>{}(k.left));
    h = hash_combine(h, std::hash<const LtlNode*>{}(k.right));
    return h;
  }
};

/// Process-wide intern table, guarded by a reader/writer lock so that
/// formula construction is safe from concurrent threads (the rlv::engine
/// thread pool translates formulas in parallel). Nodes are heap-allocated
/// and immortal, so a pointer handed out under the lock stays valid forever
/// and pointer equality remains sound across threads.
std::unordered_map<NodeKey, std::unique_ptr<LtlNode>, NodeKeyHash>&
intern_table() {
  static auto* table =
      new std::unordered_map<NodeKey, std::unique_ptr<LtlNode>, NodeKeyHash>();
  return *table;
}

std::shared_mutex& intern_mutex() {
  static auto* mutex = new std::shared_mutex();
  return *mutex;
}

const LtlNode* intern(LtlOp op, std::string atom, const LtlNode* left,
                      const LtlNode* right) {
  NodeKey key{op, atom, left, right};
  auto& table = intern_table();
  {
    std::shared_lock lock(intern_mutex());
    auto it = table.find(key);
    if (it != table.end()) return it->second.get();
  }
  std::unique_lock lock(intern_mutex());
  auto it = table.find(key);  // re-check: another writer may have won
  if (it == table.end()) {
    auto node = std::make_unique<LtlNode>();
    node->op = op;
    node->atom = std::move(atom);
    node->left = left;
    node->right = right;
    it = table.emplace(std::move(key), std::move(node)).first;
  }
  return it->second.get();
}

Formula wrap(const LtlNode* node);

}  // namespace

class LtlFactory {
 public:
  static Formula make(const LtlNode* node) { return Formula(node); }
};

namespace {
Formula wrap(const LtlNode* node) { return LtlFactory::make(node); }
}  // namespace

LtlOp Formula::op() const { return node_->op; }

const std::string& Formula::atom_name() const {
  assert(node_->op == LtlOp::kAtom);
  return node_->atom;
}

Formula Formula::left() const { return wrap(node_->left); }
Formula Formula::right() const { return wrap(node_->right); }

bool Formula::is_pure_boolean() const {
  switch (op()) {
    case LtlOp::kTrue:
    case LtlOp::kFalse:
    case LtlOp::kAtom:
      return true;
    case LtlOp::kNot:
      return left().is_pure_boolean();
    case LtlOp::kAnd:
    case LtlOp::kOr:
      return left().is_pure_boolean() && right().is_pure_boolean();
    case LtlOp::kNext:
    case LtlOp::kUntil:
    case LtlOp::kRelease:
      return false;
  }
  return false;
}

bool Formula::is_positive_normal_form() const {
  switch (op()) {
    case LtlOp::kTrue:
    case LtlOp::kFalse:
    case LtlOp::kAtom:
      return true;
    case LtlOp::kNot:
      return left().op() == LtlOp::kAtom;
    case LtlOp::kNext:
      return left().is_positive_normal_form();
    case LtlOp::kAnd:
    case LtlOp::kOr:
    case LtlOp::kUntil:
    case LtlOp::kRelease:
      return left().is_positive_normal_form() &&
             right().is_positive_normal_form();
  }
  return false;
}

std::vector<std::string> Formula::atoms() const {
  std::vector<std::string> result;
  std::deque<Formula> work{*this};
  while (!work.empty()) {
    const Formula f = work.front();
    work.pop_front();
    switch (f.op()) {
      case LtlOp::kTrue:
      case LtlOp::kFalse:
        break;
      case LtlOp::kAtom:
        result.push_back(f.atom_name());
        break;
      case LtlOp::kNot:
      case LtlOp::kNext:
        work.push_back(f.left());
        break;
      case LtlOp::kAnd:
      case LtlOp::kOr:
      case LtlOp::kUntil:
      case LtlOp::kRelease:
        work.push_back(f.left());
        work.push_back(f.right());
        break;
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::size_t Formula::size() const {
  switch (op()) {
    case LtlOp::kTrue:
    case LtlOp::kFalse:
    case LtlOp::kAtom:
      return 1;
    case LtlOp::kNot:
    case LtlOp::kNext:
      return 1 + left().size();
    case LtlOp::kAnd:
    case LtlOp::kOr:
    case LtlOp::kUntil:
    case LtlOp::kRelease:
      return 1 + left().size() + right().size();
  }
  return 1;
}

namespace {

// Precedence for printing: higher binds tighter.
int precedence(LtlOp op) {
  switch (op) {
    case LtlOp::kTrue:
    case LtlOp::kFalse:
    case LtlOp::kAtom:
      return 6;
    case LtlOp::kNot:
    case LtlOp::kNext:
      return 5;
    case LtlOp::kUntil:
    case LtlOp::kRelease:
      return 4;
    case LtlOp::kAnd:
      return 3;
    case LtlOp::kOr:
      return 2;
  }
  return 0;
}

void print(Formula f, int parent_prec, std::string& out) {
  const int prec = precedence(f.op());
  // Recognize the derived-operator patterns for readability.
  if (f.op() == LtlOp::kUntil && f.left().op() == LtlOp::kTrue) {
    out += "F ";
    print(f.right(), 5, out);
    return;
  }
  if (f.op() == LtlOp::kRelease && f.left().op() == LtlOp::kFalse) {
    out += "G ";
    print(f.right(), 5, out);
    return;
  }
  const bool parens = prec < parent_prec;
  if (parens) out += '(';
  switch (f.op()) {
    case LtlOp::kTrue:
      out += "true";
      break;
    case LtlOp::kFalse:
      out += "false";
      break;
    case LtlOp::kAtom:
      out += f.atom_name();
      break;
    case LtlOp::kNot:
      out += '!';
      print(f.left(), prec + 1, out);
      break;
    case LtlOp::kNext:
      out += "X ";
      print(f.left(), prec, out);
      break;
    case LtlOp::kAnd:
      // Right operand gets prec+1 so that And(a, And(b, c)) prints with
      // parentheses and the parser's left associativity round-trips the
      // exact tree.
      print(f.left(), prec, out);
      out += " && ";
      print(f.right(), prec + 1, out);
      break;
    case LtlOp::kOr:
      print(f.left(), prec, out);
      out += " || ";
      print(f.right(), prec + 1, out);
      break;
    case LtlOp::kUntil:
      print(f.left(), prec + 1, out);
      out += " U ";
      print(f.right(), prec + 1, out);
      break;
    case LtlOp::kRelease:
      print(f.left(), prec + 1, out);
      out += " R ";
      print(f.right(), prec + 1, out);
      break;
  }
  if (parens) out += ')';
}

}  // namespace

std::string Formula::to_string() const {
  std::string out;
  print(*this, 0, out);
  return out;
}

Formula f_true() { return wrap(intern(LtlOp::kTrue, {}, nullptr, nullptr)); }
Formula f_false() { return wrap(intern(LtlOp::kFalse, {}, nullptr, nullptr)); }

Formula f_atom(std::string_view name) {
  assert(!name.empty());
  return wrap(intern(LtlOp::kAtom, std::string(name), nullptr, nullptr));
}

Formula f_not(Formula f) {
  switch (f.op()) {
    case LtlOp::kTrue:
      return f_false();
    case LtlOp::kFalse:
      return f_true();
    case LtlOp::kNot:
      return f.left();  // ¬¬ξ = ξ
    default:
      return wrap(intern(LtlOp::kNot, {}, f.raw(), nullptr));
  }
}

Formula f_and(Formula a, Formula b) {
  if (a.op() == LtlOp::kFalse || b.op() == LtlOp::kFalse) return f_false();
  if (a.op() == LtlOp::kTrue) return b;
  if (b.op() == LtlOp::kTrue) return a;
  if (a == b) return a;
  return wrap(intern(LtlOp::kAnd, {}, a.raw(), b.raw()));
}

Formula f_or(Formula a, Formula b) {
  if (a.op() == LtlOp::kTrue || b.op() == LtlOp::kTrue) return f_true();
  if (a.op() == LtlOp::kFalse) return b;
  if (b.op() == LtlOp::kFalse) return a;
  if (a == b) return a;
  return wrap(intern(LtlOp::kOr, {}, a.raw(), b.raw()));
}

Formula f_next(Formula f) {
  return wrap(intern(LtlOp::kNext, {}, f.raw(), nullptr));
}

Formula f_until(Formula a, Formula b) {
  if (b.op() == LtlOp::kTrue || b.op() == LtlOp::kFalse) return b;
  return wrap(intern(LtlOp::kUntil, {}, a.raw(), b.raw()));
}

Formula f_release(Formula a, Formula b) {
  if (b.op() == LtlOp::kTrue || b.op() == LtlOp::kFalse) return b;
  return wrap(intern(LtlOp::kRelease, {}, a.raw(), b.raw()));
}

Formula f_implies(Formula a, Formula b) { return f_or(f_not(a), b); }

Formula f_iff(Formula a, Formula b) {
  return f_and(f_implies(a, b), f_implies(b, a));
}

Formula f_eventually(Formula f) { return f_until(f_true(), f); }
Formula f_always(Formula f) { return f_release(f_false(), f); }

Formula f_before(Formula a, Formula b) {
  // ξ B ζ = ¬(¬ξ U ζ) = ξ R ¬ζ.
  return f_release(a, f_not(b));
}

Labeling Labeling::canonical(AlphabetRef sigma) {
  std::vector<std::vector<std::string>> labels;
  labels.reserve(sigma->size());
  for (Symbol s = 0; s < sigma->size(); ++s) {
    labels.push_back({sigma->name(s)});
  }
  return Labeling(std::move(sigma), std::move(labels));
}

Labeling::Labeling(AlphabetRef sigma,
                   std::vector<std::vector<std::string>> labels)
    : sigma_(std::move(sigma)), labels_(std::move(labels)) {
  if (labels_.size() != sigma_->size()) {
    // Reached from translate_ltl via user-supplied labelings; an assert
    // would vanish under NDEBUG and turn into out-of-range reads.
    throw std::invalid_argument(
        "Labeling: need exactly one label set per alphabet symbol (got " +
        std::to_string(labels_.size()) + " for |Sigma| = " +
        std::to_string(sigma_->size()) + ")");
  }
  for (auto& set : labels_) std::sort(set.begin(), set.end());
}

bool Labeling::holds(Symbol s, const std::string& name) const {
  assert(s < labels_.size());
  return std::binary_search(labels_[s].begin(), labels_[s].end(), name);
}

}  // namespace rlv

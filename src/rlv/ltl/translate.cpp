#include "rlv/ltl/translate.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>
#include <vector>

#include "rlv/ltl/pnf.hpp"

namespace rlv {

namespace {

using FormulaSet = std::vector<Formula>;  // sorted by pointer order

bool contains(const FormulaSet& set, Formula f) {
  return std::binary_search(set.begin(), set.end(), f);
}

void insert(FormulaSet& set, Formula f) {
  auto it = std::lower_bound(set.begin(), set.end(), f);
  if (it == set.end() || !(*it == f)) set.insert(it, f);
}

/// A completed tableau node: `old` records the formulas asserted at the
/// current position (literals constrain the letter read on entering the
/// state), `next` the obligations postponed to the following position.
struct NodeKey {
  FormulaSet old;
  FormulaSet next;

  friend bool operator<(const NodeKey& a, const NodeKey& b) {
    if (a.old != b.old) return a.old < b.old;
    return a.next < b.next;
  }
  friend bool operator==(const NodeKey& a, const NodeKey& b) = default;
};

struct PendingNode {
  FormulaSet todo;
  FormulaSet old;
  FormulaSet next;
};

/// Is `f` a literal (atom or negated atom)? Used by assertions only.
[[maybe_unused]] bool is_literal(Formula f) {
  return f.op() == LtlOp::kAtom ||
         (f.op() == LtlOp::kNot && f.left().op() == LtlOp::kAtom);
}

/// Expands `seed` into the set of completed nodes ("cover" of the formula
/// set): each completed node is one disjunct of the tableau decomposition.
std::vector<NodeKey> cover(FormulaSet seed, Budget* budget) {
  std::vector<NodeKey> done;
  std::vector<PendingNode> work;
  work.push_back({std::move(seed), {}, {}});

  while (!work.empty()) {
    budget_tick(budget);
    PendingNode node = std::move(work.back());
    work.pop_back();

    if (node.todo.empty()) {
      done.push_back({std::move(node.old), std::move(node.next)});
      continue;
    }
    const Formula f = node.todo.back();
    node.todo.pop_back();

    if (contains(node.old, f)) {
      work.push_back(std::move(node));
      continue;
    }

    switch (f.op()) {
      case LtlOp::kTrue:
        work.push_back(std::move(node));
        break;
      case LtlOp::kFalse:
        break;  // contradiction: drop the node
      case LtlOp::kAtom:
      case LtlOp::kNot: {
        assert(is_literal(f));
        const Formula negation =
            (f.op() == LtlOp::kAtom) ? f_not(f) : f.left();
        if (contains(node.old, negation)) break;  // p ∧ ¬p: drop
        insert(node.old, f);
        work.push_back(std::move(node));
        break;
      }
      case LtlOp::kAnd:
        insert(node.old, f);
        insert(node.todo, f.left());
        insert(node.todo, f.right());
        work.push_back(std::move(node));
        break;
      case LtlOp::kOr: {
        insert(node.old, f);
        PendingNode other = node;
        insert(node.todo, f.left());
        insert(other.todo, f.right());
        work.push_back(std::move(node));
        work.push_back(std::move(other));
        break;
      }
      case LtlOp::kNext:
        insert(node.old, f);
        insert(node.next, f.left());
        work.push_back(std::move(node));
        break;
      case LtlOp::kUntil: {
        // fUg = g ∨ (f ∧ X(fUg)).
        insert(node.old, f);
        PendingNode now = node;
        insert(now.todo, f.right());
        PendingNode later = std::move(node);
        insert(later.todo, f.left());
        insert(later.next, f);
        work.push_back(std::move(now));
        work.push_back(std::move(later));
        break;
      }
      case LtlOp::kRelease: {
        // fRg = (g ∧ f) ∨ (g ∧ X(fRg)).
        insert(node.old, f);
        PendingNode now = node;
        insert(now.todo, f.left());
        insert(now.todo, f.right());
        PendingNode later = std::move(node);
        insert(later.todo, f.right());
        insert(later.next, f);
        work.push_back(std::move(now));
        work.push_back(std::move(later));
        break;
      }
    }
  }

  std::sort(done.begin(), done.end());
  done.erase(std::unique(done.begin(), done.end()), done.end());
  return done;
}

/// All Until subformulas of a PNF formula.
void until_subformulas(Formula f, FormulaSet& out) {
  switch (f.op()) {
    case LtlOp::kTrue:
    case LtlOp::kFalse:
    case LtlOp::kAtom:
      return;
    case LtlOp::kNot:
    case LtlOp::kNext:
      until_subformulas(f.left(), out);
      return;
    case LtlOp::kUntil:
      insert(out, f);
      until_subformulas(f.left(), out);
      until_subformulas(f.right(), out);
      return;
    case LtlOp::kAnd:
    case LtlOp::kOr:
    case LtlOp::kRelease:
      until_subformulas(f.left(), out);
      until_subformulas(f.right(), out);
      return;
  }
}

/// Is letter `a` consistent with the literals recorded in `old`?
bool letter_compatible(const FormulaSet& old, Symbol a,
                       const Labeling& lambda) {
  for (const Formula f : old) {
    if (f.op() == LtlOp::kAtom) {
      if (!lambda.holds(a, f.atom_name())) return false;
    } else if (f.op() == LtlOp::kNot) {
      if (lambda.holds(a, f.left().atom_name())) return false;
    }
  }
  return true;
}

/// Unscoped worker shared by the public entry points, each of which opens
/// its own StageScope (so nested calls don't inflate the stage call count).
GenBuchi translate_gen_impl(Formula f, const Labeling& lambda,
                            Budget* budget) {
  const Formula phi = to_pnf(f);
  const AlphabetRef& sigma = lambda.alphabet();

  GenBuchi result(sigma);

  FormulaSet untils;
  until_subformulas(phi, untils);

  std::map<NodeKey, State> ids;
  std::vector<NodeKey> keys;  // parallel to state ids (offset by init)
  std::vector<State> worklist;

  const State init = result.structure.add_state();
  result.structure.set_initial(init);

  auto intern = [&](NodeKey key) -> State {
    auto [it, inserted] = ids.emplace(std::move(key), kNoState);
    if (inserted) {
      budget_charge(budget);
      it->second = result.structure.add_state();
      keys.push_back(it->first);
      worklist.push_back(it->second);
    }
    return it->second;
  };

  auto connect = [&](State from, const NodeKey& target_key, State target) {
    for (Symbol a = 0; a < sigma->size(); ++a) {
      if (letter_compatible(target_key.old, a, lambda)) {
        result.structure.add_transition(from, a, target);
      }
    }
  };

  for (NodeKey& node : cover({phi}, budget)) {
    NodeKey copy = node;
    const State s = intern(std::move(node));
    connect(init, copy, s);
  }

  while (!worklist.empty()) {
    const State s = worklist.back();
    worklist.pop_back();
    const NodeKey current = keys[s - 1];  // states are init + dense ids
    for (NodeKey& succ : cover(current.next, budget)) {
      NodeKey copy = succ;
      const State t = intern(std::move(succ));
      connect(s, copy, t);
    }
  }

  // One acceptance set per Until subformula ψ = fUg: states where ψ is not
  // asserted or where g is asserted. The initial state occurs at most once
  // in a run, so its membership is irrelevant; include it for neatness.
  for (const Formula psi : untils) {
    DynBitset set(result.structure.num_states());
    set.set(init);
    for (State s = 1; s < result.structure.num_states(); ++s) {
      const NodeKey& key = keys[s - 1];
      if (!contains(key.old, psi) || contains(key.old, psi.right())) {
        set.set(s);
      }
    }
    result.sets.push_back(std::move(set));
  }
  return result;
}

}  // namespace

GenBuchi translate_ltl_gen(Formula f, const Labeling& lambda, Budget* budget) {
  StageScope scope(budget, Stage::kTranslate);
  return translate_gen_impl(f, lambda, budget);
}

Buchi translate_ltl(Formula f, const Labeling& lambda, Budget* budget) {
  StageScope scope(budget, Stage::kTranslate);
  return degeneralize(translate_gen_impl(f, lambda, budget), budget);
}

Buchi translate_ltl_negated(Formula f, const Labeling& lambda,
                            Budget* budget) {
  StageScope scope(budget, Stage::kTranslate);
  return degeneralize(translate_gen_impl(f_not(f), lambda, budget), budget);
}

}  // namespace rlv

#include "rlv/ltl/simplify.hpp"

#include <unordered_map>

#include "rlv/ltl/pnf.hpp"

namespace rlv {

namespace {

bool is_f(Formula f) {  // true U ξ
  return f.op() == LtlOp::kUntil && f.left().op() == LtlOp::kTrue;
}
bool is_g(Formula f) {  // false R ξ
  return f.op() == LtlOp::kRelease && f.left().op() == LtlOp::kFalse;
}

/// Are a and b syntactic complements (in PNF)? Pointer comparison against
/// the pushed-in negation, cheap thanks to hash-consing.
bool complementary(Formula a, Formula b) { return negate_pnf(a) == b; }

class Simplifier {
 public:
  Formula run(Formula f) {
    auto it = memo_.find(f);
    if (it != memo_.end()) return it->second;
    Formula result = rewrite(f);
    // Iterate locally until stable (rules can cascade).
    while (true) {
      const Formula next = rewrite(result);
      if (next == result) break;
      result = next;
    }
    memo_.emplace(f, result);
    return result;
  }

 private:
  Formula rewrite(Formula f) {
    switch (f.op()) {
      case LtlOp::kTrue:
      case LtlOp::kFalse:
      case LtlOp::kAtom:
      case LtlOp::kNot:
        return f;
      case LtlOp::kAnd: {
        const Formula a = run(f.left());
        const Formula b = run(f.right());
        if (complementary(a, b)) return f_false();
        // Absorption: a ∧ (a ∨ c) = a.
        if (b.op() == LtlOp::kOr && (b.left() == a || b.right() == a)) return a;
        if (a.op() == LtlOp::kOr && (a.left() == b || a.right() == b)) return b;
        // X ξ ∧ X ζ = X(ξ ∧ ζ).
        if (a.op() == LtlOp::kNext && b.op() == LtlOp::kNext) {
          return f_next(run(f_and(a.left(), b.left())));
        }
        // G ξ ∧ G ζ = G(ξ ∧ ζ).
        if (is_g(a) && is_g(b)) {
          return f_always(run(f_and(a.right(), b.right())));
        }
        return f_and(a, b);
      }
      case LtlOp::kOr: {
        const Formula a = run(f.left());
        const Formula b = run(f.right());
        if (complementary(a, b)) return f_true();
        if (b.op() == LtlOp::kAnd && (b.left() == a || b.right() == a)) {
          return a;
        }
        if (a.op() == LtlOp::kAnd && (a.left() == b || a.right() == b)) {
          return b;
        }
        if (a.op() == LtlOp::kNext && b.op() == LtlOp::kNext) {
          return f_next(run(f_or(a.left(), b.left())));
        }
        // F ξ ∨ F ζ = F(ξ ∨ ζ).
        if (is_f(a) && is_f(b)) {
          return f_eventually(run(f_or(a.right(), b.right())));
        }
        return f_or(a, b);
      }
      case LtlOp::kNext:
        return f_next(run(f.left()));
      case LtlOp::kUntil: {
        const Formula a = run(f.left());
        Formula b = run(f.right());
        if (a == b) return a;  // ξ U ξ = ξ
        // ξ U (ξ U ζ) = ξ U ζ.
        if (b.op() == LtlOp::kUntil && b.left() == a) b = b.right();
        if (a.op() == LtlOp::kTrue) {
          // F F ζ = F ζ.
          if (is_f(b)) return b;
          // F G F ζ = G F ζ.
          if (is_g(b) && is_f(b.right())) return b;
        }
        // (X ξ) U (X ζ) = X(ξ U ζ).
        if (a.op() == LtlOp::kNext && b.op() == LtlOp::kNext) {
          return f_next(run(f_until(a.left(), b.left())));
        }
        return f_until(a, b);
      }
      case LtlOp::kRelease: {
        const Formula a = run(f.left());
        Formula b = run(f.right());
        if (a == b) return a;  // ξ R ξ = ξ
        // ξ R (ξ R ζ) = ξ R ζ.
        if (b.op() == LtlOp::kRelease && b.left() == a) b = b.right();
        if (a.op() == LtlOp::kFalse) {
          // G G ζ = G ζ.
          if (is_g(b)) return b;
          // G F G ζ = F G ζ.
          if (is_f(b) && is_g(b.right())) return b;
        }
        if (a.op() == LtlOp::kNext && b.op() == LtlOp::kNext) {
          return f_next(run(f_release(a.left(), b.left())));
        }
        return f_release(a, b);
      }
    }
    return f;
  }

  std::unordered_map<Formula, Formula, FormulaHash> memo_;
};

}  // namespace

Formula simplify_ltl(Formula f) {
  Simplifier simplifier;
  return simplifier.run(to_pnf(f));
}

}  // namespace rlv

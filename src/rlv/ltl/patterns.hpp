#pragma once

// The common specification patterns (Dwyer et al.) as formula builders, so
// example code and downstream users don't hand-assemble operator trees.
// All patterns are over atom names; combine with Labeling::canonical for
// action-based systems.

#include <string_view>

#include "rlv/ltl/ast.hpp"

namespace rlv {
namespace patterns {

/// □◇p — p happens infinitely often (the paper's running property shape).
[[nodiscard]] Formula infinitely_often(std::string_view p);

/// ◇□p — eventually p forever (stabilization).
[[nodiscard]] Formula eventually_always(std::string_view p);

/// □(p ⇒ ◇q) — every p is followed by a q (response).
[[nodiscard]] Formula response(std::string_view p, std::string_view q);

/// □¬p — p never happens (absence / safety).
[[nodiscard]] Formula never(std::string_view p);

/// ¬q U p  — no q before the first p (precedence); also holds when q never
/// happens... note: this is the strict version requiring p eventually. Use
/// precedence_weak for the version allowing q-free divergence.
[[nodiscard]] Formula precedence(std::string_view p, std::string_view q);

/// (¬q U p) ∨ □¬q — q cannot happen until p has (weak precedence).
[[nodiscard]] Formula precedence_weak(std::string_view p, std::string_view q);

/// □(p ⇒ (¬p U q)) — p cannot recur before a q intervenes (alternation).
[[nodiscard]] Formula alternation(std::string_view p, std::string_view q);

}  // namespace patterns
}  // namespace rlv

#include "rlv/ltl/parser.hpp"

#include <cctype>

namespace rlv {

namespace {

bool is_atom_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_atom_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Formula parse() {
    Formula f = parse_iff();
    skip_ws();
    if (pos_ != text_.size()) {
      throw LtlParseError("unexpected trailing input", pos_);
    }
    return f;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(std::string_view token) {
    skip_ws();
    if (text_.substr(pos_).starts_with(token)) {
      // Word tokens must not run into a following identifier character.
      if (is_atom_start(token.front())) {
        const std::size_t end = pos_ + token.size();
        if (end < text_.size() && is_atom_char(text_[end])) return false;
      }
      pos_ += token.size();
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& message) {
    throw LtlParseError(message, pos_);
  }

  Formula parse_iff() {
    Formula f = parse_implies();
    while (eat("<->")) f = f_iff(f, parse_implies());
    return f;
  }

  Formula parse_implies() {
    Formula f = parse_or();
    if (eat("->")) return f_implies(f, parse_implies());
    return f;
  }

  Formula parse_or() {
    Formula f = parse_and();
    while (true) {
      skip_ws();
      // '||' or single '|', but not the start of '|?' others.
      if (eat("||") || eat("|")) {
        f = f_or(f, parse_and());
      } else {
        return f;
      }
    }
  }

  Formula parse_and() {
    Formula f = parse_bin();
    while (eat("&&") || eat("&")) f = f_and(f, parse_bin());
    return f;
  }

  Formula parse_bin() {
    Formula f = parse_unary();
    if (eat("U")) return f_until(f, parse_bin());
    if (eat("R")) return f_release(f, parse_bin());
    if (eat("B")) return f_before(f, parse_bin());
    return f;
  }

  Formula parse_unary() {
    if (eat("!")) return f_not(parse_unary());
    if (eat("X")) return f_next(parse_unary());
    if (eat("F")) return f_eventually(parse_unary());
    if (eat("G")) return f_always(parse_unary());
    return parse_primary();
  }

  Formula parse_primary() {
    skip_ws();
    if (eat("(")) {
      Formula f = parse_iff();
      if (!eat(")")) fail("expected ')'");
      return f;
    }
    if (eat("true")) return f_true();
    if (eat("false")) return f_false();
    if (pos_ < text_.size() && is_atom_start(text_[pos_])) {
      const std::size_t start = pos_;
      while (pos_ < text_.size() && is_atom_char(text_[pos_])) ++pos_;
      return f_atom(text_.substr(start, pos_ - start));
    }
    fail("expected formula");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Formula parse_ltl(std::string_view text) { return Parser(text).parse(); }

}  // namespace rlv

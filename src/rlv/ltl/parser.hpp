#pragma once

// Recursive-descent parser for PLTL formulas.
//
// Grammar (loosest to tightest):
//   iff     :=  implies ('<->' implies)*
//   implies :=  or ('->' implies)?                 (right associative)
//   or      :=  and (('|' | '||') and)*
//   and     :=  bin (('&' | '&&') bin)*
//   bin     :=  unary (('U' | 'R' | 'B') bin)?     (right associative)
//   unary   :=  ('!' | 'X' | 'F' | 'G') unary | primary
//   primary :=  'true' | 'false' | atom | '(' iff ')'
//   atom    :=  [a-zA-Z_][a-zA-Z0-9_]*  not a reserved word
//
// 'B' is the paper's "before" operator: ξ B ζ = ¬(¬ξ U ζ).

#include <stdexcept>
#include <string>
#include <string_view>

#include "rlv/ltl/ast.hpp"

namespace rlv {

class LtlParseError : public std::runtime_error {
 public:
  LtlParseError(const std::string& message, std::size_t position)
      : std::runtime_error(message + " at offset " + std::to_string(position)),
        position_(position) {}

  [[nodiscard]] std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// Parses `text` into a formula. Throws LtlParseError on malformed input.
[[nodiscard]] Formula parse_ltl(std::string_view text);

}  // namespace rlv

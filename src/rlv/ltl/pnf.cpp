#include "rlv/ltl/pnf.hpp"

namespace rlv {

Formula to_pnf(Formula f) {
  switch (f.op()) {
    case LtlOp::kTrue:
    case LtlOp::kFalse:
    case LtlOp::kAtom:
      return f;
    case LtlOp::kNot:
      return negate_pnf(f.left());
    case LtlOp::kAnd:
      return f_and(to_pnf(f.left()), to_pnf(f.right()));
    case LtlOp::kOr:
      return f_or(to_pnf(f.left()), to_pnf(f.right()));
    case LtlOp::kNext:
      return f_next(to_pnf(f.left()));
    case LtlOp::kUntil:
      return f_until(to_pnf(f.left()), to_pnf(f.right()));
    case LtlOp::kRelease:
      return f_release(to_pnf(f.left()), to_pnf(f.right()));
  }
  return f;
}

Formula negate_pnf(Formula f) {
  switch (f.op()) {
    case LtlOp::kTrue:
      return f_false();
    case LtlOp::kFalse:
      return f_true();
    case LtlOp::kAtom:
      return f_not(f);
    case LtlOp::kNot:
      return to_pnf(f.left());
    case LtlOp::kAnd:
      return f_or(negate_pnf(f.left()), negate_pnf(f.right()));
    case LtlOp::kOr:
      return f_and(negate_pnf(f.left()), negate_pnf(f.right()));
    case LtlOp::kNext:
      return f_next(negate_pnf(f.left()));
    case LtlOp::kUntil:
      return f_release(negate_pnf(f.left()), negate_pnf(f.right()));
    case LtlOp::kRelease:
      return f_until(negate_pnf(f.left()), negate_pnf(f.right()));
  }
  return f;
}

}  // namespace rlv

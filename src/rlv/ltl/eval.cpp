#include "rlv/ltl/eval.hpp"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace rlv {

namespace {

/// Evaluation context over the lasso positions 0..N-1 where N = |u| + |v|;
/// the successor of the last position is |u| (start of the loop).
class Evaluator {
 public:
  Evaluator(const Word& u, const Word& v, const Labeling& lambda)
      : lambda_(lambda), loop_start_(u.size()), n_(u.size() + v.size()) {
    letters_.reserve(n_);
    letters_.insert(letters_.end(), u.begin(), u.end());
    letters_.insert(letters_.end(), v.begin(), v.end());
  }

  std::size_t succ(std::size_t i) const {
    return (i + 1 < n_) ? i + 1 : loop_start_;
  }

  const std::vector<bool>& values(Formula f) {
    auto it = memo_.find(f);
    if (it != memo_.end()) return it->second;

    std::vector<bool> val(n_, false);
    switch (f.op()) {
      case LtlOp::kTrue:
        val.assign(n_, true);
        break;
      case LtlOp::kFalse:
        break;
      case LtlOp::kAtom:
        for (std::size_t i = 0; i < n_; ++i) {
          val[i] = lambda_.holds(letters_[i], f.atom_name());
        }
        break;
      case LtlOp::kNot: {
        const auto& a = values(f.left());
        for (std::size_t i = 0; i < n_; ++i) val[i] = !a[i];
        break;
      }
      case LtlOp::kAnd: {
        const auto& a = values(f.left());
        const auto& b = values(f.right());
        for (std::size_t i = 0; i < n_; ++i) val[i] = a[i] && b[i];
        break;
      }
      case LtlOp::kOr: {
        const auto& a = values(f.left());
        const auto& b = values(f.right());
        for (std::size_t i = 0; i < n_; ++i) val[i] = a[i] || b[i];
        break;
      }
      case LtlOp::kNext: {
        const auto& a = values(f.left());
        for (std::size_t i = 0; i < n_; ++i) val[i] = a[succ(i)];
        break;
      }
      case LtlOp::kUntil: {
        // Least fixpoint of val = b ∨ (a ∧ val∘succ): start from false,
        // sweep backwards until stable.
        const auto& a = values(f.left());
        const auto& b = values(f.right());
        bool changed = true;
        while (changed) {
          changed = false;
          for (std::size_t k = n_; k-- > 0;) {
            const bool next = b[k] || (a[k] && val[succ(k)]);
            if (next != val[k]) {
              val[k] = next;
              changed = true;
            }
          }
        }
        break;
      }
      case LtlOp::kRelease: {
        // Greatest fixpoint of val = b ∧ (a ∨ val∘succ): start from true,
        // sweep until stable.
        const auto& a = values(f.left());
        const auto& b = values(f.right());
        val.assign(n_, true);
        bool changed = true;
        while (changed) {
          changed = false;
          for (std::size_t k = n_; k-- > 0;) {
            const bool next = b[k] && (a[k] || val[succ(k)]);
            if (next != val[k]) {
              val[k] = next;
              changed = true;
            }
          }
        }
        break;
      }
    }
    return memo_.emplace(f, std::move(val)).first->second;
  }

 private:
  const Labeling& lambda_;
  std::size_t loop_start_;
  std::size_t n_;
  Word letters_;
  std::unordered_map<Formula, std::vector<bool>, FormulaHash> memo_;
};

}  // namespace

bool eval_ltl(Formula f, const Word& u, const Word& v,
              const Labeling& lambda) {
  assert(!v.empty());
  Evaluator ev(u, v, lambda);
  return ev.values(f)[0];
}

}  // namespace rlv

#pragma once

// The property transformation of Section 7: reinterpreting a formula η that
// was established on the abstract alphabet Σ' over words on the concrete
// alphabet Σ, where an abstracting homomorphism h : Σ → Σ' ∪ {ε} renames
// letters and hides some of them (maps them to ε).
//
// Concrete words are labeled by λ_hΣΣ' (Definition 7.3): letter a carries
// the single proposition h(a), which is the distinguished proposition ε
// (kEpsilonAtom here) when a is hidden. The transformation T (Definition
// 7.4) rewires the temporal operators to skip ε-positions:
//
//   T(X ξ)    =  ε U (¬ε ∧ X T(ξ))
//   T(ξ U ζ)  =  (ε ∨ T(ξ)) U (¬ε ∧ T(ζ))
//   T(ξ R ζ)  =  (¬ε ∧ T(ξ)) R (ε ∨ T(ζ))
//   T homomorphic on ∧, ∨; identity on pure Boolean subformulas.
//
// R̄(η) is T(η) with every maximal pure Boolean subformula ξ_b replaced by
// ε U (¬ε ∧ ξ_b). Deviation from the paper (documented in DESIGN.md): the
// paper's Definition 7.4 wraps with ε U ξ_b; for a *negative* literal ¬q
// that version is already true at a hidden position (whose label {ε} does
// not contain q), breaking Lemma 7.5 — the ¬ε conjunct restores it and is
// equivalent on positive atoms.
//
// With this, Lemma 7.5 holds:  L'_ω,λ_Σ' ⊨ η  ⟺  h⁻¹(L'_ω),λ_hΣΣ' ⊨ R̄(η),
// which tests/test_ltl_transform.cpp validates by random sampling.

#include "rlv/ltl/ast.hpp"

namespace rlv {

/// The distinguished proposition standing for "this letter is hidden by the
/// homomorphism" (the paper's ε). ASCII to stay parser-friendly.
inline constexpr std::string_view kEpsilonAtom = "eps";

/// The paper's T (Definition 7.4), without the Boolean wrapping. Input must
/// be in positive normal form over Σ'-atoms.
[[nodiscard]] Formula transform_t(Formula f);

/// The paper's R̄: T plus wrapping of maximal pure Boolean subformulas.
/// This is the formula to check on the concrete system. Input must be in
/// positive normal form.
[[nodiscard]] Formula transform_rbar(Formula f);

/// The remark after Definition 7.2: for any formula η over atoms AP and any
/// labeling λ : Σ → 2^AP there is a Σ-normal-form formula η' (atoms ⊆ Σ,
/// interpreted under the canonical λ_Σ) with x,λ ⊨ η ⟺ x,λ_Σ ⊨ η' for all
/// x ∈ Σ^ω. Constructed by substituting every atom p with the disjunction
/// of the letters at which p holds.
[[nodiscard]] Formula to_sigma_normal_form(Formula f, const Labeling& lambda);

}  // namespace rlv

#pragma once

// Positive normal form (Definition 7.1): negations pushed to atoms using the
// dualities ¬(ξ∧ζ)=¬ξ∨¬ζ, ¬Xξ=X¬ξ, ¬(ξUζ)=¬ξR¬ζ, ¬(ξRζ)=¬ξU¬ζ.

#include "rlv/ltl/ast.hpp"

namespace rlv {

/// Equivalent formula in positive normal form.
[[nodiscard]] Formula to_pnf(Formula f);

/// Negation of `f`, already pushed into positive normal form.
[[nodiscard]] Formula negate_pnf(Formula f);

}  // namespace rlv

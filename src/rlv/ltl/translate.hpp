#pragma once

// LTL → Büchi translation via the tableau construction of Gerth–Peled–
// Vardi–Wolper (GPVW), producing a generalized Büchi automaton (one
// acceptance set per Until subformula) that is then degeneralized.
//
// The automaton runs over an alphabet Σ: a letter a satisfies an atom p of
// the formula iff p ∈ λ(a) for the given labeling λ. With the canonical
// Σ-labeling this realizes the paper's Σ-normal-form interpretation; with a
// homomorphism labeling λ_hΣΣ' it interprets transformed formulas R̄(η) over
// the concrete alphabet (§7).

#include "rlv/ltl/ast.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {

// All three entry points charge each constructed tableau state to the
// optional Budget under Stage::kTranslate, and tick the deadline inside the
// cover() expansion (which can be exponential in the formula size on its
// own, before any state is interned).

/// Büchi automaton for { x ∈ Σ^ω | x,λ ⊨ f }. The formula is converted to
/// positive normal form internally.
[[nodiscard]] Buchi translate_ltl(Formula f, const Labeling& lambda,
                                  Budget* budget = nullptr);

/// Büchi automaton for the complement property { x | x,λ ⊭ f }: translation
/// of the pushed-in negation. Cheaper and far smaller than rank-based
/// complementation of translate_ltl(f).
[[nodiscard]] Buchi translate_ltl_negated(Formula f, const Labeling& lambda,
                                          Budget* budget = nullptr);

/// The generalized (pre-degeneralization) automaton, exposed for tests and
/// size benchmarks.
[[nodiscard]] GenBuchi translate_ltl_gen(Formula f, const Labeling& lambda,
                                         Budget* budget = nullptr);

}  // namespace rlv

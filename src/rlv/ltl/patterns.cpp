#include "rlv/ltl/patterns.hpp"

namespace rlv {
namespace patterns {

Formula infinitely_often(std::string_view p) {
  return f_always(f_eventually(f_atom(p)));
}

Formula eventually_always(std::string_view p) {
  return f_eventually(f_always(f_atom(p)));
}

Formula response(std::string_view p, std::string_view q) {
  return f_always(f_implies(f_atom(p), f_eventually(f_atom(q))));
}

Formula never(std::string_view p) { return f_always(f_not(f_atom(p))); }

Formula precedence(std::string_view p, std::string_view q) {
  return f_until(f_not(f_atom(q)), f_atom(p));
}

Formula precedence_weak(std::string_view p, std::string_view q) {
  return f_or(precedence(p, q), f_always(f_not(f_atom(q))));
}

Formula alternation(std::string_view p, std::string_view q) {
  return f_always(
      f_implies(f_atom(p), f_next(f_until(f_not(f_atom(p)), f_atom(q)))));
}

}  // namespace patterns
}  // namespace rlv

#pragma once

// Propositional linear temporal logic (PLTL, §3 of the paper). Formulas are
// immutable, hash-consed nodes: structurally equal formulas are the same
// object, so Formula equality and hashing are pointer-based — which the
// tableau translation and the evaluator rely on for memoization.
//
// Derived operators are expanded at construction time into the kernel
// {true, false, atom, ¬, ∧, ∨, X, U, R}:
//   ◇ξ = true U ξ,   □ξ = false R ξ,   ξ⇒ζ = ¬ξ ∨ ζ,   ξ⇔ζ = (ξ⇒ζ)∧(ζ⇒ξ),
//   ξ B ζ = ¬(¬ξ U ζ) = ξ R ¬ζ          (the paper's "before" operator).
//
// Atoms are named; how a letter of an alphabet satisfies an atom is decided
// by a Labeling (λ in the paper): the canonical Σ-labeling λ_Σ(a) = {a}
// (Definition 7.2) or the homomorphism labeling λ_hΣΣ' (Definition 7.3).

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rlv/lang/alphabet.hpp"

namespace rlv {

enum class LtlOp : std::uint8_t {
  kTrue,
  kFalse,
  kAtom,
  kNot,
  kAnd,
  kOr,
  kNext,     // O in the paper, X here
  kUntil,    // U
  kRelease,  // R (dual of U; used for positive normal form)
};

class LtlNode;

/// Lightweight handle to an interned formula node. Copyable; equality is
/// pointer equality (valid because of hash-consing).
class Formula {
 public:
  Formula() = default;

  [[nodiscard]] LtlOp op() const;
  [[nodiscard]] const std::string& atom_name() const;  // kAtom only
  [[nodiscard]] Formula left() const;   // unary: the operand
  [[nodiscard]] Formula right() const;  // binary only

  [[nodiscard]] bool valid() const { return node_ != nullptr; }

  /// True when the formula contains no temporal operator (pure Boolean —
  /// the ξ_b of Definition 7.4).
  [[nodiscard]] bool is_pure_boolean() const;

  /// True when every negation is applied directly to an atom.
  [[nodiscard]] bool is_positive_normal_form() const;

  /// Names of all atoms occurring in the formula (sorted, unique).
  [[nodiscard]] std::vector<std::string> atoms() const;

  /// Number of AST nodes (shared subterms counted once per occurrence).
  [[nodiscard]] std::size_t size() const;

  /// Precedence-aware rendering, e.g. "G(F(result))".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(Formula a, Formula b) { return a.node_ == b.node_; }
  friend bool operator<(Formula a, Formula b) { return a.node_ < b.node_; }

  [[nodiscard]] std::size_t hash() const {
    return std::hash<const LtlNode*>{}(node_);
  }

  [[nodiscard]] const LtlNode* raw() const { return node_; }

 private:
  friend class LtlFactory;
  explicit Formula(const LtlNode* node) : node_(node) {}

  const LtlNode* node_ = nullptr;
};

struct FormulaHash {
  std::size_t operator()(Formula f) const { return f.hash(); }
};

// Kernel constructors (interned; structurally equal calls return the same
// handle). Only local simplifications are applied (¬¬ξ = ξ, ¬true = false,
// true∧ξ = ξ, ...); use to_pnf() from pnf.hpp to push negations to atoms.
[[nodiscard]] Formula f_true();
[[nodiscard]] Formula f_false();
[[nodiscard]] Formula f_atom(std::string_view name);
[[nodiscard]] Formula f_not(Formula f);
[[nodiscard]] Formula f_and(Formula a, Formula b);
[[nodiscard]] Formula f_or(Formula a, Formula b);
[[nodiscard]] Formula f_next(Formula f);
[[nodiscard]] Formula f_until(Formula a, Formula b);
[[nodiscard]] Formula f_release(Formula a, Formula b);

// Derived operators.
[[nodiscard]] Formula f_implies(Formula a, Formula b);
[[nodiscard]] Formula f_iff(Formula a, Formula b);
[[nodiscard]] Formula f_eventually(Formula f);  // ◇
[[nodiscard]] Formula f_always(Formula f);      // □
[[nodiscard]] Formula f_before(Formula a, Formula b);  // ξ B ζ = ξ R ¬ζ

/// Labeling function λ : Σ → 2^AP (§3). Decides which atoms hold at each
/// letter of the alphabet.
class Labeling {
 public:
  /// The canonical Σ-labeling λ_Σ(a) = {name(a)} (Definition 7.2).
  static Labeling canonical(AlphabetRef sigma);

  /// Explicit labeling: `labels[s]` is the set of atom names holding at
  /// symbol s. Used for λ_hΣΣ' (Definition 7.3) and custom interpretations.
  Labeling(AlphabetRef sigma, std::vector<std::vector<std::string>> labels);

  [[nodiscard]] const AlphabetRef& alphabet() const { return sigma_; }

  /// Does atom `name` hold at letter `s`?
  [[nodiscard]] bool holds(Symbol s, const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& labels(Symbol s) const {
    return labels_[s];
  }

 private:
  AlphabetRef sigma_;
  std::vector<std::vector<std::string>> labels_;  // sorted per symbol
};

}  // namespace rlv

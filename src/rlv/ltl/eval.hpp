#pragma once

// Direct semantic evaluation of PLTL formulas on ultimately periodic ω-words
// u·v^ω (§3 semantics). Used as the ground truth that the automaton
// translation, the T/R̄ transformation (Lemma 7.5), and the relative
// liveness checkers are property-tested against.

#include "rlv/lang/alphabet.hpp"
#include "rlv/ltl/ast.hpp"

namespace rlv {

/// Evaluates `f` on the ω-word u·v^ω under labeling λ. `v` must be
/// non-empty. Computed by fixpoint iteration on the lasso graph (least
/// fixpoint for U, greatest for R), which is exact for LTL on a single
/// ultimately periodic path.
[[nodiscard]] bool eval_ltl(Formula f, const Word& u, const Word& v,
                            const Labeling& lambda);

}  // namespace rlv

#include "rlv/ltl/transform.hpp"

#include <cassert>

#include "rlv/ltl/pnf.hpp"

namespace rlv {

namespace {

Formula eps() { return f_atom(kEpsilonAtom); }
Formula not_eps() { return f_not(f_atom(kEpsilonAtom)); }

/// Wraps a pure Boolean formula: hold at the first visible position.
Formula wrap_boolean(Formula f) {
  return f_until(eps(), f_and(not_eps(), f));
}

Formula t_impl(Formula f, bool wrap) {
  if (f.is_pure_boolean()) {
    return wrap ? wrap_boolean(f) : f;
  }
  switch (f.op()) {
    case LtlOp::kAnd:
      return f_and(t_impl(f.left(), wrap), t_impl(f.right(), wrap));
    case LtlOp::kOr:
      return f_or(t_impl(f.left(), wrap), t_impl(f.right(), wrap));
    case LtlOp::kNext:
      return f_until(eps(),
                     f_and(not_eps(), f_next(t_impl(f.left(), wrap))));
    case LtlOp::kUntil:
      return f_until(f_or(eps(), t_impl(f.left(), wrap)),
                     f_and(not_eps(), t_impl(f.right(), wrap)));
    case LtlOp::kRelease:
      return f_release(f_and(not_eps(), t_impl(f.left(), wrap)),
                       f_or(eps(), t_impl(f.right(), wrap)));
    case LtlOp::kTrue:
    case LtlOp::kFalse:
    case LtlOp::kAtom:
    case LtlOp::kNot:
      // Handled by the pure-Boolean branch above (kNot only on atoms in
      // positive normal form).
      assert(false && "transform requires positive normal form");
      return f;
  }
  return f;
}

}  // namespace

Formula transform_t(Formula f) {
  assert(f.is_positive_normal_form());
  return t_impl(f, /*wrap=*/false);
}

Formula transform_rbar(Formula f) {
  assert(f.is_positive_normal_form());
  return t_impl(f, /*wrap=*/true);
}

namespace {

Formula substitute_atoms(Formula f, const Labeling& lambda) {
  switch (f.op()) {
    case LtlOp::kTrue:
    case LtlOp::kFalse:
      return f;
    case LtlOp::kAtom: {
      // p  ↦  ⋁ { a ∈ Σ | p ∈ λ(a) }  (false when no letter carries p).
      Formula result = f_false();
      const AlphabetRef& sigma = lambda.alphabet();
      for (Symbol a = 0; a < sigma->size(); ++a) {
        if (lambda.holds(a, f.atom_name())) {
          result = f_or(result, f_atom(sigma->name(a)));
        }
      }
      return result;
    }
    case LtlOp::kNot:
      return f_not(substitute_atoms(f.left(), lambda));
    case LtlOp::kAnd:
      return f_and(substitute_atoms(f.left(), lambda),
                   substitute_atoms(f.right(), lambda));
    case LtlOp::kOr:
      return f_or(substitute_atoms(f.left(), lambda),
                  substitute_atoms(f.right(), lambda));
    case LtlOp::kNext:
      return f_next(substitute_atoms(f.left(), lambda));
    case LtlOp::kUntil:
      return f_until(substitute_atoms(f.left(), lambda),
                     substitute_atoms(f.right(), lambda));
    case LtlOp::kRelease:
      return f_release(substitute_atoms(f.left(), lambda),
                       substitute_atoms(f.right(), lambda));
  }
  return f;
}

}  // namespace

Formula to_sigma_normal_form(Formula f, const Labeling& lambda) {
  return to_pnf(substitute_atoms(f, lambda));
}

}  // namespace rlv

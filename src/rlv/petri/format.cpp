#include "rlv/petri/format.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace rlv::petri {

NetParseError::NetParseError(std::string message, std::size_t line)
    : std::runtime_error(line == 0 ? message
                                   : message + " (line " +
                                         std::to_string(line) + ")"),
      line_(line) {}

namespace {

[[noreturn]] void fail(const std::string& message, std::size_t line) {
  throw NetParseError(message, line);
}

bool valid_name(std::string_view s) {
  if (s.empty() || s.size() > kMaxNameLength) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
  });
}

/// Splits a line into whitespace-separated fields, dropping `#` comments.
std::vector<std::string_view> fields_of(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] == '#') break;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' &&
           line[j] != '#') {
      ++j;
    }
    fields.push_back(line.substr(i, j - i));
    i = j;
  }
  return fields;
}

std::uint32_t parse_count(std::string_view s, std::uint32_t min_value,
                          const char* what, std::size_t line) {
  if (s.empty() || s.size() > 7 ||
      !std::all_of(s.begin(), s.end(),
                   [](char c) { return c >= '0' && c <= '9'; })) {
    fail(std::string(what) + " is not a number in range: '" + std::string(s) +
             "'",
         line);
  }
  std::uint32_t value = 0;
  for (const char c : s) value = value * 10 + static_cast<std::uint32_t>(c - '0');
  if (value < min_value || value > kMaxTokens) {
    fail(std::string(what) + " out of range: " + std::string(s), line);
  }
  return value;
}

}  // namespace

NetFile parse_net(std::string_view text) {
  NetFile file;
  std::unordered_map<std::string, PlaceId> places;
  std::unordered_set<std::string> labels;
  std::unordered_set<std::string> hidden_seen;
  // Line of each file.hidden entry, for the post-parse existence check.
  std::vector<std::size_t> hide_lines;
  // Per-transition duplicate-arc sets, keyed (kind, place).
  std::unordered_set<std::uint64_t> arcs_seen;
  bool saw_net_line = false;
  bool has_transition = false;
  TransId current = 0;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    if (++line_no > kMaxLines) fail("too many lines", 0);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

    const std::vector<std::string_view> f = fields_of(line);
    if (f.empty()) continue;
    const std::string_view directive = f[0];

    if (directive == "net") {
      if (saw_net_line) fail("duplicate 'net' line", line_no);
      if (f.size() != 2) fail("'net' takes exactly one name", line_no);
      if (!valid_name(f[1])) fail("bad net name", line_no);
      saw_net_line = true;
      file.name = std::string(f[1]);
    } else if (directive == "place") {
      if (f.size() != 2 && f.size() != 3) {
        fail("'place' takes a name and an optional token count", line_no);
      }
      if (!valid_name(f[1])) fail("bad place name", line_no);
      if (places.count(std::string(f[1]))) {
        fail("duplicate place '" + std::string(f[1]) + "'", line_no);
      }
      if (file.net.num_places() >= kMaxPlaces) fail("too many places", line_no);
      const std::uint32_t tokens =
          f.size() == 3 ? parse_count(f[2], 0, "token count", line_no) : 0;
      const PlaceId p = file.net.add_place(f[1], tokens);
      places.emplace(std::string(f[1]), p);
    } else if (directive == "trans") {
      if (f.size() != 2) fail("'trans' takes exactly one label", line_no);
      if (!valid_name(f[1])) fail("bad transition label", line_no);
      if (file.net.num_transitions() >= kMaxTransitions) {
        fail("too many transitions", line_no);
      }
      current = file.net.add_transition(f[1]);
      labels.insert(std::string(f[1]));
      has_transition = true;
    } else if (directive == "in" || directive == "out" || directive == "read") {
      if (!has_transition) {
        fail("'" + std::string(directive) + "' before any 'trans'", line_no);
      }
      if (f.size() != 2 && f.size() != 3) {
        fail("'" + std::string(directive) +
                 "' takes a place and an optional weight",
             line_no);
      }
      const auto it = places.find(std::string(f[1]));
      if (it == places.end()) {
        fail("unknown place '" + std::string(f[1]) + "'", line_no);
      }
      const std::uint32_t weight =
          f.size() == 3 ? parse_count(f[2], 1, "weight", line_no) : 1;
      const std::uint64_t kind =
          directive == "in" ? 0 : directive == "out" ? 1 : 2;
      const std::uint64_t key = (std::uint64_t{current} << 34) |
                                (kind << 32) | std::uint64_t{it->second};
      if (!arcs_seen.insert(key).second) {
        fail("duplicate '" + std::string(directive) + "' arc on place '" +
                 std::string(f[1]) + "'",
             line_no);
      }
      if (directive == "in") {
        file.net.add_input(current, it->second, weight);
      } else if (directive == "out") {
        file.net.add_output(current, it->second, weight);
      } else {
        file.net.add_read(current, it->second, weight);
      }
    } else if (directive == "hide") {
      if (f.size() < 2) fail("'hide' takes at least one label", line_no);
      for (std::size_t k = 1; k < f.size(); ++k) {
        if (!valid_name(f[k])) fail("bad label in 'hide'", line_no);
        if (!hidden_seen.insert(std::string(f[k])).second) {
          fail("duplicate hidden label '" + std::string(f[k]) + "'", line_no);
        }
        file.hidden.emplace_back(f[k]);
        hide_lines.push_back(line_no);
      }
    } else {
      fail("unknown directive '" + std::string(directive) + "'", line_no);
    }
  }

  for (std::size_t k = 0; k < file.hidden.size(); ++k) {
    if (!labels.count(file.hidden[k])) {
      fail("hidden label '" + file.hidden[k] +
               "' is not the label of any transition",
           hide_lines[k]);
    }
  }
  return file;
}

std::string serialize_net(const NetFile& file) {
  std::string out;
  if (!file.name.empty()) {
    out += "net ";
    out += file.name;
    out += '\n';
  }
  const PetriNet& net = file.net;
  for (PlaceId p = 0; p < net.num_places(); ++p) {
    out += "place ";
    out += net.place_name(p);
    if (net.initial_marking()[p] != 0) {
      out += ' ';
      out += std::to_string(net.initial_marking()[p]);
    }
    out += '\n';
  }
  const auto arc_lines = [&](const char* directive,
                             const std::vector<PetriNet::Arc>& arcs) {
    for (const PetriNet::Arc& arc : arcs) {
      out += directive;
      out += ' ';
      out += net.place_name(arc.place);
      if (arc.weight != 1) {
        out += ' ';
        out += std::to_string(arc.weight);
      }
      out += '\n';
    }
  };
  for (TransId t = 0; t < net.num_transitions(); ++t) {
    out += "trans ";
    out += net.label(t);
    out += '\n';
    arc_lines("in", net.inputs(t));
    arc_lines("out", net.outputs(t));
    arc_lines("read", net.reads(t));
  }
  if (!file.hidden.empty()) {
    out += "hide";
    for (const std::string& h : file.hidden) {
      out += ' ';
      out += h;
    }
    out += '\n';
  }
  return out;
}

}  // namespace rlv::petri

#pragma once

// Place/transition Petri nets — the modeling substrate of the paper's
// Section 2 example (Figure 1). Weighted arcs, integer markings, standard
// firing rule. Reachability graphs (Figure 2) are built in
// rlv/petri/reachability.hpp and feed directly into the behavior-abstraction
// pipeline as prefix-closed transition systems.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rlv {

using PlaceId = std::uint32_t;
using TransId = std::uint32_t;

/// A marking assigns a token count to every place.
using Marking = std::vector<std::uint32_t>;

class PetriNet {
 public:
  struct Arc {
    PlaceId place;
    std::uint32_t weight;
  };

  PlaceId add_place(std::string_view name, std::uint32_t initial_tokens = 0);

  /// Adds a transition whose firing is observed as action `label`. Distinct
  /// transitions may share a label.
  TransId add_transition(std::string_view label);

  /// Arc place → transition (consumed tokens).
  void add_input(TransId t, PlaceId p, std::uint32_t weight = 1);
  /// Arc transition → place (produced tokens).
  void add_output(TransId t, PlaceId p, std::uint32_t weight = 1);
  /// Read arc: requires `weight` tokens in `p` without consuming them.
  void add_read(TransId t, PlaceId p, std::uint32_t weight = 1);

  [[nodiscard]] std::size_t num_places() const { return place_names_.size(); }
  [[nodiscard]] std::size_t num_transitions() const { return labels_.size(); }
  [[nodiscard]] const std::string& place_name(PlaceId p) const {
    return place_names_[p];
  }
  [[nodiscard]] const std::string& label(TransId t) const { return labels_[t]; }

  [[nodiscard]] const Marking& initial_marking() const { return initial_; }

  /// Is `t` enabled at marking `m`?
  [[nodiscard]] bool enabled(TransId t, const Marking& m) const;

  /// Fires `t` at `m` (must be enabled) and returns the successor marking.
  [[nodiscard]] Marking fire(TransId t, const Marking& m) const;

  /// All transitions enabled at `m`.
  [[nodiscard]] std::vector<TransId> enabled_transitions(const Marking& m) const;

  /// True when no transition is enabled at `m`.
  [[nodiscard]] bool is_deadlock(const Marking& m) const;

  /// Arc inspection (consumed / produced / read-only), e.g. for rendering.
  [[nodiscard]] const std::vector<Arc>& inputs(TransId t) const {
    return inputs_[t];
  }
  [[nodiscard]] const std::vector<Arc>& outputs(TransId t) const {
    return outputs_[t];
  }
  [[nodiscard]] const std::vector<Arc>& reads(TransId t) const {
    return reads_[t];
  }

 private:
  std::vector<std::string> place_names_;
  Marking initial_;
  std::vector<std::string> labels_;
  std::vector<std::vector<Arc>> inputs_;   // per transition
  std::vector<std::vector<Arc>> outputs_;  // per transition
  std::vector<std::vector<Arc>> reads_;    // per transition
};

}  // namespace rlv

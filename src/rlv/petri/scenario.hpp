#pragma once

// Canonical 1-safe scenario families — the structurally realistic workload
// sources the abstraction pipeline (Sections 6–8) is exercised on. Each
// builder returns a NetFile: the net plus its abstraction annotation (the
// internal transition labels a derived homomorphism hides), so the whole
// net → unfold → abstract → verify pipeline is driven from one value.
//
//   * philosophers_net(n)   — dining philosophers, deadlockable, scales
//                             roughly 3.4× in marking-graph states per seat;
//   * bounded_buffer_net(b) — producer/consumer over a b-slot buffer
//                             (deliberately NOT 1-safe for b ≥ 2: the
//                             `space` place holds b tokens, exercising the
//                             unfolder's count-row fallback);
//   * ring_workflow_net(n)  — a token ring of n stations, each working then
//                             passing the token on (the pass_* labels are
//                             the hidden plumbing);
//   * flight_workflow_net() — a Symmetri-style flight turnaround workflow
//                             with concurrent fueling/catering legs and a
//                             next-leg loop; only takeoff/land stay visible.
//
// derive_abstraction() turns an annotation into the Σ → Σ' ∪ {ε} projection
// of Definition 6.1 over a concrete behavior alphabet (typically the
// unfolded graph's); simplicity (Def 6.3) is a property of the pair (L, h)
// and stays the caller's check.

#include <cstddef>
#include <string>
#include <vector>

#include "rlv/hom/homomorphism.hpp"
#include "rlv/petri/format.hpp"
#include "rlv/petri/net.hpp"

namespace rlv::petri {

[[nodiscard]] NetFile philosophers_net(std::size_t num_philosophers);
[[nodiscard]] NetFile bounded_buffer_net(std::size_t capacity);
[[nodiscard]] NetFile ring_workflow_net(std::size_t num_stations);
[[nodiscard]] NetFile flight_workflow_net();

/// Builds the abstraction h: Σ → Σ' ∪ {ε} that hides exactly `hidden` and
/// keeps every other letter of `sigma` (Definition 6.1, as a projection).
/// Throws std::invalid_argument when a hidden name is not in `sigma` —
/// annotations must stay in sync with the net's labels.
[[nodiscard]] Homomorphism derive_abstraction(
    const AlphabetRef& sigma, const std::vector<std::string>& hidden);

}  // namespace rlv::petri

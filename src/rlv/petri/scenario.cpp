#include "rlv/petri/scenario.hpp"

#include <stdexcept>
#include <unordered_set>

namespace rlv::petri {

NetFile philosophers_net(std::size_t num_philosophers) {
  NetFile file;
  file.name = "philosophers_" + std::to_string(num_philosophers);
  PetriNet& net = file.net;
  std::vector<PlaceId> fork(num_philosophers);
  std::vector<PlaceId> thinking(num_philosophers);
  std::vector<PlaceId> hungry(num_philosophers);
  std::vector<PlaceId> has_left(num_philosophers);
  std::vector<PlaceId> eating(num_philosophers);
  for (std::size_t i = 0; i < num_philosophers; ++i) {
    const std::string suffix = "_" + std::to_string(i);
    fork[i] = net.add_place("fork" + suffix, 1);
    thinking[i] = net.add_place("thinking" + suffix, 1);
    hungry[i] = net.add_place("hungry" + suffix, 0);
    has_left[i] = net.add_place("has_left" + suffix, 0);
    eating[i] = net.add_place("eating" + suffix, 0);
  }
  for (std::size_t i = 0; i < num_philosophers; ++i) {
    const std::string suffix = "_" + std::to_string(i);
    const std::size_t right_fork = (i + 1) % num_philosophers;

    const TransId get_hungry = net.add_transition("hungry" + suffix);
    net.add_input(get_hungry, thinking[i]);
    net.add_output(get_hungry, hungry[i]);

    const TransId take_left = net.add_transition("left" + suffix);
    net.add_input(take_left, hungry[i]);
    net.add_input(take_left, fork[i]);
    net.add_output(take_left, has_left[i]);

    const TransId take_right = net.add_transition("right" + suffix);
    net.add_input(take_right, has_left[i]);
    net.add_input(take_right, fork[right_fork]);
    net.add_output(take_right, eating[i]);

    const TransId eat = net.add_transition("eat" + suffix);
    net.add_read(eat, eating[i]);

    const TransId done = net.add_transition("done" + suffix);
    net.add_input(done, eating[i]);
    net.add_output(done, thinking[i]);
    net.add_output(done, fork[i]);
    net.add_output(done, fork[right_fork]);

    // The fork-grabbing protocol is plumbing; meals are the interface.
    file.hidden.push_back("hungry" + suffix);
    file.hidden.push_back("left" + suffix);
    file.hidden.push_back("right" + suffix);
  }
  return file;
}

NetFile bounded_buffer_net(std::size_t capacity) {
  NetFile file;
  file.name = "bounded_buffer_" + std::to_string(capacity);
  PetriNet& net = file.net;
  const PlaceId buffer = net.add_place("buffer", 0);
  const PlaceId space =
      net.add_place("space", static_cast<std::uint32_t>(capacity));
  const PlaceId running = net.add_place("running", 1);

  const TransId produce = net.add_transition("produce");
  net.add_input(produce, space);
  net.add_output(produce, buffer);
  net.add_read(produce, running);

  const TransId consume = net.add_transition("consume");
  net.add_input(consume, buffer);
  net.add_output(consume, space);
  net.add_read(consume, running);

  const TransId idle = net.add_transition("idle");
  net.add_read(idle, running);

  file.hidden = {"idle"};
  return file;
}

NetFile ring_workflow_net(std::size_t num_stations) {
  NetFile file;
  file.name = "ring_" + std::to_string(num_stations);
  PetriNet& net = file.net;
  std::vector<PlaceId> slot(num_stations);
  std::vector<PlaceId> busy(num_stations);
  for (std::size_t i = 0; i < num_stations; ++i) {
    const std::string suffix = "_" + std::to_string(i);
    slot[i] = net.add_place("slot" + suffix, i == 0 ? 1 : 0);
    busy[i] = net.add_place("busy" + suffix, 0);
  }
  for (std::size_t i = 0; i < num_stations; ++i) {
    const std::string suffix = "_" + std::to_string(i);
    const TransId work = net.add_transition("work" + suffix);
    net.add_input(work, slot[i]);
    net.add_output(work, busy[i]);

    const TransId pass = net.add_transition("pass" + suffix);
    net.add_input(pass, busy[i]);
    net.add_output(pass, slot[(i + 1) % num_stations]);

    file.hidden.push_back("pass" + suffix);
  }
  return file;
}

NetFile flight_workflow_net() {
  NetFile file;
  file.name = "flight";
  PetriNet& net = file.net;
  const PlaceId gate = net.add_place("gate", 1);
  const PlaceId need_fuel = net.add_place("need_fuel", 0);
  const PlaceId need_cater = net.add_place("need_cater", 0);
  const PlaceId fueled = net.add_place("fueled", 0);
  const PlaceId catered = net.add_place("catered", 0);
  const PlaceId taxiing = net.add_place("taxiing", 0);
  const PlaceId airborne = net.add_place("airborne", 0);
  const PlaceId landed = net.add_place("landed", 0);

  const TransId board = net.add_transition("board");
  net.add_input(board, gate);
  net.add_output(board, need_fuel);
  net.add_output(board, need_cater);

  const TransId fuel = net.add_transition("fuel");
  net.add_input(fuel, need_fuel);
  net.add_output(fuel, fueled);

  const TransId cater = net.add_transition("cater");
  net.add_input(cater, need_cater);
  net.add_output(cater, catered);

  const TransId pushback = net.add_transition("pushback");
  net.add_input(pushback, fueled);
  net.add_input(pushback, catered);
  net.add_output(pushback, taxiing);

  const TransId takeoff = net.add_transition("takeoff");
  net.add_input(takeoff, taxiing);
  net.add_output(takeoff, airborne);

  const TransId land = net.add_transition("land");
  net.add_input(land, airborne);
  net.add_output(land, landed);

  const TransId turnaround = net.add_transition("turnaround");
  net.add_input(turnaround, landed);
  net.add_output(turnaround, gate);

  file.hidden = {"board", "fuel", "cater", "pushback", "turnaround"};
  return file;
}

Homomorphism derive_abstraction(const AlphabetRef& sigma,
                                const std::vector<std::string>& hidden) {
  std::unordered_set<std::string> hide(hidden.begin(), hidden.end());
  for (const std::string& h : hidden) {
    if (!sigma->contains(h)) {
      throw std::invalid_argument("derive_abstraction: hidden label '" + h +
                                  "' is not in the alphabet");
    }
  }
  std::vector<std::string> kept;
  for (Symbol s = 0; s < sigma->size(); ++s) {
    if (!hide.count(sigma->name(s))) kept.push_back(sigma->name(s));
  }
  return Homomorphism::projection(sigma, kept);
}

}  // namespace rlv::petri

#include "rlv/petri/net.hpp"

#include <cassert>

namespace rlv {

PlaceId PetriNet::add_place(std::string_view name,
                            std::uint32_t initial_tokens) {
  const PlaceId p = static_cast<PlaceId>(place_names_.size());
  place_names_.emplace_back(name);
  initial_.push_back(initial_tokens);
  return p;
}

TransId PetriNet::add_transition(std::string_view label) {
  const TransId t = static_cast<TransId>(labels_.size());
  labels_.emplace_back(label);
  inputs_.emplace_back();
  outputs_.emplace_back();
  reads_.emplace_back();
  return t;
}

void PetriNet::add_input(TransId t, PlaceId p, std::uint32_t weight) {
  assert(t < num_transitions() && p < num_places());
  inputs_[t].push_back({p, weight});
}

void PetriNet::add_output(TransId t, PlaceId p, std::uint32_t weight) {
  assert(t < num_transitions() && p < num_places());
  outputs_[t].push_back({p, weight});
}

void PetriNet::add_read(TransId t, PlaceId p, std::uint32_t weight) {
  assert(t < num_transitions() && p < num_places());
  reads_[t].push_back({p, weight});
}

bool PetriNet::enabled(TransId t, const Marking& m) const {
  for (const Arc& arc : inputs_[t]) {
    if (m[arc.place] < arc.weight) return false;
  }
  for (const Arc& arc : reads_[t]) {
    if (m[arc.place] < arc.weight) return false;
  }
  return true;
}

Marking PetriNet::fire(TransId t, const Marking& m) const {
  assert(enabled(t, m));
  Marking next = m;
  for (const Arc& arc : inputs_[t]) next[arc.place] -= arc.weight;
  for (const Arc& arc : outputs_[t]) next[arc.place] += arc.weight;
  return next;
}

std::vector<TransId> PetriNet::enabled_transitions(const Marking& m) const {
  std::vector<TransId> result;
  for (TransId t = 0; t < num_transitions(); ++t) {
    if (enabled(t, m)) result.push_back(t);
  }
  return result;
}

bool PetriNet::is_deadlock(const Marking& m) const {
  return enabled_transitions(m).empty();
}

}  // namespace rlv

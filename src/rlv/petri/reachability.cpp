#include "rlv/petri/reachability.hpp"

#include <map>
#include <queue>

namespace rlv {

ReachabilityGraph build_reachability_graph(const PetriNet& net,
                                           const ReachabilityOptions& options) {
  auto sigma = std::make_shared<Alphabet>();
  std::vector<Symbol> label_symbol(net.num_transitions());
  for (TransId t = 0; t < net.num_transitions(); ++t) {
    label_symbol[t] = sigma->intern(net.label(t));
  }

  ReachabilityGraph graph{Nfa(sigma), {}, {}, true};

  std::map<Marking, State> ids;
  std::queue<Marking> worklist;

  auto intern = [&](const Marking& m) -> std::optional<State> {
    auto it = ids.find(m);
    if (it != ids.end()) return it->second;
    if (graph.markings.size() >= options.max_states) {
      graph.complete = false;
      return std::nullopt;
    }
    const State s = graph.system.add_state(true);
    ids.emplace(m, s);
    graph.markings.push_back(m);
    worklist.push(m);
    return s;
  };

  const auto initial = intern(net.initial_marking());
  if (initial) graph.system.set_initial(*initial);

  while (!worklist.empty()) {
    const Marking m = std::move(worklist.front());
    worklist.pop();
    const State from = ids.at(m);
    const auto enabled = net.enabled_transitions(m);
    if (enabled.empty()) graph.deadlocks.push_back(from);
    for (const TransId t : enabled) {
      const Marking next = net.fire(t, m);
      const auto to = intern(next);
      if (!to) continue;  // state budget exhausted
      graph.system.add_transition(from, label_symbol[t], *to);
    }
  }
  return graph;
}

}  // namespace rlv

#include "rlv/petri/reachability.hpp"

#include <cassert>
#include <deque>

#include "rlv/util/intern.hpp"

namespace rlv {

namespace {

std::size_t hash_counts(const std::uint32_t* counts, std::size_t n) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ n;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= counts[i] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

/// Marking store with two phases. Phase one interns 1-safe markings as
/// packed bitsets; the first marking that needs ≥ 2 tokens on a place
/// converts every stored bitset to a token-count row (dense ids are handed
/// out in first-seen order by both phases, so ids survive the conversion
/// and exploration continues without a restart).
class MarkingStore {
 public:
  explicit MarkingStore(std::size_t num_places)
      : places_(num_places),
        words_per_((num_places + 63) / 64),
        bitsets_(num_places) {}

  [[nodiscard]] bool one_safe() const { return safe_; }
  [[nodiscard]] std::size_t size() const {
    return safe_ ? bitsets_.size() : count_of_rows_;
  }
  [[nodiscard]] std::size_t bytes() const {
    return safe_ ? bitsets_.bytes()
                 : rows_.capacity() * sizeof(std::uint32_t) + table_.bytes();
  }

  /// Finds `m`, or kNoId when it was never interned.
  [[nodiscard]] std::uint32_t find(const Marking& m) {
    if (safe_) {
      // A non-1-safe marking cannot be in the bitset store: never seen.
      if (!pack(m)) return IdTable::kNoId;
      return bitsets_.find(scratch_.data());
    }
    return find_row(m);
  }

  /// Interns `m`; returns (id, fresh).
  std::pair<std::uint32_t, bool> intern(const Marking& m) {
    if (safe_) {
      if (pack(m)) return bitsets_.intern(scratch_.data());
      convert();
    }
    const std::uint32_t found = find_row(m);
    if (found != IdTable::kNoId) return {found, false};
    const auto id = static_cast<std::uint32_t>(count_of_rows_);
    rows_.insert(rows_.end(), m.begin(), m.end());
    ++count_of_rows_;
    table_.insert(hash_counts(m.data(), places_), id, [&](std::uint32_t x) {
      return hash_counts(rows_.data() + std::size_t{x} * places_, places_);
    });
    return {id, true};
  }

  /// Copies the marking of `id` into `out` (resized to places()).
  void decode(std::uint32_t id, Marking& out) const {
    out.assign(places_, 0);
    if (safe_) {
      const std::uint64_t* w = bitsets_.words(id);
      for (std::size_t p = 0; p < places_; ++p) {
        out[p] = (w[p / 64] >> (p % 64)) & 1u;
      }
    } else {
      const std::uint32_t* row = rows_.data() + std::size_t{id} * places_;
      for (std::size_t p = 0; p < places_; ++p) out[p] = row[p];
    }
  }

  /// Moves the backing storage into the finished graph.
  void release(ReachabilityGraph& graph) {
    graph.one_safe = safe_;
    if (safe_) {
      graph.marking_bits.reserve(size() * words_per_);
      for (std::size_t id = 0; id < size(); ++id) {
        const std::uint64_t* w = bitsets_.words(static_cast<std::uint32_t>(id));
        graph.marking_bits.insert(graph.marking_bits.end(), w, w + words_per_);
      }
    } else {
      graph.marking_counts = std::move(rows_);
    }
  }

 private:
  /// Packs `m` into scratch_; false when some place holds ≥ 2 tokens.
  bool pack(const Marking& m) {
    scratch_.assign(words_per_, 0);
    for (std::size_t p = 0; p < places_; ++p) {
      if (m[p] > 1) return false;
      if (m[p]) scratch_[p / 64] |= std::uint64_t{1} << (p % 64);
    }
    return true;
  }

  [[nodiscard]] std::uint32_t find_row(const Marking& m) {
    return table_.find(hash_counts(m.data(), places_), [&](std::uint32_t id) {
      const std::uint32_t* row = rows_.data() + std::size_t{id} * places_;
      for (std::size_t p = 0; p < places_; ++p) {
        if (row[p] != m[p]) return false;
      }
      return true;
    });
  }

  /// Expands every interned bitset into a count row, rebuilding the id
  /// table under the count hash. Ids are preserved.
  void convert() {
    count_of_rows_ = bitsets_.size();
    rows_.assign(count_of_rows_ * places_, 0);
    for (std::size_t id = 0; id < count_of_rows_; ++id) {
      const std::uint64_t* w = bitsets_.words(static_cast<std::uint32_t>(id));
      std::uint32_t* row = rows_.data() + id * places_;
      for (std::size_t p = 0; p < places_; ++p) {
        row[p] = (w[p / 64] >> (p % 64)) & 1u;
      }
      table_.insert(hash_counts(row, places_), static_cast<std::uint32_t>(id),
                    [&](std::uint32_t x) {
                      return hash_counts(rows_.data() + std::size_t{x} * places_,
                                         places_);
                    });
    }
    safe_ = false;
    bitsets_ = BitsetInterner(0);  // release the bitset storage
  }

  std::size_t places_;
  std::size_t words_per_;
  bool safe_ = true;
  BitsetInterner bitsets_;
  std::vector<std::uint64_t> scratch_;
  // General phase: count rows with stride places_, deduped through table_.
  std::vector<std::uint32_t> rows_;
  std::size_t count_of_rows_ = 0;
  IdTable table_;
};

}  // namespace

Marking ReachabilityGraph::marking(State s) const {
  Marking m(num_places, 0);
  if (one_safe) {
    const std::size_t words_per = (num_places + 63) / 64;
    const std::uint64_t* w = marking_bits.data() + std::size_t{s} * words_per;
    for (std::size_t p = 0; p < num_places; ++p) {
      m[p] = (w[p / 64] >> (p % 64)) & 1u;
    }
  } else {
    const std::uint32_t* row =
        marking_counts.data() + std::size_t{s} * num_places;
    for (std::size_t p = 0; p < num_places; ++p) m[p] = row[p];
  }
  return m;
}

std::uint32_t ReachabilityGraph::tokens(State s, PlaceId p) const {
  assert(p < num_places);
  if (one_safe) {
    const std::size_t words_per = (num_places + 63) / 64;
    return (marking_bits[std::size_t{s} * words_per + p / 64] >> (p % 64)) & 1u;
  }
  return marking_counts[std::size_t{s} * num_places + p];
}

ReachabilityGraph build_reachability_graph(const PetriNet& net,
                                           const ReachabilityOptions& options,
                                           Budget* budget) {
  StageScope scope(budget, Stage::kPetriUnfold);

  auto sigma = std::make_shared<Alphabet>();
  std::vector<Symbol> label_symbol(net.num_transitions());
  for (TransId t = 0; t < net.num_transitions(); ++t) {
    label_symbol[t] = sigma->intern(net.label(t));
  }

  ReachabilityGraph graph{Nfa(sigma), {}, true, true, net.num_places(), {}, {}};

  MarkingStore store(net.num_places());
  std::deque<std::uint32_t> worklist;

  const auto intern = [&](const Marking& m) -> std::uint32_t {
    if (store.size() >= options.max_states) {
      // Soft cap: known markings still resolve, fresh ones truncate.
      const std::uint32_t found = store.find(m);
      if (found == IdTable::kNoId) graph.complete = false;
      return found;
    }
    const auto [id, fresh] = store.intern(m);
    if (fresh) {
      const State s = graph.system.add_state(true);
      assert(s == id);
      (void)s;
      worklist.push_back(id);
      budget_charge(budget);
      if ((id & 0x3ff) == 0) budget_note_memory(budget, store.bytes());
    }
    return id;
  };

  const std::uint32_t initial = intern(net.initial_marking());
  if (initial != IdTable::kNoId) graph.system.set_initial(initial);

  Marking current;
  Marking next;
  while (!worklist.empty()) {
    const std::uint32_t from = worklist.front();
    worklist.pop_front();
    budget_note_frontier(budget, worklist.size() + 1);
    store.decode(from, current);
    bool any_enabled = false;
    for (TransId t = 0; t < net.num_transitions(); ++t) {
      if (!net.enabled(t, current)) continue;
      any_enabled = true;
      next = current;
      for (const PetriNet::Arc& arc : net.inputs(t)) {
        next[arc.place] -= arc.weight;
      }
      for (const PetriNet::Arc& arc : net.outputs(t)) {
        next[arc.place] += arc.weight;
      }
      const std::uint32_t to = intern(next);
      if (to == IdTable::kNoId) continue;  // soft state cap hit
      graph.system.add_transition(from, label_symbol[t], to);
    }
    if (!any_enabled) graph.deadlocks.push_back(from);
    budget_tick(budget);
  }

  budget_note_memory(budget, store.bytes());
  store.release(graph);
  return graph;
}

}  // namespace rlv

#pragma once

// Textual Petri-net format — the `.pn` files accepted by `rlv_check
// --petri-file`, `rlv_loadgen --petri`, and the scenario builders' mirror
// serializer. Line-oriented, strict in the rlv::net::json reader tradition:
// bounded names/weights/counts, duplicate rejection, and every rejection
// carries the 1-based line it happened on. Untrusted input must never OOM
// or silently mislabel a transition.
//
//   # comment (also after any line)
//   net mutex                  optional, at most once
//   place fork_0 1             place with initial token count (default 0)
//   trans hungry_0             transition observed as action "hungry_0"
//   in thinking_0              arcs attach to the most recent trans;
//   out hungry_0 2             trailing weight defaults to 1
//   read fork_1
//   hide hungry_0 left_0       labels the derived abstraction hides (Σ→Σ'
//                              ∪ {ε}); may repeat, accumulates
//
// Names match [A-Za-z0-9_.-]+ and are at most kMaxNameLength bytes.
// Duplicate place names, duplicate same-kind arcs, arcs before the first
// trans, hides of labels no transition carries, weight/count 0 or above
// kMaxTokens, and unknown directives are all hard errors.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rlv/petri/net.hpp"

namespace rlv::petri {

inline constexpr std::size_t kMaxNameLength = 128;
inline constexpr std::uint32_t kMaxTokens = 1000000;
inline constexpr std::size_t kMaxPlaces = 100000;
inline constexpr std::size_t kMaxTransitions = 100000;
inline constexpr std::size_t kMaxLines = 1u << 20;

/// Raised on any malformed input; `line()` is 1-based (0 = whole input,
/// e.g. the line cap).
class NetParseError : public std::runtime_error {
 public:
  NetParseError(std::string message, std::size_t line);
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// A parsed net file: the net, its optional name, and the labels its
/// abstraction annotation hides (distinct, in first-hide order).
struct NetFile {
  std::string name;
  PetriNet net;
  std::vector<std::string> hidden;
};

/// Parses the textual format above. Throws NetParseError; never partial.
[[nodiscard]] NetFile parse_net(std::string_view text);

/// Canonical serialization; parse_net(serialize_net(f)) reproduces `f`.
[[nodiscard]] std::string serialize_net(const NetFile& file);

}  // namespace rlv::petri

#pragma once

// Reachability-graph construction: unfolds a Petri net into the finite-state
// transition system of its firing sequences (the paper's Figure 1 → Figure 2
// step). The result is a prefix-closed, all-accepting automaton over the
// alphabet of transition labels — exactly the "system whose behaviors are
// the limit of a prefix-closed regular language" of Definition 6.2.
//
// Markings are interned, not mapped: while the net stays 1-safe the unfolder
// packs each marking into a fixed-width bitset and dedups through a
// BitsetInterner (util/intern.hpp), so a state costs ⌈|P|/64⌉ words plus a
// 4-byte table slot instead of an owned std::vector node in a std::map. The
// first marking that puts ≥ 2 tokens on a place converts the interned store
// in place to general token-count rows (same dense ids, no restart) and
// exploration continues unbounded-weight-correct.
//
// Construction is budget-governed: pass a Budget to charge every fresh
// marking under Stage::kPetriUnfold with frontier / memory observability;
// a deadline or state-cap trip raises ResourceExhausted — never OOM. The
// soft `max_states` option instead truncates: exploration stops interning
// and the graph comes back with `complete == false`.

#include <cstdint>
#include <vector>

#include "rlv/lang/nfa.hpp"
#include "rlv/petri/net.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {

struct ReachabilityGraph {
  /// Transition system: all states accepting; state 0 is the initial
  /// marking. Symbols are the net's transition labels.
  Nfa system;
  /// States with no enabled transition.
  std::vector<State> deadlocks;
  /// False when exploration hit `max_states` before exhausting the state
  /// space (net unbounded or too large).
  bool complete = true;
  /// True when every reached marking kept ≤ 1 token per place; markings are
  /// then stored as packed bitsets, otherwise as token-count rows.
  bool one_safe = true;
  std::size_t num_places = 0;

  /// Backing stores — exactly one is non-empty (bitsets when `one_safe`,
  /// else ⌈places⌉-stride count rows). Use marking()/tokens() to read.
  std::vector<std::uint64_t> marking_bits;
  std::vector<std::uint32_t> marking_counts;

  /// Materializes the marking of state `s`.
  [[nodiscard]] Marking marking(State s) const;
  /// Token count of place `p` at state `s` (no materialization).
  [[nodiscard]] std::uint32_t tokens(State s, PlaceId p) const;
};

struct ReachabilityOptions {
  std::size_t max_states = 1u << 20;
};

/// Builds the reachability graph; `system`'s alphabet contains the distinct
/// transition labels in first-use order. A non-null `budget` is charged one
/// state per fresh marking under Stage::kPetriUnfold and may throw
/// ResourceExhausted; `options.max_states` is the soft cap that truncates
/// with `complete == false` instead of throwing.
[[nodiscard]] ReachabilityGraph build_reachability_graph(
    const PetriNet& net, const ReachabilityOptions& options = {},
    Budget* budget = nullptr);

}  // namespace rlv

#pragma once

// Reachability-graph construction: unfolds a Petri net into the finite-state
// transition system of its firing sequences (the paper's Figure 1 → Figure 2
// step). The result is a prefix-closed, all-accepting automaton over the
// alphabet of transition labels — exactly the "system whose behaviors are
// the limit of a prefix-closed regular language" of Definition 6.2.

#include <optional>
#include <vector>

#include "rlv/lang/nfa.hpp"
#include "rlv/petri/net.hpp"

namespace rlv {

struct ReachabilityGraph {
  /// Transition system: all states accepting; state 0 is the initial
  /// marking. Symbols are the net's transition labels.
  Nfa system;
  /// The marking of each state.
  std::vector<Marking> markings;
  /// States with no enabled transition.
  std::vector<State> deadlocks;
  /// False when exploration hit `max_states` before exhausting the state
  /// space (net unbounded or too large).
  bool complete = true;
};

struct ReachabilityOptions {
  std::size_t max_states = 1u << 20;
};

/// Builds the reachability graph; `system`'s alphabet contains the distinct
/// transition labels in first-use order.
[[nodiscard]] ReachabilityGraph build_reachability_graph(
    const PetriNet& net, const ReachabilityOptions& options = {});

}  // namespace rlv

#pragma once

// The rlvd wire protocol: newline-delimited JSON, one request object per
// line, one response object per line. Requests map 1:1 onto
// rlv::engine::Query; query responses are exactly the records
// render_query_record emits for the batch front end (plus the echoed
// request "id"), so a client that already consumes rlvd batch output can
// consume the wire verbatim.
//
// Request object:
//
//   {"op":"query",                      // default; also "stats", "ping"
//    "id":7,                            // echoed on the response
//    "system":"alphabet: a b\n...",     // rlv/io system text, REQUIRED
//    "formula":"G F result",            // PLTL (or property_automaton)
//    "property_automaton":"...",        // Büchi text, excludes "formula"
//    "check":"rl",                      // rl|rs|sat|fair|fairweak
//    "algorithm":"antichain",           // antichain|subset
//    "threads":2,                       // intra-query inclusion threads
//    "timeout_ms":500,"max_states":1e6, // per-query budget overrides
//    "certify":true,                    // request certificate validation
//    "label":"fig2"}                    // presentation name in the record
//
// Client-supplied threads/budget values are clamped to the server's caps
// by apply_limits(); certify can only strengthen the engine's policy
// (monotone: a request never disables server-side certification).
//
// Response shapes (all single-line JSON):
//
//   query    {"id":7,"system":"fig2","check":"rl",...}   (the rlvd record)
//   stats    {"id":3,"ok":true,"stats":{...},"server":{...}}
//   ping     {"id":1,"ok":true,"pong":true}
//   error    {"id":7,"ok":false,"error":"bad_request","detail":"..."}
//   overload {"id":7,"ok":false,"error":"overloaded","overloaded":true,
//             "scope":"server"}        // or "connection"
//
// Budget-tripped queries report through the record's
// "resource_exhausted":true shape, exactly as in batch mode.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "rlv/engine/query.hpp"

namespace rlv::net {

/// Server-side caps applied to client-supplied per-query overrides. A zero
/// cap means "no override allowed" for threads and "unlimited" for the
/// budget fields; a nonzero budget cap also acts as the default for
/// requests that specify no budget, so every served query carries a
/// deadline the drain path can rely on.
struct ServerLimits {
  std::uint64_t max_timeout_ms = 30000;
  std::uint64_t max_max_states = 0;
  std::size_t max_threads = 1;
};

enum class RequestOp : std::uint8_t { kQuery, kStats, kPing };

struct Request {
  RequestOp op = RequestOp::kQuery;
  std::uint64_t id = 0;
  std::string label;  // presentation label; "inline" when absent
  Query query;        // populated for kQuery
};

/// Parses one request line (already stripped of the trailing newline/CR).
/// Throws std::runtime_error with a message safe to echo to the client;
/// never reads files or touches engine state.
[[nodiscard]] Request parse_request(std::string_view line);

/// Clamps the query's client-supplied overrides to the server caps, and
/// applies the budget caps as defaults where the client sent none.
void apply_limits(Query& query, const ServerLimits& limits);

/// {"id":N,"ok":false,"error":"<code>","detail":"..."} — `detail` omitted
/// when empty, `id` omitted when the request id could not be parsed.
[[nodiscard]] std::string render_error(std::optional<std::uint64_t> id,
                                       std::string_view code,
                                       std::string_view detail);

/// The structured backpressure rejection; scope is "connection" or
/// "server" depending on which in-flight cap tripped.
[[nodiscard]] std::string render_overloaded(std::uint64_t id,
                                            std::string_view scope);

}  // namespace rlv::net

#pragma once

// The rlvd wire protocol: newline-delimited JSON, one request object per
// line, one response object per line. Requests map 1:1 onto
// rlv::engine::Query; query responses are exactly the records
// render_query_record emits for the batch front end (plus the echoed
// request "id"), so a client that already consumes rlvd batch output can
// consume the wire verbatim.
//
// Request object:
//
//   {"op":"query",                      // default; also "stats", "ping"
//    "id":7,                            // echoed on the response
//    "system":"alphabet: a b\n...",     // rlv/io system text, REQUIRED
//    "formula":"G F result",            // PLTL (or property_automaton)
//    "property_automaton":"...",        // Büchi text, excludes "formula"
//    "check":"rl",                      // rl|rs|sat|fair|fairweak
//    "algorithm":"antichain",           // antichain|subset
//    "threads":2,                       // intra-query inclusion threads
//    "timeout_ms":500,"max_states":1e6, // per-query budget overrides
//    "certify":true,                    // request certificate validation
//    "label":"fig2"}                    // presentation name in the record
//
// Client-supplied threads/budget values are clamped to the server's caps
// by apply_limits(); certify can only strengthen the engine's policy
// (monotone: a request never disables server-side certification).
//
// Response shapes (all single-line JSON):
//
//   query    {"id":7,"system":"fig2","check":"rl",...}   (the rlvd record)
//   stats    {"id":3,"ok":true,"stats":{...},"server":{...}}
//   ping     {"id":1,"ok":true,"pong":true}
//   error    {"id":7,"ok":false,"error":"bad_request","detail":"..."}
//   overload {"id":7,"ok":false,"error":"overloaded","overloaded":true,
//             "scope":"server"}        // or "connection"
//
// Budget-tripped queries report through the record's
// "resource_exhausted":true shape, exactly as in batch mode.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "rlv/engine/query.hpp"

namespace rlv::net {

/// Server-side caps applied to client-supplied per-query overrides. A zero
/// cap means "no override allowed" for threads and "unlimited" for the
/// budget fields; a nonzero budget cap also acts as the default for
/// requests that specify no budget, so every served query carries a
/// deadline the drain path can rely on.
struct ServerLimits {
  std::uint64_t max_timeout_ms = 30000;
  std::uint64_t max_max_states = 0;
  std::size_t max_threads = 1;
  /// Monitor-session caps: how many streaming sessions one connection may
  /// hold open, and how many actions one monitor_step may batch. Requests
  /// over these caps are rejected deterministically ("connection_sessions"
  /// overload / "too_many_steps" error) without closing the connection.
  std::size_t max_sessions_per_connection = 4096;
  std::size_t max_steps_per_request = 8192;
};

/// Monotonic serving-layer counters, snapshot via Server::counters() (any
/// thread) and serialized into the "server" object of a stats response.
/// Shared across every reactor of a multi-reactor server — the fields are
/// aggregates, not per-loop numbers.
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t requests = 0;  // parsed protocol lines, any op
  std::uint64_t queries = 0;   // submitted to the engine
  std::uint64_t overload_rejects = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t idle_closed = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t inflight = 0;  // currently submitted, response not yet queued
  /// accept(2) failures from resource pressure (EMFILE/ENFILE/ENOMEM/
  /// ENOBUFS). Each one pauses that reactor's listener instead of killing
  /// the loop; a rising value under load means the fd limit is the
  /// bottleneck (see docs/usage.md §12).
  std::uint64_t accept_soft_errors = 0;
  std::uint64_t reactors = 1;  // event loops serving this process
};

/// The "server" JSON object of a stats response (including the trailing
/// "draining" flag). Pure serialization — testable without sockets.
[[nodiscard]] std::string render_server_counters(const ServerCounters& c,
                                                 bool draining);

enum class RequestOp : std::uint8_t {
  kQuery,
  kStats,
  kPing,
  kMonitorOpen,
  kMonitorStep,
  kMonitorClose,
};

struct Request {
  RequestOp op = RequestOp::kQuery;
  std::uint64_t id = 0;
  std::string label;     // presentation label; "inline" when absent
  Query query;           // populated for kQuery
  MonitorSpec monitor;   // populated for kMonitorOpen
  std::uint64_t session = 0;          // kMonitorStep / kMonitorClose
  std::vector<std::string> actions;   // kMonitorStep batch
};

/// Parses one request line (already stripped of the trailing newline/CR).
/// Throws std::runtime_error with a message safe to echo to the client;
/// never reads files or touches engine state.
[[nodiscard]] Request parse_request(std::string_view line);

/// Clamps the query's client-supplied overrides to the server caps, and
/// applies the budget caps as defaults where the client sent none.
void apply_limits(Query& query, const ServerLimits& limits);

/// {"id":N,"ok":false,"error":"<code>","detail":"..."} — `detail` omitted
/// when empty, `id` omitted when the request id could not be parsed.
[[nodiscard]] std::string render_error(std::optional<std::uint64_t> id,
                                       std::string_view code,
                                       std::string_view detail);

/// The structured backpressure rejection; scope is "connection" or
/// "server" depending on which in-flight cap tripped — or, for monitor
/// opens, "sessions" (global table full) / "connection_sessions" (per-
/// connection cap).
[[nodiscard]] std::string render_overloaded(std::uint64_t id,
                                            std::string_view scope);

// ---------------------------------------------------------------------
// Streaming monitor responses. One line each:
//
//   monitor_open   {"id":N,"ok":true,"session":S,"verdict":"live",
//                   "certified":false,"ms":1.2}
//   monitor_step   {"id":N,"ok":true,"verdict":"doomed","events":4,
//                   "doomed_index":3,"witness":["request","yes","result",
//                   "lock"],"witness_certified":true}
//                  (a batch that leaves the system reports "left_index")
//   monitor_close  {"id":N,"ok":true,"closed":true,"events":4}
//
// Failed opens use the overload shape (table full), the
// resource_exhausted shape, or the plain error shape; step/close errors
// ("unknown_session", "unknown_action", "event_cap") use render_error.

[[nodiscard]] std::string render_monitor_open(std::uint64_t id,
                                              const MonitorOpenResult& r);

[[nodiscard]] std::string render_monitor_step(std::uint64_t id,
                                              const MonitorStepResult& r);

[[nodiscard]] std::string render_monitor_close(std::uint64_t id,
                                               const MonitorCloseResult& r);

}  // namespace rlv::net

#pragma once

// Blocking client for the rlvd wire protocol — the counterpart of
// net::Server used by tools/rlv_loadgen and the integration tests. One
// Client is one TCP connection; it is NOT thread-safe (one connection per
// thread is the intended shape for a closed-loop load generator).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "rlv/engine/query.hpp"

namespace rlv::net {

/// Serializes a Query as a protocol request line (no trailing newline).
/// `label` becomes the record's presentation name when non-empty. Only
/// non-default knobs are emitted, so the line stays small for the common
/// case.
[[nodiscard]] std::string render_query_request(const Query& query,
                                               std::uint64_t id,
                                               std::string_view label = {});

/// Streaming-monitor request lines (op monitor_open / monitor_step /
/// monitor_close).
[[nodiscard]] std::string render_monitor_open_request(
    const MonitorSpec& spec, std::uint64_t id, std::string_view label = {});

[[nodiscard]] std::string render_monitor_step_request(
    std::uint64_t session, const std::vector<std::string>& actions,
    std::uint64_t id);

[[nodiscard]] std::string render_monitor_close_request(std::uint64_t session,
                                                       std::uint64_t id);

/// The response fields a client dispatches on, parsed from one line. The
/// full record stays available in `raw` for callers that need witnesses or
/// stage timings.
struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  bool has_holds = false;
  bool holds = false;
  bool overloaded = false;
  bool resource_exhausted = false;
  std::string error;
  std::string raw;
  // Streaming-monitor fields (monitor_open / monitor_step responses).
  bool has_session = false;
  std::uint64_t session = 0;
  std::string verdict;  // "live" | "doomed" | "left_system"; empty otherwise
  bool has_doomed_index = false;
  std::uint64_t doomed_index = 0;
  bool witness_certified = false;
  std::uint64_t events = 0;
};

/// Parses a response line; throws std::runtime_error on non-JSON input.
[[nodiscard]] Response parse_response(std::string_view line);

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Client(Client&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      buffer_ = std::move(other.buffer_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to host:port (dotted IPv4, or "localhost"). Throws
  /// std::runtime_error on failure.
  void connect(const std::string& host, std::uint16_t port);

  /// Sends one request line and blocks for one response line — the
  /// closed-loop primitive. The request must not contain '\n'.
  [[nodiscard]] std::string call(std::string_view request_line);

  /// Pipelining primitives: send without waiting / read one line.
  /// read_line() throws on EOF or socket errors.
  void send_line(std::string_view line);
  [[nodiscard]] std::string read_line();

  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// The raw socket, for tests that need to abuse it (e.g. slam the
  /// connection shut while a response is in flight). -1 when closed.
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes past the last returned line
};

}  // namespace rlv::net

#include "rlv/net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rlv/engine/record.hpp"
#include "rlv/io/format.hpp"

namespace rlv::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Backoff before a reactor re-polls a listener paused by fd exhaustion:
/// even if none of this reactor's connections close, the process-wide fd
/// table may have been relieved by another reactor (or by the kernel
/// finishing TIME_WAIT teardown), so retry on a short period.
constexpr std::chrono::milliseconds kAcceptRetryBackoff{100};

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

// ---------------------------------------------------------------------------
// Listener

std::uint16_t Listener::listen(const std::string& address, std::uint16_t port,
                               int backlog, bool reuse_port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuse_port) {
    // Must be set before bind on every socket sharing the port. Failure
    // throws so Server::start() can fall back to the fd-handoff acceptor.
#ifdef SO_REUSEPORT
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) < 0) {
      close();
      throw_errno("setsockopt(SO_REUSEPORT)");
    }
#else
    close();
    throw std::runtime_error("SO_REUSEPORT not supported on this platform");
#endif
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("bad bind address: " + address);
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    close();
    throw_errno("bind " + address + ":" + std::to_string(port));
  }
  if (::listen(fd_, backlog) < 0) {
    close();
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    close();
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

int Listener::accept_client(bool* soft_error) {
  if (soft_error) *soft_error = false;
  const int cfd = ::accept4(fd_, nullptr, nullptr,
                            SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (cfd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED ||
        errno == EINTR) {
      return -1;
    }
    if (errno == EMFILE || errno == ENFILE || errno == ENOMEM ||
        errno == ENOBUFS) {
      // Resource pressure, not a broken listener: the pending connection
      // stays in the backlog and a later accept (after an fd frees up)
      // will get it. Crashing here is the one thing a loaded server must
      // not do — report softly and let the caller back off.
      if (soft_error) *soft_error = true;
      return -1;
    }
    throw_errno("accept");
  }
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return cfd;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Server

namespace {

/// One client socket and its protocol state. Owned exclusively by the
/// reactor that accepted (or was handed) it.
struct Connection {
  int fd = -1;
  std::uint64_t id = 0;
  std::string in;   // received bytes not yet forming a complete line
  std::string out;  // rendered responses not yet written
  std::size_t inflight = 0;  // queries submitted, response not yet queued
  bool closing = false;      // close once `out` drains (protocol error)
  bool read_closed = false;  // peer half-closed; flush and then close
  Clock::time_point last_activity{};
  /// Monitor sessions this connection owns: steps/closes are only honored
  /// for ids in here, and everything in here is closed with the socket.
  std::unordered_set<std::uint64_t> sessions;
  /// monitor_opens submitted but not yet completed — counted against the
  /// per-connection session cap so a pipelined burst cannot overshoot it.
  std::size_t pending_opens = 0;
};

struct Completion {
  std::uint64_t conn_id = 0;
  std::string line;
  bool open = false;          // a monitor_open completion
  std::uint64_t session = 0;  // the opened session (0 = open failed)
  /// >= 0: not a query completion at all but an accepted client socket
  /// handed off by the acceptor reactor for this reactor to adopt.
  int handoff_fd = -1;
};

/// The worker→reactor handoff. Shared (via shared_ptr) between the reactor
/// and every in-flight completion callback, so a callback finishing after
/// the server is gone posts into a queue nobody reads instead of freed
/// memory. Owns the write end of the reactor's wakeup pipe.
struct CompletionSink {
  std::mutex mutex;
  std::vector<Completion> items;
  int wake_fd = -1;

  ~CompletionSink() {
    // Handed-off sockets nobody adopted must not leak past the server.
    for (const Completion& completion : items) {
      if (completion.handoff_fd >= 0) ::close(completion.handoff_fd);
    }
    if (wake_fd >= 0) ::close(wake_fd);
  }

  void post(std::uint64_t conn_id, std::string line, bool open = false,
            std::uint64_t session = 0) {
    {
      std::lock_guard lock(mutex);
      items.push_back({conn_id, std::move(line), open, session, -1});
    }
    wake();
  }

  void post_fd(int fd) {
    {
      std::lock_guard lock(mutex);
      items.push_back({0, {}, false, 0, fd});
    }
    wake();
  }

  void wake() {
    const char byte = 'c';
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
    // A full pipe means the reactor has wakeups pending already.
  }
};

}  // namespace

struct Server::Impl {
  // Owner sentinels for a reactor's pollfd table; connection ids start
  // above them.
  static constexpr std::uint64_t kWakeOwner = 0;
  static constexpr std::uint64_t kListenerOwner = 1;

  /// One event loop: listener, wake pipe, completion sink, connection map,
  /// and (through each connection) a set of owned monitor sessions. No
  /// reactor ever touches another reactor's state — the only cross-reactor
  /// traffic is the acceptor's fd handoff through the completion sink.
  struct Reactor {
    Impl& impl;
    const std::size_t index;
    Listener listener;
    int wake_read = -1;
    std::shared_ptr<CompletionSink> sink;
    std::unordered_map<std::uint64_t, Connection> connections;
    std::uint64_t next_conn_id = kListenerOwner + 1;
    /// Queries/opens this reactor submitted that have not completed; the
    /// reactor's drain exit condition (the global gauge cannot tell whose
    /// in-flight work is whose).
    std::size_t local_inflight = 0;
    /// fd-exhaustion state: while paused the listener is left out of the
    /// poll set; cleared when one of this reactor's connections closes or
    /// the retry backoff elapses.
    bool accept_paused = false;
    Clock::time_point accept_retry_at{};
    std::uint64_t rr_next = 0;  // acceptor reactor's round-robin cursor

    Reactor(Impl& owner, std::size_t idx) : impl(owner), index(idx) {
      int pipe_fds[2];
      if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) throw_errno("pipe2");
      wake_read = pipe_fds[0];
      sink = std::make_shared<CompletionSink>();
      sink->wake_fd = pipe_fds[1];
    }

    ~Reactor() {
      for (auto& [id, conn] : connections) close_fd(conn);
      if (wake_read >= 0) ::close(wake_read);
      // The sink closes the write end when the last callback releases it.
    }

    void close_fd(Connection& conn) {
      if (conn.fd < 0) return;
      ::close(conn.fd);
      conn.fd = -1;
      impl.c_open.fetch_sub(1, std::memory_order_relaxed);
      // Session lifetime is tied to the connection: RST, idle close,
      // drain — every path through here reclaims the connection's monitor
      // sessions, whichever reactor owns it.
      for (const std::uint64_t session : conn.sessions) {
        (void)impl.engine.close_monitor(session);
      }
      conn.sessions.clear();
      // An fd just freed up; if the listener was paused on exhaustion it
      // can accept again.
      accept_paused = false;
    }

    void flush_writes(Connection& conn) {
      while (!conn.out.empty() && conn.fd >= 0) {
        const ssize_t n =
            ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
          impl.c_bytes_written.fetch_add(static_cast<std::uint64_t>(n),
                                         std::memory_order_relaxed);
          conn.out.erase(0, static_cast<std::size_t>(n));
          conn.last_activity = Clock::now();
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
        if (n < 0 && errno == EINTR) continue;
        // EPIPE/ECONNRESET: the client vanished mid-response. MSG_NOSIGNAL
        // (plus the SIG_IGN installed at start) keeps the daemon alive; the
        // connection is reaped, its in-flight completions dropped on
        // arrival.
        close_fd(conn);
        conn.out.clear();
      }
    }

    void send_line(Connection& conn, std::string line) {
      conn.out += line;
      conn.out += '\n';
      flush_writes(conn);
    }

    void submit_query(Connection& conn, Request req) {
      if (impl.global_inflight.load(std::memory_order_relaxed) >=
          impl.options.max_inflight) {
        impl.c_overload.fetch_add(1, std::memory_order_relaxed);
        send_line(conn, render_overloaded(req.id, "server"));
        return;
      }
      if (conn.inflight >= impl.options.max_inflight_per_connection) {
        impl.c_overload.fetch_add(1, std::memory_order_relaxed);
        send_line(conn, render_overloaded(req.id, "connection"));
        return;
      }
      apply_limits(req.query, impl.options.limits);
      impl.global_inflight.fetch_add(1, std::memory_order_relaxed);
      ++local_inflight;
      ++conn.inflight;
      impl.c_queries.fetch_add(1, std::memory_order_relaxed);

      Query to_run = req.query;
      std::string label = req.label.empty() ? "inline" : std::move(req.label);
      std::string property_label =
          req.query.property_automaton.empty() ? std::string() : label;
      // The callback runs on an engine worker: rendering (which re-parses
      // the system text for witness action names) happens there, off the
      // event loops. Engine outlives every callback (its destructor drains
      // the pool), and the shared sink outlives the server.
      engine().submit(
          std::move(to_run),
          [sink = sink, engine = &engine(), conn_id = conn.id, id = req.id,
           query = std::move(req.query), label = std::move(label),
           property_label = std::move(property_label)](Verdict verdict) {
            std::string record =
                render_query_record(id, query, verdict, label, property_label,
                                    engine->stats().total());
            sink->post(conn_id, std::move(record));
          });
    }

    void submit_monitor_open(Connection& conn, Request req) {
      // The per-connection session cap counts opens still in flight, so a
      // pipelined burst of opens is rejected deterministically at the cap.
      if (conn.sessions.size() + conn.pending_opens >=
          impl.options.limits.max_sessions_per_connection) {
        impl.c_overload.fetch_add(1, std::memory_order_relaxed);
        send_line(conn, render_overloaded(req.id, "connection_sessions"));
        return;
      }
      if (impl.global_inflight.load(std::memory_order_relaxed) >=
          impl.options.max_inflight) {
        impl.c_overload.fetch_add(1, std::memory_order_relaxed);
        send_line(conn, render_overloaded(req.id, "server"));
        return;
      }
      if (conn.inflight >= impl.options.max_inflight_per_connection) {
        impl.c_overload.fetch_add(1, std::memory_order_relaxed);
        send_line(conn, render_overloaded(req.id, "connection"));
        return;
      }
      impl.global_inflight.fetch_add(1, std::memory_order_relaxed);
      ++local_inflight;
      ++conn.inflight;
      ++conn.pending_opens;
      impl.c_queries.fetch_add(1, std::memory_order_relaxed);
      // Compilation is the expensive half of a monitor's life — run it on
      // a worker like any query; stepping stays on the loop (O(1)/event).
      engine().submit_monitor_open(
          std::move(req.monitor),
          [sink = sink, conn_id = conn.id, id = req.id](MonitorOpenResult r) {
            sink->post(conn_id, render_monitor_open(id, r), /*open=*/true,
                       r.session);
          });
    }

    void handle_monitor_step(Connection& conn, const Request& req) {
      if (req.actions.size() > impl.options.limits.max_steps_per_request) {
        impl.c_overload.fetch_add(1, std::memory_order_relaxed);
        send_line(
            conn,
            render_error(req.id, "too_many_steps",
                         "batch cap is " +
                             std::to_string(
                                 impl.options.limits.max_steps_per_request)));
        return;
      }
      // A connection may only step sessions it opened; a foreign (or
      // already-closed) id is indistinguishable from an unknown one.
      if (conn.sessions.count(req.session) == 0) {
        send_line(conn, render_error(req.id, "unknown_session", {}));
        return;
      }
      MonitorStepResult r = engine().step_monitor(req.session, req.actions);
      if (r.error == "unknown_session") {
        conn.sessions.erase(req.session);  // idle-swept under us
      }
      send_line(conn, render_monitor_step(req.id, r));
    }

    void handle_monitor_close(Connection& conn, const Request& req) {
      if (conn.sessions.erase(req.session) == 0) {
        send_line(conn, render_error(req.id, "unknown_session", {}));
        return;
      }
      send_line(conn, render_monitor_close(
                          req.id, engine().close_monitor(req.session)));
    }

    void handle_line(Connection& conn, std::string_view line, bool stopping) {
      impl.c_requests.fetch_add(1, std::memory_order_relaxed);
      Request req;
      try {
        req = parse_request(line);
      } catch (const std::exception& e) {
        // The stream may be desynced (a partial or non-protocol line), so
        // answer once and close rather than misinterpret what follows.
        impl.c_proto_err.fetch_add(1, std::memory_order_relaxed);
        send_line(conn, render_error(std::nullopt, "bad_request", e.what()));
        conn.closing = true;
        return;
      }
      switch (req.op) {
        case RequestOp::kPing:
          send_line(conn, "{\"id\":" + std::to_string(req.id) +
                              ",\"ok\":true,\"pong\":true}");
          break;
        case RequestOp::kStats:
          send_line(conn, impl.render_server_stats(req.id, stopping));
          break;
        case RequestOp::kQuery:
          submit_query(conn, std::move(req));
          break;
        case RequestOp::kMonitorOpen:
          submit_monitor_open(conn, std::move(req));
          break;
        case RequestOp::kMonitorStep:
          handle_monitor_step(conn, req);
          break;
        case RequestOp::kMonitorClose:
          handle_monitor_close(conn, req);
          break;
      }
    }

    void process_lines(Connection& conn, bool stopping) {
      std::size_t start = 0;
      while (conn.fd >= 0 && !conn.closing) {
        const std::size_t nl = conn.in.find('\n', start);
        if (nl == std::string::npos) break;
        const std::string_view line =
            strip_cr(std::string_view(conn.in).substr(start, nl - start));
        start = nl + 1;
        if (!line.empty()) handle_line(conn, line, stopping);
      }
      conn.in.erase(0, start);
      if (conn.in.size() > impl.options.max_request_bytes && !conn.closing) {
        impl.c_proto_err.fetch_add(1, std::memory_order_relaxed);
        send_line(conn, render_error(std::nullopt, "bad_request",
                                     "request line too large"));
        conn.closing = true;
        conn.in.clear();
      }
    }

    void read_from(Connection& conn, Clock::time_point now, bool stopping) {
      char buffer[65536];
      while (conn.fd >= 0) {
        const ssize_t n = ::recv(conn.fd, buffer, sizeof buffer, 0);
        if (n > 0) {
          impl.c_bytes_read.fetch_add(static_cast<std::uint64_t>(n),
                                      std::memory_order_relaxed);
          conn.in.append(buffer, static_cast<std::size_t>(n));
          conn.last_activity = now;
          continue;
        }
        if (n == 0) {
          conn.read_closed = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        close_fd(conn);
        return;
      }
      process_lines(conn, stopping);
    }

    void adopt(int cfd, Clock::time_point now) {
      const std::uint64_t id = next_conn_id++;
      Connection conn;
      conn.fd = cfd;
      conn.id = id;
      conn.last_activity = now;
      connections.emplace(id, std::move(conn));
    }

    void accept_clients(Clock::time_point now) {
      // The connection cap is global: with reuseport listeners each
      // reactor accepts its own kernel-routed share; in handoff mode only
      // this (acceptor) reactor runs the loop and deals the fds out.
      while (impl.c_open.load(std::memory_order_relaxed) <
             impl.options.max_connections) {
        bool soft_error = false;
        const int cfd = listener.accept_client(&soft_error);
        if (cfd < 0) {
          if (soft_error) {
            impl.c_accept_soft.fetch_add(1, std::memory_order_relaxed);
            if (!impl.accept_error_logged.exchange(
                    true, std::memory_order_relaxed)) {
              // Once per exhaustion episode, not per retry: the counter
              // carries the rate, the log line carries the diagnosis.
              std::fprintf(stderr,
                           "rlv::net: accept: %s — pausing listener until a "
                           "connection closes\n",
                           std::strerror(errno));
            }
            accept_paused = true;
            accept_retry_at = now + kAcceptRetryBackoff;
          }
          return;
        }
        impl.accept_error_logged.store(false, std::memory_order_relaxed);
        impl.c_accepted.fetch_add(1, std::memory_order_relaxed);
        impl.c_open.fetch_add(1, std::memory_order_relaxed);
        if (impl.handoff_mode && impl.reactors.size() > 1) {
          const std::size_t target = rr_next++ % impl.reactors.size();
          if (target != index) {
            impl.reactors[target]->sink->post_fd(cfd);
            continue;
          }
        }
        adopt(cfd, now);
      }
    }

    void drain_completions(Clock::time_point now) {
      std::vector<Completion> items;
      {
        std::lock_guard lock(sink->mutex);
        items.swap(sink->items);
      }
      const bool stopping = impl.stop.load(std::memory_order_acquire);
      for (Completion& completion : items) {
        if (completion.handoff_fd >= 0) {
          // A socket the acceptor dealt to this reactor. During drain
          // nobody should adopt new clients — close it (the acceptor
          // already counted it open).
          if (stopping) {
            ::close(completion.handoff_fd);
            impl.c_open.fetch_sub(1, std::memory_order_relaxed);
          } else {
            adopt(completion.handoff_fd, now);
          }
          continue;
        }
        impl.global_inflight.fetch_sub(1, std::memory_order_relaxed);
        if (local_inflight > 0) --local_inflight;
        const auto it = connections.find(completion.conn_id);
        Connection* conn = it == connections.end() ? nullptr : &it->second;
        if (conn && completion.open && conn->pending_opens > 0) {
          --conn->pending_opens;
        }
        if (conn && conn->inflight > 0) --conn->inflight;
        if (!conn || conn->fd < 0) {
          // Client left before the open finished: the session would leak
          // in the engine table with nobody able to step or close it.
          if (completion.open && completion.session != 0) {
            (void)engine().close_monitor(completion.session);
          }
          continue;
        }
        if (completion.open && completion.session != 0) {
          conn->sessions.insert(completion.session);
        }
        conn->out += completion.line;
        conn->out += '\n';
        flush_writes(*conn);
      }
    }

    int poll_timeout(bool stopping,
                     const std::optional<Clock::time_point>& drain_deadline,
                     Clock::time_point now) const {
      std::int64_t timeout = -1;
      const auto consider = [&](Clock::time_point deadline) {
        const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now)
                            .count();
        const std::int64_t clamped = ms < 0 ? 0 : ms + 1;
        if (timeout < 0 || clamped < timeout) timeout = clamped;
      };
      if (stopping && drain_deadline) consider(*drain_deadline);
      if (!stopping && accept_paused) consider(accept_retry_at);
      if (!stopping && impl.options.session_idle_timeout_ms > 0) {
        // Idle-session GC runs on loop passes; wake at least once per
        // timeout interval so sessions expire without client traffic.
        consider(now + std::chrono::milliseconds(
                           impl.options.session_idle_timeout_ms));
      }
      if (!stopping && impl.options.idle_timeout_ms > 0) {
        for (const auto& [id, conn] : connections) {
          if (conn.fd < 0 || conn.inflight > 0 || !conn.out.empty()) continue;
          consider(conn.last_activity +
                   std::chrono::milliseconds(impl.options.idle_timeout_ms));
        }
      }
      if (timeout > 60000) timeout = 60000;
      return static_cast<int>(timeout);
    }

    void run() {
      std::optional<Clock::time_point> drain_deadline;
      std::vector<pollfd> fds;
      std::vector<std::uint64_t> owners;  // sentinels above, or conn id
      while (true) {
        drain_completions(Clock::now());
        const bool stopping = impl.stop.load(std::memory_order_acquire);
        Clock::time_point now = Clock::now();
        if (stopping) {
          listener.close();
          if (!drain_deadline) {
            drain_deadline =
                now + std::chrono::milliseconds(impl.options.drain_timeout_ms);
          }
        }
        // Reap: broken sockets, protocol-error closes whose responses have
        // flushed, half-closed clients with nothing pending, and — during
        // drain — every connection that is fully answered.
        for (auto it = connections.begin(); it != connections.end();) {
          Connection& conn = it->second;
          const bool answered = conn.inflight == 0 && conn.out.empty();
          if (conn.fd < 0 || (conn.closing && conn.out.empty()) ||
              ((conn.read_closed || stopping) && answered)) {
            close_fd(conn);
            it = connections.erase(it);
          } else {
            ++it;
          }
        }
        if (stopping) {
          if (local_inflight == 0 && connections.empty()) break;
          if (now >= *drain_deadline) break;  // give up on stragglers
        }

        fds.clear();
        owners.clear();
        fds.push_back({wake_read, POLLIN, 0});
        owners.push_back(kWakeOwner);
        if (!stopping && listener.open() &&
            impl.c_open.load(std::memory_order_relaxed) <
                impl.options.max_connections) {
          if (accept_paused && now < accept_retry_at) {
            // fd pressure: leave the listener out of the poll set; the
            // pending backlog is re-examined when a connection closes or
            // the backoff elapses (poll_timeout covers the wake-up).
          } else {
            accept_paused = false;
            fds.push_back({listener.fd(), POLLIN, 0});
            owners.push_back(kListenerOwner);
          }
        }
        for (auto& [id, conn] : connections) {
          short events = 0;
          if (!stopping && !conn.closing && !conn.read_closed &&
              conn.out.size() <= impl.options.max_write_buffer) {
            events |= POLLIN;
          }
          if (!conn.out.empty()) events |= POLLOUT;
          if (events == 0) continue;  // waiting only on completions
          fds.push_back({conn.fd, events, 0});
          owners.push_back(id);
        }

        const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                             poll_timeout(stopping, drain_deadline, now));
        if (n < 0) {
          if (errno == EINTR) continue;
          throw_errno("poll");
        }
        now = Clock::now();
        if (fds[0].revents & POLLIN) {
          char buffer[256];
          while (::read(wake_read, buffer, sizeof buffer) > 0) {
          }
        }
        for (std::size_t i = 1; i < fds.size(); ++i) {
          if (owners[i] == kListenerOwner) {
            if (fds[i].revents & POLLIN) accept_clients(now);
            continue;
          }
          const auto it = connections.find(owners[i]);
          if (it == connections.end()) continue;
          Connection& conn = it->second;
          if (fds[i].revents & POLLOUT) flush_writes(conn);
          if (conn.fd >= 0 && (fds[i].revents & POLLIN)) {
            read_from(conn, now, stopping);
          }
          if (conn.fd >= 0 && (fds[i].revents & (POLLERR | POLLNVAL))) {
            close_fd(conn);
          }
          // POLLHUP with no POLLIN: nothing left to read, peer is gone.
          if (conn.fd >= 0 && (fds[i].revents & POLLHUP) &&
              !(fds[i].revents & POLLIN)) {
            conn.read_closed = true;
          }
        }
        if (!stopping && impl.options.idle_timeout_ms > 0) {
          for (auto& [id, conn] : connections) {
            if (conn.fd < 0 || conn.inflight > 0 || !conn.out.empty()) {
              continue;
            }
            if (now - conn.last_activity >=
                std::chrono::milliseconds(impl.options.idle_timeout_ms)) {
              impl.c_idle.fetch_add(1, std::memory_order_relaxed);
              close_fd(conn);
            }
          }
        }
        if (!stopping && index == 0 &&
            impl.options.session_idle_timeout_ms > 0) {
          // One sweeper is enough: the engine's table is shared, and
          // sessions reclaimed here linger in their owning connection's
          // set until the next step reports unknown_session — the
          // generation counter makes the stale ids inert on any reactor.
          (void)engine().sweep_idle_sessions(
              impl.options.session_idle_timeout_ms);
        }
      }
      for (auto& [id, conn] : connections) close_fd(conn);
      connections.clear();
      // Completions that raced the drain deadline (and handed-off fds
      // nobody will adopt) are dealt with once more; anything arriving
      // later hits the sink's destructor or the orphan path next drain.
      drain_completions(Clock::now());
    }

    [[nodiscard]] Engine& engine() const { return impl.engine; }
  };

  Impl(Engine& eng, ServerOptions opts)
      : engine(eng), options(std::move(opts)) {
    const std::size_t n = options.reactors == 0 ? 1 : options.reactors;
    reactors.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      reactors.push_back(std::make_unique<Reactor>(*this, i));
    }
    wake_fds.reserve(n);
    for (const auto& reactor : reactors) {
      wake_fds.push_back(reactor->sink->wake_fd);
    }
  }

  Engine& engine;
  ServerOptions options;
  std::uint16_t bound_port = 0;
  bool started = false;
  bool handoff_mode = false;  // single acceptor + round-robin fd handoff
  std::atomic<bool> stop{false};

  /// In-flight queries/opens across all reactors — the "server" overload
  /// scope. Relaxed is enough: the cap is advisory backpressure, and each
  /// reactor's own submissions are sequenced on its thread.
  std::atomic<std::size_t> global_inflight{0};

  // Counters are shared across reactors and aggregated on demand; every
  // reactor bumps them with relaxed fetch_adds.
  std::atomic<std::uint64_t> c_accepted{0};
  std::atomic<std::uint64_t> c_open{0};
  std::atomic<std::uint64_t> c_requests{0};
  std::atomic<std::uint64_t> c_queries{0};
  std::atomic<std::uint64_t> c_overload{0};
  std::atomic<std::uint64_t> c_proto_err{0};
  std::atomic<std::uint64_t> c_idle{0};
  std::atomic<std::uint64_t> c_bytes_read{0};
  std::atomic<std::uint64_t> c_bytes_written{0};
  std::atomic<std::uint64_t> c_accept_soft{0};
  std::atomic<bool> accept_error_logged{false};

  /// Declared LAST: reactor destructors (close_fd on leftover connections)
  /// still touch the counters and the engine reference above.
  std::vector<std::unique_ptr<Reactor>> reactors;
  /// The write ends of every reactor's wake pipe, frozen after
  /// construction so request_stop() can walk it from a signal handler.
  std::vector<int> wake_fds;

  [[nodiscard]] ServerCounters snapshot_counters() const {
    ServerCounters counters;
    counters.connections_accepted = c_accepted.load();
    counters.connections_open = c_open.load();
    counters.requests = c_requests.load();
    counters.queries = c_queries.load();
    counters.overload_rejects = c_overload.load();
    counters.protocol_errors = c_proto_err.load();
    counters.idle_closed = c_idle.load();
    counters.bytes_read = c_bytes_read.load();
    counters.bytes_written = c_bytes_written.load();
    counters.inflight = global_inflight.load();
    counters.accept_soft_errors = c_accept_soft.load();
    counters.reactors = reactors.size();
    return counters;
  }

  std::string render_server_stats(std::uint64_t id, bool stopping) {
    std::ostringstream out;
    out << "{\"id\":" << id
        << ",\"ok\":true,\"stats\":" << render_stats(engine.stats())
        << ",\"server\":" << render_server_counters(snapshot_counters(),
                                                    stopping)
        << "}";
    return out.str();
  }

  void start_listeners() {
    const std::size_t n = reactors.size();
    handoff_mode = options.force_acceptor_handoff || n == 1;
    if (n > 1 && !handoff_mode) {
      try {
        bound_port = reactors[0]->listener.listen(
            options.bind_address, options.port, options.backlog,
            /*reuse_port=*/true);
        for (std::size_t i = 1; i < n; ++i) {
          reactors[i]->listener.listen(options.bind_address, bound_port,
                                       options.backlog, /*reuse_port=*/true);
        }
        return;
      } catch (const std::exception&) {
        // No SO_REUSEPORT (or it was refused): one listener on reactor 0,
        // accepted fds dealt round-robin through the completion sinks.
        for (auto& reactor : reactors) reactor->listener.close();
        handoff_mode = true;
      }
    }
    bound_port = reactors[0]->listener.listen(options.bind_address,
                                              options.port, options.backlog);
  }

  void stop_all() {
    // Async-signal-safe: one atomic store plus one write(2) per reactor on
    // pipe fds that stay valid for the server's lifetime.
    stop.store(true, std::memory_order_release);
    const char byte = 's';
    for (const int fd : wake_fds) {
      [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
    }
  }

  void run_all() {
    if (!started) throw std::runtime_error("Server::run() before start()");
    std::mutex error_mutex;
    std::exception_ptr error;
    const auto record_error = [&] {
      {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      stop_all();  // one reactor failing must not strand the others
    };
    std::vector<std::thread> threads;
    threads.reserve(reactors.size() > 0 ? reactors.size() - 1 : 0);
    for (std::size_t i = 1; i < reactors.size(); ++i) {
      threads.emplace_back([this, i, &record_error] {
        try {
          reactors[i]->run();
        } catch (...) {
          record_error();
        }
      });
    }
    try {
      reactors[0]->run();
    } catch (...) {
      record_error();
    }
    for (std::thread& thread : threads) thread.join();
    if (error) std::rethrow_exception(error);
  }
};

Server::Server(Engine& engine, ServerOptions options)
    : impl_(std::make_unique<Impl>(engine, std::move(options))) {
  if (engine.workers() == 0) {
    // With jobs <= 1 Engine::submit runs the query inline on the caller —
    // which here would be an event loop, freezing every other client.
    throw std::invalid_argument(
        "net::Server requires an Engine with jobs >= 2 (a real worker pool)");
  }
}

Server::~Server() = default;

std::uint16_t Server::start() {
  // A client disconnecting mid-response must not kill the daemon: every
  // send() also passes MSG_NOSIGNAL, but third-party code (and the client
  // library, when used in-process) writes to sockets too.
  std::signal(SIGPIPE, SIG_IGN);
  impl_->start_listeners();
  impl_->started = true;
  return impl_->bound_port;
}

void Server::run() { impl_->run_all(); }

void Server::request_stop() { impl_->stop_all(); }

std::uint16_t Server::port() const { return impl_->bound_port; }

ServerCounters Server::counters() const { return impl_->snapshot_counters(); }

}  // namespace rlv::net

#include "rlv/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "rlv/io/format.hpp"
#include "rlv/net/json.hpp"

namespace rlv::net {

std::string render_query_request(const Query& query, std::uint64_t id,
                                 std::string_view label) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"system\":\"" +
                    json_escape(query.system) + "\"";
  if (query.property_automaton.empty()) {
    out += ",\"formula\":\"" + json_escape(query.formula) + "\"";
  } else {
    out += ",\"property_automaton\":\"" +
           json_escape(query.property_automaton) + "\"";
  }
  out += ",\"check\":\"" + std::string(check_kind_name(query.kind)) + "\"";
  if (query.algorithm != InclusionAlgorithm::kAntichain) {
    out += ",\"algorithm\":\"" +
           std::string(inclusion_algorithm_name(query.algorithm)) + "\"";
  }
  if (query.threads > 0) {
    out += ",\"threads\":" + std::to_string(query.threads);
  }
  if (query.timeout_ms > 0) {
    out += ",\"timeout_ms\":" + std::to_string(query.timeout_ms);
  }
  if (query.max_states > 0) {
    out += ",\"max_states\":" + std::to_string(query.max_states);
  }
  if (query.certify) out += ",\"certify\":true";
  if (!label.empty()) {
    out += ",\"label\":\"" + json_escape(label) + "\"";
  }
  out += "}";
  return out;
}

std::string render_monitor_open_request(const MonitorSpec& spec,
                                        std::uint64_t id,
                                        std::string_view label) {
  std::string out = "{\"op\":\"monitor_open\",\"id\":" + std::to_string(id) +
                    ",\"system\":\"" + json_escape(spec.system) + "\"";
  if (spec.property_automaton.empty()) {
    out += ",\"formula\":\"" + json_escape(spec.formula) + "\"";
  } else {
    out += ",\"property_automaton\":\"" +
           json_escape(spec.property_automaton) + "\"";
  }
  if (spec.certify) out += ",\"certify\":true";
  if (!label.empty()) out += ",\"label\":\"" + json_escape(label) + "\"";
  out += "}";
  return out;
}

std::string render_monitor_step_request(std::uint64_t session,
                                        const std::vector<std::string>& actions,
                                        std::uint64_t id) {
  std::string out = "{\"op\":\"monitor_step\",\"id\":" + std::to_string(id) +
                    ",\"session\":" + std::to_string(session) + ",\"actions\":[";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + json_escape(actions[i]) + '"';
  }
  out += "]}";
  return out;
}

std::string render_monitor_close_request(std::uint64_t session,
                                         std::uint64_t id) {
  return "{\"op\":\"monitor_close\",\"id\":" + std::to_string(id) +
         ",\"session\":" + std::to_string(session) + "}";
}

Response parse_response(std::string_view line) {
  Response response;
  response.raw = std::string(line);
  JsonValue root;
  try {
    root = parse_json(line);
  } catch (const JsonError& e) {
    throw std::runtime_error(std::string("malformed response: ") + e.what());
  }
  if (const JsonValue* id = root.find("id")) response.id = id->as_uint();
  if (const JsonValue* ok = root.find("ok")) response.ok = ok->as_bool();
  if (const JsonValue* holds = root.find("holds")) {
    response.has_holds = true;
    response.holds = holds->as_bool();
  }
  if (const JsonValue* overloaded = root.find("overloaded")) {
    response.overloaded = overloaded->as_bool();
  }
  if (const JsonValue* exhausted = root.find("resource_exhausted")) {
    response.resource_exhausted = exhausted->as_bool();
  }
  if (const JsonValue* error = root.find("error")) {
    response.error = error->as_string();
  }
  if (const JsonValue* session = root.find("session")) {
    response.has_session = true;
    response.session = session->as_uint();
  }
  if (const JsonValue* verdict = root.find("verdict")) {
    response.verdict = verdict->as_string();
  }
  if (const JsonValue* doomed = root.find("doomed_index")) {
    response.has_doomed_index = true;
    response.doomed_index = doomed->as_uint();
  }
  if (const JsonValue* certified = root.find("witness_certified")) {
    response.witness_certified = certified->as_bool();
  }
  if (const JsonValue* events = root.find("events")) {
    response.events = events->as_uint();
  }
  return response;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  const std::string address = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad address (dotted IPv4 expected): " + host);
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    close();
    throw std::runtime_error("connect " + host + ":" + std::to_string(port) +
                             ": " + std::strerror(saved));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Client::send_line(std::string_view line) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  std::string framed(line);
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string Client::read_line() {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line(strip_cr(std::string_view(buffer_).substr(0, nl)));
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) throw std::runtime_error("connection closed by server");
    if (errno == EINTR) continue;
    throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
  }
}

std::string Client::call(std::string_view request_line) {
  send_line(request_line);
  return read_line();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace rlv::net

#pragma once

// Minimal JSON reader for the rlv::net wire protocol. Requests arrive as
// one JSON object per line from untrusted clients, so the parser is
// strict (RFC 8259 grammar, no extensions), bounds recursion depth, and
// reports errors with byte offsets safe to echo back in an error
// response. Writing stays string-based (rlv::json_escape plus the record
// renderers) — only the reading half needs a DOM.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rlv::net {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " (at byte " + std::to_string(offset) +
                           ")"),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One parsed JSON value. Object member order is preserved; duplicate keys
/// are rejected at parse time (a client sending {"id":1,"id":2} is trying
/// to confuse something).
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Typed accessors: throw std::runtime_error (with the offending kind
  /// named) on mismatch. as_uint additionally rejects negative, fractional,
  /// and non-finite numbers — protocol ids and limits are exact integers.
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_uint() const;
};

/// Parses exactly one JSON document covering all of `text` (surrounding
/// whitespace allowed, trailing bytes rejected). Throws JsonError.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace rlv::net

#include "rlv/net/json.hpp"

#include <cmath>
#include <cstdlib>

namespace rlv::net {

namespace {

constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing bytes after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(message, pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal");
    }
    pos_ += literal.size();
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    JsonValue value;
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.string = parse_string();
        return value;
      case 't':
        expect_literal("true");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        expect_literal("false");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = false;
        return value;
      case 'n':
        expect_literal("null");
        value.kind = JsonValue::Kind::kNull;
        return value;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    take();  // '{'
    skip_whitespace();
    if (peek() == '}') {
      take();
      return value;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      for (const auto& [existing, unused] : value.object) {
        if (existing == key) fail("duplicate object key '" + key + "'");
      }
      skip_whitespace();
      if (take() != ':') fail("expected ':'");
      value.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char c = take();
      if (c == '}') return value;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array(std::size_t depth) {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    take();  // '['
    skip_whitespace();
    if (peek() == ']') {
      take();
      return value;
    }
    while (true) {
      value.array.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = take();
      if (c == ']') return value;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return value;
  }

  std::string parse_string() {
    take();  // '"'
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char escape = take();
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out += escape;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: a low surrogate must follow.
            if (take() != '\\' || take() != 'u') fail("unpaired surrogate");
            const std::uint32_t low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // The slice is a valid JSON number, which is also a valid strtod input;
    // copy for the NUL terminator strtod needs.
    const std::string slice(text_.substr(start, pos_ - start));
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(slice.c_str(), nullptr);
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_mismatch(const char* wanted, JsonValue::Kind got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw std::runtime_error(std::string("expected ") + wanted + ", got " +
                           kNames[static_cast<std::size_t>(got)]);
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) kind_mismatch("string", kind);
  return string;
}

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) kind_mismatch("bool", kind);
  return boolean;
}

double JsonValue::as_number() const {
  if (kind != Kind::kNumber) kind_mismatch("number", kind);
  return number;
}

std::uint64_t JsonValue::as_uint() const {
  if (kind != Kind::kNumber) kind_mismatch("number", kind);
  if (!std::isfinite(number) || number < 0 ||
      number != std::floor(number) || number > 1.8446744073709550e19) {
    throw std::runtime_error("expected a non-negative integer");
  }
  return static_cast<std::uint64_t>(number);
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace rlv::net

#pragma once

// rlv::net::Server — the resident serving layer over rlv::Engine. One
// process owns one Engine (and thus one set of warm caches) and serves the
// newline-delimited JSON protocol of protocol.hpp to any number of
// concurrent TCP clients.
//
// Threading model: N reactor threads (options.reactors; run() spawns
// N-1 and becomes reactor 0), each a self-contained poll(2) event loop
// owning its own listener fd, pollfd table, connection map, wake pipe,
// completion sink, and monitor-session-ownership sets — no connection
// state is ever shared across reactors, so the loops need no locks
// between them. Incoming connections are spread by the kernel via
// SO_REUSEPORT (every reactor listens on the same address); when that
// is unavailable (or force_acceptor_handoff is set), reactor 0 keeps
// the only listener and hands accepted fds round-robin to the other
// reactors through their completion sinks. Reactors never execute a
// query: query work happens on the Engine's worker pool via
// Engine::submit, results are rendered on the worker thread (rendering
// re-parses the system text — keep that off the loops) and handed back
// through the owning reactor's mutex-protected completion queue plus a
// self-pipe wakeup. Because the engine runs queries inline when built
// with jobs <= 1, a Server requires an Engine with jobs >= 2.
//
// Backpressure: in-flight queries are bounded per connection and globally;
// a request over either bound is answered immediately with the structured
// "overloaded" rejection (scope "connection" / "server") instead of
// queueing without bound or stalling the socket. A connection whose write
// buffer exceeds max_write_buffer stops being read until the client
// drains it (TCP backpressure).
//
// Shutdown: request_stop() is async-signal-safe (an atomic store plus a
// write to every reactor's self-pipe) so a SIGINT/SIGTERM handler can
// call it directly. Each reactor then stops accepting and reading, lets
// its in-flight queries finish under their Budget deadlines
// (apply_limits gives every served query one), flushes buffered
// responses, reclaims its connections' monitor sessions, and returns;
// a drain deadline bounds the wait against budget-less stragglers.
// run() returns once every reactor has drained.
//
// fd exhaustion: accept(2) failing with EMFILE/ENFILE/ENOMEM/ENOBUFS is
// an overload signal, not a crash — the reactor logs once, bumps
// accept_soft_errors, and stops polling its listener until one of its
// connections closes (or a short retry backoff elapses). Established
// connections keep being served the whole time.

#include <cstdint>
#include <memory>
#include <string>

#include "rlv/engine/engine.hpp"
#include "rlv/net/protocol.hpp"

namespace rlv::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; start() returns the bound port
  int backlog = 64;
  std::size_t max_connections = 256;
  std::size_t max_inflight_per_connection = 8;
  std::size_t max_inflight = 64;  // across all connections
  /// A request line (and thus an embedded system text) larger than this is
  /// rejected and the connection closed — the parser never sees it.
  std::size_t max_request_bytes = 1 << 20;
  /// Above this many buffered unsent response bytes the connection is not
  /// read until the client catches up.
  std::size_t max_write_buffer = 8 << 20;
  std::uint64_t idle_timeout_ms = 120000;  // 0 = never close idle clients
  std::uint64_t drain_timeout_ms = 5000;   // bound on the graceful drain
  /// Monitor sessions untouched for this long are reclaimed by the loop
  /// (idle-session GC, independent of connection idle close); 0 = never.
  /// A later step on a reclaimed session reports "unknown_session".
  std::uint64_t session_idle_timeout_ms = 0;
  /// Event-loop reactors. 1 keeps the classic single-loop server; N > 1
  /// runs N independent loops (run() spawns N-1 threads), sharing only the
  /// engine, the global in-flight gauge, and the stats counters.
  std::size_t reactors = 1;
  /// Forces the single-acceptor round-robin fd-handoff path even where
  /// SO_REUSEPORT is available. Deterministic connection placement —
  /// client k lands on reactor k mod N — which the multi-reactor tests
  /// rely on; also the automatic fallback when a reuseport bind fails.
  bool force_acceptor_handoff = false;
  ServerLimits limits;  // caps/defaults for per-request overrides
};

/// RAII listening socket (IPv4, non-blocking). Split out of Server so tests
/// and future front ends (e.g. a unix-socket flavor) can reuse it.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds address:port (dotted IPv4; port 0 picks an ephemeral port) with
  /// SO_REUSEADDR (plus SO_REUSEPORT when `reuse_port` — the multi-reactor
  /// mode, where every reactor binds the same port and the kernel spreads
  /// connections) and starts listening. Returns the bound port. Throws
  /// std::runtime_error on failure.
  std::uint16_t listen(const std::string& address, std::uint16_t port,
                       int backlog, bool reuse_port = false);

  /// Accepts one pending client as a non-blocking fd; -1 when none pending.
  /// fd exhaustion (EMFILE/ENFILE/ENOMEM/ENOBUFS) is reported by setting
  /// *soft_error instead of throwing — the caller backs off and retries;
  /// only genuinely unexpected failures throw.
  [[nodiscard]] int accept_client(bool* soft_error = nullptr);

  void close();
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

class Server {
 public:
  /// The engine must outlive the server AND be built with jobs >= 2 (see
  /// the threading model above); the constructor enforces the latter.
  Server(Engine& engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Installs SIGPIPE protection, binds, and listens. Returns the bound
  /// port (== options.port unless that was 0). Throws on bind failure.
  std::uint16_t start();

  /// The event loop. Blocks until request_stop() completes the drain.
  /// start() must have been called.
  void run();

  /// Begins graceful drain. Async-signal-safe; callable from any thread
  /// or from a signal handler, before or during run(). Idempotent.
  void request_stop();

  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] ServerCounters counters() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rlv::net

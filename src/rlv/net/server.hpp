#pragma once

// rlv::net::Server — the resident serving layer over rlv::Engine. One
// process owns one Engine (and thus one set of warm caches) and serves the
// newline-delimited JSON protocol of protocol.hpp to any number of
// concurrent TCP clients.
//
// Threading model: ONE event-loop thread (the caller of run()) owns every
// socket, buffer, and connection object and never executes a query; query
// work happens on the Engine's worker pool via Engine::submit. Completed
// verdicts are rendered on the worker thread (rendering re-parses the
// system text — keep that off the loop) and handed back through a
// mutex-protected completion queue plus a self-pipe wakeup. Because the
// engine runs queries inline when built with jobs <= 1, a Server requires
// an Engine with jobs >= 2.
//
// Backpressure: in-flight queries are bounded per connection and globally;
// a request over either bound is answered immediately with the structured
// "overloaded" rejection (scope "connection" / "server") instead of
// queueing without bound or stalling the socket. A connection whose write
// buffer exceeds max_write_buffer stops being read until the client
// drains it (TCP backpressure).
//
// Shutdown: request_stop() is async-signal-safe (an atomic store plus a
// write to the self-pipe) so a SIGINT/SIGTERM handler can call it
// directly. The loop then stops accepting and reading, lets in-flight
// queries finish under their Budget deadlines (apply_limits gives every
// served query one), flushes buffered responses, and returns; a drain
// deadline bounds the wait against budget-less stragglers.

#include <cstdint>
#include <memory>
#include <string>

#include "rlv/engine/engine.hpp"
#include "rlv/net/protocol.hpp"

namespace rlv::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; start() returns the bound port
  int backlog = 64;
  std::size_t max_connections = 256;
  std::size_t max_inflight_per_connection = 8;
  std::size_t max_inflight = 64;  // across all connections
  /// A request line (and thus an embedded system text) larger than this is
  /// rejected and the connection closed — the parser never sees it.
  std::size_t max_request_bytes = 1 << 20;
  /// Above this many buffered unsent response bytes the connection is not
  /// read until the client catches up.
  std::size_t max_write_buffer = 8 << 20;
  std::uint64_t idle_timeout_ms = 120000;  // 0 = never close idle clients
  std::uint64_t drain_timeout_ms = 5000;   // bound on the graceful drain
  /// Monitor sessions untouched for this long are reclaimed by the loop
  /// (idle-session GC, independent of connection idle close); 0 = never.
  /// A later step on a reclaimed session reports "unknown_session".
  std::uint64_t session_idle_timeout_ms = 0;
  ServerLimits limits;  // caps/defaults for per-request overrides
};

/// Monotonic counters, snapshot via Server::counters() (any thread) and
/// serialized into the "server" object of a stats response.
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t requests = 0;  // parsed protocol lines, any op
  std::uint64_t queries = 0;   // submitted to the engine
  std::uint64_t overload_rejects = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t idle_closed = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t inflight = 0;  // currently submitted, response not yet queued
};

/// RAII listening socket (IPv4, non-blocking). Split out of Server so tests
/// and future front ends (e.g. a unix-socket flavor) can reuse it.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds address:port (dotted IPv4; port 0 picks an ephemeral port) with
  /// SO_REUSEADDR and starts listening. Returns the bound port. Throws
  /// std::runtime_error on failure.
  std::uint16_t listen(const std::string& address, std::uint16_t port,
                       int backlog);

  /// Accepts one pending client as a non-blocking fd; -1 when none pending.
  /// Throws on unexpected accept failures.
  [[nodiscard]] int accept_client();

  void close();
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

class Server {
 public:
  /// The engine must outlive the server AND be built with jobs >= 2 (see
  /// the threading model above); the constructor enforces the latter.
  Server(Engine& engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Installs SIGPIPE protection, binds, and listens. Returns the bound
  /// port (== options.port unless that was 0). Throws on bind failure.
  std::uint16_t start();

  /// The event loop. Blocks until request_stop() completes the drain.
  /// start() must have been called.
  void run();

  /// Begins graceful drain. Async-signal-safe; callable from any thread
  /// or from a signal handler, before or during run(). Idempotent.
  void request_stop();

  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] ServerCounters counters() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rlv::net

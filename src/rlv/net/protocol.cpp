#include "rlv/net/protocol.hpp"

#include <algorithm>

#include "rlv/io/format.hpp"
#include "rlv/net/json.hpp"

namespace rlv::net {

namespace {

/// The fields a request may carry; anything else is rejected so typos
/// ("formual") fail loudly instead of silently checking the wrong thing.
constexpr std::string_view kKnownFields[] = {
    "op",      "id",         "system",     "formula", "property_automaton",
    "check",   "algorithm",  "threads",    "timeout_ms", "max_states",
    "certify", "label",      "session",    "actions",
};

/// Shared between query and monitor_open: the property is the formula XOR
/// an explicit Büchi automaton, never both, never neither.
void parse_property_fields(const JsonValue& root, std::string* formula,
                           std::string* property_automaton) {
  const JsonValue* f = root.find("formula");
  const JsonValue* p = root.find("property_automaton");
  if (f && p) {
    throw std::runtime_error(
        "'formula' and 'property_automaton' are mutually exclusive");
  }
  if (!f && !p) {
    throw std::runtime_error("missing 'formula' or 'property_automaton'");
  }
  if (f) *formula = f->as_string();
  if (p) *property_automaton = p->as_string();
}

}  // namespace

Request parse_request(std::string_view line) {
  JsonValue root;
  try {
    root = parse_json(line);
  } catch (const JsonError& e) {
    throw std::runtime_error(std::string("malformed JSON: ") + e.what());
  }
  if (!root.is_object()) throw std::runtime_error("request must be an object");
  for (const auto& [key, unused] : root.object) {
    if (std::find(std::begin(kKnownFields), std::end(kKnownFields), key) ==
        std::end(kKnownFields)) {
      throw std::runtime_error("unknown field '" + key + "'");
    }
  }

  Request request;
  if (const JsonValue* id = root.find("id")) request.id = id->as_uint();
  if (const JsonValue* label = root.find("label")) {
    request.label = label->as_string();
  }

  std::string_view op = "query";
  if (const JsonValue* op_field = root.find("op")) {
    op = op_field->as_string();
  }
  if (op == "stats") {
    request.op = RequestOp::kStats;
    return request;
  }
  if (op == "ping") {
    request.op = RequestOp::kPing;
    return request;
  }
  if (op == "monitor_open") {
    request.op = RequestOp::kMonitorOpen;
    const JsonValue* system = root.find("system");
    if (!system) throw std::runtime_error("missing field 'system'");
    request.monitor.system = system->as_string();
    parse_property_fields(root, &request.monitor.formula,
                          &request.monitor.property_automaton);
    if (const JsonValue* certify = root.find("certify")) {
      request.monitor.certify = certify->as_bool();
    }
    return request;
  }
  if (op == "monitor_step") {
    request.op = RequestOp::kMonitorStep;
    const JsonValue* session = root.find("session");
    if (!session) throw std::runtime_error("missing field 'session'");
    request.session = session->as_uint();
    const JsonValue* actions = root.find("actions");
    if (!actions) throw std::runtime_error("missing field 'actions'");
    if (actions->kind != JsonValue::Kind::kArray) {
      throw std::runtime_error("'actions' must be an array of strings");
    }
    request.actions.reserve(actions->array.size());
    for (const JsonValue& a : actions->array) {
      request.actions.push_back(a.as_string());
    }
    return request;
  }
  if (op == "monitor_close") {
    request.op = RequestOp::kMonitorClose;
    const JsonValue* session = root.find("session");
    if (!session) throw std::runtime_error("missing field 'session'");
    request.session = session->as_uint();
    return request;
  }
  if (op != "query") {
    throw std::runtime_error("unknown op '" + std::string(op) + "'");
  }

  request.op = RequestOp::kQuery;
  const JsonValue* system = root.find("system");
  if (!system) throw std::runtime_error("missing field 'system'");
  request.query.system = system->as_string();

  parse_property_fields(root, &request.query.formula,
                        &request.query.property_automaton);

  if (const JsonValue* check = root.find("check")) {
    const auto kind = parse_check_kind(check->as_string());
    if (!kind) {
      throw std::runtime_error("unknown check kind '" + check->as_string() +
                               "'");
    }
    request.query.kind = *kind;
  }
  if (const JsonValue* algorithm = root.find("algorithm")) {
    const auto algo = parse_inclusion_algorithm(algorithm->as_string());
    if (!algo) {
      throw std::runtime_error("unknown inclusion algorithm '" +
                               algorithm->as_string() + "'");
    }
    request.query.algorithm = *algo;
  }
  if (const JsonValue* threads = root.find("threads")) {
    request.query.threads = static_cast<std::size_t>(threads->as_uint());
  }
  if (const JsonValue* timeout = root.find("timeout_ms")) {
    request.query.timeout_ms = timeout->as_uint();
  }
  if (const JsonValue* max_states = root.find("max_states")) {
    request.query.max_states = max_states->as_uint();
  }
  if (const JsonValue* certify = root.find("certify")) {
    request.query.certify = certify->as_bool();
  }
  return request;
}

void apply_limits(Query& query, const ServerLimits& limits) {
  if (limits.max_timeout_ms > 0) {
    query.timeout_ms = query.timeout_ms > 0
                           ? std::min(query.timeout_ms, limits.max_timeout_ms)
                           : limits.max_timeout_ms;
  }
  if (limits.max_max_states > 0) {
    query.max_states = query.max_states > 0
                           ? std::min(query.max_states, limits.max_max_states)
                           : limits.max_max_states;
  }
  query.threads = std::min(query.threads, limits.max_threads);
}

std::string render_server_counters(const ServerCounters& c, bool draining) {
  std::string out = "{";
  const auto field = [&out](std::string_view name, std::uint64_t value) {
    if (out.size() > 1) out += ",";
    out += "\"";
    out += name;
    out += "\":" + std::to_string(value);
  };
  field("connections_accepted", c.connections_accepted);
  field("connections_open", c.connections_open);
  field("requests", c.requests);
  field("queries", c.queries);
  field("overload_rejects", c.overload_rejects);
  field("protocol_errors", c.protocol_errors);
  field("idle_closed", c.idle_closed);
  field("bytes_read", c.bytes_read);
  field("bytes_written", c.bytes_written);
  field("inflight", c.inflight);
  field("accept_soft_errors", c.accept_soft_errors);
  field("reactors", c.reactors);
  out += ",\"draining\":";
  out += draining ? "true" : "false";
  out += "}";
  return out;
}

std::string render_error(std::optional<std::uint64_t> id,
                         std::string_view code, std::string_view detail) {
  std::string out = "{";
  if (id) out += "\"id\":" + std::to_string(*id) + ",";
  out += "\"ok\":false,\"error\":\"" + json_escape(code) + "\"";
  if (!detail.empty()) out += ",\"detail\":\"" + json_escape(detail) + "\"";
  out += "}";
  return out;
}

std::string render_overloaded(std::uint64_t id, std::string_view scope) {
  return "{\"id\":" + std::to_string(id) +
         ",\"ok\":false,\"error\":\"overloaded\",\"overloaded\":true,"
         "\"scope\":\"" +
         json_escape(scope) + "\"}";
}

std::string render_monitor_open(std::uint64_t id, const MonitorOpenResult& r) {
  if (r.table_full) return render_overloaded(id, "sessions");
  if (r.resource_exhausted) {
    return "{\"id\":" + std::to_string(id) +
           ",\"ok\":false,\"resource_exhausted\":true,\"stage\":\"" +
           json_escape(r.exhausted_stage) + "\"}";
  }
  if (!r.error.empty()) return render_error(id, r.error, {});
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"ok\":true,\"session\":" + std::to_string(r.session) +
                    ",\"verdict\":\"" +
                    std::string(monitor::verdict_name(r.verdict)) +
                    "\",\"certified\":" + (r.certified ? "true" : "false");
  out += ",\"ms\":" + std::to_string(r.millis) + "}";
  return out;
}

std::string render_monitor_step(std::uint64_t id, const MonitorStepResult& r) {
  if (!r.error.empty()) return render_error(id, r.error, r.error_detail);
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"ok\":true,\"verdict\":\"" +
                    std::string(monitor::verdict_name(r.verdict)) +
                    "\",\"events\":" + std::to_string(r.events);
  if (r.transition_index) {
    if (r.transition_doomed) {
      out += ",\"doomed_index\":" + std::to_string(*r.transition_index);
      out += ",\"witness\":[";
      for (std::size_t i = 0; i < r.witness.size(); ++i) {
        if (i > 0) out += ',';
        out += '"' + json_escape(r.witness[i]) + '"';
      }
      out += "],\"witness_certified\":";
      out += r.witness_certified ? "true" : "false";
    } else {
      out += ",\"left_index\":" + std::to_string(*r.transition_index);
    }
  }
  out += "}";
  return out;
}

std::string render_monitor_close(std::uint64_t id,
                                 const MonitorCloseResult& r) {
  if (!r.error.empty()) return render_error(id, r.error, {});
  return "{\"id\":" + std::to_string(id) + ",\"ok\":true,\"closed\":" +
         (r.closed ? "true" : "false") +
         ",\"events\":" + std::to_string(r.events) + "}";
}

}  // namespace rlv::net

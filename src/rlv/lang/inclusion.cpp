#include "rlv/lang/inclusion.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rlv/util/hash.hpp"

namespace rlv {

namespace {

/// Reverse-linked witness path through the explored configuration graph.
/// Siblings share their parent's tail, so total witness memory is one small
/// node per explored configuration — the previous representation copied the
/// full word into every queued configuration, which is O(frontier × depth)
/// and dominated peak memory on deep-counterexample instances.
struct PathNode {
  Symbol symbol;
  std::shared_ptr<const PathNode> parent;
};

using PathPtr = std::shared_ptr<const PathNode>;

PathPtr extend(const PathPtr& parent, Symbol symbol) {
  return std::make_shared<const PathNode>(PathNode{symbol, parent});
}

Word backtrace(const PathPtr& tip) {
  Word w;
  for (const PathNode* n = tip.get(); n != nullptr; n = n->parent.get()) {
    w.push_back(n->symbol);
  }
  std::reverse(w.begin(), w.end());
  return w;
}

/// Explored configuration: a left-hand NFA state paired with the subset of
/// right-hand states compatible with the word read so far.
struct Config {
  State left;
  DynBitset right;
  PathPtr path;  // witness word leading here, shared with siblings
};

bool bitset_accepts(const Nfa& b, const DynBitset& set) {
  bool acc = false;
  set.for_each([&](std::size_t s) { acc = acc || b.is_accepting(s); });
  return acc;
}

DynBitset initial_set(const Nfa& b) {
  DynBitset init(b.num_states());
  for (const State s : b.initial()) init.set(s);
  return init;
}

InclusionResult subset_inclusion(const Nfa& a, const Nfa& b, Budget* budget) {
  const DynBitset b_init = initial_set(b);

  std::unordered_map<State, std::vector<DynBitset>> seen;
  std::size_t seen_total = 0;

  auto already_seen = [&](State left, const DynBitset& right) {
    auto it = seen.find(left);
    if (it == seen.end()) return false;
    return std::find(it->second.begin(), it->second.end(), right) !=
           it->second.end();
  };

  auto record = [&](State left, const DynBitset& right) {
    seen[left].push_back(right);
    budget_charge(budget);
    budget_note_frontier(budget, ++seen_total);
  };

  std::deque<Config> queue;
  for (const State s : a.initial()) {
    if (already_seen(s, b_init)) continue;
    record(s, b_init);
    queue.push_back({s, b_init, nullptr});
  }
  while (!queue.empty()) {
    Config cfg = std::move(queue.front());
    queue.pop_front();
    if (a.is_accepting(cfg.left) && !bitset_accepts(b, cfg.right)) {
      return {false, backtrace(cfg.path)};
    }
    for (const auto& t : a.out(cfg.left)) {
      DynBitset next_right = b.step(cfg.right, t.symbol);
      if (already_seen(t.target, next_right)) continue;
      record(t.target, next_right);
      queue.push_back(
          {t.target, std::move(next_right), extend(cfg.path, t.symbol)});
    }
  }
  return {true, std::nullopt};
}

/// Antichain variant: a pair (p, S) is subsumed by (p, S') with S' ⊆ S,
/// because any counterexample reachable from (p, S) is also reachable from
/// (p, S') (a smaller right-hand set rejects more words).
InclusionResult antichain_inclusion(const Nfa& a, const Nfa& b,
                                    Budget* budget) {
  const DynBitset b_init = initial_set(b);

  // Antichain of ⊆-minimal right-hand sets, per left-hand state.
  std::unordered_map<State, std::vector<DynBitset>> antichain;
  std::size_t antichain_total = 0;

#ifndef NDEBUG
  // Frontier-accounting audit: the running counter must equal the true
  // total antichain size after every mutation (no underflow or drift when
  // one insertion subsumes several existing elements).
  auto debug_recount = [&] {
    std::size_t total = 0;
    for (const auto& [left, chain] : antichain) total += chain.size();
    return total;
  };
#endif

  // Returns false when (left, right) is subsumed by an existing element;
  // otherwise inserts it and removes elements it subsumes.
  auto insert = [&](State left, const DynBitset& right) {
    auto& chain = antichain[left];
    for (const auto& existing : chain) {
      if (existing.is_subset_of(right)) return false;
    }
    const std::size_t before = chain.size();
    std::erase_if(chain,
                  [&](const DynBitset& e) { return right.is_subset_of(e); });
    const std::size_t erased = before - chain.size();
    assert(erased <= antichain_total);
    antichain_total -= erased;
    chain.push_back(right);
    budget_charge(budget);
    budget_note_frontier(budget, ++antichain_total);
    assert(antichain_total == debug_recount());
    return true;
  };

  std::deque<Config> queue;
  for (const State s : a.initial()) {
    if (insert(s, b_init)) queue.push_back({s, b_init, nullptr});
  }
  while (!queue.empty()) {
    Config cfg = std::move(queue.front());
    queue.pop_front();
    if (a.is_accepting(cfg.left) && !bitset_accepts(b, cfg.right)) {
      return {false, backtrace(cfg.path)};
    }
    for (const auto& t : a.out(cfg.left)) {
      DynBitset next_right = b.step(cfg.right, t.symbol);
      if (!insert(t.target, next_right)) continue;
      queue.push_back(
          {t.target, std::move(next_right), extend(cfg.path, t.symbol)});
    }
  }
  return {true, std::nullopt};
}

// ---------------------------------------------------------------------------
// Parallel search.
//
// Sharded work-stealing frontier exploration. Every worker owns a deque of
// configurations; it pops from the front of its own deque and steals from
// the back of a sibling's when drained. The visited/antichain store is a
// dense per-left-state vector of right-hand sets guarded by striped
// reader-writer locks: a subsumption probe first scans under the shared
// side (the common case — most successors are subsumed), and only an
// insertion re-checks and mutates under the exclusive side.
//
// The boolean verdict is order-independent: the search is exhaustive up to
// subsumption, and subsumption never removes the last witness of a
// counterexample (the subsuming element reaches every counterexample the
// subsumed one did). Counterexample *words* depend on the interleaving and
// are validated, not compared, by the differential tests.

constexpr std::size_t kLockStripes = 64;

class ParallelInclusion {
 public:
  ParallelInclusion(const Nfa& a, const Nfa& b, bool use_antichain,
                    std::size_t threads, Budget* budget)
      : a_(a),
        b_(b),
        use_antichain_(use_antichain),
        budget_(budget),
        store_(a.num_states()),
        queues_(threads) {}

  InclusionResult run() {
    const DynBitset b_init = initial_set(b_);
    std::size_t next_queue = 0;
    for (const State s : a_.initial()) {
      if (!insert(s, b_init)) continue;
      pending_.fetch_add(1, std::memory_order_relaxed);
      push(next_queue++ % queues_.size(), Config{s, b_init, nullptr});
    }

    std::vector<std::thread> workers;
    workers.reserve(queues_.size() - 1);
    for (std::size_t id = 1; id < queues_.size(); ++id) {
      workers.emplace_back([this, id] { worker(id); });
    }
    worker(0);
    for (std::thread& t : workers) t.join();

    if (failure_) std::rethrow_exception(failure_);
    if (counterexample_) return {false, std::move(counterexample_)};
    return {true, std::nullopt};
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Config> configs;
  };

  void push(std::size_t id, Config cfg) {
    std::lock_guard lock(queues_[id].mutex);
    queues_[id].configs.push_back(std::move(cfg));
  }

  std::optional<Config> pop(std::size_t id) {
    {
      std::lock_guard lock(queues_[id].mutex);
      auto& q = queues_[id].configs;
      if (!q.empty()) {
        Config cfg = std::move(q.front());
        q.pop_front();
        return cfg;
      }
    }
    // Steal from the back of a sibling, starting after our own slot so
    // thieves spread out instead of hammering worker 0.
    for (std::size_t i = 1; i < queues_.size(); ++i) {
      WorkerQueue& victim = queues_[(id + i) % queues_.size()];
      std::lock_guard lock(victim.mutex);
      if (!victim.configs.empty()) {
        Config cfg = std::move(victim.configs.back());
        victim.configs.pop_back();
        return cfg;
      }
    }
    return std::nullopt;
  }

  /// Subsumption-or-visited filter and insertion; see class comment for the
  /// locking protocol. Returns true when the configuration is new and must
  /// be explored.
  bool insert(State left, const DynBitset& right) {
    std::shared_mutex& lock = locks_[left % kLockStripes];
    {
      std::shared_lock read(lock);
      if (covered(store_[left], right)) return false;
    }
    std::unique_lock write(lock);
    std::vector<DynBitset>& chain = store_[left];
    if (covered(chain, right)) return false;  // raced with another insert
    if (use_antichain_) {
      const std::size_t before = chain.size();
      std::erase_if(chain,
                    [&](const DynBitset& e) { return right.is_subset_of(e); });
      const std::size_t erased = before - chain.size();
      if (erased > 0) total_.fetch_sub(erased, std::memory_order_relaxed);
    }
    chain.push_back(right);
    budget_charge(budget_);  // may throw with `write` held; RAII unlocks
    budget_note_frontier(budget_,
                         total_.fetch_add(1, std::memory_order_relaxed) + 1);
    return true;
  }

  bool covered(const std::vector<DynBitset>& chain,
               const DynBitset& right) const {
    if (use_antichain_) {
      for (const DynBitset& e : chain) {
        if (e.is_subset_of(right)) return true;
      }
      return false;
    }
    return std::find(chain.begin(), chain.end(), right) != chain.end();
  }

  void process(std::size_t id, Config cfg) {
    if (a_.is_accepting(cfg.left) && !bitset_accepts(b_, cfg.right)) {
      std::lock_guard lock(result_mutex_);
      if (!counterexample_) counterexample_ = backtrace(cfg.path);
      done_.store(true, std::memory_order_release);
      return;
    }
    for (const auto& t : a_.out(cfg.left)) {
      if (done_.load(std::memory_order_relaxed)) return;
      DynBitset next_right = b_.step(cfg.right, t.symbol);
      if (!insert(t.target, next_right)) continue;
      pending_.fetch_add(1, std::memory_order_relaxed);
      push(id, Config{t.target, std::move(next_right),
                      extend(cfg.path, t.symbol)});
    }
  }

  void worker(std::size_t id) {
    try {
      while (!done_.load(std::memory_order_acquire)) {
        std::optional<Config> cfg = pop(id);
        if (!cfg) {
          // `pending_` counts configurations queued or in flight; children
          // are pushed before the parent's decrement, so pending == 0 with
          // empty queues means the frontier is exhausted.
          if (pending_.load(std::memory_order_acquire) == 0) return;
          std::this_thread::yield();
          continue;
        }
        process(id, std::move(*cfg));
        pending_.fetch_sub(1, std::memory_order_release);
      }
    } catch (...) {
      {
        std::lock_guard lock(result_mutex_);
        if (!failure_) failure_ = std::current_exception();
      }
      done_.store(true, std::memory_order_release);
      pending_.fetch_sub(1, std::memory_order_release);
    }
  }

  const Nfa& a_;
  const Nfa& b_;
  const bool use_antichain_;
  Budget* budget_;

  std::vector<std::vector<DynBitset>> store_;  // per left state
  std::array<std::shared_mutex, kLockStripes> locks_;
  std::atomic<std::uint64_t> total_{0};

  std::vector<WorkerQueue> queues_;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> done_{false};

  std::mutex result_mutex_;
  std::optional<Word> counterexample_;
  std::exception_ptr failure_;
};

}  // namespace

InclusionResult check_inclusion(const Nfa& a, const Nfa& b,
                                InclusionAlgorithm algorithm, Budget* budget,
                                std::size_t threads) {
  require_same_alphabet(a.alphabet(), b.alphabet(), "check_inclusion");
  StageScope scope(budget, Stage::kInclusion);
  if (threads > 1) {
    ParallelInclusion search(
        a, b, algorithm == InclusionAlgorithm::kAntichain, threads, budget);
    InclusionResult result = search.run();
    if (!result.included) {
      // The parallel witness is assembled from racy parent-pointer chains
      // ("revalidate, don't compare"): confirm it is a genuine member of
      // L(a) \ L(b) by direct subset simulation before handing it out. A
      // failed revalidation falls back to the sequential search, whose BFS
      // witness is canonical — the boolean verdict is unaffected either way.
      const bool witness_ok = result.counterexample.has_value() &&
                              a.accepts(*result.counterexample) &&
                              !b.accepts(*result.counterexample);
      if (!witness_ok) {
        return algorithm == InclusionAlgorithm::kSubset
                   ? subset_inclusion(a, b, budget)
                   : antichain_inclusion(a, b, budget);
      }
    }
    return result;
  }
  switch (algorithm) {
    case InclusionAlgorithm::kSubset:
      return subset_inclusion(a, b, budget);
    case InclusionAlgorithm::kAntichain:
      return antichain_inclusion(a, b, budget);
  }
  return {true, std::nullopt};  // unreachable
}

bool is_included(const Nfa& a, const Nfa& b, InclusionAlgorithm algorithm,
                 Budget* budget, std::size_t threads) {
  return check_inclusion(a, b, algorithm, budget, threads).included;
}

bool nfa_equivalent(const Nfa& a, const Nfa& b, InclusionAlgorithm algorithm,
                    Budget* budget, std::size_t threads) {
  return is_included(a, b, algorithm, budget, threads) &&
         is_included(b, a, algorithm, budget, threads);
}

}  // namespace rlv

#include "rlv/lang/inclusion.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "rlv/util/arena.hpp"
#include "rlv/util/hash.hpp"
#include "rlv/util/intern.hpp"

namespace rlv {

namespace {

/// Reverse-linked witness path through the explored configuration graph.
/// Siblings share their parent's tail, so total witness memory is one small
/// node per explored configuration. Nodes live in the search's bump arena
/// and carry raw parent pointers: teardown is a wholesale arena free, so a
/// counterexample hundreds of thousands of symbols deep cannot overflow the
/// stack the way a recursively-destructed shared_ptr chain did.
struct PathNode {
  Symbol symbol;
  const PathNode* parent;
};
static_assert(std::is_trivially_destructible_v<PathNode>);

const PathNode* extend(Arena& arena, const PathNode* parent, Symbol symbol) {
  return arena.create<PathNode>(symbol, parent);
}

Word backtrace(const PathNode* tip) {
  Word w;
  for (const PathNode* n = tip; n != nullptr; n = n->parent) {
    w.push_back(n->symbol);
  }
  std::reverse(w.begin(), w.end());
  return w;
}

DynBitset initial_set(const Nfa& b) {
  DynBitset init(b.num_states());
  for (const State s : b.initial()) init.set(s);
  return init;
}

/// Packs a (left NFA state, interned right-set id) configuration into the
/// 64-bit visited-set key.
std::uint64_t config_key(State left, std::uint32_t right_id) {
  return (static_cast<std::uint64_t>(left) << 32) | right_id;
}

/// Explored configuration of the sequential kernels: a left-hand NFA state
/// paired with the interned id of the right-hand subset. 16 bytes, no owned
/// heap payload — the previous representation carried a DynBitset (own
/// allocation) and a shared_ptr per queued configuration.
struct SeqConfig {
  State left;
  std::uint32_t right;
  const PathNode* path;
};

/// Shared allocation/stepping state of the sequential kernels. Right-hand
/// subsets live interned in one contiguous word array; the two scratch
/// buffers (`cur`, `nxt`) are the only per-step storage, reused for the
/// whole search. Everything is freed wholesale when the search returns —
/// including on a budget throw.
class SeqContext {
 public:
  SeqContext(const Nfa& b, Budget* budget)
      : b_(b), budget_(budget), interner_(b.num_states()) {
    const DynBitset acc = b.accepting_set();
    acc_words_.assign(acc.words_data(), acc.words_data() + acc.num_words());
    cur_.assign(interner_.words_per(), 0);
    nxt_.assign(interner_.words_per(), 0);
  }

  Arena& arena() { return arena_; }
  BitsetInterner& interner() { return interner_; }

  /// Interns the right-hand initial subset and returns its id.
  std::uint32_t intern_initial() {
    std::fill(nxt_.begin(), nxt_.end(), 0);
    for (const State s : b_.initial()) {
      nxt_[s >> 6] |= std::uint64_t{1} << (s & 63);
    }
    return interner_.intern(nxt_.data()).first;
  }

  /// Copies the interned set `id` into the step source buffer. Interned
  /// word pointers are invalidated by the next intern, so every popped
  /// configuration is staged here before its successors are computed.
  void load(std::uint32_t id) {
    const std::uint64_t* w = interner_.words(id);
    std::copy(w, w + interner_.words_per(), cur_.begin());
  }

  [[nodiscard]] bool cur_accepts() const {
    for (std::size_t i = 0; i < acc_words_.size(); ++i) {
      if ((cur_[i] & acc_words_[i]) != 0) return true;
    }
    return false;
  }

  /// Steps the staged subset by `symbol` and interns the successor set.
  std::uint32_t step_and_intern(Symbol symbol) {
    b_.step_words(cur_.data(), symbol, nxt_.data());
    return interner_.intern(nxt_.data()).first;
  }

  [[nodiscard]] const std::uint64_t* next_words() const { return nxt_.data(); }

  /// Budget charge for one newly recorded configuration, plus the memory
  /// observation (arena chunks + intern storage + the caller's own tables).
  void charge(std::size_t extra_bytes) {
    budget_charge(budget_);
    budget_note_memory(budget_, arena_.bytes_reserved() + interner_.bytes() +
                                    extra_bytes);
  }

 private:
  const Nfa& b_;
  Budget* budget_;
  Arena arena_;
  BitsetInterner interner_;
  std::vector<std::uint64_t> acc_words_;
  std::vector<std::uint64_t> cur_;
  std::vector<std::uint64_t> nxt_;
};

InclusionResult subset_inclusion(const Nfa& a, const Nfa& b, Budget* budget) {
  a.finalize();
  b.finalize();
  SeqContext ctx(b, budget);
  U64KeySet seen;
  std::uint64_t seen_total = 0;

  auto record = [&](State left, std::uint32_t right_id) {
    if (!seen.insert(config_key(left, right_id))) return false;
    ctx.charge(seen.bytes());
    budget_note_frontier(budget, ++seen_total);
    return true;
  };

  std::deque<SeqConfig> queue;
  const std::uint32_t init_id = ctx.intern_initial();
  for (const State s : a.initial()) {
    if (record(s, init_id)) queue.push_back({s, init_id, nullptr});
  }
  while (!queue.empty()) {
    const SeqConfig cfg = queue.front();
    queue.pop_front();
    ctx.load(cfg.right);
    if (a.is_accepting(cfg.left) && !ctx.cur_accepts()) {
      return {false, backtrace(cfg.path)};
    }
    // Out-edges arrive grouped by symbol (CSR), so the subset step — the
    // expensive part — runs once per distinct symbol, not once per edge.
    const std::span<const Transition> edges = a.out(cfg.left);
    for (std::size_t i = 0; i < edges.size();) {
      const Symbol sym = edges[i].symbol;
      const std::uint32_t next_id = ctx.step_and_intern(sym);
      const PathNode* path = nullptr;
      for (; i < edges.size() && edges[i].symbol == sym; ++i) {
        if (!record(edges[i].target, next_id)) continue;
        if (path == nullptr) path = extend(ctx.arena(), cfg.path, sym);
        queue.push_back({edges[i].target, next_id, path});
      }
    }
  }
  return {true, std::nullopt};
}

/// Antichain variant: a pair (p, S) is subsumed by (p, S') with S' ⊆ S,
/// because any counterexample reachable from (p, S) is also reachable from
/// (p, S') (a smaller right-hand set rejects more words).
InclusionResult antichain_inclusion(const Nfa& a, const Nfa& b,
                                    Budget* budget) {
  a.finalize();
  b.finalize();
  SeqContext ctx(b, budget);
  BitsetInterner& interner = ctx.interner();
  const std::size_t words_per = interner.words_per();

  // Antichain of ⊆-minimal right-hand sets, per left-hand state: a dense
  // vector of interned ids per left state. Subsumption probes compare the
  // candidate's scratch words against interned blocks; the candidate is
  // interned only when it actually enters the antichain.
  std::vector<std::vector<std::uint32_t>> antichain(a.num_states());
  std::size_t antichain_total = 0;
  std::size_t chain_bytes = 0;

#ifndef NDEBUG
  // Frontier-accounting audit: the running counter must equal the true
  // total antichain size after every mutation (no underflow or drift when
  // one insertion subsumes several existing elements).
  auto debug_recount = [&] {
    std::size_t total = 0;
    for (const auto& chain : antichain) total += chain.size();
    return total;
  };
#endif

  // Returns kNoId when the candidate in ctx's next buffer is subsumed by an
  // existing element; otherwise inserts it (dropping elements it subsumes)
  // and returns its interned id.
  auto insert = [&](State left) -> std::uint32_t {
    std::vector<std::uint32_t>& chain = antichain[left];
    const std::uint64_t* w = ctx.next_words();
    auto subset_of_w = [&](std::uint32_t e) {
      const std::uint64_t* ew = interner.words(e);
      for (std::size_t i = 0; i < words_per; ++i) {
        if ((ew[i] & ~w[i]) != 0) return false;
      }
      return true;
    };
    auto superset_of_w = [&](std::uint32_t e) {
      const std::uint64_t* ew = interner.words(e);
      for (std::size_t i = 0; i < words_per; ++i) {
        if ((w[i] & ~ew[i]) != 0) return false;
      }
      return true;
    };
    for (const std::uint32_t e : chain) {
      if (subset_of_w(e)) return IdTable::kNoId;
    }
    const std::size_t before = chain.size();
    std::erase_if(chain, superset_of_w);
    const std::size_t erased = before - chain.size();
    assert(erased <= antichain_total);
    antichain_total -= erased;
    const std::uint32_t id = interner.intern(w).first;
    chain.push_back(id);
    chain_bytes += sizeof(std::uint32_t);
    ctx.charge(chain_bytes);
    budget_note_frontier(budget, ++antichain_total);
    assert(antichain_total == debug_recount());
    return id;
  };

  // intern_initial leaves the initial subset staged in the probe buffer, and
  // insert() only reads it, so the initial states all probe the same words.
  std::deque<SeqConfig> queue;
  const std::uint32_t init_id = ctx.intern_initial();
  for (const State s : a.initial()) {
    if (insert(s) != IdTable::kNoId) queue.push_back({s, init_id, nullptr});
  }
  while (!queue.empty()) {
    const SeqConfig cfg = queue.front();
    queue.pop_front();
    ctx.load(cfg.right);
    if (a.is_accepting(cfg.left) && !ctx.cur_accepts()) {
      return {false, backtrace(cfg.path)};
    }
    // Out-edges arrive grouped by symbol (CSR): one subset step per distinct
    // symbol, then one antichain probe per target against the staged words.
    const std::span<const Transition> edges = a.out(cfg.left);
    for (std::size_t i = 0; i < edges.size();) {
      const Symbol sym = edges[i].symbol;
      const std::uint32_t next_id = ctx.step_and_intern(sym);
      const PathNode* path = nullptr;
      for (; i < edges.size() && edges[i].symbol == sym; ++i) {
        if (insert(edges[i].target) == IdTable::kNoId) continue;
        if (path == nullptr) path = extend(ctx.arena(), cfg.path, sym);
        queue.push_back({edges[i].target, next_id, path});
      }
    }
  }
  return {true, std::nullopt};
}

// ---------------------------------------------------------------------------
// Parallel search.
//
// Sharded work-stealing frontier exploration. Every worker owns a deque of
// configurations; it pops from the front of its own deque and steals from
// the back of a sibling's when drained. The visited/antichain store is a
// dense per-left-state vector of right-hand sets guarded by striped
// reader-writer locks: a subsumption probe first scans under the shared
// side (the common case — most successors are subsumed), and only an
// insertion re-checks and mutates under the exclusive side.
//
// Witness path nodes live in per-worker arenas (index = creating worker), so
// allocation is uncontended; parent pointers may cross arenas, which is safe
// because every arena outlives the search and nodes are immutable once
// published through a queue mutex.
//
// The boolean verdict is order-independent: the search is exhaustive up to
// subsumption, and subsumption never removes the last witness of a
// counterexample (the subsuming element reaches every counterexample the
// subsumed one did). Counterexample *words* depend on the interleaving and
// are validated, not compared, by the differential tests.

constexpr std::size_t kLockStripes = 64;

class ParallelInclusion {
 public:
  ParallelInclusion(const Nfa& a, const Nfa& b, bool use_antichain,
                    std::size_t threads, Budget* budget)
      : a_(a),
        b_(b),
        b_acc_(b.accepting_set()),
        use_antichain_(use_antichain),
        budget_(budget),
        store_(a.num_states()),
        queues_(threads),
        arenas_(threads) {}

  InclusionResult run() {
    const DynBitset b_init = initial_set(b_);
    std::size_t next_queue = 0;
    for (const State s : a_.initial()) {
      if (!insert(s, b_init)) continue;
      pending_.fetch_add(1, std::memory_order_relaxed);
      push(next_queue++ % queues_.size(), Config{s, b_init, nullptr});
    }

    std::vector<std::thread> workers;
    workers.reserve(queues_.size() - 1);
    for (std::size_t id = 1; id < queues_.size(); ++id) {
      workers.emplace_back([this, id] { worker(id); });
    }
    worker(0);
    for (std::thread& t : workers) t.join();

    std::size_t arena_bytes = 0;
    for (const Arena& arena : arenas_) arena_bytes += arena.bytes_reserved();
    budget_note_memory(budget_, arena_bytes);

    if (failure_) std::rethrow_exception(failure_);
    if (counterexample_) return {false, std::move(counterexample_)};
    return {true, std::nullopt};
  }

 private:
  struct Config {
    State left;
    DynBitset right;
    const PathNode* path;
  };

  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Config> configs;
  };

  void push(std::size_t id, Config cfg) {
    std::lock_guard lock(queues_[id].mutex);
    queues_[id].configs.push_back(std::move(cfg));
  }

  std::optional<Config> pop(std::size_t id) {
    {
      std::lock_guard lock(queues_[id].mutex);
      auto& q = queues_[id].configs;
      if (!q.empty()) {
        Config cfg = std::move(q.front());
        q.pop_front();
        return cfg;
      }
    }
    // Steal from the back of a sibling, starting after our own slot so
    // thieves spread out instead of hammering worker 0.
    for (std::size_t i = 1; i < queues_.size(); ++i) {
      WorkerQueue& victim = queues_[(id + i) % queues_.size()];
      std::lock_guard lock(victim.mutex);
      if (!victim.configs.empty()) {
        Config cfg = std::move(victim.configs.back());
        victim.configs.pop_back();
        return cfg;
      }
    }
    return std::nullopt;
  }

  /// Subsumption-or-visited filter and insertion; see class comment for the
  /// locking protocol. Returns true when the configuration is new and must
  /// be explored.
  bool insert(State left, const DynBitset& right) {
    std::shared_mutex& lock = locks_[left % kLockStripes];
    {
      std::shared_lock read(lock);
      if (covered(store_[left], right)) return false;
    }
    std::unique_lock write(lock);
    std::vector<DynBitset>& chain = store_[left];
    if (covered(chain, right)) return false;  // raced with another insert
    if (use_antichain_) {
      const std::size_t before = chain.size();
      std::erase_if(chain,
                    [&](const DynBitset& e) { return right.is_subset_of(e); });
      const std::size_t erased = before - chain.size();
      if (erased > 0) total_.fetch_sub(erased, std::memory_order_relaxed);
    }
    chain.push_back(right);
    budget_charge(budget_);  // may throw with `write` held; RAII unlocks
    budget_note_frontier(budget_,
                         total_.fetch_add(1, std::memory_order_relaxed) + 1);
    return true;
  }

  bool covered(const std::vector<DynBitset>& chain,
               const DynBitset& right) const {
    if (use_antichain_) {
      for (const DynBitset& e : chain) {
        if (e.is_subset_of(right)) return true;
      }
      return false;
    }
    return std::find(chain.begin(), chain.end(), right) != chain.end();
  }

  void process(std::size_t id, Config cfg) {
    if (a_.is_accepting(cfg.left) && !cfg.right.intersects(b_acc_)) {
      std::lock_guard lock(result_mutex_);
      if (!counterexample_) counterexample_ = backtrace(cfg.path);
      done_.store(true, std::memory_order_release);
      return;
    }
    for (const auto& t : a_.out(cfg.left)) {
      if (done_.load(std::memory_order_relaxed)) return;
      DynBitset next_right = b_.step(cfg.right, t.symbol);
      if (!insert(t.target, next_right)) continue;
      pending_.fetch_add(1, std::memory_order_relaxed);
      push(id, Config{t.target, std::move(next_right),
                      extend(arenas_[id], cfg.path, t.symbol)});
    }
  }

  void worker(std::size_t id) {
    try {
      while (!done_.load(std::memory_order_acquire)) {
        std::optional<Config> cfg = pop(id);
        if (!cfg) {
          // `pending_` counts configurations queued or in flight; children
          // are pushed before the parent's decrement, so pending == 0 with
          // empty queues means the frontier is exhausted.
          if (pending_.load(std::memory_order_acquire) == 0) return;
          std::this_thread::yield();
          continue;
        }
        process(id, std::move(*cfg));
        pending_.fetch_sub(1, std::memory_order_release);
      }
    } catch (...) {
      {
        std::lock_guard lock(result_mutex_);
        if (!failure_) failure_ = std::current_exception();
      }
      done_.store(true, std::memory_order_release);
      pending_.fetch_sub(1, std::memory_order_release);
    }
  }

  const Nfa& a_;
  const Nfa& b_;
  const DynBitset b_acc_;
  const bool use_antichain_;
  Budget* budget_;

  std::vector<std::vector<DynBitset>> store_;  // per left state
  std::array<std::shared_mutex, kLockStripes> locks_;
  std::atomic<std::uint64_t> total_{0};

  std::vector<WorkerQueue> queues_;
  std::vector<Arena> arenas_;  // one per worker: uncontended PathNode alloc
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> done_{false};

  std::mutex result_mutex_;
  std::optional<Word> counterexample_;
  std::exception_ptr failure_;
};

}  // namespace

InclusionResult check_inclusion(const Nfa& a, const Nfa& b,
                                InclusionAlgorithm algorithm, Budget* budget,
                                std::size_t threads) {
  require_same_alphabet(a.alphabet(), b.alphabet(), "check_inclusion");
  StageScope scope(budget, Stage::kInclusion);
  // Build both CSR transition indexes on this thread before any search (in
  // particular before worker fan-out), so the lazy build never runs inside
  // a hot loop or races a first concurrent read.
  a.finalize();
  b.finalize();
  if (threads > 1) {
    ParallelInclusion search(
        a, b, algorithm == InclusionAlgorithm::kAntichain, threads, budget);
    InclusionResult result = search.run();
    if (!result.included) {
      // The parallel witness is assembled from racy parent-pointer chains
      // ("revalidate, don't compare"): confirm it is a genuine member of
      // L(a) \ L(b) by direct subset simulation before handing it out. A
      // failed revalidation falls back to the sequential search, whose BFS
      // witness is canonical — the boolean verdict is unaffected either way.
      const bool witness_ok = result.counterexample.has_value() &&
                              a.accepts(*result.counterexample) &&
                              !b.accepts(*result.counterexample);
      if (!witness_ok) {
        return algorithm == InclusionAlgorithm::kSubset
                   ? subset_inclusion(a, b, budget)
                   : antichain_inclusion(a, b, budget);
      }
    }
    return result;
  }
  switch (algorithm) {
    case InclusionAlgorithm::kSubset:
      return subset_inclusion(a, b, budget);
    case InclusionAlgorithm::kAntichain:
      return antichain_inclusion(a, b, budget);
  }
  return {true, std::nullopt};  // unreachable
}

bool is_included(const Nfa& a, const Nfa& b, InclusionAlgorithm algorithm,
                 Budget* budget, std::size_t threads) {
  return check_inclusion(a, b, algorithm, budget, threads).included;
}

bool nfa_equivalent(const Nfa& a, const Nfa& b, InclusionAlgorithm algorithm,
                    Budget* budget, std::size_t threads) {
  return is_included(a, b, algorithm, budget, threads) &&
         is_included(b, a, algorithm, budget, threads);
}

}  // namespace rlv

#include "rlv/lang/inclusion.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rlv/util/hash.hpp"

namespace rlv {

namespace {

/// Explored configuration: a left-hand NFA state paired with the subset of
/// right-hand states compatible with the word read so far.
struct Config {
  State left;
  DynBitset right;
  Word word;  // witness word leading here (kept small: BFS order)
};

InclusionResult subset_inclusion(const Nfa& a, const Nfa& b, Budget* budget) {
  const std::size_t nb = b.num_states();
  DynBitset b_init(nb);
  for (const State s : b.initial()) b_init.set(s);

  auto b_accepts_now = [&](const DynBitset& set) {
    bool acc = false;
    set.for_each([&](std::size_t s) { acc = acc || b.is_accepting(s); });
    return acc;
  };

  std::unordered_map<State, std::vector<DynBitset>> seen;
  std::size_t seen_total = 0;

  auto already_seen = [&](State left, const DynBitset& right) {
    auto it = seen.find(left);
    if (it == seen.end()) return false;
    return std::find(it->second.begin(), it->second.end(), right) !=
           it->second.end();
  };

  auto record = [&](State left, const DynBitset& right) {
    seen[left].push_back(right);
    budget_charge(budget);
    budget_note_frontier(budget, ++seen_total);
  };

  std::deque<Config> queue;
  for (const State s : a.initial()) {
    if (already_seen(s, b_init)) continue;
    record(s, b_init);
    queue.push_back({s, b_init, {}});
  }
  while (!queue.empty()) {
    Config cfg = std::move(queue.front());
    queue.pop_front();
    if (a.is_accepting(cfg.left) && !b_accepts_now(cfg.right)) {
      return {false, cfg.word};
    }
    for (const auto& t : a.out(cfg.left)) {
      DynBitset next_right = b.step(cfg.right, t.symbol);
      if (already_seen(t.target, next_right)) continue;
      record(t.target, next_right);
      Word w = cfg.word;
      w.push_back(t.symbol);
      queue.push_back({t.target, std::move(next_right), std::move(w)});
    }
  }
  return {true, std::nullopt};
}

/// Antichain variant: a pair (p, S) is subsumed by (p, S') with S' ⊆ S,
/// because any counterexample reachable from (p, S) is also reachable from
/// (p, S') (a smaller right-hand set rejects more words).
InclusionResult antichain_inclusion(const Nfa& a, const Nfa& b,
                                    Budget* budget) {
  const std::size_t nb = b.num_states();
  DynBitset b_init(nb);
  for (const State s : b.initial()) b_init.set(s);

  auto b_accepts_now = [&](const DynBitset& set) {
    bool acc = false;
    set.for_each([&](std::size_t s) { acc = acc || b.is_accepting(s); });
    return acc;
  };

  // Antichain of ⊆-minimal right-hand sets, per left-hand state.
  std::unordered_map<State, std::vector<DynBitset>> antichain;
  std::size_t antichain_total = 0;

  // Returns false when (left, right) is subsumed by an existing element;
  // otherwise inserts it and removes elements it subsumes.
  auto insert = [&](State left, const DynBitset& right) {
    auto& chain = antichain[left];
    for (const auto& existing : chain) {
      if (existing.is_subset_of(right)) return false;
    }
    const std::size_t before = chain.size();
    std::erase_if(chain,
                  [&](const DynBitset& e) { return right.is_subset_of(e); });
    antichain_total -= before - chain.size();
    chain.push_back(right);
    budget_charge(budget);
    budget_note_frontier(budget, ++antichain_total);
    return true;
  };

  std::deque<Config> queue;
  for (const State s : a.initial()) {
    if (insert(s, b_init)) queue.push_back({s, b_init, {}});
  }
  while (!queue.empty()) {
    Config cfg = std::move(queue.front());
    queue.pop_front();
    if (a.is_accepting(cfg.left) && !b_accepts_now(cfg.right)) {
      return {false, cfg.word};
    }
    for (const auto& t : a.out(cfg.left)) {
      DynBitset next_right = b.step(cfg.right, t.symbol);
      if (!insert(t.target, next_right)) continue;
      Word w = cfg.word;
      w.push_back(t.symbol);
      queue.push_back({t.target, std::move(next_right), std::move(w)});
    }
  }
  return {true, std::nullopt};
}

}  // namespace

InclusionResult check_inclusion(const Nfa& a, const Nfa& b,
                                InclusionAlgorithm algorithm, Budget* budget) {
  require_same_alphabet(a.alphabet(), b.alphabet(), "check_inclusion");
  StageScope scope(budget, Stage::kInclusion);
  switch (algorithm) {
    case InclusionAlgorithm::kSubset:
      return subset_inclusion(a, b, budget);
    case InclusionAlgorithm::kAntichain:
      return antichain_inclusion(a, b, budget);
  }
  return {true, std::nullopt};  // unreachable
}

bool is_included(const Nfa& a, const Nfa& b, InclusionAlgorithm algorithm,
                 Budget* budget) {
  return check_inclusion(a, b, algorithm, budget).included;
}

bool nfa_equivalent(const Nfa& a, const Nfa& b, InclusionAlgorithm algorithm,
                    Budget* budget) {
  return is_included(a, b, algorithm, budget) &&
         is_included(b, a, algorithm, budget);
}

}  // namespace rlv

#include "rlv/lang/quotient.hpp"

#include "rlv/lang/ops.hpp"

namespace rlv {

Nfa left_quotient(const Nfa& nfa, const Word& w) {
  const DynBitset reached = nfa.run(w);
  Nfa result(nfa.alphabet());
  for (State s = 0; s < nfa.num_states(); ++s) {
    result.add_state(nfa.is_accepting(s));
  }
  for (State s = 0; s < nfa.num_states(); ++s) {
    for (const auto& t : nfa.out(s)) {
      result.add_transition(s, t.symbol, t.target);
    }
  }
  reached.for_each(
      [&](std::size_t s) { result.set_initial(static_cast<State>(s)); });
  return result;
}

Dfa residual(const Dfa& dfa, State s) {
  Dfa result = dfa;
  result.set_initial(s);
  return result;
}

std::size_t myhill_nerode_index(const Dfa& dfa) {
  return minimize(dfa).complete().num_states();
}

}  // namespace rlv

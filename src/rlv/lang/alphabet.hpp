#pragma once

// Alphabets and symbols. A Symbol is a dense integer id interned in an
// Alphabet, which keeps the human-readable action names (e.g. "request",
// "result") used throughout the paper's examples. Alphabets are shared
// immutably-by-convention between automata via shared_ptr; symbols from
// different alphabets must not be mixed (checked by assertions at the
// automaton layer where cheap).

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rlv {

using Symbol = std::uint32_t;

/// A finite word over some alphabet, as a sequence of symbol ids.
using Word = std::vector<Symbol>;

class Alphabet {
 public:
  Alphabet() = default;

  /// Builds an alphabet from a list of distinct symbol names.
  static std::shared_ptr<Alphabet> make(
      std::initializer_list<std::string_view> names);
  static std::shared_ptr<Alphabet> make(
      const std::vector<std::string>& names);

  /// Returns the id for `name`, interning it if new.
  Symbol intern(std::string_view name);

  /// Returns the id for `name`; the name must already be interned.
  [[nodiscard]] Symbol id(std::string_view name) const;

  /// True when `name` is already interned.
  [[nodiscard]] bool contains(std::string_view name) const;

  [[nodiscard]] const std::string& name(Symbol s) const {
    assert(s < names_.size());
    return names_[s];
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

  /// Formats a word as dot-separated action names ("lock.request.no").
  [[nodiscard]] std::string format(const Word& w) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> ids_;
};

using AlphabetRef = std::shared_ptr<const Alphabet>;

}  // namespace rlv

#pragma once

// Alphabets and symbols. A Symbol is a dense integer id interned in an
// Alphabet, which keeps the human-readable action names (e.g. "request",
// "result") used throughout the paper's examples. Alphabets are shared
// immutably-by-convention between automata via shared_ptr; symbols from
// different alphabets must not be mixed (checked by assertions at the
// automaton layer where cheap).

#include <cassert>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rlv {

using Symbol = std::uint32_t;

/// A finite word over some alphabet, as a sequence of symbol ids.
using Word = std::vector<Symbol>;

class Alphabet {
 public:
  Alphabet() = default;

  /// Builds an alphabet from a list of distinct symbol names.
  static std::shared_ptr<Alphabet> make(
      std::initializer_list<std::string_view> names);
  static std::shared_ptr<Alphabet> make(
      const std::vector<std::string>& names);

  /// Returns the id for `name`, interning it if new.
  Symbol intern(std::string_view name);

  /// Returns the id for `name`; throws std::invalid_argument when the name
  /// was never interned (an assert would vanish under NDEBUG and read past
  /// the map's end iterator).
  [[nodiscard]] Symbol id(std::string_view name) const;

  /// True when `name` is already interned.
  [[nodiscard]] bool contains(std::string_view name) const;

  [[nodiscard]] const std::string& name(Symbol s) const {
    assert(s < names_.size());
    return names_[s];
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

  /// Formats a word as dot-separated action names ("lock.request.no").
  [[nodiscard]] std::string format(const Word& w) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> ids_;
};

using AlphabetRef = std::shared_ptr<const Alphabet>;

/// Precondition guard for operations that require both operands to share
/// one alphabet *object* (symbol ids are only comparable then). Throws
/// std::invalid_argument — unlike the asserts it replaces, this survives
/// NDEBUG builds, where a mismatch would otherwise index out of range or
/// silently return garbage.
inline void require_same_alphabet(const AlphabetRef& a, const AlphabetRef& b,
                                  const char* where) {
  if (a != b) {
    throw std::invalid_argument(
        std::string(where) +
        ": operands must share one alphabet object (use remap_alphabet)");
  }
}

}  // namespace rlv

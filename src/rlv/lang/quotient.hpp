#pragma once

// Left quotients — the paper's cont(w, L) (Definition 3.1): the set of
// continuations of a word within a language. Also residual enumeration on a
// DFA, used by the simplicity decision procedure (Definition 6.3).

#include <vector>

#include "rlv/lang/dfa.hpp"
#include "rlv/lang/nfa.hpp"

namespace rlv {

/// Automaton for cont(w, L(nfa)) = { v | wv ∈ L }: advance all runs by `w`
/// and make the reached states initial. Returns an automaton with empty
/// language when no run survives `w`.
[[nodiscard]] Nfa left_quotient(const Nfa& nfa, const Word& w);

/// Automaton for the residual language of DFA state `s` (the language read
/// from `s`); same structure with `s` as initial state.
[[nodiscard]] Dfa residual(const Dfa& dfa, State s);

/// Number of distinct residual languages of the language of `dfa`
/// (= number of states of the minimal complete DFA, counting a sink if the
/// language is not total). This is the Myhill–Nerode index.
[[nodiscard]] std::size_t myhill_nerode_index(const Dfa& dfa);

}  // namespace rlv

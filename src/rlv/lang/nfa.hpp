#pragma once

// Nondeterministic finite automata over finite words. This is the shared
// structural representation for three roles in the paper:
//   * acceptors of regular languages L ⊆ Σ*,
//   * transition systems without acceptance conditions (prefix-closed L,
//     Section 6) — every state accepting,
//   * the finite-word skeleton of Büchi automata (rlv_omega wraps Nfa).
//
// States are dense uint32 ids. Transitions are stored per state; no ε-moves
// at this layer (homomorphic images perform ε-elimination eagerly, see
// rlv/hom/image.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "rlv/lang/alphabet.hpp"
#include "rlv/util/bitset.hpp"

namespace rlv {

using State = std::uint32_t;
inline constexpr State kNoState = 0xffffffffU;

struct Transition {
  Symbol symbol;
  State target;

  friend bool operator==(const Transition&, const Transition&) = default;
  friend auto operator<=>(const Transition&, const Transition&) = default;
};

class Nfa {
 public:
  explicit Nfa(AlphabetRef sigma) : sigma_(std::move(sigma)) {}

  [[nodiscard]] const AlphabetRef& alphabet() const { return sigma_; }

  /// Adds a fresh state and returns its id.
  State add_state(bool accepting = false);

  void add_transition(State from, Symbol symbol, State to);

  /// Adds the transition only if not already present (linear scan; intended
  /// for small hand-built automata and generators).
  void add_transition_unique(State from, Symbol symbol, State to);

  void set_initial(State s) { initial_.push_back(s); }
  void set_accepting(State s, bool accepting = true) {
    accepting_[s] = accepting;
  }

  [[nodiscard]] std::size_t num_states() const { return accepting_.size(); }
  [[nodiscard]] std::size_t num_transitions() const;

  [[nodiscard]] const std::vector<State>& initial() const { return initial_; }
  [[nodiscard]] bool is_accepting(State s) const { return accepting_[s]; }
  [[nodiscard]] const std::vector<Transition>& out(State s) const {
    return out_[s];
  }

  /// Successor set of `from` under `symbol` as a sorted, deduplicated vector.
  [[nodiscard]] std::vector<State> successors(State from, Symbol symbol) const;

  /// Advances a state set by one symbol.
  [[nodiscard]] DynBitset step(const DynBitset& states, Symbol symbol) const;

  /// Set of states reached from the initial states by reading `w` (all runs).
  [[nodiscard]] DynBitset run(const Word& w) const;

  /// Classical membership test by state-set simulation.
  [[nodiscard]] bool accepts(const Word& w) const;

  /// States reachable from the initial states.
  [[nodiscard]] DynBitset reachable() const;

  /// States from which some accepting state is reachable (productive).
  [[nodiscard]] DynBitset productive() const;

  /// Bitset of the accepting states.
  [[nodiscard]] DynBitset accepting_set() const;

  /// Human-readable dump (for examples and debugging).
  [[nodiscard]] std::string to_string() const;

 private:
  AlphabetRef sigma_;
  std::vector<std::vector<Transition>> out_;
  std::vector<bool> accepting_;
  std::vector<State> initial_;
};

}  // namespace rlv

#pragma once

// Nondeterministic finite automata over finite words. This is the shared
// structural representation for three roles in the paper:
//   * acceptors of regular languages L ⊆ Σ*,
//   * transition systems without acceptance conditions (prefix-closed L,
//     Section 6) — every state accepting,
//   * the finite-word skeleton of Büchi automata (rlv_omega wraps Nfa).
//
// States are dense uint32 ids. Transitions are stored structure-of-arrays
// style: while an automaton is being built, edges accumulate in flat
// append-only arrays; on first read access they are counting-sorted once
// into a symbol-indexed CSR layout — one contiguous edge array grouped by
// (state, symbol) plus an offsets table — so the hot kernels (subset
// stepping, inclusion, products) get the successor block of (q, a) as a
// contiguous span without scanning or chasing per-state vectors. Mutating
// after a read is allowed (the index is rebuilt lazily) but not free;
// builders should finish construction before handing the automaton to a
// kernel. Reads are thread-safe after the index exists or when the first
// concurrent readers race to build it (double-checked lock); mutation is
// never thread-safe, as before. No ε-moves at this layer (homomorphic
// images perform ε-elimination eagerly, see rlv/hom/image.hpp).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "rlv/lang/alphabet.hpp"
#include "rlv/util/bitset.hpp"

namespace rlv {

using State = std::uint32_t;
inline constexpr State kNoState = 0xffffffffU;

struct Transition {
  Symbol symbol;
  State target;

  friend bool operator==(const Transition&, const Transition&) = default;
  friend auto operator<=>(const Transition&, const Transition&) = default;
};

class Nfa {
 public:
  explicit Nfa(AlphabetRef sigma) : sigma_(std::move(sigma)) {}

  Nfa(const Nfa& o) { copy_from(o); }
  Nfa& operator=(const Nfa& o) {
    if (this != &o) copy_from(o);
    return *this;
  }
  Nfa(Nfa&& o) noexcept { move_from(std::move(o)); }
  Nfa& operator=(Nfa&& o) noexcept {
    if (this != &o) move_from(std::move(o));
    return *this;
  }

  [[nodiscard]] const AlphabetRef& alphabet() const { return sigma_; }

  /// Adds a fresh state and returns its id.
  State add_state(bool accepting = false);

  void add_transition(State from, Symbol symbol, State to);

  /// Adds the transition only if not already present (linear scan; intended
  /// for small hand-built automata and generators).
  void add_transition_unique(State from, Symbol symbol, State to);

  void set_initial(State s) { initial_.push_back(s); }
  void set_accepting(State s, bool accepting = true) {
    accepting_[s] = accepting;
  }

  [[nodiscard]] std::size_t num_states() const { return accepting_.size(); }
  [[nodiscard]] std::size_t num_transitions() const;

  [[nodiscard]] const std::vector<State>& initial() const { return initial_; }
  [[nodiscard]] bool is_accepting(State s) const { return accepting_[s]; }

  /// All out-edges of `s`, grouped by symbol (contiguous CSR block). The
  /// span is invalidated by any later mutation of the automaton.
  [[nodiscard]] std::span<const Transition> out(State s) const {
    ensure_index();
    const std::size_t row = static_cast<std::size_t>(s) * sigma_->size();
    return {csr_.data() + sym_off_[row],
            csr_.data() + sym_off_[row + sigma_->size()]};
  }

  /// The contiguous successor block of (`s`, `symbol`) — the unit the
  /// subset-construction kernels iterate. May contain duplicate targets if
  /// parallel edges were added.
  [[nodiscard]] std::span<const Transition> block(State s,
                                                  Symbol symbol) const {
    ensure_index();
    const std::size_t cell =
        static_cast<std::size_t>(s) * sigma_->size() + symbol;
    return {csr_.data() + sym_off_[cell], csr_.data() + sym_off_[cell + 1]};
  }

  /// Builds the CSR transition index now (idempotent). Kernels call this on
  /// the coordinating thread before fanning out workers so the lazy build
  /// never runs inside a hot loop.
  void finalize() const { ensure_index(); }

  /// Successor set of `from` under `symbol` as a sorted, deduplicated vector.
  [[nodiscard]] std::vector<State> successors(State from, Symbol symbol) const;

  /// Advances a state set by one symbol.
  [[nodiscard]] DynBitset step(const DynBitset& states, Symbol symbol) const;

  /// Raw-word variant of step() for kernels that keep state sets in interned
  /// or scratch storage: reads `num_states()` bits from `src`, writes the
  /// successor set under `symbol` into `dst` (both `(num_states()+63)/64`
  /// words; dst is overwritten). `src` and `dst` must not alias.
  void step_words(const std::uint64_t* src, Symbol symbol,
                  std::uint64_t* dst) const;

  /// Set of states reached from the initial states by reading `w` (all runs).
  [[nodiscard]] DynBitset run(const Word& w) const;

  /// Classical membership test by state-set simulation.
  [[nodiscard]] bool accepts(const Word& w) const;

  /// States reachable from the initial states.
  [[nodiscard]] DynBitset reachable() const;

  /// States from which some accepting state is reachable (productive).
  [[nodiscard]] DynBitset productive() const;

  /// Bitset of the accepting states.
  [[nodiscard]] DynBitset accepting_set() const;

  /// Human-readable dump (for examples and debugging).
  [[nodiscard]] std::string to_string() const;

 private:
  void ensure_index() const {
    if (indexed_.load(std::memory_order_acquire)) return;
    std::lock_guard lock(index_mutex_);
    if (indexed_.load(std::memory_order_relaxed)) return;
    build_index();
    indexed_.store(true, std::memory_order_release);
  }

  void build_index() const;

  /// Re-opens the automaton for appends after it has been indexed: scatters
  /// the CSR edges back into the building arrays and drops the index.
  void reopen_for_append();

  void copy_from(const Nfa& o);
  void move_from(Nfa&& o);

  AlphabetRef sigma_;
  std::vector<bool> accepting_;
  std::vector<State> initial_;

  // Building representation: flat append-only parallel arrays (SoA).
  // Cleared once the CSR index is built; exactly one of the two
  // representations holds the edges at any time.
  mutable std::vector<State> build_src_;
  mutable std::vector<Transition> build_edge_;

  // Finalized representation: edges counting-sorted by (source, symbol),
  // stable within a (source, symbol) cell; sym_off_ has
  // num_states * |Σ| + 1 entries delimiting the per-symbol blocks.
  mutable std::vector<Transition> csr_;
  mutable std::vector<std::uint32_t> sym_off_;
  mutable std::atomic<bool> indexed_{false};
  mutable std::mutex index_mutex_;
};

}  // namespace rlv

#include "rlv/lang/nfa.hpp"

#include <algorithm>
#include <cassert>

namespace rlv {

State Nfa::add_state(bool accepting) {
  const State s = static_cast<State>(accepting_.size());
  accepting_.push_back(accepting);
  out_.emplace_back();
  return s;
}

void Nfa::add_transition(State from, Symbol symbol, State to) {
  assert(from < num_states() && to < num_states());
  assert(symbol < sigma_->size());
  out_[from].push_back({symbol, to});
}

void Nfa::add_transition_unique(State from, Symbol symbol, State to) {
  for (const auto& t : out_[from]) {
    if (t.symbol == symbol && t.target == to) return;
  }
  add_transition(from, symbol, to);
}

std::size_t Nfa::num_transitions() const {
  std::size_t n = 0;
  for (const auto& edges : out_) n += edges.size();
  return n;
}

std::vector<State> Nfa::successors(State from, Symbol symbol) const {
  std::vector<State> result;
  for (const auto& t : out_[from]) {
    if (t.symbol == symbol) result.push_back(t.target);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

DynBitset Nfa::step(const DynBitset& states, Symbol symbol) const {
  DynBitset next(num_states());
  states.for_each([&](std::size_t s) {
    for (const auto& t : out_[s]) {
      if (t.symbol == symbol) next.set(t.target);
    }
  });
  return next;
}

DynBitset Nfa::run(const Word& w) const {
  DynBitset current(num_states());
  for (const State s : initial_) current.set(s);
  for (const Symbol a : w) {
    if (current.none()) break;
    current = step(current, a);
  }
  return current;
}

bool Nfa::accepts(const Word& w) const {
  bool found = false;
  run(w).for_each([&](std::size_t s) { found = found || accepting_[s]; });
  return found;
}

DynBitset Nfa::reachable() const {
  DynBitset seen(num_states());
  std::vector<State> work;
  for (const State s : initial_) {
    if (!seen.test(s)) {
      seen.set(s);
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const State s = work.back();
    work.pop_back();
    for (const auto& t : out_[s]) {
      if (!seen.test(t.target)) {
        seen.set(t.target);
        work.push_back(t.target);
      }
    }
  }
  return seen;
}

DynBitset Nfa::productive() const {
  // Backward reachability from accepting states over reversed edges.
  std::vector<std::vector<State>> pred(num_states());
  for (State s = 0; s < num_states(); ++s) {
    for (const auto& t : out_[s]) pred[t.target].push_back(s);
  }
  DynBitset seen(num_states());
  std::vector<State> work;
  for (State s = 0; s < num_states(); ++s) {
    if (accepting_[s]) {
      seen.set(s);
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const State s = work.back();
    work.pop_back();
    for (const State p : pred[s]) {
      if (!seen.test(p)) {
        seen.set(p);
        work.push_back(p);
      }
    }
  }
  return seen;
}

DynBitset Nfa::accepting_set() const {
  DynBitset acc(num_states());
  for (State s = 0; s < num_states(); ++s) {
    if (accepting_[s]) acc.set(s);
  }
  return acc;
}

std::string Nfa::to_string() const {
  std::string out = "NFA states=" + std::to_string(num_states()) +
                    " transitions=" + std::to_string(num_transitions()) + "\n";
  out += "initial:";
  for (const State s : initial_) out += " " + std::to_string(s);
  out += "\n";
  for (State s = 0; s < num_states(); ++s) {
    out += std::to_string(s);
    if (accepting_[s]) out += "*";
    out += ":";
    for (const auto& t : out_[s]) {
      out += " -" + sigma_->name(t.symbol) + "->" + std::to_string(t.target);
    }
    out += "\n";
  }
  return out;
}

}  // namespace rlv

#include "rlv/lang/nfa.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace rlv {

State Nfa::add_state(bool accepting) {
  reopen_for_append();
  const State s = static_cast<State>(accepting_.size());
  accepting_.push_back(accepting);
  return s;
}

void Nfa::add_transition(State from, Symbol symbol, State to) {
  assert(from < num_states() && to < num_states());
  assert(symbol < sigma_->size());
  reopen_for_append();
  build_src_.push_back(from);
  build_edge_.push_back({symbol, to});
}

void Nfa::add_transition_unique(State from, Symbol symbol, State to) {
  if (indexed_.load(std::memory_order_relaxed)) {
    for (const Transition& t : block(from, symbol)) {
      if (t.target == to) return;
    }
  } else {
    for (std::size_t i = 0; i < build_src_.size(); ++i) {
      if (build_src_[i] == from && build_edge_[i].symbol == symbol &&
          build_edge_[i].target == to) {
        return;
      }
    }
  }
  add_transition(from, symbol, to);
}

std::size_t Nfa::num_transitions() const {
  return indexed_.load(std::memory_order_acquire) ? csr_.size()
                                                  : build_edge_.size();
}

void Nfa::build_index() const {
  const std::size_t n = num_states();
  const std::size_t width = sigma_->size();
  const std::size_t cells = n * width;
  sym_off_.assign(cells + 1, 0);
  for (std::size_t i = 0; i < build_edge_.size(); ++i) {
    const std::size_t cell =
        static_cast<std::size_t>(build_src_[i]) * width +
        build_edge_[i].symbol;
    ++sym_off_[cell + 1];
  }
  for (std::size_t c = 0; c < cells; ++c) sym_off_[c + 1] += sym_off_[c];
  csr_.resize(build_edge_.size());
  std::vector<std::uint32_t> cursor(sym_off_.begin(), sym_off_.end() - 1);
  for (std::size_t i = 0; i < build_edge_.size(); ++i) {
    const std::size_t cell =
        static_cast<std::size_t>(build_src_[i]) * width +
        build_edge_[i].symbol;
    csr_[cursor[cell]++] = build_edge_[i];
  }
  build_src_.clear();
  build_src_.shrink_to_fit();
  build_edge_.clear();
  build_edge_.shrink_to_fit();
}

void Nfa::reopen_for_append() {
  if (!indexed_.load(std::memory_order_relaxed)) return;
  // Scatter the CSR edges back into the building arrays. Iterating the CSR
  // yields them symbol-major per state — a permutation of the original
  // insertion order, which only affects iteration order, never the language.
  const std::size_t width = sigma_->size();
  build_src_.reserve(csr_.size());
  build_edge_.reserve(csr_.size());
  for (State s = 0; s < num_states(); ++s) {
    const std::size_t row = static_cast<std::size_t>(s) * width;
    for (std::uint32_t i = sym_off_[row]; i < sym_off_[row + width]; ++i) {
      build_src_.push_back(s);
      build_edge_.push_back(csr_[i]);
    }
  }
  csr_.clear();
  csr_.shrink_to_fit();
  sym_off_.clear();
  sym_off_.shrink_to_fit();
  indexed_.store(false, std::memory_order_relaxed);
}

void Nfa::copy_from(const Nfa& o) {
  sigma_ = o.sigma_;
  accepting_ = o.accepting_;
  initial_ = o.initial_;
  build_src_ = o.build_src_;
  build_edge_ = o.build_edge_;
  csr_ = o.csr_;
  sym_off_ = o.sym_off_;
  indexed_.store(o.indexed_.load(std::memory_order_acquire),
                 std::memory_order_release);
}

void Nfa::move_from(Nfa&& o) {
  sigma_ = std::move(o.sigma_);
  accepting_ = std::move(o.accepting_);
  initial_ = std::move(o.initial_);
  build_src_ = std::move(o.build_src_);
  build_edge_ = std::move(o.build_edge_);
  csr_ = std::move(o.csr_);
  sym_off_ = std::move(o.sym_off_);
  indexed_.store(o.indexed_.load(std::memory_order_acquire),
                 std::memory_order_release);
  o.indexed_.store(false, std::memory_order_relaxed);
}

std::vector<State> Nfa::successors(State from, Symbol symbol) const {
  const std::span<const Transition> edges = block(from, symbol);
  std::vector<State> result;
  result.reserve(edges.size());
  for (const Transition& t : edges) result.push_back(t.target);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

DynBitset Nfa::step(const DynBitset& states, Symbol symbol) const {
  DynBitset next(num_states());
  states.for_each([&](std::size_t s) {
    for (const Transition& t : block(static_cast<State>(s), symbol)) {
      next.set(t.target);
    }
  });
  return next;
}

void Nfa::step_words(const std::uint64_t* src, Symbol symbol,
                     std::uint64_t* dst) const {
  ensure_index();
  const std::size_t n = num_states();
  const std::size_t num_words = (n + 63) / 64;
  for (std::size_t i = 0; i < num_words; ++i) dst[i] = 0;
  const std::size_t width = sigma_->size();
  for (std::size_t wi = 0; wi < num_words; ++wi) {
    std::uint64_t w = src[wi];
    while (w != 0) {
      const std::size_t s =
          wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      const std::size_t cell = s * width + symbol;
      for (std::uint32_t i = sym_off_[cell]; i < sym_off_[cell + 1]; ++i) {
        const State t = csr_[i].target;
        dst[t >> 6] |= std::uint64_t{1} << (t & 63);
      }
    }
  }
}

DynBitset Nfa::run(const Word& w) const {
  DynBitset current(num_states());
  for (const State s : initial_) current.set(s);
  for (const Symbol a : w) {
    if (current.none()) break;
    current = step(current, a);
  }
  return current;
}

bool Nfa::accepts(const Word& w) const {
  return run(w).any_of([&](std::size_t s) { return accepting_[s]; });
}

DynBitset Nfa::reachable() const {
  DynBitset seen(num_states());
  std::vector<State> work;
  for (const State s : initial_) {
    if (!seen.test(s)) {
      seen.set(s);
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const State s = work.back();
    work.pop_back();
    for (const Transition& t : out(s)) {
      if (!seen.test(t.target)) {
        seen.set(t.target);
        work.push_back(t.target);
      }
    }
  }
  return seen;
}

DynBitset Nfa::productive() const {
  // Backward reachability from accepting states over reversed edges.
  std::vector<std::vector<State>> pred(num_states());
  for (State s = 0; s < num_states(); ++s) {
    for (const Transition& t : out(s)) pred[t.target].push_back(s);
  }
  DynBitset seen(num_states());
  std::vector<State> work;
  for (State s = 0; s < num_states(); ++s) {
    if (accepting_[s]) {
      seen.set(s);
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const State s = work.back();
    work.pop_back();
    for (const State p : pred[s]) {
      if (!seen.test(p)) {
        seen.set(p);
        work.push_back(p);
      }
    }
  }
  return seen;
}

DynBitset Nfa::accepting_set() const {
  DynBitset acc(num_states());
  for (State s = 0; s < num_states(); ++s) {
    if (accepting_[s]) acc.set(s);
  }
  return acc;
}

std::string Nfa::to_string() const {
  std::string out_str = "NFA states=" + std::to_string(num_states()) +
                        " transitions=" + std::to_string(num_transitions()) +
                        "\n";
  out_str += "initial:";
  for (const State s : initial_) out_str += " " + std::to_string(s);
  out_str += "\n";
  for (State s = 0; s < num_states(); ++s) {
    out_str += std::to_string(s);
    if (accepting_[s]) out_str += "*";
    out_str += ":";
    for (const Transition& t : out(s)) {
      out_str +=
          " -" + sigma_->name(t.symbol) + "->" + std::to_string(t.target);
    }
    out_str += "\n";
  }
  return out_str;
}

}  // namespace rlv

#include "rlv/lang/ops.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "rlv/util/hash.hpp"
#include "rlv/util/intern.hpp"

namespace rlv {

Dfa determinize(const Nfa& nfa, Budget* budget) {
  Dfa dfa(nfa.alphabet());
  const std::size_t n = nfa.num_states();
  const std::size_t sigma = nfa.alphabet()->size();
  nfa.finalize();

  DynBitset init(n);
  for (const State s : nfa.initial()) init.set(s);
  if (init.none()) {
    // Empty language: single non-accepting state with no transitions keeps
    // downstream algorithms total.
    const State s = dfa.add_state(false);
    dfa.set_initial(s);
    return dfa;
  }

  // Subset states live interned in one contiguous word array; DFA state ids
  // are the dense intern ids (first-seen order, so the numbering matches the
  // classical worklist construction). The two scratch buffers are the only
  // per-step allocations.
  BitsetInterner interner(n);
  const DynBitset acc_set = nfa.accepting_set();
  const std::size_t words_per = interner.words_per();
  std::vector<std::uint64_t> cur(words_per, 0);
  std::vector<std::uint64_t> nxt(words_per, 0);

  auto accepts_words = [&](const std::uint64_t* w) {
    for (std::size_t i = 0; i < words_per; ++i) {
      if ((w[i] & acc_set.words_data()[i]) != 0) return true;
    }
    return false;
  };

  auto intern = [&](const std::uint64_t* w) -> State {
    const auto [id, fresh] = interner.intern(w);
    if (fresh) {
      budget_charge(budget);
      [[maybe_unused]] const State d = dfa.add_state(accepts_words(w));
      assert(d == id);
    }
    return id;
  };

  std::copy(init.words_data(), init.words_data() + words_per, nxt.begin());
  const State start = intern(nxt.data());
  dfa.set_initial(start);

  for (State d = 0; d < interner.size(); ++d) {
    // The interner grows while we iterate (and its word pointers move), so
    // the current subset is staged into `cur` first.
    std::copy(interner.words(d), interner.words(d) + words_per, cur.begin());
    for (Symbol a = 0; a < sigma; ++a) {
      nfa.step_words(cur.data(), a, nxt.data());
      bool empty = true;
      for (std::size_t i = 0; i < words_per && empty; ++i) {
        empty = nxt[i] == 0;
      }
      if (empty) continue;
      dfa.set_transition(d, a, intern(nxt.data()));
    }
  }
  return dfa;
}

namespace {

/// Removes states of a DFA that are unreachable or unproductive, preserving
/// the language. Returns a partial DFA.
Dfa trim_dfa(const Dfa& dfa) {
  const Nfa as_nfa = dfa.to_nfa();
  DynBitset keep = as_nfa.reachable();
  keep &= as_nfa.productive();

  Dfa result(dfa.alphabet());
  std::vector<State> remap(dfa.num_states(), kNoState);
  for (State s = 0; s < dfa.num_states(); ++s) {
    if (keep.test(s)) remap[s] = result.add_state(dfa.is_accepting(s));
  }
  for (State s = 0; s < dfa.num_states(); ++s) {
    if (!keep.test(s)) continue;
    for (Symbol a = 0; a < dfa.alphabet()->size(); ++a) {
      const State t = dfa.next(s, a);
      if (t != kNoState && keep.test(t)) {
        result.set_transition(remap[s], a, remap[t]);
      }
    }
  }
  if (dfa.initial() != kNoState && keep.test(dfa.initial())) {
    result.set_initial(remap[dfa.initial()]);
  } else {
    const State s = result.add_state(false);
    result.set_initial(s);
  }
  return result;
}

}  // namespace

Dfa minimize(const Dfa& input, Budget* budget) {
  const Dfa dfa = input.complete();
  const std::size_t n = dfa.num_states();
  const std::size_t sigma = dfa.alphabet()->size();

  // Hopcroft's partition-refinement algorithm.
  std::vector<std::vector<std::vector<State>>> pred(
      sigma, std::vector<std::vector<State>>(n));
  for (State s = 0; s < n; ++s) {
    for (Symbol a = 0; a < sigma; ++a) {
      pred[a][dfa.next(s, a)].push_back(s);
    }
  }

  std::vector<std::uint32_t> block_of(n, 0);
  std::vector<std::vector<State>> blocks;
  {
    std::vector<State> acc;
    std::vector<State> rej;
    for (State s = 0; s < n; ++s) {
      (dfa.is_accepting(s) ? acc : rej).push_back(s);
    }
    if (!acc.empty()) blocks.push_back(std::move(acc));
    if (!rej.empty()) blocks.push_back(std::move(rej));
    for (std::uint32_t b = 0; b < blocks.size(); ++b) {
      for (const State s : blocks[b]) block_of[s] = b;
    }
  }

  std::deque<std::pair<std::uint32_t, Symbol>> work;
  for (Symbol a = 0; a < sigma; ++a) {
    for (std::uint32_t b = 0; b < blocks.size(); ++b) work.emplace_back(b, a);
  }

  std::vector<State> touched;            // states with a predecessor in splitter
  std::vector<std::uint32_t> touched_in; // per-block count of touched states
  touched_in.assign(blocks.size(), 0);
  std::vector<std::uint32_t> touched_blocks;

  while (!work.empty()) {
    budget_tick(budget);
    const auto [splitter, a] = work.front();
    work.pop_front();

    touched.clear();
    touched_blocks.clear();
    for (const State t : blocks[splitter]) {
      for (const State s : pred[a][t]) {
        touched.push_back(s);
      }
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    for (const State s : touched) {
      if (touched_in[block_of[s]]++ == 0) touched_blocks.push_back(block_of[s]);
    }

    for (const std::uint32_t b : touched_blocks) {
      const std::uint32_t cnt = touched_in[b];
      touched_in[b] = 0;
      if (cnt == blocks[b].size()) continue;  // block not split

      // Split block b into (touched, untouched).
      std::vector<State> in_set;
      std::vector<State> out_set;
      for (const State s : blocks[b]) {
        // Membership in `touched`: recompute via transition (cheap and
        // avoids an extra mark array reset).
        if (std::binary_search(touched.begin(), touched.end(), s)) {
          in_set.push_back(s);
        } else {
          out_set.push_back(s);
        }
      }
      const std::uint32_t nb = static_cast<std::uint32_t>(blocks.size());
      const bool keep_in_b = in_set.size() >= out_set.size();
      std::vector<State>& small = keep_in_b ? out_set : in_set;
      std::vector<State>& large = keep_in_b ? in_set : out_set;
      blocks[b] = std::move(large);
      blocks.push_back(std::move(small));
      touched_in.push_back(0);
      for (const State s : blocks[nb]) block_of[s] = nb;
      for (Symbol c = 0; c < sigma; ++c) work.emplace_back(nb, c);
    }
  }

  // Build the quotient automaton.
  Dfa quotient(dfa.alphabet());
  for (std::uint32_t b = 0; b < blocks.size(); ++b) {
    quotient.add_state(dfa.is_accepting(blocks[b].front()));
  }
  for (std::uint32_t b = 0; b < blocks.size(); ++b) {
    const State rep = blocks[b].front();
    for (Symbol a = 0; a < sigma; ++a) {
      quotient.set_transition(b, a, block_of[dfa.next(rep, a)]);
    }
  }
  quotient.set_initial(block_of[dfa.initial()]);
  return trim_dfa(quotient);
}

Dfa complement(const Dfa& input) {
  Dfa dfa = input.complete();
  Dfa result(dfa.alphabet());
  for (State s = 0; s < dfa.num_states(); ++s) {
    result.add_state(!dfa.is_accepting(s));
  }
  for (State s = 0; s < dfa.num_states(); ++s) {
    for (Symbol a = 0; a < dfa.alphabet()->size(); ++a) {
      result.set_transition(s, a, dfa.next(s, a));
    }
  }
  result.set_initial(dfa.initial());
  return result;
}

Nfa intersect(const Nfa& a, const Nfa& b) {
  require_same_alphabet(a.alphabet(), b.alphabet(), "intersect");
  Nfa result(a.alphabet());

  std::unordered_map<std::pair<State, State>, State, PairHash> ids;
  std::vector<std::pair<State, State>> worklist;
  auto intern = [&](State p, State q) -> State {
    auto [it, inserted] = ids.emplace(std::make_pair(p, q), kNoState);
    if (inserted) {
      it->second =
          result.add_state(a.is_accepting(p) && b.is_accepting(q));
      worklist.emplace_back(p, q);
    }
    return it->second;
  };

  for (const State p : a.initial()) {
    for (const State q : b.initial()) {
      result.set_initial(intern(p, q));
    }
  }
  while (!worklist.empty()) {
    const auto [p, q] = worklist.back();
    worklist.pop_back();
    const State from = ids.at({p, q});
    for (const auto& ta : a.out(p)) {
      for (const auto& tb : b.out(q)) {
        if (ta.symbol != tb.symbol) continue;
        result.add_transition(from, ta.symbol, intern(ta.target, tb.target));
      }
    }
  }
  return result;
}

Nfa union_nfa(const Nfa& a, const Nfa& b) {
  require_same_alphabet(a.alphabet(), b.alphabet(), "union_nfa");
  Nfa result(a.alphabet());
  for (State s = 0; s < a.num_states(); ++s) {
    result.add_state(a.is_accepting(s));
  }
  const State offset = static_cast<State>(a.num_states());
  for (State s = 0; s < b.num_states(); ++s) {
    result.add_state(b.is_accepting(s));
  }
  for (State s = 0; s < a.num_states(); ++s) {
    for (const auto& t : a.out(s)) result.add_transition(s, t.symbol, t.target);
  }
  for (State s = 0; s < b.num_states(); ++s) {
    for (const auto& t : b.out(s)) {
      result.add_transition(offset + s, t.symbol, offset + t.target);
    }
  }
  for (const State s : a.initial()) result.set_initial(s);
  for (const State s : b.initial()) result.set_initial(offset + s);
  return result;
}

Nfa reverse_nfa(const Nfa& a) {
  Nfa result(a.alphabet());
  for (State s = 0; s < a.num_states(); ++s) {
    // Initial states of the reverse are the accepting states of a, and
    // vice versa; a state can be both.
    result.add_state(false);
  }
  for (State s = 0; s < a.num_states(); ++s) {
    for (const auto& t : a.out(s)) {
      result.add_transition(t.target, t.symbol, s);
    }
  }
  for (State s = 0; s < a.num_states(); ++s) {
    if (a.is_accepting(s)) result.set_initial(s);
  }
  for (const State s : a.initial()) result.set_accepting(s, true);
  return result;
}

Nfa concat_nfa(const Nfa& a, const Nfa& b) {
  require_same_alphabet(a.alphabet(), b.alphabet(), "concat_nfa");
  // ε ∈ L(b) makes a's accepting states accepting in the concatenation.
  bool b_has_epsilon = false;
  for (const State s : b.initial()) {
    b_has_epsilon = b_has_epsilon || b.is_accepting(s);
  }

  Nfa result(a.alphabet());
  for (State s = 0; s < a.num_states(); ++s) {
    result.add_state(a.is_accepting(s) && b_has_epsilon);
  }
  const State offset = static_cast<State>(a.num_states());
  for (State s = 0; s < b.num_states(); ++s) {
    result.add_state(b.is_accepting(s));
  }
  for (State s = 0; s < a.num_states(); ++s) {
    for (const auto& t : a.out(s)) result.add_transition(s, t.symbol, t.target);
  }
  for (State s = 0; s < b.num_states(); ++s) {
    for (const auto& t : b.out(s)) {
      result.add_transition(offset + s, t.symbol, offset + t.target);
    }
  }
  // Bridge: from a's accepting states, take b's initial out-edges.
  for (State s = 0; s < a.num_states(); ++s) {
    if (!a.is_accepting(s)) continue;
    for (const State bi : b.initial()) {
      for (const auto& t : b.out(bi)) {
        result.add_transition_unique(s, t.symbol, offset + t.target);
      }
    }
  }
  for (const State s : a.initial()) result.set_initial(s);
  return result;
}

Nfa star_nfa(const Nfa& a) {
  Nfa result(a.alphabet());
  const State start = result.add_state(true);  // accepts ε
  for (State s = 0; s < a.num_states(); ++s) {
    result.add_state(a.is_accepting(s));
  }
  auto shifted = [](State s) { return static_cast<State>(s + 1); };
  for (State s = 0; s < a.num_states(); ++s) {
    for (const auto& t : a.out(s)) {
      result.add_transition(shifted(s), t.symbol, shifted(t.target));
    }
  }
  // From the fresh start and from every accepting state, restart a.
  for (const State i : a.initial()) {
    for (const auto& t : a.out(i)) {
      result.add_transition_unique(start, t.symbol, shifted(t.target));
      for (State s = 0; s < a.num_states(); ++s) {
        if (a.is_accepting(s)) {
          result.add_transition_unique(shifted(s), t.symbol,
                                       shifted(t.target));
        }
      }
    }
  }
  result.set_initial(start);
  return result;
}

Nfa trim(const Nfa& nfa) {
  DynBitset keep = nfa.reachable();
  keep &= nfa.productive();

  Nfa result(nfa.alphabet());
  std::vector<State> remap(nfa.num_states(), kNoState);
  for (State s = 0; s < nfa.num_states(); ++s) {
    if (keep.test(s)) remap[s] = result.add_state(nfa.is_accepting(s));
  }
  for (State s = 0; s < nfa.num_states(); ++s) {
    if (!keep.test(s)) continue;
    for (const auto& t : nfa.out(s)) {
      if (keep.test(t.target)) {
        result.add_transition(remap[s], t.symbol, remap[t.target]);
      }
    }
  }
  for (const State s : nfa.initial()) {
    if (keep.test(s)) result.set_initial(remap[s]);
  }
  return result;
}

Nfa prefix_language(const Nfa& nfa) {
  Nfa result = trim(nfa);
  for (State s = 0; s < result.num_states(); ++s) {
    result.set_accepting(s, true);
  }
  return result;
}

bool is_empty(const Nfa& nfa) {
  return !nfa.reachable().any_of(
      [&](std::size_t s) { return nfa.is_accepting(static_cast<State>(s)); });
}

namespace {

/// Union-find for Hopcroft–Karp equivalence testing.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Merges the classes of a and b; returns false when already merged.
  bool merge(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// Hopcroft–Karp: are the languages from state `p` of complete DFA `a` and
/// state `q` of complete DFA `b` equal?
bool hk_equivalent(const Dfa& a, State p, const Dfa& b, State q) {
  assert(a.is_complete() && b.is_complete());
  assert(a.alphabet() == b.alphabet());
  const std::size_t na = a.num_states();
  UnionFind uf(na + b.num_states());
  std::vector<std::pair<State, State>> work;
  if (!uf.merge(p, na + q)) return true;
  work.emplace_back(p, q);
  while (!work.empty()) {
    const auto [x, y] = work.back();
    work.pop_back();
    if (a.is_accepting(x) != b.is_accepting(y)) return false;
    for (Symbol c = 0; c < a.alphabet()->size(); ++c) {
      const State nx = a.next(x, c);
      const State ny = b.next(y, c);
      if (uf.merge(nx, na + ny)) work.emplace_back(nx, ny);
    }
  }
  return true;
}

}  // namespace

bool dfa_equivalent(const Dfa& a, const Dfa& b) {
  const Dfa ca = a.complete();
  const Dfa cb = b.complete();
  return hk_equivalent(ca, ca.initial(), cb, cb.initial());
}

bool residual_equivalent(const Dfa& a, State p, const Dfa& b, State q) {
  const Dfa ca = a.complete();
  const Dfa cb = b.complete();
  // complete() appends the sink, so original state ids are stable; kNoState
  // inputs denote the sink itself.
  const State pp = (p == kNoState) ? static_cast<State>(ca.num_states() - 1) : p;
  const State qq = (q == kNoState) ? static_cast<State>(cb.num_states() - 1) : q;
  return hk_equivalent(ca, pp, cb, qq);
}

bool is_prefix_closed(const Nfa& nfa) {
  // L is prefix-closed iff pre(L) ⊆ L, iff pre(L) = L.
  const Dfa dl = minimize(determinize(nfa));
  const Dfa dp = minimize(determinize(prefix_language(nfa)));
  return dfa_equivalent(dl, dp);
}

std::vector<Word> enumerate_words(const Nfa& nfa, std::size_t max_len,
                                  std::size_t limit) {
  std::vector<Word> result;
  const std::size_t n = nfa.num_states();
  DynBitset init(n);
  for (const State s : nfa.initial()) init.set(s);

  struct Item {
    Word word;
    DynBitset states;
  };
  std::queue<Item> queue;
  queue.push({{}, init});
  while (!queue.empty()) {
    Item item = std::move(queue.front());
    queue.pop();
    const bool acc =
        item.states.any_of([&](std::size_t s) { return nfa.is_accepting(s); });
    if (acc) {
      result.push_back(item.word);
      if (result.size() > limit) {
        throw std::length_error("enumerate_words: limit exceeded");
      }
    }
    if (item.word.size() == max_len) continue;
    for (Symbol a = 0; a < nfa.alphabet()->size(); ++a) {
      DynBitset next = nfa.step(item.states, a);
      if (next.none()) continue;
      Word w = item.word;
      w.push_back(a);
      queue.push({std::move(w), std::move(next)});
    }
  }
  return result;
}

std::optional<Word> shortest_word(const Nfa& nfa) {
  const std::size_t n = nfa.num_states();
  std::vector<std::pair<State, Transition>> parent(
      n, {kNoState, {0, kNoState}});
  DynBitset seen(n);
  std::queue<State> queue;
  for (const State s : nfa.initial()) {
    if (!seen.test(s)) {
      seen.set(s);
      queue.push(s);
    }
  }
  State hit = kNoState;
  while (!queue.empty() && hit == kNoState) {
    const State s = queue.front();
    queue.pop();
    if (nfa.is_accepting(s)) {
      hit = s;
      break;
    }
    for (const auto& t : nfa.out(s)) {
      if (!seen.test(t.target)) {
        seen.set(t.target);
        parent[t.target] = {s, t};
        queue.push(t.target);
      }
    }
  }
  if (hit == kNoState) return std::nullopt;
  Word w;
  State s = hit;
  while (parent[s].first != kNoState) {
    w.push_back(parent[s].second.symbol);
    s = parent[s].first;
  }
  std::reverse(w.begin(), w.end());
  return w;
}

std::vector<std::uint64_t> count_words(const Nfa& nfa, std::size_t max_len) {
  // Count over the determinized automaton so runs are unambiguous.
  const Dfa dfa = determinize(nfa);
  std::vector<std::uint64_t> counts(max_len + 1, 0);
  std::vector<std::uint64_t> at(dfa.num_states(), 0);
  at[dfa.initial()] = 1;
  auto saturating_add = [](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t s = a + b;
    return (s < a) ? ~std::uint64_t{0} : s;
  };
  for (std::size_t len = 0; len <= max_len; ++len) {
    for (State s = 0; s < dfa.num_states(); ++s) {
      if (at[s] != 0 && dfa.is_accepting(s)) {
        counts[len] = saturating_add(counts[len], at[s]);
      }
    }
    if (len == max_len) break;
    std::vector<std::uint64_t> next(dfa.num_states(), 0);
    for (State s = 0; s < dfa.num_states(); ++s) {
      if (at[s] == 0) continue;
      for (Symbol a = 0; a < dfa.alphabet()->size(); ++a) {
        const State t = dfa.next(s, a);
        if (t != kNoState) next[t] = saturating_add(next[t], at[s]);
      }
    }
    at = std::move(next);
  }
  return counts;
}

Nfa remap_alphabet(const Nfa& nfa, AlphabetRef target) {
  std::vector<Symbol> translate(nfa.alphabet()->size());
  for (Symbol a = 0; a < nfa.alphabet()->size(); ++a) {
    translate[a] = target->id(nfa.alphabet()->name(a));
  }
  Nfa result(std::move(target));
  for (State s = 0; s < nfa.num_states(); ++s) {
    result.add_state(nfa.is_accepting(s));
  }
  for (State s = 0; s < nfa.num_states(); ++s) {
    for (const auto& t : nfa.out(s)) {
      result.add_transition(s, translate[t.symbol], t.target);
    }
  }
  for (const State s : nfa.initial()) result.set_initial(s);
  return result;
}

}  // namespace rlv

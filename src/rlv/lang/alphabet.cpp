#include "rlv/lang/alphabet.hpp"

namespace rlv {

std::shared_ptr<Alphabet> Alphabet::make(
    std::initializer_list<std::string_view> names) {
  auto sigma = std::make_shared<Alphabet>();
  for (const auto name : names) sigma->intern(name);
  return sigma;
}

std::shared_ptr<Alphabet> Alphabet::make(const std::vector<std::string>& names) {
  auto sigma = std::make_shared<Alphabet>();
  for (const auto& name : names) sigma->intern(name);
  return sigma;
}

Symbol Alphabet::intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const Symbol s = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), s);
  return s;
}

Symbol Alphabet::id(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    throw std::invalid_argument("symbol not interned: " + std::string(name));
  }
  return it->second;
}

bool Alphabet::contains(std::string_view name) const {
  return ids_.find(std::string(name)) != ids_.end();
}

std::string Alphabet::format(const Word& w) const {
  std::string out;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i > 0) out += '.';
    out += name(w[i]);
  }
  if (out.empty()) out = "\xce\xb5";  // ε for the empty word
  return out;
}

}  // namespace rlv

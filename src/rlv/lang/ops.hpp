#pragma once

// Core constructions on finite-word automata: determinization, Hopcroft
// minimization, complementation, boolean combinations, trimming, prefix
// languages, emptiness, equivalence, and bounded word enumeration (the
// latter drives the property-based tests).

#include <cstdint>
#include <optional>
#include <vector>

#include "rlv/lang/dfa.hpp"
#include "rlv/lang/nfa.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {

/// Subset construction. Only reachable, non-empty subsets become states, so
/// the result is a partial DFA for the same language. Exponential in the
/// worst case; each subset-state built is charged to `budget` (under the
/// caller's current stage).
[[nodiscard]] Dfa determinize(const Nfa& nfa, Budget* budget = nullptr);

/// Hopcroft minimization. Accepts a partial DFA; the result is again partial
/// (the rejecting sink, if any, is removed) and is the unique minimal DFA of
/// the language up to isomorphism. `budget` bounds wall time (the splitter
/// loop ticks the deadline).
[[nodiscard]] Dfa minimize(const Dfa& dfa, Budget* budget = nullptr);

/// Complement w.r.t. Σ*: completes and flips acceptance.
[[nodiscard]] Dfa complement(const Dfa& dfa);

/// Product-intersection of two NFAs over the same alphabet.
[[nodiscard]] Nfa intersect(const Nfa& a, const Nfa& b);

/// Disjoint union of two NFAs over the same alphabet.
[[nodiscard]] Nfa union_nfa(const Nfa& a, const Nfa& b);

/// Mirror language { reverse(w) | w ∈ L }: edges flipped, initial and
/// accepting swapped.
[[nodiscard]] Nfa reverse_nfa(const Nfa& a);

/// Concatenation L(a)·L(b) (ε-free construction: accepting states of `a`
/// borrow the out-edges of `b`'s initial states).
[[nodiscard]] Nfa concat_nfa(const Nfa& a, const Nfa& b);

/// Kleene star L(a)*.
[[nodiscard]] Nfa star_nfa(const Nfa& a);

/// Removes states that are not both reachable and productive. The language
/// is unchanged; the result has no useless states. An automaton with empty
/// language trims to zero states.
[[nodiscard]] Nfa trim(const Nfa& nfa);

/// Automaton for pre(L(nfa)): the set of prefixes of accepted words.
/// Implemented as trim + make-all-states-accepting.
[[nodiscard]] Nfa prefix_language(const Nfa& nfa);

/// True when L(nfa) = ∅.
[[nodiscard]] bool is_empty(const Nfa& nfa);

/// True when L(a) = L(b), via Hopcroft–Karp on the two (completed) DFAs.
[[nodiscard]] bool dfa_equivalent(const Dfa& a, const Dfa& b);

/// True when the residual languages of states `p` and `q` inside the two
/// (complete) DFAs coincide. `a` and `b` may be the same automaton.
[[nodiscard]] bool residual_equivalent(const Dfa& a, State p, const Dfa& b,
                                       State q);

/// True when L(nfa) is prefix-closed.
[[nodiscard]] bool is_prefix_closed(const Nfa& nfa);

/// All accepted words of length <= max_len in length-lex order. Guard for
/// tests only: throws std::length_error beyond `limit` words.
[[nodiscard]] std::vector<Word> enumerate_words(const Nfa& nfa,
                                                std::size_t max_len,
                                                std::size_t limit = 1u << 20);

/// Shortest accepted word, if the language is non-empty.
[[nodiscard]] std::optional<Word> shortest_word(const Nfa& nfa);

/// Number of accepted words of each length 0..max_len (may saturate at
/// UINT64_MAX on overflow).
[[nodiscard]] std::vector<std::uint64_t> count_words(const Nfa& nfa,
                                                     std::size_t max_len);

/// Rebuilds `nfa` over a different alphabet object, translating symbols by
/// name. Every symbol name used by `nfa` must exist in `target`. Allows
/// automata built independently (e.g. a Petri-net reachability graph and a
/// hand-drawn diagram) to be compared with the same-alphabet operations.
[[nodiscard]] Nfa remap_alphabet(const Nfa& nfa, AlphabetRef target);

}  // namespace rlv

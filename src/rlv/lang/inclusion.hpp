#pragma once

// Language inclusion L(a) ⊆ L(b) for NFAs — the engine behind the relative
// liveness check (Lemma 4.3 reduces relative liveness to an inclusion of
// prefix languages). Two interchangeable implementations:
//   * subset-construction product search (the PSPACE-canonical algorithm),
//   * the antichain algorithm of De Wulf–Doyen–Henzinger–Raskin, which keeps
//     only ⊆-minimal subset states per left-hand state.
// Both return a counterexample word when the inclusion fails; benches
// compare them head-to-head (experiment E4).
//
// Both explorations are worst-case exponential in |b|, so they accept an
// optional Budget (rlv/util/budget.hpp): every explored configuration is
// charged under Stage::kInclusion, the antichain/visited-set size is
// reported as the stage's frontier peak, and a tripped limit raises
// ResourceExhausted instead of running unbounded.
//
// With `threads > 1` the exploration runs as a sharded work-stealing
// frontier search: each worker owns a deque of configurations and steals
// from siblings when drained; the per-left-state antichain/visited store is
// guarded by striped reader-writer locks (subsumption probes take the
// shared side, insertions re-check under the exclusive side). The boolean
// verdict is identical to the sequential search — subsumption pruning is
// confluent, so exploration order cannot change whether a counterexample
// exists — but a found counterexample word depends on the interleaving.
// check_inclusion therefore REVALIDATES every parallel counterexample by
// direct subset simulation (a.accepts(w) && !b.accepts(w)) before returning
// it, falling back to the sequential search if the racy witness assembly
// produced a bogus word; callers always receive a genuine member of
// L(a) \ L(b), though not a canonical one (revalidate, don't byte-compare
// when cross-checking). The sequential search (threads <= 1) additionally
// guarantees a *shortest* counterexample (BFS order). Witness bookkeeping
// uses shared parent-pointer chains in both modes, so memory stays
// O(configurations) instead of O(configurations × depth).

#include <optional>

#include "rlv/lang/nfa.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {

enum class InclusionAlgorithm {
  kSubset,
  kAntichain,
};

struct InclusionResult {
  bool included = false;
  /// A word in L(a) \ L(b) when `included` is false.
  std::optional<Word> counterexample;
};

/// Decides L(a) ⊆ L(b). Both automata must share the same alphabet object;
/// throws std::invalid_argument otherwise (this guard survives NDEBUG).
/// `threads > 1` runs the sharded work-stealing parallel search (see the
/// header comment for the determinism contract).
[[nodiscard]] InclusionResult check_inclusion(
    const Nfa& a, const Nfa& b,
    InclusionAlgorithm algorithm = InclusionAlgorithm::kAntichain,
    Budget* budget = nullptr, std::size_t threads = 1);

/// Convenience wrapper returning only the verdict.
[[nodiscard]] bool is_included(
    const Nfa& a, const Nfa& b,
    InclusionAlgorithm algorithm = InclusionAlgorithm::kAntichain,
    Budget* budget = nullptr, std::size_t threads = 1);

/// L(a) = L(b) via two inclusion checks.
[[nodiscard]] bool nfa_equivalent(
    const Nfa& a, const Nfa& b,
    InclusionAlgorithm algorithm = InclusionAlgorithm::kAntichain,
    Budget* budget = nullptr, std::size_t threads = 1);

}  // namespace rlv

#pragma once

// Language inclusion L(a) ⊆ L(b) for NFAs — the engine behind the relative
// liveness check (Lemma 4.3 reduces relative liveness to an inclusion of
// prefix languages). Two interchangeable implementations:
//   * subset-construction product search (the PSPACE-canonical algorithm),
//   * the antichain algorithm of De Wulf–Doyen–Henzinger–Raskin, which keeps
//     only ⊆-minimal subset states per left-hand state.
// Both return a counterexample word when the inclusion fails; benches
// compare them head-to-head (experiment E4).
//
// Both explorations are worst-case exponential in |b|, so they accept an
// optional Budget (rlv/util/budget.hpp): every explored configuration is
// charged under Stage::kInclusion, the antichain/visited-set size is
// reported as the stage's frontier peak, and a tripped limit raises
// ResourceExhausted instead of running unbounded.

#include <optional>

#include "rlv/lang/nfa.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {

enum class InclusionAlgorithm {
  kSubset,
  kAntichain,
};

struct InclusionResult {
  bool included = false;
  /// A word in L(a) \ L(b) when `included` is false.
  std::optional<Word> counterexample;
};

/// Decides L(a) ⊆ L(b). Both automata must share the same alphabet object;
/// throws std::invalid_argument otherwise (this guard survives NDEBUG).
[[nodiscard]] InclusionResult check_inclusion(
    const Nfa& a, const Nfa& b,
    InclusionAlgorithm algorithm = InclusionAlgorithm::kAntichain,
    Budget* budget = nullptr);

/// Convenience wrapper returning only the verdict.
[[nodiscard]] bool is_included(
    const Nfa& a, const Nfa& b,
    InclusionAlgorithm algorithm = InclusionAlgorithm::kAntichain,
    Budget* budget = nullptr);

/// L(a) = L(b) via two inclusion checks.
[[nodiscard]] bool nfa_equivalent(
    const Nfa& a, const Nfa& b,
    InclusionAlgorithm algorithm = InclusionAlgorithm::kAntichain,
    Budget* budget = nullptr);

}  // namespace rlv

#pragma once

// Deterministic finite automata with a dense transition table. DFAs here are
// *partial*: a missing transition (kNoState) means the word is rejected and
// all its extensions too. `complete()` materializes an explicit sink when an
// algorithm needs totality (complementation, Hopcroft minimization).

#include <cstdint>
#include <string>
#include <vector>

#include "rlv/lang/alphabet.hpp"
#include "rlv/lang/nfa.hpp"

namespace rlv {

class Dfa {
 public:
  explicit Dfa(AlphabetRef sigma) : sigma_(std::move(sigma)) {}

  [[nodiscard]] const AlphabetRef& alphabet() const { return sigma_; }

  State add_state(bool accepting = false);

  /// Sets the (unique) transition `from --symbol--> to`.
  void set_transition(State from, Symbol symbol, State to);

  void set_initial(State s) { initial_ = s; }
  void set_accepting(State s, bool accepting = true) {
    accepting_[s] = accepting;
  }

  [[nodiscard]] State initial() const { return initial_; }
  [[nodiscard]] bool is_accepting(State s) const { return accepting_[s]; }
  [[nodiscard]] std::size_t num_states() const { return accepting_.size(); }

  /// Successor of `from` under `symbol`, or kNoState when undefined.
  [[nodiscard]] State next(State from, Symbol symbol) const {
    return table_[static_cast<std::size_t>(from) * sigma_->size() + symbol];
  }

  /// State reached from the initial state by `w`, or kNoState.
  [[nodiscard]] State run(const Word& w) const;

  /// State reached from `start` by `w`, or kNoState.
  [[nodiscard]] State run_from(State start, const Word& w) const;

  [[nodiscard]] bool accepts(const Word& w) const;

  /// Number of defined transitions.
  [[nodiscard]] std::size_t num_transitions() const;

  /// True when every state has a transition on every symbol.
  [[nodiscard]] bool is_complete() const;

  /// Returns a complete DFA for the same language (adds a rejecting sink if
  /// any transition is missing; otherwise returns *this unchanged).
  [[nodiscard]] Dfa complete() const;

  /// View as an NFA (shares no storage; copies transitions).
  [[nodiscard]] Nfa to_nfa() const;

  [[nodiscard]] std::string to_string() const;

 private:
  AlphabetRef sigma_;
  std::vector<State> table_;  // num_states * |Σ|, kNoState = undefined
  std::vector<bool> accepting_;
  State initial_ = kNoState;
};

}  // namespace rlv

#include "rlv/lang/dfa.hpp"

#include <cassert>

namespace rlv {

State Dfa::add_state(bool accepting) {
  const State s = static_cast<State>(accepting_.size());
  accepting_.push_back(accepting);
  table_.resize(table_.size() + sigma_->size(), kNoState);
  return s;
}

void Dfa::set_transition(State from, Symbol symbol, State to) {
  assert(from < num_states() && to < num_states());
  assert(symbol < sigma_->size());
  table_[static_cast<std::size_t>(from) * sigma_->size() + symbol] = to;
}

State Dfa::run(const Word& w) const { return run_from(initial_, w); }

State Dfa::run_from(State start, const Word& w) const {
  State s = start;
  for (const Symbol a : w) {
    if (s == kNoState) return kNoState;
    s = next(s, a);
  }
  return s;
}

bool Dfa::accepts(const Word& w) const {
  const State s = run(w);
  return s != kNoState && accepting_[s];
}

std::size_t Dfa::num_transitions() const {
  std::size_t n = 0;
  for (const State t : table_) {
    if (t != kNoState) ++n;
  }
  return n;
}

bool Dfa::is_complete() const {
  for (const State t : table_) {
    if (t == kNoState) return false;
  }
  return num_states() > 0;
}

Dfa Dfa::complete() const {
  if (is_complete()) return *this;
  Dfa result = *this;
  const State sink = result.add_state(false);
  for (State s = 0; s < result.num_states(); ++s) {
    for (Symbol a = 0; a < sigma_->size(); ++a) {
      if (result.next(s, a) == kNoState) result.set_transition(s, a, sink);
    }
  }
  if (result.initial_ == kNoState) result.initial_ = sink;
  return result;
}

Nfa Dfa::to_nfa() const {
  Nfa nfa(sigma_);
  for (State s = 0; s < num_states(); ++s) nfa.add_state(accepting_[s]);
  for (State s = 0; s < num_states(); ++s) {
    for (Symbol a = 0; a < sigma_->size(); ++a) {
      const State t = next(s, a);
      if (t != kNoState) nfa.add_transition(s, a, t);
    }
  }
  if (initial_ != kNoState) nfa.set_initial(initial_);
  return nfa;
}

std::string Dfa::to_string() const {
  std::string out = "DFA states=" + std::to_string(num_states()) +
                    " initial=" + std::to_string(initial_) + "\n";
  for (State s = 0; s < num_states(); ++s) {
    out += std::to_string(s);
    if (accepting_[s]) out += "*";
    out += ":";
    for (Symbol a = 0; a < sigma_->size(); ++a) {
      const State t = next(s, a);
      if (t != kNoState) {
        out += " -" + sigma_->name(a) + "->" + std::to_string(t);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace rlv

#pragma once

// Tarjan strongly-connected-component decomposition over a plain adjacency
// list. Components are numbered in reverse topological order (a component's
// id is larger than the ids of components it can reach). Iterative
// implementation: automata in this project routinely have deep DFS stacks.

#include <cstdint>
#include <vector>

namespace rlv {

struct SccResult {
  /// Component id per node; ids are dense in [0, count).
  std::vector<std::uint32_t> component;
  std::uint32_t count = 0;
  /// True when the component has at least one internal edge (i.e. it is a
  /// non-trivial SCC or a single node with a self-loop).
  std::vector<bool> nontrivial;
};

/// Decomposes the directed graph given by `succ` (adjacency list, nodes
/// 0..succ.size()-1) into strongly connected components.
[[nodiscard]] SccResult tarjan_scc(
    const std::vector<std::vector<std::uint32_t>>& succ);

}  // namespace rlv

#pragma once

// Resource governance for the expensive decision-procedure kernels. The
// paper's checks are PSPACE-complete (Thm 4.5) and the automaton-flavored
// relative-safety path goes through rank-based Büchi complementation, which
// is exponential — so every construction that can blow up (determinize,
// complement, translate, product, inclusion) accepts an optional Budget:
//
//   * a wall-clock deadline and a cap on constructed states/configs;
//   * per-stage observability: calls, states built, peak antichain size,
//     and exclusive nanoseconds per pipeline stage (StageScope).
//
// When a limit trips, the kernel raises ResourceExhausted carrying the
// stage that was running; callers (rlv/core/relative.cpp, the query engine)
// surface it as a distinct "resource exhausted" verdict — never a crash or
// a wrong boolean. A null Budget* (the default everywhere) is a no-op, so
// budget-disabled results are identical to unbudgeted execution.
//
// A Budget is meant to govern ONE check on ONE thread; it is not
// thread-safe. The engine creates a fresh Budget per query and merges the
// profile into its cumulative stats afterwards.

#include <array>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rlv {

/// Pipeline stages of the Lemma 4.3/4.4 decision procedures, in pipeline
/// order. kOther collects work done outside any named stage (e.g. a
/// standalone determinize() call).
enum class Stage : std::uint8_t {
  kParse,       // system / formula / property-automaton parsing
  kPreTrim,     // lim(L) construction and pre(L_ω) live-state trimming
  kTranslate,   // LTL → Büchi (GPVW tableau + degeneralization)
  kProduct,     // Büchi intersection (counter construction)
  kInclusion,   // NFA inclusion (subset or antichain)
  kEmptiness,   // Büchi emptiness / lasso extraction
  kComplement,  // rank-based Büchi complementation
  kOther,
};

inline constexpr std::size_t kNumStages = 8;

[[nodiscard]] std::string_view stage_name(Stage stage);

/// Raised by a budget-governed kernel when a limit trips. Carries the stage
/// that was charging when the budget ran out.
class ResourceExhausted : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t { kDeadline, kStates };

  ResourceExhausted(Stage stage, Kind kind);

  [[nodiscard]] Stage stage() const { return stage_; }
  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Stage stage_;
  Kind kind_;
};

/// Per-stage observability counters.
struct StageMetrics {
  std::uint64_t calls = 0;          // StageScope entries
  std::uint64_t states_built = 0;   // states/configs constructed
  std::uint64_t peak_antichain = 0; // largest antichain/frontier seen
  std::uint64_t nanos = 0;          // exclusive wall time in this stage

  StageMetrics& operator+=(const StageMetrics& o) {
    calls += o.calls;
    states_built += o.states_built;
    if (o.peak_antichain > peak_antichain) peak_antichain = o.peak_antichain;
    nanos += o.nanos;
    return *this;
  }
};

/// One profile per check: the metrics of every stage. Merging profiles sums
/// additive counters and maxes the peaks.
struct QueryProfile {
  std::array<StageMetrics, kNumStages> stages{};

  [[nodiscard]] const StageMetrics& operator[](Stage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] StageMetrics& operator[](Stage s) {
    return stages[static_cast<std::size_t>(s)];
  }

  QueryProfile& operator+=(const QueryProfile& o) {
    for (std::size_t i = 0; i < kNumStages; ++i) stages[i] += o.stages[i];
    return *this;
  }

  [[nodiscard]] std::uint64_t total_nanos() const {
    std::uint64_t total = 0;
    for (const StageMetrics& m : stages) total += m.nanos;
    return total;
  }

  [[nodiscard]] std::uint64_t total_states() const {
    std::uint64_t total = 0;
    for (const StageMetrics& m : stages) total += m.states_built;
    return total;
  }
};

class StageScope;

/// Wall-clock deadline + constructed-state cap, plus the per-stage profile.
/// Default-constructed Budgets are unlimited and only record metrics.
class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  Budget() = default;

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Arms the wall-clock deadline `timeout` from now.
  void set_deadline_in(std::chrono::milliseconds timeout) {
    deadline_ = Clock::now() + timeout;
    has_deadline_ = true;
  }

  /// Caps the total number of states/configs charged across all stages.
  void set_max_states(std::uint64_t max_states) { max_states_ = max_states; }

  /// Records `states` newly constructed states/configs under the current
  /// stage and enforces both limits. Throws ResourceExhausted.
  void charge(std::uint64_t states = 1) {
    StageMetrics& m = profile_[stage_];
    m.states_built += states;
    states_used_ += states;
    if (states_used_ > max_states_) {
      throw ResourceExhausted(stage_, ResourceExhausted::Kind::kStates);
    }
    maybe_check_deadline();
  }

  /// Deadline check only — for inner loops that do work without building
  /// states (e.g. the ranking odometer of the complement construction).
  /// Cheap: consults the clock once every 64 calls.
  void tick() { maybe_check_deadline(); }

  /// Updates the peak antichain/frontier size of the current stage.
  void note_frontier(std::uint64_t size) {
    StageMetrics& m = profile_[stage_];
    if (size > m.peak_antichain) m.peak_antichain = size;
  }

  [[nodiscard]] Stage stage() const { return stage_; }
  [[nodiscard]] const QueryProfile& profile() const { return profile_; }
  [[nodiscard]] std::uint64_t states_used() const { return states_used_; }

 private:
  friend class StageScope;

  void maybe_check_deadline() {
    if (!has_deadline_) return;
    if ((++deadline_ticks_ & 0x3f) != 0) return;
    check_deadline_now();
  }

  void check_deadline_now() {
    if (has_deadline_ && Clock::now() > deadline_) {
      throw ResourceExhausted(stage_, ResourceExhausted::Kind::kDeadline);
    }
  }

  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::uint64_t max_states_ = ~std::uint64_t{0};
  std::uint64_t states_used_ = 0;
  std::uint32_t deadline_ticks_ = 0;
  Stage stage_ = Stage::kOther;
  StageScope* top_ = nullptr;
  QueryProfile profile_;
};

/// RAII stage marker: while alive, charges against `budget` are attributed
/// to `stage`, and the scope's *exclusive* wall time (elapsed minus nested
/// scopes) is added to the stage's nanos — so summing stage nanos over a
/// profile approximates the total governed wall time without double
/// counting. Null budget is a no-op. Entering a scope also checks the
/// deadline, so an expired budget trips at the next stage boundary even if
/// the previous stage never charged.
class StageScope {
 public:
  StageScope(Budget* budget, Stage stage) : budget_(budget), stage_(stage) {
    if (!budget_) return;
    budget_->check_deadline_now();  // before any mutation: throw = clean
    parent_ = budget_->top_;
    prev_stage_ = budget_->stage_;
    budget_->top_ = this;
    budget_->stage_ = stage_;
    budget_->profile_[stage_].calls += 1;
    start_ = Budget::Clock::now();
  }

  ~StageScope() {
    if (!budget_) return;
    const auto elapsed = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Budget::Clock::now() - start_)
            .count());
    budget_->profile_[stage_].nanos += elapsed - child_nanos_;
    if (parent_) parent_->child_nanos_ += elapsed;
    budget_->top_ = parent_;
    budget_->stage_ = prev_stage_;
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  Budget* budget_;
  Stage stage_;
  Stage prev_stage_ = Stage::kOther;
  StageScope* parent_ = nullptr;
  Budget::Clock::time_point start_{};
  std::uint64_t child_nanos_ = 0;
};

/// Null-safe helpers for kernels that receive `Budget* budget = nullptr`.
inline void budget_charge(Budget* budget, std::uint64_t states = 1) {
  if (budget) budget->charge(states);
}
inline void budget_tick(Budget* budget) {
  if (budget) budget->tick();
}
inline void budget_note_frontier(Budget* budget, std::uint64_t size) {
  if (budget) budget->note_frontier(size);
}

}  // namespace rlv

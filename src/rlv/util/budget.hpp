#pragma once

// Resource governance for the expensive decision-procedure kernels. The
// paper's checks are PSPACE-complete (Thm 4.5) and the automaton-flavored
// relative-safety path goes through rank-based Büchi complementation, which
// is exponential — so every construction that can blow up (determinize,
// complement, translate, product, inclusion) accepts an optional Budget:
//
//   * a wall-clock deadline and a cap on constructed states/configs;
//   * per-stage observability: calls, states built, peak antichain size,
//     and exclusive nanoseconds per pipeline stage (StageScope).
//
// When a limit trips, the kernel raises ResourceExhausted carrying the
// stage that was running; callers (rlv/core/relative.cpp, the query engine)
// surface it as a distinct "resource exhausted" verdict — never a crash or
// a wrong boolean. A null Budget* (the default everywhere) is a no-op, so
// budget-disabled results are identical to unbudgeted execution.
//
// A Budget governs ONE check. charge()/tick()/note_frontier() are safe to
// call concurrently from the worker threads of a parallel kernel (the
// counters are atomic, so the state cap is enforced exactly under
// concurrency); StageScope construction/destruction must stay on the
// coordinating thread, and no worker may charge across a stage boundary.
// The engine creates a fresh Budget per query and merges the profile into
// its cumulative stats afterwards.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rlv {

/// Pipeline stages of the Lemma 4.3/4.4 decision procedures, in pipeline
/// order. kOther collects work done outside any named stage (e.g. a
/// standalone determinize() call).
enum class Stage : std::uint8_t {
  kParse,       // system / formula / property-automaton parsing
  kPreTrim,     // lim(L) construction and pre(L_ω) live-state trimming
  kTranslate,   // LTL → Büchi (GPVW tableau + degeneralization)
  kProduct,     // Büchi intersection (counter construction)
  kInclusion,   // NFA inclusion (subset or antichain)
  kEmptiness,   // Büchi emptiness / lasso extraction
  kComplement,  // rank-based Büchi complementation
  kPetriUnfold, // Petri-net reachability-graph unfolding
  kOther,
};

inline constexpr std::size_t kNumStages = 9;

[[nodiscard]] std::string_view stage_name(Stage stage);

/// Raised by a budget-governed kernel when a limit trips. Carries the stage
/// that was charging when the budget ran out.
class ResourceExhausted : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t { kDeadline, kStates };

  ResourceExhausted(Stage stage, Kind kind);

  [[nodiscard]] Stage stage() const { return stage_; }
  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Stage stage_;
  Kind kind_;
};

/// Per-stage observability counters. `states_built` and `peak_antichain`
/// are atomic because parallel kernels charge them from worker threads;
/// `calls` and `nanos` are only touched by StageScope on the coordinating
/// thread. The copy operations take relaxed snapshots — copy a profile only
/// after the governed kernel has quiesced (the engine copies per-query
/// profiles after the check returns).
struct StageMetrics {
  std::uint64_t calls = 0;                    // StageScope entries
  std::atomic<std::uint64_t> states_built{0}; // states/configs constructed
  std::atomic<std::uint64_t> peak_antichain{0}; // peak antichain/frontier
  std::atomic<std::uint64_t> peak_memory_bytes{0};  // arena + intern storage
  std::uint64_t nanos = 0;                    // exclusive wall time

  StageMetrics() = default;
  StageMetrics(const StageMetrics& o) { *this = o; }
  StageMetrics& operator=(const StageMetrics& o) {
    calls = o.calls;
    states_built.store(o.states_built.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    peak_antichain.store(o.peak_antichain.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    peak_memory_bytes.store(
        o.peak_memory_bytes.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    nanos = o.nanos;
    return *this;
  }

  StageMetrics& operator+=(const StageMetrics& o) {
    calls += o.calls;
    states_built.fetch_add(o.states_built.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    const std::uint64_t other_peak =
        o.peak_antichain.load(std::memory_order_relaxed);
    if (other_peak > peak_antichain.load(std::memory_order_relaxed)) {
      peak_antichain.store(other_peak, std::memory_order_relaxed);
    }
    const std::uint64_t other_mem =
        o.peak_memory_bytes.load(std::memory_order_relaxed);
    if (other_mem > peak_memory_bytes.load(std::memory_order_relaxed)) {
      peak_memory_bytes.store(other_mem, std::memory_order_relaxed);
    }
    nanos += o.nanos;
    return *this;
  }
};

/// One profile per check: the metrics of every stage. Merging profiles sums
/// additive counters and maxes the peaks.
struct QueryProfile {
  std::array<StageMetrics, kNumStages> stages{};

  [[nodiscard]] const StageMetrics& operator[](Stage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] StageMetrics& operator[](Stage s) {
    return stages[static_cast<std::size_t>(s)];
  }

  QueryProfile& operator+=(const QueryProfile& o) {
    for (std::size_t i = 0; i < kNumStages; ++i) stages[i] += o.stages[i];
    return *this;
  }

  [[nodiscard]] std::uint64_t total_nanos() const {
    std::uint64_t total = 0;
    for (const StageMetrics& m : stages) total += m.nanos;
    return total;
  }

  [[nodiscard]] std::uint64_t total_states() const {
    std::uint64_t total = 0;
    for (const StageMetrics& m : stages) total += m.states_built;
    return total;
  }
};

class StageScope;

/// Wall-clock deadline + constructed-state cap, plus the per-stage profile.
/// Default-constructed Budgets are unlimited and only record metrics.
class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  Budget() = default;

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Arms the wall-clock deadline `timeout` from now.
  void set_deadline_in(std::chrono::milliseconds timeout) {
    deadline_ = Clock::now() + timeout;
    has_deadline_ = true;
  }

  /// Caps the total number of states/configs charged across all stages.
  void set_max_states(std::uint64_t max_states) { max_states_ = max_states; }

  /// Records `states` newly constructed states/configs under the current
  /// stage and enforces both limits. Throws ResourceExhausted. Safe to call
  /// concurrently: the cap check rides a single fetch_add, so no two
  /// threads can both observe a total at or below the cap once it is
  /// crossed — budgets stay exact under intra-query parallelism.
  void charge(std::uint64_t states = 1) {
    profile_[stage_].states_built.fetch_add(states,
                                            std::memory_order_relaxed);
    const std::uint64_t used =
        states_used_.fetch_add(states, std::memory_order_relaxed) + states;
    if (used > max_states_) {
      throw ResourceExhausted(stage_, ResourceExhausted::Kind::kStates);
    }
    maybe_check_deadline();
  }

  /// Deadline check only — for inner loops that do work without building
  /// states (e.g. the ranking odometer of the complement construction).
  /// Cheap: consults the clock once every 64 calls (across all threads).
  void tick() { maybe_check_deadline(); }

  /// Updates the peak antichain/frontier size of the current stage
  /// (monotone max, lock-free).
  void note_frontier(std::uint64_t size) {
    note_peak(profile_[stage_].peak_antichain, size);
  }

  /// Updates the peak kernel-memory footprint (arena + intern storage
  /// bytes) of the current stage (monotone max, lock-free). Observability
  /// only — the enforced limits stay the state cap and the deadline.
  void note_memory(std::uint64_t bytes) {
    note_peak(profile_[stage_].peak_memory_bytes, bytes);
  }

  [[nodiscard]] Stage stage() const { return stage_; }
  [[nodiscard]] const QueryProfile& profile() const { return profile_; }
  [[nodiscard]] std::uint64_t states_used() const {
    return states_used_.load(std::memory_order_relaxed);
  }

 private:
  friend class StageScope;

  static void note_peak(std::atomic<std::uint64_t>& peak,
                        std::uint64_t value) {
    std::uint64_t seen = peak.load(std::memory_order_relaxed);
    while (value > seen &&
           !peak.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  void maybe_check_deadline() {
    if (!has_deadline_) return;
    if ((deadline_ticks_.fetch_add(1, std::memory_order_relaxed) & 0x3f) !=
        0x3f) {
      return;
    }
    check_deadline_now();
  }

  void check_deadline_now() {
    if (has_deadline_ && Clock::now() > deadline_) {
      throw ResourceExhausted(stage_, ResourceExhausted::Kind::kDeadline);
    }
  }

  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::uint64_t max_states_ = ~std::uint64_t{0};
  std::atomic<std::uint64_t> states_used_{0};
  std::atomic<std::uint32_t> deadline_ticks_{0};
  // Written only by StageScope on the coordinating thread; parallel kernels
  // never cross a stage boundary while workers are charging.
  Stage stage_ = Stage::kOther;
  StageScope* top_ = nullptr;
  QueryProfile profile_;
};

/// RAII stage marker: while alive, charges against `budget` are attributed
/// to `stage`, and the scope's *exclusive* wall time (elapsed minus nested
/// scopes) is added to the stage's nanos — so summing stage nanos over a
/// profile approximates the total governed wall time without double
/// counting. Null budget is a no-op. Entering a scope also checks the
/// deadline, so an expired budget trips at the next stage boundary even if
/// the previous stage never charged.
class StageScope {
 public:
  StageScope(Budget* budget, Stage stage) : budget_(budget), stage_(stage) {
    if (!budget_) return;
    budget_->check_deadline_now();  // before any mutation: throw = clean
    parent_ = budget_->top_;
    prev_stage_ = budget_->stage_;
    budget_->top_ = this;
    budget_->stage_ = stage_;
    budget_->profile_[stage_].calls += 1;
    start_ = Budget::Clock::now();
  }

  ~StageScope() {
    if (!budget_) return;
    const auto elapsed = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Budget::Clock::now() - start_)
            .count());
    budget_->profile_[stage_].nanos += elapsed - child_nanos_;
    if (parent_) parent_->child_nanos_ += elapsed;
    budget_->top_ = parent_;
    budget_->stage_ = prev_stage_;
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  Budget* budget_;
  Stage stage_;
  Stage prev_stage_ = Stage::kOther;
  StageScope* parent_ = nullptr;
  Budget::Clock::time_point start_{};
  std::uint64_t child_nanos_ = 0;
};

/// Null-safe helpers for kernels that receive `Budget* budget = nullptr`.
inline void budget_charge(Budget* budget, std::uint64_t states = 1) {
  if (budget) budget->charge(states);
}
inline void budget_tick(Budget* budget) {
  if (budget) budget->tick();
}
inline void budget_note_frontier(Budget* budget, std::uint64_t size) {
  if (budget) budget->note_frontier(size);
}
inline void budget_note_memory(Budget* budget, std::uint64_t bytes) {
  if (budget) budget->note_memory(bytes);
}

}  // namespace rlv

#pragma once

// Deterministic random number generation for tests, benchmarks, and workload
// generators. SplitMix64 is small, fast, and reproducible across platforms;
// we deliberately avoid std::mt19937 distribution differences by implementing
// bounded sampling ourselves.

#include <cstdint>

namespace rlv {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64).
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). `bound` must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift mapping on the top 32 bits; bias is negligible for the
    // bounds used in this project (all far below 2^32).
    return (static_cast<std::uint64_t>(next_u64() >> 32) * bound) >> 32;
  }

  /// Bernoulli draw with probability `num / den`.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return next_below(den) < num;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace rlv

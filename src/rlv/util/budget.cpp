#include "rlv/util/budget.hpp"

namespace rlv {

std::string_view stage_name(Stage stage) {
  switch (stage) {
    case Stage::kParse:
      return "parse";
    case Stage::kPreTrim:
      return "pre_trim";
    case Stage::kTranslate:
      return "translate";
    case Stage::kProduct:
      return "product";
    case Stage::kInclusion:
      return "inclusion";
    case Stage::kEmptiness:
      return "emptiness";
    case Stage::kComplement:
      return "complement";
    case Stage::kPetriUnfold:
      return "petri_unfold";
    case Stage::kOther:
      return "other";
  }
  return "?";
}

namespace {

std::string exhausted_message(Stage stage, ResourceExhausted::Kind kind) {
  std::string message = "resource exhausted (";
  message += kind == ResourceExhausted::Kind::kDeadline ? "deadline"
                                                        : "state cap";
  message += ") in stage ";
  message += stage_name(stage);
  return message;
}

}  // namespace

ResourceExhausted::ResourceExhausted(Stage stage, Kind kind)
    : std::runtime_error(exhausted_message(stage, kind)),
      stage_(stage),
      kind_(kind) {}

}  // namespace rlv

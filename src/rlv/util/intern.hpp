#pragma once

// Open-addressing interning structures for the explicit-state kernels.
//
// The subset/antichain inclusion engines and the on-the-fly product spend
// their time asking "have I seen this state set / tuple before?". The
// previous answer was node-based std::unordered_map buckets holding owned
// std::vector payloads — one heap allocation per key plus a linear scan per
// probe. Here instead:
//
//   * IdTable — a flat open-addressing (linear-probe) table that maps
//     caller-computed hashes to dense 32-bit ids. Keys live in the caller's
//     own contiguous storage; the table stores only ids, so growth is a
//     single flat rehash and probes touch one cache line each.
//   * BitsetInterner — interns fixed-width bitsets (right-hand state sets of
//     a subset construction) into one contiguous word array, handing out
//     dense ids. Configurations then carry a 4-byte id instead of an owned
//     bitset, and equality is id comparison.
//   * U64KeySet — a flat hash set of 64-bit keys (e.g. packed
//     (left state, interned right id) pairs) for visited-set dedup.
//
// None of these are thread-safe; parallel kernels keep per-worker or
// lock-striped structures (see lang/inclusion.cpp).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rlv {

/// Flat linear-probe table of dense 32-bit ids. The caller owns key storage
/// and supplies `eq(id)` (does stored id's key equal the probe key?) and,
/// on growth, `hash_of(id)` (recompute a stored key's hash).
class IdTable {
 public:
  static constexpr std::uint32_t kNoId = 0xffffffffU;

  IdTable() { slots_.assign(kInitialSlots, kNoId); }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t bytes() const {
    return slots_.size() * sizeof(std::uint32_t);
  }

  /// Finds the id whose key matches, or kNoId.
  template <typename Eq>
  [[nodiscard]] std::uint32_t find(std::size_t hash, Eq&& eq) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      const std::uint32_t id = slots_[i];
      if (id == kNoId) return kNoId;
      if (eq(id)) return id;
    }
  }

  /// Inserts `id` under `hash`. The key must not already be present.
  template <typename HashOf>
  void insert(std::size_t hash, std::uint32_t id, HashOf&& hash_of) {
    if ((count_ + 1) * 10 >= slots_.size() * 7) grow(hash_of);
    insert_no_grow(hash, id);
    ++count_;
  }

 private:
  static constexpr std::size_t kInitialSlots = 64;  // power of two

  void insert_no_grow(std::size_t hash, std::uint32_t id) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash & mask;
    while (slots_[i] != kNoId) i = (i + 1) & mask;
    slots_[i] = id;
  }

  template <typename HashOf>
  void grow(HashOf&& hash_of) {
    std::vector<std::uint32_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kNoId);
    for (const std::uint32_t id : old) {
      if (id != kNoId) insert_no_grow(hash_of(id), id);
    }
  }

  std::vector<std::uint32_t> slots_;
  std::size_t count_ = 0;
};

inline std::size_t hash_words(const std::uint64_t* words, std::size_t n) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ n;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= words[i] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

/// Interns fixed-width bitsets (`bits` bits each) into contiguous storage.
/// Dense ids are handed out in first-seen order, so callers can use them to
/// index side tables. Storage never shrinks and never moves ids.
class BitsetInterner {
 public:
  explicit BitsetInterner(std::size_t bits)
      : bits_(bits), words_per_((bits + 63) / 64) {}

  [[nodiscard]] std::size_t bits() const { return bits_; }
  [[nodiscard]] std::size_t words_per() const { return words_per_; }
  [[nodiscard]] std::size_t size() const { return table_.size(); }

  /// Word block of an interned id. Invalidated by the next intern() (the
  /// backing vector may grow) — copy out before stepping.
  [[nodiscard]] const std::uint64_t* words(std::uint32_t id) const {
    return storage_.data() + static_cast<std::size_t>(id) * words_per_;
  }

  /// Looks up the set held in `w` without inserting. Returns the id, or
  /// IdTable::kNoId when the set has never been interned.
  [[nodiscard]] std::uint32_t find(const std::uint64_t* w) const {
    const std::size_t h = hash_words(w, words_per_);
    return table_.find(h, [&](std::uint32_t id) {
      return equal_words(words(id), w);
    });
  }

  /// Interns the set held in `w` (words_per() words). Returns (id, fresh).
  std::pair<std::uint32_t, bool> intern(const std::uint64_t* w) {
    const std::size_t h = hash_words(w, words_per_);
    const std::uint32_t found = table_.find(h, [&](std::uint32_t id) {
      return equal_words(words(id), w);
    });
    if (found != IdTable::kNoId) return {found, false};
    const auto id = static_cast<std::uint32_t>(size());
    storage_.insert(storage_.end(), w, w + words_per_);
    table_.insert(h, id,
                  [&](std::uint32_t x) { return hash_words(words(x), words_per_); });
    return {id, true};
  }

  /// True when set `a` ⊆ set `b`.
  [[nodiscard]] bool is_subset(std::uint32_t a, std::uint32_t b) const {
    const std::uint64_t* wa = words(a);
    const std::uint64_t* wb = words(b);
    for (std::size_t i = 0; i < words_per_; ++i) {
      if ((wa[i] & ~wb[i]) != 0) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t bytes() const {
    return storage_.capacity() * sizeof(std::uint64_t) + table_.bytes();
  }

 private:
  [[nodiscard]] bool equal_words(const std::uint64_t* a,
                                 const std::uint64_t* b) const {
    for (std::size_t i = 0; i < words_per_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

  std::size_t bits_;
  std::size_t words_per_;
  std::vector<std::uint64_t> storage_;  // size() * words_per_
  IdTable table_;
};

/// Flat open-addressing set of 64-bit keys (visited-set dedup). Keys are
/// stored inline, ids are implicit.
class U64KeySet {
 public:
  /// Inserts `key`; returns true when it was new. The all-ones key is
  /// reserved as the empty sentinel and must not be inserted.
  bool insert(std::uint64_t key) {
    const std::size_t h = hash_u64(key);
    const std::uint32_t found =
        table_.find(h, [&](std::uint32_t id) { return keys_[id] == key; });
    if (found != IdTable::kNoId) return false;
    const auto id = static_cast<std::uint32_t>(keys_.size());
    keys_.push_back(key);
    table_.insert(h, id,
                  [&](std::uint32_t x) { return hash_u64(keys_[x]); });
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t key) const {
    return table_.find(hash_u64(key), [&](std::uint32_t id) {
             return keys_[id] == key;
           }) != IdTable::kNoId;
  }

  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] std::size_t bytes() const {
    return keys_.capacity() * sizeof(std::uint64_t) + table_.bytes();
  }

 private:
  static std::size_t hash_u64(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }

  std::vector<std::uint64_t> keys_;
  IdTable table_;
};

}  // namespace rlv

#pragma once

// Dynamic bitset tuned for automata algorithms: fixed size chosen at
// construction, word-level boolean operations, subset tests, and iteration
// over set bits. Used for state sets in subset constructions, antichains,
// and SCC bookkeeping.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace rlv {

class DynBitset {
 public:
  DynBitset() = default;

  /// Creates a bitset holding `size` bits, all clear.
  explicit DynBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1U;
  }

  void set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }

  void reset(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void assign(std::size_t i, bool value) {
    if (value) {
      set(i);
    } else {
      reset(i);
    }
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] bool any() const {
    for (auto w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  [[nodiscard]] bool none() const { return !any(); }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  DynBitset& operator|=(const DynBitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  DynBitset& operator&=(const DynBitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  /// Removes every bit that is set in `other`.
  DynBitset& operator-=(const DynBitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= ~other.words_[i];
    }
    return *this;
  }

  /// True when this set is a subset of `other`.
  [[nodiscard]] bool is_subset_of(const DynBitset& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    }
    return true;
  }

  /// True when the two sets share at least one element.
  [[nodiscard]] bool intersects(const DynBitset& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  friend bool operator==(const DynBitset& a, const DynBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Lexicographic order on the word representation; gives a total order
  /// usable as a map key.
  friend bool operator<(const DynBitset& a, const DynBitset& b) {
    if (a.size_ != b.size_) return a.size_ < b.size_;
    return a.words_ < b.words_;
  }

  /// Calls `fn(index)` for every set bit in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// True when `fn(index)` holds for some set bit; stops at the first hit
  /// (unlike for_each, which always visits every bit).
  template <typename Fn>
  [[nodiscard]] bool any_of(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        if (fn(wi * 64 + static_cast<std::size_t>(bit))) return true;
        w &= w - 1;
      }
    }
    return false;
  }

  /// Raw word access for kernels that intern or step sets out-of-place
  /// (see util/intern.hpp). Bits past size() are zero by construction.
  [[nodiscard]] const std::uint64_t* words_data() const {
    return words_.data();
  }
  [[nodiscard]] std::size_t num_words() const { return words_.size(); }

  /// Rebuilds a bitset from a raw word block (num-words words for `bits`
  /// bits); padding bits in the last word must be zero.
  static DynBitset from_words(std::size_t bits, const std::uint64_t* w) {
    DynBitset b(bits);
    for (std::size_t i = 0; i < b.words_.size(); ++i) b.words_[i] = w[i];
    return b;
  }

  /// Index of the lowest set bit, or `size()` when empty.
  [[nodiscard]] std::size_t first() const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      if (words_[wi] != 0) {
        return wi * 64 + static_cast<std::size_t>(std::countr_zero(words_[wi]));
      }
    }
    return size_;
  }

  [[nodiscard]] std::size_t hash() const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ size_;
    for (auto w : words_) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

struct DynBitsetHash {
  std::size_t operator()(const DynBitset& b) const { return b.hash(); }
};

}  // namespace rlv

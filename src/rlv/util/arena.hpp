#pragma once

// Per-query bump arena for the hot decision-procedure kernels. The subset /
// antichain inclusion searches and the on-the-fly Büchi product allocate a
// large number of small, identically-shaped objects (witness path nodes,
// interned bitset payloads, successor-edge blocks) whose lifetimes all end
// together at verdict or budget-exhaustion time. Routing them through the
// global allocator costs one malloc/free round-trip per object plus pointer
// scatter; the arena hands out pointers by bumping a cursor through
// geometrically-growing chunks and frees everything wholesale when the
// owning kernel object is destroyed.
//
// Restrictions, by design:
//   * only trivially-destructible payloads (create<T> enforces this) — the
//     arena never runs destructors;
//   * not thread-safe — parallel kernels own one arena per worker;
//   * pointers stay valid until reset()/destruction (chunks never move).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace rlv {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{16} << 10;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : next_chunk_bytes_(first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Returns `bytes` bytes aligned to `align` (a power of two). The memory
  /// is uninitialized and owned by the arena.
  void* allocate(std::size_t bytes, std::size_t align) {
    std::size_t cursor = (cursor_ + (align - 1)) & ~(align - 1);
    if (chunks_.empty() || cursor + bytes > chunks_.back().size) {
      grow(bytes + align);
      cursor = (cursor_ + (align - 1)) & ~(align - 1);
    }
    std::byte* p = chunks_.back().data.get() + cursor;
    cursor_ = cursor + bytes;
    allocated_ += bytes;
    return p;
  }

  /// Constructs a trivially-destructible T in the arena.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T{std::forward<Args>(args)...};
  }

  /// Uninitialized array of `n` trivially-destructible Ts.
  template <typename T>
  T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Copies `n` Ts into the arena and returns the stable block pointer.
  template <typename T>
  T* copy_array(const T* src, std::size_t n) {
    T* dst = allocate_array<T>(n);
    for (std::size_t i = 0; i < n; ++i) ::new (dst + i) T(src[i]);
    return dst;
  }

  /// Drops every allocation but keeps the largest chunk for reuse, so a
  /// kernel that runs many searches back to back stops growing once warm.
  void reset() {
    if (chunks_.size() > 1) {
      Chunk last = std::move(chunks_.back());
      chunks_.clear();
      chunks_.push_back(std::move(last));
    }
    cursor_ = 0;
    allocated_ = 0;
  }

  /// Total bytes handed out since construction/reset (live bytes: nothing
  /// is ever returned individually).
  [[nodiscard]] std::size_t bytes_allocated() const { return allocated_; }

  /// Total chunk capacity owned by the arena — the number that matters for
  /// peak-RSS accounting.
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    std::size_t size = next_chunk_bytes_;
    while (size < at_least) size *= 2;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    // Geometric growth keeps the chunk count logarithmic in total bytes.
    next_chunk_bytes_ = size * 2;
    cursor_ = 0;
  }

  std::vector<Chunk> chunks_;
  std::size_t cursor_ = 0;       // within chunks_.back()
  std::size_t allocated_ = 0;
  std::size_t next_chunk_bytes_;
};

}  // namespace rlv

#include "rlv/util/scc.hpp"

#include <algorithm>

namespace rlv {

SccResult tarjan_scc(const std::vector<std::vector<std::uint32_t>>& succ) {
  const std::uint32_t n = static_cast<std::uint32_t>(succ.size());
  constexpr std::uint32_t kUndef = 0xffffffffU;

  SccResult result;
  result.component.assign(n, kUndef);

  std::vector<std::uint32_t> index(n, kUndef);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> stack;
  stack.reserve(n);

  struct Frame {
    std::uint32_t node;
    std::uint32_t edge;  // next successor index to visit
  };
  std::vector<Frame> call_stack;
  std::uint32_t next_index = 0;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUndef) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::uint32_t v = frame.node;
      if (frame.edge < succ[v].size()) {
        const std::uint32_t w = succ[v][frame.edge++];
        if (index[w] == kUndef) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          const std::uint32_t comp = result.count++;
          std::uint32_t w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = comp;
          } while (w != v);
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const std::uint32_t parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }

  // Tarjan emits components in reverse topological order already.
  result.nontrivial.assign(result.count, false);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (const std::uint32_t w : succ[v]) {
      if (result.component[v] == result.component[w]) {
        result.nontrivial[result.component[v]] = true;
      }
    }
  }
  return result;
}

}  // namespace rlv

#pragma once

// Small hashing helpers: combine, and hashers for pairs / integer vectors,
// used as keys in the many memoizing constructions (subset construction,
// product automata, tableau states).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace rlv {

inline std::size_t hash_combine(std::size_t seed, std::size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    return hash_combine(std::hash<A>{}(p.first), std::hash<B>{}(p.second));
  }
};

struct VecHash {
  template <typename T>
  std::size_t operator()(const std::vector<T>& v) const {
    std::size_t h = v.size();
    for (const auto& x : v) h = hash_combine(h, std::hash<T>{}(x));
    return h;
  }
};

}  // namespace rlv

#include "rlv/core/topology.hpp"

#include <numeric>

#include "rlv/lang/ops.hpp"
#include "rlv/lang/quotient.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"

namespace rlv {

namespace {

Symbol letter_at(const Lasso& x, std::size_t i) {
  if (i < x.prefix.size()) return x.prefix[i];
  return x.period[(i - x.prefix.size()) % x.period.size()];
}

}  // namespace

std::optional<std::size_t> common_prefix_length(const Lasso& x,
                                                const Lasso& y) {
  // Two ultimately periodic words that agree on max(|u1|,|u2|) +
  // lcm(|v1|,|v2|) letters are equal.
  const std::size_t lcm = std::lcm(x.period.size(), y.period.size());
  const std::size_t bound =
      std::max(x.prefix.size(), y.prefix.size()) + lcm;
  for (std::size_t i = 0; i < bound; ++i) {
    if (letter_at(x, i) != letter_at(y, i)) return i;
  }
  return std::nullopt;  // equal words
}

double cantor_distance(const Lasso& x, const Lasso& y) {
  const auto common = common_prefix_length(x, y);
  if (!common) return 0.0;
  return 1.0 / (static_cast<double>(*common) + 1.0);
}

bool is_dense_in(const Buchi& property, const Buchi& system) {
  return relative_liveness(system, property).holds;
}

bool is_closed_in(const Buchi& property, const Buchi& system) {
  return relative_safety(system, property).holds;
}

bool relative_liveness_by_definition(const Buchi& system,
                                     const Buchi& property,
                                     std::size_t max_prefix_len) {
  // Enumerate pre(L_ω) up to the given length and check Definition 4.1:
  // every prefix extends, within L_ω, to a word of P.
  const Nfa pre = prefix_nfa(system);
  const Buchi both = intersect_buchi(system, property);
  for (const Word& w : enumerate_words(pre, max_prefix_len)) {
    // ∃x ∈ cont(w, L_ω): wx ∈ P  ⟺  the product automaton accepts some
    // ω-word after reading w.
    const Nfa advanced = left_quotient(both.structure(), w);
    const Buchi advanced_buchi = Buchi::from_structure(advanced);
    if (omega_empty(advanced_buchi)) return false;
  }
  return true;
}

}  // namespace rlv

#pragma once

// Theorem 5.1: if P is a relative liveness property of a limit-closed
// finite-state behavior set L_ω, then there is a finite-state system A with
// language L_ω all of whose strongly fair computations satisfy P. The
// construction is the proof's: take a reduced Büchi automaton for L_ω ∩ P
// and erase its acceptance condition.
//
// The synthesized system may carry more state than the original (the
// Section 5 example: {a,b}^ω and ◇(a ∧ Xa) — fairness alone on the minimal
// automaton does not suffice; the product adds the required memory).

#include "rlv/ltl/ast.hpp"
#include "rlv/omega/buchi.hpp"

namespace rlv {

struct FairImplementation {
  /// The synthesized system: a transition system without acceptance
  /// condition, represented as an all-accepting Büchi automaton. Its
  /// ω-language equals the input system's; under strong transition
  /// fairness all its runs satisfy the property.
  Buchi system;
  /// Reduced Büchi automaton for L_ω ∩ P that the system was derived from
  /// (its acceptance states are the ones fairness forces runs through).
  Buchi reduced_intersection;
};

/// Synthesizes the Theorem 5.1 implementation. `system` must be limit
/// closed (e.g. all-accepting and trimmed — a transition system); the
/// property must be relative liveness of it for the guarantee to hold
/// (callers check via relative_liveness()).
[[nodiscard]] FairImplementation synthesize_fair_implementation(
    const Buchi& system, const Buchi& property);

[[nodiscard]] FairImplementation synthesize_fair_implementation(
    const Buchi& system, Formula f, const Labeling& lambda);

/// Validates that the synthesized system has the same ω-language as the
/// original. Both must be limit-closed all-accepting systems, for which
/// ω-language equality reduces to prefix-language equality.
[[nodiscard]] bool same_limit_closed_language(const Buchi& a, const Buchi& b);

}  // namespace rlv

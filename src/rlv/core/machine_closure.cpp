#include "rlv/core/machine_closure.hpp"

#include "rlv/omega/live.hpp"

namespace rlv {

bool is_machine_closed(const Buchi& system, const Buchi& live_part,
                       InclusionAlgorithm algorithm) {
  return is_included(prefix_nfa(system), prefix_nfa(live_part), algorithm);
}

}  // namespace rlv

#include "rlv/core/fair_synthesis.hpp"

#include "rlv/lang/inclusion.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"

namespace rlv {

FairImplementation synthesize_fair_implementation(const Buchi& system,
                                                  const Buchi& property) {
  // Reduced automaton for L_ω ∩ P: trim to reachable live states.
  Buchi reduced = trim_omega(intersect_buchi(system, property));

  // Erase the acceptance condition: all states accepting.
  Buchi erased(reduced.alphabet());
  for (State s = 0; s < reduced.num_states(); ++s) erased.add_state(true);
  for (State s = 0; s < reduced.num_states(); ++s) {
    for (const auto& t : reduced.out(s)) {
      erased.add_transition(s, t.symbol, t.target);
    }
  }
  for (const State s : reduced.initial()) erased.set_initial(s);

  return {std::move(erased), std::move(reduced)};
}

FairImplementation synthesize_fair_implementation(const Buchi& system,
                                                  Formula f,
                                                  const Labeling& lambda) {
  return synthesize_fair_implementation(system, translate_ltl(f, lambda));
}

bool same_limit_closed_language(const Buchi& a, const Buchi& b) {
  return nfa_equivalent(prefix_nfa(a), prefix_nfa(b));
}

}  // namespace rlv

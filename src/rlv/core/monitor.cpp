#include "rlv/core/monitor.hpp"

namespace rlv {

DoomMonitor::DoomMonitor(const Buchi& system, const Buchi& property)
    : DoomMonitor(std::make_shared<const monitor::MonitorAutomaton>(
          system, property)) {}

DoomMonitor::DoomMonitor(const Buchi& system, Formula f,
                         const Labeling& lambda)
    : DoomMonitor(std::make_shared<const monitor::MonitorAutomaton>(
          system, f, lambda)) {}

DoomMonitor::DoomMonitor(
    std::shared_ptr<const monitor::MonitorAutomaton> automaton)
    : automaton_(std::move(automaton)), state_(automaton_->initial()) {}

MonitorVerdict DoomMonitor::run(const Word& trace, std::size_t* first_doom) {
  if (first_doom) *first_doom = trace.size();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const MonitorVerdict before = verdict();
    const MonitorVerdict after = step(trace[i]);
    if (first_doom && before == MonitorVerdict::kSatisfiable &&
        after != MonitorVerdict::kSatisfiable) {
      *first_doom = i;
    }
  }
  return verdict();
}

}  // namespace rlv

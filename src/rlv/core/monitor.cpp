#include "rlv/core/monitor.hpp"

#include <algorithm>
#include <vector>

#include "rlv/lang/ops.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"

namespace rlv {

DoomMonitor::DoomMonitor(const Buchi& system, const Buchi& property)
    : satisfiable_((require_same_alphabet(system.alphabet(),
                                          property.alphabet(), "DoomMonitor"),
                    determinize(prefix_nfa(intersect_buchi(system, property))))),
      system_pre_(determinize(prefix_nfa(system))) {
  init();
}

DoomMonitor::DoomMonitor(const Buchi& system, Formula f,
                         const Labeling& lambda)
    : DoomMonitor(system, translate_ltl(f, lambda)) {}

void DoomMonitor::init() {
  sat_state_ = satisfiable_.initial();
  sys_state_ = system_pre_.initial();
  position_ = 0;
  // An empty system (or empty intersection) dooms/ejects the empty trace
  // already: a prefix automaton with an empty language has a non-accepting
  // initial state.
  if (sys_state_ == kNoState || !system_pre_.is_accepting(sys_state_)) {
    verdict_ = MonitorVerdict::kLeftSystem;
  } else if (sat_state_ == kNoState ||
             !satisfiable_.is_accepting(sat_state_)) {
    verdict_ = MonitorVerdict::kDoomed;
  } else {
    verdict_ = MonitorVerdict::kSatisfiable;
  }
}

void DoomMonitor::reset() { init(); }

MonitorVerdict DoomMonitor::step(Symbol a) {
  ++position_;
  if (verdict_ == MonitorVerdict::kLeftSystem) return verdict_;

  if (sys_state_ != kNoState) sys_state_ = system_pre_.next(sys_state_, a);
  if (sys_state_ == kNoState) {
    verdict_ = MonitorVerdict::kLeftSystem;
    return verdict_;
  }
  if (verdict_ == MonitorVerdict::kDoomed) return verdict_;

  if (sat_state_ != kNoState) sat_state_ = satisfiable_.next(sat_state_, a);
  if (sat_state_ == kNoState) {
    verdict_ = MonitorVerdict::kDoomed;
  }
  return verdict_;
}

std::optional<Word> DoomMonitor::shortest_doomed_prefix() const {
  // BFS over pairs (system_pre state, satisfiable state-or-dead). A pair
  // with a live system state and a dead satisfiable state is a doom.
  const std::size_t sigma = system_pre_.alphabet()->size();
  const std::size_t n_sys = system_pre_.num_states();
  const std::size_t n_sat = satisfiable_.num_states() + 1;  // +1 = dead
  const std::size_t dead = n_sat - 1;

  auto encode = [&](State sys, std::size_t sat) { return sys * n_sat + sat; };

  std::vector<std::pair<std::uint32_t, Symbol>> parent(
      n_sys * n_sat, {0xffffffffU, 0});
  std::vector<bool> seen(n_sys * n_sat, false);
  std::vector<std::uint32_t> queue;

  if (system_pre_.initial() == kNoState ||
      !system_pre_.is_accepting(system_pre_.initial())) {
    return std::nullopt;  // the system has no behaviors at all
  }
  // The satisfiable automaton is all-accepting except when its language is
  // empty (a single rejecting state): then ε itself is doomed.
  const std::size_t sat0 =
      (satisfiable_.initial() == kNoState ||
       !satisfiable_.is_accepting(satisfiable_.initial()))
          ? dead
          : satisfiable_.initial();
  const std::uint32_t start =
      static_cast<std::uint32_t>(encode(system_pre_.initial(), sat0));
  seen[start] = true;
  queue.push_back(start);

  auto build_word = [&](std::uint32_t node) {
    Word w;
    while (node != start) {
      w.push_back(parent[node].second);
      node = parent[node].first;
    }
    std::reverse(w.begin(), w.end());
    return w;
  };

  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t node = queue[head];
    const State sys = static_cast<State>(node / n_sat);
    const std::size_t sat = node % n_sat;
    if (sat == dead) return build_word(node);

    for (Symbol a = 0; a < sigma; ++a) {
      const State nsys = system_pre_.next(sys, a);
      if (nsys == kNoState) continue;  // left the system: not a doom
      const State raw = satisfiable_.next(static_cast<State>(sat), a);
      const std::size_t nsat = (raw == kNoState) ? dead : raw;
      const std::uint32_t next =
          static_cast<std::uint32_t>(encode(nsys, nsat));
      if (seen[next]) continue;
      seen[next] = true;
      parent[next] = {node, a};
      queue.push_back(next);
    }
  }
  return std::nullopt;
}

MonitorVerdict DoomMonitor::run(const Word& trace, std::size_t* first_doom) {
  if (first_doom) *first_doom = trace.size();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const MonitorVerdict before = verdict_;
    const MonitorVerdict after = step(trace[i]);
    if (first_doom && before == MonitorVerdict::kSatisfiable &&
        after != MonitorVerdict::kSatisfiable) {
      *first_doom = i;
    }
  }
  return verdict_;
}

}  // namespace rlv

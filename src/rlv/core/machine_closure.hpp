#pragma once

// Machine closure (Definition 4.6, after Abadi–Lamport / Alur–Henzinger):
// (L_ω, Λ) with Λ ⊆ L_ω is machine closed iff pre(L_ω) ⊆ pre(Λ). The paper
// notes that P is a relative liveness property of L_ω exactly when
// (L_ω, P ∩ L_ω) is machine closed — validated as a property test.

#include "rlv/lang/inclusion.hpp"
#include "rlv/omega/buchi.hpp"

namespace rlv {

/// Is (L_ω(system), L_ω(live_part)) a machine closed live structure?
/// `live_part`'s language must be a subset of `system`'s (asserted only in
/// debug sampling by the caller; not enforced here).
[[nodiscard]] bool is_machine_closed(
    const Buchi& system, const Buchi& live_part,
    InclusionAlgorithm algorithm = InclusionAlgorithm::kAntichain);

}  // namespace rlv

#pragma once

// Relative liveness and relative safety (Definitions 4.1/4.2), decided via
// the automata-theoretic characterizations of Lemmas 4.3/4.4:
//
//   P relative liveness of L_ω   ⟺   pre(L_ω) = pre(L_ω ∩ P)
//   P relative safety  of L_ω   ⟺   L_ω ∩ lim(pre(L_ω ∩ P)) ⊆ P
//
// pre(·) of a Büchi automaton is an NFA (live-state trimming); the liveness
// check is an NFA inclusion (only ⊆ needs checking — ⊇ always holds); the
// safety check is a Büchi emptiness after intersecting with ¬P. Properties
// can be given as Büchi automata or as PLTL formulas (Theorem 4.5 covers
// both); the formula route avoids Büchi complementation.
//
// Also provides classical satisfaction L_ω ⊆ P and the Theorem 4.7
// decomposition (satisfaction ⟺ relative liveness ∧ relative safety).
//
// All entry points take an optional Budget. When the budget trips inside a
// kernel, every entry point — including satisfies() — catches the
// ResourceExhausted and returns a result with `exhausted` set to the
// tripping stage and `holds` left false. A result with `exhausted` engaged
// carries NO verdict and must not be read as a boolean answer.
//
// The safety and satisfaction checks explore their Büchi products on the
// fly (find_accepting_lasso_product / product_empty), so they only pay for
// the product states the nested DFS actually visits. The liveness check
// accepts an `inclusion_threads` knob that runs the underlying NFA
// inclusion with the sharded parallel search (see lang/inclusion.hpp for
// the determinism contract: identical verdicts, revalidate-don't-compare
// counterexamples).

#include <optional>

#include "rlv/lang/inclusion.hpp"
#include "rlv/ltl/ast.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/omega/emptiness.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {

struct RelativeLivenessResult {
  bool holds = false;
  /// When violated: a prefix w ∈ pre(L_ω) with no continuation into P.
  std::optional<Word> violating_prefix;
  /// Set when the budget tripped; `holds` is then meaningless.
  std::optional<Stage> exhausted;
};

struct RelativeSafetyResult {
  bool holds = false;
  /// When violated: a behavior x ∈ L_ω with x ∉ P all of whose prefixes can
  /// still be extended into L_ω ∩ P.
  std::optional<Lasso> counterexample;
  /// Set when the budget tripped; `holds` is then meaningless.
  std::optional<Stage> exhausted;
};

/// Is L_ω(property) a relative liveness property of L_ω(system)? (Def 4.1)
/// `inclusion_threads > 1` parallelizes the inclusion search.
[[nodiscard]] RelativeLivenessResult relative_liveness(
    const Buchi& system, const Buchi& property,
    InclusionAlgorithm algorithm = InclusionAlgorithm::kAntichain,
    Budget* budget = nullptr, std::size_t inclusion_threads = 1);

/// Formula flavor: the property is { x | x,λ ⊨ f }.
[[nodiscard]] RelativeLivenessResult relative_liveness(
    const Buchi& system, Formula f, const Labeling& lambda,
    InclusionAlgorithm algorithm = InclusionAlgorithm::kAntichain,
    Budget* budget = nullptr, std::size_t inclusion_threads = 1);

/// Is L_ω(property) a relative safety property of L_ω(system)? (Def 4.2)
/// The automaton flavor complements `property` with the rank-based
/// construction — exponential; prefer the formula flavor when possible, and
/// pass a Budget when you cannot.
[[nodiscard]] RelativeSafetyResult relative_safety(const Buchi& system,
                                                   const Buchi& property,
                                                   Budget* budget = nullptr);

[[nodiscard]] RelativeSafetyResult relative_safety(const Buchi& system,
                                                   Formula f,
                                                   const Labeling& lambda,
                                                   Budget* budget = nullptr);

struct SatisfactionResult {
  bool holds = false;
  /// When violated: a behavior x ∈ L_ω with x ∉ P.
  std::optional<Lasso> counterexample;
  /// Set when the budget tripped; `holds` is then meaningless.
  std::optional<Stage> exhausted;
};

/// Classical satisfaction L_ω(system) ⊆ P (Definition 3.2), decided as
/// on-the-fly emptiness of L_ω(system) ∩ ¬P; a violation ships the accepted
/// lasso of that product as the counterexample. Like the relative_*
/// functions, a budget trip is reported through `exhausted`, never thrown.
[[nodiscard]] SatisfactionResult satisfies(const Buchi& system,
                                           const Buchi& property,
                                           Budget* budget = nullptr);
[[nodiscard]] SatisfactionResult satisfies(const Buchi& system, Formula f,
                                           const Labeling& lambda,
                                           Budget* budget = nullptr);

}  // namespace rlv

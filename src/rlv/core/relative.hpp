#pragma once

// Relative liveness and relative safety (Definitions 4.1/4.2), decided via
// the automata-theoretic characterizations of Lemmas 4.3/4.4:
//
//   P relative liveness of L_ω   ⟺   pre(L_ω) = pre(L_ω ∩ P)
//   P relative safety  of L_ω   ⟺   L_ω ∩ lim(pre(L_ω ∩ P)) ⊆ P
//
// pre(·) of a Büchi automaton is an NFA (live-state trimming); the liveness
// check is an NFA inclusion (only ⊆ needs checking — ⊇ always holds); the
// safety check is a Büchi emptiness after intersecting with ¬P. Properties
// can be given as Büchi automata or as PLTL formulas (Theorem 4.5 covers
// both); the formula route avoids Büchi complementation.
//
// Also provides classical satisfaction L_ω ⊆ P and the Theorem 4.7
// decomposition (satisfaction ⟺ relative liveness ∧ relative safety).

#include <optional>

#include "rlv/lang/inclusion.hpp"
#include "rlv/ltl/ast.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/omega/emptiness.hpp"

namespace rlv {

struct RelativeLivenessResult {
  bool holds = false;
  /// When violated: a prefix w ∈ pre(L_ω) with no continuation into P.
  std::optional<Word> violating_prefix;
};

struct RelativeSafetyResult {
  bool holds = false;
  /// When violated: a behavior x ∈ L_ω with x ∉ P all of whose prefixes can
  /// still be extended into L_ω ∩ P.
  std::optional<Lasso> counterexample;
};

/// Is L_ω(property) a relative liveness property of L_ω(system)? (Def 4.1)
[[nodiscard]] RelativeLivenessResult relative_liveness(
    const Buchi& system, const Buchi& property,
    InclusionAlgorithm algorithm = InclusionAlgorithm::kAntichain);

/// Formula flavor: the property is { x | x,λ ⊨ f }.
[[nodiscard]] RelativeLivenessResult relative_liveness(
    const Buchi& system, Formula f, const Labeling& lambda,
    InclusionAlgorithm algorithm = InclusionAlgorithm::kAntichain);

/// Is L_ω(property) a relative safety property of L_ω(system)? (Def 4.2)
/// The automaton flavor complements `property` with the rank-based
/// construction — exponential; prefer the formula flavor when possible.
[[nodiscard]] RelativeSafetyResult relative_safety(const Buchi& system,
                                                   const Buchi& property);

[[nodiscard]] RelativeSafetyResult relative_safety(const Buchi& system,
                                                   Formula f,
                                                   const Labeling& lambda);

/// Classical satisfaction L_ω(system) ⊆ P (Definition 3.2).
[[nodiscard]] bool satisfies(const Buchi& system, const Buchi& property);
[[nodiscard]] bool satisfies(const Buchi& system, Formula f,
                             const Labeling& lambda);

}  // namespace rlv

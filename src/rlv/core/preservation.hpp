#pragma once

// The abstraction-based verification pipeline of Sections 6–8:
//
//   1. Compute the abstract behavior lim(h(L)) of a transition system with
//      prefix-closed behavior language L (Definition 6.2).
//   2. Check that the abstract formula η is a relative liveness property of
//      lim(h(L)).
//   3. Decide simplicity of h on L (Definition 6.3).
//   4. If simple (and h(L) has no maximal words), conclude — by Theorem 8.2
//      — that R̄(η) is a relative liveness property of lim(L), without ever
//      model checking the concrete system.
//
// verify_via_abstraction() runs the pipeline and, on request, additionally
// computes the concrete verdict directly so tests can confirm Theorems 8.2
// (simple: transfer is sound), 8.3 (converse always holds), and the Figure-3
// caveat (non-simple: transfer may be wrong).

#include <optional>

#include "rlv/hom/homomorphism.hpp"
#include "rlv/hom/simplicity.hpp"
#include "rlv/lang/nfa.hpp"
#include "rlv/ltl/ast.hpp"
#include "rlv/omega/buchi.hpp"

namespace rlv {

/// λ_hΣΣ' (Definition 7.3): each concrete letter a carries the single
/// proposition named after h(a), or the ε-proposition (kEpsilonAtom) when a
/// is hidden. Target letter names must not collide with kEpsilonAtom.
[[nodiscard]] Labeling hom_labeling(const Homomorphism& h);

/// Does L(nfa) contain maximal words (words that no other word of L
/// properly extends)? Theorems 8.2/8.3 require h(L) without maximal words;
/// extend_maximal_words() (hom/image.hpp) repairs violations.
[[nodiscard]] bool has_maximal_words(const Nfa& nfa);

/// Can the system diverge under h — i.e. does trim(system) contain a cycle
/// of hidden-only transitions, so some behavior of lim(L) carries only
/// finitely many visible letters? Divergence is NOT excluded by "h(L) has
/// no maximal words" (the finite-word image can stay extendable while an
/// all-hidden infinite continuation exists), and it voids the refutation
/// direction of the transfer: an all-ε tail satisfies the weak-release
/// clauses of R̄(η), so R̄(η) can be relative liveness of lim(L) even when
/// η fails on lim(h(L)). verify_via_abstraction() therefore refuses to
/// conclude anything from an abstract failure on a divergent system.
[[nodiscard]] bool hides_divergence(const Nfa& system, const Homomorphism& h);

struct AbstractionVerdict {
  /// lim(h(L)) ⊨_RL η — the cheap abstract check.
  bool abstract_holds = false;
  /// Simplicity of h on L (Definition 6.3). Only decided — and only
  /// meaningful — when `simplicity_checked` is set: simplicity gates
  /// nothing but the positive Theorem 8.2 transfer, so the pipeline skips
  /// the (potentially expensive) decision procedure when the abstract
  /// check already failed and Theorem 8.3 decides the outcome alone.
  SimplicityResult simplicity;
  bool simplicity_checked = false;
  /// h(L) free of maximal words (side condition of Theorem 8.2).
  bool image_has_maximal_words = false;
  /// System can diverge on hidden letters (voids Thm 8.3 refutation).
  bool hidden_divergence = false;
  /// The transferred formula R̄(η) interpreted under λ_hΣΣ'.
  Formula transformed;
  /// Sound conclusion about the concrete system: set only when the
  /// abstract check passed, h is simple, and h(L) has no maximal words
  /// (Theorem 8.2) — or when the abstract check failed AND the system
  /// cannot diverge on hidden letters, in which case Theorem 8.3 refutes
  /// the concrete property as well.
  std::optional<bool> concrete_holds;

  /// Size bookkeeping for the abstraction-pays-off experiments (E10).
  std::size_t concrete_states = 0;
  std::size_t abstract_states = 0;
};

/// Runs the pipeline on a transition system given as an all-accepting,
/// prefix-closed automaton over h.source(). η must be in positive normal
/// form with atoms among h.target() names.
[[nodiscard]] AbstractionVerdict verify_via_abstraction(const Nfa& system,
                                                        const Homomorphism& h,
                                                        Formula eta);

/// The direct concrete check the pipeline avoids: lim(L) ⊨_RL R̄(η) under
/// λ_hΣΣ'. Used by tests to validate Theorems 8.2/8.3 experimentally.
[[nodiscard]] bool concrete_relative_liveness(const Nfa& system,
                                              const Homomorphism& h,
                                              Formula eta);

/// The abstract check alone: lim(h(L)) ⊨_RL η under λ_Σ'.
[[nodiscard]] bool abstract_relative_liveness(const Nfa& system,
                                              const Homomorphism& h,
                                              Formula eta);

}  // namespace rlv

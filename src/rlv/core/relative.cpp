#include "rlv/core/relative.hpp"

#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/complement.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"

namespace rlv {

namespace {

RelativeLivenessResult liveness_via_intersection(const Buchi& system,
                                                 const Buchi& intersection,
                                                 InclusionAlgorithm algorithm,
                                                 Budget* budget,
                                                 std::size_t threads) {
  // Lemma 4.3: pre(L_ω) ⊆ pre(L_ω ∩ P); the reverse inclusion is automatic.
  const Nfa pre_system = prefix_nfa(system);
  const Nfa pre_both = prefix_nfa(intersection);
  const InclusionResult inc =
      check_inclusion(pre_system, pre_both, algorithm, budget, threads);
  RelativeLivenessResult result;
  result.holds = inc.included;
  result.violating_prefix = inc.counterexample;
  return result;
}

RelativeSafetyResult safety_via_negation(const Buchi& system,
                                         const Buchi& intersection,
                                         const Buchi& negated_property,
                                         Budget* budget) {
  // Lemma 4.4: L_ω ∩ lim(pre(L_ω ∩ P)) ∩ ¬P = ∅, decided on the fly — the
  // triple product is explored lazily by the nested DFS instead of being
  // materialized, so a counterexample (or its absence) is often established
  // after touching a fraction of the product.
  const Buchi closure = limit_of_prefix_closed(prefix_nfa(intersection));
  RelativeSafetyResult result;
  auto lasso = find_accepting_lasso_product(
      {&system, &closure, &negated_property}, budget);
  result.holds = !lasso.has_value();
  result.counterexample = std::move(lasso);
  return result;
}

}  // namespace

RelativeLivenessResult relative_liveness(const Buchi& system,
                                         const Buchi& property,
                                         InclusionAlgorithm algorithm,
                                         Budget* budget,
                                         std::size_t inclusion_threads) {
  try {
    return liveness_via_intersection(
        system, intersect_buchi(system, property, budget), algorithm, budget,
        inclusion_threads);
  } catch (const ResourceExhausted& e) {
    RelativeLivenessResult result;
    result.exhausted = e.stage();
    return result;
  }
}

RelativeLivenessResult relative_liveness(const Buchi& system, Formula f,
                                         const Labeling& lambda,
                                         InclusionAlgorithm algorithm,
                                         Budget* budget,
                                         std::size_t inclusion_threads) {
  try {
    const Buchi property = translate_ltl(f, lambda, budget);
    return liveness_via_intersection(
        system, intersect_buchi(system, property, budget), algorithm, budget,
        inclusion_threads);
  } catch (const ResourceExhausted& e) {
    RelativeLivenessResult result;
    result.exhausted = e.stage();
    return result;
  }
}

RelativeSafetyResult relative_safety(const Buchi& system,
                                     const Buchi& property, Budget* budget) {
  try {
    return safety_via_negation(system,
                               intersect_buchi(system, property, budget),
                               complement_buchi(property, budget), budget);
  } catch (const ResourceExhausted& e) {
    RelativeSafetyResult result;
    result.exhausted = e.stage();
    return result;
  }
}

RelativeSafetyResult relative_safety(const Buchi& system, Formula f,
                                     const Labeling& lambda, Budget* budget) {
  try {
    const Buchi property = translate_ltl(f, lambda, budget);
    const Buchi negated = translate_ltl_negated(f, lambda, budget);
    return safety_via_negation(
        system, intersect_buchi(system, property, budget), negated, budget);
  } catch (const ResourceExhausted& e) {
    RelativeSafetyResult result;
    result.exhausted = e.stage();
    return result;
  }
}

SatisfactionResult satisfies(const Buchi& system, const Buchi& property,
                             Budget* budget) {
  SatisfactionResult result;
  try {
    const Buchi complement = complement_buchi(property, budget);
    auto lasso = find_accepting_lasso_product({&system, &complement}, budget);
    result.holds = !lasso.has_value();
    result.counterexample = std::move(lasso);
  } catch (const ResourceExhausted& e) {
    result.exhausted = e.stage();
  }
  return result;
}

SatisfactionResult satisfies(const Buchi& system, Formula f,
                             const Labeling& lambda, Budget* budget) {
  SatisfactionResult result;
  try {
    const Buchi negated = translate_ltl_negated(f, lambda, budget);
    auto lasso = find_accepting_lasso_product({&system, &negated}, budget);
    result.holds = !lasso.has_value();
    result.counterexample = std::move(lasso);
  } catch (const ResourceExhausted& e) {
    result.exhausted = e.stage();
  }
  return result;
}

}  // namespace rlv

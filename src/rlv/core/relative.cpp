#include "rlv/core/relative.hpp"

#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/complement.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"

namespace rlv {

namespace {

RelativeLivenessResult liveness_via_intersection(const Buchi& system,
                                                 const Buchi& intersection,
                                                 InclusionAlgorithm algorithm) {
  // Lemma 4.3: pre(L_ω) ⊆ pre(L_ω ∩ P); the reverse inclusion is automatic.
  const Nfa pre_system = prefix_nfa(system);
  const Nfa pre_both = prefix_nfa(intersection);
  const InclusionResult inc = check_inclusion(pre_system, pre_both, algorithm);
  RelativeLivenessResult result;
  result.holds = inc.included;
  result.violating_prefix = inc.counterexample;
  return result;
}

RelativeSafetyResult safety_via_negation(const Buchi& system,
                                         const Buchi& intersection,
                                         const Buchi& negated_property) {
  // Lemma 4.4: L_ω ∩ lim(pre(L_ω ∩ P)) ∩ ¬P = ∅.
  const Buchi closure = limit_of_prefix_closed(prefix_nfa(intersection));
  const Buchi bad =
      intersect_buchi(intersect_buchi(system, closure), negated_property);
  RelativeSafetyResult result;
  auto lasso = find_accepting_lasso(bad);
  result.holds = !lasso.has_value();
  result.counterexample = std::move(lasso);
  return result;
}

}  // namespace

RelativeLivenessResult relative_liveness(const Buchi& system,
                                         const Buchi& property,
                                         InclusionAlgorithm algorithm) {
  return liveness_via_intersection(system, intersect_buchi(system, property),
                                   algorithm);
}

RelativeLivenessResult relative_liveness(const Buchi& system, Formula f,
                                         const Labeling& lambda,
                                         InclusionAlgorithm algorithm) {
  const Buchi property = translate_ltl(f, lambda);
  return liveness_via_intersection(system, intersect_buchi(system, property),
                                   algorithm);
}

RelativeSafetyResult relative_safety(const Buchi& system,
                                     const Buchi& property) {
  return safety_via_negation(system, intersect_buchi(system, property),
                             complement_buchi(property));
}

RelativeSafetyResult relative_safety(const Buchi& system, Formula f,
                                     const Labeling& lambda) {
  const Buchi property = translate_ltl(f, lambda);
  const Buchi negated = translate_ltl_negated(f, lambda);
  return safety_via_negation(system, intersect_buchi(system, property),
                             negated);
}

bool satisfies(const Buchi& system, const Buchi& property) {
  return omega_empty(intersect_buchi(system, complement_buchi(property)));
}

bool satisfies(const Buchi& system, Formula f, const Labeling& lambda) {
  return omega_empty(
      intersect_buchi(system, translate_ltl_negated(f, lambda)));
}

}  // namespace rlv

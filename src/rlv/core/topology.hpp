#pragma once

// The Cantor-topology view of Section 4 (Definitions 4.8–4.10): the metric
// d(x,y) = 1/(|common(x,y)|+1) on Σ^ω, under which
//
//   P relative liveness of L_ω  ⟺  L_ω ∩ P dense  in L_ω   (Lemma 4.9)
//   P relative safety  of L_ω  ⟺  L_ω ∩ P closed in L_ω   (Lemma 4.10)
//
// The metric is computable exactly on ultimately periodic words; the
// density/closedness predicates are the relative liveness/safety deciders
// under topological names, plus a definition-level probe used by tests to
// cross-validate Lemma 4.3/4.4 against Definitions 4.1/4.2.

#include "rlv/core/relative.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/omega/emptiness.hpp"

namespace rlv {

/// Length of the longest common prefix of u1·v1^ω and u2·v2^ω, or nullopt
/// when the words are equal (infinite common prefix).
[[nodiscard]] std::optional<std::size_t> common_prefix_length(const Lasso& x,
                                                              const Lasso& y);

/// Cantor metric d(x, y) = 1/(|common(x,y)|+1); 0 when equal (Def 4.8).
[[nodiscard]] double cantor_distance(const Lasso& x, const Lasso& y);

/// Lemma 4.9: L_ω(system) ∩ L_ω(property) dense in L_ω(system).
[[nodiscard]] bool is_dense_in(const Buchi& property, const Buchi& system);

/// Lemma 4.10: L_ω(system) ∩ L_ω(property) closed in L_ω(system).
/// (Automaton flavor: uses rank-based complementation.)
[[nodiscard]] bool is_closed_in(const Buchi& property, const Buchi& system);

/// Definition-level relative liveness probe: enumerates all prefixes
/// w ∈ pre(L_ω) up to `max_prefix_len` and tests, via left quotients and
/// Büchi emptiness, that some continuation of w inside L_ω satisfies P.
/// Exponential in the prefix length; a ground-truth oracle for tests.
[[nodiscard]] bool relative_liveness_by_definition(const Buchi& system,
                                                   const Buchi& property,
                                                   std::size_t max_prefix_len);

}  // namespace rlv

#include "rlv/core/preservation.hpp"

#include <cassert>
#include <string>
#include <vector>

#include "rlv/core/relative.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/transform.hpp"
#include "rlv/omega/limit.hpp"

namespace rlv {

Labeling hom_labeling(const Homomorphism& h) {
  std::vector<std::vector<std::string>> labels;
  labels.reserve(h.source()->size());
  for (Symbol a = 0; a < h.source()->size(); ++a) {
    if (const auto mapped = h.apply(a)) {
      const std::string& name = h.target()->name(*mapped);
      assert(name != kEpsilonAtom && "target name collides with ε-atom");
      labels.push_back({name});
    } else {
      labels.push_back({std::string(kEpsilonAtom)});
    }
  }
  return Labeling(h.source(), std::move(labels));
}

bool has_maximal_words(const Nfa& nfa) {
  // w maximal ⟺ in the determinized trim automaton, the state reached by w
  // has no successors. (Trim: all states useful; determinize: per-word.)
  const Dfa dfa = determinize(trim(nfa));
  const std::size_t sigma = nfa.alphabet()->size();
  for (State s = 0; s < dfa.num_states(); ++s) {
    bool has_successor = false;
    for (Symbol a = 0; a < sigma; ++a) {
      if (dfa.next(s, a) != kNoState) has_successor = true;
    }
    if (!has_successor) return true;
  }
  return false;
}

bool abstract_relative_liveness(const Nfa& system, const Homomorphism& h,
                                Formula eta) {
  const Nfa abstract = reduced_image_nfa(system, h);
  if (abstract.num_states() == 0) return true;  // empty behavior: vacuous
  const Buchi abstract_limit = limit_of_prefix_closed(abstract);
  return relative_liveness(abstract_limit, eta,
                           Labeling::canonical(h.target()))
      .holds;
}

bool concrete_relative_liveness(const Nfa& system, const Homomorphism& h,
                                Formula eta) {
  const Buchi concrete_limit = limit_of_prefix_closed(system);
  const Formula rbar = transform_rbar(to_pnf(eta));
  return relative_liveness(concrete_limit, rbar, hom_labeling(h)).holds;
}

AbstractionVerdict verify_via_abstraction(const Nfa& system,
                                          const Homomorphism& h, Formula eta) {
  AbstractionVerdict verdict;
  verdict.transformed = transform_rbar(to_pnf(eta));
  verdict.concrete_states = trim(system).num_states();

  const Nfa abstract = reduced_image_nfa(system, h);
  verdict.abstract_states = abstract.num_states();
  verdict.image_has_maximal_words = has_maximal_words(abstract);

  if (abstract.num_states() == 0) {
    // Empty behavior set: every property is vacuously relative liveness.
    verdict.abstract_holds = true;
    verdict.simplicity.simple = true;
    verdict.concrete_holds = true;
    return verdict;
  }

  const Buchi abstract_limit = limit_of_prefix_closed(abstract);
  verdict.abstract_holds =
      relative_liveness(abstract_limit, to_pnf(eta),
                        Labeling::canonical(h.target()))
          .holds;

  verdict.simplicity = check_simplicity(system, h);

  if (!verdict.abstract_holds) {
    // Theorem 8.3 (contrapositive): the concrete property fails too, no
    // simplicity needed — provided h(L) has no maximal words.
    if (!verdict.image_has_maximal_words) verdict.concrete_holds = false;
  } else if (verdict.simplicity.simple && !verdict.image_has_maximal_words) {
    // Theorem 8.2: transfer the positive verdict.
    verdict.concrete_holds = true;
  }
  return verdict;
}

}  // namespace rlv

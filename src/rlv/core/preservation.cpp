#include "rlv/core/preservation.hpp"

#include <cassert>
#include <string>
#include <vector>

#include "rlv/core/relative.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/transform.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/util/scc.hpp"

namespace rlv {

Labeling hom_labeling(const Homomorphism& h) {
  std::vector<std::vector<std::string>> labels;
  labels.reserve(h.source()->size());
  for (Symbol a = 0; a < h.source()->size(); ++a) {
    if (const auto mapped = h.apply(a)) {
      const std::string& name = h.target()->name(*mapped);
      assert(name != kEpsilonAtom && "target name collides with ε-atom");
      labels.push_back({name});
    } else {
      labels.push_back({std::string(kEpsilonAtom)});
    }
  }
  return Labeling(h.source(), std::move(labels));
}

bool has_maximal_words(const Nfa& nfa) {
  // w maximal ⟺ in the determinized trim automaton, the state reached by w
  // has no successors. (Trim: all states useful; determinize: per-word.)
  const Dfa dfa = determinize(trim(nfa));
  const std::size_t sigma = nfa.alphabet()->size();
  for (State s = 0; s < dfa.num_states(); ++s) {
    bool has_successor = false;
    for (Symbol a = 0; a < sigma; ++a) {
      if (dfa.next(s, a) != kNoState) has_successor = true;
    }
    if (!has_successor) return true;
  }
  return false;
}

bool hides_divergence(const Nfa& system, const Homomorphism& h) {
  const Nfa trimmed = trim(system);
  // Hidden-only successor graph; any cycle in it (non-trivial SCC or
  // hidden self-loop) witnesses an infinite all-ε continuation.
  std::vector<std::vector<std::uint32_t>> succ(trimmed.num_states());
  const std::size_t sigma = trimmed.alphabet()->size();
  for (State s = 0; s < trimmed.num_states(); ++s) {
    for (Symbol a = 0; a < sigma; ++a) {
      if (!h.hides(a)) continue;
      for (const State t : trimmed.successors(s, a)) {
        succ[s].push_back(t);
      }
    }
  }
  const SccResult scc = tarjan_scc(succ);
  for (std::uint32_t c = 0; c < scc.count; ++c) {
    if (scc.nontrivial[c]) return true;
  }
  return false;
}

bool abstract_relative_liveness(const Nfa& system, const Homomorphism& h,
                                Formula eta) {
  const Nfa abstract = reduced_image_nfa(system, h);
  if (abstract.num_states() == 0) return true;  // empty behavior: vacuous
  const Buchi abstract_limit = limit_of_prefix_closed(abstract);
  return relative_liveness(abstract_limit, eta,
                           Labeling::canonical(h.target()))
      .holds;
}

bool concrete_relative_liveness(const Nfa& system, const Homomorphism& h,
                                Formula eta) {
  const Buchi concrete_limit = limit_of_prefix_closed(system);
  const Formula rbar = transform_rbar(to_pnf(eta));
  return relative_liveness(concrete_limit, rbar, hom_labeling(h)).holds;
}

AbstractionVerdict verify_via_abstraction(const Nfa& system,
                                          const Homomorphism& h, Formula eta) {
  AbstractionVerdict verdict;
  verdict.transformed = transform_rbar(to_pnf(eta));
  verdict.concrete_states = trim(system).num_states();

  const Nfa abstract = reduced_image_nfa(system, h);
  verdict.abstract_states = abstract.num_states();
  verdict.image_has_maximal_words = has_maximal_words(abstract);

  if (abstract.num_states() == 0) {
    // Empty behavior set: every property is vacuously relative liveness.
    verdict.abstract_holds = true;
    verdict.simplicity.simple = true;
    verdict.simplicity_checked = true;
    verdict.concrete_holds = true;
    return verdict;
  }

  const Buchi abstract_limit = limit_of_prefix_closed(abstract);
  verdict.abstract_holds =
      relative_liveness(abstract_limit, to_pnf(eta),
                        Labeling::canonical(h.target()))
          .holds;

  verdict.hidden_divergence = hides_divergence(system, h);

  if (!verdict.abstract_holds) {
    // Theorem 8.3 (contrapositive): the concrete property fails too, no
    // simplicity needed — provided h(L) has no maximal words AND the
    // system cannot diverge on hidden letters (an all-ε tail satisfies
    // the weak-release clauses of R̄(η), so a divergent continuation can
    // rescue the concrete check that the abstraction refutes). Since
    // simplicity gates nothing here, its decision procedure (a subset
    // product over the image DFA) is skipped entirely.
    if (!verdict.image_has_maximal_words && !verdict.hidden_divergence) {
      verdict.concrete_holds = false;
    }
    return verdict;
  }

  verdict.simplicity = check_simplicity(system, h);
  verdict.simplicity_checked = true;
  if (verdict.simplicity.simple && !verdict.image_has_maximal_words) {
    // Theorem 8.2: transfer the positive verdict (sound even under hidden
    // divergence — extra concrete behaviors only enlarge lim(L) ∩ R̄(η),
    // and pre(lim(L)) is the same prefix language either way).
    verdict.concrete_holds = true;
  }
  return verdict;
}

}  // namespace rlv

#include "rlv/core/decomposition.hpp"

#include "rlv/lang/ops.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/complement.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"

namespace rlv {

Buchi relative_safety_closure(const Buchi& system, const Buchi& property) {
  const Buchi both = intersect_buchi(system, property);
  const Buchi closure = limit_of_prefix_closed(prefix_nfa(both));
  return intersect_buchi(system, closure);
}

namespace {

RelativeDecomposition decompose(const Buchi& system, const Buchi& property,
                                const Buchi& negated_safety_part) {
  RelativeDecomposition result{
      relative_safety_closure(system, property),
      union_buchi(property, negated_safety_part)};
  return result;
}

}  // namespace

RelativeDecomposition relative_decomposition(const Buchi& system,
                                             const Buchi& property) {
  const Buchi safety = relative_safety_closure(system, property);
  return {safety, union_buchi(property, complement_buchi(safety))};
}

RelativeDecomposition relative_decomposition(const Buchi& system, Formula f,
                                             const Labeling& lambda) {
  // S = L ∩ lim(pre(L ∩ P)); its complement is (Σ^ω \ L) ∪ (Σ^ω \ lim(...)).
  // Complementing L and the limit automaton separately would still need
  // rank-based complementation, so for the formula flavor we complement the
  // *property* cheaply and build the liveness part as P ∪ ¬S directly from
  // the automaton; the rank construction stays but on the safety part,
  // whose acceptance is trivial (all-accepting safety automata complement
  // into their subset-construction duals). We therefore special-case:
  // ¬(L ∩ lim(pre(L∩P))) restricted to what the decomposition guarantees
  // need: tests only evaluate Li on words of L, where ¬S = ¬lim(pre(L∩P))
  // within L. The within-L complement of a safety automaton is computed by
  // determinizing its prefix automaton and flipping "still alive" to "has
  // escaped", i.e. words with a prefix outside pre(L∩P).
  const Buchi property = translate_ltl(to_pnf(f), lambda);
  const Buchi safety = relative_safety_closure(system, property);

  // Escape automaton: accepts x ∈ Σ^ω with some prefix not in pre(L∩P).
  const Nfa pre = prefix_nfa(intersect_buchi(system, property));
  const Dfa pre_dfa = determinize(pre).complete();
  // The completed DFA has a (possibly fresh) rejecting sink region: states
  // from which pre can no longer accept. Words reaching such a state have
  // escaped pre(L∩P) — make those states accepting Büchi traps.
  Buchi escape(pre_dfa.alphabet());
  for (State s = 0; s < pre_dfa.num_states(); ++s) {
    escape.add_state(!pre_dfa.is_accepting(s));
  }
  for (State s = 0; s < pre_dfa.num_states(); ++s) {
    for (Symbol a = 0; a < pre_dfa.alphabet()->size(); ++a) {
      escape.add_transition(s, a, pre_dfa.next(s, a));
    }
  }
  escape.set_initial(pre_dfa.initial());

  return decompose(system, property, escape);
}

}  // namespace rlv

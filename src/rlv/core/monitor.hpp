#pragma once

// Runtime doom monitoring — the operational face of relative liveness.
//
// P is a relative liveness property of L_ω exactly when *no* finite
// behavior is doomed: every prefix can still be extended inside the system
// to satisfy P (Definition 4.1). When P is NOT relative liveness, some
// reachable prefixes are doomed, and detecting the first doomed step at
// runtime is precisely the "shift from liveness to safety" the paper traces
// to Henzinger's "Sooner is safer than later" [12]: within the system,
// "P can still hold" is a safety property whose violation has a finite
// witness.
//
// The monitor precomputes the DFA of pre(L_ω ∩ P) ∪-split from pre(L_ω) and
// then follows a trace letter by letter in O(1) per step, reporting:
//
//   kSatisfiable  — some continuation of the trace satisfies P,
//   kDoomed       — the trace is a system behavior, but no continuation
//                   satisfies P (dooms are permanent),
//   kLeftSystem   — the trace is not a behavior of the system at all.

#include <cstdint>
#include <optional>

#include "rlv/lang/dfa.hpp"
#include "rlv/ltl/ast.hpp"
#include "rlv/omega/buchi.hpp"

namespace rlv {

enum class MonitorVerdict : std::uint8_t {
  kSatisfiable,
  kDoomed,
  kLeftSystem,
};

class DoomMonitor {
 public:
  /// Builds a monitor for the given system and property (automaton or
  /// formula flavor). Construction cost is a product + two subset
  /// constructions; stepping is a table lookup.
  DoomMonitor(const Buchi& system, const Buchi& property);
  DoomMonitor(const Buchi& system, Formula f, const Labeling& lambda);

  /// Consumes one observed action; returns the verdict after it. Verdicts
  /// only escalate: kSatisfiable -> kDoomed -> kLeftSystem is monotone in
  /// the sense that kDoomed and kLeftSystem are absorbing.
  MonitorVerdict step(Symbol a);

  /// Verdict for the trace consumed so far (kSatisfiable initially, unless
  /// the system itself is empty).
  [[nodiscard]] MonitorVerdict verdict() const { return verdict_; }

  /// Number of symbols consumed.
  [[nodiscard]] std::size_t position() const { return position_; }

  /// Resets to the empty trace.
  void reset();

  /// Convenience: runs a whole word, returning the final verdict (and, via
  /// `first_doom`, the 0-based index of the step where doom struck, or the
  /// word length if never).
  MonitorVerdict run(const Word& trace, std::size_t* first_doom = nullptr);

  /// The shortest system behavior that is doomed (no continuation inside
  /// the system satisfies the property), or nullopt when none exists —
  /// which is exactly when the property is relative liveness (Def 4.1).
  /// BFS over the product of the two monitor DFAs; the result is globally
  /// minimal in length.
  [[nodiscard]] std::optional<Word> shortest_doomed_prefix() const;

 private:
  void init();

  Dfa satisfiable_;  // DFA of pre(L_ω ∩ P): "still winnable" states
  Dfa system_pre_;   // DFA of pre(L_ω): "still a behavior" states
  State sat_state_ = kNoState;
  State sys_state_ = kNoState;
  MonitorVerdict verdict_ = MonitorVerdict::kSatisfiable;
  std::size_t position_ = 0;
};

}  // namespace rlv

#pragma once

// Runtime doom monitoring — the operational face of relative liveness.
//
// P is a relative liveness property of L_ω exactly when *no* finite
// behavior is doomed: every prefix can still be extended inside the system
// to satisfy P (Definition 4.1). When P is NOT relative liveness, some
// reachable prefixes are doomed, and detecting the first doomed step at
// runtime is precisely the "shift from liveness to safety" the paper traces
// to Henzinger's "Sooner is safer than later" [12]: within the system,
// "P can still hold" is a safety property whose violation has a finite
// witness.
//
// DoomMonitor is the offline, single-trace convenience face of the one
// doom-judgment kernel, monitor::MonitorAutomaton (rlv/monitor/
// automaton.hpp): construction compiles the complete product DFA of
// pre(L_ω ∩ P) and pre(L_ω) once, and every step is one table lookup.
// The streaming daemon (rlv::net monitor_open/step/close) runs sessions
// over the very same compiled automata, so both paths judge identically
// by construction.

#include <cstdint>
#include <memory>
#include <optional>

#include "rlv/ltl/ast.hpp"
#include "rlv/monitor/automaton.hpp"
#include "rlv/omega/buchi.hpp"

namespace rlv {

/// kSatisfiable — some continuation of the trace satisfies P;
/// kDoomed      — the trace is a system behavior, but no continuation
///                satisfies P (dooms are permanent);
/// kLeftSystem  — the trace is not a behavior of the system at all.
using MonitorVerdict = monitor::Verdict;

class DoomMonitor {
 public:
  /// Builds a monitor for the given system and property (automaton or
  /// formula flavor). Construction cost is a product + two subset
  /// constructions; stepping is a table lookup.
  DoomMonitor(const Buchi& system, const Buchi& property);
  DoomMonitor(const Buchi& system, Formula f, const Labeling& lambda);

  /// Wraps an already-compiled automaton (the engine cache path), so N
  /// monitors over one (system, property) pair share one table.
  explicit DoomMonitor(
      std::shared_ptr<const monitor::MonitorAutomaton> automaton);

  /// Consumes one observed action; returns the verdict after it. Verdicts
  /// only escalate: kSatisfiable -> kDoomed -> kLeftSystem is monotone in
  /// the sense that kDoomed and kLeftSystem are absorbing.
  MonitorVerdict step(Symbol a) {
    ++position_;
    state_ = automaton_->step(state_, a);
    return automaton_->verdict(state_);
  }

  /// Verdict for the trace consumed so far (kSatisfiable initially, unless
  /// the system itself is empty).
  [[nodiscard]] MonitorVerdict verdict() const {
    return automaton_->verdict(state_);
  }

  /// Number of symbols consumed.
  [[nodiscard]] std::size_t position() const { return position_; }

  /// Resets to the empty trace.
  void reset() {
    state_ = automaton_->initial();
    position_ = 0;
  }

  /// Convenience: runs a whole word, returning the final verdict (and, via
  /// `first_doom`, the 0-based index of the step where doom struck, or the
  /// word length if never).
  MonitorVerdict run(const Word& trace, std::size_t* first_doom = nullptr);

  /// The shortest system behavior that is doomed (no continuation inside
  /// the system satisfies the property), or nullopt when none exists —
  /// which is exactly when the property is relative liveness (Def 4.1).
  /// Precomputed by the compiled automaton; the result is globally minimal
  /// in length.
  [[nodiscard]] std::optional<Word> shortest_doomed_prefix() const {
    return automaton_->shortest_doomed_prefix();
  }

  /// The shared compiled kernel (for callers that want to open further
  /// monitors or sessions over it).
  [[nodiscard]] const std::shared_ptr<const monitor::MonitorAutomaton>&
  automaton() const {
    return automaton_;
  }

 private:
  std::shared_ptr<const monitor::MonitorAutomaton> automaton_;
  std::uint32_t state_ = 0;
  std::size_t position_ = 0;
};

}  // namespace rlv

#pragma once

// Constructive counterpart of Theorem 4.7. Alpern–Schneider decompose any
// property into a safety and a liveness part; the paper relativizes the
// statement: L_ω ⊆ P iff P is both a relative safety and a relative
// liveness property of L_ω. This module computes the decomposition
// *witnesses* inside the universe L_ω:
//
//   safety part    S  =  L_ω ∩ lim(pre(L_ω ∩ P))      (the relative safety
//                        closure of P in L_ω — the smallest relative safety
//                        property of L_ω containing L_ω ∩ P)
//   liveness part  Li =  P ∪ (Σ^ω \ S)
//
// with the guarantees (validated by tests/test_decomposition.cpp):
//   * S  is a relative safety property of L_ω,
//   * Li is a relative liveness property of L_ω,
//   * L_ω ∩ P = L_ω ∩ S ∩ Li.

#include "rlv/ltl/ast.hpp"
#include "rlv/omega/buchi.hpp"

namespace rlv {

struct RelativeDecomposition {
  /// Büchi automaton for the safety part S ⊆ Σ^ω.
  Buchi safety_part;
  /// Büchi automaton for the liveness part Li ⊆ Σ^ω.
  Buchi liveness_part;
};

/// Decomposes the property L_ω(property) relative to L_ω(system). Uses
/// rank-based complementation for the liveness part; sizes grow quickly, so
/// intended for moderate inputs.
[[nodiscard]] RelativeDecomposition relative_decomposition(
    const Buchi& system, const Buchi& property);

/// Formula flavor: complements come from translating ¬f — much smaller.
[[nodiscard]] RelativeDecomposition relative_decomposition(
    const Buchi& system, Formula f, const Labeling& lambda);

/// The relative safety closure alone: L_ω ∩ lim(pre(L_ω ∩ P)).
[[nodiscard]] Buchi relative_safety_closure(const Buchi& system,
                                            const Buchi& property);

}  // namespace rlv

#include "rlv/ctl/ctl.hpp"

#include <cassert>
#include <cctype>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "rlv/util/hash.hpp"

namespace rlv {

class CtlNode {
 public:
  CtlOp op;
  std::string action;
  const CtlNode* left = nullptr;
  const CtlNode* right = nullptr;
};

namespace {

struct Key {
  CtlOp op;
  std::string action;
  const CtlNode* left;
  const CtlNode* right;
  friend bool operator==(const Key&, const Key&) = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    std::size_t h = static_cast<std::size_t>(k.op);
    h = hash_combine(h, std::hash<std::string>{}(k.action));
    h = hash_combine(h, std::hash<const CtlNode*>{}(k.left));
    h = hash_combine(h, std::hash<const CtlNode*>{}(k.right));
    return h;
  }
};

std::unordered_map<Key, std::unique_ptr<CtlNode>, KeyHash>& table() {
  static auto* t = new std::unordered_map<Key, std::unique_ptr<CtlNode>, KeyHash>();
  return *t;
}

const CtlNode* intern(CtlOp op, std::string action, const CtlNode* left,
                      const CtlNode* right) {
  Key key{op, action, left, right};
  auto it = table().find(key);
  if (it == table().end()) {
    auto node = std::make_unique<CtlNode>();
    node->op = op;
    node->action = std::move(action);
    node->left = left;
    node->right = right;
    it = table().emplace(std::move(key), std::move(node)).first;
  }
  return it->second.get();
}

}  // namespace

class CtlFactory {
 public:
  static CtlFormula make(const CtlNode* n) { return CtlFormula(n); }
};

namespace {
CtlFormula wrap(const CtlNode* n) { return CtlFactory::make(n); }
}  // namespace

CtlOp CtlFormula::op() const { return node_->op; }
const std::string& CtlFormula::action() const { return node_->action; }
CtlFormula CtlFormula::left() const { return wrap(node_->left); }
CtlFormula CtlFormula::right() const { return wrap(node_->right); }

std::string CtlFormula::to_string() const {
  switch (op()) {
    case CtlOp::kTrue:
      return "true";
    case CtlOp::kFalse:
      return "false";
    case CtlOp::kCan:
      return "can(" + action() + ")";
    case CtlOp::kDeadlock:
      return "deadlock";
    case CtlOp::kNot:
      return "!(" + left().to_string() + ")";
    case CtlOp::kAnd:
      return "(" + left().to_string() + " && " + right().to_string() + ")";
    case CtlOp::kOr:
      return "(" + left().to_string() + " || " + right().to_string() + ")";
    case CtlOp::kExistsNext:
      return "EX " + left().to_string();
    case CtlOp::kExistsFinally:
      return "EF " + left().to_string();
    case CtlOp::kExistsGlobally:
      return "EG " + left().to_string();
    case CtlOp::kExistsUntil:
      return "E[" + left().to_string() + " U " + right().to_string() + "]";
    case CtlOp::kForallNext:
      return "AX " + left().to_string();
    case CtlOp::kForallFinally:
      return "AF " + left().to_string();
    case CtlOp::kForallGlobally:
      return "AG " + left().to_string();
    case CtlOp::kForallUntil:
      return "A[" + left().to_string() + " U " + right().to_string() + "]";
  }
  return "?";
}

CtlFormula c_true() { return wrap(intern(CtlOp::kTrue, {}, nullptr, nullptr)); }
CtlFormula c_false() {
  return wrap(intern(CtlOp::kFalse, {}, nullptr, nullptr));
}
CtlFormula c_can(std::string_view action) {
  return wrap(intern(CtlOp::kCan, std::string(action), nullptr, nullptr));
}
CtlFormula c_deadlock() {
  return wrap(intern(CtlOp::kDeadlock, {}, nullptr, nullptr));
}
CtlFormula c_not(CtlFormula f) {
  if (f.op() == CtlOp::kTrue) return c_false();
  if (f.op() == CtlOp::kFalse) return c_true();
  if (f.op() == CtlOp::kNot) return f.left();
  return wrap(intern(CtlOp::kNot, {}, f.raw(), nullptr));
}
CtlFormula c_and(CtlFormula a, CtlFormula b) {
  if (a.op() == CtlOp::kFalse || b.op() == CtlOp::kFalse) return c_false();
  if (a.op() == CtlOp::kTrue) return b;
  if (b.op() == CtlOp::kTrue) return a;
  if (a == b) return a;
  return wrap(intern(CtlOp::kAnd, {}, a.raw(), b.raw()));
}
CtlFormula c_or(CtlFormula a, CtlFormula b) {
  if (a.op() == CtlOp::kTrue || b.op() == CtlOp::kTrue) return c_true();
  if (a.op() == CtlOp::kFalse) return b;
  if (b.op() == CtlOp::kFalse) return a;
  if (a == b) return a;
  return wrap(intern(CtlOp::kOr, {}, a.raw(), b.raw()));
}
CtlFormula c_ex(CtlFormula f) {
  return wrap(intern(CtlOp::kExistsNext, {}, f.raw(), nullptr));
}
CtlFormula c_ef(CtlFormula f) {
  return wrap(intern(CtlOp::kExistsFinally, {}, f.raw(), nullptr));
}
CtlFormula c_eg(CtlFormula f) {
  return wrap(intern(CtlOp::kExistsGlobally, {}, f.raw(), nullptr));
}
CtlFormula c_eu(CtlFormula a, CtlFormula b) {
  return wrap(intern(CtlOp::kExistsUntil, {}, a.raw(), b.raw()));
}
CtlFormula c_ax(CtlFormula f) {
  return wrap(intern(CtlOp::kForallNext, {}, f.raw(), nullptr));
}
CtlFormula c_af(CtlFormula f) {
  return wrap(intern(CtlOp::kForallFinally, {}, f.raw(), nullptr));
}
CtlFormula c_ag(CtlFormula f) {
  return wrap(intern(CtlOp::kForallGlobally, {}, f.raw(), nullptr));
}
CtlFormula c_au(CtlFormula a, CtlFormula b) {
  return wrap(intern(CtlOp::kForallUntil, {}, a.raw(), b.raw()));
}

// ---------------------------------------------------------------------------
// Parser.

namespace {

class CtlParser {
 public:
  explicit CtlParser(std::string_view text) : text_(text) {}

  CtlFormula parse() {
    CtlFormula f = parse_or();
    skip_ws();
    if (pos_ != text_.size()) {
      throw std::runtime_error("CTL parse error: trailing input at offset " +
                               std::to_string(pos_));
    }
    return f;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  static bool word_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  bool eat(std::string_view token) {
    skip_ws();
    if (!text_.substr(pos_).starts_with(token)) return false;
    if (word_char(token.front())) {
      const std::size_t end = pos_ + token.size();
      if (end < text_.size() && word_char(text_[end])) return false;
    }
    pos_ += token.size();
    return true;
  }

  [[noreturn]] void fail(const std::string& message) {
    throw std::runtime_error("CTL parse error: " + message + " at offset " +
                             std::to_string(pos_));
  }

  CtlFormula parse_or() {
    CtlFormula f = parse_and();
    while (eat("||") || eat("|")) f = c_or(f, parse_and());
    return f;
  }

  CtlFormula parse_and() {
    CtlFormula f = parse_unary();
    while (eat("&&") || eat("&")) f = c_and(f, parse_unary());
    return f;
  }

  CtlFormula parse_until(bool universal) {
    // E[ξ U ζ] / A[ξ U ζ]; the '[' has been consumed by the caller.
    CtlFormula a = parse_or();
    if (!eat("U")) fail("expected 'U' in until");
    CtlFormula b = parse_or();
    if (!eat("]")) fail("expected ']'");
    return universal ? c_au(a, b) : c_eu(a, b);
  }

  CtlFormula parse_unary() {
    if (eat("!")) return c_not(parse_unary());
    if (eat("EX")) return c_ex(parse_unary());
    if (eat("EF")) return c_ef(parse_unary());
    if (eat("EG")) return c_eg(parse_unary());
    if (eat("AX")) return c_ax(parse_unary());
    if (eat("AF")) return c_af(parse_unary());
    if (eat("AG")) return c_ag(parse_unary());
    skip_ws();
    if (pos_ < text_.size() && (text_[pos_] == 'E' || text_[pos_] == 'A')) {
      const bool universal = text_[pos_] == 'A';
      const std::size_t save = pos_;
      ++pos_;
      if (eat("[")) return parse_until(universal);
      pos_ = save;
    }
    return parse_primary();
  }

  CtlFormula parse_primary() {
    skip_ws();
    if (eat("(")) {
      CtlFormula f = parse_or();
      if (!eat(")")) fail("expected ')'");
      return f;
    }
    if (eat("true")) return c_true();
    if (eat("false")) return c_false();
    if (eat("deadlock")) return c_deadlock();
    if (eat("can")) {
      if (!eat("(")) fail("expected '(' after can");
      skip_ws();
      const std::size_t start = pos_;
      while (pos_ < text_.size() && word_char(text_[pos_])) ++pos_;
      if (pos_ == start) fail("expected action name");
      const std::string action(text_.substr(start, pos_ - start));
      if (!eat(")")) fail("expected ')'");
      return c_can(action);
    }
    fail("expected formula");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

CtlFormula parse_ctl(std::string_view text) { return CtlParser(text).parse(); }

// ---------------------------------------------------------------------------
// Model checking.

namespace {

class CtlChecker {
 public:
  explicit CtlChecker(const Nfa& system) : system_(system) {
    const std::size_t n = system.num_states();
    pred_.resize(n);
    for (State s = 0; s < n; ++s) {
      for (const auto& t : system.out(s)) pred_[t.target].push_back(s);
    }
  }

  DynBitset states(CtlFormula f) {
    auto it = memo_.find(f);
    if (it != memo_.end()) return it->second;
    DynBitset result = compute(f);
    memo_.emplace(f, result);
    return result;
  }

 private:
  DynBitset all() {
    DynBitset set(system_.num_states());
    for (State s = 0; s < system_.num_states(); ++s) set.set(s);
    return set;
  }

  DynBitset none() { return DynBitset(system_.num_states()); }

  /// States with some successor in `target`.
  DynBitset pre_exists(const DynBitset& target) {
    DynBitset result = none();
    target.for_each([&](std::size_t t) {
      for (const State p : pred_[t]) result.set(p);
    });
    return result;
  }

  /// States all of whose successors lie in `target` (deadlocks qualify
  /// vacuously — standard CTL-over-possibly-finite-paths convention; the
  /// library's transition systems are usually deadlock-free).
  DynBitset pre_forall(const DynBitset& target) {
    DynBitset result = none();
    for (State s = 0; s < system_.num_states(); ++s) {
      bool ok = true;
      for (const auto& t : system_.out(s)) ok = ok && target.test(t.target);
      if (ok) result.set(s);
    }
    return result;
  }

  /// Least fixpoint for E[a U b] / A[a U b].
  DynBitset until(const DynBitset& a, const DynBitset& b, bool universal) {
    DynBitset result = b;
    bool changed = true;
    while (changed) {
      changed = false;
      const DynBitset step =
          universal ? pre_forall(result) : pre_exists(result);
      for (State s = 0; s < system_.num_states(); ++s) {
        if (!result.test(s) && a.test(s) && step.test(s)) {
          // AU additionally requires a successor to exist (no vacuous
          // deadlock satisfaction of the "until" progress obligation).
          if (universal && system_.out(s).empty()) continue;
          result.set(s);
          changed = true;
        }
      }
    }
    return result;
  }

  /// Greatest fixpoint for EG.
  DynBitset globally_exists(const DynBitset& a) {
    DynBitset result = a;
    bool changed = true;
    while (changed) {
      changed = false;
      const DynBitset step = pre_exists(result);
      for (State s = 0; s < system_.num_states(); ++s) {
        if (result.test(s) && !step.test(s)) {
          result.reset(s);
          changed = true;
        }
      }
    }
    return result;
  }

  DynBitset compute(CtlFormula f) {
    switch (f.op()) {
      case CtlOp::kTrue:
        return all();
      case CtlOp::kFalse:
        return none();
      case CtlOp::kCan: {
        DynBitset result = none();
        if (!system_.alphabet()->contains(f.action())) return result;
        const Symbol a = system_.alphabet()->id(f.action());
        for (State s = 0; s < system_.num_states(); ++s) {
          for (const auto& t : system_.out(s)) {
            if (t.symbol == a) {
              result.set(s);
              break;
            }
          }
        }
        return result;
      }
      case CtlOp::kDeadlock: {
        DynBitset result = none();
        for (State s = 0; s < system_.num_states(); ++s) {
          if (system_.out(s).empty()) result.set(s);
        }
        return result;
      }
      case CtlOp::kNot: {
        DynBitset result = all();
        result -= states(f.left());
        return result;
      }
      case CtlOp::kAnd: {
        DynBitset result = states(f.left());
        result &= states(f.right());
        return result;
      }
      case CtlOp::kOr: {
        DynBitset result = states(f.left());
        result |= states(f.right());
        return result;
      }
      case CtlOp::kExistsNext:
        return pre_exists(states(f.left()));
      case CtlOp::kExistsFinally:
        return until(all(), states(f.left()), /*universal=*/false);
      case CtlOp::kExistsGlobally:
        return globally_exists(states(f.left()));
      case CtlOp::kExistsUntil:
        return until(states(f.left()), states(f.right()),
                     /*universal=*/false);
      case CtlOp::kForallNext: {
        // AX ξ = states whose every successor satisfies ξ AND that have a
        // successor (infinite-path semantics on deadlock-free systems; on
        // deadlocks AX is false, matching ¬EX¬ξ ∧ EX true).
        DynBitset result = pre_forall(states(f.left()));
        DynBitset has_succ = none();
        for (State s = 0; s < system_.num_states(); ++s) {
          if (!system_.out(s).empty()) has_succ.set(s);
        }
        result &= has_succ;
        return result;
      }
      case CtlOp::kForallFinally:
        return until(all(), states(f.left()), /*universal=*/true);
      case CtlOp::kForallGlobally: {
        // AG ξ = ¬EF¬ξ.
        DynBitset not_xi = all();
        not_xi -= states(f.left());
        DynBitset ef = until(all(), not_xi, /*universal=*/false);
        DynBitset result = all();
        result -= ef;
        return result;
      }
      case CtlOp::kForallUntil:
        return until(states(f.left()), states(f.right()),
                     /*universal=*/true);
    }
    return none();
  }

  const Nfa& system_;
  std::vector<std::vector<State>> pred_;
  std::unordered_map<CtlFormula, DynBitset, CtlFormulaHash> memo_;
};

}  // namespace

DynBitset ctl_states(const Nfa& system, CtlFormula f) {
  CtlChecker checker(system);
  return checker.states(f);
}

bool ctl_holds(const Nfa& system, CtlFormula f) {
  const DynBitset sat = ctl_states(system, f);
  if (system.initial().empty()) return true;
  for (const State s : system.initial()) {
    if (!sat.test(s)) return false;
  }
  return true;
}

}  // namespace rlv

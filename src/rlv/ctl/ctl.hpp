#pragma once

// Branching-time companion: a CTL model checker over action-labeled
// transition systems. The paper's conclusion points to the ∀□∃◇-fragment of
// CTL* ([18, 19]: Nitsche's homomorphic-abstraction results for branching
// time); this module makes that connection executable:
//
//     lim(L) ⊨_RL □◇⟨a⟩   ⟺   TS ⊨ AG EF can(a)
//
// (every behavior prefix can be extended with infinitely many a's exactly
// when from every reachable state a state with an a-transition is
// reachable) — property-tested in tests/test_ctl.cpp.
//
// Atomic propositions are action-based: can(a) holds in a state iff an
// a-transition leaves it; deadlock holds iff no transition leaves it.
// Formulas: true/false, can(a), deadlock, ¬, ∧, ∨, EX, EF, EG, EU, AX, AF,
// AG, AU. Model checking is by the standard linear-time fixpoint labeling.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "rlv/lang/nfa.hpp"
#include "rlv/util/bitset.hpp"

namespace rlv {

enum class CtlOp : std::uint8_t {
  kTrue,
  kFalse,
  kCan,       // can(a): some a-transition leaves the state
  kDeadlock,  // no transition leaves the state
  kNot,
  kAnd,
  kOr,
  kExistsNext,      // EX
  kExistsFinally,   // EF
  kExistsGlobally,  // EG
  kExistsUntil,     // E[ξ U ζ]
  kForallNext,      // AX
  kForallFinally,   // AF
  kForallGlobally,  // AG
  kForallUntil,     // A[ξ U ζ]
};

class CtlNode;

/// Handle to an interned CTL formula (hash-consed like Formula).
class CtlFormula {
 public:
  CtlFormula() = default;

  [[nodiscard]] CtlOp op() const;
  [[nodiscard]] const std::string& action() const;  // kCan only
  [[nodiscard]] CtlFormula left() const;
  [[nodiscard]] CtlFormula right() const;
  [[nodiscard]] bool valid() const { return node_ != nullptr; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(CtlFormula a, CtlFormula b) {
    return a.node_ == b.node_;
  }
  [[nodiscard]] std::size_t hash() const {
    return std::hash<const CtlNode*>{}(node_);
  }
  [[nodiscard]] const CtlNode* raw() const { return node_; }

 private:
  friend class CtlFactory;
  explicit CtlFormula(const CtlNode* node) : node_(node) {}
  const CtlNode* node_ = nullptr;
};

struct CtlFormulaHash {
  std::size_t operator()(CtlFormula f) const { return f.hash(); }
};

[[nodiscard]] CtlFormula c_true();
[[nodiscard]] CtlFormula c_false();
[[nodiscard]] CtlFormula c_can(std::string_view action);
[[nodiscard]] CtlFormula c_deadlock();
[[nodiscard]] CtlFormula c_not(CtlFormula f);
[[nodiscard]] CtlFormula c_and(CtlFormula a, CtlFormula b);
[[nodiscard]] CtlFormula c_or(CtlFormula a, CtlFormula b);
[[nodiscard]] CtlFormula c_ex(CtlFormula f);
[[nodiscard]] CtlFormula c_ef(CtlFormula f);
[[nodiscard]] CtlFormula c_eg(CtlFormula f);
[[nodiscard]] CtlFormula c_eu(CtlFormula a, CtlFormula b);
[[nodiscard]] CtlFormula c_ax(CtlFormula f);
[[nodiscard]] CtlFormula c_af(CtlFormula f);
[[nodiscard]] CtlFormula c_ag(CtlFormula f);
[[nodiscard]] CtlFormula c_au(CtlFormula a, CtlFormula b);

/// Parses "AG EF can(result)", "E[can(a) U deadlock]", "!x && y", etc.
/// Grammar mirrors the LTL parser; throws std::runtime_error on errors.
[[nodiscard]] CtlFormula parse_ctl(std::string_view text);

/// States of the transition system satisfying `f` (acceptance flags of
/// `system` are ignored; it is treated as a plain labeled graph).
[[nodiscard]] DynBitset ctl_states(const Nfa& system, CtlFormula f);

/// Does every initial state satisfy `f`?
[[nodiscard]] bool ctl_holds(const Nfa& system, CtlFormula f);

}  // namespace rlv

#include "rlv/omega/live.hpp"

#include <vector>

#include "rlv/util/scc.hpp"

namespace rlv {

DynBitset live_states(const Buchi& a) {
  const std::size_t n = a.num_states();
  std::vector<std::vector<std::uint32_t>> succ(n);
  for (State s = 0; s < n; ++s) {
    for (const auto& t : a.out(s)) succ[s].push_back(t.target);
  }
  const SccResult scc = tarjan_scc(succ);

  // An SCC is *accepting* when it is non-trivial (has an internal edge) and
  // contains a Büchi-accepting state.
  std::vector<bool> accepting_scc(scc.count, false);
  for (State s = 0; s < n; ++s) {
    if (a.is_accepting(s) && scc.nontrivial[scc.component[s]]) {
      accepting_scc[scc.component[s]] = true;
    }
  }

  // Live = can reach an accepting SCC: backward reachability.
  std::vector<std::vector<std::uint32_t>> pred(n);
  for (State s = 0; s < n; ++s) {
    for (const auto& t : a.out(s)) pred[t.target].push_back(s);
  }
  DynBitset live(n);
  std::vector<State> work;
  for (State s = 0; s < n; ++s) {
    if (accepting_scc[scc.component[s]]) {
      live.set(s);
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    const State s = work.back();
    work.pop_back();
    for (const std::uint32_t p : pred[s]) {
      if (!live.test(p)) {
        live.set(p);
        work.push_back(p);
      }
    }
  }
  return live;
}

Buchi trim_omega(const Buchi& a) {
  DynBitset keep = a.structure().reachable();
  keep &= live_states(a);

  Buchi result(a.alphabet());
  std::vector<State> remap(a.num_states(), kNoState);
  for (State s = 0; s < a.num_states(); ++s) {
    if (keep.test(s)) remap[s] = result.add_state(a.is_accepting(s));
  }
  for (State s = 0; s < a.num_states(); ++s) {
    if (!keep.test(s)) continue;
    for (const auto& t : a.out(s)) {
      if (keep.test(t.target)) {
        result.add_transition(remap[s], t.symbol, remap[t.target]);
      }
    }
  }
  for (const State s : a.initial()) {
    if (keep.test(s)) result.set_initial(remap[s]);
  }
  return result;
}

Nfa prefix_nfa(const Buchi& a) {
  Nfa result = trim_omega(a).structure();
  for (State s = 0; s < result.num_states(); ++s) {
    result.set_accepting(s, true);
  }
  return result;
}

bool omega_empty(const Buchi& a) {
  const DynBitset live = live_states(a);
  for (const State s : a.initial()) {
    // Initial states must also be reachable-from-initial, trivially true.
    if (live.test(s)) return false;
  }
  return true;
}

}  // namespace rlv

#pragma once

// Membership of ultimately periodic words u·v^ω in Büchi automata. This is
// the workhorse of the property-based test suites: ω-language constructions
// (products, complements, limits, LTL translations) are cross-validated by
// sampling lassos and comparing membership verdicts.

#include "rlv/omega/buchi.hpp"
#include "rlv/omega/emptiness.hpp"

namespace rlv {

/// True when the automaton accepts u·v^ω. Throws std::invalid_argument when
/// `v` is empty (u·v^ω would not be an ω-word).
[[nodiscard]] bool accepts_lasso(const Buchi& a, const Word& u, const Word& v);

[[nodiscard]] inline bool accepts_lasso(const Buchi& a, const Lasso& lasso) {
  return accepts_lasso(a, lasso.prefix, lasso.period);
}

/// Generalized-Büchi membership of u·v^ω: some run visits every acceptance
/// set infinitely often. Used to cross-check degeneralization.
[[nodiscard]] bool accepts_lasso_gen(const GenBuchi& a, const Word& u,
                                     const Word& v);

}  // namespace rlv

#include "rlv/omega/expr.hpp"

#include <cassert>

#include "rlv/omega/live.hpp"

namespace rlv {

namespace {

/// Adds the V-phase (anchor + V states) to `result`, returning the anchor.
/// `v_offset` receives the base index of V's states inside `result`.
State add_v_phase(Buchi& result, const Nfa& v, State* v_offset) {
  const State anchor = result.add_state(true);
  const State base = static_cast<State>(result.num_states());
  *v_offset = base;
  for (State s = 0; s < v.num_states(); ++s) {
    result.add_state(false);
  }
  // Internal edges; edges into V-accepting states also jump to the anchor
  // ("this V-word may end here").
  for (State s = 0; s < v.num_states(); ++s) {
    for (const auto& t : v.out(s)) {
      result.add_transition(base + s, t.symbol, base + t.target);
      if (v.is_accepting(t.target)) {
        result.add_transition(base + s, t.symbol, anchor);
      }
    }
  }
  // Anchor behaves like (all) V-initial states. ε ∈ L(v) would allow empty
  // iterations, making V^ω ill-defined here.
  for (const State i : v.initial()) {
    assert(!v.is_accepting(i) && "omega iteration requires ε ∉ L(v)");
    for (const auto& t : v.out(i)) {
      result.add_transition(anchor, t.symbol, base + t.target);
      if (v.is_accepting(t.target)) {
        result.add_transition(anchor, t.symbol, anchor);
      }
    }
  }
  return anchor;
}

}  // namespace

Buchi omega_power(const Nfa& v) {
  Buchi result(v.alphabet());
  State v_offset = 0;
  const State anchor = add_v_phase(result, v, &v_offset);
  result.set_initial(anchor);
  return trim_omega(result);
}

Buchi omega_iteration(const Nfa& u, const Nfa& v) {
  assert(u.alphabet() == v.alphabet());
  Buchi result(u.alphabet());
  State v_offset = 0;
  const State anchor = add_v_phase(result, v, &v_offset);

  // U phase.
  const State u_base = static_cast<State>(result.num_states());
  for (State s = 0; s < u.num_states(); ++s) {
    result.add_state(false);
  }
  for (State s = 0; s < u.num_states(); ++s) {
    for (const auto& t : u.out(s)) {
      result.add_transition(u_base + s, t.symbol, u_base + t.target);
      // Finishing a U word = standing at the anchor.
      if (u.is_accepting(t.target)) {
        result.add_transition(u_base + s, t.symbol, anchor);
      }
    }
  }
  bool epsilon_in_u = false;
  for (const State i : u.initial()) {
    result.set_initial(u_base + i);
    epsilon_in_u = epsilon_in_u || u.is_accepting(i);
  }
  if (epsilon_in_u) result.set_initial(anchor);
  return trim_omega(result);
}

}  // namespace rlv
